// Authoring your own analysis target from textual MiniIR.
//
// Most users won't hand-construct IR with the builder; they'll sketch the
// suspicious concurrency structure of their system in the textual format
// (the role .ll files play for LLVM), parse it, and let OWL do the rest.
// This example audits a TOCTOU-flavoured file-service: a permission flag is
// revoked concurrently with a request that already passed its access()
// check.
#include <cstdio>

#include "core/pipeline.hpp"
#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "vuln/hint.hpp"

using namespace owl;

// The suspicious subsystem, transcribed from (imaginary) C sources. Note
// the locations — OWL's reports will point back at them.
static const char* kTarget = R"(module fileserv
global @perm [1] = 1

func @serve_request() {
entry:
  %p = load @perm                 !serve.c:31
  %ok = icmp ne %p, 0             !serve.c:31
  br %ok, do_serve, deny          !serve.c:32
do_serve:
  %chk = file_access 7            !serve.c:34
  io_delay 12                     !serve.c:35   ; read the file from disk
  %fd = file_open 7               !serve.c:36
  file_write %fd, @perm, 1        !serve.c:37
  ret
deny:
  ret
}

func @revoke() {
entry:
  io_delay 6                      !admin.c:90
  store 0, @perm                  !admin.c:91   ; admin revokes access
  ret
}

func @main() {
entry:
  %t1 = thread_create @serve_request, 0
  %t2 = thread_create @revoke, 0
  thread_join %t1
  thread_join %t2
  ret
}
)";

int main() {
  // ---- parse + verify ----
  auto parsed = ir::parse_module(kTarget);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().to_string().c_str());
    return 1;
  }
  std::shared_ptr<ir::Module> module = std::move(parsed).value();
  if (const Status status = ir::verify_module(*module); !status.is_ok()) {
    std::fprintf(stderr, "verify error: %s\n", status.to_string().c_str());
    return 1;
  }

  // ---- wire up the pipeline target ----
  core::PipelineTarget target;
  target.name = "fileserv";
  target.module = module.get();
  target.factory = [module] {
    auto machine =
        std::make_unique<interp::Machine>(*module, interp::MachineOptions{});
    machine->start(module->find_function("main"));
    return machine;
  };
  target.detection_schedules = 6;

  const core::PipelineResult result = core::Pipeline().run(target);

  std::printf("raw reports: %zu, verified: %zu, hints: %zu\n\n",
              result.counts.raw_reports, result.counts.remaining,
              result.counts.vulnerability_reports);
  for (const vuln::ExploitReport& exploit : result.exploits) {
    std::fputs(vuln::render_hint(exploit).c_str(), stdout);
  }
  std::printf("\n--- dynamic verification ---\n");
  for (const core::ConcurrencyAttack& attack : result.attacks) {
    std::fputs(attack.to_string().c_str(), stdout);
  }

  // What to look for: the file operations at serve.c:34/36/37 are
  // control-dependent on the corrupted permission check at serve.c:31-32 —
  // the race lets a request keep serving after revocation.
  bool file_site = false;
  for (const vuln::ExploitReport& exploit : result.exploits) {
    file_site |= exploit.type == vuln::SiteType::kFileOp;
  }
  std::printf("\nfile-operation site flagged: %s\n",
              file_site ? "yes" : "no");
  return file_site ? 0 : 1;
}
