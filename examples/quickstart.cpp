// Quickstart: build a small racy multithreaded program with the MiniIR
// builder, run the full OWL pipeline on it, and read the results.
//
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
//
// The program models a tiny server: a reloader thread briefly clears a
// config-ready flag while re-reading configuration; a worker thread that
// observes the cleared flag skips its permission check and calls setuid(0).
// OWL should (1) report the race, (2) verify it in the racing moment,
// (3) statically connect it to the setuid vulnerable site, and (4) confirm
// the attack dynamically.
#include <cstdio>

#include "core/pipeline.hpp"
#include "interp/machine.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "vuln/hint.hpp"

using namespace owl;

int main() {
  // ---- 1. Build the target program in MiniIR ----
  auto module = std::make_shared<ir::Module>("quickstart");
  ir::IRBuilder b(module.get());

  ir::GlobalVariable* ready = module->add_global("config_ready", 1, 1);

  // The worker: if the config is "ready", do a normal permission check;
  // otherwise fall into the trusting legacy path.
  ir::Function* worker = module->add_function("worker", ir::Type::void_type());
  {
    ir::BasicBlock* entry = worker->add_block("entry");
    ir::BasicBlock* normal = worker->add_block("normal");
    ir::BasicBlock* legacy = worker->add_block("legacy");
    b.set_insert_point(entry);
    b.set_loc("server.c", 10);
    ir::Instruction* r = b.load(ready, "r");          // <-- the racy read
    ir::Instruction* ok = b.icmp(ir::CmpPredicate::kNe, r, b.i64(0), "ok");
    b.br(ok, normal, legacy);
    b.set_insert_point(normal);
    b.set_loc("server.c", 12);
    b.file_access(b.i64(1));  // ordinary permission check
    b.ret();
    b.set_insert_point(legacy);
    b.set_loc("server.c", 15);
    b.setuid_(b.i64(0));      // <-- the vulnerable site
    b.ret();
  }

  // The reloader: clears the flag, re-reads config (IO), sets it again.
  ir::Function* reloader =
      module->add_function("reloader", ir::Type::void_type());
  {
    b.set_insert_point(reloader->add_block("entry"));
    b.set_loc("reload.c", 20);
    b.store(b.i64(0), ready);             // <-- the racy write
    b.io_delay(b.input(b.i64(0), "io"));  // config re-read takes a while
    b.set_loc("reload.c", 22);
    b.store(b.i64(1), ready);
    b.ret();
  }

  ir::Function* main_fn = module->add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    ir::Instruction* t1 = b.thread_create(reloader, b.i64(0), "t1");
    ir::Instruction* t2 = b.thread_create(worker, b.i64(0), "t2");
    b.thread_join(t1);
    b.thread_join(t2);
    b.ret();
  }

  if (const Status status = ir::verify_module(*module); !status.is_ok()) {
    std::fprintf(stderr, "bad module: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("--- the target program ---\n%s\n",
              ir::print_module(*module).c_str());

  // ---- 2. Describe how to run it ----
  core::PipelineTarget target;
  target.name = "quickstart";
  target.module = module.get();
  target.factory = [module] {
    interp::MachineOptions options;
    options.inputs = {8};  // reload IO: the vulnerable window's width
    auto machine = std::make_unique<interp::Machine>(*module, options);
    machine->start(module->find_function("main"));
    return machine;
  };
  target.thread_order = {1, 2};  // verifier hint: reloader first

  // ---- 3. Run the OWL pipeline (Fig. 3 of the paper) ----
  core::Pipeline pipeline;
  const core::PipelineResult result = pipeline.run(target);

  std::printf("--- pipeline summary ---\n");
  std::printf("raw race reports:        %zu\n", result.counts.raw_reports);
  std::printf("adhoc syncs annotated:   %zu\n", result.counts.adhoc_syncs);
  std::printf("verified real races:     %zu\n", result.counts.remaining);
  std::printf("vulnerability reports:   %zu\n",
              result.counts.vulnerability_reports);
  std::printf("confirmed attacks:       %zu\n\n", result.confirmed_attacks());

  std::printf("--- vulnerable input hints ---\n");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    std::fputs(vuln::render_hint(exploit).c_str(), stdout);
  }

  std::printf("\n--- attacks ---\n");
  for (const core::ConcurrencyAttack& attack : result.attacks) {
    std::fputs(attack.to_string().c_str(), stdout);
  }
  return result.confirmed_attacks() > 0 ? 0 : 1;
}
