// Audits the Apache-46215 load balancer the way a security engineer would
// use OWL (paper Fig. 8, §8.4): run the pipeline, read the hint that a
// pointer assignment at proxy_balancer.c:1195 is control-dependent on a
// corrupted unsigned comparison, then demonstrate the denial of service —
// a worker whose busy counter underflowed to ~2^64 never gets another
// request.
#include <cstdio>

#include "support/strings.hpp"
#include "vuln/hint.hpp"
#include "workloads/registry.hpp"

using namespace owl;

int main() {
  const workloads::Workload apache = workloads::make_apache_balancer();

  core::Pipeline pipeline(apache.pipeline_options());
  const core::PipelineResult result = pipeline.run(apache.target());

  std::printf("--- OWL's hint on the busyness race ---\n");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    if (exploit.site->loc().line == 1195) {
      std::fputs(vuln::render_hint(exploit).c_str(), stdout);
    }
  }
  std::printf("pipeline verdict: %s\n\n",
              apache.attack_detected(result)
                  ? "attack detected (site reachable under corrupted branch)"
                  : "NOT detected");

  // ---- demonstrate the DoS ----
  for (unsigned attempt = 0; attempt < 30; ++attempt) {
    auto machine = apache.make_machine(apache.exploit_inputs);
    interp::RandomScheduler sched(500 + attempt);
    machine->run(sched);
    if (!apache.attack_succeeded(*machine)) continue;

    const interp::Address busy = machine->global_address("worker_busy");
    const interp::Address served = machine->global_address("worker_served");
    std::printf("--- after the attack (run %u) ---\n", attempt + 1);
    std::printf("%-8s %-26s %s\n", "worker", "busy counter", "requests served");
    for (int w = 0; w < 4; ++w) {
      const auto busy_value = static_cast<std::uint64_t>(
          machine->memory().load_raw(busy + static_cast<interp::Address>(w) * 8));
      std::printf("w%-7d %-26s %lld\n", w,
                  with_commas(busy_value).c_str(),
                  static_cast<long long>(machine->memory().load_raw(
                      served + static_cast<interp::Address>(w) * 8)));
    }
    std::printf(
        "\nThe wrapped counter (the paper observed\n"
        "18,446,744,073,709,551,614) marks that worker \"busiest\" forever:\n"
        "find_best_bybusyness never selects it again — a DoS that quietly\n"
        "degrades throughput with no crash to notice.\n");
    return 0;
  }
  std::printf("underflow did not manifest in 30 runs\n");
  return 1;
}
