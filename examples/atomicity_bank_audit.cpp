// Auditing a lock-protected program for atomicity-violation attacks — the
// §8.3 extension end to end, plus schedule record/replay: once the double
// spend manifests, the exact triggering schedule is captured and replayed.
//
// The target: a bank teller whose balance check and debit are each under
// the lock, but not together. No data race exists (TSan mode is silent);
// the unserializable R-W-W triple is the bug, and two concurrent
// withdrawals of 6 from a balance of 10 both dispense.
#include <cstdio>

#include "race/tsan_detector.hpp"
#include "vuln/hint.hpp"
#include "workloads/registry.hpp"

using namespace owl;

int main() {
  const workloads::Workload bank = workloads::make_bank_atomicity();

  // ---- 1. Show that happens-before detection has nothing to say ----
  {
    auto machine = bank.make_machine(bank.testing_inputs);
    race::TsanDetector tsan;
    machine->add_observer(&tsan);
    interp::RandomScheduler sched(1);
    machine->run(sched);
    std::printf("TSan-mode race reports on the bank: %zu "
                "(every access is lock-protected)\n\n",
                tsan.take_reports().size());
  }

  // ---- 2. The atomicity-fed OWL pipeline finds the attack ----
  core::Pipeline pipeline(bank.pipeline_options());
  const core::PipelineResult result = pipeline.run(bank.target());
  std::printf("atomicity-mode pipeline: %zu report(s), %zu verified, "
              "%zu hint(s), attack detected: %s\n\n",
              result.counts.raw_reports, result.counts.remaining,
              result.counts.vulnerability_reports,
              bank.attack_detected(result) ? "yes" : "no");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    std::fputs(vuln::render_hint(exploit).c_str(), stdout);
  }

  // ---- 3. Manifest the double spend and capture its schedule ----
  for (unsigned attempt = 0; attempt < 30; ++attempt) {
    auto machine = bank.make_machine(bank.exploit_inputs);
    interp::RandomScheduler inner(3000 + attempt);
    interp::RecordingScheduler recorder(&inner);
    machine->run(recorder);
    if (!bank.attack_succeeded(*machine)) continue;

    interp::Word dispensed = 0;
    for (const interp::EvalRecord& rec : machine->evals()) {
      dispensed += rec.command_id;
    }
    std::printf("\nattempt %u: double spend! dispensed %lld against an "
                "opening balance of 10 (final balance %lld)\n",
                attempt + 1, static_cast<long long>(dispensed),
                static_cast<long long>(machine->read_global("balance")));

    // ---- 4. Replay the recorded schedule: the theft reproduces exactly --
    auto replay_machine = bank.make_machine(bank.exploit_inputs);
    interp::ReplayScheduler replay(recorder.take_trace());
    replay_machine->run(replay);
    interp::Word replayed = 0;
    for (const interp::EvalRecord& rec : replay_machine->evals()) {
      replayed += rec.command_id;
    }
    std::printf("replayed schedule: dispensed %lld — %s\n",
                static_cast<long long>(replayed),
                replayed == dispensed ? "identical, shippable repro"
                                      : "MISMATCH");
    return replayed == dispensed ? 0 : 1;
  }
  std::printf("double spend did not manifest in 30 attempts\n");
  return 1;
}
