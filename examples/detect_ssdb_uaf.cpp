// Reproduces OWL's flagship previously-unknown finding: the SSDB-1.9.2
// shutdown use-after-free, confirmed as CVE-2016-1000324 (paper Fig. 6 and
// §8.4), using only the library's public API:
//
//   1. take the packaged ssdb workload model,
//   2. run the pipeline,
//   3. print the bug-to-attack story OWL reconstructs,
//   4. replay the exploit and watch the use-after-free happen live.
#include <cstdio>

#include "vuln/hint.hpp"
#include "workloads/registry.hpp"

using namespace owl;

int main() {
  const workloads::Workload ssdb = workloads::make_ssdb();

  std::printf("target: %s — %s\n\n", ssdb.name.c_str(),
              ssdb.description.c_str());

  // ---- the OWL pipeline ----
  core::Pipeline pipeline(ssdb.pipeline_options());
  const core::PipelineResult result = pipeline.run(ssdb.target());

  std::printf("detector: %zu raw reports; %zu survive reduction "
              "(paper: 12 -> 2)\n\n",
              result.counts.raw_reports, result.counts.remaining);

  std::printf("--- what OWL tells the developer ---\n");
  for (const core::ConcurrencyAttack& attack : result.attacks) {
    if (attack.exploit.site->loc().line != 347) continue;
    std::fputs(attack.to_string().c_str(), stdout);
    break;
  }

  // ---- replay the exploit with the crafted inputs ----
  std::printf("\n--- exploit replay (crafted shutdown timing) ---\n");
  for (unsigned attempt = 0; attempt < 20; ++attempt) {
    auto machine = ssdb.make_machine(ssdb.exploit_inputs);
    interp::RandomScheduler sched(100 + attempt);
    machine->run(sched);
    if (!ssdb.attack_succeeded(*machine)) continue;
    std::printf("attempt %u: attack realized —\n", attempt + 1);
    for (const interp::SecurityEvent& event : machine->security_events()) {
      std::printf("  %s\n", event.to_string().c_str());
    }
    std::printf(
        "\nThe cleaner thread read the db handle at binlog.cpp:359 before\n"
        "the destructor nulled it at line 200, failed to break out of its\n"
        "loop, and del_range dereferenced freed memory at lines 346-347 —\n"
        "exactly the CVE-2016-1000324 report.\n");
    return 0;
  }
  std::printf("attack did not manifest in 20 attempts (unlucky schedules)\n");
  return 1;
}
