#!/usr/bin/env bash
# Staged CI gate. Usage:
#
#   scripts/ci.sh [stage ...]
#
# with stages:
#   build         configure + compile the main tree (plus ci.yml lint)
#   ctest         full test suite on the main tree
#   asan          unit tests under ASan+UBSan (own tree: build-asan)
#   tsan          concurrency tests under TSan (own tree: build-tsan)
#   differential  jobs/impl/manifest differential gates on the examples
#   serve         owl_served robustness + differential gate under
#                 ASan+UBSan (shares the asan tree)
#   repair        automated race repair gate: every confirmed-race example
#                 must yield a verified *_fixed.mir matching the committed
#                 golden, byte-identical across jobs/repeat runs
#   bench         release bench tree + benchmark-regression gate
#   all           every stage above, in that order (the default)
#
# Stages assume `build` ran first (the GitHub matrix gives each stage its
# own job and runs `build` as its first step; locally `all` orders them).
# OWL_CI_REUSE_BUILD=1 skips the configure+compile of a tree whose
# binaries already exist (build/ and build-asan/), so chained local
# invocations — e.g. `ci.sh differential serve repair` after one `build`
# — pay for compilation once. Any failure fails the script and names the
# step that died. Per-stage wall-clock prints at exit.
set -euo pipefail
cd "$(dirname "$0")/.."

current_step="startup"
trap 'echo "ci.sh: FAILED during: ${current_step}" >&2' ERR

stage_times=()
print_stage_times() {
  [ ${#stage_times[@]} -gt 0 ] || return 0
  echo "ci.sh: per-stage wall-clock:"
  for entry in "${stage_times[@]}"; do
    echo "  ${entry}"
  done
}
trap print_stage_times EXIT

run_stage() {
  # Deliberately unique names: bash locals are dynamically scoped, so a
  # plain `name` would be visible to — and clobbered by — the stage body.
  local run_stage_name="$1"
  local run_stage_started="${SECONDS}"
  "stage_${run_stage_name}"
  stage_times+=("${run_stage_name}: $((SECONDS - run_stage_started))s")
}

jobs="$(nproc)"
reuse_build="${OWL_CI_REUSE_BUILD:-0}"

# ccache cuts the matrix's rebuild cost; configure with it only when the
# host actually has it so a bare container still works.
launcher_args=()
if command -v ccache > /dev/null 2>&1; then
  launcher_args=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

stage_build() {
  if [ "${reuse_build}" = "1" ] && [ -x build/tools/owl_cli ]; then
    echo "ci.sh: OWL_CI_REUSE_BUILD=1: reusing existing build/ tree"
  else
    current_step="configure"
    cmake -B build -S . ${launcher_args[@]+"${launcher_args[@]}"}

    current_step="build"
    cmake --build build -j"${jobs}"
  fi

  # Workflow lint: actionlint when available, else a YAML parse via
  # python3 — enough to catch a syntactically broken ci.yml in-repo.
  current_step="lint .github/workflows/ci.yml"
  if [ -f .github/workflows/ci.yml ]; then
    if command -v actionlint > /dev/null 2>&1; then
      actionlint .github/workflows/ci.yml
    else
      python3 -c "import yaml; yaml.safe_load(open('.github/workflows/ci.yml'))" \
        || { echo "ci.sh: ci.yml failed YAML validation" >&2; exit 1; }
    fi
  fi
}

stage_ctest() {
  current_step="ctest"
  ctest --test-dir build --output-on-failure -j"${jobs}"
}

# Sanitizer pass: a separate tree so the regular build stays reusable.
stage_asan() {
  if [ "${reuse_build}" = "1" ] && [ -x build-asan/tests/owl_unit_tests ]; then
    echo "ci.sh: OWL_CI_REUSE_BUILD=1: reusing existing build-asan/ tree"
  else
    current_step="configure (ASan+UBSan)"
    cmake -B build-asan -S . ${launcher_args[@]+"${launcher_args[@]}"} \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

    current_step="build owl_unit_tests (ASan+UBSan)"
    cmake --build build-asan -j"${jobs}" --target owl_unit_tests
  fi

  current_step="run owl_unit_tests (ASan+UBSan)"
  ./build-asan/tests/owl_unit_tests
}

# ThreadSanitizer pass: a concurrency-attack detector must not ship its own
# races. The TSan tree runs the thread-pool/log/stats/trace/metrics unit
# tests and the jobs=1-vs-jobs=4 pipeline equivalence tests with real
# worker threads.
stage_tsan() {
  current_step="configure (TSan)"
  cmake -B build-tsan -S . ${launcher_args[@]+"${launcher_args[@]}"} \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all -fno-omit-frame-pointer"

  current_step="build test binaries (TSan)"
  cmake --build build-tsan -j"${jobs}" --target owl_unit_tests owl_integration_tests

  current_step="run thread_pool/observability tests (TSan)"
  ./build-tsan/tests/owl_unit_tests \
    --gtest_filter='ThreadPoolTest.*:LogSinkTest.*:ConcurrentStatsTest.*:StageTimingsTest.*:TraceCollectorTest.*:MetricsRegistryTest.*'

  current_step="run parallel_equivalence tests (TSan)"
  ./build-tsan/tests/owl_integration_tests --gtest_filter='ParallelEquivalenceTest.*'
}

stage_differential() {
  # Differential gates on every shipped example: parallel execution must
  # be byte-identical to sequential, for both detector implementations,
  # on stdout AND on the run manifest (scripts/manifest_diff.py strips
  # the non-diffable "environment" tail before comparing).
  current_step="collect examples"
  examples=(examples/ir/*.mir)
  [ ${#examples[@]} -ge 2 ] \
    || { echo "ci.sh: expected at least 2 examples, got ${#examples[@]}" >&2
         exit 1; }

  current_step="jobs=1 vs jobs=4 differential (examples, both impls)"
  for impl in fast reference; do
    for j in 1 4; do
      ./build/tools/owl_cli --jobs "$j" --print-reports \
        --detector-impl "$impl" \
        --manifest "build/manifest-$impl-j$j.json" \
        --metrics-out "build/metrics-$impl-j$j.txt" \
        "${examples[@]}" > "build/out-$impl-j$j.txt"
    done
    diff -u "build/out-$impl-j1.txt" "build/out-$impl-j4.txt" \
      || { echo "ci.sh: jobs=4 output diverged from jobs=1 ($impl)" >&2
           exit 1; }
    python3 scripts/manifest_diff.py \
      "build/manifest-$impl-j1.json" "build/manifest-$impl-j4.json" \
      || { echo "ci.sh: jobs=4 manifest diverged from jobs=1 ($impl)" >&2
           exit 1; }
    cmp "build/metrics-$impl-j1.txt" "build/metrics-$impl-j4.txt" \
      || { echo "ci.sh: jobs=4 metrics diverged from jobs=1 ($impl)" >&2
           exit 1; }
  done

  # Detector differential: the fast substrate (paged shadow, epoch fast
  # paths, lazy capture) must emit byte-identical reports to the
  # reference hash-map substrate. Reports, not metrics: the two impls
  # legitimately differ on substrate counters (that is their point).
  current_step="detector differential gate (reference vs fast)"
  for j in 1 4; do
    diff -u "build/out-reference-j$j.txt" "build/out-fast-j$j.txt" \
      || { echo "ci.sh: fast detector diverged from reference (jobs=$j)" >&2
           exit 1; }
  done
  ./build/tools/owl_cli --jobs 1 --print-reports --seed 5 \
    --inject-fault detect:truncate:2 \
    --detector-impl reference "${examples[@]}" > build/impl-ref-fault.out
  ./build/tools/owl_cli --jobs 1 --print-reports --seed 5 \
    --inject-fault detect:truncate:2 \
    --detector-impl fast "${examples[@]}" > build/impl-fast-fault.out
  diff -u build/impl-ref-fault.out build/impl-fast-fault.out \
    || { echo "ci.sh: fast detector diverged under injected fault" >&2
         exit 1; }

  # Prescreen gate: the static may-race pre-screen must never change
  # behavior. Stdout, manifest body (scripts/manifest_diff.py), and metric
  # snapshots must be byte-identical across --prescreen off/on/audit for
  # both detector impls and jobs=1/4. Audit mode exits 3 on any
  # pruned-but-raced access, which fails this stage via set -e.
  current_step="prescreen differential gate (off/on/audit)"
  for impl in fast reference; do
    for j in 1 4; do
      for mode in off on audit; do
        ./build/tools/owl_cli --jobs "$j" --print-reports \
          --detector-impl "$impl" --prescreen "$mode" \
          --manifest "build/manifest-ps-$mode-$impl-j$j.json" \
          --metrics-out "build/metrics-ps-$mode-$impl-j$j.txt" \
          "${examples[@]}" > "build/out-ps-$mode-$impl-j$j.txt"
      done
      for mode in on audit; do
        diff -u "build/out-ps-off-$impl-j$j.txt" \
          "build/out-ps-$mode-$impl-j$j.txt" \
          || { echo "ci.sh: --prescreen $mode changed reports ($impl, jobs=$j)" >&2
               exit 1; }
        python3 scripts/manifest_diff.py \
          "build/manifest-ps-off-$impl-j$j.json" \
          "build/manifest-ps-$mode-$impl-j$j.json" \
          || { echo "ci.sh: --prescreen $mode changed the manifest body ($impl, jobs=$j)" >&2
               exit 1; }
        cmp "build/metrics-ps-off-$impl-j$j.txt" \
          "build/metrics-ps-$mode-$impl-j$j.txt" \
          || { echo "ci.sh: --prescreen $mode changed metrics ($impl, jobs=$j)" >&2
               exit 1; }
      done
    done
  done

  # The pre-screen must also do real work: the examples include
  # threadlocal_noise.mir, whose private-buffer traffic is provably
  # thread-local, so pruned_accesses must be nonzero under --prescreen on
  # and the audit sweep must have counted zero violations.
  current_step="prescreen pruning effectiveness"
  python3 - <<'EOF'
import json
on = json.load(open("build/manifest-ps-on-fast-j1.json"))
audit = json.load(open("build/manifest-ps-audit-fast-j1.json"))
pruned = on["environment"]["advisory_metrics"].get("prescreen.pruned_accesses", 0)
prunable = on["metrics"].get("prescreen.prunable_instructions", 0)
violations = audit["environment"]["advisory_metrics"].get(
    "prescreen.audit_violations", 0)
if prunable <= 0:
    raise SystemExit("ci.sh: no statically prunable instructions on the examples")
if pruned <= 0:
    raise SystemExit("ci.sh: --prescreen on pruned no dynamic accesses")
if violations != 0:
    raise SystemExit(f"ci.sh: prescreen audit counted {violations} violations")
EOF

  # Predict gate (DESIGN.md §12), four promises:
  #   (a) --predict off is byte-identical to not passing the flag at all —
  #       stdout, manifest body, and metric snapshots;
  #   (b) on/audit produce the same final report stream as exhaustive
  #       exploration (modulo the predict summary line) on every steady
  #       example — predicted_only.mir is the deliberate exception, a
  #       planted race only prediction can surface, checked separately;
  #   (c) audit mode observes zero wrongly-pruned races (exit 3 otherwise,
  #       which fails this stage via set -e);
  #   (d) prediction does real work: pruned pairs and avoided schedules
  #       are nonzero on the guarded examples.
  current_step="predict off-mode byte-identity"
  for j in 1 4; do
    ./build/tools/owl_cli --jobs "$j" --print-reports --detector-impl fast \
      --predict off \
      --manifest "build/manifest-pr-off-j$j.json" \
      --metrics-out "build/metrics-pr-off-j$j.txt" \
      "${examples[@]}" > "build/out-pr-off-j$j.txt"
    diff -u "build/out-fast-j$j.txt" "build/out-pr-off-j$j.txt" \
      || { echo "ci.sh: --predict off changed the reports (jobs=$j)" >&2
           exit 1; }
    python3 scripts/manifest_diff.py \
      "build/manifest-fast-j$j.json" "build/manifest-pr-off-j$j.json" \
      || { echo "ci.sh: --predict off changed the manifest body (jobs=$j)" >&2
           exit 1; }
    cmp "build/metrics-fast-j$j.txt" "build/metrics-pr-off-j$j.txt" \
      || { echo "ci.sh: --predict off changed metrics (jobs=$j)" >&2
           exit 1; }
  done

  current_step="predict differential gate (on/audit vs exhaustive)"
  steady=()
  for example in "${examples[@]}"; do
    [ "$(basename "$example")" = predicted_only.mir ] && continue
    steady+=("$example")
  done
  for j in 1 4; do
    ./build/tools/owl_cli --jobs "$j" --print-reports --detector-impl fast \
      "${steady[@]}" > "build/out-pr-base-j$j.txt"
    for mode in on audit; do
      ./build/tools/owl_cli --jobs "$j" --print-reports --detector-impl fast \
        --predict "$mode" \
        --manifest "build/manifest-pr-$mode-j$j.json" \
        "${steady[@]}" > "build/out-pr-$mode-j$j.txt"
      grep -v "^  predict: " "build/out-pr-$mode-j$j.txt" \
        > "build/out-pr-$mode-j$j.stripped"
      diff -u "build/out-pr-base-j$j.txt" "build/out-pr-$mode-j$j.stripped" \
        || { echo "ci.sh: --predict $mode changed the final reports (jobs=$j)" >&2
             exit 1; }
    done
  done

  current_step="predicted-race discovery (predicted_only.mir)"
  ./build/tools/owl_cli --jobs 1 --print-reports \
    examples/ir/predicted_only.mir > build/out-po-off.txt
  ./build/tools/owl_cli --jobs 1 --print-reports --predict on \
    examples/ir/predicted_only.mir > build/out-po-on.txt
  if grep -q "data race on 'stat'" build/out-po-off.txt; then
    echo "ci.sh: predicted_only.mir race manifested without prediction" >&2
    echo "ci.sh: (the example no longer plants a predicted-only race)" >&2
    exit 1
  fi
  grep -q "data race on 'stat'" build/out-po-on.txt \
    || { echo "ci.sh: --predict on missed the planted predicted-only race" >&2
         exit 1; }

  current_step="predict pruning effectiveness"
  python3 - <<'EOF'
import json
on = json.load(open("build/manifest-pr-on-j1.json"))
audit = json.load(open("build/manifest-pr-audit-j1.json"))
candidates = on["metrics"].get("predict.candidates", 0)
avoided = on["metrics"].get("predict.schedules_avoided", 0)
closure = on["environment"]["advisory_metrics"].get(
    "predict.closure_iterations", 0)
violations = audit["environment"]["advisory_metrics"].get(
    "predict.audit_violations", 0)
if candidates <= 0:
    raise SystemExit("ci.sh: predictor SP-checked no candidate pairs")
if avoided <= 0:
    raise SystemExit("ci.sh: --predict on avoided no verifier schedules")
if closure <= 0:
    raise SystemExit("ci.sh: predictor recorded no closure iterations")
if violations != 0:
    raise SystemExit(f"ci.sh: predict audit counted {violations} violations")
EOF

  current_step="predict trace span"
  ./build/tools/owl_cli --jobs 1 -q --predict on \
    --trace-out build/trace-predict.json "${examples[@]}" > /dev/null
  python3 - <<'EOF'
import json
trace = json.load(open("build/trace-predict.json"))
names = {e["name"] for e in trace["traceEvents"]}
if "predict" not in names:
    raise SystemExit("ci.sh: trace missing the predict span")
EOF

  # Value-flow gate (DESIGN.md §14), four promises:
  #   (a) --vuln-flow off is byte-identical to not passing the flag at all —
  #       stdout, manifest body, and metric snapshots;
  #   (b) on and audit produce the same report stream on every example
  #       (audit only adds the runtime cross-check, never changes reports);
  #   (c) audit observes zero store->load dependences missing from the
  #       static graph (exit 3 otherwise, which fails this stage via set -e);
  #   (d) the graph does real work: heap_relay.mir's exploit is reachable
  #       only across the store->load edges, and the builder records
  #       nonzero nodes and memory edges.
  current_step="vuln-flow off-mode byte-identity"
  for j in 1 4; do
    ./build/tools/owl_cli --jobs "$j" --print-reports --detector-impl fast \
      --vuln-flow off \
      --manifest "build/manifest-vf-off-j$j.json" \
      --metrics-out "build/metrics-vf-off-j$j.txt" \
      "${examples[@]}" > "build/out-vf-off-j$j.txt"
    diff -u "build/out-fast-j$j.txt" "build/out-vf-off-j$j.txt" \
      || { echo "ci.sh: --vuln-flow off changed the reports (jobs=$j)" >&2
           exit 1; }
    python3 scripts/manifest_diff.py \
      "build/manifest-fast-j$j.json" "build/manifest-vf-off-j$j.json" \
      || { echo "ci.sh: --vuln-flow off changed the manifest (jobs=$j)" >&2
           exit 1; }
    cmp "build/metrics-fast-j$j.txt" "build/metrics-vf-off-j$j.txt" \
      || { echo "ci.sh: --vuln-flow off changed metrics (jobs=$j)" >&2
           exit 1; }
  done

  current_step="vuln-flow on vs audit report identity"
  for j in 1 4; do
    for mode in on audit; do
      ./build/tools/owl_cli --jobs "$j" --print-reports --detector-impl fast \
        --vuln-flow "$mode" \
        --manifest "build/manifest-vf-$mode-j$j.json" \
        "${examples[@]}" > "build/out-vf-$mode-j$j.txt"
    done
    diff -u "build/out-vf-on-j$j.txt" "build/out-vf-audit-j$j.txt" \
      || { echo "ci.sh: --vuln-flow audit changed the reports (jobs=$j)" >&2
           exit 1; }
  done

  current_step="flow-only exploit discovery (heap_relay.mir)"
  ./build/tools/owl_cli --jobs 1 --print-reports \
    examples/ir/heap_relay.mir > build/out-hr-off.txt
  grep -q "vulnerability reports: 0" build/out-hr-off.txt \
    || { echo "ci.sh: heap_relay.mir exploit visible without --vuln-flow" >&2
         echo "ci.sh: (the example no longer plants a flow-only exploit)" >&2
         exit 1; }
  ./build/tools/owl_cli --jobs 1 --print-reports --vuln-flow on \
    examples/ir/heap_relay.mir > build/out-hr-on.txt
  grep -q "vulnerability reports: 1" build/out-hr-on.txt \
    || { echo "ci.sh: --vuln-flow on missed the heap_relay exploit" >&2
         exit 1; }
  grep -q "null-pointer-dereference" build/out-hr-on.txt \
    || { echo "ci.sh: heap_relay exploit is not the planted deref" >&2
         exit 1; }

  current_step="vuln-flow effectiveness"
  python3 - <<'EOF'
import json
on = json.load(open("build/manifest-vf-on-j1.json"))
audit = json.load(open("build/manifest-vf-audit-j1.json"))
nodes = on["metrics"].get("valueflow.nodes", 0)
mem_edges = on["metrics"].get("valueflow.mem_edges", 0)
violations = audit["environment"]["advisory_metrics"].get(
    "vulnflow.audit_violations", -1)
if nodes <= 0:
    raise SystemExit("ci.sh: value-flow graph recorded no nodes")
if mem_edges <= 0:
    raise SystemExit("ci.sh: value-flow graph recorded no store->load edges")
if violations != 0:
    raise SystemExit(
        f"ci.sh: vuln-flow audit counted {violations} violation(s)")
EOF

  # Checker-suite gate (DESIGN.md §11), three promises:
  #   (a) --checkers off is byte-identical to not passing the flag at all
  #       (the baseline outputs above ran without it);
  #   (b) each planted exploit example trips exactly its one rule and the
  #       clean examples trip nothing (scripts/check_sarif.py also does
  #       the SARIF 2.1.0 structural validation);
  #   (c) reports and the SARIF log are byte-identical across jobs=1/4
  #       and across repeat runs.
  current_step="checker suite off-mode byte-identity"
  ./build/tools/owl_cli --jobs 1 --print-reports --detector-impl fast \
    --checkers off "${examples[@]}" > build/out-check-off.txt
  diff -u build/out-fast-j1.txt build/out-check-off.txt \
    || { echo "ci.sh: --checkers off changed the reports" >&2; exit 1; }

  current_step="checker suite jobs=1 vs jobs=4 differential + SARIF"
  for j in 1 4; do
    ./build/tools/owl_cli --jobs "$j" --print-reports --detector-impl fast \
      --checkers all --sarif-out "build/checkers-j$j.sarif" \
      "${examples[@]}" > "build/out-check-on-j$j.txt"
  done
  diff -u build/out-check-on-j1.txt build/out-check-on-j4.txt \
    || { echo "ci.sh: jobs=4 checker reports diverged from jobs=1" >&2
         exit 1; }
  cmp build/checkers-j1.sarif build/checkers-j4.sarif \
    || { echo "ci.sh: jobs=4 SARIF diverged from jobs=1" >&2; exit 1; }
  ./build/tools/owl_cli --jobs 4 -q --checkers all \
    --sarif-out build/checkers-repeat.sarif "${examples[@]}" > /dev/null
  cmp build/checkers-j4.sarif build/checkers-repeat.sarif \
    || { echo "ci.sh: repeat run produced a different SARIF log" >&2
         exit 1; }
  python3 scripts/check_sarif.py build/checkers-j1.sarif \
    --expect OWL-DL-001=2 --expect OWL-AV-001=1 --expect OWL-LM-001=1 \
    --expect OWL-CV-001=1 --expect-total 5

  current_step="checker planted-exploit sweep"
  planted="lock_cycle atomicity_split double_unlock cv_missed_wakeup \
    nested_lock_cycle"
  for spec in lock_cycle=OWL-DL-001 atomicity_split=OWL-AV-001 \
              double_unlock=OWL-LM-001 cv_missed_wakeup=OWL-CV-001 \
              nested_lock_cycle=OWL-DL-001; do
    stem="${spec%%=*}"
    rule="${spec##*=}"
    ./build/tools/owl_cli --jobs 1 -q --checkers all \
      --sarif-out "build/checkers-$stem.sarif" \
      "examples/ir/$stem.mir" > /dev/null
    python3 scripts/check_sarif.py "build/checkers-$stem.sarif" \
      --expect "$rule=1" --expect-total 1 \
      || { echo "ci.sh: $stem.mir did not trip exactly one $rule" >&2
           exit 1; }
  done
  for example in "${examples[@]}"; do
    stem="$(basename "$example" .mir)"
    case " $planted " in *" $stem "*) continue ;; esac
    ./build/tools/owl_cli --jobs 1 -q --checkers all \
      --sarif-out build/checkers-clean.sarif "$example" > /dev/null
    python3 scripts/check_sarif.py build/checkers-clean.sarif \
      --expect-total 0 \
      || { echo "ci.sh: checkers reported a finding on clean $stem.mir" >&2
           exit 1; }
  done

  # Repeat-run determinism: two identical invocations must produce
  # byte-identical manifests (minus environment) and metric snapshots.
  current_step="repeat-run manifest/metrics determinism"
  for run in 1 2; do
    ./build/tools/owl_cli --jobs 4 -q \
      --manifest "build/manifest-repeat$run.json" \
      --metrics-out "build/metrics-repeat$run.txt" \
      "${examples[@]}" > /dev/null
  done
  python3 scripts/manifest_diff.py \
    build/manifest-repeat1.json build/manifest-repeat2.json \
    || { echo "ci.sh: repeat runs produced different manifests" >&2
         exit 1; }
  cmp build/metrics-repeat1.txt build/metrics-repeat2.txt \
    || { echo "ci.sh: repeat runs produced different metrics" >&2; exit 1; }

  # The emitted trace must be valid Chrome trace JSON covering every
  # Fig. 3 stage (detection, annotation, race-verification,
  # vuln-analysis, vuln-verification).
  current_step="trace span coverage"
  ./build/tools/owl_cli --jobs 1 -q --trace-out build/trace.json \
    "${examples[@]}" > /dev/null
  python3 - <<'EOF'
import json
trace = json.load(open("build/trace.json"))
names = {e["name"] for e in trace["traceEvents"]}
need = {"detection", "annotation", "race-verification", "vuln-analysis",
        "vuln-verification", "target"}
missing = need - names
if missing:
    raise SystemExit(f"ci.sh: trace missing spans: {sorted(missing)}")
EOF

  current_step="per-stage timing summary"
  ./build/tools/owl_cli --jobs 4 --timings --quiet "${examples[@]}" \
    | grep -q "target-total" \
    || { echo "ci.sh: timing summary missing target-total" >&2; exit 1; }
}

# Service mode under ASan+UBSan: the daemon's fault handling, drain paths,
# and journal replay are exactly where lifetime bugs would hide, so the
# whole serve_check.py battery — differential vs owl_cli, overload shed,
# SIGTERM drain, corrupt-entry eviction, kill -9 journal recovery, and the
# 1k-request soak — runs against sanitized binaries.
stage_serve() {
  if [ "${reuse_build}" = "1" ] && [ -x build-asan/tools/owl_served ] \
     && [ -x build-asan/tools/owl_cli ] \
     && [ -x build-asan/tests/owl_integration_tests ]; then
    echo "ci.sh: OWL_CI_REUSE_BUILD=1: reusing existing build-asan/ tree"
  else
    current_step="configure (ASan+UBSan serve tree)"
    cmake -B build-asan -S . ${launcher_args[@]+"${launcher_args[@]}"} \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

    current_step="build owl_served/owl_cli/integration tests (ASan+UBSan)"
    cmake --build build-asan -j"${jobs}" \
      --target owl_served owl_cli owl_integration_tests
  fi

  current_step="run serve lifecycle tests (ASan+UBSan)"
  ./build-asan/tests/owl_integration_tests --gtest_filter='Serve*'

  current_step="serve robustness + differential gate (ASan+UBSan)"
  python3 scripts/serve_check.py \
    --served build-asan/tools/owl_served \
    --cli build-asan/tools/owl_cli \
    --examples examples/ir
}

# Repair-differential gate (DESIGN.md §13). Four promises:
#   (a) every confirmed-race example yields a *_fixed.mir whose report
#       passes the owl-repair-v1 schema with the planted strategy, and
#       race-free examples report no_races;
#   (b) re-running the full pipeline on each fixed module — fast detector,
#       --predict on, --checkers all — confirms zero races and no checker
#       finding the original did not already have;
#   (c) the produced fixed modules are byte-identical to the committed
#       goldens in examples/fixed/, across jobs=1/4 and repeat runs;
#   (d) a run without --repair never mentions the stage (off-mode purity).
stage_repair() {
  current_step="collect examples (repair)"
  examples=(examples/ir/*.mir)

  current_step="repair off-mode purity"
  ./build/tools/owl_cli --jobs 1 --print-reports \
    "${examples[@]}" > build/out-repair-off.txt
  if grep -q "repair" build/out-repair-off.txt; then
    echo "ci.sh: output without --repair mentions the repair stage" >&2
    exit 1
  fi

  current_step="repair sweep (per example, schema validation)"
  rm -rf build/repair-out
  for example in "${examples[@]}"; do
    stem="$(basename "$example" .mir)"
    ./build/tools/owl_cli "$example" --jobs 1 -q \
      --repair build/repair-out > /dev/null
    [ -f "build/repair-out/${stem}_repair.json" ] \
      || { echo "ci.sh: $stem: no repair report emitted" >&2; exit 1; }
    python3 scripts/check_repair.py "build/repair-out/${stem}_repair.json"
  done

  # Planted ground truth: which examples repair, with which strategy, and
  # which are race-free. A new example must be added to exactly one list.
  current_step="repair planted ground truth"
  repaired="cv_missed_wakeup=lock_insert double_fetch=lock_insert \
    fnptr_dispatch=lock_insert guarded_publish=lock_insert \
    heap_relay=lock_insert lost_update=lock_insert \
    null_publish=lock_insert spawn_window=relocate \
    stale_handoff=lock_insert threadlocal_noise=lock_insert \
    toctou=lock_insert"
  race_free="atomicity_split double_unlock lock_cycle nested_lock_cycle \
    predicted_only"
  for spec in $repaired; do
    stem="${spec%%=*}"
    strategy="${spec##*=}"
    python3 scripts/check_repair.py "build/repair-out/${stem}_repair.json" \
      --expect status=repaired --expect "strategy=${strategy}" \
      || { echo "ci.sh: $stem did not repair via ${strategy}" >&2; exit 1; }
  done
  for stem in $race_free; do
    python3 scripts/check_repair.py "build/repair-out/${stem}_repair.json" \
      --expect status=no_races \
      || { echo "ci.sh: race-free $stem no longer reports no_races" >&2
           exit 1; }
  done
  # Candidate post-mortems: pin the killed_by elimination sequence for two
  # representative reports (a single surviving candidate joins to "").
  for stem in heap_relay spawn_window; do
    python3 scripts/check_repair.py "build/repair-out/${stem}_repair.json" \
      --expect killed_by= \
      || { echo "ci.sh: $stem candidate post-mortem diverged" >&2; exit 1; }
  done
  for example in "${examples[@]}"; do
    stem="$(basename "$example" .mir)"
    case " ${repaired} ${race_free} " in
      *" ${stem}="*|*" ${stem} "*) ;;
      *) echo "ci.sh: $stem.mir missing from the repair ground truth" >&2
         exit 1 ;;
    esac
  done

  current_step="repair golden diff (examples/fixed)"
  for golden in examples/fixed/*_fixed.mir; do
    name="$(basename "$golden")"
    diff -u "$golden" "build/repair-out/$name" \
      || { echo "ci.sh: $name diverged from the committed golden" >&2
           exit 1; }
  done
  for produced in build/repair-out/*_fixed.mir; do
    name="$(basename "$produced")"
    [ -f "examples/fixed/$name" ] \
      || { echo "ci.sh: produced $name has no committed golden" >&2
           exit 1; }
  done

  current_step="repair re-verification of fixed modules"
  for fixed in examples/fixed/*_fixed.mir; do
    stem="$(basename "$fixed" _fixed.mir)"
    ./build/tools/owl_cli "$fixed" --jobs 1 --predict on --checkers all \
      > "build/repair-verify-$stem.txt"
    grep -q "verified races:        0" "build/repair-verify-$stem.txt" \
      || { echo "ci.sh: fixed $stem still has verified races" >&2; exit 1; }
    fixed_findings="$(sed -n 's/.*checker findings: *//p' \
      "build/repair-verify-$stem.txt" | head -1)"
    ./build/tools/owl_cli "examples/ir/$stem.mir" --jobs 1 -q --checkers all \
      > "build/repair-orig-$stem.txt"
    orig_findings="$(sed -n 's/.*checker findings: *//p' \
      "build/repair-orig-$stem.txt" | head -1)"
    [ "$fixed_findings" = "$orig_findings" ] \
      || { echo "ci.sh: fixed $stem has $fixed_findings checker finding(s)," \
                "original had $orig_findings" >&2
           exit 1; }
  done

  current_step="repair jobs=1 vs jobs=4 + repeat-run byte-identity"
  rm -rf build/repair-out-j1 build/repair-out-j4 build/repair-out-repeat
  ./build/tools/owl_cli --jobs 1 --print-reports \
    --repair build/repair-out-j1 --manifest build/manifest-repair-j1.json \
    "${examples[@]}" > build/out-repair-j1.txt
  ./build/tools/owl_cli --jobs 4 --print-reports \
    --repair build/repair-out-j4 --manifest build/manifest-repair-j4.json \
    "${examples[@]}" > build/out-repair-j4.txt
  diff -u build/out-repair-j1.txt build/out-repair-j4.txt \
    || { echo "ci.sh: jobs=4 repair output diverged from jobs=1" >&2
         exit 1; }
  diff -r build/repair-out-j1 build/repair-out-j4 \
    || { echo "ci.sh: jobs=4 repair artifacts diverged from jobs=1" >&2
         exit 1; }
  python3 scripts/manifest_diff.py \
    build/manifest-repair-j1.json build/manifest-repair-j4.json \
    || { echo "ci.sh: jobs=4 repair manifest diverged from jobs=1" >&2
         exit 1; }
  ./build/tools/owl_cli --jobs 4 --print-reports \
    --repair build/repair-out-repeat \
    "${examples[@]}" > build/out-repair-repeat.txt
  diff -u build/out-repair-j4.txt build/out-repair-repeat.txt \
    || { echo "ci.sh: repeat repair run produced different output" >&2
         exit 1; }
  diff -r build/repair-out-j4 build/repair-out-repeat \
    || { echo "ci.sh: repeat repair run produced different artifacts" >&2
         exit 1; }

  current_step="repair fault degradation (repair:throw)"
  ./build/tools/owl_cli examples/ir/lost_update.mir --jobs 1 \
    --repair build/repair-out-fault --inject-fault repair:throw \
    > build/out-repair-fault.txt
  grep -q "degraded(repair:" build/out-repair-fault.txt \
    || { echo "ci.sh: repair:throw did not degrade the repair stage" >&2
         exit 1; }
}

stage_bench() {
  # Release (-O2) build of the bench tree: the optimized code paths the
  # perf numbers come from must compile warning-clean (-Werror).
  # -Wno-restrict: GCC 12's -Wrestrict fires a known false positive inside
  # libstdc++'s inlined std::string operator+ at -O2 (GCC bug 105651).
  current_step="configure (Release bench tree)"
  cmake -B build-release -S . ${launcher_args[@]+"${launcher_args[@]}"} \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-O2 -Werror -Wno-restrict"

  current_step="build bench tree (Release, warning-clean)"
  cmake --build build-release -j"${jobs}" --target micro_perf

  # Regression gate: fresh medians vs the committed baselines. The
  # threshold lives in scripts/check_bench.py (25%); OWL_BENCH_SOFT=1
  # downgrades a regression to a report (shared-runner escape hatch).
  current_step="record fresh detector benchmarks"
  ./build-release/bench/micro_perf \
    --benchmark_filter='Detector|ShadowLookup|VectorClockJoin' \
    --benchmark_repetitions=3 \
    --benchmark_out=build-release/BENCH_detector.json \
    --benchmark_out_format=json > /dev/null

  current_step="record fresh parallel benchmarks"
  ./build-release/bench/micro_perf --benchmark_filter='Parallel|RunMany' \
    --benchmark_out=build-release/BENCH_parallel.json \
    --benchmark_out_format=json > /dev/null

  current_step="record fresh static-analysis benchmarks"
  ./build-release/bench/micro_perf --benchmark_filter='Andersen|Prescreen' \
    --benchmark_repetitions=3 \
    --benchmark_out=build-release/BENCH_static.json \
    --benchmark_out_format=json > /dev/null

  current_step="record fresh value-flow benchmarks"
  ./build-release/bench/micro_perf \
    --benchmark_filter='ValueFlow|VulnFlow' \
    --benchmark_repetitions=3 \
    --benchmark_out=build-release/BENCH_valueflow.json \
    --benchmark_out_format=json > /dev/null

  current_step="record fresh predict benchmarks"
  ./build-release/bench/micro_perf --benchmark_filter='Predict' \
    --benchmark_repetitions=3 \
    --benchmark_out=build-release/BENCH_predict.json \
    --benchmark_out_format=json > /dev/null

  current_step="record fresh serve benchmarks"
  ./build-release/bench/micro_perf --benchmark_filter='ServeRoundtrip' \
    --benchmark_repetitions=3 \
    --benchmark_out=build-release/BENCH_serve.json \
    --benchmark_out_format=json > /dev/null

  current_step="benchmark regression gate (detector)"
  python3 scripts/check_bench.py \
    build-release/BENCH_detector.json bench/baselines/BENCH_detector.json

  current_step="benchmark regression gate (parallel)"
  python3 scripts/check_bench.py \
    build-release/BENCH_parallel.json bench/baselines/BENCH_parallel.json

  current_step="benchmark regression gate (static analysis)"
  python3 scripts/check_bench.py \
    build-release/BENCH_static.json bench/baselines/BENCH_static.json

  current_step="benchmark regression gate (value flow)"
  python3 scripts/check_bench.py \
    build-release/BENCH_valueflow.json bench/baselines/BENCH_valueflow.json

  current_step="benchmark regression gate (predict)"
  python3 scripts/check_bench.py \
    build-release/BENCH_predict.json bench/baselines/BENCH_predict.json

  current_step="benchmark regression gate (serve)"
  python3 scripts/check_bench.py \
    build-release/BENCH_serve.json bench/baselines/BENCH_serve.json
}

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(all)
fi

for stage in "${stages[@]}"; do
  case "$stage" in
    build)        run_stage build ;;
    ctest)        run_stage ctest ;;
    asan)         run_stage asan ;;
    tsan)         run_stage tsan ;;
    differential) run_stage differential ;;
    serve)        run_stage serve ;;
    repair)       run_stage repair ;;
    bench)        run_stage bench ;;
    all)
      run_stage build
      run_stage ctest
      run_stage asan
      run_stage tsan
      run_stage differential
      run_stage serve
      run_stage repair
      run_stage bench
      ;;
    *)
      echo "ci.sh: unknown stage '$stage'" >&2
      echo "usage: scripts/ci.sh [build|ctest|asan|tsan|differential|serve|repair|bench|all]" >&2
      exit 1
      ;;
  esac
done

echo "ci.sh: all requested stages passed: ${stages[*]}"
