#!/usr/bin/env bash
# CI gate: configure, build, run the full test suite, then rebuild the unit
# tests under ASan+UBSan and run them again. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

current_step="startup"
trap 'echo "ci.sh: FAILED during: ${current_step}" >&2' ERR

jobs="$(nproc)"

current_step="configure"
cmake -B build -S .

current_step="build"
cmake --build build -j"${jobs}"

current_step="ctest"
ctest --test-dir build --output-on-failure -j"${jobs}"

# Sanitizer pass: a separate tree so the regular build stays reusable.
current_step="configure (ASan+UBSan)"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

current_step="build owl_unit_tests (ASan+UBSan)"
cmake --build build-asan -j"${jobs}" --target owl_unit_tests

current_step="run owl_unit_tests (ASan+UBSan)"
./build-asan/tests/owl_unit_tests

# ThreadSanitizer pass: a concurrency-attack detector must not ship its own
# races. The TSan tree runs the thread-pool/log/stats unit tests and the
# jobs=1-vs-jobs=4 pipeline equivalence tests with real worker threads.
current_step="configure (TSan)"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all -fno-omit-frame-pointer"

current_step="build test binaries (TSan)"
cmake --build build-tsan -j"${jobs}" --target owl_unit_tests owl_integration_tests

current_step="run thread_pool tests (TSan)"
./build-tsan/tests/owl_unit_tests \
  --gtest_filter='ThreadPoolTest.*:LogSinkTest.*:ConcurrentStatsTest.*:StageTimingsTest.*'

current_step="run parallel_equivalence tests (TSan)"
./build-tsan/tests/owl_integration_tests --gtest_filter='ParallelEquivalenceTest.*'

# Differential gate on the shipped examples: parallel execution must be
# byte-identical to sequential, and the per-stage timing summary must show
# every stage ran (printed for the CI log; timing lines are excluded from
# the diff because wall-clock varies run to run).
current_step="jobs=1 vs jobs=4 differential (examples)"
examples=(examples/ir/double_fetch.mir examples/ir/toctou.mir)
./build/tools/owl_cli --jobs 1 --print-reports "${examples[@]}" > build/jobs1.out
./build/tools/owl_cli --jobs 4 --print-reports "${examples[@]}" > build/jobs4.out
diff -u build/jobs1.out build/jobs4.out \
  || { echo "ci.sh: jobs=4 output diverged from jobs=1" >&2; exit 1; }

current_step="per-stage timing summary"
./build/tools/owl_cli --jobs 4 --timings --quiet "${examples[@]}"
./build/tools/owl_cli --jobs 4 --timings --quiet "${examples[@]}" \
  | grep -q "target-total" \
  || { echo "ci.sh: timing summary missing target-total" >&2; exit 1; }

# Detector differential gate: the fast substrate (paged shadow, epoch fast
# paths, lazy capture) must emit byte-identical output to the reference
# hash-map substrate on every example workload, sequentially and under the
# jobs=4 fan-out, and under an injected detection fault (truncated events).
current_step="detector differential gate (reference vs fast)"
for j in 1 4; do
  ./build/tools/owl_cli --jobs "$j" --print-reports \
    --detector-impl reference "${examples[@]}" > "build/impl-ref-j$j.out"
  ./build/tools/owl_cli --jobs "$j" --print-reports \
    --detector-impl fast "${examples[@]}" > "build/impl-fast-j$j.out"
  diff -u "build/impl-ref-j$j.out" "build/impl-fast-j$j.out" \
    || { echo "ci.sh: fast detector diverged from reference (jobs=$j)" >&2
         exit 1; }
done
./build/tools/owl_cli --jobs 1 --print-reports --seed 5 \
  --inject-fault detect:truncate:2 \
  --detector-impl reference "${examples[@]}" > build/impl-ref-fault.out
./build/tools/owl_cli --jobs 1 --print-reports --seed 5 \
  --inject-fault detect:truncate:2 \
  --detector-impl fast "${examples[@]}" > build/impl-fast-fault.out
diff -u build/impl-ref-fault.out build/impl-fast-fault.out \
  || { echo "ci.sh: fast detector diverged under injected fault" >&2
       exit 1; }

# Release (-O2) build of the bench tree: the optimized code paths the
# perf numbers come from must compile warning-clean (-Werror).
# -Wno-restrict: GCC 12's -Wrestrict fires a known false positive inside
# libstdc++'s inlined std::string operator+ at -O2 (GCC bug 105651).
current_step="configure (Release bench tree)"
cmake -B build-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-O2 -Werror -Wno-restrict"

current_step="build bench tree (Release, warning-clean)"
cmake --build build-release -j"${jobs}" --target micro_perf

echo "ci.sh: all gates passed"
