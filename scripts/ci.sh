#!/usr/bin/env bash
# CI gate: configure, build, run the full test suite, then rebuild the unit
# tests under ASan+UBSan and run them again. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

current_step="startup"
trap 'echo "ci.sh: FAILED during: ${current_step}" >&2' ERR

jobs="$(nproc)"

current_step="configure"
cmake -B build -S .

current_step="build"
cmake --build build -j"${jobs}"

current_step="ctest"
ctest --test-dir build --output-on-failure -j"${jobs}"

# Sanitizer pass: a separate tree so the regular build stays reusable.
current_step="configure (ASan+UBSan)"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

current_step="build owl_unit_tests (ASan+UBSan)"
cmake --build build-asan -j"${jobs}" --target owl_unit_tests

current_step="run owl_unit_tests (ASan+UBSan)"
./build-asan/tests/owl_unit_tests

echo "ci.sh: all gates passed"
