#!/usr/bin/env python3
"""End-to-end robustness and differential gate for owl_served.

    serve_check.py --served BIN --cli BIN --examples DIR [--quick] [--soak N]

Drives a real owl_served over its Unix-domain socket and proves the
service-mode claims (DESIGN.md §10):

  differential  every example x detector impl x jobs, cold cache and warm
                cache: the response's "output" bytes and "exit" status are
                byte-identical to one-shot owl_cli, and the warm hit
                reproduces the cold miss (same bytes, same manifest_sha)
  shed          overload answers structured rejections (queue_full,
                client_inflight_exceeded) with a retry hint — admitted
                requests still complete
  drain         SIGTERM mid-request: the in-flight response is still
                delivered, then the daemon exits 0
  corrupt       a bit-flipped cache entry is evicted and recomputed, never
                served; the recomputed bytes match owl_cli
  kill9         kill -9 inside the cache-write window: on restart the
                journal replays the stranded request into the cache and a
                retry is a warm hit with the same bytes
  soak          N pipelined analyze requests (default 1000) over 4
                concurrent connections, mixed jobs: every response
                byte-identical to owl_cli, hit/miss/store counters exact

--quick runs the ctest-sized subset (2 examples, fast impl, jobs 1, plus
shed + drain + corrupt) and skips kill9 and the soak.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


def fail(msg):
    sys.exit(f"serve_check.py: FAIL: {msg}")


def check(cond, msg):
    if not cond:
        fail(msg)


class Daemon:
    """One owl_served process: spawn, wait for readiness, stop, autopsy."""

    def __init__(self, served, socket_path, *extra_flags):
        self.socket_path = socket_path
        self.proc = subprocess.Popen(
            [served, "--socket", socket_path, *extra_flags],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self._stderr_lines = []
        self._stderr_thread = threading.Thread(
            target=self._drain_stderr, daemon=True
        )
        self._stderr_thread.start()
        deadline = time.monotonic() + 30
        while True:
            line = self.proc.stdout.readline()
            if "listening on" in line:
                break
            if not line or time.monotonic() > deadline:
                self.proc.kill()
                fail("daemon never printed its readiness line")

    def _drain_stderr(self):
        for line in self.proc.stderr:
            self._stderr_lines.append(line)

    def stderr_text(self):
        self._stderr_thread.join(timeout=10)
        return "".join(self._stderr_lines)

    def sigterm_and_wait(self, timeout=60):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill9(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def expect_clean_exit(self, what):
        code = self.sigterm_and_wait()
        check(code == 0, f"{what}: daemon exited {code}, want 0")
        check(
            "drained, exiting" in self.stderr_text(),
            f"{what}: daemon exit without the drain message",
        )


class Conn:
    """One client connection. Responses may arrive out of order (the
    protocol says correlate by id), so undelivered ones park in a dict."""

    _counter = 0

    def __init__(self, socket_path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(socket_path)
        self.sock.settimeout(120)
        self.file = self.sock.makefile("r", encoding="utf-8")
        self.parked = {}

    def close(self):
        self.file.close()
        self.sock.close()

    def send(self, obj):
        if "id" not in obj:
            Conn._counter += 1
            obj = {**obj, "id": f"req-{Conn._counter}"}
        self.sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))
        return obj["id"]

    def _recv_match(self, pred, what):
        for rid, msg in list(self.parked.items()):
            if pred(msg):
                del self.parked[rid]
                return msg
        while True:
            line = self.file.readline()
            if not line:
                fail(f"connection closed while waiting for {what}")
            msg = json.loads(line)
            if pred(msg):
                return msg
            self.parked[msg.get("id", "")] = msg

    def recv(self, rid):
        return self._recv_match(lambda m: m.get("id") == rid, f"id={rid}")

    def call(self, obj):
        return self.recv(self.send(obj))

    def stats(self):
        self.send({"op": "stats"})
        return self._recv_match(lambda m: "stats" in m, "stats")["stats"]


def run_cli(cli, module, impl="fast", jobs=1):
    """Expected bytes: one-shot owl_cli on the same module and options."""
    result = subprocess.run(
        [cli, module, "--detector-impl", impl, "--jobs", str(jobs)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    return result.stdout, result.returncode


def analyze(module, impl="fast", jobs=1, client=None):
    req = {
        "op": "analyze",
        "module_path": module,
        "options": {"detector_impl": impl, "jobs": jobs},
    }
    if client is not None:
        req["client"] = client
    return req


def expect_identical(resp, expected_out, expected_exit, what):
    check(
        resp.get("status") == "ok",
        f"{what}: status={resp.get('status')} ({resp.get('reason')})",
    )
    check(
        resp.get("exit") == expected_exit,
        f"{what}: exit={resp.get('exit')}, owl_cli exited {expected_exit}",
    )
    if resp.get("output") != expected_out:
        fail(
            f"{what}: response output diverged from owl_cli stdout\n"
            f"--- owl_cli ---\n{expected_out}\n"
            f"--- owl_served ---\n{resp.get('output')}"
        )


def corrupt_cache_dir(cache_dir):
    """Flip one byte in the middle of every committed cache entry."""
    flipped = 0
    for name in os.listdir(cache_dir):
        path = os.path.join(cache_dir, name)
        if not os.path.isfile(path):
            continue
        with open(path, "r+b") as f:
            data = f.read()
            if not data:
                continue
            mid = len(data) // 2
            f.seek(mid)
            f.write(bytes([data[mid] ^ 0x40]))
            flipped += 1
    return flipped


# --- phases -----------------------------------------------------------


def phase_differential(cfg, examples, impls, jobs_list):
    """Daemon bytes == owl_cli bytes, cold and warm, every combination."""
    cache_dir = os.path.join(cfg.tmp, "diff-cache")
    daemon = Daemon(cfg.served, cfg.socket, "--cache-dir", cache_dir)
    conn = Conn(cfg.socket)
    cases = 0
    for module in examples:
        per_jobs = {}
        for impl in impls:
            for jobs in jobs_list:
                expected_out, expected_exit = run_cli(
                    cfg.cli, module, impl, jobs
                )
                what = f"{os.path.basename(module)} impl={impl} jobs={jobs}"
                cold = conn.call(analyze(module, impl, jobs))
                expect_identical(cold, expected_out, expected_exit, what)
                check(
                    cold.get("cache") == "miss",
                    f"{what}: first request was {cold.get('cache')}, "
                    "want miss",
                )
                warm = conn.call(analyze(module, impl, jobs))
                expect_identical(warm, expected_out, expected_exit, what)
                check(
                    warm.get("cache") == "hit",
                    f"{what}: repeat request was {warm.get('cache')}, "
                    "want hit",
                )
                check(
                    warm.get("manifest_sha") == cold.get("manifest_sha"),
                    f"{what}: warm manifest_sha diverged from cold",
                )
                per_jobs.setdefault(impl, {})[jobs] = cold["output"]
                cases += 1
        # Jobs-invariance and impl-invariance through the daemon: every
        # combination must have produced the same report bytes.
        outputs = {
            out for by_jobs in per_jobs.values() for out in by_jobs.values()
        }
        check(
            len(outputs) == 1,
            f"{os.path.basename(module)}: outputs differ across "
            f"impl/jobs combinations",
        )
    stats = conn.stats()
    check(
        stats["cache"]["misses"] == cases and stats["cache"]["hits"] == cases,
        f"differential: cache counters {stats['cache']} != "
        f"{cases} misses + {cases} hits",
    )
    conn.close()
    daemon.expect_clean_exit("differential")
    print(
        f"serve_check.py: differential OK "
        f"({cases} cases, cold+warm byte-identical to owl_cli)"
    )


def phase_shed(cfg, module):
    """Overload → structured rejections; admitted work still completes."""
    cache_dir = os.path.join(cfg.tmp, "shed-cache")
    daemon = Daemon(
        cfg.served,
        cfg.socket,
        "--cache-dir",
        cache_dir,
        "--queue-depth",
        "2",
        "--max-inflight",
        "1",
        "--retry-after-ms",
        "250",
        # Every cache read stalls ~2s: holds the admitted slots occupied
        # long enough for the overflow requests to arrive deterministically.
        "--inject-fault",
        "cache-read:stall",
    )
    conn_a = Conn(cfg.socket)
    conn_b = Conn(cfg.socket)
    a1 = conn_a.send(analyze(module, client="client-a"))
    time.sleep(0.3)  # a1 is admitted and stalling in cache-read
    a2 = conn_a.recv(conn_a.send(analyze(module, client="client-a")))
    check(
        a2.get("status") == "rejected"
        and a2.get("reason") == "client_inflight_exceeded",
        f"shed: second same-client request got {a2}, want "
        "client_inflight_exceeded",
    )
    check(
        a2.get("retry_after_ms") == 250,
        f"shed: rejection retry_after_ms={a2.get('retry_after_ms')}, want 250",
    )
    b1 = conn_b.send(analyze(module, client="client-b"))
    time.sleep(0.3)  # b1 takes the second (and last) admission slot
    b2 = conn_b.recv(conn_b.send(analyze(module, client="client-c")))
    check(
        b2.get("status") == "rejected" and b2.get("reason") == "queue_full",
        f"shed: over-capacity request got {b2}, want queue_full",
    )
    # The two admitted requests were never harmed by the shedding.
    for conn, rid, who in ((conn_a, a1, "a1"), (conn_b, b1, "b1")):
        resp = conn.recv(rid)
        check(
            resp.get("status") == "ok",
            f"shed: admitted request {who} got {resp.get('status')}",
        )
    stats = conn_a.stats()
    check(
        stats["shed"]["queue_full"] == 1
        and stats["shed"]["client_inflight"] == 1,
        f"shed: counters {stats['shed']} != one of each",
    )
    conn_a.close()
    conn_b.close()
    daemon.expect_clean_exit("shed")
    print("serve_check.py: shed OK (queue_full + client_inflight rejections)")


def phase_drain(cfg, module):
    """SIGTERM mid-request: the response still arrives, then exit 0."""
    cache_dir = os.path.join(cfg.tmp, "drain-cache")
    daemon = Daemon(
        cfg.served,
        cfg.socket,
        "--cache-dir",
        cache_dir,
        # Widen the in-flight window so the signal reliably lands mid-work.
        "--inject-fault",
        "cache-write:stall",
    )
    expected_out, expected_exit = run_cli(cfg.cli, module)
    conn = Conn(cfg.socket)
    rid = conn.send(analyze(module))
    time.sleep(0.5)  # the request is stalling in cache-write
    daemon.proc.send_signal(signal.SIGTERM)
    resp = conn.recv(rid)  # delivered despite the shutdown in progress
    expect_identical(resp, expected_out, expected_exit, "drain in-flight")
    code = daemon.proc.wait(timeout=60)
    check(code == 0, f"drain: daemon exited {code}, want 0")
    check(
        "drained, exiting" in daemon.stderr_text(),
        "drain: daemon exit without the drain message",
    )
    conn.close()
    print("serve_check.py: drain OK (SIGTERM delivered the response, exit 0)")


def phase_corrupt(cfg, module):
    """A corrupt cache entry is evicted and recomputed, never served."""
    cache_dir = os.path.join(cfg.tmp, "corrupt-cache")
    daemon = Daemon(cfg.served, cfg.socket, "--cache-dir", cache_dir)
    expected_out, expected_exit = run_cli(cfg.cli, module)
    conn = Conn(cfg.socket)
    first = conn.call(analyze(module))
    expect_identical(first, expected_out, expected_exit, "corrupt seed run")
    check(first.get("cache") == "miss", "corrupt: seed run was not a miss")
    flipped = corrupt_cache_dir(cache_dir)
    check(flipped >= 1, "corrupt: no cache entry file found to corrupt")
    second = conn.call(analyze(module))
    expect_identical(second, expected_out, expected_exit, "corrupt reread")
    check(
        second.get("cache") == "miss",
        f"corrupt: tampered entry served as {second.get('cache')}",
    )
    third = conn.call(analyze(module))
    check(
        third.get("cache") == "hit",
        "corrupt: healed entry did not serve warm",
    )
    stats = conn.stats()
    check(
        stats["cache"]["evictions"] == 1,
        f"corrupt: evictions={stats['cache']['evictions']}, want 1",
    )
    conn.close()
    daemon.expect_clean_exit("corrupt")
    print("serve_check.py: corrupt OK (bit-flip evicted, recomputed, healed)")


def phase_kill9(cfg, module):
    """kill -9 mid-request: journal replay pays the lost response."""
    cache_dir = os.path.join(cfg.tmp, "kill9-cache")
    journal = os.path.join(cfg.tmp, "kill9-journal.log")
    daemon = Daemon(
        cfg.served,
        cfg.socket,
        "--cache-dir",
        cache_dir,
        "--journal",
        journal,
        # The stall creates a deterministic kill window after the journal's
        # A record is durable but before the entry commit and the response.
        "--inject-fault",
        "cache-write:stall",
    )
    expected_out, expected_exit = run_cli(cfg.cli, module)
    conn = Conn(cfg.socket)
    conn.send(analyze(module))
    time.sleep(0.5)  # analysis done, stalled in cache-write
    daemon.kill9()
    conn.close()
    check(os.path.getsize(journal) > 0, "kill9: journal is empty after kill")
    committed = (
        [n for n in os.listdir(cache_dir)] if os.path.isdir(cache_dir) else []
    )
    check(
        not any(os.path.isfile(os.path.join(cache_dir, n)) for n in committed),
        "kill9: cache has a committed entry despite dying pre-commit",
    )

    reborn = Daemon(
        cfg.served,
        cfg.socket,
        "--cache-dir",
        cache_dir,
        "--journal",
        journal,
    )
    conn = Conn(cfg.socket)
    retry = conn.call(analyze(module))
    expect_identical(retry, expected_out, expected_exit, "kill9 retry")
    check(
        retry.get("cache") == "hit",
        f"kill9: retry was {retry.get('cache')}, want hit (replayed entry)",
    )
    stats = conn.stats()
    check(
        stats["replayed"] == 1,
        f"kill9: stats replayed={stats['replayed']}, want 1",
    )
    conn.close()
    reborn.expect_clean_exit("kill9")
    check(
        "replayed 1 journal entry" in reborn.stderr_text(),
        "kill9: restart did not log the journal replay",
    )
    check(
        os.path.getsize(journal) == 0,
        "kill9: journal not truncated after a clean drain",
    )
    print("serve_check.py: kill9 OK (journal replayed, warm retry identical)")


def phase_soak(cfg, examples, total):
    """total pipelined requests over 4 connections, exact accounting."""
    modules = examples[: min(4, len(examples))]
    jobs_list = [1, 4]
    expected = {
        (m, j): run_cli(cfg.cli, m, "fast", j)
        for m in modules
        for j in jobs_list
    }
    cache_dir = os.path.join(cfg.tmp, "soak-cache")
    daemon = Daemon(
        cfg.served,
        cfg.socket,
        "--cache-dir",
        cache_dir,
        "--queue-depth",
        str(total + 64),
        "--max-inflight",
        str(total + 64),
    )

    conns = 4
    per_conn = total // conns
    remainder = total - per_conn * conns
    errors = []

    def worker(conn_index, count):
        try:
            conn = Conn(cfg.socket)
            window = []  # (rid, module, jobs) with at most 8 outstanding
            for i in range(count):
                module = modules[i % len(modules)]
                jobs = jobs_list[(i // len(modules)) % len(jobs_list)]
                rid = conn.send(analyze(module, "fast", jobs))
                window.append((rid, module, jobs))
                if len(window) >= 8:
                    settle(conn, *window.pop(0))
            while window:
                settle(conn, *window.pop(0))
            conn.close()
        except BaseException as e:  # noqa: BLE001 — reported by the main thread
            errors.append(f"conn {conn_index}: {e}")

    def settle(conn, rid, module, jobs):
        out, code = expected[(module, jobs)]
        resp = conn.recv(rid)
        expect_identical(
            resp, out, code, f"soak {os.path.basename(module)} jobs={jobs}"
        )

    threads = [
        threading.Thread(
            target=worker, args=(i, per_conn + (1 if i < remainder else 0))
        )
        for i in range(conns)
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    elapsed = time.monotonic() - start
    check(not errors, "soak: " + "; ".join(errors))

    # A response is delivered *before* its request settles (journal C,
    # slot release, completed++), so a client that has every response can
    # still observe completed < accepted for an instant. Poll until the
    # daemon is quiescent, then assert the exact counters.
    conn = Conn(cfg.socket)
    deadline = time.monotonic() + 30
    while True:
        stats = conn.stats()
        if stats["completed"] == total or time.monotonic() > deadline:
            break
        time.sleep(0.05)
    conn.close()
    keys = len(expected)
    check(
        stats["accepted"] == total and stats["completed"] == total,
        f"soak: accepted/completed {stats['accepted']}/{stats['completed']}"
        f" != {total}",
    )
    # The executor serializes requests, so exactly the first request per
    # (module, jobs) key misses and stores; every other one must hit.
    cache = stats["cache"]
    check(
        cache["misses"] == keys
        and cache["hits"] == total - keys
        and cache["stores"] == keys
        and cache["evictions"] == 0,
        f"soak: cache counters {cache} != exactly {keys} misses/stores, "
        f"{total - keys} hits, 0 evictions",
    )
    shed = stats["shed"]
    check(
        shed["queue_full"] == 0 and shed["client_inflight"] == 0,
        f"soak: unexpected shedding {shed}",
    )
    daemon.expect_clean_exit("soak")
    print(
        f"serve_check.py: soak OK ({total} requests, {conns} connections, "
        f"{elapsed:.1f}s, {cache['hits']} hits / {cache['misses']} misses, "
        "all byte-identical)"
    )


class Config:
    pass


def main():
    parser = argparse.ArgumentParser(
        description="owl_served robustness + differential gate"
    )
    parser.add_argument("--served", required=True, help="owl_served binary")
    parser.add_argument("--cli", required=True, help="owl_cli binary")
    parser.add_argument("--examples", required=True, help="examples/ir dir")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="ctest-sized subset: 2 examples, fast/jobs=1, no kill9/soak",
    )
    parser.add_argument(
        "--soak", type=int, default=1000, help="soak request count"
    )
    args = parser.parse_args()

    examples = sorted(
        os.path.join(args.examples, name)
        for name in os.listdir(args.examples)
        if name.endswith(".mir")
    )
    check(len(examples) >= 2, f"need >= 2 examples in {args.examples}")

    cfg = Config()
    cfg.served = os.path.abspath(args.served)
    cfg.cli = os.path.abspath(args.cli)
    with tempfile.TemporaryDirectory(prefix="owl-serve-check-") as tmp:
        cfg.tmp = tmp
        # /tmp keeps the path under the AF_UNIX 108-byte sun_path limit
        # even when the build tree's own path is deep.
        cfg.socket = os.path.join(tmp, "owl.sock")

        if args.quick:
            phase_differential(cfg, examples[:2], ["fast"], [1])
        else:
            phase_differential(cfg, examples, ["fast", "reference"], [1, 4])
        phase_shed(cfg, examples[0])
        phase_drain(cfg, examples[0])
        phase_corrupt(cfg, examples[0])
        if not args.quick:
            phase_kill9(cfg, examples[0])
            phase_soak(cfg, examples, max(args.soak, 1000))

    print("serve_check.py: all phases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
