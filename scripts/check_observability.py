#!/usr/bin/env python3
"""Validate owl_cli's observability artifacts against its own stdout.

    check_observability.py trace.json manifest.json metrics.txt stdout.txt

Checks (ctest: owl_cli_observability; also usable standalone):
  - the trace is valid Chrome trace_event JSON whose spans cover every
    Fig. 3 stage plus the per-target envelope;
  - the manifest is valid owl-manifest-v1 JSON and each target's
    StageCounts match the numbers owl_cli printed for that target;
  - the metrics snapshot is non-empty, sorted, and its pipeline.* report
    counters equal the summed stdout numbers.
"""

import json
import re
import sys

FIG3_SPANS = {
    "target",
    "detection",
    "annotation",
    "race-verification",
    "vuln-analysis",
    "vuln-verification",
}

STDOUT_FIELDS = {
    "raw race reports": "raw_reports",
    "adhoc syncs annotated": "adhoc_syncs",
    "verifier eliminated": "verifier_eliminated",
    "verified races": "remaining",
    "vulnerability reports": "vulnerability_reports",
}


def fail(msg):
    sys.exit(f"check_observability.py: {msg}")


def parse_stdout(path):
    """target name -> {manifest_count_field: value}."""
    targets = {}
    current = None
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            head = re.match(r"^owl_cli: (.+)$", line.strip())
            if head:
                current = {}
                targets[head.group(1)] = current
                continue
            if current is None:
                continue
            body = re.match(r"^([a-z ]+?):\s+(\d+)$", line.strip())
            if body and body.group(1) in STDOUT_FIELDS:
                current[STDOUT_FIELDS[body.group(1)]] = int(body.group(2))
    return targets


def main():
    if len(sys.argv) != 5:
        fail(__doc__.strip().splitlines()[2].strip())
    trace_path, manifest_path, metrics_path, stdout_path = sys.argv[1:5]

    # --- trace ---
    with open(trace_path, "r", encoding="utf-8") as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace has no traceEvents")
    for event in events:
        if event.get("ph") != "X" or "ts" not in event or "dur" not in event:
            fail(f"malformed trace event: {event}")
    missing = FIG3_SPANS - {e["name"] for e in events}
    if missing:
        fail(f"trace missing Fig. 3 spans: {sorted(missing)}")

    # --- manifest vs stdout ---
    with open(manifest_path, "r", encoding="utf-8") as f:
        manifest = json.load(f)
    if manifest.get("schema") != "owl-manifest-v1":
        fail(f"unexpected manifest schema: {manifest.get('schema')}")
    printed = parse_stdout(stdout_path)
    if not printed:
        fail("no per-target summaries found in stdout")
    manifest_targets = {t["name"]: t for t in manifest.get("targets", [])}
    if set(printed) != set(manifest_targets):
        fail(
            f"target sets differ: stdout {sorted(printed)} vs "
            f"manifest {sorted(manifest_targets)}"
        )
    for name, expect in printed.items():
        counts = manifest_targets[name].get("counts", {})
        for field, value in expect.items():
            if counts.get(field) != value:
                fail(
                    f"{name}: manifest {field}={counts.get(field)} but "
                    f"stdout printed {value}"
                )

    # --- metrics ---
    with open(metrics_path, "r", encoding="utf-8") as f:
        lines = [line for line in f.read().splitlines() if line]
    if not lines:
        fail("metrics snapshot is empty")
    names = [line.split()[1] for line in lines]
    if names != sorted(names):
        fail("metrics snapshot is not sorted by name")
    counters = {}
    for line in lines:
        parts = line.split()
        if parts[0] == "counter":
            counters[parts[1]] = int(parts[3])
    for metric, field in [
        ("pipeline.reports.raw", "raw_reports"),
        ("pipeline.adhoc_syncs", "adhoc_syncs"),
        ("pipeline.reports.verifier_eliminated", "verifier_eliminated"),
        ("pipeline.reports.verified", "remaining"),
        ("pipeline.vulnerability_reports", "vulnerability_reports"),
    ]:
        total = sum(t.get(field, 0) for t in printed.values())
        if counters.get(metric) != total:
            fail(
                f"metric {metric}={counters.get(metric)} but stdout sums "
                f"to {total}"
            )
    if counters.get("pipeline.targets") != len(printed):
        fail(
            f"metric pipeline.targets={counters.get('pipeline.targets')} "
            f"but stdout shows {len(printed)} targets"
        )

    print("check_observability.py: trace/manifest/metrics agree with stdout")
    return 0


if __name__ == "__main__":
    sys.exit(main())
