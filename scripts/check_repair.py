#!/usr/bin/env python3
"""Structurally validate an OWL repair report (repair/engine.cpp).

Hand-rolled on purpose: CI containers only carry the Python stdlib, so
this checks the owl-repair-v1 shape without a jsonschema dependency:

  - schema == "owl-repair-v1", nonempty target
  - status in {repaired, unrepaired, no_races}
  - strategy in {lock_reuse, relocate, lock_insert} when repaired,
    absent/empty otherwise
  - when repaired: all three gates (race_free, no_new_findings,
    output_equal) are true, fixed_module is the target stem +
    "_fixed.mir", candidates_tried >= 1, races non-empty
  - when no_races: candidates_tried == 0 and races empty
  - every races[] entry has nonempty object/first/second strings
  - candidates[] (one post-mortem per planned candidate) is consistent:
    len == candidates_tried, every entry has a valid strategy and a
    killed_by in {apply_failed, output_equal, no_new_findings, race_free,
    ""}; exactly the repaired reports end in a ""-killed (winning) entry,
    and every non-final entry names its killing gate

Usage:
    check_repair.py REPORT.json                          # shape only
    check_repair.py REPORT.json --expect status=repaired
    check_repair.py REPORT.json --expect strategy=lock_insert
    check_repair.py REPORT.json --expect killed_by=output_equal,race_free,

--expect KEY=VALUE pins one top-level string field (status, strategy,
lock, fixed_module); repeatable. The special key killed_by pins the full
per-candidate elimination sequence as a comma-joined list (a trailing
comma therefore means "last candidate won"). Exit 0 iff every check
passes. Used by scripts/ci.sh's repair stage to gate the planted-example
ground truth.
"""

import argparse
import json
import sys

STATUSES = {"repaired", "unrepaired", "no_races"}
STRATEGIES = {"lock_reuse", "relocate", "lock_insert"}
EXPECTABLE = {"status", "strategy", "lock", "fixed_module", "killed_by"}
KILLERS = {"apply_failed", "output_equal", "no_new_findings", "race_free", ""}


def fail(msg):
    sys.exit(f"check_repair.py: {msg}")


def require(cond, msg):
    if not cond:
        fail(msg)


def check_candidates(candidates, tried, status):
    require(isinstance(candidates, list), "candidates is not an array")
    require(
        len(candidates) == tried,
        f"candidates has {len(candidates)} entries, candidates_tried={tried}",
    )
    for i, candidate in enumerate(candidates):
        label = f"candidates[{i}]"
        require(isinstance(candidate, dict), f"{label}: not an object")
        require(
            candidate.get("strategy") in STRATEGIES,
            f"{label}: strategy {candidate.get('strategy')!r} not in "
            f"{sorted(STRATEGIES)}",
        )
        require(
            isinstance(candidate.get("lock"), str),
            f"{label}: lock must be a string",
        )
        killed = candidate.get("killed_by")
        require(
            killed in KILLERS,
            f"{label}: killed_by {killed!r} not in {sorted(KILLERS)}",
        )
        if i + 1 < len(candidates):
            require(
                killed != "",
                f"{label}: non-final candidate with empty killed_by",
            )
    if status == "repaired":
        require(
            candidates and candidates[-1].get("killed_by") == "",
            "repaired report whose last candidate was killed",
        )
    else:
        require(
            all(c.get("killed_by") != "" for c in candidates),
            f"{status} report with a surviving candidate",
        )


def check_races(races):
    require(isinstance(races, list), "races is not an array")
    for i, race in enumerate(races):
        label = f"races[{i}]"
        require(isinstance(race, dict), f"{label}: not an object")
        for key in ("object", "first", "second"):
            value = race.get(key)
            require(
                isinstance(value, str) and value,
                f"{label}: {key} must be a nonempty string, got {value!r}",
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="repair report JSON to validate")
    parser.add_argument(
        "--expect",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="require this exact value for a top-level string field",
    )
    args = parser.parse_args()

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {args.report}: {err}")

    require(isinstance(report, dict), "top level is not a JSON object")
    require(
        report.get("schema") == "owl-repair-v1",
        f"schema {report.get('schema')!r} != 'owl-repair-v1'",
    )
    target = report.get("target")
    require(
        isinstance(target, str) and target,
        f"target must be a nonempty string, got {target!r}",
    )
    status = report.get("status")
    require(status in STATUSES, f"status {status!r} not in {sorted(STATUSES)}")

    tried = report.get("candidates_tried")
    require(
        isinstance(tried, int) and tried >= 0,
        f"candidates_tried must be a non-negative int, got {tried!r}",
    )
    gates = report.get("gates")
    require(isinstance(gates, dict), "gates is not an object")
    for key in ("race_free", "no_new_findings", "output_equal"):
        require(
            isinstance(gates.get(key), bool),
            f"gates.{key} must be a bool, got {gates.get(key)!r}",
        )
    check_races(report.get("races"))
    check_candidates(report.get("candidates"), tried, status)

    stem = target.rsplit("/", 1)[-1]
    if stem.endswith(".mir"):
        stem = stem[: -len(".mir")]
    if status == "repaired":
        require(
            report.get("strategy") in STRATEGIES,
            f"repaired report needs a strategy in {sorted(STRATEGIES)}, "
            f"got {report.get('strategy')!r}",
        )
        for key in ("race_free", "no_new_findings", "output_equal"):
            require(gates[key], f"repaired report with gates.{key} == false")
        require(
            report.get("fixed_module") == f"{stem}_fixed.mir",
            f"fixed_module {report.get('fixed_module')!r} != "
            f"'{stem}_fixed.mir'",
        )
        require(tried >= 1, "repaired report with candidates_tried == 0")
        require(len(report["races"]) >= 1, "repaired report with no races")
    elif status == "no_races":
        require(tried == 0, "no_races report with candidates_tried != 0")
        require(not report["races"], "no_races report with races listed")

    for spec in args.expect:
        key, sep, want = spec.partition("=")
        if not sep or key not in EXPECTABLE:
            fail(f"bad --expect {spec!r} (want KEY=VALUE with KEY in "
                 f"{sorted(EXPECTABLE)})")
        if key == "killed_by":
            got = ",".join(c.get("killed_by", "?")
                           for c in report.get("candidates", []))
            # The winning candidate's empty killed_by joins as a trailing
            # comma, so "...,race_free," pins "last candidate won" exactly.
            require(
                got == want,
                f"expected killed_by sequence {want!r}, got {got!r}",
            )
            continue
        got = report.get(key, "")
        require(got == want, f"expected {key}={want!r}, got {got!r}")

    print(
        f"check_repair.py: OK: {args.report}: status={status} "
        f"strategy={report.get('strategy', '') or '-'} "
        f"candidates={tried} races={len(report['races'])}"
    )


if __name__ == "__main__":
    main()
