#!/usr/bin/env bash
# Full reproduction: build, test, regenerate every table and figure.
# Knobs: OWL_BENCH_SCALE (default 1.0), OWL_BENCH_SCHEDULES (default 4).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "Reproduction complete. See EXPERIMENTS.md for the paper-vs-measured"
echo "record; bench_output.txt holds this run's tables and figures."
