#!/usr/bin/env bash
# Full reproduction: build, test, regenerate every table and figure.
# Knobs: OWL_BENCH_SCALE (default 1.0), OWL_BENCH_SCHEDULES (default 4).
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast AND loud: name the step that died instead of ending silently.
current_step="startup"
trap 'echo "reproduce.sh: FAILED during: ${current_step}" >&2' ERR

# Prefer Ninja for fresh trees; an already-configured build/ keeps its
# generator (CMake refuses to switch generators in place).
generator=()
if [ ! -f build/CMakeCache.txt ] && command -v ninja > /dev/null 2>&1; then
  generator=(-G Ninja)
fi

current_step="configure (cmake)"
cmake -B build ${generator[@]+"${generator[@]}"}

current_step="build"
cmake --build build -j"$(nproc)"

current_step="tests (ctest)"
ctest --test-dir build --output-on-failure -j"$(nproc)" 2>&1 | tee test_output.txt

current_step="benchmarks"
: > bench_output.txt
# Each bench sweep drops a run manifest (inputs, options, seeds,
# StageCounts, metrics — DESIGN.md §8) under bench_manifests/ so the
# recorded tables can be cross-checked after the fact.
export OWL_MANIFEST_DIR="$PWD/bench_manifests"
mkdir -p "$OWL_MANIFEST_DIR"
for b in build/bench/*; do
  [ -x "$b" ] || continue
  current_step="benchmark $(basename "$b")"
  "$b" 2>&1 | tee -a bench_output.txt
done

current_step="record BENCH_parallel.json"
./build/bench/micro_perf --benchmark_filter='Parallel|RunMany' \
  --benchmark_out=BENCH_parallel.json --benchmark_out_format=json \
  | tee -a bench_output.txt

# Detection-substrate numbers (impl:0 = reference, impl:1 = fast); the
# fast/reference ratio on BM_DetectorRead and BM_ShadowLookup is the
# headline claim in DESIGN.md §2's "fast substrate" note.
current_step="record BENCH_detector.json"
./build/bench/micro_perf \
  --benchmark_filter='Detector|ShadowLookup|VectorClockJoin' \
  --benchmark_repetitions=3 \
  --benchmark_out=BENCH_detector.json --benchmark_out_format=json \
  | tee -a bench_output.txt

# Static-analysis engine numbers: Andersen solve time, prescreen
# classification, and the detector hot path under a no_race verdict —
# the pruning payoff quoted in EXPERIMENTS.md's prescreen table.
current_step="record BENCH_static.json"
./build/bench/micro_perf \
  --benchmark_filter='Andersen|Prescreen' \
  --benchmark_repetitions=3 \
  --benchmark_out=BENCH_static.json --benchmark_out_format=json \
  | tee -a bench_output.txt

# Memory-aware value-flow numbers: graph construction cost and the
# Algorithm 1 walk when every propagation step crosses a store->load edge
# (the --vuln-flow extension, DESIGN.md §14).
current_step="record BENCH_valueflow.json"
./build/bench/micro_perf \
  --benchmark_filter='ValueFlow|VulnFlow' \
  --benchmark_repetitions=3 \
  --benchmark_out=BENCH_valueflow.json --benchmark_out_format=json \
  | tee -a bench_output.txt

echo
echo "Reproduction complete. See EXPERIMENTS.md for the paper-vs-measured"
echo "record; bench_output.txt holds this run's tables and figures,"
echo "BENCH_parallel.json the --jobs scaling numbers for this host,"
echo "BENCH_detector.json the fast-vs-reference detector substrate numbers,"
echo "BENCH_static.json the static-analysis (points-to/prescreen) numbers,"
echo "BENCH_valueflow.json the value-flow build/walk numbers,"
echo "and bench_manifests/ the per-sweep run manifests (DESIGN.md §8)."
