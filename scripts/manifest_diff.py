#!/usr/bin/env python3
"""Diff two OWL run manifests on their deterministic body.

A manifest (core/manifest.hpp) splits into a diffable body — schema, tool,
options, per-target StageCounts, behavioral metrics — and a non-diffable
"environment" tail (jobs, wall clock, host facts). This tool strips the
tail from both sides, canonicalizes the rest, and diffs:

    manifest_diff.py A.json B.json            # exit 0 iff bodies match
    manifest_diff.py --ignore-tool A B        # also ignore the tool label

Used by scripts/ci.sh's differential stage to prove jobs=1 vs jobs=4 and
repeat runs produce byte-identical behavior.
"""

import argparse
import difflib
import json
import sys


def load_body(path, ignore_tool=False):
    try:
        with open(path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"manifest_diff.py: cannot read {path}: {err}")
    if not isinstance(manifest, dict):
        sys.exit(f"manifest_diff.py: {path}: not a JSON object")
    manifest.pop("environment", None)
    if ignore_tool:
        manifest.pop("tool", None)
    return json.dumps(manifest, indent=1, sort_keys=True).splitlines(
        keepends=True
    )


def main():
    parser = argparse.ArgumentParser(
        description="diff two run manifests, ignoring the environment tail"
    )
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument(
        "--ignore-tool",
        action="store_true",
        help="also ignore the tool label (cross-entry-point comparison)",
    )
    args = parser.parse_args()

    body_a = load_body(args.a, args.ignore_tool)
    body_b = load_body(args.b, args.ignore_tool)
    if body_a == body_b:
        return 0
    sys.stdout.writelines(
        difflib.unified_diff(body_a, body_b, fromfile=args.a, tofile=args.b)
    )
    print(f"manifest_diff.py: {args.a} and {args.b} differ", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
