#!/usr/bin/env python3
"""Structurally validate an OWL SARIF 2.1.0 log (checkers/sarif.cpp).

Hand-rolled on purpose: CI containers only carry the Python stdlib, so
this checks the SARIF shape OWL promises without a jsonschema dependency:

  - top level: $schema names sarif-2.1.0, version == "2.1.0", exactly
    one run
  - tool.driver.name == "owl" with the full 7-entry rule table from
    checkers/rule registry order (OWL-DL-001 first, OWL-CV-002 last),
    unique ids, nonempty name/shortDescription
  - every result: ruleId present in the table, ruleIndex agreeing with
    the table position, level in {error, warning, note}, nonempty
    message.text, locations with artifactLocation.uri (+ startLine >= 1
    when a region is present), properties.target naming the input

Usage:
    check_sarif.py LOG.sarif                      # shape only
    check_sarif.py LOG.sarif --expect OWL-DL-001=1 --expect OWL-AV-001=1
    check_sarif.py LOG.sarif --expect-total 4

--expect RULE=N pins the exact result count for one rule id (rules not
pinned are unconstrained); --expect-total pins the overall result count.
Exit 0 iff every check passes. Used by scripts/ci.sh's differential
stage to gate the checker-suite sweep over examples/ir.
"""

import argparse
import collections
import json
import sys

EXPECTED_RULE_IDS = [
    "OWL-DL-001",
    "OWL-AV-001",
    "OWL-LM-001",
    "OWL-LM-002",
    "OWL-LM-003",
    "OWL-CV-001",
    "OWL-CV-002",
]
LEVELS = {"error", "warning", "note"}


def fail(msg):
    sys.exit(f"check_sarif.py: {msg}")


def require(cond, msg):
    if not cond:
        fail(msg)


def check_rules(driver):
    rules = driver.get("rules")
    require(isinstance(rules, list), "driver.rules is not an array")
    ids = [r.get("id") for r in rules]
    require(
        ids == EXPECTED_RULE_IDS,
        f"rule table mismatch: got {ids}, want {EXPECTED_RULE_IDS}",
    )
    for rule in rules:
        rid = rule["id"]
        require(rule.get("name"), f"rule {rid}: empty name")
        desc = rule.get("shortDescription", {})
        require(
            isinstance(desc, dict) and desc.get("text"),
            f"rule {rid}: empty shortDescription.text",
        )
    return {rid: i for i, rid in enumerate(ids)}


def check_location(res_label, loc):
    phys = loc.get("physicalLocation")
    require(isinstance(phys, dict), f"{res_label}: location lacks physicalLocation")
    art = phys.get("artifactLocation", {})
    require(art.get("uri"), f"{res_label}: location lacks artifactLocation.uri")
    region = phys.get("region")
    if region is not None:
        line = region.get("startLine")
        require(
            isinstance(line, int) and line >= 1,
            f"{res_label}: region.startLine must be a positive int, got {line!r}",
        )


def check_result(i, result, rule_index):
    label = f"results[{i}]"
    rid = result.get("ruleId")
    require(rid in rule_index, f"{label}: ruleId {rid!r} not in the rule table")
    require(
        result.get("ruleIndex") == rule_index[rid],
        f"{label}: ruleIndex {result.get('ruleIndex')!r} disagrees with "
        f"the table position {rule_index[rid]} of {rid}",
    )
    require(
        result.get("level") in LEVELS,
        f"{label}: level {result.get('level')!r} not in {sorted(LEVELS)}",
    )
    message = result.get("message", {})
    require(
        isinstance(message, dict) and message.get("text"),
        f"{label}: empty message.text",
    )
    locations = result.get("locations")
    require(
        isinstance(locations, list) and len(locations) >= 1,
        f"{label}: needs at least one location",
    )
    for loc in locations + result.get("relatedLocations", []):
        check_location(label, loc)
    props = result.get("properties", {})
    require(props.get("target"), f"{label}: properties.target missing")
    return rid


def parse_expect(spec):
    rule, sep, count = spec.partition("=")
    if not sep or rule not in EXPECTED_RULE_IDS or not count.isdigit():
        fail(f"bad --expect {spec!r} (want RULE-ID=N with a known rule id)")
    return rule, int(count)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", help="SARIF log file to validate")
    parser.add_argument(
        "--expect",
        action="append",
        default=[],
        metavar="RULE=N",
        help="require exactly N results for this rule id",
    )
    parser.add_argument(
        "--expect-total",
        type=int,
        default=None,
        metavar="N",
        help="require exactly N results overall",
    )
    args = parser.parse_args()

    try:
        with open(args.log, "r", encoding="utf-8") as f:
            log = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {args.log}: {err}")

    require(isinstance(log, dict), "top level is not a JSON object")
    require(
        "sarif-2.1.0" in log.get("$schema", ""),
        f"$schema {log.get('$schema')!r} does not name sarif-2.1.0",
    )
    require(
        log.get("version") == "2.1.0",
        f"version {log.get('version')!r} != '2.1.0'",
    )
    runs = log.get("runs")
    require(
        isinstance(runs, list) and len(runs) == 1,
        "expected exactly one run",
    )
    driver = runs[0].get("tool", {}).get("driver", {})
    require(driver.get("name") == "owl", f"driver.name {driver.get('name')!r} != 'owl'")
    rule_index = check_rules(driver)

    results = runs[0].get("results")
    require(isinstance(results, list), "run.results is not an array")
    counts = collections.Counter(
        check_result(i, r, rule_index) for i, r in enumerate(results)
    )

    for spec in args.expect:
        rule, want = parse_expect(spec)
        got = counts.get(rule, 0)
        require(got == want, f"expected {want} result(s) for {rule}, got {got}")
    if args.expect_total is not None:
        require(
            len(results) == args.expect_total,
            f"expected {args.expect_total} result(s) total, got {len(results)}",
        )

    print(
        f"check_sarif.py: OK: {args.log}: {len(results)} result(s), "
        f"{len(rule_index)} rules"
    )


if __name__ == "__main__":
    main()
