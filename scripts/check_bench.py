#!/usr/bin/env python3
"""Benchmark-regression gate for the CI bench stage.

Compares a freshly generated Google Benchmark JSON file against the
committed baseline in bench/baselines/ and fails when any benchmark's
median real_time regressed by more than the threshold (default 25%):

    check_bench.py fresh.json baseline.json [--threshold 0.25]

Benchmarks present on only one side are reported but never fail the gate
(benchmarks come and go across PRs); only a measured regression does.
Set OWL_BENCH_SOFT=1 to report regressions without failing — the escape
hatch for noisy shared runners (the GitHub matrix sets it; a quiet
dedicated box can unset it for a hard gate).
"""

import argparse
import json
import os
import sys

# Everything is normalized to nanoseconds before comparing.
TIME_UNITS_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_medians(path):
    """name -> median real_time in ns.

    Prefers explicit "median" aggregates (--benchmark_repetitions runs);
    falls back to the plain per-benchmark entries otherwise.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_bench.py: cannot read {path}: {err}")
    medians = {}
    plains = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("run_name", bench.get("name", ""))
        if not name or "real_time" not in bench:
            continue
        ns = float(bench["real_time"]) * TIME_UNITS_NS.get(
            bench.get("time_unit", "ns"), 1.0
        )
        if bench.get("aggregate_name") == "median":
            medians[name] = ns
        elif bench.get("run_type", "iteration") == "iteration":
            plains[name] = ns
    return medians if medians else plains


def main():
    parser = argparse.ArgumentParser(
        description="fail when fresh medians regress vs the baseline"
    )
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative real_time growth (default 0.25 = +25%%)",
    )
    args = parser.parse_args()

    fresh = load_medians(args.fresh)
    baseline = load_medians(args.baseline)
    if not baseline:
        sys.exit(f"check_bench.py: no benchmarks in baseline {args.baseline}")
    if not fresh:
        sys.exit(f"check_bench.py: no benchmarks in fresh run {args.fresh}")

    soft = os.environ.get("OWL_BENCH_SOFT", "") == "1"
    regressions = []
    for name in sorted(baseline):
        if name not in fresh:
            print(f"check_bench.py: note: {name} missing from fresh run")
            continue
        base, now = baseline[name], fresh[name]
        ratio = now / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, base, now, ratio))
            flag = "  <-- REGRESSION"
        print(
            f"  {name}: baseline {base:.1f}ns, fresh {now:.1f}ns "
            f"({ratio:+.1%} of baseline){flag}"
        )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"check_bench.py: note: {name} not in baseline (new benchmark)")

    if regressions:
        print(
            f"check_bench.py: {len(regressions)} benchmark(s) regressed "
            f"beyond +{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, base, now, ratio in regressions:
            print(
                f"  {name}: {base:.1f}ns -> {now:.1f}ns ({ratio:.2f}x)",
                file=sys.stderr,
            )
        if soft:
            print(
                "check_bench.py: OWL_BENCH_SOFT=1, reporting only",
                file=sys.stderr,
            )
            return 0
        return 1
    print("check_bench.py: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
