// Regenerates Fig. 8 and the §8.4 Apache-46215 result: the unlocked
// busy-counter check/decrement underflows to 18,446,744,073,709,551,614,
// marking a worker the "busiest" forever; find_best_bybusyness then starves
// it — a DoS with a measurable throughput/assignment skew.
#include "common.hpp"
#include "support/strings.hpp"
#include "vuln/hint.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Fig. 8: Apache-46215 busy-counter underflow -> worker-starvation DoS",
      "pointer assignment at proxy_balancer.c:1195 control-dependent on the "
      "corrupted compare at 1192");

  const workloads::Workload w =
      workloads::make_apache_balancer(bench::bench_profile());
  const core::PipelineResult result = bench::run_pipeline(w);

  std::printf("--- OWL's hints on the balancer race ---\n");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    if (exploit.site->loc().file == "proxy_balancer.c") {
      std::fputs(vuln::render_hint(exploit).c_str(), stdout);
    }
  }

  // Request-distribution comparison: healthy run (testing inputs) vs a run
  // where the underflow manifested (exploit inputs). The starved worker's
  // share collapses.
  const auto measure = [&](const std::vector<interp::Word>& inputs,
                           bool require_underflow, std::uint64_t seed_base,
                           std::array<std::int64_t, 4>& served,
                           std::int64_t& busy0) {
    for (unsigned i = 0; i < 50; ++i) {
      auto machine = w.make_machine(inputs);
      interp::RandomScheduler sched(seed_base + i);
      machine->run(sched);
      const bool wrapped = w.attack_succeeded(*machine);
      if (wrapped != require_underflow) continue;
      const interp::Address sbase = machine->global_address("worker_served");
      for (int k = 0; k < 4; ++k) {
        served[static_cast<std::size_t>(k)] = machine->memory().load_raw(
            sbase + static_cast<interp::Address>(k) * 8);
      }
      busy0 = machine->memory().load_raw(
          machine->global_address("worker_busy"));
      return true;
    }
    return false;
  };

  std::array<std::int64_t, 4> healthy{};
  std::array<std::int64_t, 4> attacked{};
  std::int64_t healthy_busy0 = 0;
  std::int64_t attacked_busy0 = 0;
  const bool got_healthy =
      measure(w.testing_inputs, false, 100, healthy, healthy_busy0);
  const bool got_attacked =
      measure(w.exploit_inputs, true, 9100, attacked, attacked_busy0);

  TableFormatter table({"worker", "served (healthy)", "served (under attack)"},
                       {Align::kLeft, Align::kRight, Align::kRight});
  for (int k = 0; k < 4; ++k) {
    table.add_row({"w" + std::to_string(k),
                   got_healthy ? std::to_string(healthy[static_cast<std::size_t>(k)])
                               : "-",
                   got_attacked
                       ? std::to_string(attacked[static_cast<std::size_t>(k)])
                       : "-"});
  }
  std::printf("\n--- request distribution across workers ---\n");
  std::fputs(table.render().c_str(), stdout);

  if (got_attacked) {
    std::printf(
        "\nworker 0's busy counter after the attack: %s (paper observed\n"
        "18,446,744,073,709,551,614) — it is \"the busiest thread ever\"\n"
        "and the balancer ignores it: a DoS on that worker.\n",
        with_commas(static_cast<std::uint64_t>(attacked_busy0)).c_str());
  }
  std::printf("attack detected by pipeline (site 1195 reachable under the\n"
              "corrupted branch): %s\n",
              w.attack_detected(result) ? "yes" : "NO");

  const bool skew =
      got_attacked && attacked[0] <= attacked[1] && attacked[0] <= attacked[2];
  return w.attack_detected(result) && skew ? 0 : 1;
}
