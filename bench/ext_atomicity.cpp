// Extension experiment (paper §8.3, implemented future work): feeding OWL
// from an atomicity-violation detector instead of a race detector.
//
// The bank-teller target is a check-then-act double spend where every
// access is individually lock-protected: happens-before detection (TSan
// mode) is structurally blind to it, while the AVIO/CTrigger-style
// unserializable-interleaving detector reports the triple, and the rest of
// the OWL pipeline — reproduction-based verification, Algorithm 1,
// dynamic vulnerability verification — runs on it unchanged.
#include "common.hpp"
#include "race/tsan_detector.hpp"
#include "support/strings.hpp"
#include "vuln/hint.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Extension: atomicity-violation attacks through the OWL pipeline",
      "§8.3: \"by integrating these detectors OWL can detect more attacks\"");

  const workloads::Workload bank = workloads::make_bank_atomicity();

  // --- head-to-head: TSan mode vs atomicity mode on the same target ---
  TableFormatter table({"detector", "raw reports", "verified", "hints",
                        "attack detected"},
                       {Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kLeft});
  bool atomicity_detected = false;
  for (const auto kind :
       {core::DetectorKind::kTsan, core::DetectorKind::kAtomicity}) {
    core::PipelineTarget target = bank.target();
    target.detector = kind;
    target.detection_schedules = bench::schedules_from_env();
    const core::PipelineResult result =
        core::Pipeline(bank.pipeline_options()).run(target);
    const bool detected = bank.attack_detected(result);
    if (kind == core::DetectorKind::kAtomicity) atomicity_detected = detected;
    table.add_row({kind == core::DetectorKind::kTsan
                       ? "TSan (happens-before)"
                       : "atomicity (AVIO/CTrigger)",
                   std::to_string(result.counts.raw_reports),
                   std::to_string(result.counts.remaining),
                   std::to_string(result.counts.vulnerability_reports),
                   detected ? "yes" : "no"});
  }
  std::fputs(table.render().c_str(), stdout);

  // --- the full story on the atomicity path ---
  core::PipelineTarget target = bank.target();
  const core::PipelineResult result =
      core::Pipeline(bank.pipeline_options()).run(target);
  std::printf("\n--- OWL's hint on the double spend ---\n");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    if (exploit.site->opcode() == ir::Opcode::kEval) {
      std::fputs(vuln::render_hint(exploit).c_str(), stdout);
      break;
    }
  }

  // --- exploit demonstration ---
  unsigned stolen_runs = 0;
  interp::Word worst_dispensed = 0;
  for (unsigned i = 0; i < 20; ++i) {
    auto machine = bank.make_machine(bank.exploit_inputs);
    interp::RandomScheduler sched(42 + i);
    machine->run(sched);
    interp::Word dispensed = 0;
    for (const interp::EvalRecord& rec : machine->evals()) {
      dispensed += rec.command_id;
    }
    if (dispensed > 10) {
      ++stolen_runs;
      worst_dispensed = std::max(worst_dispensed, dispensed);
    }
  }
  std::printf(
      "\nexploit: %u/20 runs dispensed more than the balance covered\n"
      "(opening balance 10, worst run dispensed %lld).\n",
      stolen_runs, static_cast<long long>(worst_dispensed));

  std::printf(
      "\nShape check: happens-before detection reports NOTHING on this\n"
      "target (each access is lock-protected); the atomicity detector\n"
      "feeds the unchanged pipeline and the attack is found: %s.\n",
      atomicity_detected ? "yes" : "NO");
  return atomicity_detected && stolen_runs > 0 ? 0 : 1;
}
