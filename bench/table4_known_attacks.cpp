// Regenerates Table 4 — OWL's detection results on known concurrency
// attacks, plus the repeated-execution claim attached to it: "with the
// listed subtle inputs, all these attacks were often triggered within 20
// repeated queries or loops except the Apache one."
#include "common.hpp"
#include <optional>
#include "support/stats.hpp"
#include "support/strings.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Table 4: OWL's detection results on known concurrency attacks",
      "7 known attacks, all detected; triggered within ~20 repetitions");

  // The seven known attacks of Table 4 mapped to our workloads. Apache's
  // double-free lives in the apache-2.0.48 model; the two kernel rows share
  // the linux model (distinguished by their predicate inside the driver).
  using interp::SecurityEventKind;
  const struct Row {
    const char* workload;
    const char* paper_name;
    const char* vuln_type;
    const char* subtle_inputs;
    /// Event distinguishing this attack when a workload models several
    /// (the two Linux rows share one kernel model).
    std::optional<SecurityEventKind> event;
  } kRows[] = {
      {"apache-log", "Apache-2.0.48", "Double Free", "PhP queries",
       SecurityEventKind::kDoubleFree},
      {"chrome", "Chrome-6.0.472.58", "Use after free", "Js console.profile",
       std::nullopt},
      {"libsafe", "Libsafe-2.0-16", "Buffer Overflow", "Loops with strcpy()",
       std::nullopt},
      {"linux", "Linux-2.6.10", "Null Func Ptr Deref", "Syscall parameters",
       SecurityEventKind::kNullFuncPtrDeref},
      {"linux", "Linux-2.6.29", "Privilege Escalation", "Syscall parameters",
       SecurityEventKind::kPrivilegeEscalation},
      {"mysql-flush", "MySQL-5.0.27", "Access Permission", "FLUSH PRIVILEGES",
       std::nullopt},
      {"mysql-setpass", "MySQL-5.1.35", "Double Free", "SET PASSWORD",
       std::nullopt},
  };

  TableFormatter table({"Name", "Vul. Type", "Subtle Inputs", "detected",
                        "median reps to trigger", "<=20 reps?"},
                       {Align::kLeft, Align::kLeft, Align::kLeft,
                        Align::kLeft, Align::kRight, Align::kLeft});

  const workloads::NoiseProfile profile = bench::bench_profile();
  bool all_detected = true;
  for (const Row& row : kRows) {
    workloads::Workload w = workloads::make_by_name(row.workload, profile);
    const core::PipelineResult result = bench::run_pipeline(w);
    const bool detected = w.attack_detected(result);
    all_detected &= detected;

    // Narrow the success predicate to this row's consequence when the
    // workload models several attacks.
    if (row.event.has_value()) {
      const SecurityEventKind want = *row.event;
      w.attack_succeeded = [want](const interp::Machine& machine) {
        return machine.has_event(want);
      };
    }

    // Repetition effort: 15 trials of the repeated-execution exploit
    // driver, each counting runs until the first success.
    SampleStats reps;
    unsigned failures = 0;
    for (unsigned trial = 0; trial < 15; ++trial) {
      const unsigned n = bench::repetitions_to_trigger(
          w, w.exploit_inputs, /*budget=*/60, /*seed_base=*/trial * 1000 + 1);
      if (n == 0) {
        ++failures;
      } else {
        reps.add(n);
      }
    }
    const double median = reps.count() > 0 ? reps.median() : -1;
    table.add_row(
        {row.paper_name, row.vuln_type, row.subtle_inputs,
         detected ? "yes" : "NO",
         median < 0 ? "never" : str_format("%.0f", median),
         median > 0 && median <= 20 ? "yes" : "no"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nPaper claim (§3.1 Finding III / Table 4): 8 of 10 reproduced\n"
      "attacks trigger in under 20 repetitions with crafted inputs.\n"
      "All attacks detected by the pipeline: %s.\n",
      all_detected ? "yes" : "NO");
  return all_detected ? 0 : 1;
}
