// Regenerates Table 1 — the concurrency-attack study summary.
//
// Paper columns: Name, LoC, # Concurrency attacks, # Race reports. We show
// the study's attack counts alongside how many of them we model end-to-end
// with exploit drivers (the paper built exploit scripts for 10 of the 26),
// and measured raw-report volumes for the six programs that run under the
// detectors. IE/Darwin/FreeBSD/Windows had no usable detector in the paper
// either and appear as study-only rows.
#include <map>

#include "common.hpp"
#include "support/strings.hpp"

namespace {

struct ProgramRow {
  std::uint64_t loc = 0;
  std::size_t modeled_attacks = 0;
  std::size_t reports = 0;
  std::uint64_t paper_reports = 0;
};

}  // namespace

int main() {
  using namespace owl;
  bench::print_header("Table 1: concurrency attacks study results",
                      "26 attacks across 10 programs; 28,209 raw reports");

  // Aggregate per study program (MySQL has two modelled versions, Apache
  // two subsystems — Table 1 reports one row per program).
  std::map<std::string, ProgramRow> rows;
  const auto workloads = workloads::make_all(bench::bench_profile());
  for (const workloads::Workload& w : workloads) {
    if (w.program == "Memcached") continue;  // not in Table 1
    ProgramRow& row = rows[w.program];
    row.loc = w.paper_loc;
    row.modeled_attacks += w.known_attacks;
    row.paper_reports = w.paper_raw_reports;

    core::PipelineTarget target = w.target();
    target.detection_schedules = bench::schedules_from_env();
    core::PipelineOptions options;  // detection only: stop after stage (1)
    options.enable_adhoc_annotation = false;
    options.enable_race_verifier = false;
    options.enable_vuln_verifier = false;
    core::Pipeline pipeline(options);
    const core::PipelineResult result = pipeline.run(target);
    row.reports += result.counts.raw_reports;
  }

  // The study's per-program attack counts (paper Table 1).
  const std::map<std::string, int> kStudyAttacks = {
      {"Apache", 4}, {"MySQL", 2},  {"SSDB", 1},    {"Chrome", 3},
      {"IE", 1},     {"Libsafe", 1}, {"Linux", 8},  {"Darwin", 3},
      {"FreeBSD", 2}, {"Windows", 1},
  };

  TableFormatter table({"Name", "LoC", "# atks (study)", "# modeled",
                        "# race reports (ours)", "paper R.R."},
                       {Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kRight});
  std::size_t total_study = 0;
  std::size_t total_modeled = 0;
  std::size_t total_reports = 0;
  const char* order[] = {"Apache", "MySQL", "SSDB", "Chrome", "Libsafe",
                         "Linux"};
  for (const char* name : order) {
    const ProgramRow& row = rows.at(name);
    const int study = kStudyAttacks.at(name);
    table.add_row({name,
                   row.loc >= 1000000
                       ? str_format("%.1fM", static_cast<double>(row.loc) / 1e6)
                       : str_format("%lluK", static_cast<unsigned long long>(
                                                 row.loc / 1000)),
                   std::to_string(study), std::to_string(row.modeled_attacks),
                   with_commas(row.reports), with_commas(row.paper_reports)});
    total_study += static_cast<std::size_t>(study);
    total_modeled += row.modeled_attacks;
    total_reports += row.reports;
  }
  const struct {
    const char* name;
    const char* loc;
  } kStudyOnly[] = {{"IE", "N/A"}, {"Darwin", "N/A"}, {"FreeBSD", "680K"},
                    {"Windows", "N/A"}};
  for (const auto& s : kStudyOnly) {
    table.add_row({s.name, s.loc, std::to_string(kStudyAttacks.at(s.name)),
                   "0", "N/A (study)", "N/A"});
    total_study += static_cast<std::size_t>(kStudyAttacks.at(s.name));
  }
  table.add_rule();
  table.add_row({"Total", "8.0M", std::to_string(total_study),
                 std::to_string(total_modeled), with_commas(total_reports),
                 "28,209"});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape check: study total 26 attacks, 10 modelled with exploit\n"
      "drivers (the paper exploited 10); measured report volumes follow the\n"
      "paper's ordering (Linux >> Chrome > MySQL > Apache > SSDB > Libsafe)\n"
      "at ~1/10 magnitude (DESIGN.md).\n");
  return 0;
}
