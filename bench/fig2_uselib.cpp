// Regenerates Fig. 2 — the Linux uselib()/msync() f_op race — under the
// SKI-mode kernel detector, and quantifies the paper's timing-window claim:
// stretching the IO between the f_op check and the fsync call widens the
// vulnerable window and raises the attack's trigger rate (§3.1 Finding III).
#include "common.hpp"
#include "support/strings.hpp"
#include "vuln/hint.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Fig. 2: Linux uselib()/msync() NULL function-pointer race",
      "kernel race under SKI; IO timing widens the vulnerable window");

  const workloads::Workload w = workloads::make_linux(bench::bench_profile());
  const core::PipelineResult result = bench::run_pipeline(w);

  std::printf("SKI-mode detection: %zu raw reports, %zu after annotating %zu "
              "adhoc syncs\n\n",
              result.counts.raw_reports, result.counts.after_annotation,
              result.counts.adhoc_syncs);

  std::printf("--- static vulnerability hints on the kernel races ---\n");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    if (exploit.site->loc().file != "mm/msync.c" &&
        exploit.site->opcode() != ir::Opcode::kSetUid) {
      continue;
    }
    std::fputs(vuln::render_hint(exploit).c_str(), stdout);
  }

  // The timing-window sweep: trigger rate of the NULL-func-ptr deref as a
  // function of the msync IO window (exploit input 0). The sweep runs on a
  // noise-free kernel build so the window effect is not drowned by
  // scheduler-induced delays from unrelated threads.
  workloads::NoiseProfile quiet;
  quiet.scale = 0.0;
  const workloads::Workload sweep_target = workloads::make_linux(quiet);
  std::printf("\n--- vulnerable-window sweep (noise-free kernel, 20 runs per point) ---\n");
  TableFormatter table({"msync IO window (ticks)", "NULL-deref trigger rate"},
                       {Align::kRight, Align::kRight});
  unsigned widest_rate = 0;
  unsigned narrowest_rate = 0;
  const interp::Word windows[] = {0, 2, 5, 10, 25, 50};
  for (const interp::Word window : windows) {
    std::vector<interp::Word> inputs = sweep_target.exploit_inputs;
    inputs[0] = window;
    unsigned hits = 0;
    for (unsigned i = 0; i < 20; ++i) {
      // The attacker does not control the exact uselib timing — sample it
      // uniformly over the msync loop's duration; the fraction of landing
      // spots that fall inside a check-to-use window is what the window
      // width buys.
      const interp::Word duration = 8 * (window + 6);
      inputs[1] = static_cast<interp::Word>((i * 13 + 1) % duration);
      auto machine = sweep_target.make_machine(inputs);
      interp::RandomScheduler sched(1234 + i);
      machine->run(sched);
      if (machine->has_event(interp::SecurityEventKind::kNullFuncPtrDeref)) {
        ++hits;
      }
    }
    if (window == windows[0]) narrowest_rate = hits;
    widest_rate = hits;
    table.add_row({std::to_string(window),
                   str_format("%u/20", hits)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape check: the trigger rate grows with the IO window (the\n"
      "paper's \"carefully crafted input timings expand the vulnerable\n"
      "window\"): %u/20 at the narrowest vs %u/20 at the widest.\n",
      narrowest_rate, widest_rate);
  std::printf("both kernel attacks statically detected: %s\n",
              w.attack_detected(result) ? "yes" : "NO");
  return w.attack_detected(result) ? 0 : 1;
}
