// Ablation of the Fig. 3 pipeline stages: what reaches vulnerability
// analysis when each reduction stage is disabled. This is the quantified
// version of the paper's §8.4 "why prior tools overlooked these attacks":
// without the adhoc annotations and the race verifier, the vulnerable
// races sit under orders of magnitude more benign reports.
#include "common.hpp"
#include "support/strings.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Ablation: pipeline stages (annotation / race verifier)",
      "94.3% reduction comes from both stages together");

  struct Config {
    const char* name;
    bool annotate;
    bool verify;
  };
  const Config kConfigs[] = {
      {"full pipeline", true, true},
      {"no adhoc annotation", false, true},
      {"no race verifier", true, false},
      {"detector only", false, false},
  };

  TableFormatter table({"target", "configuration", "reports to analyze",
                        "attacks still detected"},
                       {Align::kLeft, Align::kLeft, Align::kRight,
                        Align::kRight});

  const workloads::NoiseProfile profile = bench::bench_profile();
  for (const char* name : {"mysql-flush", "chrome", "memcached", "linux"}) {
    const workloads::Workload w = workloads::make_by_name(name, profile);
    for (const Config& config : kConfigs) {
      core::PipelineTarget target = w.target();
      target.detection_schedules = bench::schedules_from_env();
      core::PipelineOptions options = w.pipeline_options();
      options.enable_adhoc_annotation = config.annotate;
      options.enable_race_verifier =
          options.enable_race_verifier && config.verify;
      const core::PipelineResult result = core::Pipeline(options).run(target);
      table.add_row({w.name, config.name,
                     with_commas(result.counts.remaining),
                     w.known_attacks == 0
                         ? "-"
                         : str_format("%zu/%zu", w.count_found(result),
                                      w.known_attacks)});
    }
    table.add_rule();
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape check: each disabled stage multiplies the reports a developer\n"
      "must inspect, while the attacks stay detected in every configuration\n"
      "— the reduction is pure noise removal, not recall loss (OWL \"did\n"
      "not miss the evaluated attacks\", §7.1).\n");
  return 0;
}
