// §5.1 comparison, made executable: OWL's report-guided adhoc-sync
// classification vs SyncFinder-style whole-program static matching.
//
// The paper: "Compared to the prior static adhoc sync identification method
// SyncFinder, which finds the matching read and write instruction by
// statically searching program code, our approach leverages the actual
// runtime information from the race reports, so ours are much simpler and
// more precise." The precision gap is not academic: a static matcher also
// pairs SSDB's shutdown checks (Fig. 6) — a flag-guarded loop that does
// real work — and annotating them erases the very races that carry the
// use-after-free attack.
#include "common.hpp"
#include "support/strings.hpp"
#include "sync/syncfinder.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Extension: OWL's §5.1 classifier vs SyncFinder-style static matching",
      "report-guided classification is simpler and more precise");

  TableFormatter table({"target", "adhoc front end", "pairs annotated",
                        "reports after annotation", "attack detected"},
                       {Align::kLeft, Align::kLeft, Align::kRight,
                        Align::kRight, Align::kLeft});

  const workloads::NoiseProfile profile = bench::bench_profile();
  bool owl_keeps_ssdb = false;
  bool syncfinder_loses_ssdb = false;
  std::size_t syncfinder_extra_pairs = 0;

  for (const char* name : {"ssdb", "mysql-flush", "chrome"}) {
    const workloads::Workload w = workloads::make_by_name(name, profile);

    // (a) OWL's report-guided classifier (the normal pipeline).
    const core::PipelineResult owl_result = bench::run_pipeline(w);
    const bool owl_detected = w.attack_detected(owl_result);
    table.add_row({w.name, "OWL (report-guided, §5.1)",
                   std::to_string(owl_result.counts.adhoc_syncs),
                   with_commas(owl_result.counts.after_annotation),
                   w.known_attacks == 0 ? "-" : (owl_detected ? "yes" : "NO")});

    // (b) SyncFinder-style static matching, plugged into the same pipeline.
    const sync::SyncFinderResult statically = sync::syncfinder_scan(*w.module);
    core::PipelineTarget target = w.target();
    target.detection_schedules = bench::schedules_from_env();
    core::PipelineOptions options = w.pipeline_options();
    options.preset_annotations = &statically.annotations;
    const core::PipelineResult sf_result = core::Pipeline(options).run(target);
    const bool sf_detected = w.attack_detected(sf_result);
    table.add_row({w.name, "SyncFinder-like (static)",
                   std::to_string(statically.pairs.size()),
                   with_commas(sf_result.counts.after_annotation),
                   w.known_attacks == 0 ? "-" : (sf_detected ? "yes" : "NO")});
    table.add_rule();

    if (std::string_view(name) == "ssdb") {
      owl_keeps_ssdb = owl_detected;
      syncfinder_loses_ssdb = !sf_detected;
      std::printf("SSDB pairs the static matcher annotated:\n");
      for (const sync::SyncFinderPair& pair : statically.pairs) {
        std::printf("  flag '%s': store at %s, in-loop read at %s\n",
                    pair.flag->name().c_str(),
                    pair.write->loc().to_string().c_str(),
                    pair.read->loc().to_string().c_str());
      }
      std::printf("\n");
    }
    if (statically.pairs.size() >
        owl_result.counts.adhoc_syncs + syncfinder_extra_pairs) {
      syncfinder_extra_pairs =
          statically.pairs.size() - owl_result.counts.adhoc_syncs;
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape check: the static matcher annotates pairs OWL's classifier\n"
      "correctly rejects — most damningly SSDB's shutdown checks, whose\n"
      "annotation suppresses the CVE-2016-1000324 races entirely:\n"
      "  OWL keeps the SSDB attack:            %s\n"
      "  SyncFinder-like loses the SSDB attack: %s\n",
      owl_keeps_ssdb ? "yes" : "NO",
      syncfinder_loses_ssdb ? "yes" : "no (unexpected)");
  return owl_keeps_ssdb && syncfinder_loses_ssdb ? 0 : 1;
}
