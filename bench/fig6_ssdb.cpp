// Regenerates Fig. 6 and the §8.4 SSDB result: the previously-unknown
// shutdown use-after-free OWL found in SSDB-1.9.2 (CVE-2016-1000324).
#include "common.hpp"
#include "support/strings.hpp"
#include "vuln/hint.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Fig. 6: SSDB BinlogQueue shutdown race (CVE-2016-1000324)",
      "new race + use-after-free; site at binlog.cpp:347, branch at 359");

  const workloads::Workload w = workloads::make_ssdb(bench::bench_profile());
  const core::PipelineResult result = bench::run_pipeline(w);

  std::printf("pipeline: %zu raw -> %zu after annotation -> %zu verified "
              "(paper: 12 -> 12 -> 2)\n\n",
              result.counts.raw_reports, result.counts.after_annotation,
              result.counts.remaining);

  std::printf("--- verified races ---\n");
  for (const race::RaceReport& report :
       result.store.stage(core::Stage::kAfterRaceVerifier)) {
    std::fputs(report.to_string().c_str(), stdout);
    std::printf("\n");
  }

  std::printf("--- OWL's vulnerability reports ---\n");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    std::fputs(vuln::render_hint(exploit).c_str(), stdout);
  }

  std::printf("\n--- dynamic verification ---\n");
  bool uaf = false;
  for (const core::ConcurrencyAttack& attack : result.attacks) {
    std::fputs(attack.to_string().c_str(), stdout);
    for (const interp::SecurityEvent& event : attack.verification.events) {
      uaf |= event.kind == interp::SecurityEventKind::kUseAfterFree;
    }
  }

  // The adhoc-sync subtlety the paper highlights: the shutdown checks look
  // like adhoc synchronization but guard a working loop, so OWL must not
  // annotate them away (Table 3: SSDB A.S. = 0).
  std::printf(
      "\nadhoc syncs annotated: %zu (paper: 0 — the flag-guarded loop does\n"
      "real work, so the §5.1 busy-wait classifier must keep it)\n",
      result.counts.adhoc_syncs);
  std::printf("use-after-free observed under verification: %s\n",
              uaf ? "yes" : "no");
  std::printf("attack detected: %s\n",
              w.attack_detected(result) ? "yes" : "NO");
  return w.attack_detected(result) && result.counts.adhoc_syncs == 0 ? 0 : 1;
}
