// Extension experiment: automatic vulnerable-input concretization.
//
// The paper's OWL stops at vulnerable input *hints* and notes concrete
// input generation "can be done via symbolic execution" (§1); its dynamic
// verifier asks the user to tune inputs when branches diverge (§6.2). This
// bench closes that loop automatically: starting from the benign benchmark
// inputs (under which no attack ever manifests — see
// finding3_trigger_effort), a hint-guided hill climb over the input vector
// rediscovers attack-triggering inputs for every application target.
#include "common.hpp"
#include "support/strings.hpp"
#include "vuln/input_search.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Extension: concretizing vulnerable inputs from OWL's hints",
      "§1/§6.2: hints -> (automated) input tuning -> concrete exploit");

  TableFormatter table({"target", "exploit synthesized", "machine runs",
                        "mutation rounds", "synthesized inputs"},
                       {Align::kLeft, Align::kLeft, Align::kRight,
                        Align::kRight, Align::kLeft});

  const workloads::NoiseProfile profile = bench::bench_profile();
  unsigned synthesized = 0;
  unsigned targets = 0;
  for (const char* name : {"libsafe", "mysql-flush", "mysql-setpass", "ssdb",
                           "apache-log", "chrome"}) {
    const workloads::Workload w = workloads::make_by_name(name, profile);
    ++targets;

    // Front end: detection + reduction + Algorithm 1 (no dynamic verifier —
    // the search plays its role).
    core::PipelineTarget target = w.target();
    target.detection_schedules = bench::schedules_from_env();
    core::PipelineOptions options = w.pipeline_options();
    options.enable_vuln_verifier = false;
    const core::PipelineResult result = core::Pipeline(options).run(target);

    const vuln::ExploitReport* exploit = nullptr;
    for (const vuln::ExploitReport& e : result.exploits) {
      if (e.site != nullptr &&
          e.site->loc().file.find("noise") == std::string::npos) {
        exploit = &e;
        break;
      }
    }
    if (exploit == nullptr) {
      table.add_row({w.name, "no hint", "-", "-", "-"});
      continue;
    }

    const vuln::MachineWithInputs factory =
        [&w](const std::vector<interp::Word>& inputs) {
          return w.make_machine(inputs);
        };
    const vuln::InputSearchResult search = vuln::search_vulnerable_inputs(
        *exploit, factory, w.testing_inputs);

    std::vector<std::string> rendered;
    for (const interp::Word v : search.inputs) {
      rendered.push_back(std::to_string(v));
    }
    table.add_row({w.name, search.attack_found ? "yes" : "NO",
                   std::to_string(search.evaluations),
                   std::to_string(search.rounds_used),
                   "{" + join(rendered, ",") + "}"});
    if (search.attack_found) ++synthesized;
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape check: starting from benign benchmark inputs (0%% attack\n"
      "rate), the hint-guided search synthesizes exploit inputs on %u/%u\n"
      "targets — the \"input tuning\" the paper performed manually,\n"
      "automated without symbolic execution.\n",
      synthesized, targets);
  return synthesized >= targets - 1 ? 0 : 1;
}
