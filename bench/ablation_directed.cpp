// Ablation of Algorithm 1's central design decision (§4.1, §6.1): using
// the bug's runtime call stack to direct the static analysis. The
// whole-program mode explores every static caller instead — the paper's
// argument is that this trades both precision (more false reports) and
// scalability (more code visited) for nothing the runtime stack already
// provides.
#include "common.hpp"
#include "ir/parser.hpp"
#include "support/strings.hpp"
#include "vuln/analyzer.hpp"

namespace {

// A precision probe: the racy read lives in a shared getter with one *hot*
// caller (the one the runtime call stack records — it only logs the value)
// and three *cold* callers that reach real vulnerable sites but never run
// with corrupted data. The directed analysis follows the runtime stack and
// stays quiet; the whole-program ablation walks every static caller and
// reports all three cold sites — the §4.1 false positives.
const char* kPrecisionProbe = R"(module probe
global @shared
global @buf [8]
global @src [8]
func @get_shared() -> i64 {
entry:
  %v = load @shared
  ret %v
}
func @hot_logger() {
entry:
  %n = call @get_shared()
  print %n
  ret
}
func @cold_copier() {
entry:
  %n = call @get_shared()
  memcpy @buf, @src, %n
  ret
}
func @cold_admin() {
entry:
  %n = call @get_shared()
  %c = icmp ne %n, 0
  br %c, esc, out
esc:
  setuid 0
  ret
out:
  ret
}
func @cold_shell() {
entry:
  %n = call @get_shared()
  eval %n
  ret
}
func @main() {
entry:
  call @hot_logger()
  ret
}
)";

}  // namespace

int main() {
  using namespace owl;
  bench::print_header(
      "Ablation: call-stack-directed vs whole-program analysis (§4.1)",
      "directed analysis skips functions/paths that contradict runtime "
      "effects");

  TableFormatter table(
      {"target", "mode", "vuln reports", "instr visited", "time/report"},
      {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
       Align::kRight});

  const workloads::NoiseProfile profile = bench::bench_profile();
  std::uint64_t directed_visited = 0;
  std::uint64_t whole_visited = 0;
  std::size_t directed_reports = 0;
  std::size_t whole_reports = 0;

  for (const char* name :
       {"libsafe", "mysql-flush", "ssdb", "apache-log", "apache-balancer",
        "chrome"}) {
    const workloads::Workload w = workloads::make_by_name(name, profile);

    // Shared detection + reduction front end.
    core::PipelineTarget target = w.target();
    target.detection_schedules = bench::schedules_from_env();
    core::PipelineOptions front;
    front.enable_vuln_verifier = false;
    const core::PipelineResult reduced = core::Pipeline(front).run(target);
    const auto& survivors =
        reduced.store.stage(core::Stage::kAfterRaceVerifier);

    for (const auto mode : {vuln::VulnerabilityAnalyzer::Mode::kDirected,
                            vuln::VulnerabilityAnalyzer::Mode::kWholeProgram}) {
      vuln::VulnerabilityAnalyzer::Options options;
      options.mode = mode;
      const vuln::VulnerabilityAnalyzer analyzer(*w.module, options);
      std::size_t reports = 0;
      std::uint64_t visited = 0;
      double seconds = 0;
      for (const race::RaceReport& report : survivors) {
        const vuln::VulnAnalysis analysis = analyzer.analyze(report);
        reports += analysis.exploits.size();
        visited += analysis.stats.instructions_visited;
        seconds += analysis.stats.seconds;
      }
      const bool directed = mode == vuln::VulnerabilityAnalyzer::Mode::kDirected;
      if (directed) {
        directed_visited += visited;
        directed_reports += reports;
      } else {
        whole_visited += visited;
        whole_reports += reports;
      }
      table.add_row(
          {w.name, directed ? "directed" : "whole-program",
           std::to_string(reports), with_commas(visited),
           survivors.empty()
               ? "-"
               : str_format("%.2fms", seconds * 1e3 /
                                          static_cast<double>(survivors.size()))});
    }
    table.add_rule();
  }
  std::fputs(table.render().c_str(), stdout);

  // --- the precision probe ---
  std::printf("\n--- precision probe: one hot caller, three cold callers ---\n");
  auto probe = ir::parse_module(kPrecisionProbe).value_or_die();
  const ir::Function* getter = probe->find_function("get_shared");
  const ir::Function* hot = probe->find_function("hot_logger");
  const ir::Instruction* read = getter->entry()->front();
  const ir::Instruction* hot_call = hot->entry()->front();
  // Runtime stack as the detector would record it: main -> hot_logger ->
  // get_shared.
  const interp::CallStack stack{
      {probe->find_function("main"), probe->find_function("main")->entry()->front()},
      {hot, hot_call},
      {getter, read}};
  std::size_t probe_directed = 0;
  std::size_t probe_whole = 0;
  for (const auto mode : {vuln::VulnerabilityAnalyzer::Mode::kDirected,
                          vuln::VulnerabilityAnalyzer::Mode::kWholeProgram}) {
    vuln::VulnerabilityAnalyzer::Options options;
    options.mode = mode;
    const vuln::VulnerabilityAnalyzer analyzer(*probe, options);
    const std::size_t n = analyzer.analyze_from(read, stack).exploits.size();
    if (mode == vuln::VulnerabilityAnalyzer::Mode::kDirected) {
      probe_directed = n;
    } else {
      probe_whole = n;
    }
  }
  std::printf(
      "directed (runtime stack through the hot caller): %zu reports\n"
      "whole-program (every static caller):             %zu reports\n"
      "The %zu extra reports are sites only the never-corrupted cold\n"
      "callers reach — pure false positives.\n",
      probe_directed, probe_whole, probe_whole - probe_directed);

  std::printf(
      "\nShape check: whole-program analysis visits %.1fx the instructions\n"
      "and emits %.1fx the vulnerability reports of the directed mode —\n"
      "the extra reports are the false positives the paper's call-stack\n"
      "direction exists to avoid (RELAY's 84%% false-report rate, §4.1).\n",
      directed_visited == 0
          ? 0.0
          : static_cast<double>(whole_visited) /
                static_cast<double>(directed_visited),
      directed_reports == 0
          ? 0.0
          : static_cast<double>(whole_reports) /
                static_cast<double>(directed_reports));
  return whole_reports >= directed_reports && probe_whole > probe_directed ? 0 : 1;
}
