// Regenerates Fig. 7 and the §8.4 Apache-25520 result: the outcnt race in
// ap_buffered_log_writer lets a stale bounds check meet a fresh index, the
// one-cell overflow replaces the request log's file descriptor with the
// attacker's payload value, and Apache flushes its own HTTP request log
// INTO a user's HTML file — an HTML integrity violation and information
// leak OWL was the first to find.
#include "common.hpp"
#include "support/strings.hpp"
#include "vuln/hint.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Fig. 7: Apache-25520 buffered-log race -> HTML integrity violation",
      "memcpy at http_log.c:1359 data-dependent on corrupted outcnt (1358)");

  const workloads::Workload w =
      workloads::make_apache_log(bench::bench_profile());
  const core::PipelineResult result = bench::run_pipeline(w);

  std::printf("--- OWL's hints on the log-buffer race ---\n");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    if (exploit.site->loc().file == "http_log.c") {
      std::fputs(vuln::render_hint(exploit).c_str(), stdout);
    }
  }

  // Exploit demonstration: count runs where the log flush wrote through
  // the corrupted fd into the HTML file, and show one corrupted flush.
  unsigned html_hits = 0;
  bool shown = false;
  const unsigned runs = 30;
  for (unsigned i = 0; i < runs; ++i) {
    auto machine = w.make_machine(w.exploit_inputs);
    interp::RandomScheduler sched(2222 + i);
    machine->run(sched);
    const interp::Word html_fd = machine->read_global("html_fd");
    for (const interp::FileWriteRecord& rec : machine->file_writes()) {
      if (rec.fd != html_fd || rec.instr->loc().line != 1343) continue;
      ++html_hits;
      if (!shown) {
        shown = true;
        std::printf(
            "\n--- one corrupted flush (run %u) ---\n"
            "flush_log wrote %zu cells of Apache's request log to fd %lld —\n"
            "the USER'S HTML FILE (the request log's own fd was %lld before\n"
            "the one-cell overflow at outbuf[8] replaced it with the\n"
            "attacker's payload byte).\n",
            i, rec.payload.size(), static_cast<long long>(rec.fd),
            static_cast<long long>(3));
      }
      break;
    }
  }

  std::printf("\nHTML integrity violation realized in %u/%u exploit runs\n",
              html_hits, runs);
  std::printf("attack detected by pipeline: %s\n",
              w.attack_detected(result) ? "yes" : "NO");
  return w.attack_detected(result) && html_hits > 0 ? 0 : 1;
}
