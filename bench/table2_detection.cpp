// Regenerates Table 2 — OWL's concurrency-attack detection results.
//
// Paper columns: Name, LoC, # atks, # atks found, # OWL's reports.
// Headline: OWL detected all 10 evaluated attacks while reducing the raw
// report stream (31K) to 180 vulnerability reports.
#include <map>

#include "common.hpp"
#include "support/strings.hpp"

namespace {

struct ProgramRow {
  std::uint64_t loc = 0;
  std::size_t attacks = 0;
  std::size_t found = 0;
  std::size_t owl_reports = 0;
  bool degraded = false;
  double seq_seconds = 0.0;  ///< pipeline wall, sequential sweep
  double par_seconds = 0.0;  ///< pipeline wall, jobs=N sweep
};

}  // namespace

int main() {
  using namespace owl;
  bench::print_header(
      "Table 2: OWL concurrency attack detection results",
      "10/10 evaluated attacks detected; 180 OWL reports total");

  std::map<std::string, ProgramRow> rows;
  const auto workloads = workloads::make_all(bench::bench_profile());
  // One sequential + one jobs=N sweep over every workload; the table rows
  // come from the parallel results (proven byte-identical to sequential).
  const bench::ParallelSweep sweep = bench::run_all_pipelines(workloads);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const workloads::Workload& w = workloads[i];
    if (w.program == "Memcached") continue;  // not in Table 2
    const core::PipelineResult& result = sweep.results[i];
    ProgramRow& row = rows[w.program];
    row.loc = w.paper_loc;
    row.attacks += w.known_attacks;
    row.found += w.count_found(result);
    row.owl_reports += result.counts.vulnerability_reports;
    row.degraded = row.degraded || result.degraded();
    row.seq_seconds += sweep.baseline[i].total_seconds;
    row.par_seconds += result.total_seconds;
  }

  // Paper's per-program reference values: {atks, found, OWL reports}.
  const std::map<std::string, std::array<int, 3>> kPaper = {
      {"Apache", {3, 3, 10}}, {"Chrome", {1, 1, 115}},
      {"Libsafe", {1, 1, 3}}, {"Linux", {2, 2, 34}},
      {"MySQL", {2, 2, 16}},  {"SSDB", {1, 1, 2}},
  };

  TableFormatter table({"Name", "LoC", "# atks", "# found", "# OWL reports",
                        "resilience", "t seq/par (s)",
                        "paper (atks/found/reports)"},
                       {Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kLeft,
                        Align::kRight, Align::kRight});
  std::size_t total_attacks = 0;
  std::size_t total_found = 0;
  std::size_t total_reports = 0;
  const char* order[] = {"Apache", "Chrome", "Libsafe", "Linux", "MySQL",
                         "SSDB"};
  for (const char* name : order) {
    const ProgramRow& row = rows.at(name);
    const auto& paper = kPaper.at(name);
    table.add_row(
        {name,
         row.loc >= 1000000
             ? str_format("%.1fM", static_cast<double>(row.loc) / 1e6)
             : str_format("%lluK",
                          static_cast<unsigned long long>(row.loc / 1000)),
         std::to_string(row.attacks), std::to_string(row.found),
         std::to_string(row.owl_reports), row.degraded ? "degraded" : "ok",
         str_format("%.2f/%.2f", row.seq_seconds, row.par_seconds),
         str_format("%d/%d/%d", paper[0], paper[1], paper[2])});
    total_attacks += row.attacks;
    total_found += row.found;
    total_reports += row.owl_reports;
  }
  table.add_rule();
  table.add_row({"Total", "5.36M", std::to_string(total_attacks),
                 std::to_string(total_found), std::to_string(total_reports),
                 "", str_format("%.2fx speedup", sweep.speedup()),
                 "11/10/180"});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s\n", sweep.summary().c_str());

  std::printf(
      "\nShape check: every modelled attack is found (%zu/%zu, paper 10/11\n"
      "bugs evaluated), and OWL's residual vulnerability reports stay two\n"
      "orders of magnitude below the raw race reports of Table 1.\n",
      total_found, total_attacks);
  return (total_found == total_attacks && sweep.identical) ? 0 : 1;
}
