// Regenerates Table 3 — OWL's reduction of race-detector reports.
//
// Paper columns: R.R. (raw reports), A.S. (static adhoc syncs annotated),
// R.V.E. (race-verifier elimination), R. (remaining), A.C. (average static
// analysis cost per report). Headline: 94.3% of all reports pruned.
#include "common.hpp"
#include "support/strings.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Table 3: OWL's reduction on race detector reports",
      "31,870 -> 1,881 remaining (94.3% of reports pruned); A.S. 22 total");

  // Paper reference rows {R.R., A.S., R.V.E., R.} for comparison.
  struct PaperRow {
    const char* name;
    long rr, as, rve, r;
  };
  const PaperRow kPaper[] = {
      {"apache-2.0.48", 715, 7, 1506, 10}, {"apache-46215", -1, -1, -1, -1},
      {"chrome-6.0.472.58", 1715, 1, 1587, 126},
      {"libsafe-2.0-16", 3, 0, 0, 3},      {"linux-2.6", 24641, 8, -1, 1718},
      {"memcached-1.4", 5376, 0, 5372, 4}, {"mysql-5.0.27", 1123, 6, 783, 18},
      {"mysql-5.1.35", -1, -1, -1, -1},    {"ssdb-1.9.2", 12, 0, 10, 2},
  };
  const auto paper_of = [&](const std::string& name) -> const PaperRow* {
    for (const PaperRow& row : kPaper) {
      if (name == row.name) return &row;
    }
    return nullptr;
  };
  const auto cell = [](long v) {
    return v < 0 ? std::string("-") : with_commas(static_cast<std::uint64_t>(v));
  };

  TableFormatter table({"Name", "R.R.", "A.S.", "R.V.E.", "R.", "A.C.",
                        "t seq/par (s)", "resilience",
                        "paper (R.R./A.S./R.V.E./R.)"},
                       {Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight, Align::kLeft, Align::kRight});

  std::size_t total_raw = 0;
  std::size_t total_adhoc = 0;
  std::size_t total_rve = 0;
  std::size_t total_remaining = 0;
  const auto workloads = workloads::make_all(bench::bench_profile());
  // One sequential + one jobs=N sweep; rows come from the parallel results
  // (proven byte-identical to the sequential baseline).
  const bench::ParallelSweep sweep = bench::run_all_pipelines(workloads);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const workloads::Workload& w = workloads[i];
    const core::PipelineResult& result = sweep.results[i];
    const core::StageCounts& c = result.counts;
    total_raw += c.raw_reports;
    total_adhoc += c.adhoc_syncs;
    total_rve += c.verifier_eliminated;
    total_remaining += c.remaining;

    const PaperRow* paper = paper_of(w.name);
    std::string paper_text = "-";
    if (paper != nullptr && paper->rr >= 0) {
      paper_text = cell(paper->rr) + "/" + cell(paper->as) + "/" +
                   cell(paper->rve) + "/" + cell(paper->r);
    }
    const bool kernel = !w.dynamic_verifiers_supported;
    table.add_row({w.name, with_commas(c.raw_reports),
                   std::to_string(c.adhoc_syncs),
                   kernel ? "N/A" : with_commas(c.verifier_eliminated),
                   with_commas(c.remaining),
                   c.avg_analysis_seconds > 0
                       ? str_format("%.0fus", c.avg_analysis_seconds * 1e6)
                       : "-",
                   str_format("%.2f/%.2f", sweep.baseline[i].total_seconds,
                              result.total_seconds),
                   c.resilience_summary(), paper_text});
  }
  table.add_rule();
  const double reduction =
      total_raw == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(total_remaining) /
                               static_cast<double>(total_raw));
  table.add_row({"Total", with_commas(total_raw), std::to_string(total_adhoc),
                 with_commas(total_rve), with_commas(total_remaining), "",
                 str_format("%.2fx speedup", sweep.speedup()), "",
                 "31,870/22/9,258/1,881"});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s\n", sweep.summary().c_str());

  std::printf(
      "\nOverall reduction: %.1f%% of raw reports pruned before\n"
      "vulnerability analysis (paper: 94.3%%). A.S. total %zu (paper: 22).\n"
      "R.V.E. is N/A for the kernel target — the paper's LLDB-based\n"
      "verifiers only support user-space programs (§8.3), and so does our\n"
      "kernel-mode configuration.\n",
      reduction, total_adhoc);
  return (reduction > 80.0 && sweep.identical) ? 0 : 1;
}
