// Quantifies the study's structural findings on the modelled attacks:
//
//  Finding II (§3.1): concurrency bugs and their attacks are widely spread
//  in program code — for most attacks the racy access and the vulnerable
//  site live in different functions, and the bug's call stack is a prefix
//  of (or close to) the site's (§3.2's optimistic pattern).
//
//  Finding IV (§3.1): every studied attack-triggering bug is a data race
//  that the front-end detectors (TSan/SKI mode) readily report — a race
//  detector is a necessary component of attack detection.
#include "common.hpp"
#include "ir/callgraph.hpp"
#include "support/strings.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Study Findings II & IV: bug-to-attack spread and detectability",
      "7/10 attacks cross functions; all bugs are detector-visible races");

  TableFormatter table({"attack", "bug function", "site function",
                        "cross-function", "site in bug's callees",
                        "bug race in raw reports"},
                       {Align::kLeft, Align::kLeft, Align::kLeft,
                        Align::kLeft, Align::kLeft, Align::kLeft});

  const workloads::NoiseProfile profile = bench::bench_profile();
  unsigned cross = 0;
  unsigned total = 0;
  unsigned detectable = 0;
  for (const char* name :
       {"libsafe", "linux", "mysql-flush", "mysql-setpass", "ssdb",
        "apache-log", "apache-balancer", "chrome"}) {
    const workloads::Workload w = workloads::make_by_name(name, profile);
    const core::PipelineResult result = bench::run_pipeline(w);
    const ir::CallGraph cg(*w.module);

    // One row per distinct (bug function, site function) pair among the
    // attacks OWL found (kernel targets report exploits, not attacks).
    struct Row {
      const ir::Function* bug_fn;
      const ir::Function* site_fn;
    };
    std::vector<Row> rows;
    const auto add_row = [&](const race::AccessRecord* read,
                             const vuln::ExploitReport& exploit) {
      if (read == nullptr || read->instr == nullptr ||
          exploit.site == nullptr) {
        return;
      }
      // Background-noise races are not part of the study's attack set.
      if (read->instr->loc().file.find("noise") != std::string::npos ||
          exploit.site->loc().file.find("noise") != std::string::npos) {
        return;
      }
      const Row row{read->instr->function(), exploit.site->function()};
      for (const Row& existing : rows) {
        if (existing.bug_fn == row.bug_fn && existing.site_fn == row.site_fn) {
          return;
        }
      }
      rows.push_back(row);
    };
    if (!result.attacks.empty()) {
      for (const core::ConcurrencyAttack& attack : result.attacks) {
        add_row(attack.race.read_side(), attack.exploit);
      }
    } else {
      for (const vuln::ExploitReport& exploit : result.exploits) {
        // Kernel path: pair each exploit with the matching surviving race.
        for (const race::RaceReport& report :
             result.store.stage(core::Stage::kAfterRaceVerifier)) {
          const race::AccessRecord* read = report.read_side();
          if (read != nullptr && read->instr != nullptr &&
              !exploit.propagation.empty() &&
              exploit.propagation.front() == read->instr) {
            add_row(read, exploit);
          }
        }
      }
    }

    for (const Row& row : rows) {
      ++total;
      const bool is_cross = row.bug_fn != row.site_fn;
      if (is_cross) ++cross;
      const bool in_callees =
          is_cross && cg.reachable_from({const_cast<ir::Function*>(row.bug_fn)})
                          .contains(const_cast<ir::Function*>(row.site_fn));

      // Finding IV: the triggering race must already sit in the raw
      // detector output.
      bool race_in_raw = false;
      for (const race::RaceReport& raw :
           result.store.stage(core::Stage::kRawDetection)) {
        const race::AccessRecord* read = raw.read_side();
        if (read != nullptr && read->instr != nullptr &&
            read->instr->function() == row.bug_fn) {
          race_in_raw = true;
        }
      }
      if (race_in_raw) ++detectable;

      table.add_row({w.name, row.bug_fn->name(), row.site_fn->name(),
                     is_cross ? "yes" : "no",
                     is_cross ? (in_callees ? "yes" : "no (levels up)") : "-",
                     race_in_raw ? "yes" : "NO"});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nFinding II: %u/%u bug-to-site pairs cross function boundaries\n"
      "(paper: 7/10 attacks) — intra-procedural consequence analyses like\n"
      "ConSeq structurally miss these (see bench/ext_related_work).\n"
      "Finding IV: %u/%u triggering races appear in the raw detector output\n"
      "(paper: all studied bugs were detector-visible data races).\n",
      cross, total, detectable, total);
  return detectable == total && cross >= 4 ? 0 : 1;
}
