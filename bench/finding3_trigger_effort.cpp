// Quantifies §3.1 Finding III: concurrency bugs and their attacks are
// often triggered by separate, subtle program inputs — with crafted inputs
// most attacks trigger within 20 repeated executions, while benchmark
// (naive) inputs practically never realize them even though the detectors
// still see the races.
#include "common.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Finding III: trigger effort, crafted vs naive inputs",
      "8/10 attacks trigger in <20 repetitions with subtle inputs");

  TableFormatter table({"attack", "median reps (crafted)",
                        "success in 20 (crafted)", "success in 20 (naive)",
                        "races still detected (naive)"},
                       {Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight});

  const workloads::NoiseProfile profile = bench::bench_profile();
  unsigned within_20 = 0;
  unsigned total_attacks = 0;
  for (const char* name :
       {"libsafe", "linux", "mysql-flush", "mysql-setpass", "ssdb",
        "apache-log", "apache-balancer", "chrome"}) {
    const workloads::Workload w = workloads::make_by_name(name, profile);
    ++total_attacks;

    SampleStats crafted;
    unsigned crafted_hits_20 = 0;
    for (unsigned trial = 0; trial < 10; ++trial) {
      const unsigned n = bench::repetitions_to_trigger(
          w, w.exploit_inputs, 60, trial * 777 + 3);
      if (n > 0) crafted.add(n);
      if (n > 0 && n <= 20) ++crafted_hits_20;
    }
    unsigned naive_hits_20 = 0;
    for (unsigned trial = 0; trial < 10; ++trial) {
      if (bench::repetitions_to_trigger(w, w.testing_inputs, 20,
                                        trial * 991 + 5) > 0) {
        ++naive_hits_20;
      }
    }

    // Races are still detected on naive inputs (the detector sees the
    // unordered pair even when the consequence never manifests).
    core::PipelineTarget target = w.target();
    target.detection_schedules = 2;
    core::PipelineOptions detect_only;
    detect_only.enable_adhoc_annotation = false;
    detect_only.enable_race_verifier = false;
    detect_only.enable_vuln_verifier = false;
    const core::PipelineResult detection =
        core::Pipeline(detect_only).run(target);

    const double median = crafted.count() > 0 ? crafted.median() : -1;
    if (median > 0 && median <= 20) ++within_20;
    table.add_row({w.name,
                   median < 0 ? "never" : str_format("%.0f", median),
                   str_format("%u/10", crafted_hits_20),
                   str_format("%u/10", naive_hits_20),
                   detection.counts.raw_reports > 0 ? "yes" : "no"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape check: %u/%u attacks trigger within 20 repetitions under\n"
      "crafted inputs (paper: 8/10), while naive benchmark inputs leave the\n"
      "attacks latent — exactly why anomaly detectors miss them and why\n"
      "one-shot race detection cannot see the consequence.\n",
      within_20, total_attacks);
  return within_20 >= total_attacks - 2 ? 0 : 1;
}
