// Micro-benchmarks (google-benchmark): interpreter throughput, detector
// overhead, vector-clock operations, and Algorithm 1 scaling with the
// length of the bug-to-attack propagation chain. These back the paper's
// "reasonable for in-house testing" performance claim (§8.2's A.C. column)
// with component-level numbers.
// The Parallel* benchmarks back BENCH_parallel.json (run with
// --benchmark_filter='Parallel' --benchmark_out=BENCH_parallel.json):
// ThreadPool dispatch overhead and Pipeline::run_many scaling with --jobs.
// Speedup is bounded by the host's core count — compare the jobs arguments
// against real_time on the recording machine.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/prescreen.hpp"
#include "analysis/static_info.hpp"
#include "core/pipeline.hpp"
#include "interp/machine.hpp"
#include "ir/builder.hpp"
#include "ir/loops.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "race/predict/sp_predictor.hpp"
#include "race/shadow_memory.hpp"
#include "race/tsan_detector.hpp"
#include "race/vector_clock.hpp"
#include "serve/service_core.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "vuln/analyzer.hpp"

namespace {

using namespace owl;

/// Two threads hammering a counter loop (`iters` iterations each).
std::unique_ptr<ir::Module> make_counter_module(std::int64_t iters) {
  auto m = std::make_unique<ir::Module>("perf");
  ir::IRBuilder b(m.get());
  ir::GlobalVariable* ctr = m->add_global("ctr");
  ir::Function* worker = m->add_function("worker", ir::Type::void_type());
  {
    ir::BasicBlock* entry = worker->add_block("entry");
    ir::BasicBlock* loop = worker->add_block("loop");
    ir::BasicBlock* out = worker->add_block("out");
    b.set_insert_point(entry);
    b.jmp(loop);
    b.set_insert_point(loop);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* v = b.load(ctr);
    b.store(b.add(v, b.i64(1)), ctr);
    ir::Instruction* n = b.add(i, b.i64(1), "n");
    ir::Instruction* c =
        b.icmp(ir::CmpPredicate::kSLt, n, b.i64(iters), "c");
    b.br(c, loop, out);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(n, loop);
    b.set_insert_point(out);
    b.ret();
  }
  ir::Function* main_fn = m->add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    ir::Instruction* t1 = b.thread_create(worker, b.i64(0), "t1");
    ir::Instruction* t2 = b.thread_create(worker, b.i64(0), "t2");
    b.thread_join(t1);
    b.thread_join(t2);
    b.ret();
  }
  return m;
}

void BM_InterpreterThroughput(benchmark::State& state) {
  auto m = make_counter_module(2000);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    interp::Machine machine(*m, {});
    machine.start(m->find_function("main"));
    interp::RoundRobinScheduler sched;
    steps += machine.run(sched).steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

void BM_TsanDetectionOverhead(benchmark::State& state) {
  auto m = make_counter_module(2000);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    interp::Machine machine(*m, {});
    race::TsanDetector detector;
    machine.add_observer(&detector);
    machine.start(m->find_function("main"));
    interp::RoundRobinScheduler sched;
    steps += machine.run(sched).steps;
    benchmark::DoNotOptimize(detector.reports().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TsanDetectionOverhead);

// --- detection-substrate benches (BENCH_detector.json) ---------------------
// The fast-vs-reference numbers behind DESIGN.md §2's "fast substrate":
// run with --benchmark_filter='Detector|ShadowLookup|VectorClockJoin'.
// The `impl` argument selects the substrate: 0 = DetectorImpl::kReference
// (hash-map shadow, eager capture), 1 = DetectorImpl::kFast (paged shadow,
// epoch fast paths, lazy capture). Both emit identical reports (the CI
// differential gate proves it); these measure only the hot-path cost.

/// Fixture state for driving TsanDetector::on_access directly: a machine
/// with two spawned (never run) worker threads supplies real instruction
/// pointers, thread ids, and interned context ids.
struct DetectorBenchSetup {
  std::unique_ptr<ir::Module> module;
  std::unique_ptr<interp::Machine> machine;
  const ir::Instruction* load = nullptr;
  const ir::Instruction* store = nullptr;
  interp::ContextId ctx1 = interp::kNoContext;
  interp::ContextId ctx2 = interp::kNoContext;

  DetectorBenchSetup() : module(make_counter_module(1)) {
    machine = std::make_unique<interp::Machine>(*module, interp::MachineOptions{});
    const ir::Function* worker = module->find_function("worker");
    machine->spawn(worker, 0);  // tid 0
    machine->spawn(worker, 0);  // tid 1
    ctx1 = machine->thread(0)->context();
    ctx2 = machine->thread(1)->context();
    for (const auto& block : worker->blocks()) {
      for (const auto& instr : block->instructions()) {
        if (instr->opcode() == ir::Opcode::kLoad) load = instr.get();
        if (instr->opcode() == ir::Opcode::kStore) store = instr.get();
      }
    }
  }

  interp::Observer::Access access(race::ThreadId tid, interp::Address addr,
                                  bool is_write) const {
    return {tid,      is_write ? store : load, addr, 1, is_write,
            /*is_atomic=*/false, tid == 0 ? ctx1 : ctx2};
  }
};

/// Two threads re-reading a shared working set — no races, the detector's
/// common case. The fast impl should hit the same-reader epoch shortcut on
/// every access after the first sweep.
void BM_DetectorRead(benchmark::State& state) {
  const auto impl = state.range(0) == 0 ? race::DetectorImpl::kReference
                                        : race::DetectorImpl::kFast;
  const DetectorBenchSetup setup;
  race::TsanDetector detector(nullptr, false, impl);
  constexpr std::uint64_t kAddrs = 256;
  const interp::Address base = 4096;
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kAddrs; ++i) {
      const interp::Address addr = base + i * 8;
      detector.on_access(setup.access(0, addr, false), *setup.machine);
      detector.on_access(setup.access(1, addr, false), *setup.machine);
    }
    accesses += 2 * kAddrs;
  }
  benchmark::DoNotOptimize(detector.reports().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_DetectorRead)->ArgName("impl")->Arg(0)->Arg(1);

/// Two threads rewriting disjoint halves of a working set — no races. The
/// fast impl should hit the same-owner store shortcut on every access
/// after the first sweep.
void BM_DetectorWrite(benchmark::State& state) {
  const auto impl = state.range(0) == 0 ? race::DetectorImpl::kReference
                                        : race::DetectorImpl::kFast;
  const DetectorBenchSetup setup;
  race::TsanDetector detector(nullptr, false, impl);
  constexpr std::uint64_t kAddrs = 256;
  const interp::Address base = 4096;
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kAddrs; ++i) {
      const interp::Address addr = base + i * 8;
      detector.on_access(setup.access(i % 2 == 0 ? 0 : 1, addr, true),
                         *setup.machine);
    }
    accesses += kAddrs;
  }
  benchmark::DoNotOptimize(detector.reports().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_DetectorWrite)->ArgName("impl")->Arg(0)->Arg(1);

/// Pure shadow-container cost, isolated from detection logic: hash-map
/// lookup (impl 0, the reference's shape) vs paged direct-mapped lookup
/// (impl 1) over a deterministically shuffled working set. Addresses are
/// dense cell indexes — interp::Address numbers memory cells, not bytes —
/// sized past L2 residency so the map pays its node-chase cache misses.
void BM_ShadowLookup(benchmark::State& state) {
  const bool paged = state.range(0) != 0;
  constexpr std::uint64_t kAddrs = 16384;
  std::vector<interp::Address> addrs;
  addrs.reserve(kAddrs);
  std::uint64_t lcg = 12345;
  for (std::uint64_t i = 0; i < kAddrs; ++i) {
    addrs.push_back(4096 + i);
  }
  for (std::uint64_t i = kAddrs - 1; i > 0; --i) {  // deterministic shuffle
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(addrs[i], addrs[lcg % (i + 1)]);
  }
  race::PagedShadow paged_shadow;
  std::unordered_map<interp::Address, race::ShadowSlot> mapped_shadow;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    if (paged) {
      for (const interp::Address addr : addrs) {
        race::ShadowSlot& slot = paged_shadow.slot(addr);
        sum += ++slot.write.epoch;
      }
    } else {
      for (const interp::Address addr : addrs) {
        race::ShadowSlot& slot = mapped_shadow[addr];
        sum += ++slot.write.epoch;
      }
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kAddrs));
}
BENCHMARK(BM_ShadowLookup)->ArgName("impl")->Arg(0)->Arg(1);

/// Join into an empty clock: exercises the geometric reserve added for the
/// fast substrate (one allocation instead of per-component growth).
void BM_VectorClockJoinGrow(benchmark::State& state) {
  const auto threads = static_cast<race::ThreadId>(state.range(0));
  race::VectorClock b;
  for (race::ThreadId t = 0; t < threads; ++t) {
    b.set(t, t * 2 + 7);
  }
  for (auto _ : state) {
    race::VectorClock c;
    c.join(b);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_VectorClockJoinGrow)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_VectorClockJoin(benchmark::State& state) {
  const auto threads = static_cast<race::ThreadId>(state.range(0));
  race::VectorClock a;
  race::VectorClock b;
  for (race::ThreadId t = 0; t < threads; ++t) {
    a.set(t, t * 3 + 1);
    b.set(t, t * 2 + 7);
  }
  for (auto _ : state) {
    race::VectorClock c = a;
    c.join(b);
    benchmark::DoNotOptimize(c.leq(a));
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16)->Arg(64);

/// Algorithm 1 over a data-flow chain of `depth` arithmetic hops ending in
/// a memcpy site: analysis time should scale linearly with the chain.
void BM_AnalyzerChainDepth(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  auto m = std::make_unique<ir::Module>("chain");
  ir::IRBuilder b(m.get());
  ir::GlobalVariable* src = m->add_global("src", 8);
  ir::GlobalVariable* dst = m->add_global("dst", 8);
  ir::GlobalVariable* racy = m->add_global("racy");
  ir::Function* f = m->add_function("f", ir::Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  ir::Instruction* v = b.load(racy, "v0");
  const ir::Instruction* read = v;
  for (std::int64_t i = 0; i < depth; ++i) {
    v = b.add(v, b.i64(1));
  }
  b.memcpy_(dst, src, v);
  b.ret();

  const vuln::VulnerabilityAnalyzer analyzer(*m);
  const interp::CallStack stack{{f, read}};
  for (auto _ : state) {
    const vuln::VulnAnalysis analysis = analyzer.analyze_from(read, stack);
    benchmark::DoNotOptimize(analysis.exploits.size());
  }
  state.counters["exploits"] = 1;
}
BENCHMARK(BM_AnalyzerChainDepth)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

/// Inter-procedural scaling: a call chain of `depth` functions forwarding
/// the corrupted value down to the site.
void BM_AnalyzerCallDepth(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  auto m = std::make_unique<ir::Module>("calls");
  ir::IRBuilder b(m.get());
  ir::GlobalVariable* src = m->add_global("src", 8);
  ir::GlobalVariable* dst = m->add_global("dst", 8);
  ir::GlobalVariable* racy = m->add_global("racy");

  ir::Function* leaf = m->add_function("leaf", ir::Type::void_type());
  leaf->add_argument(ir::Type::i64(), "n");
  b.set_insert_point(leaf->add_block("entry"));
  b.memcpy_(dst, src, leaf->argument(0));
  b.ret();

  ir::Function* prev = leaf;
  for (std::int64_t i = 0; i < depth; ++i) {
    ir::Function* next =
        m->add_function("hop" + std::to_string(i), ir::Type::void_type());
    next->add_argument(ir::Type::i64(), "n");
    b.set_insert_point(next->add_block("entry"));
    b.call(prev, {next->argument(0)});
    b.ret();
    prev = next;
  }
  ir::Function* f = m->add_function("f", ir::Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  ir::Instruction* read = b.load(racy, "v");
  b.call(prev, {read});
  b.ret();

  vuln::VulnerabilityAnalyzer::Options options;
  options.max_call_depth = static_cast<std::size_t>(depth) + 4;
  const vuln::VulnerabilityAnalyzer analyzer(*m, options);
  const interp::CallStack stack{{f, read}};
  for (auto _ : state) {
    const vuln::VulnAnalysis analysis = analyzer.analyze_from(read, stack);
    benchmark::DoNotOptimize(analysis.exploits.size());
  }
}
BENCHMARK(BM_AnalyzerCallDepth)->Arg(2)->Arg(8)->Arg(32);

/// ThreadPool fan-out overhead: dispatch `range(1)` near-empty slots on a
/// pool of `range(0)` workers. The floor every parallel stage pays.
void BM_ParallelForDispatch(benchmark::State& state) {
  support::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  const auto slots = static_cast<std::size_t>(state.range(1));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(slots, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * slots));
}
BENCHMARK(BM_ParallelForDispatch)
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({4, 1024})
    ->UseRealTime();

/// Whole-pipeline target fan-out: Pipeline::run_many over 8 racy targets
/// with jobs = range(0). The speedup column of BENCH_parallel.json —
/// real_time(jobs=1) / real_time(jobs=N), bounded by host cores.
void BM_PipelineRunManyJobs(benchmark::State& state) {
  constexpr std::size_t kTargets = 8;
  std::vector<std::unique_ptr<ir::Module>> modules;
  std::vector<core::PipelineTarget> targets;
  for (std::size_t i = 0; i < kTargets; ++i) {
    modules.push_back(make_counter_module(300));
    core::PipelineTarget target;
    target.name = "perf-" + std::to_string(i);
    target.module = modules.back().get();
    const ir::Module* m = modules.back().get();
    target.factory = [m] {
      interp::MachineOptions options;
      options.max_steps = 100'000;
      auto machine = std::make_unique<interp::Machine>(*m, options);
      machine->start(m->find_function("main"));
      return machine;
    };
    target.seed = 17 * (i + 1);
    targets.push_back(std::move(target));
  }
  core::PipelineOptions options;
  options.jobs = static_cast<unsigned>(state.range(0));
  const core::Pipeline pipeline(options);
  for (auto _ : state) {
    const auto results = pipeline.run_many(targets);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kTargets));
}
BENCHMARK(BM_PipelineRunManyJobs)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ParserRoundTrip(benchmark::State& state) {
  auto source_module = make_counter_module(10);
  const std::string text = ir::print_module(*source_module);
  for (auto _ : state) {
    auto parsed = ir::parse_module(text);
    benchmark::DoNotOptimize(parsed.is_ok());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParserRoundTrip);

void BM_LoopAnalysis(benchmark::State& state) {
  auto m = make_counter_module(10);
  const ir::Function* worker = m->find_function("worker");
  for (auto _ : state) {
    const ir::LoopInfo loops(*worker);
    benchmark::DoNotOptimize(loops.loops().size());
  }
}
BENCHMARK(BM_LoopAnalysis);

// --------------------------------------------------------------------------
// Static-analysis engine (BENCH_static.json; --benchmark_filter=
// 'Andersen|Prescreen'): Andersen solve time, prescreen classification
// time, and the detector hot path when the prescreen prunes the access.
// --------------------------------------------------------------------------

/// A module exercising every solver constraint kind at scale: `funcs`
/// workers each alloca a private buffer, publish a gep'd interior pointer
/// through a per-worker global slot, read it back through two levels of
/// indirection, and dispatch through a function-pointer table.
std::unique_ptr<ir::Module> make_analysis_module(std::int64_t funcs) {
  auto m = std::make_unique<ir::Module>("static");
  ir::IRBuilder b(m.get());
  ir::GlobalVariable* slots =
      m->add_global("slots", static_cast<std::uint64_t>(funcs), 0);
  ir::GlobalVariable* fptrs =
      m->add_global("fptrs", static_cast<std::uint64_t>(funcs), 0);
  std::vector<ir::Function*> handlers;
  std::vector<ir::Function*> workers;
  for (std::int64_t i = 0; i < funcs; ++i) {
    ir::Function* handler = m->add_function("handler" + std::to_string(i),
                                            ir::Type::i64());
    handler->add_argument(ir::Type::ptr(), "p");
    b.set_insert_point(handler->add_block("entry"));
    b.ret(b.load(handler->argument(0), "v"));
    handlers.push_back(handler);
  }
  for (std::int64_t i = 0; i < funcs; ++i) {
    ir::Function* worker = m->add_function("worker" + std::to_string(i),
                                           ir::Type::void_type());
    b.set_insert_point(worker->add_block("entry"));
    ir::Instruction* buf = b.alloca_cells(4, "buf");
    ir::Instruction* slot = b.gep(slots, b.i64(i), "slot");
    b.store(b.gep(buf, b.i64(i % 4), "in"), slot);
    ir::Instruction* back = b.load(slot, "back");
    b.load(back, "deep");
    ir::Instruction* fslot = b.gep(fptrs, b.i64(i), "fslot");
    b.store(handlers[static_cast<std::size_t>(i)], fslot);
    b.callptr(b.load(fslot, "f"), {back}, "r");
    b.ret();
    workers.push_back(worker);
  }
  ir::Function* main_fn = m->add_function("main", ir::Type::void_type());
  b.set_insert_point(main_fn->add_block("entry"));
  for (ir::Function* worker : workers) b.call(worker, {});
  b.ret();
  return m;
}

void BM_AndersenSolve(benchmark::State& state) {
  const auto m = make_analysis_module(state.range(0));
  std::size_t nodes = 0;
  for (auto _ : state) {
    const analysis::PointsTo pt(*m);
    nodes = pt.stats().nodes;
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * nodes));
}
BENCHMARK(BM_AndersenSolve)->ArgName("funcs")->Arg(16)->Arg(64)->Arg(256);

void BM_PrescreenClassify(benchmark::State& state) {
  const auto m = make_analysis_module(state.range(0));
  const analysis::ModuleStatic ms(*m);
  std::size_t considered = 0;
  for (auto _ : state) {
    const analysis::Prescreen ps(*m, ms.points_to, ms.resolved_calls);
    considered = ps.considered_accesses();
    benchmark::DoNotOptimize(ps.no_race().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * considered));
}
BENCHMARK(BM_PrescreenClassify)->ArgName("funcs")->Arg(16)->Arg(64)->Arg(256);

/// BM_DetectorRead's workload with the accesses statically cleared by the
/// prescreen: the pruned path skips shadow lookup and capture entirely, so
/// the gap to BM_DetectorRead is the payoff of a no_race verdict.
void BM_DetectorPrescreenedRead(benchmark::State& state) {
  const auto impl = state.range(0) == 0 ? race::DetectorImpl::kReference
                                        : race::DetectorImpl::kFast;
  const DetectorBenchSetup setup;
  const std::unordered_set<const ir::Instruction*> no_race{setup.load,
                                                           setup.store};
  const race::PrescreenView view{race::PrescreenMode::kOn, &no_race};
  race::TsanDetector detector(nullptr, false, impl, view);
  constexpr std::uint64_t kAddrs = 256;
  const interp::Address base = 4096;
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kAddrs; ++i) {
      const interp::Address addr = base + i * 8;
      detector.on_access(setup.access(0, addr, false), *setup.machine);
      detector.on_access(setup.access(1, addr, false), *setup.machine);
    }
    accesses += 2 * kAddrs;
  }
  benchmark::DoNotOptimize(detector.reports().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_DetectorPrescreenedRead)->ArgName("impl")->Arg(0)->Arg(1);

// --------------------------------------------------------------------------
// Memory-aware value flow (BENCH_valueflow.json;
// --benchmark_filter='ValueFlow|VulnFlow'): graph construction over the
// Andersen workload, and the Algorithm 1 walk when every propagation step
// crosses a store->load edge (DESIGN.md §14).
// --------------------------------------------------------------------------

void BM_ValueFlowBuild(benchmark::State& state) {
  const auto m = make_analysis_module(state.range(0));
  const analysis::ModuleStatic ms(*m);
  std::size_t edges = 0;
  for (auto _ : state) {
    const analysis::ValueFlowGraph graph(*m, ms.points_to,
                                         ms.resolved_calls);
    edges = graph.stats().def_use_edges + graph.stats().call_edges +
            graph.stats().mem_edges;
    benchmark::DoNotOptimize(edges);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * edges));
}
BENCHMARK(BM_ValueFlowBuild)->ArgName("funcs")->Arg(16)->Arg(64)->Arg(256);

/// One producer parks a racy index into `relays` memory slots; `relays`
/// consumers each load their slot and index a table with it. A single
/// analyze_from therefore fans out across `relays` store->load edges —
/// the walk cost is all flow-edge work, none of it register chasing.
std::unique_ptr<ir::Module> make_relay_module(std::int64_t relays) {
  auto m = std::make_unique<ir::Module>("relay");
  ir::IRBuilder b(m.get());
  ir::GlobalVariable* idx = m->add_global("idx", 1, 1);
  ir::GlobalVariable* table =
      m->add_global("table", static_cast<std::uint64_t>(relays) + 16, 0);
  std::vector<ir::GlobalVariable*> slots;
  for (std::int64_t i = 0; i < relays; ++i) {
    slots.push_back(m->add_global("slot" + std::to_string(i), 1, 1));
  }
  ir::Function* producer = m->add_function("producer", ir::Type::void_type());
  b.set_insert_point(producer->add_block("entry"));
  ir::Instruction* v = b.load(idx, "v");
  for (ir::GlobalVariable* slot : slots) b.store(v, slot);
  b.ret();
  std::vector<ir::Function*> consumers;
  for (std::int64_t i = 0; i < relays; ++i) {
    ir::Function* consumer = m->add_function(
        "consumer" + std::to_string(i), ir::Type::void_type());
    b.set_insert_point(consumer->add_block("entry"));
    ir::Instruction* index =
        b.load(slots[static_cast<std::size_t>(i)], "i");
    b.store(b.i64(7), b.gep(table, index, "p"));
    b.ret();
    consumers.push_back(consumer);
  }
  ir::Function* main_fn = m->add_function("main", ir::Type::void_type());
  b.set_insert_point(main_fn->add_block("entry"));
  b.call(producer, {});
  for (ir::Function* consumer : consumers) b.call(consumer, {});
  b.ret();
  return m;
}

void BM_VulnFlowWalk(benchmark::State& state) {
  const auto m = make_relay_module(state.range(0));
  const analysis::ModuleStatic ms(*m);
  const analysis::ValueFlowGraph graph(*m, ms.points_to, ms.resolved_calls);
  const ir::Function* producer = m->find_function("producer");
  const ir::Instruction* read =
      producer->entry()->instructions().front().get();
  vuln::VulnerabilityAnalyzer::Options options;
  options.value_flow = &graph;
  const vuln::VulnerabilityAnalyzer analyzer(*m, options);
  const interp::CallStack stack{{producer, read}};
  std::size_t exploits = 0;
  for (auto _ : state) {
    const vuln::VulnAnalysis analysis = analyzer.analyze_from(read, stack);
    exploits = analysis.exploits.size();
    benchmark::DoNotOptimize(exploits);
  }
  state.counters["exploits"] = static_cast<double>(exploits);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * exploits));
}
BENCHMARK(BM_VulnFlowWalk)->ArgName("relays")->Arg(4)->Arg(32)->Arg(128);

// --------------------------------------------------------------------------
// Sync-preserving race prediction (BENCH_predict.json;
// --benchmark_filter='Predict'): raw SP-closure cost scaling with trace
// length, and the whole-pipeline payoff of --predict on — the pruned
// guarded-handoff pairs never reach schedule exploration, so the on/off
// real_time gap is the schedules_avoided win.
// --------------------------------------------------------------------------

/// Instruction donors for the synthetic predictor traces (the predictor
/// keys reports and events by instruction id).
struct PredictBenchSetup {
  std::unique_ptr<ir::Module> module;
  const ir::Instruction* w_x = nullptr;
  const ir::Instruction* w_flag = nullptr;
  const ir::Instruction* r_flag = nullptr;
  const ir::Instruction* r_x = nullptr;
  const ir::Instruction* w_noise = nullptr;

  PredictBenchSetup() {
    auto parsed = ir::parse_module(R"(module predict_bench
global @x
global @flag
global @noise
func @f() {
entry:
  store 1, @x
  store 1, @flag
  %a = load @flag
  %b = load @x
  store 1, @noise
  ret
}
func @main() {
entry:
  ret
}
)");
    module = std::move(parsed).value();
    const ir::Function* f = module->find_function("f");
    std::vector<const ir::Instruction*> accesses;
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() == ir::Opcode::kStore ||
            instr->opcode() == ir::Opcode::kLoad) {
          accesses.push_back(instr.get());
        }
      }
    }
    w_x = accesses[0];
    w_flag = accesses[1];
    r_flag = accesses[2];
    r_x = accesses[3];
    w_noise = accesses[4];
  }
};

/// One SP-closure decision over a trace of range(0) noise events per
/// thread with the racing pair at the far end: the ideal spans the whole
/// prefix, so this prices the closure's fixpoint against trace length.
void BM_PredictClosure(benchmark::State& state) {
  using race::predict::TraceEvent;
  const PredictBenchSetup setup;
  const auto noise = static_cast<std::size_t>(state.range(0));

  const auto ev = [](TraceEvent::Kind kind, interp::ThreadId tid,
                     interp::Address addr, const ir::Instruction* instr) {
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.addr = addr;
    e.instr = instr;
    return e;
  };
  race::predict::Trace trace;
  trace.events.push_back(ev(TraceEvent::Kind::kThreadCreate, 0, 1, nullptr));
  trace.events.push_back(ev(TraceEvent::Kind::kThreadCreate, 0, 2, nullptr));
  for (std::size_t i = 0; i < noise; ++i) {
    trace.events.push_back(
        ev(TraceEvent::Kind::kWrite, 1, 10000 + i, setup.w_noise));
    trace.events.push_back(
        ev(TraceEvent::Kind::kWrite, 2, 20000 + i, setup.w_noise));
  }
  trace.events.push_back(ev(TraceEvent::Kind::kWrite, 1, 5, setup.w_x));
  trace.events.push_back(ev(TraceEvent::Kind::kWrite, 1, 6, setup.w_flag));
  trace.events.push_back(ev(TraceEvent::Kind::kRead, 2, 6, setup.r_flag));
  trace.events.push_back(ev(TraceEvent::Kind::kRead, 2, 5, setup.r_x));
  const std::vector<race::predict::Trace> traces{std::move(trace)};

  std::vector<race::RaceReport> reduced(2);
  reduced[0].first.instr = setup.w_x;
  reduced[0].second.instr = setup.r_x;
  reduced[1].first.instr = setup.w_flag;
  reduced[1].second.instr = setup.r_flag;

  const race::predict::SpPredictor predictor;
  for (auto _ : state) {
    // module=nullptr: every read steering — the strictest (costliest)
    // closure, and the one that proves reduced[0] infeasible.
    const auto out = predictor.analyze(nullptr, traces, reduced);
    benchmark::DoNotOptimize(out.candidates);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * traces[0].events.size()));
}
BENCHMARK(BM_PredictClosure)->ArgName("noise")->Arg(64)->Arg(512)->Arg(4096);

/// The guarded-publish shape the shipped examples plant, widened to six
/// payload cells: every payload pair is flag-guarded (SP-infeasible), only
/// the flag handoff itself races — so exhaustive mode schedule-explores
/// seven reports where predict mode explores one.
constexpr const char* kPredictPipelineModule = R"(module predict_pipe
global @d0
global @d1
global @d2
global @d3
global @d4
global @d5
global @flag
func @writer() {
entry:
  store 10, @d0
  store 11, @d1
  store 12, @d2
  store 13, @d3
  store 14, @d4
  store 15, @d5
  store 1, @flag
  ret
}
func @reader() {
entry:
  io_delay 5
  %f = load @flag
  %ok = icmp ne %f, 0
  br %ok, use, skip
use:
  %v0 = load @d0
  %v1 = load @d1
  %v2 = load @d2
  %v3 = load @d3
  %v4 = load @d4
  %v5 = load @d5
  ret
skip:
  ret
}
func @main() {
entry:
  %w = thread_create @writer, 0
  %r = thread_create @reader, 0
  thread_join %w
  thread_join %r
  ret
}
)";

/// Full pipeline with --predict off (arg 0) vs on (arg 1) on the guarded
/// module: identical final reports, but on-mode skips schedule exploration
/// for every SP-infeasible pair — the real_time gap is the payoff
/// BENCH_predict.json records.
void BM_PipelinePredictOn(benchmark::State& state) {
  auto parsed = ir::parse_module(kPredictPipelineModule);
  const std::shared_ptr<ir::Module> m = std::move(parsed).value();
  core::PipelineTarget target;
  target.name = "predict_pipe";
  target.module = m.get();
  target.factory = [m] {
    auto machine =
        std::make_unique<interp::Machine>(*m, interp::MachineOptions{});
    machine->start(m->find_function("main"));
    return machine;
  };
  core::PipelineOptions options;
  options.predict = state.range(0) == 0 ? race::PredictMode::kOff
                                        : race::PredictMode::kOn;
  const core::Pipeline pipeline(options);
  std::size_t remaining = 0;
  std::size_t avoided = 0;
  for (auto _ : state) {
    const core::PipelineResult result = pipeline.run(target);
    remaining = result.counts.remaining;
    avoided = result.counts.predict_schedules_avoided;
    benchmark::DoNotOptimize(remaining);
  }
  state.counters["remaining"] = static_cast<double>(remaining);
  state.counters["schedules_avoided"] = static_cast<double>(avoided);
}
BENCHMARK(BM_PipelinePredictOn)->ArgName("predict")->Arg(0)->Arg(1);

// --- owl_served round-trips (BENCH_serve.json) ------------------------
// One full request lifecycle through ServiceCore — parse, admission,
// queue, execute-or-cache, respond — without the socket hop. Cold forces
// a distinct cache key every iteration (full pipeline + entry store);
// Warm replays one key (integrity-checked read, no pipeline). The spread
// between the two is what the content-addressed cache buys a CI fleet
// re-analyzing modules that did not change.

/// Same tiny lost-update module the serve tests use: fast to analyze,
/// nonempty findings, so the rendered response is representative.
constexpr const char* kServeModule = R"(module serve_bench
global @balance [1] = 100

func @deposit_a() {
entry:
  %b = load @balance
  io_delay 5
  %n = add %b, 10
  store %n, @balance
  ret
}

func @deposit_b() {
entry:
  %b = load @balance
  io_delay 3
  %n = add %b, 25
  store %n, @balance
  ret
}

func @main() {
entry:
  %a = thread_create @deposit_a, 0
  %b = thread_create @deposit_b, 0
  thread_join %a
  thread_join %b
  ret
}
)";

/// Scratch cache directory, removed on destruction.
struct ServeTempDir {
  ServeTempDir() {
    char pattern[] = "/tmp/owl_serve_bench_XXXXXX";
    path = mkdtemp(pattern);
  }
  ~ServeTempDir() {
    if (!path.empty()) {
      const std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  std::string path;
};

std::string serve_request_line(std::uint64_t seed) {
  return str_format(
      "{\"id\":\"bench\",\"module_text\":%s,\"name\":\"serve_bench\","
      "\"options\":{\"seed\":%llu}}",
      json_quote(kServeModule).c_str(),
      static_cast<unsigned long long>(seed));
}

/// Submits one line and blocks until its response is delivered.
void serve_roundtrip(serve::ServiceCore& core, const std::string& line) {
  std::mutex mutex;
  std::condition_variable done;
  bool have_response = false;
  core.handle_line(line, "bench", [&](const std::string&) {
    std::lock_guard<std::mutex> lock(mutex);
    have_response = true;
    done.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return have_response; });
}

void BM_ServeRoundtripCold(benchmark::State& state) {
  ServeTempDir dir;
  serve::ServiceCore::Config config;
  config.cache_dir = dir.path + "/cache";
  serve::ServiceCore core(config);
  core.start();
  std::uint64_t seed = 1;  // fresh key per iteration: always a miss
  for (auto _ : state) {
    serve_roundtrip(core, serve_request_line(seed++));
  }
  core.shutdown();
  state.SetItemsProcessed(static_cast<std::int64_t>(seed - 1));
}
BENCHMARK(BM_ServeRoundtripCold)->UseRealTime();

void BM_ServeRoundtripWarm(benchmark::State& state) {
  ServeTempDir dir;
  serve::ServiceCore::Config config;
  config.cache_dir = dir.path + "/cache";
  serve::ServiceCore core(config);
  core.start();
  const std::string line = serve_request_line(1);
  serve_roundtrip(core, line);  // prewarm: the one miss + store
  std::int64_t served = 0;
  for (auto _ : state) {
    serve_roundtrip(core, line);
    ++served;
  }
  core.shutdown();
  state.SetItemsProcessed(served);
}
BENCHMARK(BM_ServeRoundtripWarm)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
