// Shared helpers for the evaluation benches.
//
// Every bench binary regenerates one of the paper's tables or figures on
// the modelled workloads and prints our measurement next to the paper's
// published number so shapes can be compared line by line (EXPERIMENTS.md
// records the expectations). Knobs:
//   OWL_BENCH_SCALE      noise scale (default 1.0 = paper-shaped volumes
//                        at ~1/10 magnitude; see DESIGN.md)
//   OWL_BENCH_SCHEDULES  detection schedules per target (default 4)
// Parallel knob:
//   OWL_BENCH_JOBS       worker threads for the parallel sweep in
//                        run_all_pipelines (default hardware_concurrency)
// Observability knob:
//   OWL_MANIFEST_DIR     when set, run_all_pipelines writes a run manifest
//                        (core/manifest.hpp) to $OWL_MANIFEST_DIR/<tool>.json
#pragma once

#include <cerrno>  // program_invocation_short_name (glibc)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/manifest.hpp"
#include "core/pipeline.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "workloads/registry.hpp"

namespace owl::bench {

inline double scale_from_env() {
  if (const char* v = std::getenv("OWL_BENCH_SCALE")) {
    const double s = std::atof(v);
    if (s > 0) return s;
  }
  return 1.0;
}

inline unsigned schedules_from_env() {
  if (const char* v = std::getenv("OWL_BENCH_SCHEDULES")) {
    const int n = std::atoi(v);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return 4;
}

inline workloads::NoiseProfile bench_profile() {
  workloads::NoiseProfile profile;
  profile.scale = scale_from_env();
  return profile;
}

/// Runs the full OWL pipeline on one workload with its preferred options.
inline core::PipelineResult run_pipeline(const workloads::Workload& w,
                                         std::uint64_t seed = 1) {
  core::PipelineTarget target = w.target(seed);
  target.detection_schedules = schedules_from_env();
  core::Pipeline pipeline(w.pipeline_options());
  return pipeline.run(target);
}

inline unsigned jobs_from_env() {
  if (const char* v = std::getenv("OWL_BENCH_JOBS")) {
    const int n = std::atoi(v);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return support::ThreadPool::default_jobs();
}

/// One table-wide sweep over every workload, measured twice: a sequential
/// baseline and a ThreadPool fan-out (each workload keeps its own
/// PipelineOptions, so the pool parallelizes whole pipeline runs). The
/// returned results come from the parallel sweep, in input order; the
/// measurement also proves they serialize byte-identically to the
/// sequential baseline — the tables are themselves a differential gate.
struct ParallelSweep {
  std::vector<core::PipelineResult> results;   ///< parallel run, input order
  std::vector<core::PipelineResult> baseline;  ///< sequential run, input order
  double sequential_seconds = 0.0;
  double parallel_seconds = 0.0;
  unsigned jobs = 1;
  bool identical = true;  ///< parallel byte-identical to sequential

  double speedup() const {
    return parallel_seconds > 0.0 ? sequential_seconds / parallel_seconds
                                  : 0.0;
  }
  /// The footer every table prints under its speedup column.
  std::string summary() const {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "parallel sweep: jobs=%u wall %.2fs vs sequential %.2fs "
                  "(%.2fx speedup), results %s",
                  jobs, parallel_seconds, sequential_seconds, speedup(),
                  identical ? "byte-identical" : "DIVERGED");
    return buffer;
  }
};

/// The bench binary's name for manifest labelling ("bench" when the
/// platform cannot tell us).
inline std::string bench_tool_name() {
#ifdef __GLIBC__
  return std::string("bench:") + program_invocation_short_name;
#else
  return "bench";
#endif
}

/// When $OWL_MANIFEST_DIR is set, writes a run manifest for a finished
/// sweep to $OWL_MANIFEST_DIR/<tool>.json (':' in the tool label becomes
/// '_' so the file name stays portable). No-op otherwise.
inline void write_sweep_manifest(const std::vector<workloads::Workload>& ws,
                                 const std::vector<core::PipelineResult>& results,
                                 std::uint64_t seed, unsigned jobs) {
  const char* dir = std::getenv("OWL_MANIFEST_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string tool = bench_tool_name();
  core::ManifestKv options;
  options.emplace_back("bench_scale", str_format("%.3f", scale_from_env()));
  options.emplace_back("schedules", str_format("%u", schedules_from_env()));
  options.emplace_back("seed", str_format("%llu",
                                          (unsigned long long)seed));
  core::ManifestKv environment;
  environment.emplace_back("jobs", str_format("%u", jobs));
  std::vector<core::ManifestTarget> targets;
  for (const workloads::Workload& w : ws) {
    const core::PipelineTarget t = w.target(seed);
    core::ManifestTarget meta;
    meta.name = t.name;
    meta.seed = t.seed;
    meta.detector = std::string(core::detector_kind_name(t.detector));
    meta.schedules = schedules_from_env();
    targets.push_back(std::move(meta));
  }
  std::string file = tool;
  for (char& c : file) {
    if (c == ':' || c == '/') c = '_';
  }
  const std::string path = std::string(dir) + "/" + file + ".json";
  const std::string json =
      core::render_manifest(tool, options, targets, results, environment);
  if (!core::write_manifest(path, json)) {
    std::fprintf(stderr, "bench: run manifest not written to %s\n",
                 path.c_str());
  }
}

inline ParallelSweep run_all_pipelines(
    const std::vector<workloads::Workload>& workloads, std::uint64_t seed = 1) {
  using clock = std::chrono::steady_clock;
  ParallelSweep sweep;
  sweep.jobs = jobs_from_env();

  sweep.baseline.resize(workloads.size());
  const clock::time_point t0 = clock::now();
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    sweep.baseline[i] = run_pipeline(workloads[i], seed);
  }
  const clock::time_point t1 = clock::now();
  sweep.sequential_seconds = std::chrono::duration<double>(t1 - t0).count();

  sweep.results.resize(workloads.size());
  support::ThreadPool pool(sweep.jobs);
  const clock::time_point t2 = clock::now();
  pool.parallel_for(workloads.size(), [&](std::size_t i) {
    sweep.results[i] = run_pipeline(workloads[i], seed);
  });
  const clock::time_point t3 = clock::now();
  sweep.parallel_seconds = std::chrono::duration<double>(t3 - t2).count();

  for (std::size_t i = 0; i < workloads.size(); ++i) {
    if (core::serialize_result(sweep.baseline[i]) !=
        core::serialize_result(sweep.results[i])) {
      sweep.identical = false;
      std::fprintf(stderr, "run_all_pipelines: %s diverged under jobs=%u\n",
                   workloads[i].name.c_str(), sweep.jobs);
    }
  }
  write_sweep_manifest(workloads, sweep.results, seed, sweep.jobs);
  return sweep;
}

/// Repeated-execution exploit driver: returns the 1-based repetition at
/// which the attack first succeeded, or 0 if it never did within `budget`.
inline unsigned repetitions_to_trigger(const workloads::Workload& w,
                                       const std::vector<interp::Word>& inputs,
                                       unsigned budget,
                                       std::uint64_t seed_base) {
  for (unsigned i = 0; i < budget; ++i) {
    auto machine = w.make_machine(inputs);
    interp::RandomScheduler sched(seed_base + i);
    machine->run(sched);
    if (w.attack_succeeded(*machine)) return i + 1;
  }
  return 0;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("OWL reproduction — %s\n", what);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("noise scale %.2f (report volumes ~1/10 of the paper's at 1.0)\n",
              scale_from_env());
  std::printf("================================================================\n\n");
}

}  // namespace owl::bench
