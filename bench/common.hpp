// Shared helpers for the evaluation benches.
//
// Every bench binary regenerates one of the paper's tables or figures on
// the modelled workloads and prints our measurement next to the paper's
// published number so shapes can be compared line by line (EXPERIMENTS.md
// records the expectations). Knobs:
//   OWL_BENCH_SCALE      noise scale (default 1.0 = paper-shaped volumes
//                        at ~1/10 magnitude; see DESIGN.md)
//   OWL_BENCH_SCHEDULES  detection schedules per target (default 4)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "workloads/registry.hpp"

namespace owl::bench {

inline double scale_from_env() {
  if (const char* v = std::getenv("OWL_BENCH_SCALE")) {
    const double s = std::atof(v);
    if (s > 0) return s;
  }
  return 1.0;
}

inline unsigned schedules_from_env() {
  if (const char* v = std::getenv("OWL_BENCH_SCHEDULES")) {
    const int n = std::atoi(v);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return 4;
}

inline workloads::NoiseProfile bench_profile() {
  workloads::NoiseProfile profile;
  profile.scale = scale_from_env();
  return profile;
}

/// Runs the full OWL pipeline on one workload with its preferred options.
inline core::PipelineResult run_pipeline(const workloads::Workload& w,
                                         std::uint64_t seed = 1) {
  core::PipelineTarget target = w.target(seed);
  target.detection_schedules = schedules_from_env();
  core::Pipeline pipeline(w.pipeline_options());
  return pipeline.run(target);
}

/// Repeated-execution exploit driver: returns the 1-based repetition at
/// which the attack first succeeded, or 0 if it never did within `budget`.
inline unsigned repetitions_to_trigger(const workloads::Workload& w,
                                       const std::vector<interp::Word>& inputs,
                                       unsigned budget,
                                       std::uint64_t seed_base) {
  for (unsigned i = 0; i < budget; ++i) {
    auto machine = w.make_machine(inputs);
    interp::RandomScheduler sched(seed_base + i);
    machine->run(sched);
    if (w.attack_succeeded(*machine)) return i + 1;
  }
  return 0;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("OWL reproduction — %s\n", what);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("noise scale %.2f (report volumes ~1/10 of the paper's at 1.0)\n",
              scale_from_env());
  std::printf("================================================================\n\n");
}

}  // namespace owl::bench
