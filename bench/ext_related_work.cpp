// §9 related-work comparison, made executable. The paper argues prior
// consequence/vulnerability analyses are structurally insufficient for
// concurrency attacks:
//
//  - ConSeq-style consequence analysis assumes bugs and failures sit within
//    a short intra-procedural propagation distance — but concurrency
//    attacks "usually exploit corrupted memory that resides in different
//    functions";
//  - Livshits-style taint tracking follows only data flow to sensitive
//    sinks — but attacks like Libsafe's ride an `if` control dependence;
//  - Yamaguchi-style code-property-graph queries lack inter-procedural
//    reasoning.
//
// We re-run Algorithm 1 on every verified attack race with the
// corresponding capability removed and count which attacks survive.
#include "common.hpp"
#include "support/strings.hpp"
#include "vuln/analyzer.hpp"

namespace {

struct Mode {
  const char* name;
  bool interprocedural;
  bool control_flow;
};

}  // namespace

int main() {
  using namespace owl;
  bench::print_header(
      "Related-work comparison: what weaker analyses miss (§9)",
      "ConSeq lacks cross-function reach; taint tracking lacks control flow");

  const Mode kModes[] = {
      {"OWL (full Algorithm 1)", true, true},
      {"no inter-procedural (ConSeq/Yamaguchi-like)", false, true},
      {"no control flow (taint/Livshits-like)", true, false},
      {"neither", false, false},
  };

  TableFormatter table({"attack", "analysis", "finds the site?"},
                       {Align::kLeft, Align::kLeft, Align::kLeft});

  const workloads::NoiseProfile profile = bench::bench_profile();
  std::size_t full_found = 0;
  std::size_t conseq_found = 0;
  std::size_t taint_found = 0;
  std::size_t targets = 0;

  for (const char* name :
       {"libsafe", "linux", "mysql-flush", "mysql-setpass", "ssdb",
        "apache-log", "apache-balancer", "chrome"}) {
    const workloads::Workload w = workloads::make_by_name(name, profile);

    // Shared front end up to the verified races.
    core::PipelineTarget target = w.target();
    target.detection_schedules = bench::schedules_from_env();
    core::PipelineOptions front = w.pipeline_options();
    front.enable_vuln_verifier = false;
    const core::PipelineResult reduced = core::Pipeline(front).run(target);
    const auto& survivors =
        reduced.store.stage(core::Stage::kAfterRaceVerifier);
    ++targets;

    // The expected site opcodes for this workload's attack(s).
    const auto expected = [&](const vuln::ExploitReport& e) {
      switch (e.site->opcode()) {
        case ir::Opcode::kStrCpy:
        case ir::Opcode::kMemCopy:
        case ir::Opcode::kFree:
        case ir::Opcode::kSetUid:
        case ir::Opcode::kCallPtr:
        case ir::Opcode::kEval:
          return true;
        case ir::Opcode::kStore:
          return e.type == vuln::SiteType::kPointerAssign;
        default:
          return false;
      }
    };

    for (const Mode& mode : kModes) {
      vuln::VulnerabilityAnalyzer::Options options;
      options.interprocedural = mode.interprocedural;
      options.track_control_flow = mode.control_flow;
      const vuln::VulnerabilityAnalyzer analyzer(*w.module, options);
      bool found = false;
      for (const race::RaceReport& report : survivors) {
        for (const vuln::ExploitReport& e :
             analyzer.analyze(report).exploits) {
          // Only count sites in the modelled program, not noise modules.
          if (expected(e) && e.site->loc().file.find("noise") ==
                                 std::string::npos) {
            found = true;
          }
        }
      }
      table.add_row({w.name, mode.name, found ? "yes" : "NO"});
      if (mode.interprocedural && mode.control_flow && found) ++full_found;
      if (!mode.interprocedural && mode.control_flow && found) ++conseq_found;
      if (mode.interprocedural && !mode.control_flow && found) ++taint_found;
    }
    table.add_rule();
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape check (paper §9 / Finding II):\n"
      "  full Algorithm 1 finds the site on %zu/%zu targets;\n"
      "  without inter-procedural reach (ConSeq-like):   %zu/%zu;\n"
      "  without control-flow tracking (taint-like):     %zu/%zu.\n"
      "The drops are the attacks whose bug-to-site propagation crosses\n"
      "functions (Libsafe, SSDB, MySQL, Chrome) or rides an `if`\n"
      "control dependence (Libsafe, SSDB, the balancer DoS).\n",
      full_found, targets, conseq_found, targets, taint_found, targets);
  return full_found > conseq_found && full_found > taint_found ? 0 : 1;
}
