// Regenerates the paper's running example end to end: Fig. 1 (the Libsafe
// dying-flag attack), Fig. 4 (the racy read's call stack) and Fig. 5
// (OWL's vulnerable-input hint), then demonstrates the exploit.
#include "common.hpp"
#include "support/strings.hpp"
#include "vuln/hint.hpp"

int main() {
  using namespace owl;
  bench::print_header(
      "Fig. 1/4/5: the Libsafe concurrency attack walkthrough (§4.3)",
      "dying race -> stack_check bypass -> strcpy overflow -> code injection");

  const workloads::Workload w =
      workloads::make_libsafe(bench::bench_profile());
  const core::PipelineResult result = bench::run_pipeline(w);

  std::printf("--- race reports after reduction (%zu of %zu raw) ---\n",
              result.counts.remaining, result.counts.raw_reports);
  for (const race::RaceReport& report :
       result.store.stage(core::Stage::kAfterRaceVerifier)) {
    std::fputs(report.to_string().c_str(), stdout);
    std::printf("\n");
  }

  std::printf("--- Fig. 4: call stack of the corrupted read ---\n");
  for (const race::RaceReport& report :
       result.store.stage(core::Stage::kAfterRaceVerifier)) {
    if (report.object_name != "dying") continue;
    const race::AccessRecord* read = report.read_side();
    if (read != nullptr) {
      std::fputs(interp::call_stack_to_string(read->stack).c_str(), stdout);
    }
  }

  std::printf("\n--- Fig. 5: OWL's vulnerable input hint ---\n");
  for (const vuln::ExploitReport& exploit : result.exploits) {
    std::fputs(vuln::render_hint(exploit).c_str(), stdout);
  }

  std::printf("\n--- dynamic verification & exploitation ---\n");
  for (const core::ConcurrencyAttack& attack : result.attacks) {
    std::fputs(attack.to_string().c_str(), stdout);
  }

  // Run the exploit script: repeated oversized requests with the second
  // timed into the dying window; the payload carries the "shellcode"
  // address that lands in the return slot.
  unsigned shell = 0;
  const unsigned runs = 20;
  for (unsigned i = 0; i < runs; ++i) {
    auto machine = w.make_machine(w.exploit_inputs);
    interp::RandomScheduler sched(7000 + i);
    machine->run(sched);
    for (const interp::EvalRecord& rec : machine->evals()) {
      if (rec.command_id == 1337) {
        ++shell;
        break;
      }
    }
  }
  std::printf("\nexploit script: injected shell ran in %u/%u repetitions\n",
              shell, runs);
  std::printf("detected by pipeline: %s\n",
              w.attack_detected(result) ? "yes" : "NO");
  return w.attack_detected(result) && shell > 0 ? 0 : 1;
}
