// Unit tests for the dynamic race verifier (§5.2) and dynamic vulnerability
// verifier (§6.2).
#include <gtest/gtest.h>

#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "race/tsan_detector.hpp"
#include "verify/race_verifier.hpp"
#include "verify/vuln_verifier.hpp"
#include "vuln/analyzer.hpp"

namespace owl::verify {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

race::MachineFactory factory_for(const ir::Module& m,
                                 std::vector<interp::Word> inputs = {}) {
  return [&m, inputs] {
    interp::MachineOptions options;
    options.inputs = inputs;
    auto machine = std::make_unique<interp::Machine>(m, options);
    machine->start(m.find_function("main"));
    return machine;
  };
}

std::vector<race::RaceReport> detect(const ir::Module& m,
                                     std::vector<interp::Word> inputs = {}) {
  auto machine = factory_for(m, std::move(inputs))();
  race::TsanDetector detector;
  machine->add_observer(&detector);
  interp::RandomScheduler sched(1);
  machine->run(sched);
  return detector.take_reports();
}

const char* kSteadyRace = R"(module sr
global @x
func @writer() {
entry:
  store 7, @x
  ret
}
func @reader() {
entry:
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)";

TEST(RaceVerifierTest, VerifiesSteadyRaceInTheRacingMoment) {
  auto m = parse_ok(kSteadyRace);
  auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 1u);

  const RaceVerifier verifier;
  const RaceVerifyResult result =
      verifier.verify(reports.front(), factory_for(*m));
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(reports.front().verified);
  EXPECT_FALSE(reports.front().security_hint.empty());
  // §5.2 hints: about to read the initial 0, about to write 7.
  EXPECT_EQ(result.value_about_to_read, 0);
  EXPECT_EQ(result.value_about_to_write, 7);
  EXPECT_FALSE(result.writes_null);
}

TEST(RaceVerifierTest, NullWriteHintFlagsPotentialNullDeref) {
  auto m = parse_ok(R"(module nw
global @p [1] = 5000
func @nuller() {
entry:
  store null, @p
  ret
}
func @user() {
entry:
  %v = load @p
  ret
}
func @main() {
entry:
  %a = thread_create @nuller, 0
  %b = thread_create @user, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 1u);
  const RaceVerifier verifier;
  const RaceVerifyResult result =
      verifier.verify(reports.front(), factory_for(*m));
  ASSERT_TRUE(result.verified);
  EXPECT_TRUE(result.writes_null);
  EXPECT_NE(result.security_hint.find("NULL"), std::string::npos);
}

TEST(RaceVerifierTest, PublicationRaceCannotBeRecaught) {
  // The R.V.E. mechanism: the reader only touches @data behind a gate the
  // parked writer never opens, so the race cannot be caught in the racing
  // moment and the report is eliminated.
  auto m = parse_ok(R"(module pub
global @data
global @gate
func @writer() {
entry:
  store 42, @data
  store 1, @gate
  ret
}
func @reader() {
entry:
  io_delay 200
  %g = load @gate
  %open = icmp eq %g, 1
  br %open, go, out
go:
  %v = load @data
  ret
out:
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 2u);  // data pair + gate pair
  const RaceVerifier verifier;
  race::RaceReport* data_report = nullptr;
  race::RaceReport* gate_report = nullptr;
  for (race::RaceReport& r : reports) {
    if (r.object_name == "data") data_report = &r;
    if (r.object_name == "gate") gate_report = &r;
  }
  ASSERT_NE(data_report, nullptr);
  ASSERT_NE(gate_report, nullptr);

  EXPECT_FALSE(verifier.verify(*data_report, factory_for(*m)).verified);
  EXPECT_TRUE(verifier.verify(*gate_report, factory_for(*m)).verified);
}

TEST(RaceVerifierTest, LivelockResolvedByReleasingBreakpoint) {
  // The writer must pass its racy store before it can open the gate the
  // reader busy-waits on; parking the writer livelocks the reader. §5.2:
  // temporarily release one triggered breakpoint.
  auto m = parse_ok(R"(module ll
global @x
global @gate
func @writer() {
entry:
  store 1, @x
  store 1, @gate
  ret
}
func @reader() {
entry:
  jmp wait
wait:
  %g = load @gate
  %c = icmp eq %g, 0
  br %c, spin, go
spin:
  io_delay 2
  jmp wait
go:
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  auto reports = detect(*m);
  race::RaceReport* x_report = nullptr;
  for (race::RaceReport& r : reports) {
    if (r.object_name == "x") x_report = &r;
  }
  ASSERT_NE(x_report, nullptr);
  const RaceVerifier verifier;
  // The verifier must terminate (no infinite livelock) — and it cannot
  // catch the pair in the racing moment, because releasing the writer to
  // unblock the reader lets the store escape.
  const RaceVerifyResult result = verifier.verify(*x_report, factory_for(*m));
  EXPECT_GE(result.attempts, 1u);
}

TEST(RaceVerifierTest, LivelockReleaseFiresAndStillConfirmsRace) {
  // The writer's racy store sits inside @mu's critical section; the
  // reader's racy load sits just after its own lock/unlock of @mu. Parking
  // the writer at the store leaves it holding @mu, so the reader blocks on
  // its lock and the session livelocks (kAllSuspended). The §5.2 release
  // rule must fire — and because the writer loops, it comes back to the
  // store on the next iteration while the freed reader reaches its load:
  // the race is still confirmed, through the release.
  auto m = parse_ok(R"(module lr
global @x
global @mu
func @writer() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  lock @mu
  store %i, @x
  unlock @mu
  io_delay 6
  %n = add %i, 1
  %c = icmp slt %n, 40
  br %c, loop, out
out:
  ret
}
func @reader() {
entry:
  io_delay 50
  lock @mu
  unlock @mu
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  auto reports = detect(*m);
  race::RaceReport* x_report = nullptr;
  for (race::RaceReport& r : reports) {
    if (r.object_name == "x") x_report = &r;
  }
  ASSERT_NE(x_report, nullptr);

  const RaceVerifier verifier;
  const RaceVerifyResult result = verifier.verify(*x_report, factory_for(*m));
  EXPECT_TRUE(result.verified);
  EXPECT_GE(result.livelock_releases, 1u);
  EXPECT_FALSE(result.livelocked);
  EXPECT_TRUE(x_report->verified);
}

TEST(RaceVerifierTest, ReportsWithoutInstructionsRejected) {
  auto m = parse_ok(kSteadyRace);
  race::RaceReport empty;
  const RaceVerifier verifier;
  EXPECT_FALSE(verifier.verify(empty, factory_for(*m)).verified);
}

// ---- dynamic vulnerability verifier ----

const char* kGuardedAttack = R"(module ga
global @flag
func @victim() {
entry:
  %v = load @flag
  %c = icmp ne %v, 0
  br %c, bad, out
bad:
  setuid 0
  ret
out:
  ret
}
func @setter() {
entry:
  io_delay 3
  store 1, @flag
  ret
}
func @main() {
entry:
  %a = thread_create @setter, 0
  %b = thread_create @victim, 0
  thread_join %a
  thread_join %b
  ret
}
)";

vuln::ExploitReport analyze_one(const ir::Module& m) {
  const ir::Function* victim = m.find_function("victim");
  const ir::Instruction* read = victim->entry()->front();
  const vuln::VulnerabilityAnalyzer analyzer(m);
  const vuln::VulnAnalysis analysis =
      analyzer.analyze_from(read, {{victim, read}});
  EXPECT_FALSE(analysis.exploits.empty());
  return analysis.exploits.front();
}

TEST(VulnVerifierTest, ReachesSiteAndObservesAttack) {
  auto m = parse_ok(kGuardedAttack);
  const vuln::ExploitReport exploit = analyze_one(*m);
  ASSERT_EQ(exploit.site->opcode(), ir::Opcode::kSetUid);

  // Provide the originating race so the verifier can steer the racing
  // order (store flag=1 before the victim's load) — the §6.2 "decide the
  // execution order of the racing instructions".
  const ir::Function* victim = m->find_function("victim");
  const ir::Function* setter = m->find_function("setter");
  race::RaceReport race;
  race.first.instr = victim->entry()->front();  // load @flag
  race.first.is_write = false;
  race.first.tid = 2;
  race.second.instr = setter->entry()->instructions()[1].get();  // store
  race.second.is_write = true;
  race.second.tid = 1;

  const VulnVerifier verifier;
  const VulnVerifyResult result =
      verifier.verify(exploit, factory_for(*m), &race);
  EXPECT_TRUE(result.site_reached);
  EXPECT_TRUE(result.attack_realized);
  bool saw_escalation = false;
  for (const interp::SecurityEvent& event : result.events) {
    saw_escalation |=
        event.kind == interp::SecurityEventKind::kPrivilegeEscalation;
  }
  EXPECT_TRUE(saw_escalation);
}

TEST(VulnVerifierTest, UnreachableSiteReportsDivergedBranches) {
  // Same shape but the flag is never set: the site cannot be reached and
  // the diverged branch comes back as a further input hint (§6.2).
  auto m = parse_ok(R"(module ur
global @flag
func @victim() {
entry:
  %v = load @flag
  %c = icmp ne %v, 0
  br %c, bad, out
bad:
  setuid 0
  ret
out:
  ret
}
func @main() {
entry:
  %b = thread_create @victim, 0
  thread_join %b
  ret
}
)");
  const vuln::ExploitReport exploit = analyze_one(*m);
  const VulnVerifier verifier;
  const VulnVerifyResult result = verifier.verify(exploit, factory_for(*m));
  EXPECT_FALSE(result.site_reached);
  EXPECT_FALSE(result.attack_realized);
  ASSERT_EQ(result.diverged_branches.size(), 1u);
  EXPECT_EQ(result.diverged_branches.front()->opcode(), ir::Opcode::kBr);
}

TEST(VulnVerifierTest, NullExploitRejected) {
  auto m = parse_ok(kGuardedAttack);
  const VulnVerifier verifier;
  vuln::ExploitReport empty;
  const VulnVerifyResult result = verifier.verify(empty, factory_for(*m));
  EXPECT_FALSE(result.site_reached);
  EXPECT_EQ(result.attempts, 0u);
}

TEST(VulnVerifierTest, KeepsAttemptingUntilConsequenceObserved) {
  // The site is reached on every run, but the security consequence only
  // manifests under schedules where the setter wins the race; the verifier
  // must not settle for the first site-reaching run.
  auto m = parse_ok(kGuardedAttack);
  const vuln::ExploitReport exploit = analyze_one(*m);
  VulnVerifier::Options options;
  options.max_attempts = 16;
  options.base_seed = 77;
  const VulnVerifier verifier(options);
  const VulnVerifyResult result = verifier.verify(exploit, factory_for(*m));
  EXPECT_TRUE(result.site_reached);
  EXPECT_TRUE(result.attack_realized);
}

}  // namespace
}  // namespace owl::verify
