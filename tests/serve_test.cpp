// Unit tests for the serve substrate: SHA-256 (FIPS vectors), the strict
// JSON parser, the wire protocol (parse/serialize round-trips, canonical
// option blobs), the content-addressed result cache (atomicity, integrity
// verify/evict), the crash-recovery journal (torn and corrupt lines), and
// the admission queue's shed policy.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "serve/journal.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/request_queue.hpp"
#include "serve/result_cache.hpp"
#include "support/sha256.hpp"

namespace owl::serve {
namespace {

/// Self-cleaning scratch directory for cache/journal tests.
class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/owl_serve_test_XXXXXX";
    path_ = mkdtemp(pattern);
  }
  ~TempDir() {
    if (!path_.empty()) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

// ---- SHA-256 ----

TEST(Sha256Test, FipsVectors) {
  EXPECT_EQ(
      support::sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      support::sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      support::sha256_hex(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  support::Sha256 hash;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hash.update(chunk);
  EXPECT_EQ(
      hash.hex_digest(),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    support::Sha256 hash;
    hash.update(std::string_view(text).substr(0, cut));
    hash.update(std::string_view(text).substr(cut));
    EXPECT_EQ(hash.hex_digest(), support::sha256_hex(text)) << "cut=" << cut;
  }
}

// ---- JSON parser ----

TEST(JsonTest, ParsesScalarsAndNesting) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(
      R"({"a":1,"b":-2.5,"c":"x\n\"y\"","d":[true,false,null],"e":{}})",
      value, error))
      << error;
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(value.find("b")->as_double(), -2.5);
  EXPECT_EQ(value.find("c")->as_string(), "x\n\"y\"");
  ASSERT_TRUE(value.find("d")->is_array());
  EXPECT_EQ(value.find("d")->as_array().size(), 3u);
  EXPECT_TRUE(value.find("e")->is_object());
  EXPECT_EQ(value.find("missing"), nullptr);
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(R"("\u0041\u00e9\ud83d\ude00")", value, error))
      << error;
  EXPECT_EQ(value.as_string(), "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::parse("", value, error));
  EXPECT_FALSE(JsonValue::parse("{", value, error));
  EXPECT_FALSE(JsonValue::parse("{}x", value, error));  // trailing garbage
  EXPECT_FALSE(JsonValue::parse("{'a':1}", value, error));
  EXPECT_FALSE(JsonValue::parse("[1,]", value, error));
  EXPECT_FALSE(JsonValue::parse("\"\\q\"", value, error));
  EXPECT_FALSE(JsonValue::parse("01", value, error));
}

TEST(JsonTest, RejectsRunawayNesting) {
  JsonValue value;
  std::string error;
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::parse(deep, value, error));
}

// ---- protocol ----

TEST(ProtocolTest, ParsesMinimalAnalyzeRequest) {
  Request request;
  const Status status =
      parse_request(R"({"module_path":"a.mir"})", request);
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(request.op, Request::Op::kAnalyze);
  EXPECT_EQ(request.module_path, "a.mir");
  EXPECT_EQ(request.display_name(), "a.mir");
  // Defaults mirror owl_cli.
  EXPECT_EQ(request.options.entry, "main");
  EXPECT_EQ(request.options.schedules, 4u);
  EXPECT_EQ(request.options.seed, 1u);
  EXPECT_EQ(request.options.retries, 2u);
}

TEST(ProtocolTest, ParsesOptionsAndOps) {
  Request request;
  ASSERT_TRUE(parse_request(
                  R"({"op":"analyze","id":"r9","client":"ci",)"
                  R"("module_text":"module m\n","name":"m",)"
                  R"("options":{"detector":"ski","detector_impl":"reference",)"
                  R"("schedules":7,"seed":42,"jobs":4,"quiet":true,)"
                  R"("inputs":[1,-2,3]}})",
                  request)
                  .is_ok());
  EXPECT_EQ(request.id, "r9");
  EXPECT_EQ(request.display_name(), "m");
  EXPECT_EQ(request.options.detector, core::DetectorKind::kSki);
  EXPECT_EQ(request.options.detector_impl, race::DetectorImpl::kReference);
  EXPECT_EQ(request.options.schedules, 7u);
  EXPECT_EQ(request.options.seed, 42u);
  EXPECT_EQ(request.options.jobs, 4u);
  EXPECT_TRUE(request.options.quiet);
  EXPECT_EQ(request.options.inputs, (std::vector<std::int64_t>{1, -2, 3}));

  ASSERT_TRUE(parse_request(R"({"op":"ping"})", request).is_ok());
  EXPECT_EQ(request.op, Request::Op::kPing);
  ASSERT_TRUE(parse_request(R"({"op":"stats"})", request).is_ok());
  EXPECT_EQ(request.op, Request::Op::kStats);
  ASSERT_TRUE(parse_request(R"({"op":"shutdown"})", request).is_ok());
  EXPECT_EQ(request.op, Request::Op::kShutdown);
}

TEST(ProtocolTest, StrictnessRejectsWrongShapes) {
  Request request;
  // Unknown request field.
  EXPECT_FALSE(parse_request(R"({"module_path":"a","surprise":1})", request)
                   .is_ok());
  // Unknown option: would silently answer for the wrong owl_cli run.
  EXPECT_FALSE(
      parse_request(R"({"module_path":"a","options":{"shedules":4}})",
                    request)
          .is_ok());
  // Exactly one of module_path/module_text.
  EXPECT_FALSE(parse_request(R"({"op":"analyze"})", request).is_ok());
  EXPECT_FALSE(
      parse_request(R"({"module_path":"a","module_text":"b"})", request)
          .is_ok());
  // Type errors.
  EXPECT_FALSE(parse_request(R"({"module_path":42})", request).is_ok());
  EXPECT_FALSE(
      parse_request(R"({"module_path":"a","options":{"jobs":"four"}})",
                    request)
          .is_ok());
  EXPECT_FALSE(parse_request("not json", request).is_ok());
}

TEST(ProtocolTest, SerializeRoundTripsToTheSameCacheKey) {
  Request request;
  ASSERT_TRUE(parse_request(
                  R"({"id":"x","client":"ci","module_text":"module m\n",)"
                  R"("options":{"detector":"atomicity","seed":9,)"
                  R"("inputs":[3,1],"stage_deadline":1.5,"adhoc":false}})",
                  request)
                  .is_ok());
  const std::string line = serialize_request(request);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  Request replayed;
  ASSERT_TRUE(parse_request(line, replayed).is_ok());
  EXPECT_EQ(replayed.module_text, request.module_text);
  EXPECT_EQ(replayed.display_name(), request.display_name());
  EXPECT_EQ(
      replayed.options.canonical_blob(replayed.display_name()),
      request.options.canonical_blob(request.display_name()));
}

TEST(ProtocolTest, CanonicalBlobSeparatesDistinctRequests) {
  AnalysisOptions base;
  const std::string blob = base.canonical_blob("m");
  AnalysisOptions changed = base;
  changed.seed = 2;
  EXPECT_NE(changed.canonical_blob("m"), blob);
  changed = base;
  changed.quiet = true;
  EXPECT_NE(changed.canonical_blob("m"), blob);
  changed = base;
  changed.jobs = 4;  // deliberately part of the key (see protocol.cpp)
  EXPECT_NE(changed.canonical_blob("m"), blob);
  EXPECT_NE(base.canonical_blob("other"), blob);
  EXPECT_EQ(base.canonical_blob("m"), blob);
}

TEST(ProtocolTest, CanonicalBlobSeparatesCheckerAndSarifOptions) {
  AnalysisOptions base;
  const std::string blob = base.canonical_blob("m");
  std::string error;

  // Same module + detection options, different checker selections: every
  // selection gets its own cache key (a hit would answer with output
  // missing — or carrying — the checker sections of the wrong run).
  AnalysisOptions all = base;
  ASSERT_TRUE(checkers::CheckerOptions::parse("all", all.checkers, error));
  EXPECT_NE(all.canonical_blob("m"), blob);

  AnalysisOptions subset = base;
  ASSERT_TRUE(
      checkers::CheckerOptions::parse("deadlock", subset.checkers, error));
  EXPECT_NE(subset.canonical_blob("m"), blob);
  EXPECT_NE(subset.canonical_blob("m"), all.canonical_blob("m"));

  // SARIF presence changes the response bytes, so it must change the key.
  AnalysisOptions sarif = base;
  sarif.sarif = true;
  EXPECT_NE(sarif.canonical_blob("m"), blob);

  // Client comma order is canonicalized away: the same selection spelled
  // two ways hashes to one key.
  AnalysisOptions spelled_a = base;
  AnalysisOptions spelled_b = base;
  ASSERT_TRUE(checkers::CheckerOptions::parse("condvar,deadlock",
                                              spelled_a.checkers, error));
  ASSERT_TRUE(checkers::CheckerOptions::parse("deadlock,condvar",
                                              spelled_b.checkers, error));
  EXPECT_EQ(spelled_a.canonical_blob("m"), spelled_b.canonical_blob("m"));

  // And the checker fields round-trip through the journal A-record form.
  Request request;
  request.module_text = "module m\n";
  request.options = all;
  request.options.sarif = true;
  Request replayed;
  ASSERT_TRUE(parse_request(serialize_request(request), replayed).is_ok());
  EXPECT_EQ(replayed.options.canonical_blob(replayed.display_name()),
            request.options.canonical_blob(request.display_name()));
}

TEST(ProtocolTest, ResponsesAreSingleJsonLines) {
  for (const std::string& line :
       {ok_response("r1", "hit", 0, false, "sha", "out\nput", ""),
        rejected_response("r2", "queue_full", 100),
        error_response("r3", "bad \"quote\""), ping_response()}) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    JsonValue value;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(
        std::string_view(line).substr(0, line.size() - 1), value, error))
        << line;
  }
  JsonValue value;
  std::string error;
  const std::string ok =
      ok_response("r", "miss", 3, true, "abc", "output", "audit\n");
  ASSERT_TRUE(JsonValue::parse(
      std::string_view(ok).substr(0, ok.size() - 1), value, error));
  EXPECT_EQ(value.find("exit")->as_int(), 3);
  EXPECT_TRUE(value.find("degraded")->as_bool());
  EXPECT_EQ(value.find("output")->as_string(), "output");
  EXPECT_EQ(value.find("error")->as_string(), "audit\n");
}

// ---- result cache ----

TEST(ResultCacheTest, DisabledCacheMissesAndDropsStores) {
  ResultCache cache("");
  EXPECT_FALSE(cache.enabled());
  CacheEntry entry;
  entry.output = "x";
  EXPECT_FALSE(cache.store("k", entry));
  EXPECT_FALSE(cache.load("k", entry));
}

TEST(ResultCacheTest, StoreLoadRoundTrip) {
  TempDir dir;
  ResultCache cache(dir.path());
  const std::string key = ResultCache::key_for("module m\n", "options");
  EXPECT_EQ(key.size(), 64u);

  CacheEntry entry;
  entry.exit_code = 3;
  entry.degraded = true;
  entry.manifest = "{\"m\":1}\n";
  entry.output = "line1\nline2\n";
  ASSERT_TRUE(cache.store(key, entry));
  EXPECT_FALSE(entry.content_sha.empty());

  CacheEntry loaded;
  ASSERT_TRUE(cache.load(key, loaded));
  EXPECT_EQ(loaded.exit_code, 3);
  EXPECT_TRUE(loaded.degraded);
  EXPECT_EQ(loaded.manifest, entry.manifest);
  EXPECT_EQ(loaded.output, entry.output);
  EXPECT_EQ(loaded.content_sha, entry.content_sha);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.stores(), 1u);
}

TEST(ResultCacheTest, KeySeparatesModuleAndOptions) {
  const std::string key = ResultCache::key_for("mod", "opt");
  EXPECT_NE(ResultCache::key_for("mod2", "opt"), key);
  EXPECT_NE(ResultCache::key_for("mod", "opt2"), key);
  EXPECT_EQ(ResultCache::key_for("mod", "opt"), key);
}

TEST(ResultCacheTest, CorruptEntryIsEvictedNeverServed) {
  TempDir dir;
  ResultCache cache(dir.path());
  const std::string key = ResultCache::key_for("m", "o");
  CacheEntry entry;
  entry.output = "the cached analysis output";
  entry.manifest = "{}\n";
  ASSERT_TRUE(cache.store(key, entry));

  // Bit-flip one payload byte on disk.
  const std::string path = cache.entry_path(key);
  std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() - 3] ^= 0x01;
  write_file(path, bytes);

  CacheEntry loaded;
  EXPECT_FALSE(cache.load(key, loaded));  // detected, not served
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(read_file(path).empty());  // evicted from disk

  // A recompute-and-store heals the entry.
  ASSERT_TRUE(cache.store(key, entry));
  EXPECT_TRUE(cache.load(key, loaded));
  EXPECT_EQ(loaded.output, entry.output);
}

TEST(ResultCacheTest, TruncatedEntryIsAMiss) {
  TempDir dir;
  ResultCache cache(dir.path());
  const std::string key = ResultCache::key_for("m", "o");
  CacheEntry entry;
  entry.output = std::string(1000, 'x');
  ASSERT_TRUE(cache.store(key, entry));
  const std::string path = cache.entry_path(key);
  write_file(path, read_file(path).substr(0, 100));
  CacheEntry loaded;
  EXPECT_FALSE(cache.load(key, loaded));
}

TEST(ResultCacheTest, SweepsStaleTempFilesOnOpen) {
  TempDir dir;
  write_file(dir.path() + "/killed-writer.tmp", "torn");
  ResultCache cache(dir.path());
  EXPECT_TRUE(read_file(dir.path() + "/killed-writer.tmp").empty());
}

TEST(ResultCacheTest, LruCapEvictsOldestOnStore) {
  TempDir dir;
  ResultCache cache(dir.path(), /*max_entries=*/2);
  const auto key = [](int i) {
    return ResultCache::key_for("m" + std::to_string(i), "o");
  };
  CacheEntry entry;
  entry.output = "payload";
  ASSERT_TRUE(cache.store(key(1), entry));
  ASSERT_TRUE(cache.store(key(2), entry));
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.tracked_entries(), 2u);

  // The third store pushes past the cap: key(1) is oldest, so it goes.
  ASSERT_TRUE(cache.store(key(3), entry));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.tracked_entries(), 2u);
  CacheEntry loaded;
  EXPECT_FALSE(cache.load(key(1), loaded));
  EXPECT_TRUE(read_file(cache.entry_path(key(1))).empty());
  EXPECT_TRUE(cache.load(key(2), loaded));
  EXPECT_TRUE(cache.load(key(3), loaded));

  // An evicted key simply recomputes and stores cleanly.
  ASSERT_TRUE(cache.store(key(1), entry));
  EXPECT_TRUE(cache.load(key(1), loaded));
  EXPECT_EQ(loaded.output, entry.output);
  EXPECT_EQ(cache.tracked_entries(), 2u);
}

TEST(ResultCacheTest, LruCapHitRefreshesRecency) {
  TempDir dir;
  ResultCache cache(dir.path(), /*max_entries=*/2);
  const std::string a = ResultCache::key_for("a", "o");
  const std::string b = ResultCache::key_for("b", "o");
  const std::string c = ResultCache::key_for("c", "o");
  CacheEntry entry;
  entry.output = "payload";
  ASSERT_TRUE(cache.store(a, entry));
  ASSERT_TRUE(cache.store(b, entry));

  // Touch `a`: now `b` is the LRU victim of the next store.
  CacheEntry loaded;
  ASSERT_TRUE(cache.load(a, loaded));
  ASSERT_TRUE(cache.store(c, entry));
  EXPECT_TRUE(cache.load(a, loaded));
  EXPECT_FALSE(cache.load(b, loaded));
  EXPECT_TRUE(cache.load(c, loaded));
}

TEST(ResultCacheTest, LruCapSeedsRecencyFromDirectoryOnRestart) {
  TempDir dir;
  const std::string a = ResultCache::key_for("a", "o");
  const std::string b = ResultCache::key_for("b", "o");
  CacheEntry entry;
  entry.output = "payload";
  {
    ResultCache cache(dir.path(), /*max_entries=*/4);
    ASSERT_TRUE(cache.store(a, entry));
    ASSERT_TRUE(cache.store(b, entry));
  }
  // A restarted cache adopts the surviving entries; a store within the cap
  // evicts nothing, one past it evicts the seeded survivors first.
  ResultCache cache(dir.path(), /*max_entries=*/2);
  EXPECT_EQ(cache.tracked_entries(), 2u);
  ASSERT_TRUE(cache.store(ResultCache::key_for("c", "o"), entry));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.tracked_entries(), 2u);
}

TEST(ResultCacheTest, LruCapTighterThanDirectoryPrunesOnOpen) {
  TempDir dir;
  CacheEntry entry;
  entry.output = "payload";
  {
    ResultCache cache(dir.path());  // unlimited
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(cache.store(
          ResultCache::key_for("m" + std::to_string(i), "o"), entry));
    }
  }
  ResultCache cache(dir.path(), /*max_entries=*/2);
  EXPECT_EQ(cache.tracked_entries(), 2u);
  EXPECT_EQ(cache.evictions(), 3u);
}

TEST(ResultCacheTest, UnlimitedCacheNeverEvictsForCapacity) {
  TempDir dir;
  ResultCache cache(dir.path());  // max_entries = 0
  CacheEntry entry;
  entry.output = "payload";
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cache.store(
        ResultCache::key_for("m" + std::to_string(i), "o"), entry));
  }
  EXPECT_EQ(cache.evictions(), 0u);
  CacheEntry loaded;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.load(ResultCache::key_for("m" + std::to_string(i), "o"),
                           loaded));
  }
}

// ---- journal ----

TEST(JournalTest, RecoversAcceptedWithoutCompleted) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path));
    ASSERT_TRUE(journal.accepted("k1", R"({"id":"a"})"));
    ASSERT_TRUE(journal.accepted("k2", R"({"id":"b"})"));
    ASSERT_TRUE(journal.completed("k1"));
  }
  Journal reopened;
  ASSERT_TRUE(reopened.open(path));
  const std::vector<JournalEntry> entries = reopened.recover();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "k2");
  EXPECT_EQ(entries[0].request_line, R"({"id":"b"})");
}

TEST(JournalTest, DisabledJournalIsANoOp) {
  Journal journal;
  ASSERT_TRUE(journal.open(""));
  EXPECT_FALSE(journal.enabled());
  EXPECT_TRUE(journal.accepted("k", "r"));
  EXPECT_TRUE(journal.recover().empty());
}

TEST(JournalTest, TornFinalLineIsIgnored) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path));
    ASSERT_TRUE(journal.accepted("k1", R"({"id":"a"})"));
  }
  // Simulate a kill -9 mid-write: append a record with no trailing '\n'.
  std::string bytes = read_file(path);
  write_file(path, bytes + "A\tk2\tdeadbeef\t{\"id\":\"torn");

  Journal journal;
  ASSERT_TRUE(journal.open(path));
  const std::vector<JournalEntry> entries = journal.recover();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "k1");
}

TEST(JournalTest, CorruptLineIsSkippedNotReplayed) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path));
    ASSERT_TRUE(journal.accepted("k1", R"({"id":"a"})"));
    ASSERT_TRUE(journal.accepted("k2", R"({"id":"b"})"));
  }
  // Bit-flip a byte inside the first record's payload: its line sha no
  // longer matches, so it must be skipped rather than replayed wrong.
  std::string bytes = read_file(path);
  const std::size_t at = bytes.find("\"a\"");
  ASSERT_NE(at, std::string::npos);
  bytes[at + 1] ^= 0x01;
  write_file(path, bytes);

  Journal journal;
  ASSERT_TRUE(journal.open(path));
  const std::vector<JournalEntry> entries = journal.recover();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "k2");
}

TEST(JournalTest, ResetTruncates) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  Journal journal;
  ASSERT_TRUE(journal.open(path));
  ASSERT_TRUE(journal.accepted("k1", "r"));
  ASSERT_TRUE(journal.reset());
  EXPECT_TRUE(journal.recover().empty());
  EXPECT_TRUE(read_file(path).empty());
  // Still usable after reset.
  ASSERT_TRUE(journal.accepted("k2", "r2"));
  EXPECT_EQ(journal.recover().size(), 1u);
}

// ---- admission queue ----

TEST(RequestQueueTest, ShedsAtCapacity) {
  RequestQueue<int> queue(/*capacity=*/2, /*max_inflight_per_client=*/2);
  EXPECT_EQ(queue.admit("a"), std::nullopt);
  EXPECT_EQ(queue.admit("b"), std::nullopt);
  EXPECT_EQ(queue.admit("c"), ShedReason::kQueueFull);
  queue.release("a");
  EXPECT_EQ(queue.admit("c"), std::nullopt);
}

TEST(RequestQueueTest, ShedsPerClientBeforeCapacity) {
  RequestQueue<int> queue(/*capacity=*/8, /*max_inflight_per_client=*/2);
  EXPECT_EQ(queue.admit("chatty"), std::nullopt);
  EXPECT_EQ(queue.admit("chatty"), std::nullopt);
  EXPECT_EQ(queue.admit("chatty"), ShedReason::kClientInflight);
  EXPECT_EQ(queue.admit("other"), std::nullopt);  // others unaffected
  queue.release("chatty");
  EXPECT_EQ(queue.admit("chatty"), std::nullopt);
}

TEST(RequestQueueTest, DrainingShedsNewWorkKeepsOld) {
  RequestQueue<int> queue(4, 4);
  EXPECT_EQ(queue.admit("a"), std::nullopt);
  queue.push(1);
  queue.begin_drain();
  EXPECT_EQ(queue.admit("b"), ShedReason::kShuttingDown);
  // Admitted work still flows.
  EXPECT_EQ(queue.pop(), 1);
  queue.release("a");
  queue.stop();
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(RequestQueueTest, StopDrainsQueuedWorkFirst) {
  RequestQueue<int> queue(4, 4);
  ASSERT_EQ(queue.admit("a"), std::nullopt);
  ASSERT_EQ(queue.admit("a"), std::nullopt);
  queue.push(1);
  queue.push(2);
  queue.stop();
  EXPECT_EQ(queue.pop(), 1);  // never discards admitted work
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(RequestQueueTest, WaitIdleBlocksUntilReleased) {
  RequestQueue<int> queue(4, 4);
  ASSERT_EQ(queue.admit("a"), std::nullopt);
  std::thread releaser([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.release("a");
  });
  queue.wait_idle();  // returns only after the release
  EXPECT_EQ(queue.held(), 0u);
  releaser.join();
}

}  // namespace
}  // namespace owl::serve
