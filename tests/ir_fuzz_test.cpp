// Generator-based fuzz properties over the IR toolchain: every randomly
// generated well-formed module must verify, round-trip through the printer
// and parser to a fixpoint, and execute deterministically under a fixed
// schedule. This exercises corners hand-written tests won't (operand
// shapes, block structures, name collisions at scale).
#include <gtest/gtest.h>

#include "interp/machine.hpp"
#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/rng.hpp"

namespace owl::ir {
namespace {

/// Structured random-program generator. Emits spine-dominated code so SSA
/// dominance holds by construction: values defined in the current spine
/// block or earlier are always usable; diamond arms only consume spine
/// values and export one merge phi; loops carry a single counter phi.
class ModuleGenerator {
 public:
  explicit ModuleGenerator(std::uint64_t seed) : rng_(seed) {}

  std::unique_ptr<Module> generate() {
    auto module = std::make_unique<Module>("fuzz");
    IRBuilder b(module.get());

    const unsigned num_globals = 1 + static_cast<unsigned>(rng_.next_below(4));
    std::vector<GlobalVariable*> globals;
    for (unsigned i = 0; i < num_globals; ++i) {
      globals.push_back(module->add_global(
          "g" + std::to_string(i),
          1 + rng_.next_below(4),
          static_cast<std::int64_t>(rng_.next_below(100))));
    }

    const unsigned num_funcs = 1 + static_cast<unsigned>(rng_.next_below(3));
    std::vector<Function*> funcs;
    for (unsigned i = 0; i < num_funcs; ++i) {
      funcs.push_back(generate_function(*module, b, globals,
                                        "f" + std::to_string(i), funcs));
    }

    // @main calls every generated function (some in spawned threads).
    Function* main_fn = module->add_function("main", Type::void_type());
    b.set_insert_point(main_fn->add_block("entry"));
    std::vector<Instruction*> tids;
    for (Function* f : funcs) {
      if (f->arguments().empty() && rng_.chance(1, 2)) {
        tids.push_back(b.thread_create(f, b.i64(0)));
      } else {
        std::vector<Value*> args;
        for (std::size_t a = 0; a < f->arguments().size(); ++a) {
          args.push_back(b.i64(static_cast<std::int64_t>(rng_.next_below(50))));
        }
        b.call(f, args);
      }
    }
    for (Instruction* tid : tids) b.thread_join(tid);
    b.ret();
    return module;
  }

 private:
  Function* generate_function(Module& module, IRBuilder& b,
                              const std::vector<GlobalVariable*>& globals,
                              const std::string& name,
                              const std::vector<Function*>& callable) {
    const bool takes_arg = rng_.chance(1, 2);
    const bool returns_value = rng_.chance(1, 2);
    Function* f = module.add_function(
        name, returns_value ? Type::i64() : Type::void_type());
    if (takes_arg) f->add_argument(Type::i64(), "a");

    BasicBlock* spine = f->add_block("entry");
    b.set_insert_point(spine);
    std::vector<Value*> values{b.i64(1), b.i64(7)};
    if (takes_arg) values.push_back(f->argument(0));

    const unsigned segments = 1 + static_cast<unsigned>(rng_.next_below(4));
    for (unsigned seg = 0; seg < segments; ++seg) {
      switch (rng_.next_below(3)) {
        case 0:
          emit_straight_line(b, globals, values, callable);
          break;
        case 1:
          spine = emit_diamond(f, b, globals, values, seg);
          break;
        default:
          spine = emit_counted_loop(f, b, values, seg);
          break;
      }
    }

    if (returns_value) {
      b.ret(pick(values));
    } else {
      b.ret();
    }
    return f;
  }

  void emit_straight_line(IRBuilder& b,
                          const std::vector<GlobalVariable*>& globals,
                          std::vector<Value*>& values,
                          const std::vector<Function*>& callable) {
    const unsigned count = 1 + static_cast<unsigned>(rng_.next_below(6));
    for (unsigned i = 0; i < count; ++i) {
      switch (rng_.next_below(8)) {
        case 0:
          values.push_back(b.add(pick(values), pick(values)));
          break;
        case 1:
          values.push_back(b.xor_(pick(values), pick(values)));
          break;
        case 2:
          values.push_back(
              b.icmp(CmpPredicate::kSLt, pick(values), pick(values)));
          break;
        case 3:
          values.push_back(b.load(pick_global(globals)));
          break;
        case 4:
          b.store(pick(values), pick_global(globals));
          break;
        case 5: {
          Instruction* base = b.gep(pick_global(globals), b.i64(0));
          values.push_back(base);
          break;
        }
        case 6:
          b.print(pick(values));
          break;
        default:
          if (!callable.empty()) {
            Function* callee = callable[rng_.next_below(callable.size())];
            std::vector<Value*> args;
            for (std::size_t a = 0; a < callee->arguments().size(); ++a) {
              args.push_back(pick(values));
            }
            Instruction* call = b.call(callee, args);
            if (!call->type().is_void()) values.push_back(call);
          } else {
            b.yield();
          }
          break;
      }
    }
  }

  BasicBlock* emit_diamond(Function* f, IRBuilder& b,
                           const std::vector<GlobalVariable*>& globals,
                           std::vector<Value*>& values, unsigned seg) {
    const std::string tag = "d" + std::to_string(seg);
    BasicBlock* then_bb = f->add_block(tag + "_then");
    BasicBlock* else_bb = f->add_block(tag + "_else");
    BasicBlock* join = f->add_block(tag + "_join");

    Instruction* cond =
        b.icmp(CmpPredicate::kNe, pick(values), pick(values));
    b.br(cond, then_bb, else_bb);

    b.set_insert_point(then_bb);
    Instruction* then_v = b.add(pick(values), b.i64(3));
    b.store(then_v, pick_global(globals));
    b.jmp(join);

    b.set_insert_point(else_bb);
    Instruction* else_v = b.sub(pick(values), b.i64(2));
    b.jmp(join);

    b.set_insert_point(join);
    Instruction* merged = b.phi(Type::i64(), tag + "_m");
    merged->add_phi_incoming(then_v, then_bb);
    merged->add_phi_incoming(else_v, else_bb);
    values.push_back(merged);
    return join;
  }

  BasicBlock* emit_counted_loop(Function* f, IRBuilder& b,
                                std::vector<Value*>& values, unsigned seg) {
    const std::string tag = "l" + std::to_string(seg);
    BasicBlock* pre = b.insert_point();
    BasicBlock* header = f->add_block(tag + "_head");
    BasicBlock* body = f->add_block(tag + "_body");
    BasicBlock* exit = f->add_block(tag + "_exit");
    b.jmp(header);

    b.set_insert_point(header);
    Instruction* i = b.phi(Type::i64(), tag + "_i");
    Instruction* bound = b.icmp(
        CmpPredicate::kSLt, i,
        b.i64(static_cast<std::int64_t>(1 + rng_.next_below(6))));
    b.br(bound, body, exit);

    b.set_insert_point(body);
    Instruction* acc = b.add(i, pick(values));
    b.print(acc);
    Instruction* next = b.add(i, b.i64(1));
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), pre);
    i->add_phi_incoming(next, body);

    b.set_insert_point(exit);
    values.push_back(i);
    return exit;
  }

  Value* pick(const std::vector<Value*>& values) {
    return values[rng_.next_below(values.size())];
  }
  GlobalVariable* pick_global(const std::vector<GlobalVariable*>& globals) {
    return globals[rng_.next_below(globals.size())];
  }

  Rng rng_;
};

class IrFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrFuzz, GeneratedModuleVerifies) {
  ModuleGenerator gen(GetParam());
  auto m = gen.generate();
  const Status status = verify_module(*m);
  EXPECT_TRUE(status.is_ok()) << status.to_string() << "\n"
                              << print_module(*m);
}

TEST_P(IrFuzz, PrintParseFixpoint) {
  ModuleGenerator gen(GetParam());
  auto m1 = gen.generate();
  const std::string text1 = print_module(*m1);
  auto parsed = parse_module(text1);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string() << "\n" << text1;
  auto m2 = std::move(parsed).value();
  EXPECT_TRUE(verify_module(*m2).is_ok());
  EXPECT_EQ(m1->instruction_count(), m2->instruction_count());
  EXPECT_EQ(print_module(*m2), text1);
}

TEST_P(IrFuzz, ExecutesDeterministically) {
  ModuleGenerator gen(GetParam());
  auto m = gen.generate();
  const auto run_once = [&] {
    interp::MachineOptions options;
    options.max_steps = 50'000;
    interp::Machine machine(*m, options);
    machine.start(m->find_function("main"));
    interp::RandomScheduler sched(GetParam() * 31 + 1);
    const interp::RunResult result = machine.run(sched);
    return std::make_pair(result.steps, machine.prints());
  };
  const auto first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_GT(first.first, 0u);
}

TEST_P(IrFuzz, ParsedCopyExecutesLikeTheOriginal) {
  ModuleGenerator gen(GetParam());
  auto original = gen.generate();
  auto copy = parse_module(print_module(*original)).value_or_die();

  const auto run_module = [&](const Module& m) {
    interp::MachineOptions options;
    options.max_steps = 50'000;
    interp::Machine machine(m, options);
    machine.start(m.find_function("main"));
    interp::RoundRobinScheduler sched;
    machine.run(sched);
    return machine.prints();
  };
  EXPECT_EQ(run_module(*original), run_module(*copy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace owl::ir
