// Unit tests for the fast substrate's paged shadow memory: page-boundary
// addressing, first-touch allocation, overflow pages for wild addresses,
// deterministic iteration order, and slot reuse after reset.
#include <gtest/gtest.h>

#include <vector>

#include "race/shadow_memory.hpp"

namespace owl::race {
namespace {

ShadowCell cell(ThreadId tid, std::uint64_t epoch) {
  ShadowCell c;
  c.tid = tid;
  c.epoch = epoch;
  return c;
}

TEST(PagedShadowTest, FirstAndLastSlotOfAPageAreDistinct) {
  PagedShadow shadow;
  const interp::Address first = 0;
  const interp::Address last = PagedShadow::kPageSlots - 1;
  shadow.slot(first).set_write(cell(1, 10));
  shadow.slot(last).set_write(cell(2, 20));
  EXPECT_EQ(shadow.page_count(), 1u);
  EXPECT_EQ(shadow.slot(first).write.tid, 1u);
  EXPECT_EQ(shadow.slot(last).write.tid, 2u);
  EXPECT_EQ(shadow.slot(first).write.epoch, 10u);
  EXPECT_EQ(shadow.slot(last).write.epoch, 20u);
}

TEST(PagedShadowTest, AdjacentAddressesAcrossAPageBoundary) {
  PagedShadow shadow;
  const interp::Address last_of_page0 = PagedShadow::kPageSlots - 1;
  const interp::Address first_of_page1 = PagedShadow::kPageSlots;
  shadow.slot(last_of_page0).set_write(cell(1, 1));
  EXPECT_EQ(shadow.page_count(), 1u);
  shadow.slot(first_of_page1).set_write(cell(2, 2));
  EXPECT_EQ(shadow.page_count(), 2u);
  // Neighbours one byte apart live on different pages and never alias.
  EXPECT_EQ(shadow.slot(last_of_page0).write.tid, 1u);
  EXPECT_EQ(shadow.slot(first_of_page1).write.tid, 2u);
  EXPECT_FALSE(shadow.slot(last_of_page0 - 1).has_write);
  EXPECT_FALSE(shadow.slot(first_of_page1 + 1).has_write);
}

TEST(PagedShadowTest, PagesAllocateOnFirstTouchOnly) {
  PagedShadow shadow;
  EXPECT_EQ(shadow.page_count(), 0u);
  EXPECT_EQ(shadow.find_slot(4096), nullptr);
  shadow.slot(4096);  // touch allocates, even without writing
  EXPECT_EQ(shadow.page_count(), 1u);
  EXPECT_NE(shadow.find_slot(4096), nullptr);
  shadow.slot(4097);
  EXPECT_EQ(shadow.page_count(), 1u);  // same page
}

TEST(PagedShadowTest, WildAddressesUseOverflowPages) {
  PagedShadow shadow;
  // A corrupted pointer far past the direct directory's coverage.
  const interp::Address wild =
      (PagedShadow::kDirectPages + 12345) * PagedShadow::kPageSlots + 7;
  shadow.slot(wild).set_write(cell(3, 33));
  EXPECT_EQ(shadow.page_count(), 1u);
  ASSERT_NE(shadow.find_slot(wild), nullptr);
  EXPECT_EQ(shadow.find_slot(wild)->write.tid, 3u);
  // The neighbouring byte is a distinct slot on the same overflow page.
  EXPECT_FALSE(shadow.slot(wild + 1).has_write);
  EXPECT_EQ(shadow.page_count(), 1u);
}

TEST(PagedShadowTest, IterationOrderIsAddressAscending) {
  PagedShadow shadow;
  const interp::Address wild = (PagedShadow::kDirectPages + 5)
                               << PagedShadow::kPageBits;
  const std::vector<interp::Address> touched = {
      wild, 5000, 4096, PagedShadow::kPageSlots * 3 + 17};
  for (const interp::Address addr : touched) {
    shadow.slot(addr).set_write(cell(1, addr));
  }
  std::vector<interp::Address> seen;
  shadow.for_each_active_slot(
      [&seen](interp::Address addr, const ShadowSlot&) {
        seen.push_back(addr);
      });
  // Direct pages ascending first, then overflow pages: fully sorted here.
  const std::vector<interp::Address> expected = {
      4096, 5000, PagedShadow::kPageSlots * 3 + 17, wild};
  EXPECT_EQ(seen, expected);
}

TEST(ShadowSlotTest, ReadsKeepInsertionOrderAndReplaceInPlace) {
  ShadowSlot slot;
  EXPECT_FALSE(slot.has_reads());
  slot.add_read(cell(1, 10));
  slot.add_read(cell(2, 20));
  slot.add_read(cell(3, 30));
  ASSERT_NE(slot.find_read(2), nullptr);
  slot.find_read(2)->epoch = 25;  // replace in place, order unchanged
  std::vector<ThreadId> order;
  std::vector<std::uint64_t> epochs;
  slot.for_each_read([&](const ShadowCell& c) {
    order.push_back(c.tid);
    epochs.push_back(c.epoch);
  });
  EXPECT_EQ(order, (std::vector<ThreadId>{1, 2, 3}));
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{10, 25, 30}));
  EXPECT_EQ(slot.find_read(4), nullptr);
}

TEST(ShadowSlotTest, SlotReusableAfterReset) {
  PagedShadow shadow;
  ShadowSlot& slot = shadow.slot(8192);
  slot.set_write(cell(1, 1));
  slot.add_read(cell(2, 2));
  slot.add_read(cell(3, 3));
  const std::size_t pages_before = shadow.page_count();

  slot.reset();
  EXPECT_FALSE(slot.has_write);
  EXPECT_FALSE(slot.has_reads());
  EXPECT_EQ(slot.find_read(2), nullptr);
  // Reset keeps the page allocated — reuse must not re-allocate.
  EXPECT_EQ(shadow.page_count(), pages_before);

  ShadowSlot& again = shadow.slot(8192);
  EXPECT_EQ(&again, &slot);
  again.set_write(cell(4, 44));
  again.add_read(cell(5, 55));
  EXPECT_TRUE(again.has_write);
  EXPECT_EQ(again.write.tid, 4u);
  ASSERT_NE(again.find_read(5), nullptr);
  EXPECT_EQ(again.find_read(5)->epoch, 55u);
}

TEST(ShadowSlotTest, ClearReadsKeepsWriteAndAllowsRepopulation) {
  ShadowSlot slot;
  slot.set_write(cell(1, 1));
  slot.add_read(cell(2, 2));
  slot.add_read(cell(3, 3));
  slot.clear_reads();
  EXPECT_TRUE(slot.has_write);
  EXPECT_FALSE(slot.has_reads());
  slot.add_read(cell(7, 70));
  std::vector<ThreadId> order;
  slot.for_each_read([&](const ShadowCell& c) { order.push_back(c.tid); });
  EXPECT_EQ(order, (std::vector<ThreadId>{7}));
}

}  // namespace
}  // namespace owl::race
