// Integration tests for the Fig. 3 pipeline on hand-built programs and
// ablated configurations.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace owl::core {
namespace {

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

PipelineTarget target_for(const std::shared_ptr<ir::Module>& m,
                          std::vector<interp::Word> inputs = {}) {
  PipelineTarget t;
  t.name = m->name();
  t.module = m.get();
  t.factory = [m, inputs] {
    interp::MachineOptions options;
    options.inputs = inputs;
    auto machine = std::make_unique<interp::Machine>(*m, options);
    machine->start(m->find_function("main"));
    return machine;
  };
  return t;
}

// A miniature program with all three report classes: an adhoc sync, a
// publication race, and a vulnerable race guarding a setuid.
const char* kMixed = R"(module mixed
global @flag
global @guarded
global @pubdata
global @pubgate
global @acl
func @adhoc_setter() {
entry:
  store 5, @guarded
  io_delay 3
  store 1, @flag
  ret
}
func @adhoc_waiter() {
entry:
  jmp loop
loop:
  %f = load @flag
  %c = icmp eq %f, 0
  br %c, spin, go
spin:
  io_delay 2
  jmp loop
go:
  %v = load @guarded
  ret
}
func @pub_writer() {
entry:
  store 7, @pubdata
  store 1, @pubgate
  ret
}
func @pub_reader() {
entry:
  io_delay 150
  %g = load @pubgate
  %c = icmp eq %g, 1
  br %c, go, out
go:
  %v = load @pubdata
  ret
out:
  ret
}
func @flusher() {
entry:
  store 0, @acl
  io_delay 8
  store 1, @acl
  ret
}
func @checker() {
entry:
  io_delay 4
  %a = load @acl
  %empty = icmp eq %a, 0
  br %empty, grant, normal
grant:
  setuid 0
  ret
normal:
  ret
}
func @main() {
entry:
  %t1 = thread_create @adhoc_setter, 0
  %t2 = thread_create @adhoc_waiter, 0
  %t3 = thread_create @pub_writer, 0
  %t4 = thread_create @pub_reader, 0
  %t5 = thread_create @flusher, 0
  %t6 = thread_create @checker, 0
  thread_join %t1
  thread_join %t2
  thread_join %t3
  thread_join %t4
  thread_join %t5
  thread_join %t6
  ret
}
)";

TEST(PipelineTest, FullPipelineOnMixedProgram) {
  auto m = parse_ok(kMixed);
  Pipeline pipeline;
  const PipelineResult result = pipeline.run(target_for(m));

  // All three classes were detected raw...
  EXPECT_GE(result.counts.raw_reports, 4u);
  // ...the adhoc pair was classified and pruned on the re-run...
  EXPECT_EQ(result.counts.adhoc_syncs, 1u);
  EXPECT_LT(result.counts.after_annotation, result.counts.raw_reports);
  // ...the publication race died at the race verifier...
  EXPECT_GE(result.counts.verifier_eliminated, 1u);
  // ...and the ACL race survived into vulnerability analysis.
  EXPECT_GE(result.counts.remaining, 1u);
  EXPECT_GE(result.counts.vulnerability_reports, 1u);

  // The attack (unauthorized setuid under the empty-ACL branch) is found
  // and realized by the dynamic vulnerability verifier.
  ASSERT_GE(result.attacks.size(), 1u);
  EXPECT_GE(result.confirmed_attacks(), 1u);
  bool setuid_attack = false;
  for (const ConcurrencyAttack& attack : result.attacks) {
    if (attack.exploit.site->opcode() == ir::Opcode::kSetUid &&
        attack.confirmed()) {
      setuid_attack = true;
      EXPECT_FALSE(attack.to_string().empty());
    }
  }
  EXPECT_TRUE(setuid_attack);

  // Stage snapshots are recorded.
  EXPECT_TRUE(result.store.has_stage(Stage::kRawDetection));
  EXPECT_TRUE(result.store.has_stage(Stage::kAfterAnnotation));
  EXPECT_TRUE(result.store.has_stage(Stage::kAfterRaceVerifier));
  EXPECT_EQ(result.store.stage(Stage::kAfterRaceVerifier).size(),
            result.counts.remaining);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(PipelineTest, AblationWithoutAnnotationKeepsAdhocReports) {
  auto m = parse_ok(kMixed);
  PipelineOptions options;
  options.enable_adhoc_annotation = false;
  Pipeline pipeline(options);
  const PipelineResult result = pipeline.run(target_for(m));
  EXPECT_EQ(result.counts.adhoc_syncs, 0u);
  EXPECT_EQ(result.counts.after_annotation, result.counts.raw_reports);
}

TEST(PipelineTest, AblationWithoutRaceVerifierKeepsEverything) {
  auto m = parse_ok(kMixed);
  PipelineOptions options;
  options.enable_race_verifier = false;
  Pipeline pipeline(options);
  const PipelineResult result = pipeline.run(target_for(m));
  EXPECT_EQ(result.counts.verifier_eliminated, 0u);
  EXPECT_EQ(result.counts.remaining, result.counts.after_annotation);
}

TEST(PipelineTest, AblationWithoutVulnVerifierYieldsNoAttacks) {
  auto m = parse_ok(kMixed);
  PipelineOptions options;
  options.enable_vuln_verifier = false;
  Pipeline pipeline(options);
  const PipelineResult result = pipeline.run(target_for(m));
  EXPECT_TRUE(result.attacks.empty());
  // The static hints are still produced.
  EXPECT_GE(result.counts.vulnerability_reports, 1u);
}

TEST(PipelineTest, RaceFreeProgramIsCompletelyQuiet) {
  auto m = parse_ok(R"(module quiet
global @mu
global @x
func @w() {
entry:
  lock @mu
  store 1, @x
  unlock @mu
  ret
}
func @main() {
entry:
  %a = thread_create @w, 0
  %b = thread_create @w, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  Pipeline pipeline;
  const PipelineResult result = pipeline.run(target_for(m));
  EXPECT_EQ(result.counts.raw_reports, 0u);
  EXPECT_EQ(result.counts.vulnerability_reports, 0u);
  EXPECT_TRUE(result.attacks.empty());
}

TEST(PipelineTest, SkiDetectorPathWorks) {
  auto m = parse_ok(R"(module kern
global @f_op [1] = 77
func @msync() {
entry:
  %f = load @f_op
  %ok = icmp ne %f, 0
  br %ok, use, out
use:
  io_delay 5
  %f2 = load @f_op
  %r = callptr %f2()
  ret
out:
  ret
}
func @munmap() {
entry:
  io_delay 3
  store null, @f_op
  ret
}
func @main() {
entry:
  %a = thread_create @msync, 0
  %b = thread_create @munmap, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  PipelineTarget t = target_for(m);
  t.detector = DetectorKind::kSki;
  t.detection_schedules = 6;
  PipelineOptions options;  // kernel: no dynamic verifiers (paper §8.3)
  options.enable_race_verifier = false;
  options.enable_vuln_verifier = false;
  Pipeline pipeline(options);
  const PipelineResult result = pipeline.run(t);
  EXPECT_GE(result.counts.raw_reports, 1u);
  bool callptr_site = false;
  for (const vuln::ExploitReport& e : result.exploits) {
    callptr_site |= e.site->opcode() == ir::Opcode::kCallPtr;
  }
  EXPECT_TRUE(callptr_site);
}

TEST(PipelineTest, DeterministicPerSeed) {
  auto m = parse_ok(kMixed);
  Pipeline pipeline;
  const PipelineResult a = pipeline.run(target_for(m));
  const PipelineResult b = pipeline.run(target_for(m));
  EXPECT_EQ(a.counts.raw_reports, b.counts.raw_reports);
  EXPECT_EQ(a.counts.adhoc_syncs, b.counts.adhoc_syncs);
  EXPECT_EQ(a.counts.after_annotation, b.counts.after_annotation);
  EXPECT_EQ(a.counts.verifier_eliminated, b.counts.verifier_eliminated);
  EXPECT_EQ(a.counts.remaining, b.counts.remaining);
  EXPECT_EQ(a.counts.vulnerability_reports, b.counts.vulnerability_reports);
  EXPECT_EQ(a.attacks.size(), b.attacks.size());
  // Different seeds may legally differ, but the attack must survive both.
  PipelineTarget other = target_for(m);
  other.seed = 99;
  const PipelineResult c = pipeline.run(other);
  EXPECT_GE(c.counts.vulnerability_reports, 1u);
}

TEST(ReportStoreTest, StagesIndependent) {
  ReportStore store;
  EXPECT_FALSE(store.has_stage(Stage::kRawDetection));
  store.set_stage(Stage::kRawDetection, {});
  EXPECT_TRUE(store.has_stage(Stage::kRawDetection));
  EXPECT_FALSE(store.has_stage(Stage::kAfterAnnotation));
  EXPECT_TRUE(store.stage(Stage::kRawDetection).empty());
  EXPECT_EQ(store.render_stage(Stage::kAfterAnnotation),
            "<stage not recorded>\n");
}

TEST(StageCountsTest, ReductionRatio) {
  StageCounts counts;
  EXPECT_DOUBLE_EQ(counts.reduction_ratio(), 0.0);
  counts.raw_reports = 100;
  counts.remaining = 6;
  EXPECT_DOUBLE_EQ(counts.reduction_ratio(), 0.94);
}

}  // namespace
}  // namespace owl::core
