// Unit tests for the happens-before race detector (TSan substrate) and the
// SKI-mode watch-list policy.
#include <gtest/gtest.h>

#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "race/ski_detector.hpp"
#include "race/tsan_detector.hpp"

namespace owl::race {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

std::vector<RaceReport> detect(const ir::Module& m,
                               const AnnotationSet* annotations = nullptr,
                               std::uint64_t seed = 1,
                               bool ski = false) {
  interp::MachineOptions options;
  interp::Machine machine(m, options);
  TsanDetector detector(annotations, ski);
  machine.add_observer(&detector);
  machine.start(m.find_function("main"));
  interp::RandomScheduler sched(seed);
  machine.run(sched);
  return detector.take_reports();
}

const char* kPlainRace = R"(module r
global @x
func @writer() {
entry:
  store 1, @x
  ret
}
func @reader() {
entry:
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)";

TEST(TsanTest, DetectsPlainReadWriteRace) {
  auto m = parse_ok(kPlainRace);
  const auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 1u);
  const RaceReport& r = reports.front();
  EXPECT_EQ(r.object_name, "x");
  ASSERT_NE(r.read_side(), nullptr);
  ASSERT_NE(r.write_side(), nullptr);
  EXPECT_EQ(r.read_side()->instr->opcode(), ir::Opcode::kLoad);
  EXPECT_EQ(r.write_side()->instr->opcode(), ir::Opcode::kStore);
  // Call stacks were captured for both sides.
  EXPECT_FALSE(r.first.stack.empty());
  EXPECT_FALSE(r.second.stack.empty());
}

TEST(TsanTest, LockProtectedAccessesDoNotRace) {
  auto m = parse_ok(R"(module l
global @mu
global @x
func @worker() {
entry:
  lock @mu
  %v = load @x
  %v2 = add %v, 1
  store %v2, @x
  unlock @mu
  ret
}
func @main() {
entry:
  %a = thread_create @worker, 0
  %b = thread_create @worker, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_TRUE(detect(*m, nullptr, seed).empty()) << "seed " << seed;
  }
}

TEST(TsanTest, JoinOrdersAccesses) {
  auto m = parse_ok(R"(module j
global @x
func @writer() {
entry:
  store 1, @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  thread_join %a
  %v = load @x
  ret
}
)");
  EXPECT_TRUE(detect(*m).empty());
}

TEST(TsanTest, ThreadCreateOrdersParentWrites) {
  auto m = parse_ok(R"(module c
global @x
func @reader() {
entry:
  %v = load @x
  ret
}
func @main() {
entry:
  store 9, @x
  %a = thread_create @reader, 0
  thread_join %a
  ret
}
)");
  EXPECT_TRUE(detect(*m).empty());
}

TEST(TsanTest, AtomicAccessesDoNotRace) {
  auto m = parse_ok(R"(module a
global @ctr
func @worker() {
entry:
  %old = atomic_add @ctr, 1
  ret
}
func @main() {
entry:
  %a = thread_create @worker, 0
  %b = thread_create @worker, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_TRUE(detect(*m, nullptr, seed).empty());
  }
}

TEST(TsanTest, HbAnnotationInstructionsOrderAccesses) {
  auto m = parse_ok(R"(module h
global @sync
global @x
func @producer() {
entry:
  store 1, @x
  hb_release @sync
  ret
}
func @consumer() {
entry:
  hb_acquire @sync
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @producer, 0
  thread_join %a
  %b = thread_create @consumer, 0
  thread_join %b
  ret
}
)");
  EXPECT_TRUE(detect(*m).empty());
}

TEST(TsanTest, SameThreadNeverRacesWithItself) {
  auto m = parse_ok(R"(module s
global @x
func @main() {
entry:
  store 1, @x
  %v = load @x
  store 2, @x
  ret
}
)");
  EXPECT_TRUE(detect(*m).empty());
}

TEST(TsanTest, OccurrencesAccumulateOverLoop) {
  auto m = parse_ok(R"(module o
global @x
func @writer() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  store %i, @x
  %n = add %i, 1
  %c = icmp slt %n, 10
  br %c, loop, out
out:
  ret
}
func @reader() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  %v = load @x
  %n = add %i, 1
  %c = icmp slt %n, 10
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  const auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 1u);  // one static pair...
  EXPECT_GT(reports.front().occurrences, 1u);  // ...many manifestations
}

TEST(TsanTest, WriteWriteRaceGetsSupplementalRead) {
  auto m = parse_ok(R"(module ww
global @x
func @writer() {
entry:
  store 1, @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @writer, 0
  thread_join %a
  thread_join %b
  %v = load @x
  print %v
  ret
}
)");
  // Need a schedule where both writes happen (any schedule does) and the
  // main thread's read follows.
  const auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 1u);
  const RaceReport& r = reports.front();
  EXPECT_TRUE(r.first.is_write && r.second.is_write);
  // §6.3: the first subsequent load was attached so Algorithm 1 has a
  // corrupted read to start from.
  ASSERT_TRUE(r.supplemental_read.has_value());
  EXPECT_EQ(r.supplemental_read->instr->opcode(), ir::Opcode::kLoad);
  EXPECT_EQ(r.read_side(), &*r.supplemental_read);
}

TEST(TsanTest, AnnotationSetSuppressesAdhocPair) {
  auto m = parse_ok(R"(module an
global @flag
global @data
func @setter() {
entry:
  store 1, @data
  store 1, @flag
  ret
}
func @waiter() {
entry:
  jmp loop
loop:
  %f = load @flag
  %c = icmp eq %f, 0
  br %c, loop, go
go:
  %v = load @data
  ret
}
func @main() {
entry:
  %a = thread_create @setter, 0
  %b = thread_create @waiter, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  // Unannotated: both the flag pair and the data pair are reported.
  const auto raw = detect(*m);
  EXPECT_EQ(raw.size(), 2u);

  // Annotate the busy-wait pair like §5.1 would.
  AnnotationSet annotations;
  const ir::Function* setter = m->find_function("setter");
  annotations.add_release_store(
      setter->entry()->instructions()[1].get());  // store 1, @flag
  const ir::Function* waiter = m->find_function("waiter");
  annotations.add_acquire_load(
      waiter->find_block("loop")->front());  // load @flag
  EXPECT_EQ(annotations.pair_count(), 1u);

  const auto annotated = detect(*m, &annotations);
  EXPECT_TRUE(annotated.empty());  // flag pair AND the data it ordered
}

TEST(SkiTest, WatchListLogsReadsUntilSanitizingWrite) {
  auto m = parse_ok(R"(module sk
global @x
func @writer() {
entry:
  store 1, @x
  ret
}
func @reader() {
entry:
  %v1 = load @x
  %v2 = load @x
  store 5, @x
  %v3 = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  const auto reports = detect(*m, nullptr, 3, /*ski=*/true);
  ASSERT_GE(reports.size(), 1u);
  // In SKI mode the racy address is watched and reads are logged; the
  // reader's own store sanitizes the address, so %v3 is never logged.
  bool found_watched = false;
  for (const RaceReport& r : reports) {
    if (!r.watched_reads.empty()) {
      found_watched = true;
      for (const AccessRecord& rec : r.watched_reads) {
        EXPECT_FALSE(rec.is_write);
        EXPECT_FALSE(rec.stack.empty());
      }
    }
  }
  EXPECT_TRUE(found_watched);
}

TEST(MergeTest, CollapsesSamePairAcrossRuns) {
  auto m = parse_ok(kPlainRace);
  std::vector<RaceReport> merged;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    merge_reports(merged, detect(*m, nullptr, seed));
  }
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_GE(merged.front().occurrences, 4u);
}

TEST(MergeTest, KeepsDistinctPairs) {
  std::vector<RaceReport> merged;
  auto m1 = parse_ok(kPlainRace);
  merge_reports(merged, detect(*m1, nullptr, 1));
  // A different module yields instruction pairs with different ids.
  auto m2 = parse_ok(kPlainRace);
  merge_reports(merged, detect(*m2, nullptr, 1));
  EXPECT_EQ(merged.size(), 2u);
}

TEST(ExploreTest, SweepsSchedulesAndMerges) {
  auto m = parse_ok(kPlainRace);
  const MachineFactory factory = [&m] {
    auto machine = std::make_unique<interp::Machine>(*m,
                                                     interp::MachineOptions{});
    machine->start(m->find_function("main"));
    return machine;
  };
  const ScheduleExplorationResult result =
      explore_schedules(factory, /*num_schedules=*/6, /*base_seed=*/10);
  EXPECT_EQ(result.schedules_run, 6u);
  EXPECT_GE(result.schedules_with_races, 1u);
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_GT(result.total_steps, 0u);
}

TEST(ReportTest, KeyIsUnorderedPair) {
  auto m = parse_ok(kPlainRace);
  auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 1u);
  RaceReport swapped = reports.front();
  std::swap(swapped.first, swapped.second);
  EXPECT_EQ(swapped.key(), reports.front().key());
}

TEST(ReportTest, ToStringMentionsObjectAndStacks) {
  auto m = parse_ok(kPlainRace);
  auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 1u);
  const std::string text = reports.front().to_string();
  EXPECT_NE(text.find("data race"), std::string::npos);
  EXPECT_NE(text.find("'x'"), std::string::npos);
  EXPECT_NE(text.find("writer"), std::string::npos);
  EXPECT_NE(text.find("reader"), std::string::npos);
}

}  // namespace
}  // namespace owl::race
