// Integration tests for the resilience layer: a multi-target pipeline run
// with injected scheduler stalls, verifier livelocks, stage exceptions, and
// truncated event streams. The run must complete, unaffected targets must
// match a fault-free run bit for bit, and affected targets must carry
// structured FailureRecords naming the right stage and cause.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace owl::core {
namespace {

using support::FailureCause;
using support::FaultInjector;
using support::FaultKind;
using support::FaultPlan;
using support::PipelineStage;

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

PipelineTarget target_for(const std::shared_ptr<ir::Module>& m,
                          std::uint64_t seed) {
  PipelineTarget t;
  t.name = m->name();
  t.module = m.get();
  t.factory = [m] {
    interp::MachineOptions options;
    options.max_steps = 50'000;
    auto machine = std::make_unique<interp::Machine>(*m, options);
    machine->start(m->find_function("main"));
    return machine;
  };
  t.seed = seed;
  return t;
}

/// A steady unprotected write/read race — one raw report, verifiable.
std::string steady_race(const char* name) {
  return std::string("module ") + name + R"(
global @x
func @writer() {
entry:
  store 7, @x
  ret
}
func @reader() {
entry:
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)";
}

/// A race whose racing moment needs the §5.2 livelock release: the writer's
/// racy store sits inside the critical section of the mutex the reader must
/// acquire first, so parking the writer blocks the reader.
std::string lock_livelock_race(const char* name) {
  return std::string("module ") + name + R"(
global @x
global @mu
func @writer() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  lock @mu
  store %i, @x
  unlock @mu
  io_delay 6
  %n = add %i, 1
  %c = icmp slt %n, 40
  br %c, loop, out
out:
  ret
}
func @reader() {
entry:
  io_delay 50
  lock @mu
  unlock @mu
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)";
}

bool has_failure(const StageCounts& counts, PipelineStage stage,
                 FailureCause cause) {
  for (const support::FailureRecord& record : counts.failures) {
    if (record.stage == stage && record.cause == cause) return true;
  }
  return false;
}

void expect_same_counts(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.counts.raw_reports, b.counts.raw_reports);
  EXPECT_EQ(a.counts.adhoc_syncs, b.counts.adhoc_syncs);
  EXPECT_EQ(a.counts.after_annotation, b.counts.after_annotation);
  EXPECT_EQ(a.counts.verifier_eliminated, b.counts.verifier_eliminated);
  EXPECT_EQ(a.counts.remaining, b.counts.remaining);
  EXPECT_EQ(a.counts.vulnerability_reports, b.counts.vulnerability_reports);
  EXPECT_EQ(a.exploits.size(), b.exploits.size());
  EXPECT_EQ(a.attacks.size(), b.attacks.size());
  EXPECT_EQ(a.confirmed_attacks(), b.confirmed_attacks());
}

TEST(FaultInjectionTest, MultiTargetRunDegradesOnlyFaultedTargets) {
  // Five targets; faults scoped by name to three distinct stages plus a
  // truncated event stream. D stays fault-free as the control.
  auto ma = parse_ok(steady_race("A"));
  auto mb = parse_ok(lock_livelock_race("B"));
  auto mc = parse_ok(steady_race("C"));
  auto md = parse_ok(steady_race("D"));
  auto me = parse_ok(steady_race("E"));
  const std::vector<PipelineTarget> targets = {
      target_for(ma, 11), target_for(mb, 22), target_for(mc, 33),
      target_for(md, 44), target_for(me, 55)};

  FaultInjector injector;
  injector.add_plan(
      {FaultKind::kSchedulerStall, PipelineStage::kDetection, "A"});
  injector.add_plan(
      {FaultKind::kBreakpointLivelock, PipelineStage::kRaceVerification, "B"});
  injector.add_plan(
      {FaultKind::kStageException, PipelineStage::kVulnAnalysis, "C"});
  injector.add_plan(
      {FaultKind::kTruncatedEvents, PipelineStage::kDetection, "E"});

  PipelineOptions faulted_options;
  // A finite detection step budget so the injected stall on A exhausts it
  // deterministically instead of burning max_steps on every schedule.
  faulted_options.stage_budgets.detection.steps = 5000;
  faulted_options.fault_injector = &injector;
  const std::vector<PipelineResult> faulted =
      Pipeline(faulted_options).run_many(targets);

  PipelineOptions clean_options;
  clean_options.stage_budgets.detection.steps = 5000;
  const std::vector<PipelineResult> clean =
      Pipeline(clean_options).run_many(targets);

  ASSERT_EQ(faulted.size(), 5u);
  ASSERT_EQ(clean.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(faulted[i].target_name, targets[i].name);
  }

  // A: the stall burned the detection schedules into the step budget.
  const PipelineResult& a = faulted[0];
  EXPECT_TRUE(a.degraded());
  EXPECT_TRUE(has_failure(a.counts, PipelineStage::kDetection,
                          FailureCause::kStepBudgetExhausted));
  EXPECT_TRUE(has_failure(a.counts, PipelineStage::kDetection,
                          FailureCause::kSchedulerStall));
  EXPECT_EQ(a.counts.raw_reports, 0u);  // stalled runs execute nothing

  // B: every racing-moment attempt livelocked (the injected breakpoint
  // livelock defeats the release rule); the report passes through
  // unverified instead of being silently eliminated.
  const PipelineResult& b = faulted[1];
  EXPECT_TRUE(b.degraded());
  EXPECT_TRUE(has_failure(b.counts, PipelineStage::kRaceVerification,
                          FailureCause::kLivelock));
  EXPECT_GE(b.counts.remaining, 1u);

  // C: vulnerability analysis threw on every report.
  const PipelineResult& c = faulted[2];
  EXPECT_TRUE(c.degraded());
  EXPECT_TRUE(has_failure(c.counts, PipelineStage::kVulnAnalysis,
                          FailureCause::kException));
  EXPECT_EQ(c.counts.vulnerability_reports, 0u);

  // D: untouched by any plan — identical to the fault-free run.
  const PipelineResult& d = faulted[3];
  EXPECT_FALSE(d.degraded());
  EXPECT_EQ(d.counts.resilience_summary(), "ok");
  expect_same_counts(d, clean[3]);
  EXPECT_GE(d.counts.raw_reports, 1u);  // the control actually detects

  // E: the truncated event stream starved the detector.
  const PipelineResult& e = faulted[4];
  EXPECT_TRUE(e.degraded());
  EXPECT_TRUE(has_failure(e.counts, PipelineStage::kDetection,
                          FailureCause::kTruncatedEvents));
  EXPECT_EQ(e.counts.raw_reports, 0u);
  EXPECT_EQ(clean[4].counts.raw_reports, clean[3].counts.raw_reports);
}

TEST(FaultInjectionTest, DetectionExceptionRetriesThenSucceeds) {
  // One injected exception with count=1: the first detection attempt
  // throws, the retry (fresh seed, grown budget) completes, and the target
  // is NOT degraded — a flaky schedule costs a retry, not the target.
  auto m = parse_ok(steady_race("flaky"));
  FaultInjector injector;
  FaultPlan plan{FaultKind::kStageException, PipelineStage::kDetection,
                 "flaky"};
  plan.count = 1;
  injector.add_plan(plan);

  PipelineOptions options;
  options.fault_injector = &injector;
  const PipelineResult result = Pipeline(options).run(target_for(m, 7));
  EXPECT_FALSE(result.degraded());
  EXPECT_GE(result.counts.retries_used, 1u);
  EXPECT_GE(result.counts.raw_reports, 1u);
}

TEST(FaultInjectionTest, ExhaustedRetriesRecordExceptionAndContinue) {
  // The exception plan never stops firing: every detection attempt dies,
  // the stage records kException with the retry count, and the later
  // stages still run (on an empty report set) instead of crashing.
  auto m = parse_ok(steady_race("doomed"));
  FaultInjector injector;
  injector.add_plan(
      {FaultKind::kStageException, PipelineStage::kDetection, "doomed"});

  PipelineOptions options;
  options.fault_injector = &injector;
  options.retry.max_retries = 1;
  const PipelineResult result = Pipeline(options).run(target_for(m, 7));
  EXPECT_TRUE(result.degraded());
  EXPECT_TRUE(has_failure(result.counts, PipelineStage::kDetection,
                          FailureCause::kException));
  EXPECT_EQ(result.counts.raw_reports, 0u);
  EXPECT_EQ(result.counts.remaining, 0u);
  EXPECT_TRUE(result.attacks.empty());
}

TEST(FaultInjectionTest, ThrowingFactoryIsolatedAtDriverLevel) {
  auto ok = parse_ok(steady_race("healthy"));
  auto bad = parse_ok(steady_race("broken"));
  PipelineTarget broken = target_for(bad, 3);
  broken.factory = []() -> std::unique_ptr<interp::Machine> {
    throw std::runtime_error("machine factory exploded");
  };

  const std::vector<PipelineResult> results =
      Pipeline().run_many({broken, target_for(ok, 4)});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].degraded());
  // detect() absorbs the throw stage-side, so the record lands on the
  // detection stage; a throw outside any stage would land on kDriver.
  EXPECT_TRUE(
      has_failure(results[0].counts, PipelineStage::kDetection,
                  FailureCause::kException) ||
      has_failure(results[0].counts, PipelineStage::kDriver,
                  FailureCause::kException));
  EXPECT_FALSE(results[1].degraded());
  EXPECT_GE(results[1].counts.raw_reports, 1u);
}

TEST(FaultInjectionTest, WallClockDeadlineDegradesStalledStage) {
  // A permanent stall with an (injected-clock-free) tiny wall deadline: the
  // detection stage must trip its deadline even though the stall produces
  // steps, and the pipeline must still return.
  auto m = parse_ok(steady_race("slow"));
  FaultInjector injector;
  injector.add_plan(
      {FaultKind::kSchedulerStall, PipelineStage::kDetection, "slow"});

  PipelineOptions options;
  options.fault_injector = &injector;
  options.stage_budgets = StageBudgets::uniform_wall(0.05);
  const PipelineResult result = Pipeline(options).run(target_for(m, 9));
  EXPECT_TRUE(result.degraded());
  EXPECT_TRUE(has_failure(result.counts, PipelineStage::kDetection,
                          FailureCause::kWallClockExhausted) ||
              has_failure(result.counts, PipelineStage::kDetection,
                          FailureCause::kSchedulerStall));
}

}  // namespace
}  // namespace owl::core
