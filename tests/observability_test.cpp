// Observability layer tests (DESIGN.md §8): the span tracer, the metrics
// registry, and the run manifest.
//
//  - TraceCollectorTest: span recording, nesting containment on one
//    thread, per-thread attribution under a ThreadPool, Chrome trace JSON
//    shape, and the disabled-collector fast path.
//  - MetricsRegistryTest: counter/gauge/histogram semantics, the
//    deterministic serialize() contract (sorted, wall-clock excluded),
//    and kind-collision detection.
//  - RunManifestTest: manifest shape, determinism across identical runs
//    and across jobs values (the CI differential gate's claim), and the
//    owl_cli end-to-end path exercised via Pipeline::run_many.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/manifest.hpp"
#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace owl {
namespace {

// --------------------------------------------------------------------------
// TraceCollectorTest
// --------------------------------------------------------------------------

TEST(TraceCollectorTest, DisabledCollectorRecordsNothing) {
  support::TraceCollector collector;
  ASSERT_FALSE(collector.enabled());
  {
    support::TraceSpan span("stage", "target", collector);
  }
  EXPECT_EQ(collector.event_count(), 0u);
}

TEST(TraceCollectorTest, RecordsNameDetailAndDuration) {
  support::TraceCollector collector;
  collector.set_enabled(true);
  {
    support::TraceSpan span("detection", "toctou.mir", collector);
  }
  const std::vector<support::TraceEvent> events = collector.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "detection");
  EXPECT_EQ(events[0].detail, "toctou.mir");
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceCollectorTest, NestedSpansAreContainedInParent) {
  support::TraceCollector collector;
  collector.set_enabled(true);
  {
    support::TraceSpan outer("target", "t", collector);
    {
      support::TraceSpan inner("detection", "t", collector);
    }
  }
  std::vector<support::TraceEvent> events = collector.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // snapshot() sorts by (tid, start, depth): the outer span opened first.
  const support::TraceEvent& outer = events[0];
  const support::TraceEvent& inner = events[1];
  EXPECT_EQ(outer.name, "target");
  EXPECT_EQ(inner.name, "detection");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.tid, inner.tid);
  // Containment: the child opens no earlier and closes no later.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
}

TEST(TraceCollectorTest, AttributesSpansToWorkerThreads) {
  support::TraceCollector collector;
  collector.set_enabled(true);
  constexpr std::size_t kTasks = 8;
  support::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    support::TraceSpan span("task", std::to_string(i), collector);
  });
  const std::vector<support::TraceEvent> events = collector.snapshot();
  ASSERT_EQ(events.size(), kTasks);
  // Every task recorded exactly once, each on the tid of the worker that
  // ran it; the pool has 4 workers so at most 4 distinct tids appear.
  std::vector<std::string> details;
  std::vector<std::uint32_t> tids;
  for (const support::TraceEvent& e : events) {
    EXPECT_EQ(e.name, "task");
    details.push_back(e.detail);
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(details.begin(), details.end());
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_NE(std::find(details.begin(), details.end(), std::to_string(i)),
              details.end());
  }
  EXPECT_LE(tids.size(), 4u);
  EXPECT_GE(tids.size(), 1u);
}

TEST(TraceCollectorTest, BuffersSurviveThreadExit) {
  support::TraceCollector collector;
  collector.set_enabled(true);
  std::thread worker([&] {
    support::TraceSpan span("ephemeral", "worker", collector);
  });
  worker.join();
  // The recording thread is gone; its buffer (and event) must not be.
  const std::vector<support::TraceEvent> events = collector.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "ephemeral");
}

TEST(TraceCollectorTest, ChromeTraceJsonShape) {
  support::TraceCollector collector;
  collector.set_enabled(true);
  {
    support::TraceSpan span("detection", "a \"quoted\" target", collector);
  }
  const std::string json = collector.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"detection\""), std::string::npos);
  // The detail must arrive JSON-escaped.
  EXPECT_NE(json.find("a \\\"quoted\\\" target"), std::string::npos);
  EXPECT_EQ(json.find("a \"quoted\" target"), std::string::npos);
}

TEST(TraceCollectorTest, ClearDropsEventsKeepsRecording) {
  support::TraceCollector collector;
  collector.set_enabled(true);
  {
    support::TraceSpan span("one", "x", collector);
  }
  collector.clear();
  EXPECT_EQ(collector.event_count(), 0u);
  {
    support::TraceSpan span("two", "y", collector);
  }
  const std::vector<support::TraceEvent> events = collector.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "two");
}

// --------------------------------------------------------------------------
// MetricsRegistryTest — on the global registry (the pipeline's sink), so
// every test starts from clear_for_test() to stay order-independent.
// --------------------------------------------------------------------------

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { support::metrics().clear_for_test(); }
  void TearDown() override { support::metrics().clear_for_test(); }
};

TEST_F(MetricsRegistryTest, CounterAccumulates) {
  support::MetricsRegistry& registry = support::metrics();
  registry.counter("a").inc();
  registry.counter("a").inc(4);
  EXPECT_EQ(registry.counter("a").value(), 5u);
}

TEST_F(MetricsRegistryTest, AccessorsReturnStableReferences) {
  support::MetricsRegistry& registry = support::metrics();
  support::Counter& c = registry.counter("stable");
  registry.counter("other").inc();
  EXPECT_EQ(&c, &registry.counter("stable"));
}

TEST_F(MetricsRegistryTest, KindCollisionThrows) {
  support::MetricsRegistry& registry = support::metrics();
  registry.counter("name");
  EXPECT_THROW(registry.gauge("name"), std::logic_error);
}

TEST_F(MetricsRegistryTest, HistogramBucketsByBitWidth) {
  support::MetricsRegistry& registry = support::metrics();
  support::Histogram& h = registry.histogram("h");
  h.observe(0);  // bucket 0
  h.observe(1);  // bucket 1
  h.observe(2);  // bucket 2
  h.observe(3);  // bucket 2
  h.observe(7);  // bucket 3
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 13u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST_F(MetricsRegistryTest, SerializeIsSortedAndDeterministic) {
  support::MetricsRegistry& registry = support::metrics();
  registry.counter("z.last").inc(2);
  registry.counter("a.first").inc();
  registry.gauge("m.middle").set(-3);
  const std::string first = registry.serialize();
  const std::string second = registry.serialize();
  EXPECT_EQ(first, second);
  EXPECT_LT(first.find("a.first"), first.find("m.middle"));
  EXPECT_LT(first.find("m.middle"), first.find("z.last"));
}

TEST_F(MetricsRegistryTest, SerializeExcludesWallClock) {
  support::MetricsRegistry& registry = support::metrics();
  registry.counter("behavioral").inc();
  const std::string before = registry.serialize();
  registry.wall_clock("elapsed").add(1.5);
  registry.wall_clock("elapsed").add(0.25);
  // Wall clock changed; the behavioral snapshot must not.
  EXPECT_EQ(registry.serialize(), before);
  EXPECT_EQ(before.find("elapsed"), std::string::npos);
  EXPECT_NEAR(registry.wall_clock("elapsed").seconds(), 1.75, 1e-9);
  EXPECT_NE(registry.wall_json().find("elapsed"), std::string::npos);
  EXPECT_EQ(registry.json().find("elapsed"), std::string::npos);
}

TEST_F(MetricsRegistryTest, ResetZeroesValuesKeepsRegistrations) {
  support::MetricsRegistry& registry = support::metrics();
  registry.counter("kept").inc(9);
  const std::string populated = registry.serialize();
  registry.reset();
  const std::string zeroed = registry.serialize();
  EXPECT_NE(populated, zeroed);
  EXPECT_NE(zeroed.find("kept"), std::string::npos);
  EXPECT_EQ(registry.counter("kept").value(), 0u);
}

TEST_F(MetricsRegistryTest, ConcurrentFlushesSumExactly) {
  support::MetricsRegistry& registry = support::metrics();
  constexpr std::size_t kTasks = 64;
  support::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t) {
    registry.counter("contended").inc(3);
  });
  EXPECT_EQ(registry.counter("contended").value(), 3u * kTasks);
}

// --------------------------------------------------------------------------
// RunManifestTest — end to end through Pipeline::run_many.
// --------------------------------------------------------------------------

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

core::PipelineTarget target_for(const std::shared_ptr<ir::Module>& m,
                                std::uint64_t seed) {
  core::PipelineTarget t;
  t.name = m->name();
  t.module = m.get();
  t.factory = [m] {
    interp::MachineOptions options;
    options.max_steps = 50'000;
    auto machine = std::make_unique<interp::Machine>(*m, options);
    machine->start(m->find_function("main"));
    return machine;
  };
  t.seed = seed;
  return t;
}

std::string steady_race(const char* name) {
  return std::string("module ") + name + R"(
global @x
func @writer() {
entry:
  store 7, @x
  ret
}
func @reader() {
entry:
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)";
}

/// Renders the manifest for a fresh run of `jobs` workers over two racy
/// targets, resetting global state first so runs are comparable.
std::string manifest_for_run(unsigned jobs) {
  support::metrics().clear_for_test();
  auto m1 = parse_ok(steady_race("alpha"));
  auto m2 = parse_ok(steady_race("beta"));
  std::vector<core::PipelineTarget> targets{target_for(m1, 11),
                                            target_for(m2, 23)};
  core::PipelineOptions options;
  options.jobs = jobs;
  const std::vector<core::PipelineResult> results =
      core::Pipeline(options).run_many(targets);
  return core::render_manifest("test", options, targets, results);
}

/// The diffable manifest body: everything before the "environment" object
/// (the manifest renders it last, exactly so this split is a substring cut).
std::string diffable_body(const std::string& manifest) {
  const std::size_t cut = manifest.find("\"environment\"");
  EXPECT_NE(cut, std::string::npos);
  return manifest.substr(0, cut);
}

TEST(RunManifestTest, ShapeContainsSchemaTargetsAndMetrics) {
  const std::string manifest = manifest_for_run(1);
  EXPECT_NE(manifest.find("\"schema\":\"owl-manifest-v1\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"tool\":\"test\""), std::string::npos);
  EXPECT_NE(manifest.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(manifest.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(manifest.find("\"detector\":\"tsan\""), std::string::npos);
  EXPECT_NE(manifest.find("\"metrics\""), std::string::npos);
  EXPECT_NE(manifest.find("\"environment\""), std::string::npos);
  EXPECT_NE(manifest.find("\"raw_reports\""), std::string::npos);
}

TEST(RunManifestTest, IdenticalRunsProduceByteIdenticalBodies) {
  const std::string first = manifest_for_run(1);
  const std::string second = manifest_for_run(1);
  EXPECT_EQ(diffable_body(first), diffable_body(second));
}

TEST(RunManifestTest, BodyIsInvariantAcrossJobsValues) {
  const std::string sequential = manifest_for_run(1);
  const std::string parallel = manifest_for_run(4);
  EXPECT_EQ(diffable_body(sequential), diffable_body(parallel));
}

TEST(RunManifestTest, MetricSnapshotIsInvariantAcrossJobsValues) {
  (void)manifest_for_run(1);
  const std::string sequential = support::metrics().serialize();
  (void)manifest_for_run(4);
  const std::string parallel = support::metrics().serialize();
  EXPECT_EQ(sequential, parallel);
  // The pipeline actually flushed something: behavioral counters land in
  // the snapshot, substrate accounting in the advisory section.
  EXPECT_NE(sequential.find("pipeline.targets"), std::string::npos);
  EXPECT_NE(sequential.find("detector.reports_emitted"), std::string::npos);
  EXPECT_EQ(sequential.find("detector.accesses"), std::string::npos);
  EXPECT_NE(support::metrics().advisory_json().find("detector.accesses"),
            std::string::npos);
  support::metrics().clear_for_test();
}

TEST(RunManifestTest, WriteManifestReportsIoFailure) {
  EXPECT_FALSE(core::write_manifest("/nonexistent-dir/m.json", "{}"));
}

}  // namespace
}  // namespace owl
