// Sequential-equivalence differential tests for the parallel pipeline
// executor: `jobs=N` must be a pure wall-clock knob. Every test runs the
// same multi-target workload sequentially (jobs=1) and in parallel
// (jobs=4) and demands byte-identical canonical serializations —
// core::serialize_result covers counts, failure records, every stage's
// reports, exploit hints, and attacks — plus equal Table-2/3 counters.
// One target always carries an injected fault so the equivalence claim
// includes the resilience layer (budgets, retries, FailureRecords,
// per-target FaultInjector forks).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "support/thread_pool.hpp"

namespace owl::core {
namespace {

using support::FaultInjector;
using support::FaultKind;
using support::FaultPlan;
using support::PipelineStage;

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

PipelineTarget target_for(const std::shared_ptr<ir::Module>& m,
                          std::uint64_t seed) {
  PipelineTarget t;
  t.name = m->name();
  t.module = m.get();
  t.factory = [m] {
    interp::MachineOptions options;
    options.max_steps = 50'000;
    auto machine = std::make_unique<interp::Machine>(*m, options);
    machine->start(m->find_function("main"));
    return machine;
  };
  t.seed = seed;
  return t;
}

/// A steady unprotected write/read race — one raw report, verifiable.
std::string steady_race(const char* name) {
  return std::string("module ") + name + R"(
global @x
func @writer() {
entry:
  store 7, @x
  ret
}
func @reader() {
entry:
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)";
}

/// A race whose racing moment needs the §5.2 livelock release: the racy
/// store sits inside the critical section the reader must enter first.
std::string lock_livelock_race(const char* name) {
  return std::string("module ") + name + R"(
global @x
global @mu
func @writer() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  lock @mu
  store %i, @x
  unlock @mu
  io_delay 6
  %n = add %i, 1
  %c = icmp slt %n, 40
  br %c, loop, out
out:
  ret
}
func @reader() {
entry:
  io_delay 50
  lock @mu
  unlock @mu
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)";
}

/// A TOCTOU-style target exercising the back half of the pipeline: the
/// racy flag guards a file-operation site, so vulnerability analysis emits
/// an exploit hint and the dynamic verifier drives an attack.
std::string toctou_race(const char* name) {
  return std::string("module ") + name + R"(
global @perm [1] = 1
func @serve() {
entry:
  %p = load @perm                 !serve.c:31
  %ok = icmp ne %p, 0             !serve.c:31
  br %ok, do_serve, deny          !serve.c:32
do_serve:
  io_delay 12                     !serve.c:35
  %fd = file_open 7               !serve.c:36
  file_write %fd, @perm, 1        !serve.c:37
  ret
deny:
  ret
}
func @revoke() {
entry:
  io_delay 6                      !admin.c:90
  store 0, @perm                  !admin.c:91
  ret
}
func @main() {
entry:
  %a = thread_create @serve, 0
  %b = thread_create @revoke, 0
  thread_join %a
  thread_join %b
  ret
}
)";
}

struct Workload {
  std::vector<std::shared_ptr<ir::Module>> modules;
  std::vector<PipelineTarget> targets;
};

/// Six heterogeneous targets covering every pipeline stage; `faulted`
/// (target name "F") is hit by the injected detection exception below.
Workload make_workload() {
  Workload w;
  w.modules = {parse_ok(steady_race("A")),       parse_ok(lock_livelock_race("B")),
               parse_ok(toctou_race("C")),       parse_ok(steady_race("D")),
               parse_ok(lock_livelock_race("E")), parse_ok(steady_race("F"))};
  std::uint64_t seed = 11;
  for (const auto& module : w.modules) {
    w.targets.push_back(target_for(module, seed));
    seed += 11;
  }
  return w;
}

/// The one injected fault the tentpole's differential gate requires: F's
/// first detection attempt throws, costing a retry (count=1) — the
/// resilience path must behave identically under every jobs value.
void add_fault(FaultInjector& injector) {
  FaultPlan plan{FaultKind::kStageException, PipelineStage::kDetection, "F"};
  plan.count = 1;
  injector.add_plan(plan);
}

std::vector<PipelineResult> run_with_jobs(const Workload& w, unsigned jobs) {
  FaultInjector injector(0x0417);
  add_fault(injector);
  PipelineOptions options;
  options.jobs = jobs;
  options.fault_injector = &injector;
  std::vector<PipelineResult> results = Pipeline(options).run_many(w.targets);
  // The fork-and-absorb bookkeeping must also be jobs-invariant.
  EXPECT_EQ(injector.fired_total(), 1u) << "jobs=" << jobs;
  return results;
}

void expect_equivalent(const std::vector<PipelineResult>& sequential,
                       const std::vector<PipelineResult>& parallel,
                       unsigned jobs) {
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const PipelineResult& s = sequential[i];
    const PipelineResult& p = parallel[i];
    // Byte-identical canonical form — the strongest claim first, so a
    // mismatch prints the exact divergence.
    EXPECT_EQ(serialize_result(s), serialize_result(p))
        << "target " << s.target_name << " diverged at jobs=" << jobs;
    // Table-2 counters (reports per stage) and Table-3 counters
    // (exploits/attacks) spelled out for readable failures.
    EXPECT_EQ(s.counts.raw_reports, p.counts.raw_reports);
    EXPECT_EQ(s.counts.adhoc_syncs, p.counts.adhoc_syncs);
    EXPECT_EQ(s.counts.after_annotation, p.counts.after_annotation);
    EXPECT_EQ(s.counts.verifier_eliminated, p.counts.verifier_eliminated);
    EXPECT_EQ(s.counts.remaining, p.counts.remaining);
    EXPECT_EQ(s.counts.vulnerability_reports, p.counts.vulnerability_reports);
    EXPECT_EQ(s.counts.retries_used, p.counts.retries_used);
    EXPECT_EQ(s.counts.failures.size(), p.counts.failures.size());
    EXPECT_EQ(s.exploits.size(), p.exploits.size());
    EXPECT_EQ(s.attacks.size(), p.attacks.size());
    EXPECT_EQ(s.confirmed_attacks(), p.confirmed_attacks());
  }
}

TEST(ParallelEquivalenceTest, JobsFourMatchesSequentialByteForByte) {
  const Workload w = make_workload();
  const std::vector<PipelineResult> sequential = run_with_jobs(w, 1);

  // The workload is non-trivial end to end: races detected, one target
  // retried through the injected fault, exploits and attacks produced.
  ASSERT_EQ(sequential.size(), 6u);
  std::size_t raw_total = 0, exploit_total = 0, attack_total = 0;
  for (const PipelineResult& result : sequential) {
    raw_total += result.counts.raw_reports;
    exploit_total += result.exploits.size();
    attack_total += result.attacks.size();
  }
  EXPECT_GE(raw_total, 5u);
  EXPECT_GE(exploit_total, 1u);
  EXPECT_GE(attack_total, 1u);
  EXPECT_GE(sequential[5].counts.retries_used, 1u)
      << "the injected fault on F must cost a retry";

  const std::vector<PipelineResult> parallel = run_with_jobs(w, 4);
  expect_equivalent(sequential, parallel, 4);
}

TEST(ParallelEquivalenceTest, EveryJobsValueIsEquivalent) {
  // jobs is a pure wall-clock knob for ANY value, including pools larger
  // than the target count and hardware_concurrency (jobs=0).
  const Workload w = make_workload();
  const std::vector<PipelineResult> sequential = run_with_jobs(w, 1);
  for (const unsigned jobs : {2u, 3u, 8u, 0u}) {
    expect_equivalent(sequential, run_with_jobs(w, jobs), jobs);
  }
}

TEST(ParallelEquivalenceTest, ParallelRunIsInternallyDeterministic) {
  // Two jobs=4 runs of the same workload agree with each other — the
  // equivalence is not a lucky schedule.
  const Workload w = make_workload();
  expect_equivalent(run_with_jobs(w, 4), run_with_jobs(w, 4), 4);
}

TEST(ParallelEquivalenceTest, VerifierShardingMatchesSequentialAttempts) {
  // Pipeline::run with a verifier pool shards the race verifier's
  // schedule-exploration attempts; the fold must reproduce the
  // sequential attempt accounting exactly.
  auto module = parse_ok(lock_livelock_race("shard"));
  const PipelineTarget target = target_for(module, 99);

  PipelineOptions sequential_options;
  sequential_options.race_verifier_attempts = 6;
  const PipelineResult sequential =
      Pipeline(sequential_options).run(target);

  support::ThreadPool pool(4);
  PipelineOptions sharded_options = sequential_options;
  sharded_options.verifier_pool = &pool;
  const PipelineResult sharded = Pipeline(sharded_options).run(target);

  EXPECT_EQ(serialize_result(sequential), serialize_result(sharded));
}

TEST(ParallelEquivalenceTest, StageTimingsAggregateAcrossWorkers) {
  // --timings plumbing: every worker records into the shared StageTimings;
  // each of the 6 targets contributes exactly one target-total sample and
  // one detection sample, whatever the jobs value.
  const Workload w = make_workload();
  StageTimings timings;
  PipelineOptions options;
  options.jobs = 4;
  options.stage_timings = &timings;
  Pipeline(options).run_many(w.targets);
  EXPECT_EQ(timings.stage_snapshot("target-total").count, w.targets.size());
  EXPECT_EQ(timings.stage_snapshot("detection").count, w.targets.size());
  EXPECT_FALSE(timings.empty());
}

TEST(ParallelEquivalenceTest, SerializationExcludesWallClock) {
  // Guard the canonical form itself: mutating the timing fields must not
  // change the serialization (otherwise the differential gates would flake
  // on scheduling noise instead of catching real divergence).
  auto module = parse_ok(steady_race("clock"));
  PipelineResult result = Pipeline().run(target_for(module, 5));
  const std::string before = serialize_result(result);
  result.total_seconds += 123.0;
  result.counts.avg_analysis_seconds += 9.0;
  EXPECT_EQ(before, serialize_result(result));
}

}  // namespace
}  // namespace owl::core
