// Integration tests: every modelled target program goes through the whole
// OWL pipeline and its attack must be detected; exploit drivers must
// realize the attack within the paper's repetition budget (Finding III /
// Table 4: subtle inputs trigger within ~20 repetitions).
#include <gtest/gtest.h>

#include "ir/verifier.hpp"
#include "workloads/registry.hpp"

namespace owl::workloads {
namespace {

// Small noise keeps the suite quick; the benches run full scale.
NoiseProfile test_profile() {
  NoiseProfile p;
  p.scale = 0.3;
  return p;
}

core::PipelineResult run_pipeline(const Workload& w) {
  core::Pipeline pipeline(w.pipeline_options());
  return pipeline.run(w.target());
}

unsigned exploit_successes(const Workload& w, unsigned runs,
                           std::uint64_t seed_base = 5000) {
  unsigned hits = 0;
  for (unsigned i = 0; i < runs; ++i) {
    auto machine = w.make_machine(w.exploit_inputs);
    interp::RandomScheduler sched(seed_base + i);
    machine->run(sched);
    if (w.attack_succeeded(*machine)) ++hits;
  }
  return hits;
}

class WorkloadSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadSuite, ModuleIsWellFormed) {
  const Workload w = make_by_name(GetParam(), test_profile());
  EXPECT_TRUE(ir::verify_module(*w.module).is_ok());
  EXPECT_NE(w.entry, nullptr);
  EXPECT_FALSE(w.name.empty());
  EXPECT_FALSE(w.program.empty());
}

TEST_P(WorkloadSuite, TestingRunTerminates) {
  const Workload w = make_by_name(GetParam(), test_profile());
  auto machine = w.make_machine(w.testing_inputs);
  interp::RandomScheduler sched(42);
  const interp::RunResult result = machine->run(sched);
  EXPECT_EQ(result.reason, interp::StopReason::kAllFinished)
      << "steps=" << result.steps;
}

TEST_P(WorkloadSuite, PipelineDetectsTheAttacks) {
  const Workload w = make_by_name(GetParam(), test_profile());
  const core::PipelineResult result = run_pipeline(w);
  if (w.known_attacks == 0) {
    EXPECT_FALSE(w.attack_detected(result));
    return;
  }
  EXPECT_TRUE(w.attack_detected(result))
      << w.name << ": raw=" << result.counts.raw_reports
      << " remaining=" << result.counts.remaining
      << " vuln=" << result.counts.vulnerability_reports
      << " attacks=" << result.attacks.size();
}

TEST_P(WorkloadSuite, PipelineReducesReports) {
  const Workload w = make_by_name(GetParam(), test_profile());
  const core::PipelineResult result = run_pipeline(w);
  if (result.counts.raw_reports < 10) return;  // tiny targets: nothing to prune
  // The headline claim, per program: most benign reports are pruned.
  EXPECT_LT(result.counts.remaining, result.counts.raw_reports)
      << w.name;
  EXPECT_GT(result.counts.reduction_ratio(), 0.4) << w.name;
}

TEST_P(WorkloadSuite, ExploitSucceedsWithinPaperBudget) {
  const Workload w = make_by_name(GetParam(), test_profile());
  if (w.known_attacks == 0) {
    EXPECT_EQ(exploit_successes(w, 20), 0u);
    return;
  }
  // Finding III: with crafted inputs, attacks trigger within ~20 repeats.
  EXPECT_GE(exploit_successes(w, 20), 1u) << w.name;
}

TEST_P(WorkloadSuite, TestingInputsDoNotRealizeTheAttack) {
  const Workload w = make_by_name(GetParam(), test_profile());
  // The benchmark workload (what the detectors run on) should generally
  // not trip the exploit: OWL's value is finding it anyway. Allow rare
  // accidental manifestations, but the rate must be far below exploit rate.
  unsigned hits = 0;
  for (unsigned i = 0; i < 10; ++i) {
    auto machine = w.make_machine(w.testing_inputs);
    interp::RandomScheduler sched(9000 + i);
    machine->run(sched);
    if (w.attack_succeeded(*machine)) ++hits;
  }
  EXPECT_LE(hits, 3u) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllTargets, WorkloadSuite,
                         ::testing::Values("libsafe", "linux", "mysql-flush",
                                           "mysql-setpass", "ssdb",
                                           "apache-log", "apache-balancer",
                                           "chrome", "memcached"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(RegistryTest, MakeAllCoversEveryProgram) {
  const auto all = make_all(test_profile());
  EXPECT_EQ(all.size(), 9u);
  std::size_t attacks = 0;
  for (const Workload& w : all) attacks += w.known_attacks;
  // Paper Table 2: 10 attack bugs evaluated end to end; we model them all.
  EXPECT_EQ(attacks, 10u);
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(make_by_name("nginx"), std::invalid_argument);
}

TEST(RegistryTest, NoiseScaleGrowsReportVolume) {
  NoiseProfile small;
  small.scale = 0.1;
  NoiseProfile large;
  large.scale = 1.0;
  const Workload ws = make_memcached(small);
  const Workload wl = make_memcached(large);
  EXPECT_LT(ws.module->instruction_count(), wl.module->instruction_count());
}

// The Libsafe end-to-end story from the paper's §4.3 walkthrough: the
// confirmed attack's artifacts are exactly the published ones.
TEST(LibsafeStory, MatchesPaperWalkthrough) {
  const Workload w = make_libsafe(test_profile());
  const core::PipelineResult result = run_pipeline(w);
  ASSERT_TRUE(w.attack_detected(result));

  const core::ConcurrencyAttack* attack = nullptr;
  for (const core::ConcurrencyAttack& a : result.attacks) {
    if (a.exploit.site->opcode() == ir::Opcode::kStrCpy) attack = &a;
  }
  ASSERT_NE(attack, nullptr);
  // Fig. 5: the vulnerable site is the strcpy at intercept.c:165, reached
  // through the corrupted branch at intercept.c:164.
  EXPECT_EQ(attack->exploit.site->loc().to_string(), "intercept.c:165");
  ASSERT_FALSE(attack->exploit.branches.empty());
  EXPECT_EQ(attack->exploit.branches.back()->loc().to_string(),
            "intercept.c:164");
  EXPECT_EQ(attack->exploit.dep, vuln::DepKind::kControl);
  // The race itself is the dying flag (util.c:145 read, libsafe.c:1640
  // write).
  const race::AccessRecord* read = attack->race.read_side();
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->instr->loc().to_string(), "util.c:145");
}

// The SSDB story (§8.4, CVE-2016-1000324): OWL pinpoints the pointer call
// at binlog.cpp:347, control-dependent on the corrupted branch at 359/360,
// and the dynamic verifier observes the use-after-free.
TEST(SsdbStory, MatchesPaperSection84) {
  const Workload w = make_ssdb(test_profile());
  const core::PipelineResult result = run_pipeline(w);
  ASSERT_TRUE(w.attack_detected(result));
  bool uaf_observed = false;
  for (const core::ConcurrencyAttack& attack : result.attacks) {
    for (const interp::SecurityEvent& event : attack.verification.events) {
      uaf_observed |=
          event.kind == interp::SecurityEventKind::kUseAfterFree ||
          event.kind == interp::SecurityEventKind::kNullFuncPtrDeref;
    }
  }
  EXPECT_TRUE(uaf_observed);
}

// The Apache-25520 story (§8.4): the HTML integrity violation — Apache's
// own request log written into the user's HTML file fd.
TEST(ApacheLogStory, HtmlIntegrityViolationRealizable) {
  const Workload w = make_apache_log(test_profile());
  unsigned html_hits = 0;
  for (unsigned i = 0; i < 40; ++i) {
    auto machine = w.make_machine(w.exploit_inputs);
    interp::RandomScheduler sched(31337 + i);
    machine->run(sched);
    const interp::Word html_fd = machine->read_global("html_fd");
    for (const interp::FileWriteRecord& rec : machine->file_writes()) {
      if (rec.fd == html_fd && rec.instr->loc().line == 1343) {
        ++html_hits;
        break;
      }
    }
  }
  EXPECT_GE(html_hits, 1u);
}

// The Apache-46215 story (§8.4): the wrapped counter equals the paper's
// 18,446,744,073,709,551,614 and the starved worker stops being selected.
TEST(ApacheBalancerStory, UnderflowMatchesPaperValue) {
  const Workload w = make_apache_balancer(test_profile());
  for (unsigned i = 0; i < 40; ++i) {
    auto machine = w.make_machine(w.exploit_inputs);
    interp::RandomScheduler sched(4000 + i);
    machine->run(sched);
    if (!w.attack_succeeded(*machine)) continue;
    const interp::Address base = machine->global_address("worker_busy");
    for (int worker = 0; worker < 4; ++worker) {
      const auto value = static_cast<std::uint64_t>(machine->memory().load_raw(
          base + static_cast<interp::Address>(worker) * 8));
      if (value > (1ULL << 63)) {
        // The paper observed 18,446,744,073,709,551,614 (one wrap); further
        // raced decrements can push it lower, but it stays in the "busiest
        // thread ever" range that starves the worker.
        EXPECT_GE(value, 18446744073709551520ULL);
        return;
      }
    }
  }
  GTEST_FAIL() << "underflow never manifested in 40 exploit runs";
}

}  // namespace
}  // namespace owl::workloads
