// Property-style parameterized sweeps over the core invariants:
//  - replayability: a seed fully determines an execution;
//  - mutual exclusion under every schedule;
//  - happens-before soundness: unordered conflicting accesses are always
//    reported, ordered ones never;
//  - strcpy overflow detection exactly at the buffer boundary;
//  - vector-clock lattice laws under random operation sequences.
#include <gtest/gtest.h>

#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "race/tsan_detector.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace owl {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

// ---------------------------------------------------------------------------
// Replay determinism: same module + inputs + seed => identical prints, step
// count, final memory.
// ---------------------------------------------------------------------------

class ReplayDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayDeterminism, SameSeedSameExecution) {
  auto m = parse_ok(R"(module rd
global @a
global @b
func @w1() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  %v = load @a
  store %v, @b
  %w = load @b
  %w2 = add %w, 3
  store %w2, @a
  %n = add %i, 1
  %c = icmp slt %n, 20
  br %c, loop, out
out:
  print %i
  ret
}
func @main() {
entry:
  %x = thread_create @w1, 0
  %y = thread_create @w1, 0
  thread_join %x
  thread_join %y
  %f = load @a
  print %f
  ret
}
)");
  const auto run_once = [&](std::uint64_t seed) {
    interp::Machine machine(*m, {});
    machine.start(m->find_function("main"));
    interp::RandomScheduler sched(seed);
    const interp::RunResult r = machine.run(sched);
    return std::make_tuple(r.steps, machine.prints(),
                           machine.read_global("a"));
  };
  const std::uint64_t seed = GetParam();
  EXPECT_EQ(run_once(seed), run_once(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminism,
                         ::testing::Values(1, 2, 3, 17, 99, 12345, 777777));

// ---------------------------------------------------------------------------
// Mutual exclusion holds under every scheduler seed.
// ---------------------------------------------------------------------------

class MutexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutexProperty, CounterIsExact) {
  auto m = parse_ok(R"(module mx
global @mu
global @ctr
func @worker() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  lock @mu
  %v = load @ctr
  yield
  %v2 = add %v, 1
  store %v2, @ctr
  unlock @mu
  %n = add %i, 1
  %c = icmp slt %n, 25
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %a = thread_create @worker, 0
  %b = thread_create @worker, 0
  %c = thread_create @worker, 0
  thread_join %a
  thread_join %b
  thread_join %c
  ret
}
)");
  interp::Machine machine(*m, {});
  machine.start(m->find_function("main"));
  interp::RandomScheduler sched(GetParam());
  ASSERT_EQ(machine.run(sched).reason, interp::StopReason::kAllFinished);
  EXPECT_EQ(machine.read_global("ctr"), 75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutexProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Happens-before soundness / completeness on a two-access program.
// ---------------------------------------------------------------------------

class HbProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HbProperty, UnorderedConflictAlwaysReported) {
  auto m = parse_ok(R"(module un
global @x
func @w() {
entry:
  store 1, @x
  ret
}
func @r() {
entry:
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @w, 0
  %b = thread_create @r, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  interp::Machine machine(*m, {});
  race::TsanDetector detector;
  machine.add_observer(&detector);
  machine.start(m->find_function("main"));
  interp::RandomScheduler sched(GetParam());
  machine.run(sched);
  // No matter the actual interleaving order, the pair is unordered by
  // happens-before and must be reported.
  EXPECT_EQ(detector.take_reports().size(), 1u);
}

TEST_P(HbProperty, LockOrderedConflictNeverReported) {
  auto m = parse_ok(R"(module lo
global @mu
global @x
func @w() {
entry:
  lock @mu
  store 1, @x
  unlock @mu
  ret
}
func @r() {
entry:
  lock @mu
  %v = load @x
  unlock @mu
  ret
}
func @main() {
entry:
  %a = thread_create @w, 0
  %b = thread_create @r, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  interp::Machine machine(*m, {});
  race::TsanDetector detector;
  machine.add_observer(&detector);
  machine.start(m->find_function("main"));
  interp::RandomScheduler sched(GetParam());
  machine.run(sched);
  EXPECT_TRUE(detector.take_reports().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HbProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// strcpy flags an overflow exactly when the source (plus terminator) does
// not fit the destination.
// ---------------------------------------------------------------------------

class StrcpyBoundary : public ::testing::TestWithParam<int> {};

TEST_P(StrcpyBoundary, OverflowIffTooLong) {
  const int len = GetParam();
  std::string program = "module sb\nglobal @dst [8]\nglobal @src [32]\n";
  program += "func @main() {\nentry:\n";
  for (int i = 0; i < len; ++i) {
    program += str_format("  %%p%d = gep @src, %d\n", i, i);
    program += str_format("  store 7, %%p%d\n", i);
  }
  program += "  strcpy @dst, @src\n  ret\n}\n";
  auto m = parse_ok(program);
  interp::Machine machine(*m, {});
  machine.start(m->find_function("main"));
  interp::RoundRobinScheduler sched;
  machine.run(sched);
  const bool overflowed =
      machine.has_event(interp::SecurityEventKind::kBufferOverflow);
  // 8-cell buffer: len 7 + terminator fits; len 8 does not.
  EXPECT_EQ(overflowed, len + 1 > 8) << "len=" << len;
}

INSTANTIATE_TEST_SUITE_P(Lengths, StrcpyBoundary, ::testing::Range(0, 13));

// ---------------------------------------------------------------------------
// Vector-clock lattice laws under random operation sequences.
// ---------------------------------------------------------------------------

class ClockLaws : public ::testing::TestWithParam<std::uint64_t> {};

race::VectorClock random_clock(Rng& rng) {
  race::VectorClock c;
  const std::size_t n = rng.next_in(0, 5);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(static_cast<race::ThreadId>(rng.next_below(6)),
          rng.next_below(10));
  }
  return c;
}

TEST_P(ClockLaws, JoinIsLeastUpperBound) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const race::VectorClock a = random_clock(rng);
    const race::VectorClock b = random_clock(rng);
    race::VectorClock j = a;
    j.join(b);
    // Upper bound.
    EXPECT_TRUE(a.leq(j));
    EXPECT_TRUE(b.leq(j));
    // Least: any other upper bound dominates j.
    race::VectorClock u = random_clock(rng);
    u.join(a);
    u.join(b);
    EXPECT_TRUE(j.leq(u));
    // Idempotent and commutative.
    race::VectorClock j2 = b;
    j2.join(a);
    EXPECT_TRUE(j.leq(j2));
    EXPECT_TRUE(j2.leq(j));
    race::VectorClock jj = j;
    jj.join(j);
    EXPECT_TRUE(jj.leq(j));
  }
}

TEST_P(ClockLaws, LeqIsAPartialOrder) {
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const race::VectorClock a = random_clock(rng);
    const race::VectorClock b = random_clock(rng);
    const race::VectorClock c = random_clock(rng);
    EXPECT_TRUE(a.leq(a));  // reflexive
    if (a.leq(b) && b.leq(a)) {
      // Antisymmetry: equal as functions.
      for (race::ThreadId t = 0; t < 8; ++t) {
        EXPECT_EQ(a.get(t), b.get(t));
      }
    }
    if (a.leq(b) && b.leq(c)) {
      EXPECT_TRUE(a.leq(c));  // transitive
    }
    // Increment strictly grows.
    race::VectorClock a2 = a;
    a2.increment(3);
    EXPECT_TRUE(a.leq(a2));
    EXPECT_FALSE(a2.leq(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockLaws,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Machine determinism also holds across scheduler kinds for race-free
// programs: the final state is schedule-independent.
// ---------------------------------------------------------------------------

class ScheduleIndependence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleIndependence, RaceFreeProgramIsConfluent) {
  auto m = parse_ok(R"(module cf
global @mu
global @total
func @acc(i64 %k) {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  lock @mu
  %v = load @total
  %v2 = add %v, %k
  store %v2, @total
  unlock @mu
  %n = add %i, 1
  %c = icmp slt %n, 10
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %a = thread_create @acc, 1
  %b = thread_create @acc, 2
  %c = thread_create @acc, 3
  thread_join %a
  thread_join %b
  thread_join %c
  ret
}
)");
  interp::Machine machine(*m, {});
  machine.start(m->find_function("main"));
  interp::PctScheduler sched(GetParam(), 3, 2000);
  ASSERT_EQ(machine.run(sched).reason, interp::StopReason::kAllFinished);
  EXPECT_EQ(machine.read_global("total"), 60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleIndependence,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace owl
