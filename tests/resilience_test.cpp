// Unit tests for the resilience-layer primitives: Budget/BudgetSpec,
// RetryPolicy, and the deterministic FaultInjector.
#include <gtest/gtest.h>

#include "support/deadline.hpp"
#include "support/fault_injector.hpp"
#include "support/retry.hpp"

namespace owl::support {
namespace {

TEST(BudgetTest, DefaultIsUnlimited) {
  Budget budget;
  budget.charge_steps(1'000'000);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.exhausted_by().has_value());
  EXPECT_EQ(budget.remaining_steps(), UINT64_MAX);
}

TEST(BudgetTest, StepAxisExhausts) {
  BudgetSpec spec;
  spec.steps = 100;
  Budget budget(spec);
  budget.charge_steps(99);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.remaining_steps(), 1u);
  budget.charge_steps(1);
  ASSERT_TRUE(budget.exhausted_by().has_value());
  EXPECT_EQ(*budget.exhausted_by(), FailureCause::kStepBudgetExhausted);
  EXPECT_EQ(budget.steps_spent(), 100u);
}

TEST(BudgetTest, WallAxisExhaustsViaInjectedClock) {
  double now = 10.0;
  BudgetSpec spec;
  spec.wall_seconds = 2.0;
  Budget budget(spec, [&now] { return now; });
  EXPECT_FALSE(budget.exhausted());
  now = 11.9;
  EXPECT_FALSE(budget.exhausted());
  now = 12.5;
  ASSERT_TRUE(budget.exhausted_by().has_value());
  EXPECT_EQ(*budget.exhausted_by(), FailureCause::kWallClockExhausted);
  EXPECT_DOUBLE_EQ(budget.elapsed_seconds(), 2.5);
}

TEST(BudgetTest, WallCheckedBeforeSteps) {
  // A stalled (zero-progress) stage must still trip its deadline, and when
  // both axes are out the wall clock is the reported cause.
  double now = 0.0;
  BudgetSpec spec;
  spec.wall_seconds = 1.0;
  spec.steps = 10;
  Budget budget(spec, [&now] { return now; });
  budget.charge_steps(10);
  now = 5.0;
  EXPECT_EQ(*budget.exhausted_by(), FailureCause::kWallClockExhausted);
}

TEST(BudgetTest, PerRunStepsCapsAtRemaining) {
  BudgetSpec spec;
  spec.steps = 100;
  Budget budget(spec);
  EXPECT_EQ(budget.per_run_steps(60), 60u);
  budget.charge_steps(70);
  EXPECT_EQ(budget.per_run_steps(60), 30u);
}

TEST(BudgetSpecTest, GrownScalesBothAxesAndKeepsUnlimited) {
  BudgetSpec spec;
  spec.wall_seconds = 1.5;
  spec.steps = 100;
  const BudgetSpec grown = spec.grown(2.0);
  EXPECT_DOUBLE_EQ(grown.wall_seconds, 3.0);
  EXPECT_EQ(grown.steps, 200u);

  const BudgetSpec unlimited = BudgetSpec{}.grown(2.0);
  EXPECT_TRUE(unlimited.unlimited());
}

TEST(RetryPolicyTest, AttemptAndSeedSchedule) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.seed_stride = 1000;
  EXPECT_EQ(policy.max_attempts(), 4u);
  EXPECT_EQ(policy.seed_for(42, 0), 42u);
  EXPECT_EQ(policy.seed_for(42, 1), 1042u);
  EXPECT_EQ(policy.seed_for(42, 3), 3042u);
}

TEST(RetryPolicyTest, BudgetGrowsExponentially) {
  RetryPolicy policy;
  policy.budget_growth = 2.0;
  BudgetSpec base;
  base.steps = 100;
  EXPECT_EQ(policy.budget_for(base, 0).steps, 100u);
  EXPECT_EQ(policy.budget_for(base, 1).steps, 200u);
  EXPECT_EQ(policy.budget_for(base, 2).steps, 400u);
}

FaultPlan plan_of(FaultKind kind, PipelineStage stage,
                  std::string target = "") {
  FaultPlan plan;
  plan.kind = kind;
  plan.stage = stage;
  plan.target = std::move(target);
  return plan;
}

TEST(FaultInjectorTest, FiresOnlyInMatchingContext) {
  FaultInjector injector;
  injector.add_plan(plan_of(FaultKind::kSchedulerStall,
                            PipelineStage::kDetection, "apache"));

  injector.begin_target("mysql");
  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_FALSE(injector.should_stall());  // wrong target

  injector.begin_target("apache");
  injector.begin_stage(PipelineStage::kRaceVerification);
  EXPECT_FALSE(injector.should_stall());  // wrong stage

  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_TRUE(injector.should_stall());
  EXPECT_TRUE(injector.fired_in_stage(FaultKind::kSchedulerStall));
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events().front().target, "apache");
}

TEST(FaultInjectorTest, EmptyTargetMatchesAnyTarget) {
  FaultInjector injector;
  injector.add_plan(
      plan_of(FaultKind::kTruncatedEvents, PipelineStage::kDetection));
  injector.begin_target("anything");
  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_TRUE(injector.truncate_events());
}

TEST(FaultInjectorTest, AfterSkipsLeadingProbes) {
  FaultInjector injector;
  FaultPlan plan =
      plan_of(FaultKind::kSchedulerStall, PipelineStage::kDetection);
  plan.after = 3;
  injector.add_plan(plan);
  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_FALSE(injector.should_stall());
  EXPECT_FALSE(injector.should_stall());
  EXPECT_FALSE(injector.should_stall());
  EXPECT_TRUE(injector.should_stall());
  EXPECT_TRUE(injector.should_stall());
}

TEST(FaultInjectorTest, CountBoundsLifetimeFirings) {
  FaultInjector injector;
  FaultPlan plan =
      plan_of(FaultKind::kSchedulerStall, PipelineStage::kDetection);
  plan.count = 2;
  injector.add_plan(plan);
  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_TRUE(injector.should_stall());
  EXPECT_TRUE(injector.should_stall());
  EXPECT_FALSE(injector.should_stall());
  // The cap is lifetime, not per-context.
  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_FALSE(injector.should_stall());
  EXPECT_EQ(injector.fired_total(), 2u);
}

TEST(FaultInjectorTest, AfterResetsPerContext) {
  FaultInjector injector;
  FaultPlan plan =
      plan_of(FaultKind::kSchedulerStall, PipelineStage::kDetection);
  plan.after = 1;
  injector.add_plan(plan);
  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_FALSE(injector.should_stall());
  EXPECT_TRUE(injector.should_stall());
  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_FALSE(injector.should_stall());  // probe counter restarted
  EXPECT_TRUE(injector.should_stall());
}

TEST(FaultInjectorTest, EventsLoggedOncePerContext) {
  FaultInjector injector;
  injector.add_plan(
      plan_of(FaultKind::kSchedulerStall, PipelineStage::kDetection));
  injector.begin_target("t");
  injector.begin_stage(PipelineStage::kDetection);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(injector.should_stall());
  EXPECT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.fired_total(), 100u);
  injector.begin_stage(PipelineStage::kDetection);
  (void)injector.should_stall();
  EXPECT_EQ(injector.events().size(), 2u);
}

TEST(FaultInjectorTest, MaybeThrowRaisesInjectedFault) {
  FaultInjector injector;
  injector.add_plan(
      plan_of(FaultKind::kStageException, PipelineStage::kVulnAnalysis, "c"));
  injector.begin_target("c");
  injector.begin_stage(PipelineStage::kVulnAnalysis);
  EXPECT_THROW(injector.maybe_throw(), InjectedFault);
  injector.begin_stage(PipelineStage::kDetection);
  EXPECT_NO_THROW(injector.maybe_throw());
}

TEST(FaultInjectorTest, ProbabilityDilutionIsSeedDeterministic) {
  const auto firing_pattern = [](std::uint64_t seed) {
    FaultInjector injector(seed);
    FaultPlan plan =
        plan_of(FaultKind::kSchedulerStall, PipelineStage::kDetection);
    plan.probability_percent = 50;
    injector.add_plan(plan);
    injector.begin_stage(PipelineStage::kDetection);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(injector.should_stall());
    return fired;
  };
  EXPECT_EQ(firing_pattern(7), firing_pattern(7));
  // 64 draws at 50%: all-equal across different seeds would mean the seed
  // is ignored (probability 2^-64 otherwise).
  EXPECT_NE(firing_pattern(7), firing_pattern(8));
}

}  // namespace
}  // namespace owl::support
