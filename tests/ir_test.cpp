// Unit tests for MiniIR construction, printing and verification.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/module.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace owl::ir {
namespace {

TEST(TypeTest, NamesAndPredicates) {
  EXPECT_EQ(Type::void_type().name(), "void");
  EXPECT_EQ(Type::i1().name(), "i1");
  EXPECT_EQ(Type::i64().name(), "i64");
  EXPECT_EQ(Type::ptr().name(), "ptr");
  EXPECT_TRUE(Type::i1().is_integer());
  EXPECT_TRUE(Type::i64().is_integer());
  EXPECT_FALSE(Type::ptr().is_integer());
  EXPECT_TRUE(Type::ptr().is_ptr());
}

TEST(TypeTest, ParseRoundTrip) {
  for (const Type t : {Type::void_type(), Type::i1(), Type::i64(),
                       Type::ptr()}) {
    Type parsed;
    ASSERT_TRUE(parse_type(t.name(), parsed));
    EXPECT_EQ(parsed, t);
  }
  Type t;
  EXPECT_FALSE(parse_type("i32", t));
}

TEST(OpcodeTest, NameRoundTripForAllOpcodes) {
  // Spot-check the full mnemonic table through its inverse.
  for (const Opcode op :
       {Opcode::kAdd, Opcode::kICmp, Opcode::kLoad, Opcode::kStore,
        Opcode::kBr, Opcode::kPhi, Opcode::kCall, Opcode::kCallPtr,
        Opcode::kThreadCreate, Opcode::kHbRelease, Opcode::kStrCpy,
        Opcode::kSetUid, Opcode::kFork, Opcode::kEval, Opcode::kFileWrite}) {
    Opcode parsed;
    ASSERT_TRUE(parse_opcode(opcode_name(op), parsed))
        << opcode_name(op);
    EXPECT_EQ(parsed, op);
  }
  Opcode op;
  EXPECT_FALSE(parse_opcode("frobnicate", op));
}

TEST(ModuleTest, ConstantsAreUniqued) {
  Module m("t");
  EXPECT_EQ(m.i64(5), m.i64(5));
  EXPECT_NE(m.i64(5), m.i64(6));
  EXPECT_NE(static_cast<Value*>(m.i64(0)), static_cast<Value*>(m.null_ptr()));
  EXPECT_TRUE(m.null_ptr()->is_null_pointer());
  EXPECT_FALSE(m.i64(0)->is_null_pointer());
}

TEST(ModuleTest, GlobalAndFunctionLookup) {
  Module m("t");
  GlobalVariable* g = m.add_global("flag", 2, 7);
  Function* f = m.add_function("work", Type::i64());
  EXPECT_EQ(m.find_global("flag"), g);
  EXPECT_EQ(m.find_global("missing"), nullptr);
  EXPECT_EQ(m.find_function("work"), f);
  EXPECT_EQ(m.find_function("missing"), nullptr);
  EXPECT_EQ(g->cell_count(), 2u);
  EXPECT_EQ(g->initial_value(), 7);
}

TEST(ModuleTest, ValueIdsAreUnique) {
  Module m("t");
  GlobalVariable* g = m.add_global("a");
  Function* f = m.add_function("f", Type::void_type());
  Constant* c = m.i64(1);
  EXPECT_NE(g->id(), f->id());
  EXPECT_NE(f->id(), c->id());
  EXPECT_NE(g->id(), c->id());
}

TEST(BuilderTest, BuildsWellFormedFunction) {
  Module m("t");
  IRBuilder b(&m);
  GlobalVariable* g = m.add_global("g");
  Function* f = m.add_function("f", Type::i64());
  BasicBlock* entry = f->add_block("entry");
  BasicBlock* then_bb = f->add_block("then");
  BasicBlock* else_bb = f->add_block("else");
  b.set_insert_point(entry);
  Instruction* v = b.load(g, "v");
  Instruction* c = b.icmp(CmpPredicate::kEq, v, b.i64(0), "c");
  b.br(c, then_bb, else_bb);
  b.set_insert_point(then_bb);
  b.ret(b.i64(1));
  b.set_insert_point(else_bb);
  b.ret(b.i64(2));

  EXPECT_TRUE(verify_module(m).is_ok());
  EXPECT_EQ(f->instruction_count(), 5u);
  EXPECT_EQ(m.instruction_count(), 5u);
  EXPECT_EQ(v->function(), f);
  EXPECT_EQ(entry->terminator()->opcode(), Opcode::kBr);
  EXPECT_EQ(entry->successors().size(), 2u);
}

TEST(BuilderTest, SourceLocationsStamp) {
  Module m("t");
  IRBuilder b(&m);
  Function* f = m.add_function("f", Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  b.set_loc("file.c", 42);
  Instruction* i = b.yield();
  EXPECT_EQ(i->loc().file, "file.c");
  EXPECT_EQ(i->loc().line, 42u);
  b.set_line(43);
  EXPECT_EQ(b.ret()->loc().line, 43u);
  EXPECT_EQ(i->loc().to_string(), "file.c:42");
}

TEST(BuilderTest, CallWiresCalleeAndType) {
  Module m("t");
  IRBuilder b(&m);
  Function* callee = m.add_function("callee", Type::i64());
  callee->add_argument(Type::i64(), "x");
  {
    b.set_insert_point(callee->add_block("entry"));
    b.ret(b.i64(0));
  }
  Function* f = m.add_function("f", Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  Instruction* call = b.call(callee, {b.i64(3)}, "r");
  b.ret();
  EXPECT_EQ(call->callee(), callee);
  EXPECT_EQ(call->type(), Type::i64());
  EXPECT_TRUE(verify_module(m).is_ok());
}

TEST(InstructionTest, ClassificationHelpers) {
  Module m("t");
  IRBuilder b(&m);
  GlobalVariable* g = m.add_global("g");
  Function* f = m.add_function("f", Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  Instruction* ld = b.load(g);
  Instruction* st = b.store(b.i64(1), g);
  Instruction* at = b.atomic_add(g, b.i64(1));
  Instruction* lk = b.lock(g);
  Instruction* rt = b.ret();

  EXPECT_TRUE(ld->is_memory_read());
  EXPECT_FALSE(ld->is_memory_write());
  EXPECT_TRUE(st->is_memory_write());
  EXPECT_TRUE(at->is_memory_read());
  EXPECT_TRUE(at->is_memory_write());
  EXPECT_TRUE(at->is_synchronization());
  EXPECT_TRUE(lk->is_synchronization());
  EXPECT_TRUE(rt->is_terminator());
  EXPECT_FALSE(ld->is_terminator());
}

TEST(VerifierTest, RejectsEmptyBlock) {
  Module m("t");
  Function* f = m.add_function("f", Type::void_type());
  f->add_block("entry");
  const Status s = verify_module(m);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("empty"), std::string::npos);
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Module m("t");
  IRBuilder b(&m);
  GlobalVariable* g = m.add_global("g");
  Function* f = m.add_function("f", Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  b.load(g);
  EXPECT_FALSE(verify_module(m).is_ok());
}

TEST(VerifierTest, RejectsCallArityMismatch) {
  Module m("t");
  IRBuilder b(&m);
  Function* callee = m.add_function("callee", Type::void_type());
  callee->add_argument(Type::i64(), "x");
  b.set_insert_point(callee->add_block("entry"));
  b.ret();
  Function* f = m.add_function("f", Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  b.call(callee, {});  // missing argument
  b.ret();
  const Status s = verify_module(m);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("arity"), std::string::npos);
}

TEST(VerifierTest, RejectsReturnValueFromVoidFunction) {
  Module m("t");
  IRBuilder b(&m);
  Function* f = m.add_function("f", Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  b.ret(b.i64(1));
  EXPECT_FALSE(verify_module(m).is_ok());
}

TEST(VerifierTest, RejectsMissingReturnValue) {
  Module m("t");
  IRBuilder b(&m);
  Function* f = m.add_function("f", Type::i64());
  b.set_insert_point(f->add_block("entry"));
  b.ret();
  EXPECT_FALSE(verify_module(m).is_ok());
}

TEST(VerifierTest, RejectsCrossFunctionOperand) {
  Module m("t");
  IRBuilder b(&m);
  GlobalVariable* g = m.add_global("g");
  Function* f1 = m.add_function("f1", Type::void_type());
  b.set_insert_point(f1->add_block("entry"));
  Instruction* v = b.load(g);
  b.ret();
  Function* f2 = m.add_function("f2", Type::void_type());
  b.set_insert_point(f2->add_block("entry"));
  b.print(v);  // v belongs to f1
  b.ret();
  EXPECT_FALSE(verify_module(m).is_ok());
}

TEST(VerifierTest, CollectsAllViolations) {
  Module m("t");
  IRBuilder b(&m);
  Function* f = m.add_function("f", Type::i64());
  f->add_block("empty1");
  Function* g = m.add_function("g", Type::i64());
  b.set_insert_point(g->add_block("entry"));
  b.ret();  // missing value
  const auto all = verify_module_all(m);
  EXPECT_GE(all.size(), 2u);
}

TEST(PrinterTest, RendersGlobalsAndFunctions) {
  Module m("demo");
  IRBuilder b(&m);
  m.add_global("dying", 1, 0);
  m.add_global("table", 4, 9);
  Function* f = m.add_function("f", Type::i64());
  f->add_argument(Type::ptr(), "p");
  b.set_insert_point(f->add_block("entry"));
  b.set_loc("x.c", 5);
  Instruction* v = b.load(f->argument(0), "v");
  b.ret(v);

  const std::string out = print_module(m);
  EXPECT_NE(out.find("module demo"), std::string::npos);
  EXPECT_NE(out.find("global @dying [1]"), std::string::npos);
  EXPECT_NE(out.find("global @table [4] = 9"), std::string::npos);
  EXPECT_NE(out.find("func @f(ptr %p) -> i64 {"), std::string::npos);
  EXPECT_NE(out.find("%v = load %p  !x.c:5"), std::string::npos);
  EXPECT_NE(out.find("ret %v"), std::string::npos);
}

TEST(PrinterTest, NamesUnnamedValuesDeterministically) {
  Module m("t");
  IRBuilder b(&m);
  GlobalVariable* g = m.add_global("g");
  Function* f = m.add_function("f", Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  Instruction* a = b.load(g);
  Instruction* c = b.add(a, b.i64(1));
  b.store(c, g);
  b.ret();
  const std::string out = print_function(*f);
  EXPECT_NE(out.find("%t0 = load @g"), std::string::npos);
  EXPECT_NE(out.find("%t1 = add %t0, 1"), std::string::npos);
  EXPECT_NE(out.find("store %t1, @g"), std::string::npos);
}

TEST(PrinterTest, SingleInstructionQuoting) {
  Module m("t");
  IRBuilder b(&m);
  GlobalVariable* g = m.add_global("dying");
  Function* f = m.add_function("f", Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  b.set_loc("libsafe.c", 1640);
  Instruction* st = b.store(b.i64(1), g);
  b.ret();
  EXPECT_EQ(print_instruction(*st), "store 1, @dying  !libsafe.c:1640");
}

TEST(PrinterTest, PhiAndBranchSyntax) {
  Module m("t");
  IRBuilder b(&m);
  Function* f = m.add_function("f", Type::i64());
  BasicBlock* entry = f->add_block("entry");
  BasicBlock* loop = f->add_block("loop");
  BasicBlock* out = f->add_block("out");
  b.set_insert_point(entry);
  b.jmp(loop);
  b.set_insert_point(loop);
  Instruction* i = b.phi(Type::i64(), "i");
  Instruction* next = b.add(i, b.i64(1), "next");
  Instruction* c = b.icmp(CmpPredicate::kSLt, next, b.i64(10), "c");
  b.br(c, loop, out);
  i->add_phi_incoming(b.i64(0), entry);
  i->add_phi_incoming(next, loop);
  b.set_insert_point(out);
  b.ret(i);

  const std::string out_text = print_function(*f);
  EXPECT_NE(out_text.find("%i = phi [0, entry], [%next, loop]"),
            std::string::npos);
  EXPECT_NE(out_text.find("br %c, loop, out"), std::string::npos);
  EXPECT_NE(out_text.find("icmp slt %next, 10"), std::string::npos);
  EXPECT_TRUE(verify_module(m).is_ok());
}

}  // namespace
}  // namespace owl::ir
