// Unit tests for the vulnerable-site taxonomy (§3.2).
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "vuln/sites.hpp"

namespace owl::vuln {
namespace {

class SitesTest : public ::testing::Test {
 protected:
  SitesTest() : b_(&m_) {
    g_ = m_.add_global("g");
    f_ = m_.add_function("f", ir::Type::void_type());
    b_.set_insert_point(f_->add_block("entry"));
  }

  ir::Module m_{"t"};
  ir::IRBuilder b_;
  ir::GlobalVariable* g_;
  ir::Function* f_;
};

TEST_F(SitesTest, MemoryOps) {
  EXPECT_EQ(classify_site(*b_.strcpy_(g_, g_)), SiteType::kMemoryOp);
  EXPECT_EQ(classify_site(*b_.memcpy_(g_, g_, b_.i64(1))),
            SiteType::kMemoryOp);
  EXPECT_EQ(classify_site(*b_.free_ptr(g_)), SiteType::kMemoryOp);
}

TEST_F(SitesTest, PrivilegeFileAndFork) {
  EXPECT_EQ(classify_site(*b_.setuid_(b_.i64(0))), SiteType::kPrivilegeOp);
  EXPECT_EQ(classify_site(*b_.file_access(b_.i64(1))), SiteType::kFileOp);
  EXPECT_EQ(classify_site(*b_.file_open(b_.i64(1))), SiteType::kFileOp);
  EXPECT_EQ(classify_site(*b_.file_write(b_.i64(3), g_, b_.i64(1))),
            SiteType::kFileOp);
  EXPECT_EQ(classify_site(*b_.fork_()), SiteType::kProcessFork);
  EXPECT_EQ(classify_site(*b_.eval_(b_.i64(1))), SiteType::kProcessFork);
}

TEST_F(SitesTest, IndirectCallIsAlwaysASite) {
  ir::Instruction* ld = b_.load(g_);
  EXPECT_EQ(classify_site(*b_.callptr(ld, {})), SiteType::kNullFuncPtrDeref);
}

TEST_F(SitesTest, PlainComputationIsNotASite) {
  ir::Instruction* v = b_.load(g_);
  EXPECT_FALSE(classify_site(*v).has_value());
  EXPECT_FALSE(classify_site(*b_.add(v, v)).has_value());
  EXPECT_FALSE(
      classify_site(*b_.icmp(ir::CmpPredicate::kEq, v, v)).has_value());
}

TEST_F(SitesTest, ScalarStoreIsNotASitePointerStoreIs) {
  ir::Instruction* v = b_.load(g_);              // i64 value
  EXPECT_FALSE(classify_site(*b_.store(v, g_)).has_value());
  ir::Instruction* p = b_.gep(g_, b_.i64(0));    // ptr value
  EXPECT_EQ(classify_site(*b_.store(p, g_)), SiteType::kPointerAssign);
}

TEST_F(SitesTest, PointerDerefNeedsCorruptedPointer) {
  ir::Instruction* ld = b_.load(g_);
  EXPECT_FALSE(classify_pointer_deref(*ld, false).has_value());
  EXPECT_EQ(classify_pointer_deref(*ld, true), SiteType::kNullPtrDeref);
  ir::Instruction* st = b_.store(b_.i64(1), g_);
  EXPECT_EQ(classify_pointer_deref(*st, true), SiteType::kNullPtrDeref);
  // Non-dereferencing instructions never classify.
  ir::Instruction* add = b_.add(ld, ld);
  EXPECT_FALSE(classify_pointer_deref(*add, true).has_value());
}

TEST_F(SitesTest, PointerOperandIndex) {
  ir::Instruction* ld = b_.load(g_);
  EXPECT_EQ(pointer_operand_index(*ld), 0u);
  ir::Instruction* st = b_.store(b_.i64(1), g_);
  EXPECT_EQ(pointer_operand_index(*st), 1u);
  ir::Instruction* cp = b_.callptr(ld, {});
  EXPECT_EQ(pointer_operand_index(*cp), 0u);
  EXPECT_EQ(pointer_operand_index(*b_.add(ld, ld)), SIZE_MAX);
}

TEST_F(SitesTest, AllTypeNamesDistinct) {
  const SiteType all[] = {
      SiteType::kMemoryOp,      SiteType::kNullPtrDeref,
      SiteType::kNullFuncPtrDeref, SiteType::kPrivilegeOp,
      SiteType::kFileOp,        SiteType::kProcessFork,
      SiteType::kPointerAssign,
  };
  for (const SiteType a : all) {
    for (const SiteType b : all) {
      if (a != b) {
        EXPECT_NE(site_type_name(a), site_type_name(b));
      }
    }
    EXPECT_NE(site_type_name(a), "?");
  }
}

}  // namespace
}  // namespace owl::vuln
