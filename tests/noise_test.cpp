// Property tests for the noise generators: each benign-race class must be
// pruned by exactly the pipeline stage that prunes its real-world
// counterpart (this is what makes the Table 1/3 shapes emergent rather
// than hard-coded — see EXPERIMENTS.md "substitution caveats").
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/verifier.hpp"
#include "ir/builder.hpp"
#include "workloads/noise.hpp"
#include "workloads/workload.hpp"

namespace owl::workloads {
namespace {

/// Builds a module containing only the given noise plus a main spawning it.
std::shared_ptr<ir::Module> noise_module(const NoiseSpec& spec) {
  auto module = std::make_shared<ir::Module>("noise_only");
  const std::vector<const ir::Function*> entries = add_noise(*module, spec);
  ir::IRBuilder b(module.get());
  ir::Function* main_fn = module->add_function("main", ir::Type::void_type());
  b.set_insert_point(main_fn->add_block("entry"));
  std::vector<ir::Instruction*> tids;
  for (const ir::Function* entry : entries) {
    tids.push_back(
        b.thread_create(const_cast<ir::Function*>(entry), b.i64(0)));
  }
  for (ir::Instruction* tid : tids) b.thread_join(tid);
  b.ret();
  EXPECT_TRUE(ir::verify_module(*module).is_ok());
  return module;
}

core::PipelineResult run_noise(const NoiseSpec& spec,
                               core::PipelineOptions options = {}) {
  std::shared_ptr<ir::Module> module = noise_module(spec);
  core::PipelineTarget target;
  target.name = "noise";
  target.module = module.get();
  target.factory = [module] {
    auto machine =
        std::make_unique<interp::Machine>(*module, interp::MachineOptions{});
    machine->start(module->find_function("main"));
    return machine;
  };
  target.detection_schedules = 3;
  return core::Pipeline(options).run(target);
}

TEST(NoiseTest, AdhocGroupsArePrunedAtAnnotation) {
  NoiseSpec spec;
  spec.tag = "tn";
  spec.adhoc_groups = 3;
  spec.adhoc_guarded = 4;
  const core::PipelineResult result = run_noise(spec);
  // Raw: each group reports its flag pair + guarded-cell pairs.
  EXPECT_GE(result.counts.raw_reports, 3u * 5u);
  // The §5.1 classifier finds exactly one sync per group...
  EXPECT_EQ(result.counts.adhoc_syncs, 3u);
  // ...and the annotated re-run prunes everything.
  EXPECT_EQ(result.counts.after_annotation, 0u);
}

TEST(NoiseTest, PublicationChainDiesAtTheRaceVerifier) {
  NoiseSpec spec;
  spec.tag = "tp";
  spec.publication_depth = 6;
  const core::PipelineResult result = run_noise(spec);
  // Raw: a slot pair and a gate pair per level.
  EXPECT_GE(result.counts.raw_reports, 10u);
  EXPECT_EQ(result.counts.adhoc_syncs, 0u);
  // Every report except the outermost gate is unreproducible.
  EXPECT_EQ(result.counts.remaining, 1u);
  EXPECT_EQ(result.counts.verifier_eliminated,
            result.counts.after_annotation - 1);
}

TEST(NoiseTest, CountersSurviveTheWholeFrontEnd) {
  NoiseSpec spec;
  spec.tag = "tc";
  spec.counters = 4;
  const core::PipelineResult result = run_noise(spec);
  // Two reports per counter (read-write and write-write), all genuine,
  // all reproducible.
  EXPECT_EQ(result.counts.raw_reports, 8u);
  EXPECT_EQ(result.counts.remaining, 8u);
  // But none of them reaches a vulnerable site.
  EXPECT_EQ(result.counts.vulnerability_reports, 0u);
}

TEST(NoiseTest, SafeSitesBecomeResidualReportsNotAttacks) {
  NoiseSpec spec;
  spec.tag = "ts";
  spec.safe_site_groups = 2;
  const core::PipelineResult result = run_noise(spec);
  EXPECT_GE(result.counts.remaining, 2u);
  // The bounded memcpy is statically reachable from the racy counter...
  EXPECT_GE(result.counts.vulnerability_reports, 2u);
  // ...but no attack is realizable (len is masked to < buffer size).
  EXPECT_EQ(result.confirmed_attacks(), 0u);
}

TEST(NoiseTest, MixedSpecStagesCompose) {
  NoiseSpec spec;
  spec.tag = "tm";
  spec.adhoc_groups = 2;
  spec.adhoc_guarded = 3;
  spec.publication_depth = 4;
  spec.counters = 2;
  const core::PipelineResult result = run_noise(spec);
  EXPECT_EQ(result.counts.adhoc_syncs, 2u);
  // Remaining = counters (4) + the one publication gate.
  EXPECT_EQ(result.counts.remaining, 5u);
}

TEST(NoiseTest, EmptySpecAddsNothing) {
  NoiseSpec spec;
  spec.tag = "te";
  auto module = noise_module(spec);
  // Only @main exists.
  EXPECT_EQ(module->functions().size(), 1u);
  const core::PipelineResult result = run_noise(spec);
  EXPECT_EQ(result.counts.raw_reports, 0u);
}

TEST(NoiseTest, NoiseSourceFilesAreMarked) {
  NoiseSpec spec;
  spec.tag = "tg";
  spec.counters = 1;
  auto module = noise_module(spec);
  for (const auto& f : module->functions()) {
    if (f->name() == "main") continue;
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (!instr->loc().valid()) continue;
        EXPECT_NE(instr->loc().file.find("noise"), std::string::npos)
            << instr->summary();
      }
    }
  }
}

}  // namespace
}  // namespace owl::workloads
