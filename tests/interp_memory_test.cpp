// Unit tests for the simulated memory (object bounds, liveness, faults).
#include <gtest/gtest.h>

#include "interp/memory.hpp"

namespace owl::interp {
namespace {

TEST(MemoryTest, AllocateInitializesCells) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kGlobal, 4, 9, "g");
  for (int i = 0; i < 4; ++i) {
    Word v = 0;
    EXPECT_EQ(mem.load(a + static_cast<Address>(i) * 8, v), MemFault::kNone);
    EXPECT_EQ(v, 9);
  }
}

TEST(MemoryTest, StoreThenLoad) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kHeap, 2, 0);
  EXPECT_EQ(mem.store(a + 8, 42), MemFault::kNone);
  Word v = 0;
  EXPECT_EQ(mem.load(a + 8, v), MemFault::kNone);
  EXPECT_EQ(v, 42);
}

TEST(MemoryTest, NullGuardPage) {
  Memory mem;
  Word v = 0;
  EXPECT_EQ(mem.load(0, v), MemFault::kNullDeref);
  EXPECT_EQ(mem.load(8, v), MemFault::kNullDeref);
  EXPECT_EQ(mem.store(4095, 1), MemFault::kNullDeref);
}

TEST(MemoryTest, OutOfBoundsBetweenObjects) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kHeap, 1, 0);
  Word v = 0;
  // The red-zone cell after the object is unmapped.
  EXPECT_EQ(mem.load(a + 8, v), MemFault::kOutOfBounds);
}

TEST(MemoryTest, UnalignedAccessRoundsDown) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kHeap, 1, 0);
  EXPECT_EQ(mem.store(a + 3, 5), MemFault::kNone);
  Word v = 0;
  EXPECT_EQ(mem.load(a, v), MemFault::kNone);
  EXPECT_EQ(v, 5);
}

TEST(MemoryTest, FreeMarksObjectAndDetectsUseAfterFree) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kHeap, 2, 7);
  EXPECT_EQ(mem.free_heap(a), MemFault::kNone);
  Word v = 0;
  EXPECT_EQ(mem.load(a, v), MemFault::kUseAfterFree);
  // The stale value is still observable (what UAF exploits read).
  EXPECT_EQ(mem.load_raw(a), 7);
  EXPECT_EQ(mem.store(a, 1), MemFault::kUseAfterFree);
}

TEST(MemoryTest, DoubleFree) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kHeap, 1, 0);
  EXPECT_EQ(mem.free_heap(a), MemFault::kNone);
  EXPECT_EQ(mem.free_heap(a), MemFault::kDoubleFree);
}

TEST(MemoryTest, BadFree) {
  Memory mem;
  const Address g = mem.allocate(ObjectKind::kGlobal, 1, 0, "g");
  EXPECT_EQ(mem.free_heap(g), MemFault::kBadFree);  // not heap
  const Address h = mem.allocate(ObjectKind::kHeap, 2, 0);
  EXPECT_EQ(mem.free_heap(h + 8), MemFault::kBadFree);  // interior pointer
  EXPECT_EQ(mem.free_heap(0), MemFault::kNullDeref);
}

TEST(MemoryTest, PopFrameKillsStackObjects) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kStack, 1, 0, "buf", 7);
  const Address b = mem.allocate(ObjectKind::kStack, 1, 0, "buf2", 8);
  mem.pop_frame(7);
  Word v = 0;
  EXPECT_EQ(mem.load(a, v), MemFault::kUseAfterFree);
  EXPECT_EQ(mem.load(b, v), MemFault::kNone);  // different frame survives
}

TEST(MemoryTest, FindObjectAndRemainingCells) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kGlobal, 8, 0, "outbuf");
  const MemObject* obj = mem.find_object(a + 24);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->name, "outbuf");
  EXPECT_EQ(obj->base, a);
  EXPECT_EQ(mem.cells_until_end(a), 8u);
  EXPECT_EQ(mem.cells_until_end(a + 7 * 8), 1u);
  EXPECT_EQ(mem.cells_until_end(a + 8 * 8), 0u);
  EXPECT_EQ(mem.find_object(a + 8 * 8), nullptr);
}

TEST(MemoryTest, RawWritesIgnoreBounds) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kHeap, 1, 0);
  // Writing the red zone raw works (models corruption spilling over).
  mem.store_raw(a + 8, 123);
  EXPECT_EQ(mem.load_raw(a + 8), 123);
}

TEST(MemoryTest, ObjectsAreContiguousWithRedZone) {
  Memory mem;
  const Address a = mem.allocate(ObjectKind::kGlobal, 2, 0, "a");
  const Address b = mem.allocate(ObjectKind::kGlobal, 1, 0, "b");
  // One 8-byte red-zone cell between objects: overflow index cells+1
  // lands exactly at the next object (the Libsafe ret-slot layout).
  EXPECT_EQ(b, a + 2 * 8 + 8);
}

}  // namespace
}  // namespace owl::interp
