// Tests for automated race repair (DESIGN.md §13): transform-layer
// round-trip stability, planner strategy selection on hand-built modules,
// verification-gate rejection of a deadlocking candidate, end-to-end
// repair of the shipped examples, jobs=1-vs-jobs=4 and off-mode
// byte-identity, and fault-injection degradation of the repair stage.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static_info.hpp"
#include "core/pipeline.hpp"
#include "core/render.hpp"
#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/transform.hpp"
#include "ir/verifier.hpp"
#include "repair/engine.hpp"
#include "repair/planner.hpp"
#include "support/fault_injector.hpp"
#include "support/metrics.hpp"

namespace owl::repair {
namespace {

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

std::shared_ptr<ir::Module> load_example(const std::string& name) {
  std::ifstream in(std::filesystem::path(OWL_EXAMPLES_DIR) / name);
  EXPECT_TRUE(in.good()) << "cannot open " << name;
  std::ostringstream text;
  text << in.rdbuf();
  return parse_ok(text.str());
}

/// Pipeline target with both the plain factory and the module-agnostic
/// factory hook the repair engine needs, wired like owl_cli does.
core::PipelineTarget target_for(const std::shared_ptr<ir::Module>& m,
                                const std::string& name) {
  core::PipelineTarget t;
  t.name = name;
  t.module = m.get();
  t.factory = [m] {
    auto machine =
        std::make_unique<interp::Machine>(*m, interp::MachineOptions{});
    machine->start(m->find_function("main"));
    return machine;
  };
  t.factory_for_module = [](std::shared_ptr<const ir::Module> patched) {
    return race::MachineFactory([patched] {
      auto machine =
          std::make_unique<interp::Machine>(*patched,
                                            interp::MachineOptions{});
      machine->start(patched->find_function("main"));
      return machine;
    });
  };
  return t;
}

const ir::Instruction* instr_at(const ir::Module& m, const std::string& func,
                                std::size_t index) {
  const ir::Function* f = m.find_function(func);
  EXPECT_NE(f, nullptr) << func;
  return f->blocks().front()->instructions()[index].get();
}

race::RaceReport confirmed_pair(const ir::Instruction* first,
                                const ir::Instruction* second,
                                const std::string& object) {
  race::RaceReport report;
  report.first.instr = first;
  report.second.instr = second;
  report.object_name = object;
  report.verified = true;
  return report;
}

// --- ir/transform ----------------------------------------------------------

constexpr std::string_view kRacyPair = R"(
module racy
global @x [1] = 0

func @a() {
entry:
  store 1, @x                     !a.c:1
  ret
}

func @b() {
entry:
  store 2, @x                     !b.c:1
  ret
}

func @main() {
entry:
  %t1 = thread_create @a, 0
  %t2 = thread_create @b, 0
  thread_join %t1
  thread_join %t2
  ret
}
)";

TEST(TransformTest, CloneIsCanonicalAndIndependent) {
  auto m = parse_ok(kRacyPair);
  auto clone = ir::clone_module(*m);
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(ir::print_module(*m), ir::print_module(*clone));
  // Editing the clone leaves the original untouched.
  ASSERT_NE(ir::add_mutex_global(*clone, "__owl_fix"), nullptr);
  EXPECT_EQ(m->find_global("__owl_fix"), nullptr);
  EXPECT_NE(clone->find_global("__owl_fix"), nullptr);
}

TEST(TransformTest, GuardRangeRoundTripsThroughPrintAndParse) {
  auto m = parse_ok(kRacyPair);
  auto patched = ir::clone_module(*m);
  ASSERT_NE(ir::add_mutex_global(*patched, "__owl_fix"), nullptr);
  ASSERT_TRUE(ir::guard_range(*patched, {"a", "entry", 0}, 0, "__owl_fix"));
  ASSERT_TRUE(ir::guard_range(*patched, {"b", "entry", 0}, 0, "__owl_fix"));

  // Parse(print(patched)) must verify and re-print byte-identically: the
  // emitted *_fixed.mir is this very text.
  const std::string text = ir::print_module(*patched);
  auto reparsed = parse_ok(text);
  EXPECT_EQ(ir::print_module(*reparsed), text);

  // The guard really is lock; store; unlock.
  const ir::Function* a = reparsed->find_function("a");
  ASSERT_NE(a, nullptr);
  const auto& instrs = a->blocks().front()->instructions();
  ASSERT_GE(instrs.size(), 4u);
  EXPECT_EQ(instrs[0]->opcode(), ir::Opcode::kLock);
  EXPECT_EQ(instrs[1]->opcode(), ir::Opcode::kStore);
  EXPECT_EQ(instrs[2]->opcode(), ir::Opcode::kUnlock);
}

TEST(TransformTest, GuardRangeRejectsTerminatorAndBadCoords) {
  auto m = parse_ok(kRacyPair);
  auto patched = ir::clone_module(*m);
  ASSERT_NE(ir::add_mutex_global(*patched, "__owl_fix"), nullptr);
  // Range covering `ret` (index 1) is rejected.
  EXPECT_FALSE(ir::guard_range(*patched, {"a", "entry", 0}, 1, "__owl_fix"));
  EXPECT_FALSE(ir::guard_range(*patched, {"nope", "entry", 0}, 0,
                               "__owl_fix"));
  EXPECT_FALSE(ir::guard_range(*patched, {"a", "entry", 0}, 0, "no_mutex"));
}

TEST(TransformTest, MoveAfterHandlesSameBlockShift) {
  auto m = parse_ok(R"(
module mv
global @g [1] = 0

func @main() {
entry:
  %t = thread_create @w, 0
  store 7, @g
  thread_join %t
  ret
}

func @w() {
entry:
  %v = load @g
  ret
}
)");
  auto patched = ir::clone_module(*m);
  // Move the store (index 1) after the join (index 2).
  ASSERT_TRUE(ir::move_after(*patched, {"main", "entry", 1},
                             {"main", "entry", 2}));
  const auto& instrs =
      patched->find_function("main")->blocks().front()->instructions();
  EXPECT_EQ(instrs[0]->opcode(), ir::Opcode::kThreadCreate);
  EXPECT_EQ(instrs[1]->opcode(), ir::Opcode::kThreadJoin);
  EXPECT_EQ(instrs[2]->opcode(), ir::Opcode::kStore);
  // And the result still round-trips.
  const std::string text = ir::print_module(*patched);
  EXPECT_EQ(ir::print_module(*parse_ok(text)), text);
}

TEST(TransformTest, AddMutexGlobalAvoidsCollisions) {
  auto m = parse_ok(kRacyPair);
  auto clone = ir::clone_module(*m);
  ir::GlobalVariable* first = ir::add_mutex_global(*clone, "x");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name(), "x_2");  // @x exists already
}

// --- repair/planner --------------------------------------------------------

TEST(RepairPlannerTest, LockInsertIsTheFallbackAndCoversAllObjectAccesses) {
  auto m = parse_ok(kRacyPair);
  analysis::ModuleStatic statics(*m);
  RepairPlanner planner(*m, statics);
  const auto candidates = planner.plan({confirmed_pair(
      instr_at(*m, "a", 0), instr_at(*m, "b", 0), "x")});
  ASSERT_EQ(candidates.size(), 1u);  // no locks, nothing movable
  EXPECT_EQ(candidates[0].strategy, Strategy::kLockInsert);
  EXPECT_EQ(candidates[0].lock, "__owl_fix");
  ASSERT_EQ(candidates[0].guards.size(), 2u);
}

TEST(RepairPlannerTest, LockReusePrefersAnExistingProtectingLock) {
  auto m = parse_ok(R"(
module reuse
global @x [1] = 0
global @m [1] = 0

func @safe() {
entry:
  lock @m
  %v = load @x                    !s.c:1
  unlock @m
  ret
}

func @a() {
entry:
  store 1, @x                     !a.c:1
  ret
}

func @b() {
entry:
  store 2, @x                     !b.c:1
  ret
}

func @main() {
entry:
  %t1 = thread_create @a, 0
  %t2 = thread_create @b, 0
  thread_join %t1
  thread_join %t2
  ret
}
)");
  analysis::ModuleStatic statics(*m);
  RepairPlanner planner(*m, statics);
  const auto candidates = planner.plan({confirmed_pair(
      instr_at(*m, "a", 0), instr_at(*m, "b", 0), "x")});
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].strategy, Strategy::kLockReuse);
  EXPECT_EQ(candidates[0].lock, "m");
  // The evidence site in @safe already holds @m and must NOT be guarded
  // again (self-deadlock); the two racy stores must be.
  for (const GuardSpan& span : candidates[0].guards) {
    EXPECT_NE(span.first.function, "safe") << span.first.to_string();
  }
  EXPECT_EQ(candidates.back().strategy, Strategy::kLockInsert);
}

TEST(RepairPlannerTest, RelocatePlannedForMovableSpawnWindowStore) {
  auto m = load_example("spawn_window.mir");
  analysis::ModuleStatic statics(*m);
  RepairPlanner planner(*m, statics);
  const auto candidates = planner.plan({confirmed_pair(
      instr_at(*m, "worker", 0), instr_at(*m, "main", 1), "progress")});
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].strategy, Strategy::kRelocate);
  ASSERT_EQ(candidates[0].moves.size(), 1u);
  EXPECT_EQ(candidates[0].moves[0].from,
            (ir::InstrCoord{"main", "entry", 1}));
  EXPECT_EQ(candidates[0].moves[0].after,
            (ir::InstrCoord{"main", "entry", 2}));
}

// --- repair/engine gates ---------------------------------------------------

core::PipelineOptions repair_options() {
  core::PipelineOptions options;
  options.jobs = 1;
  options.repair.enabled = true;
  return options;
}

TEST(RepairEngineTest, RepairsTheLostUpdateExample) {
  auto m = load_example("lost_update.mir");
  const auto results = core::Pipeline(repair_options())
                           .run_many({target_for(m, "lost_update.mir")});
  ASSERT_EQ(results.size(), 1u);
  const RepairReport& repair = results[0].repair;
  EXPECT_TRUE(results[0].repair_ran);
  EXPECT_EQ(repair.status, "repaired");
  EXPECT_EQ(repair.strategy, "lock_insert");
  EXPECT_EQ(repair.lock, "__owl_fix");
  EXPECT_EQ(repair.fixed_module, "lost_update_fixed.mir");
  EXPECT_TRUE(repair.gate_race_free);
  EXPECT_TRUE(repair.gate_no_new_findings);
  EXPECT_TRUE(repair.gate_output_equal);
  EXPECT_FALSE(repair.patched_text.empty());
  // The patch parses, verifies, and is already canonical.
  auto fixed = parse_ok(repair.patched_text);
  EXPECT_EQ(ir::print_module(*fixed), repair.patched_text);
  support::metrics().clear_for_test();
}

TEST(RepairEngineTest, GatesRejectADeadlockingCandidate) {
  // The only plannable candidate here is a fresh-lock guard over main's
  // span of @slot accesses — which includes the thread_join, so the
  // patched module deadlocks (main holds the lock across the join while
  // the worker needs it). The output-equivalence gate must notice and the
  // report must come back unrepaired rather than shipping a deadlock.
  // (The store's value is computed, so relocation is not plannable.)
  auto m = parse_ok(R"(
module wedge
global @slot [1] = 0

func @worker() {
entry:
  %v = load @slot                 !w.c:1
  ret
}

func @main() {
entry:
  %t = thread_create @worker, 0
  %x = load @slot                 !m.c:1
  %y = add %x, 1
  store %y, @slot                 !m.c:2
  thread_join %t
  %z = load @slot                 !m.c:3
  print %z
  ret
}
)");
  const auto results =
      core::Pipeline(repair_options()).run_many({target_for(m, "wedge.mir")});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].repair_ran);
  const RepairReport& repair = results[0].repair;
  ASSERT_GT(results[0].counts.remaining, 0u)
      << "planted race was not confirmed; the gate test needs it";
  EXPECT_EQ(repair.status, "unrepaired");
  EXPECT_GE(repair.candidates_tried, 1u);
  EXPECT_FALSE(repair.gate_output_equal);
  EXPECT_TRUE(repair.patched_text.empty());
  support::metrics().clear_for_test();
}

TEST(RepairEngineTest, NoRacesShortCircuits) {
  auto m = load_example("lock_cycle.mir");
  const auto results = core::Pipeline(repair_options())
                           .run_many({target_for(m, "lock_cycle.mir")});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].repair_ran);
  EXPECT_EQ(results[0].repair.status, "no_races");
  EXPECT_EQ(results[0].repair.candidates_tried, 0u);
  support::metrics().clear_for_test();
}

TEST(RepairEngineTest, MissingModuleFactoryDegradesTheStage) {
  auto m = load_example("lost_update.mir");
  core::PipelineTarget target = target_for(m, "lost_update.mir");
  target.factory_for_module = nullptr;  // serve/CLI always set it; a bare
                                        // library caller might not
  const auto results =
      core::Pipeline(repair_options()).run_many({target});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].repair_ran);
  EXPECT_TRUE(results[0].degraded());
  EXPECT_EQ(results[0].repair.status, "unrepaired");
  ASSERT_FALSE(results[0].counts.failures.empty());
  EXPECT_EQ(results[0].counts.failures[0].stage,
            support::PipelineStage::kRepair);
  support::metrics().clear_for_test();
}

// --- byte-identity ---------------------------------------------------------

TEST(RepairPipelineTest, JobsOneVersusFourIsByteIdentical) {
  const std::vector<std::string> names = {"lost_update.mir",
                                          "spawn_window.mir",
                                          "double_unlock.mir"};
  std::string rendered[2];
  for (int i = 0; i < 2; ++i) {
    std::vector<std::shared_ptr<ir::Module>> modules;
    std::vector<core::PipelineTarget> targets;
    for (const std::string& name : names) {
      modules.push_back(load_example(name));
      targets.push_back(target_for(modules.back(), name));
    }
    core::PipelineOptions options = repair_options();
    options.jobs = i == 0 ? 1 : 4;
    const auto results = core::Pipeline(options).run_many(targets);
    for (const core::PipelineResult& result : results) {
      rendered[i] += core::serialize_result(result);
      rendered[i] += core::render_cli_summary(result);
      rendered[i] += core::render_cli_details(result, true);
    }
    support::metrics().clear_for_test();
  }
  EXPECT_EQ(rendered[0], rendered[1]);
}

TEST(RepairPipelineTest, OffModeNeverMentionsRepair) {
  auto m = load_example("lost_update.mir");
  core::PipelineOptions options;
  options.jobs = 1;  // repair.enabled stays default-off
  const auto results = core::Pipeline(options)
                           .run_many({target_for(m, "lost_update.mir")});
  ASSERT_EQ(results.size(), 1u);
  const core::PipelineResult& result = results[0];
  EXPECT_FALSE(result.repair_ran);
  EXPECT_TRUE(result.repair.status.empty());
  for (const std::string& rendered :
       {core::serialize_result(result), core::render_cli_summary(result),
        core::render_cli_details(result, true),
        result.counts.serialize()}) {
    EXPECT_EQ(rendered.find("repair"), std::string::npos);
  }
  EXPECT_EQ(support::metrics().serialize().find("repair"),
            std::string::npos);
  support::metrics().clear_for_test();
}

// --- fault injection -------------------------------------------------------

TEST(RepairFaultTest, InjectedThrowDegradesNotDies) {
  auto m = load_example("lost_update.mir");
  support::FaultInjector injector(1);
  support::FaultPlan plan;
  ASSERT_TRUE(support::parse_fault_plan("repair:throw", plan));
  EXPECT_EQ(plan.stage, support::PipelineStage::kRepair);
  injector.add_plan(plan);
  core::PipelineOptions options = repair_options();
  options.fault_injector = &injector;
  const auto results = core::Pipeline(options)
                           .run_many({target_for(m, "lost_update.mir")});
  ASSERT_EQ(results.size(), 1u);
  const core::PipelineResult& result = results[0];
  EXPECT_TRUE(result.repair_ran);
  EXPECT_TRUE(result.degraded());
  EXPECT_EQ(result.repair.status, "unrepaired");
  ASSERT_FALSE(result.counts.failures.empty());
  EXPECT_EQ(result.counts.failures[0].stage,
            support::PipelineStage::kRepair);
  EXPECT_EQ(result.counts.failures[0].cause,
            support::FailureCause::kException);
  // The verified races from the earlier stages survive degradation.
  EXPECT_GT(result.counts.remaining, 0u);
  support::metrics().clear_for_test();
}

}  // namespace
}  // namespace owl::repair
