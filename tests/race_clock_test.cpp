// Unit tests for vector clocks.
#include <gtest/gtest.h>

#include "race/vector_clock.hpp"

namespace owl::race {
namespace {

TEST(VectorClockTest, DefaultIsEmptyAndZero) {
  VectorClock c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(100), 0u);
}

TEST(VectorClockTest, IncrementAndGet) {
  VectorClock c;
  c.increment(2);
  c.increment(2);
  c.increment(0);
  EXPECT_EQ(c.get(2), 2u);
  EXPECT_EQ(c.get(0), 1u);
  EXPECT_EQ(c.get(1), 0u);
  EXPECT_FALSE(c.empty());
}

TEST(VectorClockTest, JoinIsPointwiseMax) {
  VectorClock a;
  a.set(0, 5);
  a.set(1, 1);
  VectorClock b;
  b.set(1, 3);
  b.set(2, 7);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 3u);
  EXPECT_EQ(a.get(2), 7u);
}

TEST(VectorClockTest, LeqPartialOrder) {
  VectorClock a;
  a.set(0, 1);
  VectorClock b;
  b.set(0, 2);
  b.set(1, 1);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));

  VectorClock c;
  c.set(1, 5);
  // a and c are concurrent: neither leq the other.
  EXPECT_FALSE(a.leq(c));
  EXPECT_FALSE(c.leq(a));
  // Reflexive.
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClockTest, EmptyLeqEverything) {
  VectorClock empty;
  VectorClock any;
  any.set(3, 9);
  EXPECT_TRUE(empty.leq(any));
  EXPECT_TRUE(empty.leq(empty));
}

TEST(VectorClockTest, EpochLeq) {
  VectorClock c;
  c.set(1, 4);
  EXPECT_TRUE(VectorClock::epoch_leq(1, 4, c));
  EXPECT_TRUE(VectorClock::epoch_leq(1, 3, c));
  EXPECT_FALSE(VectorClock::epoch_leq(1, 5, c));
  EXPECT_FALSE(VectorClock::epoch_leq(2, 1, c));
}

TEST(VectorClockTest, JoinGrowsCapacity) {
  VectorClock a;
  VectorClock b;
  b.set(9, 2);
  a.join(b);
  EXPECT_EQ(a.get(9), 2u);
  EXPECT_GE(a.size(), 10u);
}

TEST(VectorClockTest, ToString) {
  VectorClock c;
  c.set(0, 1);
  c.set(2, 3);
  EXPECT_EQ(c.to_string(), "[1,0,3]");
  EXPECT_EQ(VectorClock().to_string(), "[]");
}

// Happens-before transitivity through join: if a <= b and b <= c then
// a <= c (exercised as the release/acquire composition the detector uses).
TEST(VectorClockTest, TransitivityThroughJoin) {
  VectorClock a;
  a.set(0, 2);
  VectorClock b = a;
  b.set(1, 1);
  VectorClock c = b;
  c.set(2, 4);
  EXPECT_TRUE(a.leq(b));
  EXPECT_TRUE(b.leq(c));
  EXPECT_TRUE(a.leq(c));
}

}  // namespace
}  // namespace owl::race
