// Unit tests for vector clocks.
#include <gtest/gtest.h>

#include "race/vector_clock.hpp"

namespace owl::race {
namespace {

TEST(VectorClockTest, DefaultIsEmptyAndZero) {
  VectorClock c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(100), 0u);
}

TEST(VectorClockTest, IncrementAndGet) {
  VectorClock c;
  c.increment(2);
  c.increment(2);
  c.increment(0);
  EXPECT_EQ(c.get(2), 2u);
  EXPECT_EQ(c.get(0), 1u);
  EXPECT_EQ(c.get(1), 0u);
  EXPECT_FALSE(c.empty());
}

TEST(VectorClockTest, JoinIsPointwiseMax) {
  VectorClock a;
  a.set(0, 5);
  a.set(1, 1);
  VectorClock b;
  b.set(1, 3);
  b.set(2, 7);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 3u);
  EXPECT_EQ(a.get(2), 7u);
}

TEST(VectorClockTest, LeqPartialOrder) {
  VectorClock a;
  a.set(0, 1);
  VectorClock b;
  b.set(0, 2);
  b.set(1, 1);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));

  VectorClock c;
  c.set(1, 5);
  // a and c are concurrent: neither leq the other.
  EXPECT_FALSE(a.leq(c));
  EXPECT_FALSE(c.leq(a));
  // Reflexive.
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClockTest, EmptyLeqEverything) {
  VectorClock empty;
  VectorClock any;
  any.set(3, 9);
  EXPECT_TRUE(empty.leq(any));
  EXPECT_TRUE(empty.leq(empty));
}

TEST(VectorClockTest, EpochLeq) {
  VectorClock c;
  c.set(1, 4);
  EXPECT_TRUE(VectorClock::epoch_leq(1, 4, c));
  EXPECT_TRUE(VectorClock::epoch_leq(1, 3, c));
  EXPECT_FALSE(VectorClock::epoch_leq(1, 5, c));
  EXPECT_FALSE(VectorClock::epoch_leq(2, 1, c));
}

TEST(VectorClockTest, JoinGrowsCapacity) {
  VectorClock a;
  VectorClock b;
  b.set(9, 2);
  a.join(b);
  EXPECT_EQ(a.get(9), 2u);
  EXPECT_GE(a.size(), 10u);
}

TEST(VectorClockTest, ToString) {
  VectorClock c;
  c.set(0, 1);
  c.set(2, 3);
  EXPECT_EQ(c.to_string(), "[1,0,3]");
  EXPECT_EQ(VectorClock().to_string(), "[]");
}

// Happens-before transitivity through join: if a <= b and b <= c then
// a <= c (exercised as the release/acquire composition the detector uses).
TEST(VectorClockTest, TransitivityThroughJoin) {
  VectorClock a;
  a.set(0, 2);
  VectorClock b = a;
  b.set(1, 1);
  VectorClock c = b;
  c.set(2, 4);
  EXPECT_TRUE(a.leq(b));
  EXPECT_TRUE(b.leq(c));
  EXPECT_TRUE(a.leq(c));
}


// --- edge cases for the fast-substrate rework ---

// leq across clocks of different lengths: components past the shorter
// clock's end compare against an implicit 0 in both directions.
TEST(VectorClockTest, LeqDifferentLengths) {
  VectorClock shorter;
  shorter.set(0, 1);
  VectorClock longer;
  longer.set(0, 1);
  longer.set(5, 3);
  EXPECT_TRUE(shorter.leq(longer));
  EXPECT_FALSE(longer.leq(shorter));  // longer[5]=3 > implicit 0

  // A longer clock whose tail is all zeros still leq's a shorter one.
  VectorClock padded;
  padded.set(0, 1);
  padded.set(7, 0);
  EXPECT_TRUE(padded.leq(shorter));
  EXPECT_TRUE(shorter.leq(padded));
}

// epoch_leq at the boundary epoch 0: epoch 0 happens-before everything,
// including a clock that has never seen the thread at all.
TEST(VectorClockTest, EpochLeqAtBoundaryZero) {
  const VectorClock empty;
  EXPECT_TRUE(VectorClock::epoch_leq(0, 0, empty));
  EXPECT_TRUE(VectorClock::epoch_leq(99, 0, empty));
  EXPECT_FALSE(VectorClock::epoch_leq(0, 1, empty));
  VectorClock c;
  c.set(3, 2);
  EXPECT_TRUE(VectorClock::epoch_leq(3, 0, c));
  EXPECT_TRUE(VectorClock::epoch_leq(4, 0, c));  // past the end
  EXPECT_FALSE(VectorClock::epoch_leq(4, 1, c));
}

// Join growth: size lands exactly on the source size (to_string/size are
// observable), while capacity grows geometrically so interleaved
// single-tid growth does not reallocate per element.
TEST(VectorClockTest, JoinGrowthIsExactInSizeGeometricInCapacity) {
  VectorClock a;
  VectorClock b;
  b.set(6, 9);
  a.join(b);
  EXPECT_EQ(a.size(), 7u);           // exact: matches b's size
  EXPECT_GE(a.capacity(), a.size());
  EXPECT_EQ(a.get(6), 9u);
  EXPECT_EQ(a.get(5), 0u);

  // Interleaved increments over increasing tids reuse reserved capacity.
  VectorClock c;
  std::size_t reallocations = 0;
  std::size_t last_capacity = c.capacity();
  for (ThreadId tid = 0; tid < 64; ++tid) {
    c.increment(tid);
    if (c.capacity() != last_capacity) {
      ++reallocations;
      last_capacity = c.capacity();
    }
  }
  EXPECT_EQ(c.size(), 64u);
  // Geometric growth: ~log2(64) reallocation steps, not one per tid.
  EXPECT_LE(reallocations, 8u);
  for (ThreadId tid = 0; tid < 64; ++tid) {
    EXPECT_EQ(c.get(tid), 1u);
  }
}

// Joining an empty clock is a strict no-op (the fast substrate relies on
// this for its "never finished" thread slots).
TEST(VectorClockTest, JoinWithEmptyIsNoOp) {
  VectorClock a;
  a.set(2, 5);
  const std::string before = a.to_string();
  a.join(VectorClock());
  EXPECT_EQ(a.to_string(), before);
  EXPECT_EQ(a.size(), 3u);
}

}  // namespace
}  // namespace owl::race
