// Unit tests for the §5.1 adhoc-synchronization detector and annotator.
#include <gtest/gtest.h>

#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "race/tsan_detector.hpp"
#include "sync/annotator.hpp"
#include "sync/syncfinder.hpp"
#include "core/pipeline.hpp"
#include "workloads/registry.hpp"

namespace owl::sync {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

std::vector<race::RaceReport> detect(const ir::Module& m,
                                     const race::AnnotationSet* ann = nullptr,
                                     std::uint64_t seed = 1) {
  interp::Machine machine(m, {});
  race::TsanDetector detector(ann);
  machine.add_observer(&detector);
  machine.start(m.find_function("main"));
  interp::RandomScheduler sched(seed);
  machine.run(sched);
  return detector.take_reports();
}

// Classic busy-wait: "while (!flag) ; use(data);"
const char* kBusyWait = R"(module bw
global @flag
global @data
func @setter() {
entry:
  store 1, @data
  store 1, @flag
  ret
}
func @waiter() {
entry:
  jmp loop
loop:
  %f = load @flag
  %c = icmp eq %f, 0
  br %c, spin, go
spin:
  yield
  jmp loop
go:
  %v = load @data
  ret
}
func @main() {
entry:
  %a = thread_create @setter, 0
  %b = thread_create @waiter, 0
  thread_join %a
  thread_join %b
  ret
}
)";

race::RaceReport find_report_on(const std::vector<race::RaceReport>& reports,
                                std::string_view object) {
  for (const race::RaceReport& r : reports) {
    if (r.object_name == object) return r;
  }
  ADD_FAILURE() << "no report on " << object;
  return {};
}

TEST(AdhocTest, ClassifiesBusyWaitFlag) {
  auto m = parse_ok(kBusyWait);
  auto reports = detect(*m);
  ASSERT_GE(reports.size(), 2u);  // flag pair + data pair

  const AdhocSyncDetector detector(*m);
  race::RaceReport flag_report = find_report_on(reports, "flag");
  const AdhocSyncResult result = detector.classify(flag_report);
  EXPECT_TRUE(result.is_adhoc) << result.reason;
  ASSERT_NE(result.read, nullptr);
  ASSERT_NE(result.write, nullptr);
  ASSERT_NE(result.exit_branch, nullptr);
  EXPECT_EQ(result.read->opcode(), ir::Opcode::kLoad);
  EXPECT_EQ(result.write->opcode(), ir::Opcode::kStore);
}

TEST(AdhocTest, DataPairIsNotAdhoc) {
  auto m = parse_ok(kBusyWait);
  auto reports = detect(*m);
  const AdhocSyncDetector detector(*m);
  race::RaceReport data_report = find_report_on(reports, "data");
  const AdhocSyncResult result = detector.classify(data_report);
  // The data read sits in the "go" block, outside the loop.
  EXPECT_FALSE(result.is_adhoc);
}

TEST(AdhocTest, ReadOutsideLoopRejected) {
  auto m = parse_ok(R"(module nl
global @flag
func @setter() {
entry:
  store 1, @flag
  ret
}
func @reader() {
entry:
  %f = load @flag
  %c = icmp eq %f, 0
  br %c, a, b
a:
  ret
b:
  ret
}
func @main() {
entry:
  %x = thread_create @setter, 0
  %y = thread_create @reader, 0
  thread_join %x
  thread_join %y
  ret
}
)");
  auto reports = detect(*m);
  ASSERT_EQ(reports.size(), 1u);
  const AdhocSyncDetector detector(*m);
  const AdhocSyncResult result = detector.classify(reports.front());
  EXPECT_FALSE(result.is_adhoc);
  EXPECT_NE(result.reason.find("not inside a loop"), std::string::npos);
}

TEST(AdhocTest, NonConstantWriteRejected) {
  auto m = parse_ok(R"(module nc
global @flag
func @setter() {
entry:
  %v = input 0
  store %v, @flag
  ret
}
func @waiter() {
entry:
  jmp loop
loop:
  %f = load @flag
  %c = icmp eq %f, 0
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %a = thread_create @setter, 0
  %b = thread_create @waiter, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  interp::MachineOptions options;
  options.inputs = {1};
  interp::Machine machine(*m, options);
  race::TsanDetector detector_obs;
  machine.add_observer(&detector_obs);
  machine.start(m->find_function("main"));
  interp::RandomScheduler sched(1);
  machine.run(sched);
  auto reports = detector_obs.take_reports();
  ASSERT_GE(reports.size(), 1u);
  const AdhocSyncDetector detector(*m);
  const AdhocSyncResult result = detector.classify(reports.front());
  EXPECT_FALSE(result.is_adhoc);
  EXPECT_NE(result.reason.find("constant"), std::string::npos);
}

// The SSDB shape (Fig. 6): the flag-checked loop does real work — must NOT
// be classified adhoc, or OWL would prune the attack (Table 3: SSDB A.S.=0).
TEST(AdhocTest, WorkingLoopIsNotBusyWait) {
  auto m = parse_ok(R"(module ssdbish
global @quit
global @stat
func @setter() {
entry:
  store 1, @quit
  ret
}
func @cleaner() {
entry:
  jmp loop
loop:
  %q = load @quit
  %c = icmp eq %q, 0
  br %c, work, out
work:
  %s = load @stat
  %s2 = add %s, 1
  store %s2, @stat
  jmp loop
out:
  ret
}
func @main() {
entry:
  %a = thread_create @cleaner, 0
  %b = thread_create @setter, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  auto reports = detect(*m, nullptr, 5);
  const AdhocSyncDetector detector(*m);
  race::RaceReport quit_report = find_report_on(reports, "quit");
  const AdhocSyncResult result = detector.classify(quit_report);
  EXPECT_FALSE(result.is_adhoc);
  EXPECT_NE(result.reason.find("busy-wait"), std::string::npos);
}

TEST(AdhocTest, SleepingPollLoopStillCountsAsBusyWait) {
  auto m = parse_ok(R"(module sp
global @flag
func @setter() {
entry:
  io_delay 5
  store 1, @flag
  ret
}
func @waiter() {
entry:
  jmp loop
loop:
  %f = load @flag
  %c = icmp eq %f, 0
  br %c, spin, out
spin:
  io_delay 2
  jmp loop
out:
  ret
}
func @main() {
entry:
  %a = thread_create @setter, 0
  %b = thread_create @waiter, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  auto reports = detect(*m);
  ASSERT_GE(reports.size(), 1u);
  const AdhocSyncDetector detector(*m);
  const AdhocSyncResult result = detector.classify(reports.front());
  EXPECT_TRUE(result.is_adhoc) << result.reason;
}

TEST(AnnotatorTest, AnnotatesAndReRunPrunesReports) {
  auto m = parse_ok(kBusyWait);
  auto reports = detect(*m);
  const std::size_t raw_count = reports.size();
  ASSERT_GE(raw_count, 2u);

  const AnnotationOutcome outcome = annotate_adhoc_syncs(*m, reports);
  EXPECT_EQ(outcome.unique_adhoc_syncs, 1u);
  EXPECT_GE(outcome.adhoc_reports, 1u);
  EXPECT_FALSE(outcome.annotations.empty());

  // The classified report was flagged in place.
  bool any_flagged = false;
  for (const race::RaceReport& r : reports) any_flagged |= r.adhoc_sync;
  EXPECT_TRUE(any_flagged);

  // Re-running with the annotations prunes the flag pair AND the data it
  // publishes (the §5.1 benign-schedule reduction).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_TRUE(detect(*m, &outcome.annotations, seed).empty())
        << "seed " << seed;
  }
}

TEST(AnnotatorTest, UniquePairsCountedOnce) {
  auto m = parse_ok(kBusyWait);
  auto reports = detect(*m);
  // Duplicate the flag report to simulate multiple detection runs.
  reports.push_back(reports.front());
  reports.push_back(reports.front());
  const AnnotationOutcome outcome = annotate_adhoc_syncs(*m, reports);
  EXPECT_EQ(outcome.unique_adhoc_syncs, 1u);
}

TEST(AnnotationSetTest, MergeAndQueries) {
  auto m = parse_ok(kBusyWait);
  const ir::Instruction* store_flag =
      m->find_function("setter")->entry()->instructions()[1].get();
  const ir::Instruction* load_flag =
      m->find_function("waiter")->find_block("loop")->front();

  race::AnnotationSet a;
  a.add_release_store(store_flag);
  race::AnnotationSet b;
  b.add_acquire_load(load_flag);
  a.merge(b);
  EXPECT_TRUE(a.is_release_store(store_flag));
  EXPECT_TRUE(a.is_acquire_load(load_flag));
  EXPECT_TRUE(a.annotated(store_flag));
  EXPECT_FALSE(a.annotated(nullptr));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.pair_count(), 1u);
}

TEST(SyncFinderTest, FindsTheBusyWaitPairStatically) {
  auto m = parse_ok(kBusyWait);
  const SyncFinderResult result = syncfinder_scan(*m);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs.front().flag->name(), "flag");
  EXPECT_EQ(result.pairs.front().read->opcode(), ir::Opcode::kLoad);
  EXPECT_EQ(result.pairs.front().write->opcode(), ir::Opcode::kStore);
  EXPECT_FALSE(result.annotations.empty());
}

TEST(SyncFinderTest, OverMatchesWorkingLoops) {
  // The precision gap vs OWL's classifier (§5.1): a flag-guarded loop that
  // does real work (the SSDB shape) is still paired by the static matcher.
  auto m = parse_ok(R"(module work
global @quit
global @stat
func @setter() {
entry:
  store 1, @quit
  ret
}
func @cleaner() {
entry:
  jmp loop
loop:
  %q = load @quit
  %c = icmp eq %q, 0
  br %c, work, out
work:
  %s = load @stat
  %s2 = add %s, 1
  store %s2, @stat
  jmp loop
out:
  ret
}
func @main() {
entry:
  %a = thread_create @cleaner, 0
  %b = thread_create @setter, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  const SyncFinderResult result = syncfinder_scan(*m);
  bool matched_quit = false;
  for (const SyncFinderPair& pair : result.pairs) {
    matched_quit |= pair.flag->name() == "quit";
  }
  EXPECT_TRUE(matched_quit);  // static matching cannot tell it is not a
                              // busy-wait — OWL's classifier can
}

TEST(SyncFinderTest, RequiresRemoteConstantStore) {
  // Same-function stores and non-constant stores do not pair.
  auto m = parse_ok(R"(module nr
global @a
global @b
func @selfset() {
entry:
  jmp loop
loop:
  store 1, @a
  %v = load @a
  %c = icmp eq %v, 0
  br %c, loop, out
out:
  ret
}
func @varset(i64 %x) {
entry:
  store %x, @b
  ret
}
func @waiter() {
entry:
  jmp loop
loop:
  %v = load @b
  %c = icmp eq %v, 0
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %a = thread_create @selfset, 0
  %b = thread_create @varset, 5
  %w = thread_create @waiter, 0
  thread_join %a
  thread_join %b
  thread_join %w
  ret
}
)");
  EXPECT_TRUE(syncfinder_scan(*m).pairs.empty());
}

TEST(SyncFinderTest, PresetAnnotationsSuppressSsdbAttackRaces) {
  // End-to-end: feeding the static matcher's annotations into the pipeline
  // prunes SSDB's attack-carrying races (the §5.1 precision argument).
  const workloads::Workload ssdb = workloads::make_ssdb({0.3});
  const SyncFinderResult statically = syncfinder_scan(*ssdb.module);
  ASSERT_GE(statically.pairs.size(), 2u);  // thread_quit AND db

  core::PipelineOptions options = ssdb.pipeline_options();
  options.preset_annotations = &statically.annotations;
  const core::PipelineResult result =
      core::Pipeline(options).run(ssdb.target());
  EXPECT_FALSE(ssdb.attack_detected(result));

  // OWL's own classifier keeps the attack.
  const core::PipelineResult owl_result =
      core::Pipeline(ssdb.pipeline_options()).run(ssdb.target());
  EXPECT_TRUE(ssdb.attack_detected(owl_result));
}

}  // namespace
}  // namespace owl::sync
