// Unit tests for the textual MiniIR parser, including printer round trips.
#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace owl::ir {
namespace {

std::unique_ptr<Module> parse_ok(std::string_view text) {
  auto result = parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return std::move(result).value();
}

void expect_parse_error(std::string_view text, std::string_view fragment) {
  auto result = parse_module(text);
  ASSERT_FALSE(result.is_ok()) << "expected failure for: " << text;
  EXPECT_NE(result.status().message().find(fragment), std::string::npos)
      << result.status().message();
}

TEST(ParserTest, EmptyModule) {
  auto m = parse_ok("module empty\n");
  EXPECT_EQ(m->name(), "empty");
  EXPECT_TRUE(m->functions().empty());
}

TEST(ParserTest, Globals) {
  auto m = parse_ok(R"(module g
global @flag
global @buf [16]
global @init [2] = 7
)");
  EXPECT_EQ(m->find_global("flag")->cell_count(), 1u);
  EXPECT_EQ(m->find_global("buf")->cell_count(), 16u);
  EXPECT_EQ(m->find_global("init")->initial_value(), 7);
}

TEST(ParserTest, SimpleFunction) {
  auto m = parse_ok(R"(module t
global @g
func @f(i64 %x) -> i64 {
entry:
  %v = load @g
  %s = add %v, %x
  ret %s
}
)");
  Function* f = m->find_function("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->arguments().size(), 1u);
  EXPECT_EQ(f->instruction_count(), 3u);
  EXPECT_TRUE(verify_module(*m).is_ok());
}

TEST(ParserTest, ControlFlowAndPhi) {
  auto m = parse_ok(R"(module t
func @count() -> i64 {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  %n = add %i, 1
  %c = icmp slt %n, 10
  br %c, loop, out
out:
  ret %i
}
)");
  Function* f = m->find_function("count");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(verify_module(*m).is_ok());
  // The phi's back-edge value %n was a forward reference; it must resolve
  // to the add instruction, not a placeholder.
  const Instruction* phi = f->find_block("loop")->front();
  ASSERT_EQ(phi->opcode(), Opcode::kPhi);
  ASSERT_EQ(phi->phi_values().size(), 2u);
  EXPECT_TRUE(phi->phi_values()[1]->is_instruction());
}

TEST(ParserTest, CallsAndThreads) {
  auto m = parse_ok(R"(module t
global @mu
func @worker(i64 %arg) {
entry:
  lock @mu
  unlock @mu
  ret
}
func @helper(i64 %a, i64 %b) -> i64 {
entry:
  %s = add %a, %b
  ret %s
}
func @main() {
entry:
  %t = thread_create @worker, 5
  %r = call @helper(1, 2)
  thread_join %t
  ret
}
)");
  EXPECT_TRUE(verify_module(*m).is_ok());
  const Function* main_fn = m->find_function("main");
  const Instruction* tc = main_fn->entry()->front();
  EXPECT_EQ(tc->opcode(), Opcode::kThreadCreate);
  EXPECT_EQ(tc->callee(), m->find_function("worker"));
}

TEST(ParserTest, CallResultTypeFollowsCallee) {
  auto m = parse_ok(R"(module t
func @v() {
entry:
  ret
}
func @main() {
entry:
  call @v()
  ret
}
)");
  const Instruction* call = m->find_function("main")->entry()->front();
  EXPECT_TRUE(call->type().is_void());
}

TEST(ParserTest, VulnerableSiteIntrinsics) {
  auto m = parse_ok(R"(module t
global @buf [8]
global @src [8]
func @f() {
entry:
  strcpy @buf, @src
  memcpy @buf, @src, 4
  setuid 0
  %a = file_access 1
  %fd = file_open 2
  file_write %fd, @buf, 8
  %pid = fork
  eval 9
  ret
}
)");
  EXPECT_TRUE(verify_module(*m).is_ok());
  EXPECT_EQ(m->find_function("f")->instruction_count(), 9u);
}

TEST(ParserTest, CommentsAndBlankLines) {
  auto m = parse_ok(R"(module t
; a full-line comment

func @f() {
entry:
  yield  ; trailing comment
  ret
}
)");
  EXPECT_EQ(m->find_function("f")->instruction_count(), 2u);
}

TEST(ParserTest, LocationSuffix) {
  auto m = parse_ok(R"(module t
global @g
func @f() {
entry:
  %v = load @g  !util.c:145
  ret
}
)");
  const Instruction* load = m->find_function("f")->entry()->front();
  EXPECT_EQ(load->loc().file, "util.c");
  EXPECT_EQ(load->loc().line, 145u);
}

TEST(ParserTest, NullLiteral) {
  auto m = parse_ok(R"(module t
global @p
func @f() {
entry:
  store null, @p
  ret
}
)");
  const Instruction* st = m->find_function("f")->entry()->front();
  EXPECT_TRUE(static_cast<const Constant*>(st->operand(0))->is_null_pointer());
}

TEST(ParserTest, ExternalFunctionDeclaration) {
  auto m = parse_ok(R"(module t
func @libc_read(i64 %fd) -> i64 external
func @f() {
entry:
  %r = call @libc_read(0)
  ret
}
)");
  EXPECT_FALSE(m->find_function("libc_read")->is_internal());
  EXPECT_FALSE(m->find_function("libc_read")->has_body());
  EXPECT_TRUE(verify_module(*m).is_ok());
}

// ---- error cases ----

TEST(ParserErrorTest, UnknownOpcode) {
  expect_parse_error("module t\nfunc @f() {\nentry:\n  bogus 1\n}\n",
                     "unknown opcode");
}

TEST(ParserErrorTest, UndefinedValue) {
  expect_parse_error("module t\nfunc @f() {\nentry:\n  print %nope\n  ret\n}\n",
                     "undefined value");
}

TEST(ParserErrorTest, UnknownGlobal) {
  expect_parse_error("module t\nfunc @f() {\nentry:\n  %v = load @gone\n  ret\n}\n",
                     "unknown global");
}

TEST(ParserErrorTest, UnknownLabel) {
  expect_parse_error("module t\nfunc @f() {\nentry:\n  jmp nowhere\n}\n",
                     "unknown label");
}

TEST(ParserErrorTest, DuplicateGlobal) {
  expect_parse_error("module t\nglobal @g\nglobal @g\n", "duplicate global");
}

TEST(ParserErrorTest, DuplicateFunction) {
  expect_parse_error(
      "module t\nfunc @f() {\nentry:\n  ret\n}\nfunc @f() {\nentry:\n  ret\n}\n",
      "duplicate function");
}

TEST(ParserErrorTest, DuplicateLabel) {
  expect_parse_error(
      "module t\nfunc @f() {\nentry:\n  ret\nentry:\n  ret\n}\n",
      "duplicate label");
}

TEST(ParserErrorTest, MissingClosingBrace) {
  expect_parse_error("module t\nfunc @f() {\nentry:\n  ret\n", "'}' expected");
}

TEST(ParserErrorTest, WrongOperandCount) {
  expect_parse_error("module t\nglobal @g\nfunc @f() {\nentry:\n  %v = load @g, @g\n  ret\n}\n",
                     "wrong operand count");
}

TEST(ParserErrorTest, ErrorsCarryLineNumbers) {
  auto result = parse_module("module t\nglobal @g\nwhat\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

// ---- printer/parser round trip ----

TEST(RoundTripTest, PrintParsePrintIsStable) {
  const char* source = R"(module rt
global @dying
global @buf [8]

func @die() {
entry:
  store 1, @dying  !libsafe.c:1640
  ret
}

func @check(ptr %src) -> i64 {
entry:
  %d = load @dying  !util.c:145
  %dy = icmp ne %d, 0
  br %dy, bypass, work
bypass:
  ret 0  !util.c:146
work:
  jmp loop
loop:
  %i = phi [0, work], [%n, loop]
  %p = gep %src, %i
  %c = load %p
  %nz = icmp ne %c, 0
  %n = add %i, 1
  br %nz, loop, out
out:
  ret %i
}
)";
  auto m1 = parse_ok(source);
  ASSERT_TRUE(verify_module(*m1).is_ok());
  const std::string printed1 = print_module(*m1);
  auto m2 = parse_ok(printed1);
  const std::string printed2 = print_module(*m2);
  EXPECT_EQ(printed1, printed2);
  EXPECT_EQ(m1->instruction_count(), m2->instruction_count());
}

}  // namespace
}  // namespace owl::ir
