// Unit tests for the MiniIR machine: instruction semantics, threading,
// locking, security events, breakpoints.
#include <gtest/gtest.h>

#include "interp/debugger.hpp"
#include "interp/machine.hpp"
#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace owl::interp {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

RunResult run_main(Machine& machine, const ir::Module& m) {
  machine.start(m.find_function("main"));
  RoundRobinScheduler sched;
  return machine.run(sched);
}

TEST(MachineTest, ArithmeticAndPrint) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  %a = add 2, 3
  %b = mul %a, 4
  %c = sub %b, 1
  %d = udiv %c, 2
  %e = and %d, 6
  %f = or %e, 1
  %g = xor %f, 2
  %h = shl %g, 1
  %i = lshr %h, 1
  print %i
  ret
}
)");
  Machine machine(*m, {});
  EXPECT_EQ(run_main(machine, *m).reason, StopReason::kAllFinished);
  ASSERT_EQ(machine.prints().size(), 1u);
  // ((2+3)*4-1)/2=9; 9&6=0... step by step: 9&6 = 0b1001 & 0b0110 = 0;
  // 0|1=1; 1^2=3; 3<<1=6; 6>>1=3.
  EXPECT_EQ(machine.prints()[0], 3);
}

TEST(MachineTest, DivisionByZeroYieldsZero) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  %a = udiv 5, 0
  %b = sdiv 5, 0
  print %a
  print %b
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_EQ(machine.prints()[0], 0);
  EXPECT_EQ(machine.prints()[1], 0);
}

TEST(MachineTest, ComparisonsSignedAndUnsigned) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  %a = icmp slt -1, 0
  %b = icmp ult -1, 0
  %c = icmp uge -1, 1
  print %a
  print %b
  print %c
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_EQ(machine.prints()[0], 1);  // signed: -1 < 0
  EXPECT_EQ(machine.prints()[1], 0);  // unsigned: max >= 0
  EXPECT_EQ(machine.prints()[2], 1);  // unsigned max >= 1
}

TEST(MachineTest, GlobalLoadStoreAndGep) {
  auto m = parse_ok(R"(module t
global @arr [4]
func @main() {
entry:
  %p = gep @arr, 2
  store 77, %p
  %v = load %p
  print %v
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_EQ(machine.prints()[0], 77);
  EXPECT_EQ(machine.memory().load_raw(machine.global_address("arr") + 16), 77);
}

TEST(MachineTest, LoopWithPhi) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  %n = add %i, 1
  %c = icmp slt %n, 5
  br %c, loop, out
out:
  print %n
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_EQ(machine.prints()[0], 5);
}

TEST(MachineTest, CallAndReturnValue) {
  auto m = parse_ok(R"(module t
func @twice(i64 %x) -> i64 {
entry:
  %r = mul %x, 2
  ret %r
}
func @main() {
entry:
  %v = call @twice(21)
  print %v
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_EQ(machine.prints()[0], 42);
}

TEST(MachineTest, ExternalCallReturnsZero) {
  auto m = parse_ok(R"(module t
func @ext() -> i64 external
func @main() {
entry:
  %v = call @ext()
  print %v
  ret
}
)");
  Machine machine(*m, {});
  EXPECT_EQ(run_main(machine, *m).reason, StopReason::kAllFinished);
  EXPECT_EQ(machine.prints()[0], 0);
}

TEST(MachineTest, InputsReadFromOptions) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  %a = input 0
  %b = input 1
  %c = input 9
  print %a
  print %b
  print %c
  ret
}
)");
  MachineOptions options;
  options.inputs = {11, 22};
  Machine machine(*m, options);
  run_main(machine, *m);
  EXPECT_EQ(machine.prints()[0], 11);
  EXPECT_EQ(machine.prints()[1], 22);
  EXPECT_EQ(machine.prints()[2], 0);  // out of range reads 0
}

TEST(MachineTest, ThreadCreateJoinOrdersEverything) {
  auto m = parse_ok(R"(module t
global @x
func @child(i64 %arg) {
entry:
  store %arg, @x
  ret
}
func @main() {
entry:
  %t = thread_create @child, 5
  thread_join %t
  %v = load @x
  print %v
  ret
}
)");
  Machine machine(*m, {});
  EXPECT_EQ(run_main(machine, *m).reason, StopReason::kAllFinished);
  EXPECT_EQ(machine.prints()[0], 5);
  EXPECT_EQ(machine.threads().size(), 2u);
}

TEST(MachineTest, MutexProvidesMutualExclusion) {
  auto m = parse_ok(R"(module t
global @mu
global @ctr
func @worker(i64 %n) {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%in, loop]
  lock @mu
  %v = load @ctr
  %v2 = add %v, 1
  store %v2, @ctr
  unlock @mu
  %in = add %i, 1
  %c = icmp slt %in, 50
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %t1 = thread_create @worker, 0
  %t2 = thread_create @worker, 0
  thread_join %t1
  thread_join %t2
  ret
}
)");
  MachineOptions options;
  Machine machine(*m, options);
  machine.start(m->find_function("main"));
  RandomScheduler sched(1234);
  EXPECT_EQ(machine.run(sched).reason, StopReason::kAllFinished);
  EXPECT_EQ(machine.read_global("ctr"), 100);
}

TEST(MachineTest, DeadlockDetected) {
  auto m = parse_ok(R"(module t
global @a
global @b
func @t1() {
entry:
  lock @a
  yield
  lock @b
  unlock @b
  unlock @a
  ret
}
func @t2() {
entry:
  lock @b
  yield
  lock @a
  unlock @a
  unlock @b
  ret
}
func @main() {
entry:
  %x = thread_create @t1, 0
  %y = thread_create @t2, 0
  thread_join %x
  thread_join %y
  ret
}
)");
  Machine machine(*m, {});
  machine.start(m->find_function("main"));
  // Round-robin interleaves the two lock acquisitions -> deadlock.
  RoundRobinScheduler sched;
  const RunResult run = machine.run(sched);
  EXPECT_EQ(run.reason, StopReason::kDeadlock);
  EXPECT_TRUE(machine.has_event(SecurityEventKind::kDeadlock));
}

TEST(MachineTest, AtomicAddReturnsOldValue) {
  auto m = parse_ok(R"(module t
global @ctr [1] = 10
func @main() {
entry:
  %old = atomic_add @ctr, 5
  print %old
  %v = load @ctr
  print %v
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_EQ(machine.prints()[0], 10);
  EXPECT_EQ(machine.prints()[1], 15);
}

TEST(MachineTest, IoDelayAdvancesSimulatedTime) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  io_delay 100
  ret
}
)");
  Machine machine(*m, {});
  const RunResult run = run_main(machine, *m);
  EXPECT_EQ(run.reason, StopReason::kAllFinished);
  EXPECT_GE(machine.tick(), 100u);  // fast-forwarded through the sleep
  EXPECT_LE(run.steps, 10u);        // without burning steps
}

TEST(MachineTest, StrcpyOverflowEventAndCorruption) {
  auto m = parse_ok(R"(module t
global @dst [2]
global @src [8]
func @main() {
entry:
  store 7, @src
  %p1 = gep @src, 1
  store 7, %p1
  %p2 = gep @src, 2
  store 7, %p2
  strcpy @dst, @src
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  ASSERT_TRUE(machine.has_event(SecurityEventKind::kBufferOverflow));
  // The copy really spilled: 3 cells + terminator into a 2-cell buffer.
  const Address dst = machine.global_address("dst");
  EXPECT_EQ(machine.memory().load_raw(dst), 7);
  EXPECT_EQ(machine.memory().load_raw(dst + 8), 7);
  EXPECT_EQ(machine.memory().load_raw(dst + 16), 7);  // red zone clobbered
}

TEST(MachineTest, StrcpyWithinBoundsIsQuiet) {
  auto m = parse_ok(R"(module t
global @dst [4]
global @src [4]
func @main() {
entry:
  store 9, @src
  strcpy @dst, @src
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_TRUE(machine.security_events().empty());
  EXPECT_EQ(machine.memory().load_raw(machine.global_address("dst")), 9);
}

TEST(MachineTest, NullFuncPtrDeref) {
  auto m = parse_ok(R"(module t
global @fp
func @main() {
entry:
  %f = load @fp
  %r = callptr %f()
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_TRUE(machine.has_event(SecurityEventKind::kNullFuncPtrDeref));
}

TEST(MachineTest, WildFuncPtrIsArbitraryCodeExec) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  %r = callptr 999983()
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_TRUE(machine.has_event(SecurityEventKind::kArbitraryCodeExec));
}

TEST(MachineTest, ValidFuncPtrDispatches) {
  auto m = parse_ok(R"(module t
global @fp
func @target() -> i64 {
entry:
  ret 88
}
func @main() {
entry:
  %f = load @fp
  %r = callptr %f()
  print %r
  ret
}
)");
  // Wire the global to the function id at runtime.
  Machine machine(*m, {});
  machine.memory().store_raw(machine.global_address("fp"),
                             machine.function_value(m->find_function("target")));
  run_main(machine, *m);
  EXPECT_TRUE(machine.security_events().empty());
  EXPECT_EQ(machine.prints()[0], 88);
}

TEST(MachineTest, UnauthorizedSetuidZero) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  setuid 0
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_TRUE(machine.has_event(SecurityEventKind::kPrivilegeEscalation));
  ASSERT_EQ(machine.setuids().size(), 1u);
  EXPECT_EQ(machine.setuids()[0].uid, 0);
}

TEST(MachineTest, AuthorizedSetuidZeroIsQuiet) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  setuid 0
  ret
}
)");
  MachineOptions options;
  options.authorized_root = true;
  Machine machine(*m, options);
  run_main(machine, *m);
  EXPECT_FALSE(machine.has_event(SecurityEventKind::kPrivilegeEscalation));
}

TEST(MachineTest, FileOpsRecorded) {
  auto m = parse_ok(R"(module t
global @payload [2] = 5
func @main() {
entry:
  %a = file_access 7
  %fd = file_open 7
  file_write %fd, @payload, 2
  print %fd
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  ASSERT_EQ(machine.file_opens().size(), 1u);
  EXPECT_EQ(machine.file_opens()[0].fd, 3);  // fds start at 3
  ASSERT_EQ(machine.file_writes().size(), 1u);
  EXPECT_EQ(machine.file_writes()[0].fd, 3);
  EXPECT_EQ(machine.file_writes()[0].payload, (std::vector<Word>{5, 5}));
}

TEST(MachineTest, UseAfterFreeAndDoubleFree) {
  auto m = parse_ok(R"(module t
global @p
func @main() {
entry:
  %m = malloc 2
  store 3, %m
  free %m
  %v = load %m
  print %v
  free %m
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_TRUE(machine.has_event(SecurityEventKind::kUseAfterFree));
  EXPECT_TRUE(machine.has_event(SecurityEventKind::kDoubleFree));
  EXPECT_EQ(machine.prints()[0], 3);  // dangling read sees stale data
}

TEST(MachineTest, StackObjectDiesWithFrame) {
  auto m = parse_ok(R"(module t
global @leak
func @escape() {
entry:
  %buf = alloca 2
  store %buf, @leak
  ret
}
func @main() {
entry:
  call @escape()
  %p = load @leak
  %v = load %p
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  EXPECT_TRUE(machine.has_event(SecurityEventKind::kUseAfterFree));
}

TEST(MachineTest, StepBudgetStopsRunaway) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  jmp loop
loop:
  jmp loop
}
)");
  MachineOptions options;
  options.max_steps = 1000;
  Machine machine(*m, options);
  machine.start(m->find_function("main"));
  RoundRobinScheduler sched;
  EXPECT_EQ(machine.run(sched).reason, StopReason::kStepBudget);
}

TEST(MachineTest, EvalAndForkRecorded) {
  auto m = parse_ok(R"(module t
func @main() {
entry:
  %pid = fork
  eval 1337
  print %pid
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  ASSERT_EQ(machine.evals().size(), 1u);
  EXPECT_EQ(machine.evals()[0].command_id, 1337);
  EXPECT_GE(machine.prints()[0], 1000);
}

TEST(MachineTest, IntegerUnderflowMonitor) {
  auto m = parse_ok(R"(module iu
func @main() {
entry:
  %a = sub 0, 1
  %b = sub 5, 3
  %c = sub -4, 2
  print %a
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  // Only the small-non-negative wrap (0 - 1) trips the monitor; ordinary
  // subtraction and signed arithmetic on negatives do not.
  std::size_t underflows = 0;
  for (const SecurityEvent& event : machine.security_events()) {
    if (event.kind == SecurityEventKind::kIntegerUnderflow) ++underflows;
  }
  EXPECT_EQ(underflows, 1u);
  EXPECT_EQ(machine.prints()[0], -1);
}

TEST(MachineTest, DescriptorStabilityMonitor) {
  auto m = parse_ok(R"(module ds
global @payload [1] = 7
global @fd_cell
func @flush() {
entry:
  %fd = load @fd_cell
  file_write %fd, @payload, 1
  ret
}
func @main() {
entry:
  %log = file_open 1
  store %log, @fd_cell
  call @flush()
  call @flush()
  %html = file_open 2
  store %html, @fd_cell
  call @flush()
  ret
}
)");
  Machine machine(*m, {});
  run_main(machine, *m);
  // Writes 1 and 2 use the same fd (quiet); write 3 switches descriptors —
  // the Apache-25520 corruption signature.
  std::size_t leaks = 0;
  for (const SecurityEvent& event : machine.security_events()) {
    if (event.kind == SecurityEventKind::kDataLeak) ++leaks;
  }
  EXPECT_EQ(leaks, 1u);
}

// ---- debugger / breakpoints ----

TEST(DebuggerTest, BreakpointSuspendsOnlyThatThread) {
  auto m = parse_ok(R"(module t
global @x
global @y
func @writer() {
entry:
  store 1, @x
  ret
}
func @other() {
entry:
  store 2, @y
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @other, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  Machine machine(*m, {});
  machine.start(m->find_function("main"));
  Debugger debugger;
  machine.set_debugger(&debugger);
  const ir::Instruction* store_x =
      m->find_function("writer")->entry()->front();
  debugger.add_breakpoint(store_x);

  RoundRobinScheduler sched;
  const RunResult first = machine.run(sched);
  ASSERT_EQ(first.reason, StopReason::kBreakpoint);
  ASSERT_TRUE(first.break_thread.has_value());
  // While the writer is suspended, everything else finishes.
  const RunResult second = machine.run(sched);
  EXPECT_EQ(second.reason, StopReason::kAllSuspended);
  EXPECT_EQ(machine.read_global("y"), 2);
  EXPECT_EQ(machine.read_global("x"), 0);  // writer still parked

  ASSERT_TRUE(machine.resume_thread(*first.break_thread).is_ok());
  EXPECT_EQ(machine.run(sched).reason, StopReason::kAllFinished);
  EXPECT_EQ(machine.read_global("x"), 1);
}

TEST(DebuggerTest, ThreadSpecificBreakpointIgnoresOthers) {
  auto m = parse_ok(R"(module t
global @ctr
func @bump() {
entry:
  %v = load @ctr
  %v2 = add %v, 1
  store %v2, @ctr
  ret
}
func @main() {
entry:
  %a = thread_create @bump, 0
  %b = thread_create @bump, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  Machine machine(*m, {});
  machine.start(m->find_function("main"));
  Debugger debugger;
  machine.set_debugger(&debugger);
  const ir::Instruction* load_instr =
      m->find_function("bump")->entry()->front();
  // Restrict to thread 2 (the second bump thread).
  debugger.add_breakpoint(load_instr, ThreadId{2});

  RoundRobinScheduler sched;
  const RunResult stop = machine.run(sched);
  ASSERT_EQ(stop.reason, StopReason::kBreakpoint);
  EXPECT_EQ(*stop.break_thread, 2u);
  // Thread 1 passes the same instruction unimpeded and finishes while
  // thread 2 stays parked.
  const RunResult drained = machine.run(sched);
  EXPECT_EQ(drained.reason, StopReason::kAllSuspended);
  EXPECT_EQ(machine.read_global("ctr"), 1);
}

TEST(DebuggerTest, EvalInThreadSeesPendingOperands) {
  auto m = parse_ok(R"(module t
global @arr [4]
func @main() {
entry:
  %p = gep @arr, 3
  store 5, %p
  ret
}
)");
  Machine machine(*m, {});
  machine.start(m->find_function("main"));
  Debugger debugger;
  machine.set_debugger(&debugger);
  const ir::BasicBlock* entry = m->find_function("main")->entry();
  const ir::Instruction* store_instr = entry->instructions()[1].get();
  debugger.add_breakpoint(store_instr);
  RoundRobinScheduler sched;
  const RunResult stop = machine.run(sched);
  ASSERT_EQ(stop.reason, StopReason::kBreakpoint);
  // The store's address operand evaluates to &arr[3] at the stop.
  const Word addr = machine.eval_in_thread(0, store_instr->operand(1));
  EXPECT_EQ(static_cast<Address>(addr), machine.global_address("arr") + 24);
}

TEST(DebuggerTest, RemoveAndDisable) {
  Debugger debugger;
  ir::Module m("t");
  ir::IRBuilder b(&m);
  ir::Function* f = m.add_function("f", ir::Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  const ir::Instruction* i = b.ret();

  const BreakpointId id = debugger.add_breakpoint(i);
  EXPECT_NE(debugger.match(0, i), nullptr);
  debugger.set_enabled(id, false);
  EXPECT_EQ(debugger.match(0, i), nullptr);
  debugger.set_enabled(id, true);
  EXPECT_NE(debugger.match(0, i), nullptr);
  debugger.remove_breakpoint(id);
  EXPECT_EQ(debugger.match(0, i), nullptr);
}

TEST(MachineTest, StepThreadSingleSteps) {
  auto m = parse_ok(R"(module st
global @x
func @main() {
entry:
  store 1, @x
  store 2, @x
  store 3, @x
  ret
}
)");
  Machine machine(*m, {});
  machine.start(m->find_function("main"));
  ASSERT_TRUE(machine.step_thread(0).is_ok());
  EXPECT_EQ(machine.read_global("x"), 1);
  ASSERT_TRUE(machine.step_thread(0).is_ok());
  EXPECT_EQ(machine.read_global("x"), 2);
  // Stepping a nonexistent or finished thread is rejected.
  EXPECT_FALSE(machine.step_thread(7).is_ok());
  ASSERT_TRUE(machine.step_thread(0).is_ok());
  ASSERT_TRUE(machine.step_thread(0).is_ok());  // ret -> finished
  EXPECT_TRUE(machine.thread(0)->finished());
  EXPECT_FALSE(machine.step_thread(0).is_ok());
}

TEST(MachineTest, CallStackShape) {
  auto m = parse_ok(R"(module t
global @g
func @inner() {
entry:
  %v = load @g
  ret
}
func @outer() {
entry:
  call @inner()
  ret
}
func @main() {
entry:
  call @outer()
  ret
}
)");
  Machine machine(*m, {});
  machine.start(m->find_function("main"));
  Debugger debugger;
  machine.set_debugger(&debugger);
  const ir::Instruction* load_instr =
      m->find_function("inner")->entry()->front();
  debugger.add_breakpoint(load_instr);
  RoundRobinScheduler sched;
  ASSERT_EQ(machine.run(sched).reason, StopReason::kBreakpoint);

  const CallStack stack = machine.thread(0)->call_stack();
  ASSERT_EQ(stack.size(), 3u);
  EXPECT_EQ(stack[0].function->name(), "main");
  EXPECT_EQ(stack[1].function->name(), "outer");
  EXPECT_EQ(stack[2].function->name(), "inner");
  EXPECT_EQ(stack[2].instr, load_instr);
  // Outer frames report their call sites.
  EXPECT_EQ(stack[1].instr->opcode(), ir::Opcode::kCall);
}

}  // namespace
}  // namespace owl::interp
