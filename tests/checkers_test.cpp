// Tests for the concurrency checker suite (DESIGN.md §11): per-checker
// positive/negative pairs on hand-built modules, planted-bug ground truth
// on the shipped examples, SARIF rendering and determinism, byte-identity
// of the pipeline output when the suite is off, and fault-injection
// degradation of the checker stage.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static_info.hpp"
#include "checkers/checker.hpp"
#include "checkers/sarif.hpp"
#include "core/pipeline.hpp"
#include "core/render.hpp"
#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "serve/json.hpp"
#include "support/fault_injector.hpp"
#include "support/metrics.hpp"

namespace owl::checkers {
namespace {

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

std::filesystem::path examples_dir() { return OWL_EXAMPLES_DIR; }

std::shared_ptr<ir::Module> load_example(const std::string& name) {
  std::ifstream in(examples_dir() / name);
  EXPECT_TRUE(in.good()) << "cannot open " << name;
  std::ostringstream text;
  text << in.rdbuf();
  return parse_ok(text.str());
}

/// Module + static analysis + checker context, lifetimes bundled.
struct Analyzed {
  std::shared_ptr<ir::Module> module;
  std::unique_ptr<analysis::ModuleStatic> statics;
  std::unique_ptr<AnalysisContext> ctx;
};

Analyzed analyze(std::shared_ptr<ir::Module> m, bool with_factory = true) {
  Analyzed out;
  out.module = std::move(m);
  out.statics = std::make_unique<analysis::ModuleStatic>(*out.module);
  race::MachineFactory factory;
  const ir::Function* entry = out.module->find_function("main");
  if (with_factory && entry != nullptr && entry->has_body()) {
    factory = [module = out.module, entry] {
      auto machine =
          std::make_unique<interp::Machine>(*module, interp::MachineOptions{});
      machine->start(entry);
      return machine;
    };
  }
  out.ctx =
      std::make_unique<AnalysisContext>(*out.module, *out.statics, factory);
  return out;
}

CheckerOptions all_checkers() {
  CheckerOptions options;
  std::string error;
  EXPECT_TRUE(CheckerOptions::parse("all", options, error)) << error;
  return options;
}

std::vector<BugReport> run_all(const Analyzed& analyzed) {
  return run_checkers(all_checkers(), *analyzed.ctx);
}

std::vector<std::string> rule_ids(const std::vector<BugReport>& reports) {
  std::vector<std::string> ids;
  for (const BugReport& report : reports) ids.push_back(report.rule_id);
  return ids;
}

// --- options & report plumbing -------------------------------------------

TEST(CheckerOptionsTest, ParsesSelections) {
  CheckerOptions options;
  std::string error;
  EXPECT_TRUE(CheckerOptions::parse("off", options, error));
  EXPECT_FALSE(options.any());
  EXPECT_EQ(options.canonical(), "off");

  EXPECT_TRUE(CheckerOptions::parse("all", options, error));
  EXPECT_TRUE(options.deadlock && options.atomicity && options.lock_mismatch &&
              options.condvar);
  EXPECT_EQ(options.canonical(), "deadlock,atomicity,lock-mismatch,condvar");

  EXPECT_TRUE(CheckerOptions::parse("condvar,deadlock", options, error));
  EXPECT_TRUE(options.deadlock && options.condvar);
  EXPECT_FALSE(options.atomicity || options.lock_mismatch);

  EXPECT_FALSE(CheckerOptions::parse("deadlock,bogus", options, error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(CheckerOptionsTest, CanonicalFormIsOrderInsensitive) {
  CheckerOptions a;
  CheckerOptions b;
  std::string error;
  ASSERT_TRUE(CheckerOptions::parse("condvar,deadlock", a, error));
  ASSERT_TRUE(CheckerOptions::parse("deadlock,condvar", b, error));
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.canonical(), "deadlock,condvar");
}

TEST(RuleRegistryTest, IdsAreStableAndIndexed) {
  const auto& rules = rule_registry();
  ASSERT_EQ(rules.size(), 7u);
  const std::vector<std::string> expected = {
      "OWL-DL-001", "OWL-AV-001", "OWL-LM-001", "OWL-LM-002",
      "OWL-LM-003", "OWL-CV-001", "OWL-CV-002"};
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, expected[i]);
    EXPECT_EQ(rule_index(rules[i].id), static_cast<int>(i));
  }
  EXPECT_EQ(rule_index("OWL-XX-999"), -1);
}

TEST(BugReportMgrTest, FinalizeSortsAndDeduplicates) {
  const auto make = [](const char* rule, const char* file, unsigned line) {
    BugReport report;
    report.rule_id = rule;
    report.level = Severity::kWarning;
    report.message = "m";
    BugLocation location;
    location.loc.file = file;
    location.loc.line = line;
    location.function = "f";
    report.locations.push_back(location);
    return report;
  };
  BugReportMgr mgr;
  mgr.add(make("OWL-LM-001", "b.c", 2));
  mgr.add(make("OWL-AV-001", "a.c", 9));
  mgr.add(make("OWL-LM-001", "b.c", 2));  // exact duplicate
  mgr.add(make("OWL-LM-001", "a.c", 1));
  mgr.finalize();
  const std::vector<BugReport>& reports = mgr.reports();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].rule_id, "OWL-AV-001");
  EXPECT_EQ(reports[1].locations[0].loc.file, "a.c");
  EXPECT_EQ(reports[2].locations[0].loc.file, "b.c");
}

// --- deadlock checker ----------------------------------------------------

TEST(DeadlockCheckerTest, FindsAbbaCycleWithoutReplayFactory) {
  const Analyzed analyzed = analyze(parse_ok(R"(module abba
global @a
global @b
func @t1() {
entry:
  lock @a
  lock @b
  unlock @b
  unlock @a
  ret
}
func @t2() {
entry:
  lock @b
  lock @a
  unlock @a
  unlock @b
  ret
}
func @main() {
entry:
  %h1 = thread_create @t1, 0
  %h2 = thread_create @t2, 0
  thread_join %h1
  thread_join %h2
  ret
}
)"),
                                   /*with_factory=*/false);
  const std::vector<BugReport> reports = run_all(analyzed);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule_id, "OWL-DL-001");
  EXPECT_NE(reports[0].message.find("replay unavailable"), std::string::npos);
  ASSERT_EQ(reports[0].locations.size(), 2u);
}

TEST(DeadlockCheckerTest, ConfirmsPlantedCycleByReplay) {
  const Analyzed analyzed = analyze(load_example("lock_cycle.mir"));
  const std::vector<BugReport> reports = run_all(analyzed);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule_id, "OWL-DL-001");
  EXPECT_EQ(reports[0].level, Severity::kError);
  EXPECT_NE(reports[0].message.find("confirmed by replay"),
            std::string::npos);
}

TEST(DeadlockCheckerTest, SilentOnConsistentLockOrder) {
  const Analyzed analyzed = analyze(parse_ok(R"(module ordered
global @a
global @b
global @g
func @t1() {
entry:
  lock @a
  lock @b
  store 1, @g
  unlock @b
  unlock @a
  ret
}
func @t2() {
entry:
  lock @a
  lock @b
  store 2, @g
  unlock @b
  unlock @a
  ret
}
func @main() {
entry:
  %h1 = thread_create @t1, 0
  %h2 = thread_create @t2, 0
  thread_join %h1
  thread_join %h2
  ret
}
)"));
  EXPECT_TRUE(run_all(analyzed).empty());
}

TEST(DeadlockCheckerTest, SilentWhenThreadsNeverOverlap) {
  // Same ABBA shape, but the two functions are called sequentially from
  // main — no MHP pair, so the cycle cannot manifest.
  const Analyzed analyzed = analyze(parse_ok(R"(module seq
global @a
global @b
func @t1() {
entry:
  lock @a
  lock @b
  unlock @b
  unlock @a
  ret
}
func @t2() {
entry:
  lock @b
  lock @a
  unlock @a
  unlock @b
  ret
}
func @main() {
entry:
  call @t1()
  call @t2()
  ret
}
)"),
                                   /*with_factory=*/false);
  EXPECT_TRUE(run_all(analyzed).empty());
}

// --- atomicity checker ---------------------------------------------------

TEST(AtomicityCheckerTest, FindsPlantedSplitCriticalSection) {
  const Analyzed analyzed = analyze(load_example("atomicity_split.mir"));
  const std::vector<BugReport> reports = run_all(analyzed);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule_id, "OWL-AV-001");
  ASSERT_EQ(reports[0].locations.size(), 3u);
}

TEST(AtomicityCheckerTest, SilentWithoutInterveningRelease) {
  // Same read-modify-write, but inside one critical section.
  const Analyzed analyzed = analyze(parse_ok(R"(module whole
global @m
global @bal = 100
func @withdraw() {
entry:
  lock @m
  %b = load @bal
  %n = sub %b, 50
  store %n, @bal
  unlock @m
  ret
}
func @deposit() {
entry:
  lock @m
  %b = load @bal
  %n = add %b, 10
  store %n, @bal
  unlock @m
  ret
}
func @main() {
entry:
  %h1 = thread_create @withdraw, 0
  %h2 = thread_create @deposit, 0
  thread_join %h1
  thread_join %h2
  ret
}
)"),
                                   /*with_factory=*/false);
  EXPECT_TRUE(run_all(analyzed).empty());
}

TEST(AtomicityCheckerTest, SilentWithoutDependentWrite) {
  // The second critical section re-reads under the lock instead of using
  // the stale value — the classic correct fix for the split pattern.
  const Analyzed analyzed = analyze(parse_ok(R"(module refetch
global @m
global @bal = 100
func @withdraw() {
entry:
  lock @m
  %b = load @bal
  unlock @m
  lock @m
  %fresh = load @bal
  %n = sub %fresh, 50
  store %n, @bal
  unlock @m
  ret
}
func @deposit() {
entry:
  lock @m
  %b = load @bal
  %n = add %b, 10
  store %n, @bal
  unlock @m
  ret
}
func @main() {
entry:
  %h1 = thread_create @withdraw, 0
  %h2 = thread_create @deposit, 0
  thread_join %h1
  thread_join %h2
  ret
}
)"),
                                   /*with_factory=*/false);
  EXPECT_TRUE(run_all(analyzed).empty());
}

TEST(AtomicityCheckerTest, SilentWithoutConcurrentWriter) {
  // Split critical section, but no other thread ever writes the object —
  // the interleaving the rule describes cannot happen.
  const Analyzed analyzed = analyze(parse_ok(R"(module lone
global @m
global @bal = 100
func @withdraw() {
entry:
  lock @m
  %b = load @bal
  unlock @m
  %n = sub %b, 50
  lock @m
  store %n, @bal
  unlock @m
  ret
}
func @main() {
entry:
  %h1 = thread_create @withdraw, 0
  thread_join %h1
  ret
}
)"),
                                   /*with_factory=*/false);
  EXPECT_TRUE(run_all(analyzed).empty());
}

// --- lock-mismatch checker -----------------------------------------------

TEST(LockMismatchCheckerTest, FindsPlantedDoubleUnlock) {
  const Analyzed analyzed = analyze(load_example("double_unlock.mir"));
  const std::vector<BugReport> reports = run_all(analyzed);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule_id, "OWL-LM-001");
  EXPECT_EQ(reports[0].level, Severity::kError);
  ASSERT_EQ(reports[0].locations.size(), 1u);
  EXPECT_EQ(reports[0].locations[0].loc.file, "pool.c");
  EXPECT_EQ(reports[0].locations[0].loc.line, 24u);
}

TEST(LockMismatchCheckerTest, FindsDoubleAcquire) {
  const Analyzed analyzed = analyze(parse_ok(R"(module dbl
global @m
func @main() {
entry:
  lock @m
  lock @m
  unlock @m
  ret
}
)"),
                                   /*with_factory=*/false);
  const std::vector<BugReport> reports = run_all(analyzed);
  ASSERT_EQ(rule_ids(reports),
            (std::vector<std::string>{"OWL-LM-002"}));
}

TEST(LockMismatchCheckerTest, FindsInconsistentGuards) {
  const Analyzed analyzed = analyze(parse_ok(R"(module incons
global @m
global @g
func @guarded() {
entry:
  lock @m
  store 1, @g
  unlock @m
  ret
}
func @bare() {
entry:
  store 2, @g
  ret
}
func @main() {
entry:
  %h1 = thread_create @guarded, 0
  %h2 = thread_create @bare, 0
  thread_join %h1
  thread_join %h2
  ret
}
)"),
                                   /*with_factory=*/false);
  const std::vector<BugReport> reports = run_all(analyzed);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule_id, "OWL-LM-003");
}

TEST(LockMismatchCheckerTest, SilentOnDisciplinedGuards) {
  const Analyzed analyzed = analyze(parse_ok(R"(module disciplined
global @m
global @g
func @w1() {
entry:
  lock @m
  store 1, @g
  unlock @m
  ret
}
func @w2() {
entry:
  lock @m
  store 2, @g
  unlock @m
  ret
}
func @main() {
entry:
  %h1 = thread_create @w1, 0
  %h2 = thread_create @w2, 0
  thread_join %h1
  thread_join %h2
  ret
}
)"),
                                   /*with_factory=*/false);
  EXPECT_TRUE(run_all(analyzed).empty());
}

// --- condition-variable checker ------------------------------------------

TEST(CondVarCheckerTest, FindsPlantedWaitWithoutLoop) {
  const Analyzed analyzed = analyze(load_example("cv_missed_wakeup.mir"));
  const std::vector<BugReport> reports = run_all(analyzed);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule_id, "OWL-CV-001");
  ASSERT_EQ(reports[0].locations.size(), 2u);
  EXPECT_EQ(reports[0].locations[0].loc.file, "worker.c");
}

TEST(CondVarCheckerTest, SilentWhenWaitIsInsideRecheckLoop) {
  const Analyzed analyzed = analyze(parse_ok(R"(module looped
global @cv
global @ready
global @out
func @waiter() {
entry:
  jmp check
check:
  %r = load @ready
  %set = icmp ne %r, 0
  br %set, go, dowait
dowait:
  hb_acquire @cv
  jmp check
go:
  %v = load @ready
  store %v, @out
  ret
}
func @notifier() {
entry:
  store 1, @ready
  hb_release @cv
  ret
}
func @main() {
entry:
  %h1 = thread_create @waiter, 0
  %h2 = thread_create @notifier, 0
  thread_join %h1
  thread_join %h2
  ret
}
)"),
                                   /*with_factory=*/false);
  EXPECT_TRUE(run_all(analyzed).empty());
}

TEST(CondVarCheckerTest, FindsSignalWithoutWaiter) {
  const Analyzed analyzed = analyze(parse_ok(R"(module lostsig
global @cv
global @done
func @worker() {
entry:
  store 1, @done
  hb_release @cv
  ret
}
func @main() {
entry:
  %h = thread_create @worker, 0
  thread_join %h
  ret
}
)"),
                                   /*with_factory=*/false);
  const std::vector<BugReport> reports = run_all(analyzed);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule_id, "OWL-CV-002");
}

TEST(CondVarCheckerTest, SilentWhenSignalHasWaiter) {
  // The planted example's signal is paired with a (buggy) waiter, so only
  // CV-001 fires there — verified in FindsPlantedWaitWithoutLoop. Here the
  // loop-correct variant is fully silent including CV-002.
  const Analyzed analyzed = analyze(parse_ok(R"(module paired
global @cv
global @ready
func @waiter() {
entry:
  jmp check
check:
  %r = load @ready
  %set = icmp ne %r, 0
  br %set, go, dowait
dowait:
  hb_acquire @cv
  jmp check
go:
  ret
}
func @notifier() {
entry:
  store 1, @ready
  hb_release @cv
  ret
}
func @main() {
entry:
  %h1 = thread_create @waiter, 0
  %h2 = thread_create @notifier, 0
  thread_join %h1
  thread_join %h2
  ret
}
)"),
                                   /*with_factory=*/false);
  EXPECT_TRUE(run_all(analyzed).empty());
}

// --- ground truth, selection, determinism --------------------------------

TEST(CheckerSuiteTest, ExampleGroundTruth) {
  // Every planted example yields exactly its one bug; every other shipped
  // example is clean under the full suite.
  const std::map<std::string, std::string> planted = {
      {"lock_cycle.mir", "OWL-DL-001"},
      {"nested_lock_cycle.mir", "OWL-DL-001"},
      {"atomicity_split.mir", "OWL-AV-001"},
      {"double_unlock.mir", "OWL-LM-001"},
      {"cv_missed_wakeup.mir", "OWL-CV-001"},
  };
  std::size_t swept = 0;
  for (const auto& entry : std::filesystem::directory_iterator(examples_dir())) {
    if (entry.path().extension() != ".mir") continue;
    const std::string name = entry.path().filename().string();
    const Analyzed analyzed = analyze(load_example(name));
    const std::vector<BugReport> reports = run_all(analyzed);
    const auto it = planted.find(name);
    if (it != planted.end()) {
      ASSERT_EQ(reports.size(), 1u) << name;
      EXPECT_EQ(reports[0].rule_id, it->second) << name;
    } else {
      EXPECT_TRUE(reports.empty())
          << name << " unexpectedly yields " << reports.size()
          << " finding(s)";
    }
    ++swept;
  }
  EXPECT_GE(swept, 10u);
}

TEST(CheckerSuiteTest, SelectionGatesEachChecker) {
  const Analyzed analyzed = analyze(load_example("double_unlock.mir"));
  std::string error;

  CheckerOptions only_deadlock;
  ASSERT_TRUE(CheckerOptions::parse("deadlock", only_deadlock, error));
  EXPECT_TRUE(run_checkers(only_deadlock, *analyzed.ctx).empty());

  CheckerOptions only_mismatch;
  ASSERT_TRUE(CheckerOptions::parse("lock-mismatch", only_mismatch, error));
  EXPECT_EQ(run_checkers(only_mismatch, *analyzed.ctx).size(), 1u);

  CheckerOptions off;
  ASSERT_TRUE(CheckerOptions::parse("off", off, error));
  EXPECT_TRUE(run_checkers(off, *analyzed.ctx).empty());
}

TEST(CheckerSuiteTest, FindingsAreRebuildDeterministic) {
  const auto render = [](const std::vector<BugReport>& reports) {
    std::string out;
    for (const BugReport& report : reports) out += report.to_string();
    return out;
  };
  for (const char* name :
       {"lock_cycle.mir", "atomicity_split.mir", "cv_missed_wakeup.mir"}) {
    const std::string first = render(run_all(analyze(load_example(name))));
    const std::string second = render(run_all(analyze(load_example(name))));
    EXPECT_FALSE(first.empty()) << name;
    EXPECT_EQ(first, second) << name;
  }
}

// --- SARIF ----------------------------------------------------------------

TEST(SarifTest, LogHasSarif210ShapeAndFullRuleTable) {
  const Analyzed analyzed = analyze(load_example("lock_cycle.mir"));
  const std::vector<BugReport> reports = run_all(analyzed);
  const std::string log = render_sarif(
      {SarifTarget{"lock_cycle.mir", &reports}});

  serve::JsonValue root;
  std::string error;
  ASSERT_TRUE(serve::JsonValue::parse(log, root, error)) << error;
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.find("$schema"), nullptr);
  EXPECT_NE(root.find("$schema")->as_string().find("sarif-2.1.0"),
            std::string::npos);
  EXPECT_EQ(root.find("version")->as_string(), "2.1.0");

  const serve::JsonValue* runs = root.find("runs");
  ASSERT_TRUE(runs != nullptr && runs->is_array());
  ASSERT_EQ(runs->as_array().size(), 1u);
  const serve::JsonValue& run = runs->as_array()[0];
  const serve::JsonValue* driver = run.find("tool")->find("driver");
  EXPECT_EQ(driver->find("name")->as_string(), "owl");
  EXPECT_EQ(driver->find("rules")->as_array().size(), 7u);

  const serve::JsonValue* results = run.find("results");
  ASSERT_TRUE(results != nullptr && results->is_array());
  ASSERT_EQ(results->as_array().size(), 1u);
  const serve::JsonValue& result = results->as_array()[0];
  EXPECT_EQ(result.find("ruleId")->as_string(), "OWL-DL-001");
  EXPECT_EQ(result.find("ruleIndex")->as_int(), 0);
  EXPECT_EQ(result.find("level")->as_string(), "error");
  const serve::JsonValue* location =
      result.find("locations")->as_array()[0].find("physicalLocation");
  EXPECT_EQ(location->find("artifactLocation")->find("uri")->as_string(),
            "teller.c");
  EXPECT_EQ(location->find("region")->find("startLine")->as_int(), 14);
  EXPECT_EQ(result.find("properties")->find("target")->as_string(),
            "lock_cycle.mir");
}

TEST(SarifTest, EmptyFindingsStillRenderAValidLog) {
  const std::vector<BugReport> none;
  const std::string log = render_sarif({SarifTarget{"clean.mir", &none}});
  serve::JsonValue root;
  std::string error;
  ASSERT_TRUE(serve::JsonValue::parse(log, root, error)) << error;
  EXPECT_TRUE(
      root.find("runs")->as_array()[0].find("results")->as_array().empty());
}

// --- pipeline integration --------------------------------------------------

core::PipelineTarget target_for(const std::shared_ptr<ir::Module>& m,
                                const std::string& name) {
  core::PipelineTarget t;
  t.name = name;
  t.module = m.get();
  t.factory = [m] {
    auto machine =
        std::make_unique<interp::Machine>(*m, interp::MachineOptions{});
    machine->start(m->find_function("main"));
    return machine;
  };
  return t;
}

const std::vector<std::string>& planted_examples() {
  static const std::vector<std::string> kNames = {
      "lock_cycle.mir", "atomicity_split.mir", "double_unlock.mir",
      "cv_missed_wakeup.mir"};
  return kNames;
}

TEST(CheckerPipelineTest, OutputIsByteIdenticalAcrossJobs) {
  std::vector<std::shared_ptr<ir::Module>> modules;
  for (const std::string& name : planted_examples()) {
    modules.push_back(load_example(name));
  }
  std::string baseline_serialized;
  std::string baseline_sarif;
  for (const unsigned jobs : {1u, 4u}) {
    support::metrics().clear_for_test();
    core::PipelineOptions options;
    options.jobs = jobs;
    options.checkers = all_checkers();
    std::vector<core::PipelineTarget> targets;
    for (std::size_t i = 0; i < modules.size(); ++i) {
      targets.push_back(target_for(modules[i], planted_examples()[i]));
    }
    const std::vector<core::PipelineResult> results =
        core::Pipeline(options).run_many(targets);

    std::string serialized;
    std::vector<SarifTarget> sarif_targets;
    for (const core::PipelineResult& result : results) {
      EXPECT_TRUE(result.checkers_ran);
      EXPECT_EQ(result.checker_findings.size(), 1u) << result.target_name;
      serialized += core::serialize_result(result);
      sarif_targets.push_back(
          SarifTarget{result.target_name, &result.checker_findings});
    }
    const std::string sarif = render_sarif(sarif_targets);
    if (jobs == 1) {
      baseline_serialized = serialized;
      baseline_sarif = sarif;
    } else {
      EXPECT_EQ(serialized, baseline_serialized);
      EXPECT_EQ(sarif, baseline_sarif);
    }
  }
  support::metrics().clear_for_test();
}

TEST(CheckerPipelineTest, OffModeLeavesOutputWithoutCheckerSections) {
  // With the suite off (the default), nothing checker-shaped may appear in
  // any rendered form — the byte-identity-to-seed guarantee the CI gate
  // enforces end to end.
  support::metrics().clear_for_test();
  auto m = load_example("lock_cycle.mir");
  core::PipelineOptions options;
  options.jobs = 1;
  const std::vector<core::PipelineResult> results =
      core::Pipeline(options).run_many({target_for(m, "lock_cycle.mir")});
  ASSERT_EQ(results.size(), 1u);
  const core::PipelineResult& result = results[0];
  EXPECT_FALSE(result.checkers_ran);
  EXPECT_TRUE(result.checker_findings.empty());
  for (const std::string& rendered :
       {core::serialize_result(result), core::render_cli_summary(result),
        core::render_cli_details(result, true)}) {
    EXPECT_EQ(rendered.find("checker"), std::string::npos);
  }
  EXPECT_EQ(support::metrics().serialize().find("checker"),
            std::string::npos);
  support::metrics().clear_for_test();
}

TEST(CheckerPipelineTest, InjectedCheckerFaultDegradesNotDies) {
  support::metrics().clear_for_test();
  auto m = load_example("lock_cycle.mir");
  support::FaultInjector injector(1);
  support::FaultPlan plan;
  ASSERT_TRUE(support::parse_fault_plan("check:throw", plan));
  injector.add_plan(plan);

  core::PipelineOptions options;
  options.jobs = 1;
  options.checkers = all_checkers();
  options.fault_injector = &injector;
  const std::vector<core::PipelineResult> results =
      core::Pipeline(options).run_many({target_for(m, "lock_cycle.mir")});
  ASSERT_EQ(results.size(), 1u);
  const core::PipelineResult& result = results[0];

  // The stage ran, absorbed the fault, reported no findings — and the rest
  // of the pipeline still executed (the store has all three stages).
  EXPECT_TRUE(result.checkers_ran);
  EXPECT_TRUE(result.checker_findings.empty());
  ASSERT_TRUE(result.degraded());
  EXPECT_EQ(result.counts.failures.size(), 1u);
  EXPECT_EQ(result.counts.failures[0].stage,
            support::PipelineStage::kCheckers);
  EXPECT_TRUE(result.store.has_stage(core::Stage::kRawDetection));
  EXPECT_TRUE(result.store.has_stage(core::Stage::kAfterRaceVerifier));
  support::metrics().clear_for_test();
}

}  // namespace
}  // namespace owl::checkers
