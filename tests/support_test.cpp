// Unit tests for src/support.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace owl {
namespace {

// ---- Status / Result ----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = parse_error("bad token");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.to_string(), "parse-error: bad token");
}

TEST(StatusTest, AllConstructorsMapToTheirCodes) {
  EXPECT_EQ(invalid_argument_error("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(not_found_error("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(failed_precondition_error("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(verify_error("x").code(), StatusCode::kVerifyError);
  EXPECT_EQ(runtime_error("x").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(unimplemented_error("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(not_found_error("nope"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrDieThrowsOnError) {
  Result<int> r(internal_error("boom"));
  EXPECT_THROW(std::move(r).value_or_die(), std::runtime_error);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// ---- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowZeroIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, NextInInclusiveRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_in(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(13);
  Rng split = a.split();
  // The split stream should not replay the parent's next values.
  Rng b(13);
  b.next();  // advance past the draw consumed by split()
  EXPECT_NE(split.next(), b.next());
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
  EXPECT_FALSE(rng.chance(1, 0));  // zero denominator: never
}

// ---- strings ----

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%s", ""), "");
}

TEST(StringsTest, ParseInt64Valid) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int64("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_int64("-45", v));
  EXPECT_EQ(v, -45);
  EXPECT_TRUE(parse_int64("  77 ", v));
  EXPECT_EQ(v, 77);
  EXPECT_TRUE(parse_int64("9223372036854775807", v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(parse_int64("-9223372036854775808", v));
  EXPECT_EQ(v, INT64_MIN);
}

TEST(StringsTest, ParseInt64Invalid) {
  std::int64_t v = 0;
  EXPECT_FALSE(parse_int64("", v));
  EXPECT_FALSE(parse_int64("-", v));
  EXPECT_FALSE(parse_int64("12x", v));
  EXPECT_FALSE(parse_int64("9223372036854775808", v));   // overflow
  EXPECT_FALSE(parse_int64("-9223372036854775809", v));  // underflow
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(24641), "24,641");
  EXPECT_EQ(with_commas(18446744073709551614ULL), "18,446,744,073,709,551,614");
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(is_identifier("foo"));
  EXPECT_TRUE(is_identifier("_x1.y$"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier("a b"));
}

// ---- table ----

TEST(TableTest, AlignsColumns) {
  TableFormatter t({"Name", "N"}, {Align::kLeft, Align::kRight});
  t.add_row({"apache", "715"});
  t.add_row({"x", "3"});
  const std::string out = t.render();
  // Column widths: "apache" (6) and "715" (3, right-aligned).
  EXPECT_NE(out.find("apache | 715"), std::string::npos);
  EXPECT_NE(out.find("x      |   3"), std::string::npos);
}

TEST(TableTest, RuleRendersDashes) {
  TableFormatter t({"A"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + explicit rule
  std::size_t dashes = 0;
  for (const char c : out) {
    if (c == '-') ++dashes;
  }
  EXPECT_GE(dashes, 2u);
  EXPECT_EQ(t.row_count(), 3u);
}

// ---- stats ----

TEST(StatsTest, EmptyIsNaN) {
  SampleStats s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.percentile(50)));
}

TEST(StatsTest, BasicMoments) {
  SampleStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(StatsTest, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(StatsTest, InterleavedAddAndQuery) {
  SampleStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

}  // namespace
}  // namespace owl
