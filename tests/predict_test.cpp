// Tests for the sync-preserving race predictor (DESIGN.md §12): SP-closure
// unit cases on hand-built traces, and the pipeline contract on the shipped
// examples — final report sets identical across --predict modes (with
// predicted_only.mir as the deliberate exception: a planted race the
// observed schedules never exhibit, which only prediction + targeted replay
// can surface), byte-identical behavior across jobs, and audit mode
// observing zero wrongly-pruned races.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "race/predict/sp_predictor.hpp"
#include "support/metrics.hpp"

namespace owl::race::predict {
namespace {

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

const ir::Instruction* find_instr(const ir::Function* f, ir::Opcode op,
                                  std::size_t n = 0) {
  for (const auto& bb : f->blocks()) {
    for (const auto& instr : bb->instructions()) {
      if (instr->opcode() == op) {
        if (n == 0) return instr.get();
        --n;
      }
    }
  }
  return nullptr;
}

// --------------------------------------------------------------------------
// SP-closure unit cases
// --------------------------------------------------------------------------

/// The unit traces borrow instructions from this module; the functions also
/// exercise the steering-read analysis (a load feeding a branch steers, a
/// load feeding only arithmetic does not).
std::shared_ptr<ir::Module> unit_module() {
  return parse_ok(R"(module synthetic
global @x
global @flag
global @bal
global @l
func @w() {
entry:
  store 41, @x
  store 1, @flag
  ret
}
func @r() {
entry:
  %f = load @flag
  %ok = icmp ne %f, 0
  br %ok, use, done
use:
  %v = load @x
  ret
done:
  ret
}
func @inc_a() {
entry:
  %v = load @bal
  %n = add %v, 1
  store %n, @bal
  ret
}
func @inc_b() {
entry:
  %v = load @bal
  %n = add %v, 1
  store %n, @bal
  ret
}
func @cs_a() {
entry:
  lock @l
  store 1, @x
  unlock @l
  ret
}
func @cs_b() {
entry:
  lock @l
  store 2, @x
  unlock @l
  ret
}
func @main() {
entry:
  ret
}
)");
}

constexpr interp::Address kX = 10;
constexpr interp::Address kFlag = 11;
constexpr interp::Address kBal = 12;
constexpr interp::Address kLock = 13;
constexpr interp::Address kSync = 20;
constexpr interp::Address kStat = 30;

TraceEvent ev(TraceEvent::Kind kind, interp::ThreadId tid,
              interp::Address addr, const ir::Instruction* instr = nullptr,
              interp::Word value = 0) {
  TraceEvent e;
  e.kind = kind;
  e.tid = tid;
  e.addr = addr;
  e.instr = instr;
  e.value = value;
  return e;
}

/// Main thread (tid 0) spawning workers 1 and 2 — every unit trace starts
/// with this so the closure's thread-creation rule is satisfiable.
std::vector<TraceEvent> spawn_two() {
  return {ev(TraceEvent::Kind::kThreadCreate, 0, 1),
          ev(TraceEvent::Kind::kThreadCreate, 0, 2)};
}

Trace trace_of(std::vector<TraceEvent> events) {
  Trace trace;
  trace.events = std::move(events);
  return trace;
}

RaceReport report_for(const ir::Instruction* a, const ir::Instruction* b,
                      ReportKind kind = ReportKind::kDataRace) {
  RaceReport report;
  report.kind = kind;
  report.first.instr = a;
  report.second.instr = b;
  return report;
}

ReportKey key_of(const RaceReport& report) { return report.key(); }

TEST(SpPredictorTest, GuardedHandoffPinsTheDataPair) {
  auto m = unit_module();
  const auto* w_x = find_instr(m->find_function("w"), ir::Opcode::kStore, 0);
  const auto* w_flag = find_instr(m->find_function("w"), ir::Opcode::kStore, 1);
  const auto* r_flag = find_instr(m->find_function("r"), ir::Opcode::kLoad, 0);
  const auto* r_x = find_instr(m->find_function("r"), ir::Opcode::kLoad, 1);
  ASSERT_TRUE(w_x && w_flag && r_flag && r_x);

  // Observed order: writer publishes @x then @flag; reader sees flag=1 and
  // dereferences @x. The flag read steers the branch guarding the @x read,
  // so any reordering that co-enables (w_x, r_x) must preserve r_flag's
  // writer — which is po-after w_x. Infeasible. The (w_flag, r_flag) pair
  // itself has no such constraint: a genuine race.
  std::vector<TraceEvent> events = spawn_two();
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kX, w_x, 41));
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kFlag, w_flag, 1));
  events.push_back(ev(TraceEvent::Kind::kRead, 2, kFlag, r_flag, 1));
  events.push_back(ev(TraceEvent::Kind::kRead, 2, kX, r_x, 41));
  const std::vector<Trace> traces{trace_of(std::move(events))};
  const std::vector<RaceReport> reduced{report_for(w_x, r_x),
                                        report_for(w_flag, r_flag)};

  const PredictOutcome out = SpPredictor().analyze(m.get(), traces, reduced);
  EXPECT_EQ(out.verdict_for(key_of(reduced[0])), Feasibility::kInfeasible);
  EXPECT_EQ(out.verdict_for(key_of(reduced[1])), Feasibility::kFeasible);
  EXPECT_EQ(out.candidates, 2u);
  EXPECT_EQ(out.infeasible_keys, 1u);
  EXPECT_GT(out.closure_iterations, 0u);

  // Without a module every read is steering — the strictest closure agrees
  // on both verdicts here (the flag pair's feasibility needs no rf slack).
  const PredictOutcome strict = SpPredictor().analyze(nullptr, traces, reduced);
  EXPECT_EQ(strict.verdict_for(key_of(reduced[0])), Feasibility::kInfeasible);
  EXPECT_EQ(strict.verdict_for(key_of(reduced[1])), Feasibility::kFeasible);
}

TEST(SpPredictorTest, DataOnlyReadDoesNotPinItsWriter) {
  auto m = unit_module();
  const auto* store_a = find_instr(m->find_function("inc_a"), ir::Opcode::kStore);
  const auto* load_b = find_instr(m->find_function("inc_b"), ir::Opcode::kLoad);
  const auto* store_b = find_instr(m->find_function("inc_b"), ir::Opcode::kStore);
  const auto* load_a = find_instr(m->find_function("inc_a"), ir::Opcode::kLoad);
  ASSERT_TRUE(store_a && load_b && store_b && load_a);

  // Sequential lost-update: t1 runs its read-modify-write, then t2. t2's
  // read observed t1's store, but that value only feeds arithmetic — it
  // steers nothing — so the closure may let it diverge and the two stores
  // can be co-enabled (the classic lost update). Treating every read as
  // steering (module=nullptr) pins t2's read to t1's store and wrongly
  // closes the door: this is exactly the precision the steering analysis
  // buys, erring toward kFeasible.
  std::vector<TraceEvent> events = spawn_two();
  events.push_back(ev(TraceEvent::Kind::kRead, 1, kBal, load_a, 0));
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kBal, store_a, 1));
  events.push_back(ev(TraceEvent::Kind::kRead, 2, kBal, load_b, 1));
  events.push_back(ev(TraceEvent::Kind::kWrite, 2, kBal, store_b, 2));
  const std::vector<Trace> traces{trace_of(std::move(events))};
  const std::vector<RaceReport> reduced{report_for(store_a, store_b)};

  const PredictOutcome relaxed = SpPredictor().analyze(m.get(), traces, reduced);
  EXPECT_EQ(relaxed.verdict_for(key_of(reduced[0])), Feasibility::kFeasible);

  const PredictOutcome strict = SpPredictor().analyze(nullptr, traces, reduced);
  EXPECT_EQ(strict.verdict_for(key_of(reduced[0])), Feasibility::kInfeasible);
}

TEST(SpPredictorTest, OverlappingCriticalSectionsCannotBeReordered) {
  auto m = unit_module();
  const auto* cs_a = find_instr(m->find_function("cs_a"), ir::Opcode::kStore);
  const auto* cs_b = find_instr(m->find_function("cs_b"), ir::Opcode::kStore);
  ASSERT_TRUE(cs_a && cs_b);

  // Both accesses sit inside critical sections on the same lock: co-enabling
  // them would need both sections open at once, which the lock-semantics
  // closure rule (earlier acquire's release must be included — but it is
  // po-after the access) contradicts.
  std::vector<TraceEvent> events = spawn_two();
  events.push_back(ev(TraceEvent::Kind::kAcquire, 1, kLock));
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kX, cs_a, 1));
  events.push_back(ev(TraceEvent::Kind::kRelease, 1, kLock));
  events.push_back(ev(TraceEvent::Kind::kAcquire, 2, kLock));
  events.push_back(ev(TraceEvent::Kind::kWrite, 2, kX, cs_b, 2));
  events.push_back(ev(TraceEvent::Kind::kRelease, 2, kLock));
  const std::vector<Trace> traces{trace_of(std::move(events))};
  const std::vector<RaceReport> reduced{report_for(cs_a, cs_b)};

  const PredictOutcome out = SpPredictor().analyze(m.get(), traces, reduced);
  EXPECT_EQ(out.verdict_for(key_of(reduced[0])), Feasibility::kInfeasible);
  EXPECT_EQ(out.infeasible_keys, 1u);
}

TEST(SpPredictorTest, HbEdgeKeepsItsReleaseSideSource) {
  auto m = unit_module();
  const auto* w_x = find_instr(m->find_function("w"), ir::Opcode::kStore, 0);
  const auto* r_x = find_instr(m->find_function("r"), ir::Opcode::kLoad, 1);
  ASSERT_TRUE(w_x && r_x);

  // hb_release after the write, hb_acquire before the read: the acquire
  // side must keep its observed source, which is po-after the write — the
  // pair is ordered in every sync-preserving reordering.
  std::vector<TraceEvent> events = spawn_two();
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kX, w_x, 41));
  events.push_back(ev(TraceEvent::Kind::kHbRelease, 1, kSync));
  events.push_back(ev(TraceEvent::Kind::kHbAcquire, 2, kSync));
  events.push_back(ev(TraceEvent::Kind::kRead, 2, kX, r_x, 41));
  const std::vector<Trace> traces{trace_of(std::move(events))};
  const std::vector<RaceReport> reduced{report_for(w_x, r_x)};

  const PredictOutcome out = SpPredictor().analyze(m.get(), traces, reduced);
  EXPECT_EQ(out.verdict_for(key_of(reduced[0])), Feasibility::kInfeasible);
}

TEST(SpPredictorTest, JoinRequiresTheJoinedThreadsFinish) {
  auto m = unit_module();
  const auto* w_x = find_instr(m->find_function("w"), ir::Opcode::kStore, 0);
  const auto* cs_b = find_instr(m->find_function("cs_b"), ir::Opcode::kStore);
  ASSERT_TRUE(w_x && cs_b);

  // t2 joins t1 before its access: the join forces t1's finish — po-after
  // t1's access — into the ideal, so the pair is ordered.
  std::vector<TraceEvent> events = spawn_two();
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kX, w_x, 41));
  events.push_back(ev(TraceEvent::Kind::kThreadFinish, 1, 0));
  events.push_back(ev(TraceEvent::Kind::kThreadJoin, 2, 1));
  events.push_back(ev(TraceEvent::Kind::kWrite, 2, kX, cs_b, 2));
  const std::vector<Trace> traces{trace_of(std::move(events))};
  const std::vector<RaceReport> reduced{report_for(w_x, cs_b)};

  const PredictOutcome out = SpPredictor().analyze(m.get(), traces, reduced);
  EXPECT_EQ(out.verdict_for(key_of(reduced[0])), Feasibility::kInfeasible);
}

TEST(SpPredictorTest, AtomicityReportsAreNeverJudged) {
  auto m = unit_module();
  const auto* w_flag = find_instr(m->find_function("w"), ir::Opcode::kStore, 1);
  const auto* r_flag = find_instr(m->find_function("r"), ir::Opcode::kLoad, 0);
  ASSERT_TRUE(w_flag && r_flag);

  std::vector<TraceEvent> events = spawn_two();
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kFlag, w_flag, 1));
  events.push_back(ev(TraceEvent::Kind::kRead, 2, kFlag, r_flag, 1));
  const std::vector<Trace> traces{trace_of(std::move(events))};
  const std::vector<RaceReport> reduced{
      report_for(w_flag, r_flag, ReportKind::kAtomicityViolation)};

  // Atomicity violations are verified by reproduction, not by co-enabling
  // one pair — the SP question does not apply and the verdict must stay
  // kUnknown (never pruned) without burning closure work.
  const PredictOutcome out = SpPredictor().analyze(m.get(), traces, reduced);
  EXPECT_EQ(out.verdict_for(key_of(reduced[0])), Feasibility::kUnknown);
  EXPECT_EQ(out.candidates, 0u);
}

TEST(SpPredictorTest, PairCapDegradesToUnknownNeverInfeasible) {
  auto m = unit_module();
  const auto* w_x = find_instr(m->find_function("w"), ir::Opcode::kStore, 0);
  const auto* r_x = find_instr(m->find_function("r"), ir::Opcode::kLoad, 1);
  const auto* w_flag = find_instr(m->find_function("w"), ir::Opcode::kStore, 1);
  const auto* r_flag = find_instr(m->find_function("r"), ir::Opcode::kLoad, 0);
  ASSERT_TRUE(w_x && r_x && w_flag && r_flag);

  // Same guarded-handoff trace whose data pair is provably infeasible —
  // but with a zero pair budget nothing was actually checked, and an
  // unchecked pair must degrade to kUnknown, never to a prune.
  std::vector<TraceEvent> events = spawn_two();
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kX, w_x, 41));
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kFlag, w_flag, 1));
  events.push_back(ev(TraceEvent::Kind::kRead, 2, kFlag, r_flag, 1));
  events.push_back(ev(TraceEvent::Kind::kRead, 2, kX, r_x, 41));
  const std::vector<Trace> traces{trace_of(std::move(events))};
  const std::vector<RaceReport> reduced{report_for(w_x, r_x)};

  SpPredictor::Options options;
  options.max_pairs_per_key = 0;
  const PredictOutcome out =
      SpPredictor(options).analyze(m.get(), traces, reduced);
  EXPECT_EQ(out.verdict_for(key_of(reduced[0])), Feasibility::kUnknown);
  EXPECT_EQ(out.infeasible_keys, 0u);
  EXPECT_EQ(out.candidates, 0u);
}

TEST(SpPredictorTest, PredictsRacesTheScheduleNeverExhibited) {
  auto m = unit_module();
  const auto* store_a = find_instr(m->find_function("inc_a"), ir::Opcode::kStore);
  const auto* store_b = find_instr(m->find_function("inc_b"), ir::Opcode::kStore);
  const auto* log_a = find_instr(m->find_function("cs_a"), ir::Opcode::kStore);
  const auto* log_b = find_instr(m->find_function("cs_b"), ir::Opcode::kStore);
  ASSERT_TRUE(store_a && store_b && log_a && log_b);

  // The predicted_only shape: two unguarded @stat writes straddling two
  // non-overlapping critical sections on unrelated data. The observed
  // order never co-enables them, but nothing prevents the reordering —
  // the predictor must synthesize the candidate the detector never saw.
  std::vector<TraceEvent> events = spawn_two();
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, kStat, store_a, 1));
  events.push_back(ev(TraceEvent::Kind::kAcquire, 1, kLock));
  events.push_back(ev(TraceEvent::Kind::kWrite, 1, 40, log_a, 1));
  events.push_back(ev(TraceEvent::Kind::kRelease, 1, kLock));
  events.push_back(ev(TraceEvent::Kind::kAcquire, 2, kLock));
  events.push_back(ev(TraceEvent::Kind::kWrite, 2, 41, log_b, 1));
  events.push_back(ev(TraceEvent::Kind::kRelease, 2, kLock));
  events.push_back(ev(TraceEvent::Kind::kWrite, 2, kStat, store_b, 2));
  Trace trace = trace_of(std::move(events));
  trace.object_names[kStat] = "stat";
  const std::vector<Trace> traces{std::move(trace)};

  const PredictOutcome out = SpPredictor().analyze(m.get(), traces, {});
  ASSERT_EQ(out.predicted_new.size(), 1u);
  const RaceReport& predicted = out.predicted_new[0];
  EXPECT_TRUE(predicted.predicted);
  EXPECT_EQ(predicted.kind, ReportKind::kDataRace);
  EXPECT_EQ(predicted.object_name, "stat");
  EXPECT_EQ(key_of(predicted),
            (ReportKey{std::min(store_a->id(), store_b->id()),
                       std::max(store_a->id(), store_b->id())}));

  // A key the detector already reported is judged, never re-synthesized.
  const std::vector<RaceReport> reduced{report_for(store_a, store_b)};
  const PredictOutcome judged = SpPredictor().analyze(m.get(), traces, reduced);
  EXPECT_EQ(judged.verdict_for(key_of(reduced[0])), Feasibility::kFeasible);
  EXPECT_TRUE(judged.predicted_new.empty());
}

// --------------------------------------------------------------------------
// Shipped-example contract
// --------------------------------------------------------------------------

std::filesystem::path examples_dir() { return OWL_EXAMPLES_DIR; }

std::shared_ptr<ir::Module> load_example(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return parse_ok(text.str());
}

std::vector<std::filesystem::path> example_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(examples_dir())) {
    if (entry.path().extension() == ".mir") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  EXPECT_GE(files.size(), 6u);
  return files;
}

core::PipelineTarget target_for(const std::shared_ptr<ir::Module>& m) {
  core::PipelineTarget t;
  t.name = m->name();
  t.module = m.get();
  t.factory = [m] {
    auto machine =
        std::make_unique<interp::Machine>(*m, interp::MachineOptions{});
    machine->start(m->find_function("main"));
    return machine;
  };
  return t;
}

core::PipelineResult run_one(const std::shared_ptr<ir::Module>& m,
                             PredictMode mode, unsigned jobs = 1) {
  support::metrics().clear_for_test();
  core::PipelineOptions options;
  options.jobs = jobs;
  options.predict = mode;
  const core::Pipeline pipeline(options);
  std::vector<core::PipelineResult> results =
      pipeline.run_many({target_for(m)});
  EXPECT_EQ(results.size(), 1u);
  return std::move(results[0]);
}

/// Everything behavioral about a pipeline sweep — the byte-identity
/// currency of the jobs-invariance test (mirrors prescreen_test.cpp).
std::string behavior_fingerprint(const std::vector<core::PipelineResult>& rs) {
  std::ostringstream out;
  for (const core::PipelineResult& r : rs) {
    out << r.target_name << '\n'
        << r.counts.serialize() << '\n'
        << r.store.canonical_dump() << "exploits=" << r.exploits.size()
        << " attacks=" << r.attacks.size()
        << " confirmed=" << r.confirmed_attacks() << '\n';
  }
  out << support::metrics().serialize();
  return out.str();
}

TEST(PredictPipelineTest, AuditAgreesWithExhaustiveOnEveryExample) {
  for (const auto& path : example_files()) {
    auto m = load_example(path);
    const bool planted = path.filename() == "predicted_only.mir";

    const core::PipelineResult off = run_one(m, PredictMode::kOff);
    EXPECT_FALSE(off.predict_ran) << path.filename();
    // Off mode must leak nothing: no predict counters, no predict line in
    // the counts serialization.
    EXPECT_EQ(support::metrics().serialize().find("predict"),
              std::string::npos)
        << path.filename();
    EXPECT_EQ(off.counts.serialize().find("predict"), std::string::npos)
        << path.filename();

    const core::PipelineResult audit = run_one(m, PredictMode::kAudit);
    EXPECT_TRUE(audit.predict_ran) << path.filename();
    EXPECT_EQ(audit.store.canonical_dump(), off.store.canonical_dump())
        << "audit changed the report stream for " << path.filename();
    EXPECT_EQ(audit.counts.remaining, off.counts.remaining) << path.filename();
    EXPECT_EQ(support::metrics().advisory("predict.audit_violations").value(),
              0u)
        << "SP-closure wrongly called a verified race infeasible in "
        << path.filename();

    const core::PipelineResult on = run_one(m, PredictMode::kOn);
    EXPECT_TRUE(on.predict_ran) << path.filename();
    if (planted) {
      // The planted example: exhaustive exploration never exhibits the
      // race; prediction finds it and targeted replay confirms it.
      EXPECT_EQ(off.counts.remaining, 0u);
      EXPECT_EQ(on.counts.remaining, 1u);
      EXPECT_EQ(on.counts.predict_new_confirmed, 1u);
    } else {
      EXPECT_EQ(on.store.canonical_dump(), off.store.canonical_dump())
          << "--predict on changed the final reports for " << path.filename();
      EXPECT_EQ(on.counts.remaining, off.counts.remaining) << path.filename();
    }
  }
  support::metrics().clear_for_test();
}

TEST(PredictPipelineTest, PipelineIsByteIdenticalAcrossJobsInEveryMode) {
  const std::vector<std::filesystem::path> files = example_files();
  std::vector<std::shared_ptr<ir::Module>> modules;
  for (const auto& path : files) modules.push_back(load_example(path));

  for (const PredictMode mode :
       {PredictMode::kOff, PredictMode::kOn, PredictMode::kAudit}) {
    std::string baseline;
    for (const unsigned jobs : {1u, 4u}) {
      support::metrics().clear_for_test();
      core::PipelineOptions options;
      options.jobs = jobs;
      options.predict = mode;
      const core::Pipeline pipeline(options);
      std::vector<core::PipelineTarget> targets;
      for (const auto& m : modules) targets.push_back(target_for(m));
      const std::string fingerprint =
          behavior_fingerprint(pipeline.run_many(targets));
      if (jobs == 1) {
        baseline = fingerprint;
      } else {
        EXPECT_EQ(fingerprint, baseline)
            << "predict mode " << predict_mode_name(mode)
            << " is jobs-dependent at jobs=" << jobs;
      }
    }
  }
  support::metrics().clear_for_test();
}

TEST(PredictPipelineTest, PredictionSlashesVerifierWorkOnGuardedExamples) {
  for (const char* name : {"guarded_publish.mir", "stale_handoff.mir"}) {
    auto m = load_example(examples_dir() / name);

    const core::PipelineResult off = run_one(m, PredictMode::kOff);
    const core::PipelineResult on = run_one(m, PredictMode::kOn);

    // Identical final reports...
    EXPECT_EQ(on.store.canonical_dump(), off.store.canonical_dump()) << name;
    // ...from at least 2x fewer verifier candidates: the guarded handoff
    // pairs are SP-infeasible and never reach schedule exploration.
    EXPECT_GE(on.counts.predict_pruned, 1u) << name;
    const std::size_t off_verified = off.counts.after_annotation;
    const std::size_t on_verified =
        on.counts.after_annotation - on.counts.predict_pruned;
    EXPECT_GE(off_verified, 2 * on_verified)
        << name << ": expected a >=2x verifier-candidate reduction, got "
        << off_verified << " -> " << on_verified;
    EXPECT_GT(on.counts.predict_schedules_avoided, 0u) << name;
    EXPECT_GT(support::metrics().counter("predict.schedules_avoided").value(),
              0u)
        << name;
  }
  support::metrics().clear_for_test();
}

TEST(PredictPipelineTest, PredictedOnlyRaceIsFoundAndReplayConfirmed) {
  auto m = load_example(examples_dir() / "predicted_only.mir");

  const core::PipelineResult off = run_one(m, PredictMode::kOff);
  EXPECT_EQ(off.counts.raw_reports, 0u);
  EXPECT_TRUE(off.store.stage(core::Stage::kAfterRaceVerifier).empty());

  const core::PipelineResult on = run_one(m, PredictMode::kOn);
  const auto& survivors = on.store.stage(core::Stage::kAfterRaceVerifier);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_TRUE(survivors[0].predicted);
  EXPECT_TRUE(survivors[0].verified);
  EXPECT_EQ(survivors[0].object_name, "stat");
  EXPECT_EQ(on.counts.predict_new_confirmed, 1u);
  support::metrics().clear_for_test();
}

}  // namespace
}  // namespace owl::race::predict
