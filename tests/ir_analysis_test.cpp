// Unit tests for CFG, dominators, post-dominators, loops, call graph, and
// control dependence — the static backbone of Algorithm 1 and §5.1.
#include <gtest/gtest.h>

#include "ir/callgraph.hpp"
#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "ir/loops.hpp"
#include "ir/parser.hpp"
#include "vuln/control_dep.hpp"

namespace owl::ir {
namespace {

std::unique_ptr<Module> parse_ok(std::string_view text) {
  auto result = parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return std::move(result).value();
}

// A diamond: entry -> (then|else) -> join -> exit.
const char* kDiamond = R"(module d
global @g
func @f() -> i64 {
entry:
  %v = load @g
  %c = icmp eq %v, 0
  br %c, then, else
then:
  jmp join
else:
  jmp join
join:
  ret %v
}
)";

TEST(CfgTest, DiamondEdges) {
  auto m = parse_ok(kDiamond);
  const Function* f = m->find_function("f");
  const Cfg cfg(*f);
  const BasicBlock* entry = f->find_block("entry");
  const BasicBlock* then_bb = f->find_block("then");
  const BasicBlock* join = f->find_block("join");

  EXPECT_EQ(cfg.successors(entry).size(), 2u);
  EXPECT_EQ(cfg.predecessors(join).size(), 2u);
  EXPECT_EQ(cfg.predecessors(entry).size(), 0u);
  EXPECT_EQ(cfg.successors(then_bb).front(), join);
  EXPECT_EQ(cfg.exit_blocks().size(), 1u);
  EXPECT_EQ(cfg.exit_blocks().front(), join);
}

TEST(CfgTest, ReversePostOrderStartsAtEntry) {
  auto m = parse_ok(kDiamond);
  const Function* f = m->find_function("f");
  const Cfg cfg(*f);
  ASSERT_EQ(cfg.reverse_post_order().size(), 4u);
  EXPECT_EQ(cfg.reverse_post_order().front(), f->entry());
  // Join must come after both branch arms in RPO.
  EXPECT_EQ(cfg.rpo_index(f->find_block("join")), 3u);
}

TEST(CfgTest, UnreachableBlockFlagged) {
  auto m = parse_ok(R"(module u
func @f() {
entry:
  ret
island:
  ret
}
)");
  const Function* f = m->find_function("f");
  const Cfg cfg(*f);
  EXPECT_TRUE(cfg.is_reachable(f->find_block("entry")));
  EXPECT_FALSE(cfg.is_reachable(f->find_block("island")));
}

TEST(DominatorTest, DiamondDominance) {
  auto m = parse_ok(kDiamond);
  const Function* f = m->find_function("f");
  const Cfg cfg(*f);
  const DominatorTree dom(cfg);
  const BasicBlock* entry = f->find_block("entry");
  const BasicBlock* then_bb = f->find_block("then");
  const BasicBlock* else_bb = f->find_block("else");
  const BasicBlock* join = f->find_block("join");

  EXPECT_TRUE(dom.dominates(entry, join));
  EXPECT_TRUE(dom.dominates(entry, then_bb));
  EXPECT_FALSE(dom.dominates(then_bb, join));
  EXPECT_FALSE(dom.dominates(else_bb, join));
  EXPECT_TRUE(dom.dominates(join, join));
  EXPECT_EQ(dom.idom(join), entry);
  EXPECT_EQ(dom.idom(entry), nullptr);
}

TEST(PostDominatorTest, DiamondPostDominance) {
  auto m = parse_ok(kDiamond);
  const Function* f = m->find_function("f");
  const Cfg cfg(*f);
  const PostDominatorTree pdom(cfg);
  const BasicBlock* entry = f->find_block("entry");
  const BasicBlock* then_bb = f->find_block("then");
  const BasicBlock* join = f->find_block("join");

  EXPECT_TRUE(pdom.post_dominates(join, entry));
  EXPECT_TRUE(pdom.post_dominates(join, then_bb));
  EXPECT_FALSE(pdom.post_dominates(then_bb, entry));
  EXPECT_EQ(pdom.ipdom(entry), join);
}

TEST(PostDominatorTest, MultiExitFunction) {
  auto m = parse_ok(R"(module me
global @g
func @f() -> i64 {
entry:
  %v = load @g
  %c = icmp eq %v, 0
  br %c, a, b
a:
  ret 1
b:
  ret 2
}
)");
  const Function* f = m->find_function("f");
  const Cfg cfg(*f);
  const PostDominatorTree pdom(cfg);
  // Neither exit post-dominates the entry (virtual exit does).
  EXPECT_FALSE(pdom.post_dominates(f->find_block("a"), f->find_block("entry")));
  EXPECT_FALSE(pdom.post_dominates(f->find_block("b"), f->find_block("entry")));
  EXPECT_EQ(pdom.ipdom(f->find_block("entry")), nullptr);
}

const char* kLoop = R"(module l
global @flag
func @wait() {
entry:
  jmp header
header:
  %v = load @flag
  %c = icmp eq %v, 0
  br %c, spin, out
spin:
  yield
  jmp header
out:
  ret
}
)";

TEST(LoopTest, DetectsNaturalLoop) {
  auto m = parse_ok(kLoop);
  const Function* f = m->find_function("wait");
  const LoopInfo loops(*f);
  ASSERT_EQ(loops.loops().size(), 1u);
  const Loop& loop = loops.loops().front();
  EXPECT_EQ(loop.header, f->find_block("header"));
  EXPECT_TRUE(loop.contains(f->find_block("spin")));
  EXPECT_FALSE(loop.contains(f->find_block("out")));
  EXPECT_FALSE(loop.contains(f->find_block("entry")));
}

TEST(LoopTest, InLoopAndExitQueries) {
  auto m = parse_ok(kLoop);
  const Function* f = m->find_function("wait");
  const LoopInfo loops(*f);
  const Instruction* load = f->find_block("header")->front();
  const Instruction* branch = f->find_block("header")->terminator();
  EXPECT_TRUE(loops.in_loop(load));
  EXPECT_TRUE(loops.can_exit_loop(branch));
  EXPECT_FALSE(loops.in_loop(f->find_block("out")->front()));
}

TEST(LoopTest, NestedLoopsInnermostWins) {
  auto m = parse_ok(R"(module n
global @a
func @f() {
entry:
  jmp oh
oh:
  %x = load @a
  %c1 = icmp eq %x, 0
  br %c1, ih, out
ih:
  %y = load @a
  %c2 = icmp eq %y, 0
  br %c2, ih, oh
out:
  ret
}
)");
  const Function* f = m->find_function("f");
  const LoopInfo loops(*f);
  ASSERT_EQ(loops.loops().size(), 2u);
  const Loop* inner = loops.innermost_loop(f->find_block("ih"));
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->header, f->find_block("ih"));
  const Loop* outer = loops.innermost_loop(f->find_block("oh"));
  EXPECT_EQ(outer->header, f->find_block("oh"));
}

TEST(LoopTest, StraightLineHasNoLoops) {
  auto m = parse_ok(kDiamond);
  const LoopInfo loops(*m->find_function("f"));
  EXPECT_TRUE(loops.loops().empty());
}

TEST(CallGraphTest, EdgesAndReachability) {
  auto m = parse_ok(R"(module cg
func @leaf() {
entry:
  ret
}
func @mid() {
entry:
  call @leaf()
  ret
}
func @top() {
entry:
  call @mid()
  %t = thread_create @leaf, 0
  thread_join %t
  ret
}
func @island() {
entry:
  ret
}
)");
  const CallGraph cg(*m);
  Function* leaf = m->find_function("leaf");
  Function* mid = m->find_function("mid");
  Function* top = m->find_function("top");
  Function* island = m->find_function("island");

  EXPECT_TRUE(cg.callees(top).contains(mid));
  EXPECT_TRUE(cg.callees(top).contains(leaf));  // via thread_create
  EXPECT_TRUE(cg.callers(leaf).contains(mid));
  EXPECT_EQ(cg.call_sites(leaf).size(), 2u);

  const auto reach = cg.reachable_from({top});
  EXPECT_TRUE(reach.contains(leaf));
  EXPECT_FALSE(reach.contains(island));
  EXPECT_FALSE(cg.is_recursive(top));
}

TEST(CallGraphTest, RecursionDetected) {
  auto m = parse_ok(R"(module rec
func @a() {
entry:
  call @b()
  ret
}
func @b() {
entry:
  call @a()
  ret
}
)");
  const CallGraph cg(*m);
  EXPECT_TRUE(cg.is_recursive(m->find_function("a")));
  EXPECT_TRUE(cg.is_recursive(m->find_function("b")));
}

TEST(ControlDepTest, DiamondArmsDependOnBranch) {
  auto m = parse_ok(kDiamond);
  const Function* f = m->find_function("f");
  const vuln::ControlDependence cd(*f);
  const BasicBlock* entry = f->find_block("entry");
  EXPECT_TRUE(cd.block_depends(f->find_block("then"), entry));
  EXPECT_TRUE(cd.block_depends(f->find_block("else"), entry));
  // The join is reached either way: not control dependent.
  EXPECT_FALSE(cd.block_depends(f->find_block("join"), entry));
  EXPECT_FALSE(cd.block_depends(entry, entry));
}

TEST(ControlDepTest, InstructionLevelQuery) {
  auto m = parse_ok(kDiamond);
  const Function* f = m->find_function("f");
  const vuln::ControlDependence cd(*f);
  const Instruction* branch = f->find_block("entry")->terminator();
  const Instruction* in_then = f->find_block("then")->front();
  const Instruction* in_join = f->find_block("join")->front();
  EXPECT_TRUE(cd.depends(in_then, branch));
  EXPECT_FALSE(cd.depends(in_join, branch));
  EXPECT_FALSE(cd.depends(in_then, in_join));  // not a branch
}

TEST(ControlDepTest, LoopBodyDependsOnLoopBranch) {
  auto m = parse_ok(kLoop);
  const Function* f = m->find_function("wait");
  const vuln::ControlDependence cd(*f);
  const Instruction* loop_branch = f->find_block("header")->terminator();
  EXPECT_TRUE(cd.depends(f->find_block("spin")->front(), loop_branch));
  // The loop header controls its own re-execution.
  EXPECT_TRUE(cd.block_depends(f->find_block("header"),
                               f->find_block("header")));
  // "out" post-dominates the header (it is the sole exit), so by the
  // classic Ferrante-Ottenstein-Warren definition it is NOT control
  // dependent on the loop branch.
  EXPECT_FALSE(
      cd.block_depends(f->find_block("out"), f->find_block("header")));
}

TEST(ControlDepTest, EarlyReturnPattern) {
  // The Libsafe stack_check shape: "if (dying) return 0;" makes the rest
  // of the function control-dependent on the branch.
  auto m = parse_ok(R"(module er
global @dying
func @check() -> i64 {
entry:
  %d = load @dying
  %c = icmp ne %d, 0
  br %c, bypass, work
bypass:
  ret 0
work:
  %r = add 1, 2
  ret %r
}
)");
  const Function* f = m->find_function("check");
  const vuln::ControlDependence cd(*f);
  const BasicBlock* entry = f->find_block("entry");
  EXPECT_TRUE(cd.block_depends(f->find_block("bypass"), entry));
  EXPECT_TRUE(cd.block_depends(f->find_block("work"), entry));
}

}  // namespace
}  // namespace owl::ir
