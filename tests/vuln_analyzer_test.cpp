// Unit tests for Algorithm 1 — the static vulnerability analyzer (§6.1).
#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "vuln/analyzer.hpp"
#include "vuln/hint.hpp"

namespace owl::vuln {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

/// Finds the first instruction with the given opcode in a function.
const ir::Instruction* find_instr(const ir::Function* f, ir::Opcode op) {
  for (const auto& bb : f->blocks()) {
    for (const auto& instr : bb->instructions()) {
      if (instr->opcode() == op) return instr.get();
    }
  }
  return nullptr;
}

/// Builds a single-frame call stack for a corrupted read.
interp::CallStack stack_of(const ir::Instruction* read) {
  return {{read->function(), read}};
}

bool has_site(const VulnAnalysis& analysis, ir::Opcode op, DepKind dep) {
  for (const ExploitReport& e : analysis.exploits) {
    if (e.site != nullptr && e.site->opcode() == op && e.dep == dep) {
      return true;
    }
  }
  return false;
}

TEST(AnalyzerTest, DataFlowToMemcpyLength) {
  auto m = parse_ok(R"(module d
global @cnt
global @buf [8]
global @src [8]
func @f() {
entry:
  %v = load @cnt
  %len = add %v, 1
  memcpy @buf, @src, %len
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  ASSERT_EQ(analysis.exploits.size(), 1u);
  const ExploitReport& e = analysis.exploits.front();
  EXPECT_EQ(e.type, SiteType::kMemoryOp);
  EXPECT_EQ(e.dep, DepKind::kData);
  EXPECT_EQ(e.site->opcode(), ir::Opcode::kMemCopy);
  // The propagation chain walks back to the corrupted read.
  ASSERT_GE(e.propagation.size(), 1u);
}

TEST(AnalyzerTest, ControlDependentSite) {
  auto m = parse_ok(R"(module c
global @flag
func @f() {
entry:
  %v = load @flag
  %c = icmp ne %v, 0
  br %c, bad, good
bad:
  setuid 0
  ret
good:
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  ASSERT_EQ(analysis.exploits.size(), 1u);
  const ExploitReport& e = analysis.exploits.front();
  EXPECT_EQ(e.type, SiteType::kPrivilegeOp);
  EXPECT_EQ(e.dep, DepKind::kControl);
  // The corrupted branch is part of the input hint.
  ASSERT_EQ(e.branches.size(), 1u);
  EXPECT_EQ(e.branches.front()->opcode(), ir::Opcode::kBr);
}

TEST(AnalyzerTest, NoSiteMeansNoReports) {
  auto m = parse_ok(R"(module n
global @x
global @y
func @f() {
entry:
  %v = load @x
  %w = add %v, 1
  store %w, @y
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  EXPECT_TRUE(analysis.exploits.empty());
}

TEST(AnalyzerTest, DescendsIntoCalleeWithCorruptedArgument) {
  auto m = parse_ok(R"(module dc
global @cnt
global @buf [4]
global @src [4]
func @copy_n(i64 %n) {
entry:
  memcpy @buf, @src, %n
  ret
}
func @f() {
entry:
  %v = load @cnt
  call @copy_n(%v)
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  EXPECT_TRUE(has_site(analysis, ir::Opcode::kMemCopy, DepKind::kData));
  EXPECT_GE(analysis.stats.functions_visited, 2u);
}

TEST(AnalyzerTest, DoesNotDescendWithoutCorruptionOrControl) {
  auto m = parse_ok(R"(module nd
global @cnt
func @danger() {
entry:
  setuid 0
  ret
}
func @f() {
entry:
  %v = load @cnt
  call @danger()
  ret
}
)");
  // The call is unconditional and takes no corrupted data: the setuid in
  // the callee is NOT attributable to the race.
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  EXPECT_TRUE(analysis.exploits.empty());
}

TEST(AnalyzerTest, DescendsIntoCalleeUnderCorruptedControl) {
  // The SSDB shape: a call guarded by the corrupted branch; the site is
  // inside the callee.
  auto m = parse_ok(R"(module sc
global @db
func @del_range() {
entry:
  %d = load @db
  %vt = load %d
  %r = callptr %vt()
  ret
}
func @f() {
entry:
  %v = load @db
  %gone = icmp eq %v, 0
  br %gone, out, work
work:
  call @del_range()
  ret
out:
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  EXPECT_TRUE(has_site(analysis, ir::Opcode::kCallPtr, DepKind::kControl));
}

TEST(AnalyzerTest, PointerDerefThroughCorruptedPointer) {
  auto m = parse_ok(R"(module pd
global @p
func @f() {
entry:
  %ptr = load @p
  %v = load %ptr
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = f->entry()->front();
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  EXPECT_TRUE(has_site(analysis, ir::Opcode::kLoad, DepKind::kData));
  ASSERT_FALSE(analysis.exploits.empty());
  EXPECT_EQ(analysis.exploits.front().type, SiteType::kNullPtrDeref);
}

TEST(AnalyzerTest, IndirectCallThroughCorruptedValue) {
  auto m = parse_ok(R"(module ic
global @fp
func @f() {
entry:
  %v = load @fp
  %r = callptr %v()
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = f->entry()->front();
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  EXPECT_TRUE(has_site(analysis, ir::Opcode::kCallPtr, DepKind::kData));
}

TEST(AnalyzerTest, ReturnValuePropagatesUpCallStack) {
  // The Libsafe shape: the corrupted read is in a callee; the branch on the
  // callee's return value guards the vulnerable strcpy in the caller.
  auto m = parse_ok(R"(module rv
global @dying
global @buf [4]
global @src [4]
func @check() -> i64 {
entry:
  %d = load @dying
  %c = icmp ne %d, 0
  br %c, bypass, work
bypass:
  ret 0
work:
  ret 1
}
func @caller() {
entry:
  %r = call @check()
  %ok = icmp eq %r, 0
  br %ok, copy, skip
copy:
  strcpy @buf, @src
  ret
skip:
  ret
}
)");
  const ir::Function* check = m->find_function("check");
  const ir::Function* caller = m->find_function("caller");
  const ir::Instruction* read = find_instr(check, ir::Opcode::kLoad);
  const ir::Instruction* call_site = find_instr(caller, ir::Opcode::kCall);

  // Runtime stack: caller (at the call site) -> check (at the read).
  const interp::CallStack stack{{caller, call_site}, {check, read}};
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack);
  ASSERT_TRUE(has_site(analysis, ir::Opcode::kStrCpy, DepKind::kControl));
  // The branch hint points at the caller's check at the call-return seam.
  for (const ExploitReport& e : analysis.exploits) {
    if (e.site->opcode() == ir::Opcode::kStrCpy) {
      ASSERT_FALSE(e.branches.empty());
      EXPECT_EQ(e.branches.back()->function(), caller);
    }
  }
}

TEST(AnalyzerTest, TransitiveControlDependence) {
  auto m = parse_ok(R"(module tc
global @flag
global @n
func @f() {
entry:
  %v = load @flag
  %c = icmp ne %v, 0
  br %c, outer, out
outer:
  %k = load @n
  %c2 = icmp sgt %k, 0
  br %c2, inner, out
inner:
  eval 7
  ret
out:
  ret
}
)");
  // The eval is guarded by an uncorrupted branch, which itself is guarded
  // by the corrupted one: still reported (transitive control corruption).
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = f->entry()->front();
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  EXPECT_TRUE(has_site(analysis, ir::Opcode::kEval, DepKind::kControl));
}

TEST(AnalyzerTest, SiteReportedOncePerDependenceKind) {
  auto m = parse_ok(R"(module dd
global @cnt
global @buf [4]
global @src [4]
func @f() {
entry:
  jmp loop
loop:
  %v = load @cnt
  %c = icmp sgt %v, 0
  br %c, body, out
body:
  memcpy @buf, @src, %v
  jmp loop
out:
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  // The memcpy is both data- (length) and control- (loop guard) dependent:
  // exactly one report of each kind despite the fixpoint iterating.
  std::size_t data = 0;
  std::size_t ctrl = 0;
  for (const ExploitReport& e : analysis.exploits) {
    if (e.site->opcode() != ir::Opcode::kMemCopy) continue;
    if (e.dep == DepKind::kData) ++data;
    if (e.dep == DepKind::kControl) ++ctrl;
  }
  EXPECT_EQ(data, 1u);
  EXPECT_EQ(ctrl, 1u);
}

TEST(AnalyzerTest, AnalyzeFromRaceReportUsesReadSide) {
  auto m = parse_ok(R"(module rr
global @x
func @f() {
entry:
  %v = load @x
  %c = icmp ne %v, 0
  br %c, bad, out
bad:
  %pid = fork
  ret
out:
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);

  race::RaceReport report;
  report.first.instr = read;
  report.first.is_write = false;
  report.first.stack = stack_of(read);
  report.second.is_write = true;

  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze(report);
  EXPECT_TRUE(has_site(analysis, ir::Opcode::kFork, DepKind::kControl));

  race::RaceReport empty;  // no read side at all
  EXPECT_TRUE(analyzer.analyze(empty).exploits.empty());
}

TEST(AnalyzerTest, WholeProgramModeWalksAllCallers) {
  auto m = parse_ok(R"(module wp
global @x
global @buf [4]
global @src [4]
func @leaf() -> i64 {
entry:
  %v = load @x
  ret %v
}
func @copycaller() {
entry:
  %n = call @leaf()
  memcpy @buf, @src, %n
  ret
}
func @quietcaller() {
entry:
  %n = call @leaf()
  ret
}
)");
  const ir::Function* leaf = m->find_function("leaf");
  const ir::Instruction* read = find_instr(leaf, ir::Opcode::kLoad);

  // Directed mode with a single-frame stack: no caller context, no site.
  const VulnerabilityAnalyzer directed(*m);
  EXPECT_TRUE(directed.analyze_from(read, stack_of(read)).exploits.empty());

  // Whole-program ablation conservatively explores every caller and flags
  // the memcpy — precision traded for not needing the runtime stack.
  VulnerabilityAnalyzer::Options options;
  options.mode = VulnerabilityAnalyzer::Mode::kWholeProgram;
  const VulnerabilityAnalyzer whole(*m, options);
  const VulnAnalysis analysis = whole.analyze_from(read, stack_of(read));
  EXPECT_TRUE(has_site(analysis, ir::Opcode::kMemCopy, DepKind::kData));
}

TEST(AnalyzerTest, RecursionTerminates) {
  auto m = parse_ok(R"(module rec
global @x
func @spin(i64 %n) {
entry:
  call @spin(%n)
  ret
}
func @f() {
entry:
  %v = load @x
  call @spin(%v)
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  // No crash / no runaway; nothing vulnerable either.
  EXPECT_TRUE(analysis.exploits.empty());
  EXPECT_LT(analysis.stats.instructions_visited, 10000u);
}

TEST(HintTest, RenderingNamesBranchAndSite) {
  auto m = parse_ok(R"(module hr
global @flag
global @buf [4]
global @src [4]
func @f() {
entry:
  %v = load @flag  !util.c:145
  %c = icmp ne %v, 0  !util.c:145
  br %c, bad, out  !util.c:145
bad:
  strcpy @buf, @src  !intercept.c:165
  ret
out:
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  ASSERT_EQ(analysis.exploits.size(), 1u);
  const std::string hint = render_hint(analysis.exploits.front());
  EXPECT_NE(hint.find("Ctrl Dependent Vulnerability"), std::string::npos);
  EXPECT_NE(hint.find("util.c:145"), std::string::npos);
  EXPECT_NE(hint.find("intercept.c:165"), std::string::npos);
  EXPECT_NE(hint.find("memory-operation"), std::string::npos);

  const std::string full = render_analysis(analysis);
  EXPECT_NE(full.find("corrupted read"), std::string::npos);
  EXPECT_NE(full.find("analysis:"), std::string::npos);
}

TEST(AnalyzerTest, TaintFlowsThroughPhis) {
  // Loop-carried corruption: the racy read feeds a phi; the accumulated
  // value reaches a memcpy length after the loop.
  auto m = parse_ok(R"(module ph
global @cnt
global @buf [8]
global @src [8]
func @f() {
entry:
  %v = load @cnt
  jmp loop
loop:
  %acc = phi [%v, entry], [%acc2, loop]
  %acc2 = add %acc, 1
  %c = icmp slt %acc2, 100
  br %c, loop, out
out:
  memcpy @buf, @src, %acc
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  EXPECT_TRUE(has_site(analysis, ir::Opcode::kMemCopy, DepKind::kData));
}

TEST(AnalyzerTest, BranchHintsAreOrderedRootFirst) {
  auto m = parse_ok(R"(module bh
global @x
func @f() {
entry:
  %v = load @x
  %c1 = icmp ne %v, 0
  br %c1, mid, out
mid:
  %w = add %v, 1
  %c2 = icmp sgt %w, 5
  br %c2, deep, out
deep:
  fork
  ret
out:
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  const VulnerabilityAnalyzer analyzer(*m);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  const ExploitReport* fork_report = nullptr;
  for (const ExploitReport& e : analysis.exploits) {
    if (e.site->opcode() == ir::Opcode::kFork) fork_report = &e;
  }
  ASSERT_NE(fork_report, nullptr);
  // Both guarding branches appear, root (closest to the read) first.
  ASSERT_GE(fork_report->branches.size(), 2u);
  EXPECT_EQ(fork_report->branches.front()->parent()->label(), "entry");
  EXPECT_EQ(fork_report->branches.back()->parent()->label(), "mid");
  // The propagation chain starts at the corrupted read.
  ASSERT_FALSE(fork_report->propagation.empty());
  EXPECT_EQ(fork_report->propagation.front(), read);
}

TEST(CustomSiteTest, RegisteredSiteIsReported) {
  // §7.2: "by adding new vulnerability and failure sites, OWL can be
  // applied to flagging bugs that cause severe consequences". Register
  // print as an "audit-log" failure site and track a race into it.
  auto m = parse_ok(R"(module cs
global @x
func @f() {
entry:
  %v = load @x
  %w = add %v, 1
  print %w
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);

  SiteRegistry registry;
  registry.add({"audit-log-write", [](const ir::Instruction& instr) {
                  return instr.opcode() == ir::Opcode::kPrint;
                }});
  VulnerabilityAnalyzer::Options options;
  options.custom_sites = &registry;
  const VulnerabilityAnalyzer analyzer(*m, options);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  ASSERT_EQ(analysis.exploits.size(), 1u);
  const ExploitReport& e = analysis.exploits.front();
  EXPECT_EQ(e.type, SiteType::kCustom);
  EXPECT_EQ(e.custom_site_name, "audit-log-write");
  EXPECT_EQ(e.dep, DepKind::kData);
  EXPECT_NE(render_hint(e).find("audit-log-write"), std::string::npos);

  // Without the registry the same program yields nothing.
  const VulnerabilityAnalyzer plain(*m);
  EXPECT_TRUE(plain.analyze_from(read, stack_of(read)).exploits.empty());
}

TEST(CustomSiteTest, ControlDependentCustomSite) {
  auto m = parse_ok(R"(module cc
global @flag
func @f() {
entry:
  %v = load @flag
  %c = icmp ne %v, 0
  br %c, log, out
log:
  print 1
  ret
out:
  ret
}
)");
  const ir::Function* f = m->find_function("f");
  const ir::Instruction* read = find_instr(f, ir::Opcode::kLoad);
  SiteRegistry registry;
  registry.add({"audit-log-write", [](const ir::Instruction& instr) {
                  return instr.opcode() == ir::Opcode::kPrint;
                }});
  VulnerabilityAnalyzer::Options options;
  options.custom_sites = &registry;
  const VulnerabilityAnalyzer analyzer(*m, options);
  const VulnAnalysis analysis = analyzer.analyze_from(read, stack_of(read));
  ASSERT_EQ(analysis.exploits.size(), 1u);
  EXPECT_EQ(analysis.exploits.front().dep, DepKind::kControl);
}

}  // namespace
}  // namespace owl::vuln
