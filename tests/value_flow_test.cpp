// Tests for the memory-aware value-flow engine (DESIGN.md §14): the graph
// itself (store->load may-alias edges, call binding through resolved
// indirect calls, deterministic serialization), the Algorithm 1 extension
// that walks those edges, the inter-procedural lock-order export, and the
// golden dumps over the shipped examples.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static_info.hpp"
#include "analysis/value_flow.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "vuln/analyzer.hpp"

namespace owl::analysis {
namespace {

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

const ir::Instruction* find_instr(const ir::Function* f, ir::Opcode op,
                                  std::size_t n = 0) {
  for (const auto& bb : f->blocks()) {
    for (const auto& instr : bb->instructions()) {
      if (instr->opcode() == op) {
        if (n == 0) return instr.get();
        --n;
      }
    }
  }
  return nullptr;
}

interp::CallStack stack_of(const ir::Instruction* read) {
  return {{read->function(), read}};
}

TEST(ValueFlowGraphTest, StoreLoadAliasHit) {
  auto m = parse_ok(R"(module hit
global @cell
func @writer() {
entry:
  store 7, @cell
  ret
}
func @reader() {
entry:
  %v = load @cell
  ret
}
func @main() {
entry:
  call @writer()
  call @reader()
  ret
}
)");
  const ModuleStatic statics(*m);
  const ValueFlowGraph graph(*m, statics.points_to, statics.resolved_calls);
  const ir::Instruction* store =
      find_instr(m->find_function("writer"), ir::Opcode::kStore);
  const ir::Instruction* load =
      find_instr(m->find_function("reader"), ir::Opcode::kLoad);
  ASSERT_NE(store, nullptr);
  ASSERT_NE(load, nullptr);
  EXPECT_TRUE(graph.has_mem_edge(store, load));
  EXPECT_TRUE(graph.covers(store, load));
  ASSERT_EQ(graph.mem_successors(store).size(), 1u);
  EXPECT_EQ(graph.mem_successors(store).front(), load);
  EXPECT_GE(graph.stats().mem_edges, 1u);
}

TEST(ValueFlowGraphTest, StoreLoadAliasMiss) {
  auto m = parse_ok(R"(module miss
global @a
global @b
func @writer() {
entry:
  store 7, @a
  ret
}
func @reader() {
entry:
  %v = load @b
  ret
}
func @main() {
entry:
  call @writer()
  call @reader()
  ret
}
)");
  const ModuleStatic statics(*m);
  const ValueFlowGraph graph(*m, statics.points_to, statics.resolved_calls);
  const ir::Instruction* store =
      find_instr(m->find_function("writer"), ir::Opcode::kStore);
  const ir::Instruction* load =
      find_instr(m->find_function("reader"), ir::Opcode::kLoad);
  EXPECT_FALSE(graph.has_mem_edge(store, load));
  EXPECT_FALSE(graph.covers(store, load));
  EXPECT_TRUE(graph.mem_successors(store).empty());
}

TEST(ValueFlowGraphTest, CallPtrResolvedBinding) {
  // The actual argument of a points-to-resolved indirect call must feed
  // the uses of the callee's formal — the binding the register-only walk
  // already has for direct calls, extended through kCallPtr dispatch.
  auto m = parse_ok(R"(module fp
global @handler
func @target(i64 %a) {
entry:
  %y = add %a, 0
  ret
}
func @main() {
entry:
  store @target, @handler
  %fp = load @handler
  %x = add 1, 2
  callptr %fp(%x)
  ret
}
)");
  const ModuleStatic statics(*m);
  ASSERT_FALSE(statics.resolved_calls.empty());
  const ValueFlowGraph graph(*m, statics.points_to, statics.resolved_calls);
  const ir::Instruction* def =
      find_instr(m->find_function("main"), ir::Opcode::kAdd);
  const ir::Instruction* formal_use =
      find_instr(m->find_function("target"), ir::Opcode::kAdd);
  ASSERT_NE(def, nullptr);
  ASSERT_NE(formal_use, nullptr);
  const std::vector<const ir::Instruction*>& uses = graph.uses(def);
  EXPECT_NE(std::find(uses.begin(), uses.end(), formal_use), uses.end())
      << "callptr argument binding missing from the value-flow graph";
}

TEST(ValueFlowGraphTest, UnknownPointerIsConservative) {
  // A store through a pointer the points-to analysis cannot bound must be
  // flagged unknown, and covers() must then explain any runtime pair.
  auto m = parse_ok(R"(module unk
global @cell
global @tab [4]
func @main() {
entry:
  %i = load @cell
  %j = mul %i, %i
  %k = mul %j, %i
  %g1 = gep @tab, %k
  %g2 = gep %g1, %j
  %g3 = gep %g2, %k
  %g4 = gep %g3, %j
  %g5 = gep %g4, %k
  store 1, %g5
  %v = load @cell
  ret
}
)");
  const ModuleStatic statics(*m);
  const ValueFlowGraph graph(*m, statics.points_to, statics.resolved_calls);
  const ir::Instruction* store =
      find_instr(m->find_function("main"), ir::Opcode::kStore);
  const ir::Instruction* load =
      find_instr(m->find_function("main"), ir::Opcode::kLoad, 1);
  ASSERT_NE(store, nullptr);
  ASSERT_NE(load, nullptr);
  if (graph.writes_unknown(store)) {
    EXPECT_TRUE(graph.covers(store, load));
  } else {
    // Points-to bounded the chain after all; the precise edge must exist
    // for any object overlap (tab vs cell: disjoint, no edge required).
    SUCCEED();
  }
}

TEST(ValueFlowGraphTest, DeterministicRepeatSerialize) {
  auto m = parse_ok(R"(module det
global @g
global @h
func @w() {
entry:
  %v = load @g
  store %v, @h
  ret
}
func @r() {
entry:
  %u = load @h
  store %u, @g
  ret
}
func @main() {
entry:
  call @w()
  call @r()
  ret
}
)");
  const ModuleStatic statics(*m);
  const ValueFlowGraph first(*m, statics.points_to, statics.resolved_calls);
  const ValueFlowGraph second(*m, statics.points_to, statics.resolved_calls);
  EXPECT_FALSE(first.serialize().empty());
  EXPECT_EQ(first.serialize(), second.serialize());
  EXPECT_EQ(first.serialize(), first.serialize());
}

TEST(ValueFlowWalkTest, MemoryRelayIsFlowOnly) {
  // Miniature heap_relay: the corrupted index transits @slot, and only the
  // store->load edge lets Algorithm 1 reach the dereference in @consumer.
  auto m = parse_ok(R"(module relay
global @idx = 1
global @slot
global @tab [16]
func @producer() {
entry:
  %v = load @idx
  store %v, @slot
  ret
}
func @consumer() {
entry:
  %i = load @slot
  %p = gep @tab, %i
  store 7, %p
  ret
}
func @main() {
entry:
  %t = thread_create @producer, 0
  thread_join %t
  call @consumer()
  ret
}
)");
  const ModuleStatic statics(*m);
  const ir::Instruction* read =
      find_instr(m->find_function("producer"), ir::Opcode::kLoad);
  ASSERT_NE(read, nullptr);

  vuln::VulnerabilityAnalyzer::Options off;
  const vuln::VulnerabilityAnalyzer register_only(*m, off);
  EXPECT_TRUE(register_only.analyze_from(read, stack_of(read))
                  .exploits.empty())
      << "register-only walk unexpectedly reached the relay site";

  const ValueFlowGraph graph(*m, statics.points_to, statics.resolved_calls);
  vuln::VulnerabilityAnalyzer::Options on;
  on.value_flow = &graph;
  const vuln::VulnerabilityAnalyzer with_flow(*m, on);
  const vuln::VulnAnalysis analysis =
      with_flow.analyze_from(read, stack_of(read));
  ASSERT_EQ(analysis.exploits.size(), 1u);
  const vuln::ExploitReport& e = analysis.exploits.front();
  EXPECT_EQ(e.type, vuln::SiteType::kNullPtrDeref);
  ASSERT_NE(e.function, nullptr);
  EXPECT_EQ(e.function->name(), "consumer");
}

TEST(ValueFlowWalkTest, WholeProgramCallersInModuleOrder) {
  // Pinning test for the caller-enumeration determinism fix: whole-program
  // mode walks a racy callee's callers in module declaration order, so the
  // exploit list is reproducible run to run (and process to process).
  auto m = parse_ok(R"(module wp
global @cnt
global @buf [8]
global @src [8]
func @leak() -> i64 {
entry:
  %v = load @cnt
  ret %v
}
func @alpha() {
entry:
  %n = call @leak()
  memcpy @buf, @src, %n
  ret
}
func @beta() {
entry:
  %n = call @leak()
  memcpy @buf, @src, %n
  ret
}
func @gamma() {
entry:
  %n = call @leak()
  memcpy @buf, @src, %n
  ret
}
func @main() {
entry:
  call @alpha()
  call @beta()
  call @gamma()
  ret
}
)");
  const ir::Instruction* read =
      find_instr(m->find_function("leak"), ir::Opcode::kLoad);
  ASSERT_NE(read, nullptr);
  vuln::VulnerabilityAnalyzer::Options options;
  options.mode = vuln::VulnerabilityAnalyzer::Mode::kWholeProgram;
  const vuln::VulnerabilityAnalyzer analyzer(*m, options);
  const vuln::VulnAnalysis first = analyzer.analyze_from(read, {});
  ASSERT_EQ(first.exploits.size(), 3u);
  EXPECT_EQ(first.exploits[0].function->name(), "alpha");
  EXPECT_EQ(first.exploits[1].function->name(), "beta");
  EXPECT_EQ(first.exploits[2].function->name(), "gamma");
  const vuln::VulnAnalysis second = analyzer.analyze_from(read, {});
  ASSERT_EQ(second.exploits.size(), first.exploits.size());
  for (std::size_t i = 0; i < first.exploits.size(); ++i) {
    EXPECT_EQ(first.exploits[i].site, second.exploits[i].site);
  }
}

TEST(InterprocLockEdgeTest, NestedAbbaCycle) {
  // The ABBA order split across call boundaries: no function acquires two
  // locks directly, so the edges exist only through the call closure.
  auto m = parse_ok(R"(module nest
global @m1
global @m2
func @helper_b() {
entry:
  lock @m2
  unlock @m2
  ret
}
func @path_a() {
entry:
  lock @m1
  call @helper_b()
  unlock @m1
  ret
}
func @helper_a() {
entry:
  lock @m1
  unlock @m1
  ret
}
func @path_b() {
entry:
  lock @m2
  call @helper_a()
  unlock @m2
  ret
}
func @main() {
entry:
  %a = thread_create @path_a, 0
  %b = thread_create @path_b, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  const ModuleStatic statics(*m);
  PointsTo::ObjectId m1 = 0;
  PointsTo::ObjectId m2 = 0;
  ASSERT_TRUE(statics.points_to.id_of_site(m->find_global("m1"), m1));
  ASSERT_TRUE(statics.points_to.id_of_site(m->find_global("m2"), m2));
  const std::vector<InterprocLockEdge> edges = interprocedural_lock_edges(
      *m, statics.lock_facts, statics.resolved_calls);
  bool m1_to_m2 = false;
  bool m2_to_m1 = false;
  for (const InterprocLockEdge& e : edges) {
    if (e.held == m1 && e.acquired == m2) {
      m1_to_m2 = true;
      EXPECT_EQ(e.caller->name(), "path_a");
    }
    if (e.held == m2 && e.acquired == m1) {
      m2_to_m1 = true;
      EXPECT_EQ(e.caller->name(), "path_b");
    }
  }
  EXPECT_TRUE(m1_to_m2);
  EXPECT_TRUE(m2_to_m1);
}

// Golden dumps: serialize() for representative examples is pinned under
// tests/golden/value_flow/. Regenerate by deleting a file and re-running
// with OWL_UPDATE_GOLDENS=1 (or copy the printed dump).
TEST(ValueFlowGoldenTest, ExamplesMatchGoldenDumps) {
  const std::filesystem::path examples(OWL_EXAMPLES_DIR);
  const std::filesystem::path goldens =
      std::filesystem::path(OWL_GOLDEN_DIR) / "value_flow";
  std::size_t compared = 0;
  for (const auto& entry : std::filesystem::directory_iterator(examples)) {
    if (entry.path().extension() != ".mir") continue;
    const std::filesystem::path golden =
        goldens / (entry.path().stem().string() + ".txt");
    if (!std::filesystem::exists(golden)) continue;
    std::ifstream source(entry.path());
    std::stringstream text;
    text << source.rdbuf();
    auto m = parse_ok(text.str());
    const ModuleStatic statics(*m);
    const ValueFlowGraph graph(*m, statics.points_to,
                               statics.resolved_calls);
    std::ifstream golden_in(golden);
    std::stringstream want;
    want << golden_in.rdbuf();
    EXPECT_EQ(graph.serialize(), want.str())
        << "value-flow dump diverged for " << entry.path().filename();
    ++compared;
  }
  EXPECT_GE(compared, 6u) << "golden coverage shrank unexpectedly";
}

}  // namespace
}  // namespace owl::analysis
