// Tests for the hint-guided vulnerable-input search.
#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "vuln/input_search.hpp"
#include "workloads/registry.hpp"

namespace owl::vuln {
namespace {

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

// The attack manifests only when input 0 exceeds a threshold the benign
// baseline stays below; the hint branch guards the site.
const char* kThreshold = R"(module th
global @x
func @victim() {
entry:
  %amount = input 0
  %v = load @x
  %big = icmp sgt %amount, 40
  br %big, bad, out
bad:
  setuid 0
  ret
out:
  ret
}
func @writer() {
entry:
  store 1, @x
  ret
}
func @main() {
entry:
  %a = thread_create @victim, 0
  %b = thread_create @writer, 0
  thread_join %a
  thread_join %b
  ret
}
)";

ExploitReport exploit_for(const ir::Module& m) {
  const ir::Function* victim = m.find_function("victim");
  // Hand-build the hint: the site is the setuid, guarded by the
  // input-dependent branch — what matters for the search is the list of
  // branches to satisfy.
  ExploitReport exploit;
  exploit.site = [&] {
    for (const auto& instr : victim->find_block("bad")->instructions()) {
      if (instr->opcode() == ir::Opcode::kSetUid) return instr.get();
    }
    return static_cast<ir::Instruction*>(nullptr);
  }();
  exploit.type = SiteType::kPrivilegeOp;
  exploit.dep = DepKind::kControl;
  exploit.function = victim;
  exploit.branches.push_back(victim->entry()->terminator());
  return exploit;
}

TEST(InputSearchTest, FindsThresholdCrossingInput) {
  auto m = parse_ok(kThreshold);
  const ExploitReport exploit = exploit_for(*m);
  const MachineWithInputs factory =
      [m](const std::vector<interp::Word>& inputs) {
        interp::MachineOptions options;
        options.inputs = inputs;
        auto machine = std::make_unique<interp::Machine>(*m, options);
        machine->start(m->find_function("main"));
        return machine;
      };
  const InputSearchResult result =
      search_vulnerable_inputs(exploit, factory, {3});
  EXPECT_TRUE(result.attack_found);
  EXPECT_TRUE(result.site_reached);
  ASSERT_EQ(result.inputs.size(), 1u);
  EXPECT_GT(result.inputs[0], 40);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(InputSearchTest, DeterministicPerSeed) {
  auto m = parse_ok(kThreshold);
  const ExploitReport exploit = exploit_for(*m);
  const MachineWithInputs factory =
      [m](const std::vector<interp::Word>& inputs) {
        interp::MachineOptions options;
        options.inputs = inputs;
        auto machine = std::make_unique<interp::Machine>(*m, options);
        machine->start(m->find_function("main"));
        return machine;
      };
  InputSearchOptions options;
  options.seed = 42;
  const InputSearchResult a =
      search_vulnerable_inputs(exploit, factory, {3}, options);
  const InputSearchResult b =
      search_vulnerable_inputs(exploit, factory, {3}, options);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.attack_found, b.attack_found);
}

TEST(InputSearchTest, EmptyBaseOrNullSiteRejected) {
  auto m = parse_ok(kThreshold);
  const MachineWithInputs factory =
      [m](const std::vector<interp::Word>& inputs) {
        interp::MachineOptions options;
        options.inputs = inputs;
        auto machine = std::make_unique<interp::Machine>(*m, options);
        machine->start(m->find_function("main"));
        return machine;
      };
  ExploitReport no_site;
  EXPECT_FALSE(
      search_vulnerable_inputs(no_site, factory, {1}).attack_found);
  const ExploitReport exploit = exploit_for(*m);
  EXPECT_FALSE(
      search_vulnerable_inputs(exploit, factory, {}).attack_found);
}

TEST(InputSearchTest, SynthesizesMysqlFlushExploitFromBenignInputs) {
  const workloads::Workload w = workloads::make_mysql_flush({0.2});
  // The real pipeline hint for the setuid site.
  core::PipelineOptions options = w.pipeline_options();
  options.enable_vuln_verifier = false;
  const core::PipelineResult result =
      core::Pipeline(options).run(w.target());
  const ExploitReport* exploit = nullptr;
  for (const ExploitReport& e : result.exploits) {
    if (e.site != nullptr && e.site->opcode() == ir::Opcode::kSetUid) {
      exploit = &e;
    }
  }
  ASSERT_NE(exploit, nullptr);

  const MachineWithInputs factory =
      [&w](const std::vector<interp::Word>& inputs) {
        return w.make_machine(inputs);
      };
  const InputSearchResult search =
      search_vulnerable_inputs(*exploit, factory, w.testing_inputs);
  EXPECT_TRUE(search.attack_found);

  // The synthesized inputs really do realize the attack.
  unsigned hits = 0;
  for (unsigned i = 0; i < 10; ++i) {
    auto machine = w.make_machine(search.inputs);
    interp::RandomScheduler sched(700 + i);
    machine->run(sched);
    if (w.attack_succeeded(*machine)) ++hits;
  }
  EXPECT_GE(hits, 1u);
}

}  // namespace
}  // namespace owl::vuln
