// Record/replay: a recorded schedule replays to an identical execution —
// the property that makes every OWL report shippable with its triggering
// schedule.
#include <gtest/gtest.h>

#include <set>

#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace owl::interp {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

// A racy program whose outcome genuinely depends on the schedule.
const char* kRacy = R"(module racy
global @x
global @y
func @w1() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  %v = load @x
  %v2 = add %v, 1
  store %v2, @x
  %u = load @y
  store %v2, @y
  %n = add %i, 1
  %c = icmp slt %n, 15
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %a = thread_create @w1, 0
  %b = thread_create @w1, 0
  thread_join %a
  thread_join %b
  %f = load @x
  print %f
  %g = load @y
  print %g
  ret
}
)";

struct Outcome {
  std::uint64_t steps;
  std::vector<Word> prints;
  Word x;
  Word y;
  std::size_t events;

  bool operator==(const Outcome&) const = default;
};

Outcome run_with(const ir::Module& m, Scheduler& scheduler) {
  Machine machine(m, {});
  machine.start(m.find_function("main"));
  const RunResult result = machine.run(scheduler);
  return {result.steps, machine.prints(), machine.read_global("x"),
          machine.read_global("y"), machine.security_events().size()};
}

TEST(ReplayTest, RecordedScheduleReplaysExactly) {
  auto m = parse_ok(kRacy);
  for (std::uint64_t seed : {7ull, 99ull, 4242ull}) {
    RandomScheduler inner(seed);
    RecordingScheduler recorder(&inner);
    const Outcome original = run_with(*m, recorder);
    ASSERT_FALSE(recorder.trace().empty());

    ReplayScheduler replay(recorder.take_trace());
    const Outcome replayed = run_with(*m, replay);
    EXPECT_EQ(original, replayed) << "seed " << seed;
  }
}

TEST(ReplayTest, DifferentSchedulesCanDiverge) {
  auto m = parse_ok(kRacy);
  // Not guaranteed for every pair, but across a handful of seeds the racy
  // counter should produce at least two distinct final values — otherwise
  // the program wouldn't be racy and the replay test above would be vacuous.
  std::set<Word> finals;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomScheduler sched(seed);
    finals.insert(run_with(*m, sched).x);
  }
  EXPECT_GE(finals.size(), 2u);
}

TEST(ReplayTest, RecorderDelegatesThreadCreation) {
  // PCT assigns priorities in on_thread_created; recording must forward it
  // or the inner scheduler would fall back to default priorities.
  auto m = parse_ok(kRacy);
  PctScheduler inner(5, 3, 1000);
  RecordingScheduler recorder(&inner);
  const Outcome first = run_with(*m, recorder);

  PctScheduler inner2(5, 3, 1000);
  RecordingScheduler recorder2(&inner2);
  const Outcome second = run_with(*m, recorder2);
  EXPECT_EQ(first, second);
}

TEST(ReplayTest, ReplayTraceSurvivesBreakpointFreeRun) {
  // The trace length equals the executed step count (one pick per step).
  auto m = parse_ok(kRacy);
  RandomScheduler inner(3);
  RecordingScheduler recorder(&inner);
  const Outcome outcome = run_with(*m, recorder);
  EXPECT_EQ(recorder.trace().size(), outcome.steps);
}

}  // namespace
}  // namespace owl::interp
