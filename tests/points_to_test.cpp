// Unit tests for the Andersen points-to solver, indirect-call resolution,
// and the Algorithm-1 callptr descent the resolved edges unlock.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/points_to.hpp"
#include "analysis/static_info.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "vuln/analyzer.hpp"

namespace owl::analysis {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

/// The n-th instruction with the given opcode in a function (0-based).
const ir::Instruction* find_instr(const ir::Function* f, ir::Opcode op,
                                  std::size_t n = 0) {
  for (const auto& bb : f->blocks()) {
    for (const auto& instr : bb->instructions()) {
      if (instr->opcode() == op) {
        if (n == 0) return instr.get();
        --n;
      }
    }
  }
  return nullptr;
}

PointsTo::ObjectId id_of(const PointsTo& pt, const ir::Value* site) {
  PointsTo::ObjectId id = 0;
  EXPECT_TRUE(pt.id_of_site(site, id));
  return id;
}

TEST(PointsToTest, StoreLoadThroughGlobalSlot) {
  auto m = parse_ok(R"(module m
global @slot
global @obj [2] = 7
func @main() {
entry:
  store @obj, @slot
  %p = load @slot
  %v = load %p
  ret
}
)");
  const PointsTo pt(*m);
  const ir::Function* main_fn = m->find_function("main");
  const PointsTo::ObjectId obj = id_of(pt, m->find_global("obj"));
  const PointsTo::ObjectId slot = id_of(pt, m->find_global("slot"));

  // %p = load @slot reads @slot's content: the address of @obj, nothing else.
  const ir::Instruction* p = find_instr(main_fn, ir::Opcode::kLoad, 0);
  const std::vector<PointsTo::ObjectId>& pts = pt.points_to(p);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts.front(), obj);
  EXPECT_FALSE(pt.is_unknown(p));
  EXPECT_TRUE(pt.offset_range(p).bounded());
  EXPECT_EQ(pt.offset_range(p).lo, 0);
  EXPECT_EQ(pt.offset_range(p).hi, 0);

  // Object-level view: @slot's cells point to @obj; @obj's cells to nothing.
  EXPECT_EQ(pt.object_points_to(slot),
            std::vector<PointsTo::ObjectId>{obj});
  EXPECT_TRUE(pt.object_points_to(obj).empty());
  std::uint64_t cells = 0;
  EXPECT_TRUE(pt.object_size(obj, cells));
  EXPECT_EQ(cells, 2u);
  EXPECT_FALSE(pt.has_unknown_store());
}

TEST(PointsToTest, GepTracksConstantOffsetAndWidensVariableOffset) {
  auto m = parse_ok(R"(module m
func @main() {
entry:
  %b = alloca 8
  %g = gep %b, 3
  %v = load %g
  %i = input 0
  %w = gep %b, %i
  %u = load %w
  ret
}
)");
  const PointsTo pt(*m);
  const ir::Function* f = m->find_function("main");
  const ir::Instruction* alloca_site = find_instr(f, ir::Opcode::kAlloca);
  const PointsTo::ObjectId buf = id_of(pt, alloca_site);

  const ir::Instruction* g = find_instr(f, ir::Opcode::kGep, 0);
  EXPECT_EQ(pt.points_to(g), std::vector<PointsTo::ObjectId>{buf});
  EXPECT_TRUE(pt.offset_range(g).bounded());
  EXPECT_EQ(pt.offset_range(g).lo, 3);
  EXPECT_EQ(pt.offset_range(g).hi, 3);

  // A runtime-input offset cannot be bounded statically.
  const ir::Instruction* w = find_instr(f, ir::Opcode::kGep, 1);
  EXPECT_EQ(pt.points_to(w), std::vector<PointsTo::ObjectId>{buf});
  EXPECT_FALSE(pt.offset_range(w).bounded());
}

TEST(PointsToTest, PhiCycleConvergesAndCollapses) {
  auto m = parse_ok(R"(module m
global @cond
func @main() {
entry:
  %a = alloca 1
  %b = alloca 1
  jmp loop
loop:
  %p = phi [%a, entry], [%q, loop]
  %q = phi [%b, entry], [%p, loop]
  %v = load %p
  %c = load @cond
  %t = icmp ne %c, 0
  br %t, loop, done
done:
  ret
}
)");
  const PointsTo pt(*m);
  const ir::Function* f = m->find_function("main");
  const PointsTo::ObjectId a = id_of(pt, find_instr(f, ir::Opcode::kAlloca, 0));
  const PointsTo::ObjectId b = id_of(pt, find_instr(f, ir::Opcode::kAlloca, 1));

  // Both phis sit on a copy cycle; their solutions agree and contain both
  // allocation sites.
  const ir::Instruction* p = find_instr(f, ir::Opcode::kPhi, 0);
  const ir::Instruction* q = find_instr(f, ir::Opcode::kPhi, 1);
  const std::vector<PointsTo::ObjectId> both{std::min(a, b), std::max(a, b)};
  EXPECT_EQ(pt.points_to(p), both);
  EXPECT_EQ(pt.points_to(q), both);
  EXPECT_GE(pt.stats().scc_merges, 1u);
}

TEST(PointsToTest, DeterministicAcrossRebuilds) {
  const char* kText = R"(module m
global @slot
global @obj [4]
func @f() -> i64 {
entry:
  ret 1
}
func @main() {
entry:
  %a = alloca 2
  store @obj, @slot
  store @f, %a
  %p = load @slot
  %v = load %p
  %g = gep %a, 1
  %q = load %g
  ret
}
)";
  auto m1 = parse_ok(kText);
  auto m2 = parse_ok(kText);
  const PointsTo pt1(*m1);
  const PointsTo pt2(*m2);

  EXPECT_EQ(pt1.stats().nodes, pt2.stats().nodes);
  EXPECT_EQ(pt1.stats().objects, pt2.stats().objects);
  EXPECT_EQ(pt1.stats().copy_edges, pt2.stats().copy_edges);
  EXPECT_EQ(pt1.stats().propagations, pt2.stats().propagations);

  // Corresponding instructions get identical (sorted) object-id sets.
  const ir::Function* f1 = m1->find_function("main");
  const ir::Function* f2 = m2->find_function("main");
  for (ir::Opcode op : {ir::Opcode::kLoad, ir::Opcode::kGep}) {
    for (std::size_t n = 0;; ++n) {
      const ir::Instruction* i1 = find_instr(f1, op, n);
      const ir::Instruction* i2 = find_instr(f2, op, n);
      ASSERT_EQ(i1 == nullptr, i2 == nullptr);
      if (i1 == nullptr) break;
      EXPECT_EQ(pt1.points_to(i1), pt2.points_to(i2));
      EXPECT_EQ(pt1.is_unknown(i1), pt2.is_unknown(i2));
    }
  }
}

TEST(PointsToTest, ResolvesIndirectCallToAllStoredFunctions) {
  auto m = parse_ok(R"(module m
global @slot
func @f() -> i64 {
entry:
  ret 1
}
func @g() -> i64 {
entry:
  ret 2
}
func @main() {
entry:
  %c = input 0
  %t = icmp ne %c, 0
  br %t, a, b
a:
  store @f, @slot
  jmp go
b:
  store @g, @slot
  jmp go
go:
  %fp = load @slot
  %r = callptr %fp(0)
  ret
}
)");
  const ModuleStatic ms(*m);
  const ir::Function* main_fn = m->find_function("main");
  const ir::Instruction* callptr = find_instr(main_fn, ir::Opcode::kCallPtr);

  const std::vector<ir::Function*> targets =
      ms.points_to.resolve_indirect(callptr);
  ASSERT_EQ(targets.size(), 2u);
  // Module declaration order, not solve order.
  EXPECT_EQ(targets[0]->name(), "f");
  EXPECT_EQ(targets[1]->name(), "g");
  EXPECT_FALSE(ms.points_to.indirect_unresolved(callptr));

  EXPECT_EQ(ms.indirect_call_sites, 1u);
  EXPECT_EQ(ms.indirect_resolved_edges, 2u);
  EXPECT_EQ(ms.unresolved_indirect_sites, 0u);
  const auto it = ms.resolved_calls.find(callptr);
  ASSERT_NE(it, ms.resolved_calls.end());
  EXPECT_EQ(it->second.size(), 2u);
}

TEST(PointsToTest, UnknownTargetMarksCallsiteUnresolved) {
  auto m = parse_ok(R"(module m
func @main() {
entry:
  %x = input 0
  %r = callptr %x(0)
  ret
}
)");
  const ModuleStatic ms(*m);
  const ir::Instruction* callptr =
      find_instr(m->find_function("main"), ir::Opcode::kCallPtr);

  EXPECT_TRUE(ms.points_to.is_unknown(callptr->operand(0)));
  EXPECT_TRUE(ms.points_to.indirect_unresolved(callptr));
  EXPECT_TRUE(ms.points_to.resolve_indirect(callptr).empty());
  EXPECT_EQ(ms.indirect_call_sites, 1u);
  EXPECT_EQ(ms.unresolved_indirect_sites, 1u);
}

TEST(PointsToTest, ThreadCreateFlowsArgumentIntoEntryFunction) {
  auto m = parse_ok(R"(module m
global @box
func @child(ptr %p) {
entry:
  store 1, %p
  ret
}
func @main() {
entry:
  %t = thread_create @child, @box
  thread_join %t
  ret
}
)");
  const PointsTo pt(*m);
  const ir::Function* child = m->find_function("child");
  const PointsTo::ObjectId box = id_of(pt, m->find_global("box"));
  EXPECT_EQ(pt.points_to(child->argument(0)),
            std::vector<PointsTo::ObjectId>{box});
}

// The pre-analysis blind spot (satellite fix): a race-corrupted value that
// only becomes dangerous inside an indirectly-called handler. Algorithm 1
// must find the handler-internal site exactly when the callptr edge is
// resolved.
TEST(PointsToTest, AlgorithmOneDescendsThroughResolvedCallPtr) {
  auto m = parse_ok(R"(module m
global @handler_slot
global @req
func @handler(ptr %p) -> i64 {
entry:
  %v = load %p
  ret %v
}
func @worker() {
entry:
  %r = load @req
  %f = load @handler_slot
  %v = callptr %f(%r)
  ret
}
func @attacker() {
entry:
  store 9, @req
  ret
}
func @main() {
entry:
  store @handler, @handler_slot
  %a = thread_create @worker, 0
  %b = thread_create @attacker, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  const ModuleStatic ms(*m);
  EXPECT_EQ(ms.indirect_resolved_edges, 1u);

  const ir::Function* worker = m->find_function("worker");
  const ir::Instruction* read = find_instr(worker, ir::Opcode::kLoad, 0);
  const interp::CallStack stack{{worker, read}};

  const auto handler_site_found = [&](const vuln::VulnAnalysis& analysis) {
    for (const vuln::ExploitReport& e : analysis.exploits) {
      if (e.function != nullptr && e.function->name() == "handler" &&
          e.site != nullptr && e.site->opcode() == ir::Opcode::kLoad) {
        return true;
      }
    }
    return false;
  };

  vuln::VulnerabilityAnalyzer::Options blind;
  const vuln::VulnerabilityAnalyzer without(*m, blind);
  EXPECT_FALSE(handler_site_found(without.analyze_from(read, stack)));

  vuln::VulnerabilityAnalyzer::Options resolved;
  resolved.resolved_indirect = &ms.resolved_calls;
  const vuln::VulnerabilityAnalyzer with(*m, resolved);
  EXPECT_TRUE(handler_site_found(with.analyze_from(read, stack)));
}

// --- LockFacts: the lockset machinery extracted from the prescreen ---

TEST(LockFactsTest, MustLocksetTracksCriticalSections) {
  auto m = parse_ok(R"(module m
global @mu
global @g
func @main() {
entry:
  %before = load @g
  lock @mu
  store 1, @g
  unlock @mu
  %after = load @g
  ret
}
)");
  const ModuleStatic ms(*m);
  const LockFacts& facts = ms.lock_facts;
  ASSERT_FALSE(facts.all_undisciplined());

  PointsTo::ObjectId mu = 0;
  ASSERT_TRUE(facts.lock_token(
      find_instr(m->find_function("main"), ir::Opcode::kLock)->operand(0),
      mu));
  EXPECT_TRUE(facts.well_formed(mu));

  const ir::Function* main_fn = m->find_function("main");
  const ir::Instruction* guarded = find_instr(main_fn, ir::Opcode::kStore);
  ASSERT_TRUE(facts.has_fact(guarded));
  EXPECT_EQ(facts.must_held_before(guarded), LockFacts::LockSet{mu});
  // Loads outside the critical section hold nothing.
  EXPECT_TRUE(facts.must_held_before(
                  find_instr(main_fn, ir::Opcode::kLoad, 0)).empty());
  EXPECT_TRUE(facts.must_held_before(
                  find_instr(main_fn, ir::Opcode::kLoad, 1)).empty());

  // Both lock sites resolved, in module order: acquire then release.
  ASSERT_EQ(facts.lock_sites().size(), 2u);
  EXPECT_TRUE(facts.lock_sites()[0].is_acquire);
  EXPECT_FALSE(facts.lock_sites()[1].is_acquire);
  EXPECT_EQ(facts.lock_sites()[0].token, mu);
  EXPECT_EQ(facts.lock_sites()[1].token, mu);
}

TEST(LockFactsTest, UnprovenUnlockBreaksDiscipline) {
  // The second unlock does not provably hold @mu, so the token is not
  // well-formed — exactly the fact the lock-mismatch checker reports and
  // the prescreen uses to refuse "consistently locked" pruning.
  auto m = parse_ok(R"(module m
global @mu
global @g
func @main() {
entry:
  lock @mu
  store 1, @g
  unlock @mu
  unlock @mu
  ret
}
)");
  const ModuleStatic ms(*m);
  const LockFacts& facts = ms.lock_facts;
  PointsTo::ObjectId mu = 0;
  ASSERT_TRUE(facts.lock_token(
      find_instr(m->find_function("main"), ir::Opcode::kLock)->operand(0),
      mu));
  EXPECT_FALSE(facts.well_formed(mu));
}

TEST(LockFactsTest, CallsIntoReleasingFunctionsClearTheMustSet) {
  auto m = parse_ok(R"(module m
global @mu
global @g
func @releases() {
entry:
  unlock @mu
  ret
}
func @keeps() {
entry:
  %x = load @g
  ret
}
func @main() {
entry:
  lock @mu
  call @keeps()
  store 1, @g
  call @releases()
  store 2, @g
  ret
}
)");
  const ModuleStatic ms(*m);
  const LockFacts& facts = ms.lock_facts;
  const ir::Function* main_fn = m->find_function("main");
  EXPECT_FALSE(
      facts.function_may_release(m->find_function("keeps")));
  EXPECT_TRUE(
      facts.function_may_release(m->find_function("releases")));
  // The store after the non-releasing call keeps the lockset; the one
  // after the may-release call loses it.
  EXPECT_EQ(facts.must_held_before(find_instr(main_fn, ir::Opcode::kStore, 0))
                .size(),
            1u);
  EXPECT_TRUE(
      facts.must_held_before(find_instr(main_fn, ir::Opcode::kStore, 1))
          .empty());
}

TEST(LockFactsTest, SerializeIsRebuildDeterministic) {
  const std::string text = R"(module m
global @a
global @b
global @g
func @worker() {
entry:
  lock @a
  lock @b
  store 1, @g
  unlock @b
  unlock @a
  ret
}
func @main() {
entry:
  %t = thread_create @worker, 0
  thread_join %t
  ret
}
)";
  auto m1 = parse_ok(text);
  auto m2 = parse_ok(text);
  const ModuleStatic ms1(*m1);
  const ModuleStatic ms2(*m2);
  const std::string snapshot = ms1.lock_facts.serialize();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot, ms2.lock_facts.serialize());
  // A second LockFacts over the same analysis inputs is also identical.
  const LockFacts rebuilt(*m1, ms1.points_to, ms1.resolved_calls);
  EXPECT_EQ(snapshot, rebuilt.serialize());
}

}  // namespace
}  // namespace owl::analysis
