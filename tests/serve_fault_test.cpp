// Integration tests for the serve layer's robustness claims: every
// service-phase fault (admit, enqueue, cache-read, cache-write, respond)
// fails exactly one request cleanly while the daemon keeps serving; the
// executor isolates requests from each other (byte-identical reruns); and
// a withheld response is owed — and paid — by journal replay on restart.
//
// These drive ServiceCore directly (no sockets): the transport is covered
// end-to-end by scripts/serve_check.py; what needs gtest precision is the
// request lifecycle itself.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/executor.hpp"
#include "serve/json.hpp"
#include "serve/service_core.hpp"
#include "support/fault_injector.hpp"
#include "support/strings.hpp"

namespace owl::serve {
namespace {

/// A tiny racy module (lost update): fast to analyze, nonempty findings.
constexpr const char* kModule = R"(module lost_update
global @balance [1] = 100

func @deposit_a() {
entry:
  %b = load @balance
  io_delay 5
  %n = add %b, 10
  store %n, @balance
  ret
}

func @deposit_b() {
entry:
  %b = load @balance
  io_delay 3
  %n = add %b, 25
  store %n, @balance
  ret
}

func @main() {
entry:
  %a = thread_create @deposit_a, 0
  %b = thread_create @deposit_b, 0
  thread_join %a
  thread_join %b
  ret
}
)";

class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/owl_serve_fault_XXXXXX";
    path_ = mkdtemp(pattern);
  }
  ~TempDir() {
    if (!path_.empty()) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string analyze_line(const std::string& id) {
  return R"({"id":")" + id + R"(","module_text":)" +
         json_quote(kModule) + R"(,"name":"lost_update"})";
}

std::string_view strip_newline(const std::string& text) {
  std::string_view view = text;
  while (!view.empty() && (view.back() == '\n' || view.back() == '\r')) {
    view.remove_suffix(1);
  }
  return view;
}

/// Runs one line through the core and returns the parsed response (waits
/// for the executor thread via a latch in the respond callback).
JsonValue roundtrip(ServiceCore& core, const std::string& line,
                    bool* responded = nullptr, unsigned timeout_s = 60) {
  std::mutex mutex;
  std::condition_variable done;
  std::string response;
  bool have_response = false;
  core.handle_line(line, "test-client", [&](const std::string& text) {
    std::lock_guard<std::mutex> lock(mutex);
    response = text;
    have_response = true;
    done.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  const bool ok = done.wait_for(lock, std::chrono::seconds(timeout_s),
                                [&] { return have_response; });
  if (responded != nullptr) *responded = ok;
  JsonValue value;
  std::string error;
  if (ok) JsonValue::parse(strip_newline(response), value, error);
  return value;
}

/// Parses "stage:kind[:after]" and caps the plan at `count` firings (the
/// CLI spec has no count field; tests want "fail exactly one request").
support::FaultPlan plan_for(const char* spec, std::uint64_t count = 0) {
  support::FaultPlan plan;
  EXPECT_TRUE(support::parse_fault_plan(spec, plan)) << spec;
  plan.count = count;
  return plan;
}

// ---- executor isolation ----

TEST(ServeExecutorTest, RerunsAreByteIdentical) {
  Executor executor;
  AnalysisOptions options;
  const ExecResult first = executor.run(kModule, "lost_update", options);
  ASSERT_EQ(first.exit_code, 0);
  ASSERT_TRUE(first.ran_pipeline);
  ASSERT_FALSE(first.output.empty());
  ASSERT_FALSE(first.manifest.empty());

  // An interleaved different request must not leak into the rerun.
  AnalysisOptions other = options;
  other.seed = 99;
  other.detector = core::DetectorKind::kSki;
  executor.run(kModule, "lost_update", other);

  const ExecResult again = executor.run(kModule, "lost_update", options);
  EXPECT_EQ(again.output, first.output);
  EXPECT_EQ(again.manifest, first.manifest);
  EXPECT_EQ(again.exit_code, first.exit_code);
}

TEST(ServeExecutorTest, JobsDoNotChangeBytes) {
  Executor executor;
  AnalysisOptions options;
  const ExecResult serial = executor.run(kModule, "lost_update", options);
  AnalysisOptions parallel_options = options;
  parallel_options.jobs = 4;
  const ExecResult parallel =
      executor.run(kModule, "lost_update", parallel_options);
  EXPECT_EQ(parallel.output, serial.output);
  EXPECT_EQ(parallel.manifest, serial.manifest);
}

TEST(ServeExecutorTest, LoadErrorsMatchOwlCliContract) {
  Executor executor;
  AnalysisOptions options;
  const ExecResult parse_fail = executor.run("not minir\n", "bad", options);
  EXPECT_EQ(parse_fail.exit_code, 1);
  EXPECT_FALSE(parse_fail.ran_pipeline);
  EXPECT_NE(parse_fail.error.find("owl_cli: bad: "), std::string::npos);

  AnalysisOptions wrong_entry = options;
  wrong_entry.entry = "nope";
  const ExecResult no_entry = executor.run(kModule, "m", wrong_entry);
  EXPECT_EQ(no_entry.exit_code, 1);
  EXPECT_EQ(no_entry.error, "owl_cli: m: no entry function @nope\n");
}

// ---- service-phase fault injection ----

class ServeFaultTest : public ::testing::Test {
 protected:
  /// Builds a core with `specs` installed as service-phase plans and the
  /// cache/journal rooted in a scratch dir.
  void build(const std::vector<support::FaultPlan>& plans,
             bool with_journal = false) {
    faults_ = std::make_unique<support::FaultInjector>(0x0417);
    for (const support::FaultPlan& plan : plans) faults_->add_plan(plan);
    ServiceCore::Config config;
    config.cache_dir = dir_.path() + "/cache";
    if (with_journal) config.journal_path = dir_.path() + "/journal.log";
    config.queue_depth = 8;
    config.max_inflight_per_client = 8;
    if (!faults_->empty()) config.service_faults = faults_.get();
    core_ = std::make_unique<ServiceCore>(config);
    core_->start();
  }

  TempDir dir_;
  std::unique_ptr<support::FaultInjector> faults_;
  std::unique_ptr<ServiceCore> core_;
};

TEST_F(ServeFaultTest, AdmitThrowFailsOneRequestCleanly) {
  build({plan_for("admit:throw", /*count=*/1)});
  const JsonValue failed = roundtrip(*core_, analyze_line("r1"));
  EXPECT_EQ(failed.find("status")->as_string(), "error");
  EXPECT_NE(failed.find("reason")->as_string().find("serve-admit"),
            std::string::npos);
  // The daemon keeps serving.
  const JsonValue ok = roundtrip(*core_, analyze_line("r2"));
  EXPECT_EQ(ok.find("status")->as_string(), "ok");
  EXPECT_EQ(ok.find("exit")->as_int(), 0);
}

TEST_F(ServeFaultTest, EnqueueThrowReleasesTheSlot) {
  build({plan_for("enqueue:throw", /*count=*/1)});
  const JsonValue failed = roundtrip(*core_, analyze_line("r1"));
  EXPECT_EQ(failed.find("status")->as_string(), "error");
  // All 8 slots are free again: fill the queue without a shed.
  for (int i = 0; i < 8; ++i) {
    const JsonValue ok = roundtrip(*core_, analyze_line("q" + std::to_string(i)));
    EXPECT_EQ(ok.find("status")->as_string(), "ok") << i;
  }
}

TEST_F(ServeFaultTest, CacheReadThrowFailsRequestNotDaemon) {
  build({plan_for("cache-read:throw", /*count=*/1)});
  const JsonValue failed = roundtrip(*core_, analyze_line("r1"));
  EXPECT_EQ(failed.find("status")->as_string(), "error");
  EXPECT_NE(failed.find("reason")->as_string().find("serve-cache-read"),
            std::string::npos);
  const JsonValue ok = roundtrip(*core_, analyze_line("r2"));
  EXPECT_EQ(ok.find("status")->as_string(), "ok");
  EXPECT_EQ(ok.find("cache")->as_string(), "miss");
}

TEST_F(ServeFaultTest, CacheWriteThrowDegradesToUncached) {
  build({plan_for("cache-write:throw", /*count=*/1)});
  // The response is unaffected; only the store is lost.
  const JsonValue first = roundtrip(*core_, analyze_line("r1"));
  ASSERT_EQ(first.find("status")->as_string(), "ok");
  EXPECT_EQ(first.find("cache")->as_string(), "miss");
  const JsonValue second = roundtrip(*core_, analyze_line("r2"));
  ASSERT_EQ(second.find("status")->as_string(), "ok");
  // Store was dropped, so this is a miss again — and identical bytes.
  EXPECT_EQ(second.find("cache")->as_string(), "miss");
  EXPECT_EQ(second.find("output")->as_string(),
            first.find("output")->as_string());
  // Third time the write goes through; fourth is the warm hit.
  roundtrip(*core_, analyze_line("r3"));
  const JsonValue warm = roundtrip(*core_, analyze_line("r4"));
  EXPECT_EQ(warm.find("cache")->as_string(), "hit");
  EXPECT_EQ(warm.find("output")->as_string(),
            first.find("output")->as_string());
}

TEST_F(ServeFaultTest, CacheWriteCorruptionIsDetectedEvictedRecomputed) {
  build({plan_for("cache-write:corrupt", /*count=*/1)});
  const JsonValue first = roundtrip(*core_, analyze_line("r1"));
  ASSERT_EQ(first.find("status")->as_string(), "ok");

  // The stored entry was bit-flipped. The next lookup must detect the
  // damage, evict, recompute, and return bytes identical to the clean run.
  const JsonValue second = roundtrip(*core_, analyze_line("r2"));
  ASSERT_EQ(second.find("status")->as_string(), "ok");
  EXPECT_EQ(second.find("cache")->as_string(), "miss");  // not served corrupt
  EXPECT_EQ(second.find("output")->as_string(),
            first.find("output")->as_string());
  EXPECT_EQ(second.find("manifest_sha")->as_string(),
            first.find("manifest_sha")->as_string());

  // The recomputed store is clean: now it hits.
  const JsonValue third = roundtrip(*core_, analyze_line("r3"));
  EXPECT_EQ(third.find("cache")->as_string(), "hit");

  // Stats prove the eviction happened exactly once.
  const JsonValue stats = roundtrip(*core_, R"({"op":"stats"})");
  const JsonValue* cache = stats.find("stats")->find("cache");
  EXPECT_EQ(cache->find("evictions")->as_int(), 1);
}

TEST_F(ServeFaultTest, RespondThrowWithholdsResponseAndJournalOwesIt) {
  build({plan_for("respond:throw", /*count=*/1)}, /*with_journal=*/true);
  // r1 uses a distinct seed so its cache key — and thus its journal
  // record — is its own (identical requests share a key on purpose: one
  // settled twin settles them all).
  const std::string r1 = R"({"id":"r1","module_text":)" +
                         json_quote(kModule) +
                         R"(,"name":"lost_update","options":{"seed":7}})";
  bool responded = true;
  roundtrip(*core_, r1, &responded, /*timeout_s=*/2);
  EXPECT_FALSE(responded);  // dropped mid-respond, like a daemon death

  // The daemon itself keeps serving...
  const JsonValue ok = roundtrip(*core_, analyze_line("r2"));
  EXPECT_EQ(ok.find("status")->as_string(), "ok");
  // ...but the first request's A record is still owed. Check after the
  // drain so both requests' journal records are settled deterministically.
  core_->shutdown();
  JsonValue stats;
  std::string parse_err;
  ASSERT_TRUE(JsonValue::parse(strip_newline(core_->stats_response()), stats,
                               parse_err));
  EXPECT_EQ(stats.find("stats")->find("dropped_responses")->as_int(), 1);
  EXPECT_EQ(
      stats.find("stats")->find("journal")->find("pending")->as_int(), 1);

  // "Restart": a fresh core on the same journal replays it into the cache.
  ServiceCore::Config config;
  config.cache_dir = dir_.path() + "/cache";
  config.journal_path = dir_.path() + "/journal.log";
  ServiceCore reborn(config);
  EXPECT_EQ(reborn.recover_journal(), 1u);
  reborn.start();
  const std::string r3 = R"({"id":"r3","module_text":)" +
                         json_quote(kModule) +
                         R"(,"name":"lost_update","options":{"seed":7}})";
  const JsonValue warm = roundtrip(reborn, r3);
  EXPECT_EQ(warm.find("status")->as_string(), "ok");
  EXPECT_EQ(warm.find("cache")->as_string(), "hit");
  // The replayed result is byte-identical to a fresh seed-7 run.
  Executor executor;
  AnalysisOptions seed7;
  seed7.seed = 7;
  const ExecResult expected = executor.run(kModule, "lost_update", seed7);
  EXPECT_EQ(warm.find("output")->as_string(), expected.output);
  reborn.shutdown();
}

TEST_F(ServeFaultTest, PipelineFaultDegradesNotDies) {
  // A pipeline-stage fault (detect:throw) rides into the analysis and is
  // absorbed by the resilience layer: the response reports a degraded run,
  // the daemon stays up.
  auto pipeline_faults = std::make_unique<support::FaultInjector>(1);
  pipeline_faults->add_plan(plan_for("detect:throw"));
  ServiceCore::Config config;
  config.cache_dir = dir_.path() + "/cache";
  config.pipeline_faults = pipeline_faults.get();
  ServiceCore core(config);
  core.start();
  const JsonValue value = roundtrip(core, analyze_line("r1"));
  ASSERT_EQ(value.find("status")->as_string(), "ok");
  EXPECT_EQ(value.find("exit")->as_int(), 0);
  EXPECT_NE(value.find("output")->as_string().find("injected"),
            std::string::npos);
  core.shutdown();
}

TEST_F(ServeFaultTest, ShedAndDrainLifecycle) {
  build({});
  // Overfill a depth-8 queue from one client capped at 8.
  ServiceCore& core = *core_;
  std::mutex mutex;
  std::vector<std::string> immediate;
  int pending = 0;
  std::condition_variable done;
  for (int i = 0; i < 12; ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++pending;
    }
    core.handle_line(analyze_line("s" + std::to_string(i)), "one-client",
                     [&](const std::string& text) {
                       std::lock_guard<std::mutex> inner(mutex);
                       immediate.push_back(text);
                       --pending;
                       done.notify_all();
                     });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(done.wait_for(lock, std::chrono::seconds(120),
                              [&] { return pending == 0; }));
  }
  int ok = 0;
  int rejected = 0;
  for (const std::string& line : immediate) {
    JsonValue value;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(strip_newline(line), value, error));
    const std::string& status = value.find("status")->as_string();
    if (status == "ok") ++ok;
    if (status == "rejected") {
      ++rejected;
      EXPECT_EQ(value.find("reason")->as_string(),
                "client_inflight_exceeded");
      EXPECT_GT(value.find("retry_after_ms")->as_int(), 0);
    }
  }
  EXPECT_EQ(ok + rejected, 12);
  EXPECT_GE(rejected, 1);  // the cap really shed

  // After drain, everything sheds with shutting_down.
  core.begin_drain();
  const JsonValue shed = roundtrip(core, analyze_line("late"));
  EXPECT_EQ(shed.find("status")->as_string(), "rejected");
  EXPECT_EQ(shed.find("reason")->as_string(), "shutting_down");
}

}  // namespace
}  // namespace owl::serve
