// Unit tests for the parallel execution substrate: ThreadPool lifecycle,
// exception surfacing, oversubscription, graceful shutdown with queued
// work, nested parallel_for, the thread-safe log sink, and the concurrent
// stats accumulators. This binary is the core of the sanitizer gates —
// scripts/ci.sh runs it under ASan/UBSan and again under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/log.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace owl::support {
namespace {

TEST(ThreadPoolTest, ConstructionTeardownLoop) {
  // Pools must come up and down cleanly even when nothing is submitted —
  // repeated to shake out join/notify races under the sanitizers.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
  }
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(1);
    pool.submit([] {}).get();
  }
}

TEST(ThreadPoolTest, ZeroSizesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.size(), ThreadPool::default_jobs());
}

TEST(ThreadPoolTest, SubmitRunsTasksOnWorkerThreads) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> on_caller{false};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&] {
      if (std::this_thread::get_id() == caller) on_caller = true;
      ran.fetch_add(1);
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_FALSE(on_caller.load());
}

TEST(ThreadPoolTest, SubmitSurfacesExceptionAtGet) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survived the throw and keeps serving tasks.
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DroppedFutureDoesNotTerminate) {
  // A task whose future is discarded still runs; its exception is absorbed
  // by the packaged_task instead of tearing down the worker.
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("nobody listening"); });
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;  // not a multiple of the pool size
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForOversubscription) {
  // Far more work items than workers: everything still completes, and the
  // calling thread is allowed to help drain the slots.
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10'000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10'000u * 9'999u / 2);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Indices 3 and 7 throw; the rethrown exception must be index 3's
  // regardless of which worker reached which index first.
  for (int round = 0; round < 10; ++round) {
    try {
      pool.parallel_for(16, [&](std::size_t i) {
        if (i == 7) throw std::runtime_error("seven");
        if (i == 3) throw std::runtime_error("three");
      });
      FAIL() << "parallel_for swallowed the exceptions";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "three");
    }
  }
}

TEST(ThreadPoolTest, ParallelForRunsRemainingSlotsAfterThrow) {
  // One bad slot must not cancel the rest — callers rely on every index
  // having executed when the exception arrives (deterministic fold).
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i == 0) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForOnSingleThreadPool) {
  // A worker that issues a nested parallel_for on a saturated pool must
  // not deadlock: the nested caller helps execute its own slots.
  ThreadPool pool(1);
  std::atomic<int> inner_runs{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // Graceful destruction: tasks already queued when the destructor starts
  // still run to completion (no silent loss).
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // Head task blocks the single worker so the rest stay queued until
    // the destructor begins.
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 16; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int runs = 0;
  pool.parallel_for(0, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(LogSinkTest, ConcurrentLoggingKeepsLinesIntact) {
  // N threads logging concurrently must produce exactly N lines, each
  // arriving whole at the sink — never interleaved mid-line.
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 50;
  std::vector<std::string> captured;
  const LogLevel previous_level = log_level();
  set_log_level(LogLevel::kInfo);
  LogSink previous = set_log_sink([&](LogLevel, const std::string& line) {
    captured.push_back(line);  // sink runs under the logger mutex
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        OWL_LOG(kInfo) << "thread=" << t << " line=" << i << " tail";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  set_log_sink(std::move(previous));
  set_log_level(previous_level);

  ASSERT_EQ(captured.size(),
            static_cast<std::size_t>(kThreads) * kLinesPerThread);
  std::set<std::string> unique(captured.begin(), captured.end());
  EXPECT_EQ(unique.size(), captured.size()) << "duplicated or torn lines";
  for (const std::string& line : captured) {
    EXPECT_EQ(line.rfind("thread=", 0), 0u) << "torn line: " << line;
    EXPECT_NE(line.find(" tail"), std::string::npos) << "torn line: " << line;
  }
}

TEST(LogSinkTest, EmptySinkRestoresStderr) {
  LogSink previous = set_log_sink([](LogLevel, const std::string&) {});
  set_log_sink(std::move(previous));  // back to the default stderr path
  OWL_LOG(kDebug) << "below threshold, must not crash";
}

TEST(ConcurrentStatsTest, SequentialMomentsMatch) {
  ConcurrentStats stats;
  for (double sample : {4.0, 2.0, 6.0, 8.0}) stats.add(sample);
  const ConcurrentStats::Snapshot snap = stats.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 20.0);
  EXPECT_DOUBLE_EQ(snap.mean, 5.0);
  EXPECT_DOUBLE_EQ(snap.min, 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  EXPECT_NEAR(snap.stddev, 2.582, 1e-3);  // sample stddev, n-1 divisor
}

TEST(ConcurrentStatsTest, ConcurrentAddsLoseNothing) {
  ConcurrentStats stats;
  constexpr int kThreads = 8;
  constexpr int kAdds = 1'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) stats.add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const ConcurrentStats::Snapshot snap = stats.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::size_t>(kThreads) * kAdds);
  EXPECT_DOUBLE_EQ(snap.sum, kThreads * kAdds * 1.0);
}

TEST(StageTimingsTest, ConcurrentRecordAcrossStages) {
  // Workers recording into overlapping stage names must neither lose
  // samples nor invalidate each other's entries while new stages register.
  StageTimings timings;
  constexpr int kThreads = 6;
  constexpr int kRecords = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string own = "stage-" + std::to_string(t);
      for (int i = 0; i < kRecords; ++i) {
        timings.record("shared", 0.001);
        timings.record(own, 0.002);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(timings.stage_snapshot("shared").count,
            static_cast<std::size_t>(kThreads) * kRecords);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        timings.stage_snapshot("stage-" + std::to_string(t)).count,
        static_cast<std::size_t>(kRecords));
  }
  EXPECT_FALSE(timings.empty());
  const std::string summary = timings.summary();
  EXPECT_NE(summary.find("shared"), std::string::npos);
}

}  // namespace
}  // namespace owl::support
