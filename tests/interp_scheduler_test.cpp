// Unit tests for the schedulers (determinism, fairness, replay, priority).
#include <gtest/gtest.h>

#include <set>

#include "interp/scheduler.hpp"

namespace owl::interp {
namespace {

TEST(RoundRobinTest, CyclesThroughRunnable) {
  RoundRobinScheduler sched;
  const std::vector<ThreadId> runnable{1, 2, 3};
  EXPECT_EQ(sched.pick(runnable, 0), 1u);
  EXPECT_EQ(sched.pick(runnable, 1), 2u);
  EXPECT_EQ(sched.pick(runnable, 2), 3u);
  EXPECT_EQ(sched.pick(runnable, 3), 1u);  // wraps
}

TEST(RoundRobinTest, SkipsMissingThreads) {
  RoundRobinScheduler sched;
  EXPECT_EQ(sched.pick({0, 4}, 0), 4u);  // after 0 comes 4
  EXPECT_EQ(sched.pick({0, 4}, 1), 0u);
}

TEST(RandomSchedulerTest, DeterministicPerSeed) {
  RandomScheduler a(42);
  RandomScheduler b(42);
  const std::vector<ThreadId> runnable{0, 1, 2, 3};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.pick(runnable, i), b.pick(runnable, i));
  }
}

TEST(RandomSchedulerTest, CoversAllThreads) {
  RandomScheduler sched(7);
  const std::vector<ThreadId> runnable{0, 1, 2};
  std::set<ThreadId> seen;
  for (int i = 0; i < 100; ++i) seen.insert(sched.pick(runnable, i));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RandomSchedulerTest, DifferentSeedsDifferentSchedules) {
  RandomScheduler a(1);
  RandomScheduler b(2);
  const std::vector<ThreadId> runnable{0, 1, 2, 3, 4, 5, 6, 7};
  int differ = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.pick(runnable, i) != b.pick(runnable, i)) ++differ;
  }
  EXPECT_GT(differ, 10);
}

TEST(PctTest, StrictPriorityUntilChangePoint) {
  PctScheduler sched(3, /*depth=*/1, /*expected_steps=*/1000);
  sched.on_thread_created(0);
  sched.on_thread_created(1);
  sched.on_thread_created(2);
  const std::vector<ThreadId> runnable{0, 1, 2};
  // With depth 1 there are no change points: the same top-priority thread
  // wins every step while runnable.
  const ThreadId first = sched.pick(runnable, 0);
  for (int i = 1; i < 50; ++i) {
    EXPECT_EQ(sched.pick(runnable, i), first);
  }
}

TEST(PctTest, ChangePointDemotesRunningThread) {
  PctScheduler sched(3, /*depth=*/2, /*expected_steps=*/10);
  sched.on_thread_created(0);
  sched.on_thread_created(1);
  const std::vector<ThreadId> runnable{0, 1};
  std::set<ThreadId> seen;
  for (int i = 0; i < 40; ++i) seen.insert(sched.pick(runnable, i));
  // After the change point the other thread must get to run.
  EXPECT_EQ(seen.size(), 2u);
}

TEST(PctTest, FallsBackWhenTopThreadBlocked) {
  PctScheduler sched(9, 1, 100);
  sched.on_thread_created(0);
  sched.on_thread_created(1);
  const ThreadId top = sched.pick({0, 1}, 0);
  const ThreadId other = top == 0 ? 1 : 0;
  EXPECT_EQ(sched.pick({other}, 1), other);
}

TEST(ReplayTest, FollowsScript) {
  ReplayScheduler sched({2, 2, 1, 0});
  const std::vector<ThreadId> runnable{0, 1, 2};
  EXPECT_EQ(sched.pick(runnable, 0), 2u);
  EXPECT_EQ(sched.pick(runnable, 1), 2u);
  EXPECT_EQ(sched.pick(runnable, 2), 1u);
  EXPECT_EQ(sched.pick(runnable, 3), 0u);
}

TEST(ReplayTest, SkipsBlockedScriptEntriesAndFallsBack) {
  ReplayScheduler sched({5, 1});
  // Thread 5 is not runnable: the entry is skipped, 1 is served; then the
  // script is exhausted and round-robin takes over.
  EXPECT_EQ(sched.pick({0, 1}, 0), 1u);
  const ThreadId next = sched.pick({0, 1}, 1);
  EXPECT_TRUE(next == 0u || next == 1u);
}

TEST(PriorityTest, AlwaysPicksHighestListed) {
  PriorityScheduler sched({3, 1, 0});
  EXPECT_EQ(sched.pick({0, 1, 3}, 0), 3u);
  EXPECT_EQ(sched.pick({0, 1}, 1), 1u);
  EXPECT_EQ(sched.pick({0}, 2), 0u);
  // Unlisted threads run only when nothing listed is runnable.
  EXPECT_EQ(sched.pick({7}, 3), 7u);
}

}  // namespace
}  // namespace owl::interp
