// Differential tests for the fast detection substrate (DESIGN.md §2):
// DetectorImpl::kFast (paged shadow, epoch fast paths, dense clocks, lazy
// candidate capture) must emit byte-identical reports to
// DetectorImpl::kReference (the original hash-map substrate) on every
// workload, seed, and jobs value.
//
// Two layers of comparison:
//  - co-observer: one machine run feeds BOTH detectors, so the event
//    streams are literally identical and any divergence is the detector's;
//  - pipeline: full Pipeline runs (detection -> annotation -> verification)
//    under each impl, diffed through core::serialize_result — including a
//    jobs=4 fan-out and an injected detection fault.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "race/ski_detector.hpp"
#include "race/tsan_detector.hpp"

namespace owl::race {
namespace {

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

/// Exhaustive rendering: everything a RaceReport carries, including the
/// fields to_string() omits (kind, key, watched reads with stacks), so the
/// byte-compare cannot miss a divergence.
std::string render_full(const std::vector<RaceReport>& reports) {
  std::string out;
  for (const RaceReport& r : reports) {
    out += "key=" + std::to_string(r.key().first) + "/" +
           std::to_string(r.key().second) + " kind=" +
           std::to_string(static_cast<int>(r.kind)) + "\n";
    out += r.to_string();
    if (r.supplemental_read.has_value()) {
      out += interp::call_stack_to_string(r.supplemental_read->stack);
    }
    out += "watched_reads=" + std::to_string(r.watched_reads.size()) + "\n";
    for (const AccessRecord& read : r.watched_reads) {
      out += "  " + read.to_string() + "\n";
      out += interp::call_stack_to_string(read.stack);
    }
    out += "\n";
  }
  return out;
}

struct DifferentialResult {
  std::string reference;
  std::string fast;
  std::uint64_t reference_dynamic = 0;
  std::uint64_t fast_dynamic = 0;
};

/// Runs one machine with both detectors co-observing the identical event
/// stream.
DifferentialResult run_both(const ir::Module& m, std::uint64_t seed,
                            const AnnotationSet* annotations = nullptr,
                            bool ski = false) {
  interp::MachineOptions options;
  interp::Machine machine(m, options);
  TsanDetector reference(annotations, ski, DetectorImpl::kReference);
  TsanDetector fast(annotations, ski, DetectorImpl::kFast);
  machine.add_observer(&reference);
  machine.add_observer(&fast);
  machine.start(m.find_function("main"));
  interp::RandomScheduler sched(seed);
  machine.run(sched);
  DifferentialResult result;
  result.reference_dynamic = reference.dynamic_race_count();
  result.fast_dynamic = fast.dynamic_race_count();
  result.reference = render_full(reference.take_reports());
  result.fast = render_full(fast.take_reports());
  return result;
}

void expect_identical(const ir::Module& m, std::uint64_t seeds,
                      const AnnotationSet* annotations = nullptr,
                      bool ski = false) {
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const DifferentialResult result = run_both(m, seed, annotations, ski);
    EXPECT_EQ(result.reference, result.fast)
        << "impl divergence at seed " << seed;
    EXPECT_EQ(result.reference_dynamic, result.fast_dynamic)
        << "dynamic-count divergence at seed " << seed;
    EXPECT_FALSE(result.reference.empty() && seed == 0);
  }
}

const char* kReadWriteRace = R"(module rw
global @x
global @y
func @writer() {
entry:
  store 1, @x
  store 2, @y
  ret
}
func @reader() {
entry:
  %v = load @x
  %w = load @x
  %u = load @y
  ret
}
func @main() {
entry:
  %a = thread_create @writer, 0
  %b = thread_create @reader, 0
  thread_join %a
  thread_join %b
  ret
}
)";

TEST(DetectorDifferentialTest, ReadWriteRaces) {
  auto m = parse_ok(kReadWriteRace);
  expect_identical(*m, 8);
}

// Write-write races exercise the supplemental-read watch list: the first
// subsequent load must attach to the same report under both impls.
TEST(DetectorDifferentialTest, WriteWriteWithSupplementalRead) {
  auto m = parse_ok(R"(module ww
global @x
func @w1() {
entry:
  store 1, @x
  ret
}
func @w2() {
entry:
  store 2, @x
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @w1, 0
  %b = thread_create @w2, 0
  thread_join %a
  thread_join %b
  %r = load @x
  ret
}
)");
  expect_identical(*m, 8);
}

// Loops hammer the same-epoch fast paths (repeat reads and writes by the
// same thread at the same address) while the other thread races.
TEST(DetectorDifferentialTest, LoopedAccessesHitFastPaths) {
  auto m = parse_ok(R"(module loop
global @ctr
func @worker() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  %v = load @ctr
  store %v, @ctr
  %n = add %i, 1
  %c = icmp slt %n, 50
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %a = thread_create @worker, 0
  %b = thread_create @worker, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  expect_identical(*m, 8);
}

// Locks, atomics, and thread create/join edges: the dense clock tables and
// reserved sync maps must carry exactly the reference happens-before.
TEST(DetectorDifferentialTest, SynchronizationEdges) {
  auto m = parse_ok(R"(module sync
global @mu
global @x
global @flag
func @locked() {
entry:
  lock @mu
  %v = load @x
  store %v, @x
  unlock @mu
  ret
}
func @atomics() {
entry:
  %o = atomic_add @flag, 1
  %v = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @locked, 0
  %b = thread_create @locked, 0
  %c = thread_create @atomics, 0
  thread_join %a
  thread_join %b
  thread_join %c
  %r = load @x
  ret
}
)");
  expect_identical(*m, 8);
}

// Ad-hoc annotations flip accesses into release/acquire synchronization;
// the annotated branch of the fast path must behave identically.
TEST(DetectorDifferentialTest, AnnotatedAccesses) {
  auto m = parse_ok(R"(module adhoc
global @flag
global @data
func @producer() {
entry:
  store 41, @data
  store 1, @flag
  ret
}
func @consumer() {
entry:
  jmp spin
spin:
  %f = load @flag
  %c = icmp eq %f, 0
  br %c, spin, go
go:
  %v = load @data
  ret
}
func @main() {
entry:
  %a = thread_create @producer, 0
  %b = thread_create @consumer, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  // First pass unannotated: both impls should report the flag/data races.
  expect_identical(*m, 4);

  // Second pass with the flag pair annotated as release/acquire.
  const ir::Function* producer = m->find_function("producer");
  const ir::Function* consumer = m->find_function("consumer");
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(consumer, nullptr);
  const ir::Instruction* release = nullptr;
  const ir::Instruction* acquire = nullptr;
  for (const auto& block : producer->blocks()) {
    for (const auto& instr : block->instructions()) {
      if (instr->opcode() == ir::Opcode::kStore) release = instr.get();
    }
  }
  for (const auto& block : consumer->blocks()) {
    for (const auto& instr : block->instructions()) {
      if (instr->opcode() == ir::Opcode::kLoad &&
          block->label() == "spin") {
        acquire = instr.get();
      }
    }
  }
  ASSERT_NE(release, nullptr);
  ASSERT_NE(acquire, nullptr);
  AnnotationSet annotations;
  annotations.add_release_store(release);
  annotations.add_acquire_load(acquire);
  expect_identical(*m, 4, &annotations);
}

// SKI watch-list mode logs every read after a race until a write
// sanitizes the address — the fast paths must disengage while the watch
// list is armed.
TEST(DetectorDifferentialTest, SkiWatchListMode) {
  auto m = parse_ok(R"(module ski
global @x
func @w1() {
entry:
  store 1, @x
  %a = load @x
  %b = load @x
  ret
}
func @w2() {
entry:
  store 2, @x
  %c = load @x
  store 3, @x
  %d = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @w1, 0
  %b = thread_create @w2, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  expect_identical(*m, 8, nullptr, /*ski=*/true);
}

// Deep call chains: lazy capture rebuilds the as-of-access-time stacks
// from interned contexts; they must match the eagerly captured ones.
TEST(DetectorDifferentialTest, DeepCallStacks) {
  auto m = parse_ok(R"(module deep
global @x
func @leaf() {
entry:
  %v = load @x
  store %v, @x
  ret
}
func @mid() {
entry:
  call @leaf()
  call @leaf()
  ret
}
func @worker() {
entry:
  call @mid()
  ret
}
func @main() {
entry:
  %a = thread_create @worker, 0
  %b = thread_create @worker, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  expect_identical(*m, 8);
}

// explore_schedules (SKI sweep + merge_reports) under both impls.
TEST(DetectorDifferentialTest, ScheduleExplorationMerges) {
  auto m = parse_ok(kReadWriteRace);
  const MachineFactory factory = [&m] {
    interp::MachineOptions options;
    auto machine = std::make_unique<interp::Machine>(*m, options);
    machine->start(m->find_function("main"));
    return machine;
  };
  const ScheduleExplorationResult reference = explore_schedules(
      factory, /*num_schedules=*/6, /*base_seed=*/3, nullptr,
      /*pct_depth=*/3, DetectorImpl::kReference);
  const ScheduleExplorationResult fast = explore_schedules(
      factory, /*num_schedules=*/6, /*base_seed=*/3, nullptr,
      /*pct_depth=*/3, DetectorImpl::kFast);
  EXPECT_EQ(reference.schedules_run, fast.schedules_run);
  EXPECT_EQ(reference.schedules_with_races, fast.schedules_with_races);
  EXPECT_EQ(reference.total_steps, fast.total_steps);
  EXPECT_EQ(render_full(reference.reports), render_full(fast.reports));
}

// Full-pipeline differential: serialize_result covers counts, stage
// reports, exploits, and attacks. Run at jobs=1 and jobs=4 under each
// impl — all four serializations must be byte-identical.
TEST(DetectorDifferentialTest, PipelineEndToEnd) {
  auto m1 = parse_ok(kReadWriteRace);
  auto m2 = parse_ok(R"(module t2
global @flag
global @buf [4]
func @setter() {
entry:
  store 9, @flag
  ret
}
func @checker() {
entry:
  %f = load @flag
  %p = gep @buf, %f
  store 1, %p
  ret
}
func @main() {
entry:
  %a = thread_create @setter, 0
  %b = thread_create @checker, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  std::vector<core::PipelineTarget> targets;
  for (const auto& m : {m1, m2}) {
    core::PipelineTarget t;
    t.name = m->name();
    t.module = m.get();
    t.factory = [m] {
      interp::MachineOptions options;
      options.max_steps = 50'000;
      auto machine = std::make_unique<interp::Machine>(*m, options);
      machine->start(m->find_function("main"));
      return machine;
    };
    t.seed = 7 * (targets.size() + 1);
    targets.push_back(std::move(t));
  }

  const auto run = [&targets](DetectorImpl impl, unsigned jobs) {
    core::PipelineOptions options;
    options.detector_impl = impl;
    options.jobs = jobs;
    const core::Pipeline pipeline(options);
    std::string out;
    for (const core::PipelineResult& result : pipeline.run_many(targets)) {
      out += core::serialize_result(result);
    }
    return out;
  };

  const std::string ref1 = run(DetectorImpl::kReference, 1);
  EXPECT_EQ(ref1, run(DetectorImpl::kFast, 1));
  EXPECT_EQ(ref1, run(DetectorImpl::kFast, 4));
  EXPECT_EQ(ref1, run(DetectorImpl::kReference, 4));
  EXPECT_NE(ref1.find("data race"), std::string::npos);
}

// The equivalence must hold under resilience-layer degradation too: a
// truncate fault in the detection stage drops observer events, but drops
// the SAME events for both impls (injection happens in the Machine).
TEST(DetectorDifferentialTest, PipelineWithInjectedFault) {
  auto m = parse_ok(kReadWriteRace);
  core::PipelineTarget t;
  t.name = m->name();
  t.module = m.get();
  t.factory = [m] {
    interp::MachineOptions options;
    options.max_steps = 50'000;
    auto machine = std::make_unique<interp::Machine>(*m, options);
    machine->start(m->find_function("main"));
    return machine;
  };
  t.seed = 11;
  const std::vector<core::PipelineTarget> targets{t};

  const auto run = [&targets](DetectorImpl impl) {
    support::FaultInjector injector(/*seed=*/5);
    support::FaultPlan plan;
    plan.stage = support::PipelineStage::kDetection;
    plan.kind = support::FaultKind::kTruncatedEvents;
    plan.after = 1;
    injector.add_plan(plan);
    core::PipelineOptions options;
    options.detector_impl = impl;
    options.fault_injector = &injector;
    const core::Pipeline pipeline(options);
    std::string out;
    for (const core::PipelineResult& result : pipeline.run_many(targets)) {
      out += core::serialize_result(result);
    }
    return out;
  };

  EXPECT_EQ(run(DetectorImpl::kReference), run(DetectorImpl::kFast));
}

// Regression for the merge_reports index cleanup (flat hash + stable
// sort): merged output must stay in key order with summed occurrences,
// earliest supplemental read, and concatenated watched reads.
TEST(MergeReportsOrderTest, OrderAndAggregationUnchanged) {
  auto m = parse_ok(kReadWriteRace);
  // Harvest real reports (real instruction ids) across several seeds.
  std::vector<std::vector<RaceReport>> batches;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    interp::MachineOptions options;
    interp::Machine machine(*m, options);
    TsanDetector detector(nullptr, /*ski_watch_mode=*/true);
    machine.add_observer(&detector);
    machine.start(m->find_function("main"));
    interp::RandomScheduler sched(seed);
    machine.run(sched);
    batches.push_back(detector.take_reports());
  }

  std::vector<RaceReport> merged;
  std::uint64_t total_occurrences = 0;
  std::size_t total_watched = 0;
  for (const auto& batch : batches) {
    for (const RaceReport& r : batch) {
      total_occurrences += r.occurrences;
      total_watched += r.watched_reads.size();
    }
    std::vector<RaceReport> copy = batch;
    merge_reports(merged, std::move(copy));
  }

  // Key order, unique keys.
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].key(), merged[i].key());
  }
  // Occurrences summed, watched reads concatenated — nothing lost.
  std::uint64_t merged_occurrences = 0;
  std::size_t merged_watched = 0;
  for (const RaceReport& r : merged) {
    merged_occurrences += r.occurrences;
    merged_watched += r.watched_reads.size();
  }
  EXPECT_EQ(merged_occurrences, total_occurrences);
  EXPECT_EQ(merged_watched, total_watched);
  // Earliest supplemental read wins: merging a batch with a different
  // supplemental read into an existing report must not replace it.
  for (const RaceReport& r : merged) {
    if (!r.supplemental_read.has_value()) continue;
    // Find the first batch that contributed this key with a supplemental.
    for (const auto& batch : batches) {
      bool found = false;
      for (const RaceReport& b : batch) {
        if (b.key() == r.key() && b.supplemental_read.has_value()) {
          EXPECT_EQ(b.supplemental_read->instr, r.supplemental_read->instr);
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
}

}  // namespace
}  // namespace owl::race
