// Unit + integration tests for the atomicity-violation detector (the §8.3
// CTrigger-class extension) and its pipeline integration.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "race/atomicity_detector.hpp"
#include "race/tsan_detector.hpp"
#include "verify/race_verifier.hpp"
#include "workloads/registry.hpp"

namespace owl::race {
namespace {

std::unique_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  auto m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

std::vector<AtomicityReport> detect(const ir::Module& m,
                                    std::uint64_t seed,
                                    std::vector<interp::Word> inputs = {}) {
  interp::MachineOptions options;
  options.inputs = std::move(inputs);
  interp::Machine machine(m, options);
  AtomicityDetector detector;
  machine.add_observer(&detector);
  machine.start(m.find_function("main"));
  interp::RandomScheduler sched(seed);
  machine.run(sched);
  return detector.take_reports();
}

// A check-then-act on @x with the interleaving forced by sleeps: T1 reads,
// sleeps, writes; T2 writes in between. The classic R-W-W triple.
const char* kRww = R"(module rww
global @x [1] = 10
func @local_thread() {
entry:
  %v = load @x
  io_delay 20
  %v2 = sub %v, 1
  store %v2, @x
  ret
}
func @remote_thread() {
entry:
  io_delay 5
  store 99, @x
  ret
}
func @main() {
entry:
  %a = thread_create @local_thread, 0
  %b = thread_create @remote_thread, 0
  thread_join %a
  thread_join %b
  ret
}
)";

TEST(AtomicityTest, DetectsRwwTriple) {
  auto m = parse_ok(kRww);
  const auto reports = detect(*m, 1);
  ASSERT_GE(reports.size(), 1u);
  bool found = false;
  for (const AtomicityReport& r : reports) {
    if (r.pattern != AtomicityPattern::kRWW) continue;
    found = true;
    EXPECT_EQ(r.object_name, "x");
    EXPECT_FALSE(r.first_local.is_write);
    EXPECT_TRUE(r.remote.is_write);
    EXPECT_TRUE(r.second_local.is_write);
    // The corrupted read is the stale local load.
    ASSERT_NE(r.corrupted_read(), nullptr);
    EXPECT_EQ(r.corrupted_read()->instr, r.first_local.instr);
    EXPECT_NE(r.to_string().find("read-write-write"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(AtomicityTest, SerializedExecutionIsQuiet) {
  // Same program but the remote write happens after the local pair.
  auto m = parse_ok(R"(module ser
global @x [1] = 10
func @local_thread() {
entry:
  %v = load @x
  %v2 = sub %v, 1
  store %v2, @x
  ret
}
func @remote_thread() {
entry:
  io_delay 500
  store 99, @x
  ret
}
func @main() {
entry:
  %a = thread_create @local_thread, 0
  %b = thread_create @remote_thread, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  EXPECT_TRUE(detect(*m, 1).empty());
}

TEST(AtomicityTest, SerializableTriplesNotReported) {
  // remote READ between local read and local read: R-R-R is serializable.
  auto m = parse_ok(R"(module rrr
global @x
func @local_thread() {
entry:
  %v = load @x
  io_delay 20
  %w = load @x
  ret
}
func @remote_thread() {
entry:
  io_delay 5
  %r = load @x
  ret
}
func @main() {
entry:
  %a = thread_create @local_thread, 0
  %b = thread_create @remote_thread, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  EXPECT_TRUE(detect(*m, 1).empty());
}

TEST(AtomicityTest, RemoteWriteBetweenTwoReads) {
  auto m = parse_ok(R"(module rwr
global @x
func @local_thread() {
entry:
  %v = load @x
  io_delay 20
  %w = load @x
  print %w
  ret
}
func @remote_thread() {
entry:
  io_delay 5
  store 7, @x
  ret
}
func @main() {
entry:
  %a = thread_create @local_thread, 0
  %b = thread_create @remote_thread, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  const auto reports = detect(*m, 1);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports.front().pattern, AtomicityPattern::kRWR);
}

TEST(AtomicityTest, AtomicAccessesExcluded) {
  auto m = parse_ok(R"(module at
global @x
func @local_thread() {
entry:
  %v = atomic_add @x, 0
  io_delay 20
  %w = atomic_add @x, 1
  ret
}
func @remote_thread() {
entry:
  io_delay 5
  %r = atomic_add @x, 5
  ret
}
func @main() {
entry:
  %a = thread_create @local_thread, 0
  %b = thread_create @remote_thread, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  EXPECT_TRUE(detect(*m, 1).empty());
}

TEST(AtomicityTest, DeduplicatesAcrossIterations) {
  auto m = parse_ok(R"(module dd
global @x [1] = 100
func @local_thread() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  %v = load @x
  io_delay 8
  %v2 = sub %v, 1
  store %v2, @x
  %n = add %i, 1
  %c = icmp slt %n, 5
  br %c, loop, out
out:
  ret
}
func @remote_thread() {
entry:
  jmp loop
loop:
  %i = phi [0, entry], [%n, loop]
  store 50, @x
  io_delay 7
  %n = add %i, 1
  %c = icmp slt %n, 5
  br %c, loop, out
out:
  ret
}
func @main() {
entry:
  %a = thread_create @local_thread, 0
  %b = thread_create @remote_thread, 0
  thread_join %a
  thread_join %b
  ret
}
)");
  interp::Machine machine(*m, {});
  AtomicityDetector detector;
  machine.add_observer(&detector);
  machine.start(m->find_function("main"));
  interp::RandomScheduler sched(3);
  machine.run(sched);
  auto reports = detector.take_reports();
  // One static triple regardless of how many iterations manifested it.
  std::size_t rww = 0;
  for (const AtomicityReport& r : reports) {
    if (r.pattern == AtomicityPattern::kRWW) {
      ++rww;
      EXPECT_GE(r.occurrences, 1u);
    }
  }
  EXPECT_EQ(rww, 1u);
}

TEST(AtomicityTest, ConversionCarriesCorruptedRead) {
  auto m = parse_ok(kRww);
  const auto reports = detect(*m, 1);
  ASSERT_GE(reports.size(), 1u);
  const RaceReport converted = reports.front().to_race_report();
  EXPECT_EQ(converted.kind, ReportKind::kAtomicityViolation);
  ASSERT_NE(converted.read_side(), nullptr);
  EXPECT_FALSE(converted.read_side()->is_write);
  EXPECT_NE(converted.security_hint.find("unserializable"),
            std::string::npos);
}

// ---- the headline property: invisible to happens-before detection ----

TEST(BankAtomicityTest, TsanIsSilentAtomicityIsNot) {
  const workloads::Workload bank = workloads::make_bank_atomicity();

  // TSan mode: every access is lock-protected; no race reports.
  {
    auto machine = bank.make_machine(bank.testing_inputs);
    TsanDetector tsan;
    machine->add_observer(&tsan);
    interp::RandomScheduler sched(1);
    machine->run(sched);
    EXPECT_TRUE(tsan.take_reports().empty());
  }
  // Atomicity mode: the unserializable triple is reported.
  {
    auto machine = bank.make_machine(bank.testing_inputs);
    AtomicityDetector detector;
    machine->add_observer(&detector);
    interp::RandomScheduler sched(1);
    machine->run(sched);
    EXPECT_FALSE(detector.take_reports().empty());
  }
}

TEST(BankAtomicityTest, PipelineDetectsTheDoubleSpend) {
  const workloads::Workload bank = workloads::make_bank_atomicity();
  core::Pipeline pipeline(bank.pipeline_options());
  const core::PipelineResult result = pipeline.run(bank.target());
  EXPECT_GE(result.counts.raw_reports, 1u);
  EXPECT_GE(result.counts.remaining, 1u);
  EXPECT_TRUE(bank.attack_detected(result))
      << "vuln=" << result.counts.vulnerability_reports
      << " attacks=" << result.attacks.size();
}

TEST(BankAtomicityTest, ExploitDoubleSpends) {
  const workloads::Workload bank = workloads::make_bank_atomicity();
  unsigned hits = 0;
  for (unsigned i = 0; i < 10; ++i) {
    auto machine = bank.make_machine(bank.exploit_inputs);
    interp::RandomScheduler sched(100 + i);
    machine->run(sched);
    if (bank.attack_succeeded(*machine)) ++hits;
  }
  EXPECT_GE(hits, 5u);
  // Benchmark-style small withdrawals never steal anything.
  for (unsigned i = 0; i < 10; ++i) {
    auto machine = bank.make_machine(bank.testing_inputs);
    interp::RandomScheduler sched(200 + i);
    machine->run(sched);
    EXPECT_FALSE(bank.attack_succeeded(*machine));
  }
}

TEST(BankAtomicityTest, VerifierReproducesTheTriple) {
  const workloads::Workload bank = workloads::make_bank_atomicity();
  core::PipelineTarget target = bank.target();
  core::PipelineOptions options;
  options.enable_race_verifier = false;
  options.enable_vuln_verifier = false;
  const core::PipelineResult detection = core::Pipeline(options).run(target);
  ASSERT_GE(detection.counts.raw_reports, 1u);

  race::RaceReport report =
      detection.store.stage(core::Stage::kAfterRaceVerifier).front();
  const verify::RaceVerifier verifier;
  const verify::RaceVerifyResult vr =
      verifier.verify(report, bank.factory(false));
  EXPECT_TRUE(vr.verified);
  EXPECT_NE(report.security_hint.find("atomicity violation reproduced"),
            std::string::npos);
}

}  // namespace
}  // namespace owl::race
