// Tests for the static may-race pre-screen: escape and lockset
// classification on hand-built modules, and the soundness contract on the
// shipped examples — identical pipeline behavior across --prescreen modes,
// with audit mode observing zero pruned-but-raced accesses.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static_info.hpp"
#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "support/metrics.hpp"

namespace owl::analysis {
namespace {

std::shared_ptr<ir::Module> parse_ok(std::string_view text) {
  auto result = ir::parse_module(text);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  std::shared_ptr<ir::Module> m = std::move(result).value();
  EXPECT_TRUE(ir::verify_module(*m).is_ok());
  return m;
}

const ir::Instruction* find_instr(const ir::Function* f, ir::Opcode op,
                                  std::size_t n = 0) {
  for (const auto& bb : f->blocks()) {
    for (const auto& instr : bb->instructions()) {
      if (instr->opcode() == op) {
        if (n == 0) return instr.get();
        --n;
      }
    }
  }
  return nullptr;
}

PointsTo::ObjectId id_of(const PointsTo& pt, const ir::Value* site) {
  PointsTo::ObjectId id = 0;
  EXPECT_TRUE(pt.id_of_site(site, id));
  return id;
}

TEST(PrescreenTest, EscapeClassification) {
  auto m = parse_ok(R"(module m
global @g
func @child(ptr %p) {
entry:
  store 2, %p
  ret
}
func @main() {
entry:
  %l = alloca 1
  store 1, %l
  %e = alloca 1
  store %e, @g
  %t = alloca 1
  %h = thread_create @child, %t
  thread_join %h
  ret
}
)");
  const ModuleStatic ms(*m);
  const PointsTo& pt = ms.points_to;
  const Prescreen& ps = ms.prescreen;
  ASSERT_TRUE(ps.pruning_enabled()) << ps.disable_reason();

  const ir::Function* main_fn = m->find_function("main");
  const PointsTo::ObjectId local =
      id_of(pt, find_instr(main_fn, ir::Opcode::kAlloca, 0));
  const PointsTo::ObjectId via_global =
      id_of(pt, find_instr(main_fn, ir::Opcode::kAlloca, 1));
  const PointsTo::ObjectId via_thread =
      id_of(pt, find_instr(main_fn, ir::Opcode::kAlloca, 2));

  EXPECT_FALSE(ps.object_escapes(local));
  EXPECT_TRUE(ps.object_escapes(via_global));
  EXPECT_TRUE(ps.object_escapes(via_thread));
  EXPECT_TRUE(ps.object_escapes(id_of(pt, m->find_global("g"))));

  // Only the never-escaping store is prunable.
  EXPECT_TRUE(ps.no_race().count(find_instr(main_fn, ir::Opcode::kStore, 0)));
  const ir::Function* child = m->find_function("child");
  EXPECT_FALSE(ps.no_race().count(find_instr(child, ir::Opcode::kStore)));
}

TEST(PrescreenTest, ConsistentlyLockedGlobalIsPrunable) {
  auto m = parse_ok(R"(module m
global @mu
global @data
func @a() {
entry:
  lock @mu
  %v = load @data
  store 1, @data
  unlock @mu
  ret
}
func @b() {
entry:
  lock @mu
  store 2, @data
  unlock @mu
  ret
}
func @main() {
entry:
  %x = thread_create @a, 0
  %y = thread_create @b, 0
  thread_join %x
  thread_join %y
  ret
}
)");
  const ModuleStatic ms(*m);
  const Prescreen& ps = ms.prescreen;
  ASSERT_TRUE(ps.pruning_enabled()) << ps.disable_reason();
  EXPECT_TRUE(ps.object_consistently_locked(
      id_of(ms.points_to, m->find_global("data"))));
  EXPECT_TRUE(
      ps.no_race().count(find_instr(m->find_function("a"), ir::Opcode::kLoad)));
  EXPECT_TRUE(ps.no_race().count(
      find_instr(m->find_function("b"), ir::Opcode::kStore)));
}

TEST(PrescreenTest, UnlockedAccessBreaksLockConsistency) {
  auto m = parse_ok(R"(module m
global @mu
global @data
func @a() {
entry:
  lock @mu
  store 1, @data
  unlock @mu
  ret
}
func @b() {
entry:
  store 2, @data
  ret
}
func @main() {
entry:
  %x = thread_create @a, 0
  %y = thread_create @b, 0
  thread_join %x
  thread_join %y
  ret
}
)");
  const ModuleStatic ms(*m);
  const Prescreen& ps = ms.prescreen;
  ASSERT_TRUE(ps.pruning_enabled()) << ps.disable_reason();
  EXPECT_FALSE(ps.object_consistently_locked(
      id_of(ms.points_to, m->find_global("data"))));
  EXPECT_FALSE(
      ps.no_race().count(find_instr(m->find_function("a"), ir::Opcode::kStore)));
  EXPECT_FALSE(
      ps.no_race().count(find_instr(m->find_function("b"), ir::Opcode::kStore)));
}

TEST(PrescreenTest, ForeignUnlockBreaksLockDiscipline) {
  auto m = parse_ok(R"(module m
global @mu
global @data
func @a() {
entry:
  lock @mu
  store 1, @data
  unlock @mu
  ret
}
func @evil() {
entry:
  unlock @mu
  ret
}
func @main() {
entry:
  %x = thread_create @a, 0
  %y = thread_create @evil, 0
  thread_join %x
  thread_join %y
  ret
}
)");
  const ModuleStatic ms(*m);
  const Prescreen& ps = ms.prescreen;
  ASSERT_TRUE(ps.pruning_enabled()) << ps.disable_reason();
  // The unlock in @evil cannot be proven to hold @mu, so @mu is no longer a
  // well-formed token and @data loses its consistently-locked status.
  EXPECT_FALSE(ps.object_consistently_locked(
      id_of(ms.points_to, m->find_global("data"))));
  EXPECT_FALSE(
      ps.no_race().count(find_instr(m->find_function("a"), ir::Opcode::kStore)));
}

TEST(PrescreenTest, WildStoreDisablesPruningModuleWide) {
  auto m = parse_ok(R"(module m
func @main() {
entry:
  %x = input 0
  store 1, %x
  %l = alloca 1
  store 2, %l
  ret
}
)");
  const ModuleStatic ms(*m);
  const Prescreen& ps = ms.prescreen;
  // A store through an input-derived pointer may clobber any object, so
  // even the provably-local alloca access must stay un-pruned.
  EXPECT_FALSE(ps.pruning_enabled());
  EXPECT_FALSE(ps.disable_reason().empty());
  EXPECT_TRUE(ps.no_race().empty());
}

// --------------------------------------------------------------------------
// Shipped-example contract
// --------------------------------------------------------------------------

std::filesystem::path examples_dir() { return OWL_EXAMPLES_DIR; }

std::shared_ptr<ir::Module> load_example(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return parse_ok(text.str());
}

std::vector<std::filesystem::path> example_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(examples_dir())) {
    if (entry.path().extension() == ".mir") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  EXPECT_GE(files.size(), 6u);
  return files;
}

TEST(PrescreenTest, ThreadlocalNoiseExampleIsMostlyPrunable) {
  auto m = load_example(examples_dir() / "threadlocal_noise.mir");
  const ModuleStatic ms(*m);
  ASSERT_TRUE(ms.prescreen.pruning_enabled())
      << ms.prescreen.disable_reason();
  EXPECT_EQ(ms.prescreen.wild_accesses(), 0u);
  // All twelve private-buffer accesses (8 in worker_a, 4 in worker_b) are
  // provably thread-local; the @flag handoff pair must stay hot.
  EXPECT_EQ(ms.prescreen.no_race().size(), 12u);
}

/// Public-API fact dump: pruning verdict, access counters, per-object
/// escape/lock classification, and the no_race set in module order. The
/// committed goldens under tests/golden/prescreen_facts/ were generated
/// from the pre-LockFacts-refactor build with exactly this format — the
/// diff proves the refactor moved the lockset machinery without changing
/// one fact.
std::string dump_facts(const ir::Module& module, const PointsTo& pt,
                       const Prescreen& pre) {
  std::string out;
  if (pre.pruning_enabled()) {
    out += "pruning=enabled\n";
  } else {
    out += "pruning=disabled reason=" + pre.disable_reason() + "\n";
  }
  out += "considered=" + std::to_string(pre.considered_accesses()) +
         " wild=" + std::to_string(pre.wild_accesses()) + "\n";
  const auto& objects = pt.objects();
  for (PointsTo::ObjectId id = 0; id < objects.size(); ++id) {
    const auto& obj = objects[id];
    const char* kind = "?";
    switch (obj.kind) {
      case ObjectKind::kGlobal: kind = "global"; break;
      case ObjectKind::kStack: kind = "stack"; break;
      case ObjectKind::kHeap: kind = "heap"; break;
      case ObjectKind::kFunction: kind = "function"; break;
    }
    out += "obj " + std::to_string(id) + " kind=" + kind +
           " site=" + obj.site->name() +
           " escapes=" + (pre.object_escapes(id) ? "1" : "0") +
           " locked=" + (pre.object_consistently_locked(id) ? "1" : "0") +
           "\n";
  }
  for (const auto& fn : module.functions()) {
    for (const auto& bb : fn->blocks()) {
      const auto& instrs = bb->instructions();
      for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (pre.no_race().count(instrs[i].get()) == 0) continue;
        out += "no_race " + fn->name() + " " + bb->label() + "#" +
               std::to_string(i) + " " +
               std::string(ir::opcode_name(instrs[i]->opcode())) + " " +
               instrs[i]->loc().to_string() + "\n";
      }
    }
  }
  return out;
}

TEST(PrescreenTest, GoldenFactsMatchCommittedSnapshot) {
  const std::filesystem::path golden_dir =
      std::filesystem::path(OWL_GOLDEN_DIR) / "prescreen_facts";
  std::size_t compared = 0;
  for (const auto& path : example_files()) {
    const std::filesystem::path golden =
        golden_dir / (path.stem().string() + ".txt");
    if (!std::filesystem::exists(golden)) continue;  // example added later
    std::ifstream in(golden);
    ASSERT_TRUE(in.good()) << "cannot open " << golden;
    std::ostringstream expected;
    expected << in.rdbuf();

    auto m = load_example(path);
    const ModuleStatic ms(*m);
    EXPECT_EQ(dump_facts(*m, ms.points_to, ms.prescreen), expected.str())
        << "static facts drifted for " << path.filename();
    ++compared;
  }
  EXPECT_GE(compared, 10u) << "golden sweep lost its example coverage";
}

TEST(PrescreenTest, FactsIdenticalAcrossConstructionPaths) {
  // The prescreen can build its own LockFacts (3-arg ctor) or borrow a
  // caller-owned instance (4-arg ctor, what ModuleStatic does so the
  // checker suite shares the facts). Both paths must produce identical
  // verdicts, and the facts serialization must be rebuild-deterministic.
  for (const auto& path : example_files()) {
    auto m = load_example(path);
    const ModuleStatic ms(*m);
    const Prescreen standalone(*m, ms.points_to, ms.resolved_calls);
    const LockFacts facts(*m, ms.points_to, ms.resolved_calls);
    const Prescreen borrowed(*m, ms.points_to, ms.resolved_calls, facts);

    const std::string via_static = dump_facts(*m, ms.points_to, ms.prescreen);
    EXPECT_EQ(dump_facts(*m, ms.points_to, standalone), via_static)
        << path.filename();
    EXPECT_EQ(dump_facts(*m, ms.points_to, borrowed), via_static)
        << path.filename();

    const LockFacts rebuilt(*m, ms.points_to, ms.resolved_calls);
    EXPECT_EQ(facts.serialize(), rebuilt.serialize()) << path.filename();
    EXPECT_EQ(facts.serialize(), ms.lock_facts.serialize())
        << path.filename();
  }
}

core::PipelineTarget target_for(const std::shared_ptr<ir::Module>& m) {
  core::PipelineTarget t;
  t.name = m->name();
  t.module = m.get();
  t.factory = [m] {
    auto machine =
        std::make_unique<interp::Machine>(*m, interp::MachineOptions{});
    machine->start(m->find_function("main"));
    return machine;
  };
  return t;
}

/// Everything behavioral about a pipeline sweep: per-target stage counts,
/// canonical report dumps, exploit/attack tallies, and the behavioral
/// metrics snapshot (advisory counters excluded by design).
std::string behavior_fingerprint(const std::vector<core::PipelineResult>& rs) {
  std::ostringstream out;
  for (const core::PipelineResult& r : rs) {
    out << r.target_name << '\n'
        << r.counts.serialize() << '\n'
        << r.store.canonical_dump() << "exploits=" << r.exploits.size()
        << " attacks=" << r.attacks.size()
        << " confirmed=" << r.confirmed_attacks() << '\n';
  }
  out << support::metrics().serialize();
  return out.str();
}

TEST(PrescreenTest, PipelineBehaviorIsIdenticalAcrossModesAndJobs) {
  const std::vector<std::filesystem::path> files = example_files();
  std::vector<std::shared_ptr<ir::Module>> modules;
  for (const auto& path : files) modules.push_back(load_example(path));

  for (const unsigned jobs : {1u, 4u}) {
    std::string baseline;
    for (const race::PrescreenMode mode :
         {race::PrescreenMode::kOff, race::PrescreenMode::kOn,
          race::PrescreenMode::kAudit}) {
      support::metrics().clear_for_test();
      core::PipelineOptions options;
      options.jobs = jobs;
      options.prescreen = mode;
      const core::Pipeline pipeline(options);
      std::vector<core::PipelineTarget> targets;
      for (const auto& m : modules) targets.push_back(target_for(m));
      const std::vector<core::PipelineResult> results =
          pipeline.run_many(targets);

      const std::string fingerprint = behavior_fingerprint(results);
      if (mode == race::PrescreenMode::kOff) {
        baseline = fingerprint;
      } else {
        EXPECT_EQ(fingerprint, baseline)
            << "prescreen mode " << race::prescreen_mode_name(mode)
            << " changed behavior at jobs=" << jobs;
      }
      if (mode == race::PrescreenMode::kOn) {
        EXPECT_GT(
            support::metrics().advisory("prescreen.pruned_accesses").value(),
            0u)
            << "expected threadlocal_noise to produce pruned accesses";
      }
      if (mode == race::PrescreenMode::kAudit) {
        EXPECT_EQ(
            support::metrics().advisory("prescreen.audit_violations").value(),
            0u)
            << "audit observed a pruned-but-raced access at jobs=" << jobs;
      }
    }
  }
  support::metrics().clear_for_test();
}

}  // namespace
}  // namespace owl::analysis
