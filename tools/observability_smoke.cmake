# Smoke-test owl_cli's observability flags (driven by ctest; see
# tools/CMakeLists.txt). Runs one audit with --trace-out/--manifest/
# --metrics-out and hands the artifacts plus the captured stdout to
# scripts/check_observability.py for validation.
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${OWL_CLI}"
          "${EXAMPLES_DIR}/toctou.mir" "${EXAMPLES_DIR}/lost_update.mir"
          --jobs 1 --print-reports
          --trace-out "${WORK_DIR}/trace.json"
          --manifest "${WORK_DIR}/manifest.json"
          --metrics-out "${WORK_DIR}/metrics.txt"
  OUTPUT_FILE "${WORK_DIR}/stdout.txt"
  RESULT_VARIABLE cli_status)
if(NOT cli_status EQUAL 0)
  message(FATAL_ERROR "owl_cli failed with status ${cli_status}")
endif()

find_package(Python3 COMPONENTS Interpreter REQUIRED)
execute_process(
  COMMAND "${Python3_EXECUTABLE}" "${CHECK_SCRIPT}"
          "${WORK_DIR}/trace.json" "${WORK_DIR}/manifest.json"
          "${WORK_DIR}/metrics.txt" "${WORK_DIR}/stdout.txt"
  RESULT_VARIABLE check_status)
if(NOT check_status EQUAL 0)
  message(FATAL_ERROR "observability check failed with status ${check_status}")
endif()
