// owl_served — the OWL pipeline as a resilient long-running service.
//
// Usage:
//   owl_served --socket PATH [options]
//
// Accepts analysis requests over a Unix-domain socket (newline-delimited
// JSON; see src/serve/protocol.hpp) and answers with responses that are
// byte-identical to one-shot `owl_cli` for the same module and options —
// the property scripts/serve_check.py proves differentially.
//
// Options:
//   --socket PATH          Unix-domain socket to listen on (required)
//   --queue-depth N        admission capacity: queued + executing requests
//                          (default: 32); beyond it requests shed with a
//                          structured "queue_full" rejection
//   --max-inflight N       per-client in-flight cap (default: 8); one
//                          chatty client cannot monopolize the queue
//   --cache-dir DIR        content-addressed result cache (default: off);
//                          keyed by (module sha, options sha), entries are
//                          integrity-verified on read and corrupt ones are
//                          evicted, never served
//   --cache-max-entries N  cap on cached entries (default: 0 = unlimited);
//                          a store past the cap unlinks the least-recently-
//                          used entries, and an evicted key simply
//                          recomputes on its next request
//   --journal FILE         append-only request journal (default: off);
//                          accepted-but-unsettled requests survive kill -9
//                          and are replayed into the cache on restart
//   --retry-after-ms N     retry hint echoed in rejections (default: 100)
//   --inject-fault SPEC    deterministic fault injection, repeatable.
//                          SPEC = stage:kind[:after]; service phases
//                          (admit|enqueue|cache-read|cache-write|respond)
//                          fault the request lifecycle, pipeline stages
//                          (detect|annotate|...) fault every analysis
//   --fault-seed S         seed for the fault injectors (default: 1047)
//
// Lifecycle: on start the journal is recovered (stranded requests are
// re-executed into the cache), then the daemon prints
// "owl_served: listening on PATH" and serves until SIGTERM/SIGINT or a
// "shutdown" op — then it stops accepting, sheds new work, drains every
// admitted request to a delivered response, and exits 0.
#include <csignal>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "serve/server.hpp"
#include "serve/service_core.hpp"
#include "support/strings.hpp"

using namespace owl;

namespace {

struct ServedOptions {
  std::string socket_path;
  std::string cache_dir;
  std::size_t cache_max_entries = 0;
  std::string journal_path;
  std::size_t queue_depth = 32;
  std::size_t max_inflight = 8;
  unsigned retry_after_ms = 100;
  std::uint64_t fault_seed = 0x0417;
  std::vector<support::FaultPlan> fault_plans;
};

void usage() {
  std::fprintf(stderr,
               "usage: owl_served --socket PATH\n"
               "       [--queue-depth N] [--max-inflight N]\n"
               "       [--cache-dir DIR] [--cache-max-entries N]\n"
               "       [--journal FILE]\n"
               "       [--retry-after-ms N] [--fault-seed S]\n"
               "       [--inject-fault stage:kind[:after]]\n");
}

bool parse_args(int argc, char** argv, ServedOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.socket_path = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.cache_dir = v;
    } else if (arg == "--cache-max-entries") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n) || n < 0) return false;
      options.cache_max_entries = static_cast<std::size_t>(n);
    } else if (arg == "--journal") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.journal_path = v;
    } else if (arg == "--queue-depth") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n) || n <= 0) return false;
      options.queue_depth = static_cast<std::size_t>(n);
    } else if (arg == "--max-inflight") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n) || n <= 0) return false;
      options.max_inflight = static_cast<std::size_t>(n);
    } else if (arg == "--retry-after-ms") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n) || n < 0) return false;
      options.retry_after_ms = static_cast<unsigned>(n);
    } else if (arg == "--fault-seed") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n)) return false;
      options.fault_seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--inject-fault") {
      const char* v = next();
      support::FaultPlan plan;
      if (v == nullptr || !support::parse_fault_plan(v, plan)) return false;
      options.fault_plans.push_back(std::move(plan));
    } else {
      return false;
    }
  }
  return !options.socket_path.empty();
}

int g_signal_pipe_write = -1;

void on_terminate_signal(int) {
  if (g_signal_pipe_write >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(g_signal_pipe_write, &byte, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServedOptions options;
  if (!parse_args(argc, argv, options)) {
    usage();
    return 1;
  }

  // Self-pipe: SIGTERM/SIGINT become one readable byte the accept loop
  // polls, so the drain runs on a normal thread, not in a handler.
  int signal_pipe[2] = {-1, -1};
  if (::pipe(signal_pipe) != 0) {
    std::fprintf(stderr, "owl_served: pipe(): %s\n", std::strerror(errno));
    return 1;
  }
  g_signal_pipe_write = signal_pipe[1];
  struct sigaction action {};
  action.sa_handler = on_terminate_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  // Split the fault plans between the two injectors: service phases probe
  // the request lifecycle, pipeline stages ride into every Executor::run.
  support::FaultInjector service_faults(options.fault_seed);
  support::FaultInjector pipeline_faults(options.fault_seed);
  for (const support::FaultPlan& plan : options.fault_plans) {
    if (support::is_service_phase(plan.stage)) {
      service_faults.add_plan(plan);
    } else {
      pipeline_faults.add_plan(plan);
    }
  }

  serve::ServiceCore::Config config;
  config.cache_dir = options.cache_dir;
  config.cache_max_entries = options.cache_max_entries;
  config.journal_path = options.journal_path;
  config.queue_depth = options.queue_depth;
  config.max_inflight_per_client = options.max_inflight;
  config.retry_after_ms = options.retry_after_ms;
  if (!service_faults.empty()) config.service_faults = &service_faults;
  if (!pipeline_faults.empty()) config.pipeline_faults = &pipeline_faults;

  serve::ServiceCore core(config);
  const std::size_t replayed = core.recover_journal();
  if (replayed != 0) {
    std::fprintf(stderr, "owl_served: replayed %zu journal entr%s\n",
                 replayed, replayed == 1 ? "y" : "ies");
  }
  core.start();

  serve::Server server(core, options.socket_path);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "owl_served: %s\n", error.c_str());
    return 1;
  }
  // The readiness line clients wait for before connecting.
  std::printf("owl_served: listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);

  const int status = server.run(signal_pipe[0]);
  ::close(signal_pipe[0]);
  ::close(signal_pipe[1]);
  std::fprintf(stderr, "owl_served: drained, exiting\n");
  return status;
}
