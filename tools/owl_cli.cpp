// owl_cli — audit textual MiniIR programs with the OWL pipeline.
//
// Usage:
//   owl_cli <program.mir> [more.mir ...] [options]
//
// Several programs run as one multi-target pipeline sweep on --jobs
// workers; results print in input order and are byte-identical for any
// --jobs value (each target's schedules derive from its own seed stream).
//
// Options:
//   --entry <name>         entry function spawning the threads (default: main)
//   --jobs N               worker threads: targets fan out across N workers;
//                          with one program, N>1 instead shards the race
//                          verifier's schedule exploration (default: one
//                          worker per hardware thread; 1 = sequential)
//   --timings              print the per-stage wall-clock summary
//   --inputs a,b,c         workload input vector (default: empty)
//   --exploit-inputs a,b,c inputs for the vulnerability verifier re-runs
//                          (default: same as --inputs)
//   --detector tsan|ski|atomicity   front-end detector (default: tsan)
//   --detector-impl fast|reference  detection-substrate implementation:
//                          the paged-shadow/epoch fast path (default) or
//                          the original hash-map substrate; both emit
//                          byte-identical reports (CI diffs them)
//   --prescreen MODE       static may-race prescreen: off (default), on
//                          (skip shadow work for statically race-free
//                          accesses), or audit (full detection plus
//                          pruned-but-raced violation counting; a nonzero
//                          violation count exits 3). Also --prescreen=MODE
//   --predict MODE         sync-preserving race prediction (DESIGN.md §12):
//                          off (default), on (the race verifier replays only
//                          predicted-feasible candidates, plus predicted
//                          races the observed schedules never exhibited), or
//                          audit (exhaustive path plus verdict cross-check;
//                          a nonzero violation count exits 3). Also
//                          --predict=MODE
//   --vuln-flow MODE       memory-aware value flow for Algorithm 1
//                          (DESIGN.md §14): off (default; register-only
//                          walk), on (corruption follows store->load
//                          may-alias edges into functions the call-stack
//                          walk never reaches), or audit (on plus a
//                          cross-check of every runtime-observed
//                          store->load dependence against the static edge
//                          set; a nonzero violation count exits 3). Also
//                          --vuln-flow=MODE
//   --schedules N          detection schedules (default: 4)
//   --seed S               base schedule seed (default: 1)
//   --max-steps N          per-run instruction budget (default: 400000)
//   --no-adhoc             disable adhoc-sync annotation (stage 2)
//   --no-race-verifier     disable dynamic race verification (stage 3)
//   --no-vuln-verifier     disable dynamic attack verification (stage 5)
//   --stage-deadline S     wall-clock deadline (seconds, fractional ok) for
//                          every pipeline stage; a stage that exhausts it
//                          degrades instead of running unbounded
//   --retries N            retries for schedule-dependent stages (default: 2)
//   --inject-fault SPEC    deterministic fault injection, repeatable.
//                          SPEC = stage:kind[:after] with
//                          stage in detect|annotate|race-verify|vuln-analyze|
//                          vuln-verify|check|repair and kind in stall|
//                          livelock|throw|truncate; `after` skips the first
//                          N probes
//   --checkers SEL         concurrency checker suite (DESIGN.md §11):
//                          off (default), all, or a comma list of
//                          deadlock,atomicity,lock-mismatch,condvar.
//                          Findings print in the summary/details and are
//                          byte-identical for any --jobs value. Also
//                          --checkers=SEL
//   --repair DIR           automated race repair (DESIGN.md §13): for each
//                          target with confirmed races, synthesize a patch
//                          (lock reuse / relocation / fresh lock), verify
//                          it by re-running the pipeline on the patched
//                          module (race-free incl. --predict on, no new
//                          checker finding, identical workload output) and
//                          write DIR/<stem>_fixed.mir plus
//                          DIR/<stem>_repair.json (owl-repair-v1). The
//                          rendered summary/details are independent of DIR
//                          so serve responses stay byte-identical
//   --sarif-out FILE       write checker findings as one SARIF 2.1.0 log
//                          covering every target in input order; "-"
//                          appends the log to stdout (after the details,
//                          before the timings)
//   --whole-program        ablation: ignore runtime call stacks
//   --print-module         echo the parsed module before analyzing
//   --print-reports        print every surviving race report
//   --trace-out FILE       record per-stage spans and write a Chrome
//                          trace_event JSON (about:tracing / Perfetto)
//   --manifest FILE        write the run manifest (inputs, options, seeds,
//                          per-target StageCounts, metrics snapshot)
//   --metrics-out FILE     write the deterministic metrics snapshot
//                          (support/metrics.hpp serialize() text form)
//   -q / --quiet           summary only
//
// Exit status: 0 when the pipeline ran (regardless of findings), 1 on
// usage/parse errors, 2 when the module fails verification, 3 when
// --prescreen audit, --predict audit, or --vuln-flow audit observed
// soundness violations.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "checkers/sarif.hpp"
#include "core/pipeline.hpp"
#include "core/render.hpp"
#include "repair/engine.hpp"
#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "vuln/hint.hpp"

using namespace owl;

namespace {

struct CliOptions {
  std::vector<std::string> paths;
  std::string entry = "main";
  std::vector<interp::Word> inputs;
  std::vector<interp::Word> exploit_inputs;
  core::DetectorKind detector = core::DetectorKind::kTsan;
  race::DetectorImpl detector_impl = race::DetectorImpl::kFast;
  race::PrescreenMode prescreen = race::PrescreenMode::kOff;
  race::PredictMode predict = race::PredictMode::kOff;
  analysis::ValueFlowMode vuln_flow = analysis::ValueFlowMode::kOff;
  unsigned schedules = 4;
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 400'000;
  bool adhoc = true;
  bool race_verifier = true;
  bool vuln_verifier = true;
  bool whole_program = false;
  bool print_module = false;
  bool print_reports = false;
  bool quiet = false;
  double stage_deadline = 0.0;  ///< 0 = unlimited
  unsigned retries = 2;
  std::vector<support::FaultPlan> fault_plans;
  unsigned jobs = 0;  ///< 0 = hardware_concurrency
  bool timings = false;
  std::string trace_out;    ///< Chrome trace JSON path ("" = tracing off)
  std::string manifest_out; ///< run-manifest JSON path ("" = none)
  std::string metrics_out;  ///< metrics snapshot text path ("" = none)
  checkers::CheckerOptions checkers;  ///< all off by default
  std::string sarif_out;    ///< SARIF log path; "-" = stdout ("" = none)
  std::string repair_dir;   ///< --repair DIR; "" = repair stage off
};

void usage() {
  std::fprintf(stderr,
               "usage: owl_cli <program.mir> [more.mir ...]\n"
               "       [--entry main] [--inputs a,b,c] [--jobs N] [--timings]\n"
               "       [--detector tsan|ski|atomicity] [--schedules N]\n"
               "       [--detector-impl fast|reference]\n"
               "       [--prescreen off|on|audit] [--predict off|on|audit]\n"
               "       [--vuln-flow off|on|audit]\n"
               "       [--seed S] [--max-steps N] [--no-adhoc]\n"
               "       [--no-race-verifier] [--no-vuln-verifier]\n"
               "       [--whole-program] [--print-module] [--print-reports]\n"
               "       [--stage-deadline S] [--retries N]\n"
               "       [--inject-fault stage:kind[:after]] [-q|--quiet]\n"
               "       [--trace-out FILE] [--manifest FILE]\n"
               "       [--metrics-out FILE]\n"
               "       [--checkers off|all|LIST] [--sarif-out FILE|-]\n"
               "       [--repair DIR]\n");
}

/// Parses "stage:kind[:after]" into a FaultPlan via the shared parser
/// (support::parse_fault_plan — also used by owl_served); owl_cli rejects
/// the service phases, which only exist in the daemon's request lifecycle.
bool parse_fault_spec(const char* text, support::FaultPlan& plan) {
  return support::parse_fault_plan(text, plan) &&
         !support::is_service_phase(plan.stage);
}

bool parse_word_list(const char* text, std::vector<interp::Word>& out) {
  for (const std::string& part : split(text, ',')) {
    std::int64_t value = 0;
    if (!parse_int64(part, value)) return false;
    out.push_back(value);
  }
  return true;
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--entry") {
      const char* v = next();
      if (v == nullptr) return false;
      options.entry = v;
    } else if (arg == "--inputs") {
      const char* v = next();
      if (v == nullptr || !parse_word_list(v, options.inputs)) return false;
    } else if (arg == "--exploit-inputs") {
      const char* v = next();
      if (v == nullptr || !parse_word_list(v, options.exploit_inputs)) {
        return false;
      }
    } else if (arg == "--detector") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "tsan") == 0) {
        options.detector = core::DetectorKind::kTsan;
      } else if (std::strcmp(v, "ski") == 0) {
        options.detector = core::DetectorKind::kSki;
      } else if (std::strcmp(v, "atomicity") == 0) {
        options.detector = core::DetectorKind::kAtomicity;
      } else {
        return false;
      }
    } else if (arg == "--detector-impl") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "fast") == 0) {
        options.detector_impl = race::DetectorImpl::kFast;
      } else if (std::strcmp(v, "reference") == 0) {
        options.detector_impl = race::DetectorImpl::kReference;
      } else {
        return false;
      }
    } else if (arg == "--prescreen") {
      const char* v = next();
      if (v == nullptr || !race::parse_prescreen_mode(v, options.prescreen)) {
        return false;
      }
    } else if (arg.rfind("--prescreen=", 0) == 0) {
      if (!race::parse_prescreen_mode(arg.substr(12), options.prescreen)) {
        return false;
      }
    } else if (arg == "--predict") {
      const char* v = next();
      if (v == nullptr || !race::parse_predict_mode(v, options.predict)) {
        return false;
      }
    } else if (arg.rfind("--predict=", 0) == 0) {
      if (!race::parse_predict_mode(arg.substr(10), options.predict)) {
        return false;
      }
    } else if (arg == "--vuln-flow") {
      const char* v = next();
      if (v == nullptr ||
          !analysis::parse_value_flow_mode(v, options.vuln_flow)) {
        return false;
      }
    } else if (arg.rfind("--vuln-flow=", 0) == 0) {
      if (!analysis::parse_value_flow_mode(arg.substr(12),
                                           options.vuln_flow)) {
        return false;
      }
    } else if (arg == "--schedules") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n) || n <= 0) return false;
      options.schedules = static_cast<unsigned>(n);
    } else if (arg == "--seed") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n)) return false;
      options.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--max-steps") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n) || n <= 0) return false;
      options.max_steps = static_cast<std::uint64_t>(n);
    } else if (arg == "--stage-deadline") {
      const char* v = next();
      if (v == nullptr) return false;
      char* end = nullptr;
      options.stage_deadline = std::strtod(v, &end);
      if (end == v || *end != '\0' || options.stage_deadline <= 0) {
        return false;
      }
    } else if (arg == "--retries") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n) || n < 0) return false;
      options.retries = static_cast<unsigned>(n);
    } else if (arg == "--jobs") {
      const char* v = next();
      std::int64_t n = 0;
      if (v == nullptr || !parse_int64(v, n) || n < 0) return false;
      options.jobs = static_cast<unsigned>(n);
    } else if (arg == "--timings") {
      options.timings = true;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.trace_out = v;
    } else if (arg == "--manifest") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.manifest_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.metrics_out = v;
    } else if (arg == "--checkers") {
      const char* v = next();
      std::string error;
      if (v == nullptr ||
          !checkers::CheckerOptions::parse(v, options.checkers, error)) {
        if (!error.empty()) {
          std::fprintf(stderr, "owl_cli: %s\n", error.c_str());
        }
        return false;
      }
    } else if (arg.rfind("--checkers=", 0) == 0) {
      std::string error;
      if (!checkers::CheckerOptions::parse(arg.substr(11), options.checkers,
                                           error)) {
        if (!error.empty()) {
          std::fprintf(stderr, "owl_cli: %s\n", error.c_str());
        }
        return false;
      }
    } else if (arg == "--sarif-out") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.sarif_out = v;
    } else if (arg == "--repair") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.repair_dir = v;
    } else if (arg == "--inject-fault") {
      const char* v = next();
      support::FaultPlan plan;
      if (v == nullptr || !parse_fault_spec(v, plan)) return false;
      options.fault_plans.push_back(std::move(plan));
    } else if (arg == "--no-adhoc") {
      options.adhoc = false;
    } else if (arg == "--no-race-verifier") {
      options.race_verifier = false;
    } else if (arg == "--no-vuln-verifier") {
      options.vuln_verifier = false;
    } else if (arg == "--whole-program") {
      options.whole_program = true;
    } else if (arg == "--print-module") {
      options.print_module = true;
    } else if (arg == "--print-reports") {
      options.print_reports = true;
    } else if (arg == "-q" || arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      options.paths.emplace_back(arg);
    }
  }
  return !options.paths.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) {
    usage();
    return 1;
  }
  if (options.exploit_inputs.empty()) {
    options.exploit_inputs = options.inputs;
  }
  const unsigned jobs =
      options.jobs == 0 ? support::ThreadPool::default_jobs() : options.jobs;

  // Load and verify every module up front (fail fast, old exit codes),
  // then audit them as one multi-target sweep.
  std::vector<std::shared_ptr<ir::Module>> modules;
  std::vector<core::PipelineTarget> targets;
  // Per-target schedule seeds: one program keeps --seed exactly (replay
  // compatibility); several derive an independent SplitMix stream per
  // input position via the splittable Rng — a function of (--seed,
  // position) only, never of worker interleaving.
  Rng seed_stream(options.seed);
  for (const std::string& path : options.paths) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "owl_cli: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();

    auto parsed = ir::parse_module(text.str());
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "owl_cli: %s: %s\n", path.c_str(),
                   parsed.status().to_string().c_str());
      return 1;
    }
    std::shared_ptr<ir::Module> module = std::move(parsed).value();
    if (const Status status = ir::verify_module(*module); !status.is_ok()) {
      std::fprintf(stderr, "owl_cli: %s: %s\n", path.c_str(),
                   status.to_string().c_str());
      return 2;
    }
    const ir::Function* entry = module->find_function(options.entry);
    if (entry == nullptr || !entry->has_body()) {
      std::fprintf(stderr, "owl_cli: %s: no entry function @%s\n",
                   path.c_str(), options.entry.c_str());
      return 1;
    }
    if (options.print_module) {
      std::fputs(ir::print_module(*module).c_str(), stdout);
    }

    const auto factory_for = [&](std::vector<interp::Word> inputs) {
      return race::MachineFactory([module, entry, inputs,
                                   max_steps = options.max_steps] {
        interp::MachineOptions machine_options;
        machine_options.inputs = inputs;
        machine_options.max_steps = max_steps;
        auto machine =
            std::make_unique<interp::Machine>(*module, machine_options);
        machine->start(entry);
        return machine;
      });
    };

    core::PipelineTarget target;
    target.name = path;
    target.module = module.get();
    target.factory = factory_for(options.inputs);
    target.exploit_factory = factory_for(options.exploit_inputs);
    // Module-agnostic twin of factory_for: the repair engine verifies
    // candidate patches by running the pipeline on a cloned, rewritten
    // module, so the factory must resolve the entry by name on whatever
    // module it is handed (the shared_ptr keeps the clone alive for as
    // long as any machine is outstanding).
    target.factory_for_module =
        [entry_name = options.entry, inputs = options.inputs,
         max_steps =
             options.max_steps](std::shared_ptr<const ir::Module> patched) {
          return race::MachineFactory([patched, entry_name, inputs,
                                       max_steps] {
            interp::MachineOptions machine_options;
            machine_options.inputs = inputs;
            machine_options.max_steps = max_steps;
            auto machine =
                std::make_unique<interp::Machine>(*patched, machine_options);
            machine->start(patched->find_function(entry_name));
            return machine;
          });
        };
    target.detector = options.detector;
    target.detection_schedules = options.schedules;
    target.seed =
        options.paths.size() == 1 ? options.seed : seed_stream.split().next();
    modules.push_back(std::move(module));
    targets.push_back(std::move(target));
  }

  core::PipelineOptions pipeline_options;
  pipeline_options.enable_adhoc_annotation = options.adhoc;
  pipeline_options.enable_race_verifier = options.race_verifier;
  pipeline_options.enable_vuln_verifier = options.vuln_verifier;
  pipeline_options.analyzer_mode =
      options.whole_program ? vuln::VulnerabilityAnalyzer::Mode::kWholeProgram
                            : vuln::VulnerabilityAnalyzer::Mode::kDirected;
  if (options.stage_deadline > 0) {
    pipeline_options.stage_budgets =
        core::StageBudgets::uniform_wall(options.stage_deadline);
  }
  pipeline_options.retry.max_retries = options.retries;
  pipeline_options.detector_impl = options.detector_impl;
  pipeline_options.prescreen = options.prescreen;
  pipeline_options.predict = options.predict;
  pipeline_options.vuln_flow = options.vuln_flow;
  pipeline_options.checkers = options.checkers;
  pipeline_options.repair.enabled = !options.repair_dir.empty();
  pipeline_options.repair.out_dir = options.repair_dir;
  pipeline_options.jobs = jobs;
  pipeline_options.manifest_path = options.manifest_out;
  pipeline_options.manifest_tool = "owl_cli";
  StageTimings stage_timings;
  if (options.timings) pipeline_options.stage_timings = &stage_timings;
  support::FaultInjector injector(options.seed);
  for (const support::FaultPlan& plan : options.fault_plans) {
    injector.add_plan(plan);
  }
  if (!injector.empty()) pipeline_options.fault_injector = &injector;
  if (!options.trace_out.empty()) {
    support::TraceCollector::instance().set_enabled(true);
  }

  // Every invocation goes through run_many — the single entry point that
  // emits the run manifest. With one target, --jobs buys wall-clock through
  // the race verifier's schedule-exploration sharding instead of the
  // target fan-out (run_many forwards the pool only when jobs == 1).
  std::unique_ptr<support::ThreadPool> pool;
  if (targets.size() == 1) {
    pipeline_options.jobs = 1;
    if (jobs > 1) {
      pool = std::make_unique<support::ThreadPool>(jobs);
      pipeline_options.verifier_pool = pool.get();
    }
  }
  std::vector<core::PipelineResult> results =
      core::Pipeline(pipeline_options).run_many(targets);

  // Rendering is shared with the serve layer (core/render.hpp) so
  // owl_served responses stay byte-identical to this output.
  for (const core::PipelineResult& result : results) {
    std::fputs(core::render_cli_summary(result).c_str(), stdout);
  }
  for (const core::PipelineResult& result : results) {
    if (options.quiet) break;
    std::fputs(
        core::render_cli_details(result, options.print_reports).c_str(),
        stdout);
  }
  int status = 0;
  if (!options.repair_dir.empty()) {
    // File emission is CLI-only (owl_served never writes): the rendered
    // summary/details above carry everything path-independent, the repair
    // artifacts land here. Write failures warn and fail the run like the
    // trace/metrics sinks below.
    std::error_code ec;
    std::filesystem::create_directories(options.repair_dir, ec);
    for (const core::PipelineResult& result : results) {
      if (!result.repair_ran) continue;
      const std::string fixed_name =
          repair::fixed_module_name(result.target_name);
      const std::string stem =
          fixed_name.substr(0, fixed_name.size() - std::strlen("_fixed.mir"));
      const std::string report_path =
          options.repair_dir + "/" + stem + "_repair.json";
      std::ofstream report_out(report_path, std::ios::trunc);
      report_out << repair::render_repair_json(result.repair,
                                               result.target_name);
      report_out.close();
      if (!report_out) {
        std::fprintf(stderr, "owl_cli: cannot write repair report to %s\n",
                     report_path.c_str());
        status = 1;
      }
      if (result.repair.status == "repaired" &&
          !result.repair.patched_text.empty()) {
        const std::string fixed_path =
            options.repair_dir + "/" + fixed_name;
        std::ofstream fixed_out(fixed_path, std::ios::trunc);
        fixed_out << result.repair.patched_text;
        fixed_out.close();
        if (!fixed_out) {
          std::fprintf(stderr, "owl_cli: cannot write fixed module to %s\n",
                       fixed_path.c_str());
          status = 1;
        }
      }
    }
  }
  if (!options.sarif_out.empty()) {
    std::vector<checkers::SarifTarget> sarif_targets;
    sarif_targets.reserve(results.size());
    for (const core::PipelineResult& result : results) {
      sarif_targets.push_back(
          checkers::SarifTarget{result.target_name, &result.checker_findings});
    }
    const std::string sarif = checkers::render_sarif(sarif_targets);
    if (options.sarif_out == "-") {
      std::fputs(sarif.c_str(), stdout);
    } else {
      std::ofstream out(options.sarif_out, std::ios::trunc);
      out << sarif;
      if (!out) {
        std::fprintf(stderr, "owl_cli: cannot write SARIF to %s\n",
                     options.sarif_out.c_str());
        status = 1;
      }
    }
  }
  if (options.timings) {
    std::printf("\n--- per-stage timings (jobs=%u) ---\n", jobs);
    std::fputs(stage_timings.summary().c_str(), stdout);
  }
  if (!options.trace_out.empty() &&
      !support::TraceCollector::instance().write_chrome_trace(
          options.trace_out)) {
    std::fprintf(stderr, "owl_cli: cannot write trace to %s\n",
                 options.trace_out.c_str());
    status = 1;
  }
  if (!options.metrics_out.empty()) {
    std::ofstream out(options.metrics_out, std::ios::trunc);
    out << support::metrics().serialize();
    if (!out) {
      std::fprintf(stderr, "owl_cli: cannot write metrics to %s\n",
                   options.metrics_out.c_str());
      status = 1;
    }
  }
  if (options.prescreen == race::PrescreenMode::kAudit) {
    const std::uint64_t violations =
        support::metrics().advisory("prescreen.audit_violations").value();
    if (violations != 0) {
      std::fprintf(stderr,
                   "owl_cli: prescreen audit: %llu pruned-but-raced "
                   "access(es) falsify the static no-race verdict\n",
                   static_cast<unsigned long long>(violations));
      status = 3;
    }
  }
  if (options.predict == race::PredictMode::kAudit) {
    const std::uint64_t violations =
        support::metrics().advisory("predict.audit_violations").value();
    if (violations != 0) {
      std::fprintf(stderr,
                   "owl_cli: predict audit: %llu verified race(s) the "
                   "SP-closure wrongly called infeasible\n",
                   static_cast<unsigned long long>(violations));
      status = 3;
    }
  }
  if (options.vuln_flow == analysis::ValueFlowMode::kAudit) {
    const std::uint64_t violations =
        support::metrics().advisory("vulnflow.audit_violations").value();
    if (violations != 0) {
      std::fprintf(stderr,
                   "owl_cli: vuln-flow audit: %llu runtime store->load "
                   "dependence(s) missing from the static value-flow "
                   "graph\n",
                   static_cast<unsigned long long>(violations));
      status = 3;
    }
  }
  return status;
}
