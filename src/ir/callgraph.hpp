// Static call graph over direct calls and thread-create edges.
//
// Used by the verifier (recursion diagnostics), the noise/LoC statistics,
// and Algorithm 1's scalability accounting (functions reachable from a bug
// call stack vs the whole module).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/module.hpp"

namespace owl::ir {

class CallGraph {
 public:
  explicit CallGraph(const Module& module);

  /// Direct callees (kCall) plus thread entries (kThreadCreate).
  const std::unordered_set<Function*>& callees(const Function* f) const;
  const std::unordered_set<Function*>& callers(const Function* f) const;

  /// All call sites targeting `f`.
  const std::vector<Instruction*>& call_sites(const Function* f) const;

  /// Functions reachable from `roots` following callee edges (inclusive).
  std::unordered_set<Function*> reachable_from(
      const std::vector<Function*>& roots) const;

  /// True if `f` can (transitively) reach itself.
  bool is_recursive(const Function* f) const;

 private:
  std::unordered_map<const Function*, std::unordered_set<Function*>> callees_;
  std::unordered_map<const Function*, std::unordered_set<Function*>> callers_;
  std::unordered_map<const Function*, std::vector<Instruction*>> sites_;
  std::unordered_set<Function*> empty_set_;
  std::vector<Instruction*> empty_sites_;
};

}  // namespace owl::ir
