// Static call graph over direct calls, thread-create edges and — when the
// caller supplies points-to resolution results — indirect calls.
//
// Used by the verifier (recursion diagnostics), the noise/LoC statistics,
// and Algorithm 1's scalability accounting (functions reachable from a bug
// call stack vs the whole module).
//
// The one-argument constructor sees only kCall/kThreadCreate edges; kCallPtr
// sites are invisible to it (the historical blind spot). The two-argument
// constructor additionally takes an IndirectCallMap — per-callptr resolved
// targets, produced by analysis::PointsTo — and folds those edges into
// callees/callers/call_sites, so reachable_from and is_recursive see through
// function-pointer dispatch. Per-site provenance stays queryable via
// indirect_callees().
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/module.hpp"

namespace owl::ir {

/// Resolved targets of each kCallPtr site, in module declaration order.
/// Produced by analysis::PointsTo; typedef'd here so ir/ and vuln/ consumers
/// need no dependency on the analysis layer.
using IndirectCallMap =
    std::unordered_map<const Instruction*, std::vector<Function*>>;

class CallGraph {
 public:
  explicit CallGraph(const Module& module);
  /// Direct edges plus the supplied resolved indirect-call edges.
  CallGraph(const Module& module, const IndirectCallMap& indirect);

  /// Direct callees (kCall) plus thread entries (kThreadCreate), plus
  /// resolved indirect callees when built with an IndirectCallMap.
  const std::unordered_set<Function*>& callees(const Function* f) const;
  const std::unordered_set<Function*>& callers(const Function* f) const;

  /// All call sites targeting `f`.
  const std::vector<Instruction*>& call_sites(const Function* f) const;

  /// Resolution provenance: functions `site` (a kCallPtr) was resolved to,
  /// empty for direct calls or unresolved sites.
  const std::vector<Function*>& indirect_callees(const Instruction* site) const;
  /// Total resolved indirect edges folded into this graph.
  std::size_t indirect_edge_count() const noexcept {
    return indirect_edge_count_;
  }

  /// Functions reachable from `roots` following callee edges (inclusive).
  std::unordered_set<Function*> reachable_from(
      const std::vector<Function*>& roots) const;

  /// True if `f` can (transitively) reach itself.
  bool is_recursive(const Function* f) const;

 private:
  std::unordered_map<const Function*, std::unordered_set<Function*>> callees_;
  std::unordered_map<const Function*, std::unordered_set<Function*>> callers_;
  std::unordered_map<const Function*, std::vector<Instruction*>> sites_;
  std::unordered_map<const Instruction*, std::vector<Function*>> indirect_;
  std::size_t indirect_edge_count_ = 0;
  std::unordered_set<Function*> empty_set_;
  std::vector<Instruction*> empty_sites_;
  std::vector<Function*> empty_functions_;
};

}  // namespace owl::ir
