#include "ir/verifier.hpp"

#include <unordered_set>

#include "ir/cfg.hpp"
#include "ir/printer.hpp"

namespace owl::ir {
namespace {

class Verifier {
 public:
  explicit Verifier(const Module& module) : module_(&module) {}

  std::vector<Status> run() {
    for (const auto& f : module_->functions()) {
      if (f->has_body()) check_function(*f);
    }
    return std::move(errors_);
  }

 private:
  void fail(const Function& f, const Instruction* instr, std::string what) {
    std::string message = "in @" + f.name();
    if (instr != nullptr) {
      message += " at '" + print_instruction(*instr) + "'";
    }
    message += ": " + what;
    errors_.push_back(verify_error(std::move(message)));
  }

  void check_function(const Function& f) {
    std::unordered_set<const BasicBlock*> own_blocks;
    std::unordered_set<const Value*> own_values;
    for (const auto& arg : f.arguments()) own_values.insert(arg.get());
    for (const auto& bb : f.blocks()) {
      own_blocks.insert(bb.get());
      for (const auto& instr : bb->instructions()) {
        own_values.insert(instr.get());
      }
    }

    const Cfg cfg(f);

    for (const auto& bb : f.blocks()) {
      if (bb->empty()) {
        fail(f, nullptr, "block '" + bb->label() + "' is empty");
        continue;
      }
      // Exactly one terminator, and only in last position.
      for (std::size_t i = 0; i < bb->size(); ++i) {
        const Instruction* instr = bb->instructions()[i].get();
        const bool last = (i + 1 == bb->size());
        if (instr->is_terminator() != last) {
          fail(f, instr,
               last ? "block '" + bb->label() + "' does not end in a terminator"
                    : "terminator in the middle of block '" + bb->label() +
                          "'");
          break;
        }
      }

      bool seen_non_phi = false;
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() == Opcode::kPhi) {
          if (seen_non_phi) {
            fail(f, instr.get(), "phi after non-phi instruction");
          }
          check_phi(f, cfg, *instr, own_values);
        } else {
          seen_non_phi = true;
        }
        check_instruction(f, *instr, own_blocks, own_values);
      }
    }
  }

  void check_phi(const Function& f, const Cfg& cfg, const Instruction& phi,
                 const std::unordered_set<const Value*>& own_values) {
    const auto& preds = cfg.predecessors(phi.parent());
    if (phi.phi_values().empty()) {
      fail(f, &phi, "phi with no incoming edges");
      return;
    }
    for (std::size_t i = 0; i < phi.phi_values().size(); ++i) {
      const BasicBlock* from = phi.phi_blocks()[i];
      bool is_pred = false;
      for (const BasicBlock* p : preds) {
        if (p == from) {
          is_pred = true;
          break;
        }
      }
      if (!is_pred) {
        fail(f, &phi,
             "phi incoming block '" + from->label() + "' is not a predecessor");
      }
      const Value* v = phi.phi_values()[i];
      if (v->is_instruction() || v->kind() == ValueKind::kArgument) {
        if (!own_values.contains(v)) {
          fail(f, &phi, "phi incoming value from another function");
        }
      }
    }
  }

  void check_instruction(const Function& f, const Instruction& instr,
                         const std::unordered_set<const BasicBlock*>& blocks,
                         const std::unordered_set<const Value*>& own_values) {
    for (const Value* op : instr.operands()) {
      if (op == nullptr) {
        fail(f, &instr, "null operand");
        continue;
      }
      if ((op->is_instruction() || op->kind() == ValueKind::kArgument) &&
          !own_values.contains(op)) {
        fail(f, &instr, "operand defined in another function");
      }
    }
    for (const BasicBlock* target : instr.targets()) {
      if (!blocks.contains(target)) {
        fail(f, &instr, "branch target in another function");
      }
    }

    switch (instr.opcode()) {
      case Opcode::kBr:
        if (instr.operand_count() != 1) {
          fail(f, &instr, "br needs exactly one condition");
        } else if (!instr.operand(0)->type().is_integer()) {
          fail(f, &instr, "br condition must be integer-typed");
        }
        if (instr.targets().size() != 2) {
          fail(f, &instr, "br needs two targets");
        }
        break;
      case Opcode::kJmp:
        if (instr.targets().size() != 1) fail(f, &instr, "jmp needs one target");
        break;
      case Opcode::kCall: {
        const Function* callee = instr.callee();
        if (callee == nullptr) {
          fail(f, &instr, "call without callee");
        } else if (instr.operand_count() != callee->arguments().size()) {
          fail(f, &instr,
               "call arity mismatch: @" + callee->name() + " expects " +
                   std::to_string(callee->arguments().size()) + " got " +
                   std::to_string(instr.operand_count()));
        }
        break;
      }
      case Opcode::kThreadCreate: {
        const Function* entry = instr.callee();
        if (entry == nullptr) {
          fail(f, &instr, "thread_create without entry function");
        } else if (entry->arguments().size() > 1) {
          fail(f, &instr, "thread entry takes at most one argument");
        }
        break;
      }
      case Opcode::kLoad:
      case Opcode::kFree:
      case Opcode::kLock:
      case Opcode::kUnlock:
      case Opcode::kHbRelease:
      case Opcode::kHbAcquire:
        check_pointer_operand(f, instr, 0);
        break;
      case Opcode::kStore:
        check_pointer_operand(f, instr, 1);
        break;
      case Opcode::kGep:
      case Opcode::kAtomicRMWAdd:
      case Opcode::kStrCpy:
      case Opcode::kMemCopy:
        check_pointer_operand(f, instr, 0);
        if (instr.opcode() == Opcode::kStrCpy ||
            instr.opcode() == Opcode::kMemCopy) {
          check_pointer_operand(f, instr, 1);
        }
        break;
      case Opcode::kRet: {
        const bool returns_value = instr.operand_count() == 1;
        if (f.return_type().is_void() && returns_value) {
          fail(f, &instr, "returning a value from a void function");
        }
        if (!f.return_type().is_void() && !returns_value) {
          fail(f, &instr, "missing return value");
        }
        break;
      }
      default:
        break;
    }
  }

  void check_pointer_operand(const Function& f, const Instruction& instr,
                             std::size_t index) {
    if (instr.operand_count() <= index) {
      fail(f, &instr, "missing pointer operand");
      return;
    }
    const Value* op = instr.operand(index);
    // Arguments may carry pointers through i64-typed parameters in terse
    // hand-written IR; only flag clearly wrong kinds.
    if (op->type().is_void() || op->type().is_i1()) {
      fail(f, &instr, "operand cannot be used as a pointer");
    }
  }

  const Module* module_;
  std::vector<Status> errors_;
};

}  // namespace

Status verify_module(const Module& module) {
  std::vector<Status> errors = Verifier(module).run();
  return errors.empty() ? Status::ok() : errors.front();
}

std::vector<Status> verify_module_all(const Module& module) {
  return Verifier(module).run();
}

}  // namespace owl::ir
