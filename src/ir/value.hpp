// MiniIR value hierarchy: everything an instruction can reference.
//
// Ownership model (CppCoreGuidelines R.20/R.23): the Module owns globals,
// functions and the constant pool; Functions own arguments and blocks;
// BasicBlocks own instructions. All cross-references (operands, callees,
// branch targets) are non-owning raw pointers whose lifetime is tied to the
// owning Module, which is immutable while analyses run.
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.hpp"

namespace owl::ir {

class Function;

enum class ValueKind {
  kConstant,
  kArgument,
  kInstruction,
  kGlobalVariable,
  kFunction,
};

/// Base of the value hierarchy. Values are identified by a module-unique id
/// (stable across printing/parsing round trips is NOT guaranteed; names are).
class Value {
 public:
  Value(ValueKind kind, Type type, std::string name)
      : kind_(kind), type_(type), name_(std::move(name)) {}
  virtual ~Value() = default;

  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind kind() const noexcept { return kind_; }
  Type type() const noexcept { return type_; }
  /// Retypes the value; only the parser uses this, to fix up a call's result
  /// type once the callee is known.
  void set_type(Type type) noexcept { type_ = type; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::uint64_t id() const noexcept { return id_; }
  void set_id(std::uint64_t id) noexcept { id_ = id; }

  bool is_constant() const noexcept { return kind_ == ValueKind::kConstant; }
  bool is_instruction() const noexcept {
    return kind_ == ValueKind::kInstruction;
  }

 private:
  ValueKind kind_;
  Type type_;
  std::string name_;
  std::uint64_t id_ = 0;
};

/// An integer or pointer literal. Uniqued per-module by (type, value).
class Constant final : public Value {
 public:
  Constant(Type type, std::int64_t value)
      : Value(ValueKind::kConstant, type, ""), value_(value) {}

  std::int64_t value() const noexcept { return value_; }

  /// True for the pointer literal 0 — the `null` the SSDB/uselib races store.
  bool is_null_pointer() const noexcept {
    return type().is_ptr() && value_ == 0;
  }

 private:
  std::int64_t value_;
};

/// A formal parameter of a Function.
class Argument final : public Value {
 public:
  Argument(Type type, std::string name, Function* parent, unsigned index)
      : Value(ValueKind::kArgument, type, std::move(name)),
        parent_(parent),
        index_(index) {}

  Function* parent() const noexcept { return parent_; }
  unsigned index() const noexcept { return index_; }

 private:
  Function* parent_;
  unsigned index_;
};

/// A named region of simulated shared memory, sized in 8-byte cells.
/// Globals are where the studied races live (dying, f_op, outcnt, busy, db).
class GlobalVariable final : public Value {
 public:
  GlobalVariable(std::string name, std::uint64_t cell_count,
                 std::int64_t initial_value)
      : Value(ValueKind::kGlobalVariable, Type::ptr(), std::move(name)),
        cell_count_(cell_count),
        initial_value_(initial_value) {}

  /// Number of 8-byte cells this global occupies.
  std::uint64_t cell_count() const noexcept { return cell_count_; }
  /// Every cell starts with this value.
  std::int64_t initial_value() const noexcept { return initial_value_; }

 private:
  std::uint64_t cell_count_;
  std::int64_t initial_value_;
};

}  // namespace owl::ir
