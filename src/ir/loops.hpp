// Natural-loop detection (back edges via dominance).
//
// The adhoc-synchronization detector (§5.1) needs exactly two loop queries:
// "is this racy read inside a loop?" and "does this branch break out of the
// loop containing the read?". LoopInfo answers both.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"

namespace owl::ir {

/// One natural loop: the header plus all blocks on paths from latch(es)
/// back to the header.
struct Loop {
  BasicBlock* header = nullptr;
  std::unordered_set<BasicBlock*> blocks;

  bool contains(const BasicBlock* bb) const {
    return blocks.contains(const_cast<BasicBlock*>(bb));
  }
};

class LoopInfo {
 public:
  /// Builds loop structure for `function`; uses its own Cfg/DominatorTree.
  explicit LoopInfo(const Function& function);

  const std::vector<Loop>& loops() const noexcept { return loops_; }

  /// The innermost (smallest) loop containing `bb`, or nullptr.
  const Loop* innermost_loop(const BasicBlock* bb) const;

  /// True if `instr`'s block lies inside any loop.
  bool in_loop(const Instruction* instr) const;

  /// True if `branch` (a kBr in some loop) has at least one target outside
  /// the innermost loop containing it — i.e. taking it can exit the loop.
  bool can_exit_loop(const Instruction* branch) const;

 private:
  std::vector<Loop> loops_;
};

}  // namespace owl::ir
