// MiniIR functions: a name, typed arguments, and an entry-first block list.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.hpp"
#include "ir/value.hpp"

namespace owl::ir {

class Module;

class Function final : public Value {
 public:
  /// `is_internal` mirrors Algorithm 1's f.isInternal(): internal functions
  /// have bodies OWL descends into; external ones are opaque boundaries
  /// (libc and friends in the paper's setting).
  Function(std::string name, Type return_type, Module* parent,
           bool is_internal = true)
      : Value(ValueKind::kFunction, Type::ptr(), std::move(name)),
        return_type_(return_type),
        parent_(parent),
        internal_(is_internal) {}

  Module* parent() const noexcept { return parent_; }
  Type return_type() const noexcept { return return_type_; }

  bool is_internal() const noexcept { return internal_; }
  void set_internal(bool internal) noexcept { internal_ = internal; }

  /// Declares a formal parameter; order of calls defines argument indices.
  Argument* add_argument(Type type, std::string name);
  const std::vector<std::unique_ptr<Argument>>& arguments() const noexcept {
    return args_;
  }
  Argument* argument(std::size_t i) const { return args_.at(i).get(); }

  /// Creates and appends a block; the first created block is the entry.
  BasicBlock* add_block(std::string label);
  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const noexcept {
    return blocks_;
  }
  BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  BasicBlock* find_block(std::string_view label) const noexcept;

  bool has_body() const noexcept { return !blocks_.empty(); }

  /// Total instruction count across all blocks (used for LoC-style stats).
  std::size_t instruction_count() const noexcept;

 private:
  Type return_type_;
  Module* parent_;
  bool internal_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

}  // namespace owl::ir
