// Textual MiniIR parser — inverse of ir/printer.hpp.
//
// Accepts the grammar documented in printer.hpp, with these liberties:
//  - ';' starts a comment anywhere on a line;
//  - blank lines are ignored;
//  - operand references may be forward (resolved at end of function), which
//    loops with phis require;
//  - bare integers are i64 constants, `null` is the ptr constant 0.
#pragma once

#include <memory>
#include <string_view>

#include "ir/module.hpp"
#include "support/status.hpp"

namespace owl::ir {

/// Parses a whole module. On failure the Status message includes the
/// 1-based source line of the offending text.
Result<std::unique_ptr<Module>> parse_module(std::string_view text);

}  // namespace owl::ir
