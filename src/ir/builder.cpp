#include "ir/builder.hpp"

#include <cassert>

namespace owl::ir {

Instruction* IRBuilder::emit(Opcode op, Type type, std::string name,
                             std::vector<Value*> operands) {
  assert(block_ != nullptr && "no insert point set");
  auto instr = std::make_unique<Instruction>(op, type, std::move(name));
  for (Value* v : operands) {
    assert(v != nullptr);
    instr->add_operand(v);
  }
  instr->set_loc(loc_);
  instr->set_id(module_->next_value_id());
  return block_->append(std::move(instr));
}

// --- arithmetic / logic ---

Instruction* IRBuilder::add(Value* a, Value* b, std::string name) {
  return emit(Opcode::kAdd, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::sub(Value* a, Value* b, std::string name) {
  return emit(Opcode::kSub, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::mul(Value* a, Value* b, std::string name) {
  return emit(Opcode::kMul, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::udiv(Value* a, Value* b, std::string name) {
  return emit(Opcode::kUDiv, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::sdiv(Value* a, Value* b, std::string name) {
  return emit(Opcode::kSDiv, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::and_(Value* a, Value* b, std::string name) {
  return emit(Opcode::kAnd, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::or_(Value* a, Value* b, std::string name) {
  return emit(Opcode::kOr, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::xor_(Value* a, Value* b, std::string name) {
  return emit(Opcode::kXor, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::shl(Value* a, Value* b, std::string name) {
  return emit(Opcode::kShl, Type::i64(), std::move(name), {a, b});
}
Instruction* IRBuilder::lshr(Value* a, Value* b, std::string name) {
  return emit(Opcode::kLShr, Type::i64(), std::move(name), {a, b});
}

Instruction* IRBuilder::icmp(CmpPredicate pred, Value* a, Value* b,
                             std::string name) {
  Instruction* i = emit(Opcode::kICmp, Type::i1(), std::move(name), {a, b});
  i->set_predicate(pred);
  return i;
}

// --- memory ---

Instruction* IRBuilder::alloca_cells(std::int64_t cells, std::string name) {
  assert(cells > 0);
  Instruction* i = emit(Opcode::kAlloca, Type::ptr(), std::move(name), {});
  i->set_imm(cells);
  return i;
}
Instruction* IRBuilder::malloc_cells(Value* cells, std::string name) {
  return emit(Opcode::kMalloc, Type::ptr(), std::move(name), {cells});
}
Instruction* IRBuilder::free_ptr(Value* ptr) {
  return emit(Opcode::kFree, Type::void_type(), "", {ptr});
}
Instruction* IRBuilder::load(Value* ptr, std::string name) {
  return emit(Opcode::kLoad, Type::i64(), std::move(name), {ptr});
}
Instruction* IRBuilder::store(Value* value, Value* ptr) {
  return emit(Opcode::kStore, Type::void_type(), "", {value, ptr});
}
Instruction* IRBuilder::gep(Value* base, Value* offset, std::string name) {
  return emit(Opcode::kGep, Type::ptr(), std::move(name), {base, offset});
}

// --- control flow ---

Instruction* IRBuilder::br(Value* cond, BasicBlock* then_bb,
                           BasicBlock* else_bb) {
  Instruction* i = emit(Opcode::kBr, Type::void_type(), "", {cond});
  i->add_target(then_bb);
  i->add_target(else_bb);
  return i;
}
Instruction* IRBuilder::jmp(BasicBlock* dest) {
  Instruction* i = emit(Opcode::kJmp, Type::void_type(), "", {});
  i->add_target(dest);
  return i;
}
Instruction* IRBuilder::phi(Type type, std::string name) {
  return emit(Opcode::kPhi, type, std::move(name), {});
}
Instruction* IRBuilder::call(Function* callee, std::vector<Value*> args,
                             std::string name) {
  assert(callee != nullptr);
  Instruction* i =
      emit(Opcode::kCall, callee->return_type(), std::move(name),
           std::move(args));
  i->set_callee(callee);
  return i;
}
Instruction* IRBuilder::callptr(Value* target, std::vector<Value*> args,
                                std::string name) {
  std::vector<Value*> operands{target};
  operands.insert(operands.end(), args.begin(), args.end());
  return emit(Opcode::kCallPtr, Type::i64(), std::move(name),
              std::move(operands));
}
Instruction* IRBuilder::ret(Value* value) {
  if (value == nullptr) {
    return emit(Opcode::kRet, Type::void_type(), "", {});
  }
  return emit(Opcode::kRet, Type::void_type(), "", {value});
}

// --- concurrency ---

Instruction* IRBuilder::lock(Value* mutex) {
  return emit(Opcode::kLock, Type::void_type(), "", {mutex});
}
Instruction* IRBuilder::unlock(Value* mutex) {
  return emit(Opcode::kUnlock, Type::void_type(), "", {mutex});
}
Instruction* IRBuilder::thread_create(Function* entry, Value* arg,
                                      std::string name) {
  assert(entry != nullptr);
  Instruction* i =
      emit(Opcode::kThreadCreate, Type::i64(), std::move(name), {arg});
  i->set_callee(entry);
  return i;
}
Instruction* IRBuilder::thread_join(Value* tid) {
  return emit(Opcode::kThreadJoin, Type::void_type(), "", {tid});
}
Instruction* IRBuilder::atomic_add(Value* ptr, Value* delta,
                                   std::string name) {
  return emit(Opcode::kAtomicRMWAdd, Type::i64(), std::move(name),
              {ptr, delta});
}
Instruction* IRBuilder::hb_release(Value* sync_ptr) {
  return emit(Opcode::kHbRelease, Type::void_type(), "", {sync_ptr});
}
Instruction* IRBuilder::hb_acquire(Value* sync_ptr) {
  return emit(Opcode::kHbAcquire, Type::void_type(), "", {sync_ptr});
}

// --- environment ---

Instruction* IRBuilder::input(Value* index, std::string name) {
  return emit(Opcode::kInput, Type::i64(), std::move(name), {index});
}
Instruction* IRBuilder::io_delay(Value* ticks) {
  return emit(Opcode::kIoDelay, Type::void_type(), "", {ticks});
}
Instruction* IRBuilder::yield() {
  return emit(Opcode::kYield, Type::void_type(), "", {});
}
Instruction* IRBuilder::print(Value* value) {
  return emit(Opcode::kPrint, Type::void_type(), "", {value});
}

// --- vulnerable-site intrinsics ---

Instruction* IRBuilder::strcpy_(Value* dst, Value* src) {
  return emit(Opcode::kStrCpy, Type::void_type(), "", {dst, src});
}
Instruction* IRBuilder::memcpy_(Value* dst, Value* src, Value* len) {
  return emit(Opcode::kMemCopy, Type::void_type(), "", {dst, src, len});
}
Instruction* IRBuilder::setuid_(Value* uid) {
  return emit(Opcode::kSetUid, Type::void_type(), "", {uid});
}
Instruction* IRBuilder::file_access(Value* path_id, std::string name) {
  return emit(Opcode::kFileAccess, Type::i64(), std::move(name), {path_id});
}
Instruction* IRBuilder::file_open(Value* path_id, std::string name) {
  return emit(Opcode::kFileOpen, Type::i64(), std::move(name), {path_id});
}
Instruction* IRBuilder::file_write(Value* fd, Value* payload, Value* len) {
  return emit(Opcode::kFileWrite, Type::void_type(), "", {fd, payload, len});
}
Instruction* IRBuilder::fork_(std::string name) {
  return emit(Opcode::kFork, Type::i64(), std::move(name), {});
}
Instruction* IRBuilder::eval_(Value* command_id) {
  return emit(Opcode::kEval, Type::void_type(), "", {command_id});
}

}  // namespace owl::ir
