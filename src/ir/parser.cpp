#include "ir/parser.hpp"

#include <cctype>
#include <unordered_map>
#include <vector>

#include "support/strings.hpp"

namespace owl::ir {
namespace {

/// Character-level cursor over one logical line.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    skip_ws();
    if (text_.substr(pos_, word.size()) == word) {
      const std::size_t after = pos_ + word.size();
      if (after == text_.size() ||
          !is_ident_char(text_[after])) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }

  /// Reads an identifier ([A-Za-z0-9_.$]+); empty string if none.
  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Reads a (possibly negative) integer; returns false if none.
  bool integer(std::int64_t& out) {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      pos_ = start;
      return false;
    }
    return parse_int64(text_.substr(start, pos_ - start), out);
  }

  std::string_view rest() {
    skip_ws();
    return text_.substr(pos_);
  }

 private:
  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// One unresolved local-value reference, patched at end of function.
struct PendingRef {
  Instruction* instr;
  std::size_t operand_index;  ///< SIZE_MAX => phi incoming value
  std::size_t phi_index;
  std::string name;
  std::size_t source_line;
};

class ModuleParser {
 public:
  explicit ModuleParser(std::string_view text) : lines_(split(text, '\n')) {}

  Result<std::unique_ptr<Module>> run() {
    module_ = std::make_unique<Module>("anonymous");
    // Pass 1: create function shells (name, params, return type) so calls
    // may reference functions defined later (mutual recursion).
    if (Status s = prescan_functions(); !s.is_ok()) return s;
    line_no_ = 0;
    while (line_no_ < lines_.size()) {
      std::string_view line = logical_line();
      if (line.empty()) {
        ++line_no_;
        continue;
      }
      Cursor cur(line);
      if (cur.consume_word("module")) {
        if (cur.ident().empty()) return err("module name expected");
        ++line_no_;  // name already consumed by the prescan
      } else if (cur.consume_word("global")) {
        if (Status s = parse_global(cur); !s.is_ok()) return s;
        ++line_no_;
      } else if (cur.consume_word("func")) {
        if (Status s = parse_function(cur); !s.is_ok()) return s;
      } else {
        return err("expected 'module', 'global' or 'func'");
      }
    }
    return std::move(module_);
  }

 private:
  /// Current line with comments stripped and whitespace trimmed.
  std::string_view logical_line() {
    std::string_view line = lines_[line_no_];
    if (const std::size_t comment = line.find(';');
        comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    return trim(line);
  }

  Status err(std::string message) const {
    return parse_error("line " + std::to_string(line_no_ + 1) + ": " +
                       std::move(message));
  }

  Status parse_global(Cursor& cur) {
    if (!cur.consume('@')) return err("'@' expected after 'global'");
    const std::string name = cur.ident();
    if (!is_identifier(name)) return err("global name expected");
    std::int64_t cells = 1;
    if (cur.consume('[')) {
      if (!cur.integer(cells) || cells <= 0) return err("cell count expected");
      if (!cur.consume(']')) return err("']' expected");
    }
    std::int64_t init = 0;
    if (cur.consume('=')) {
      if (!cur.integer(init)) return err("initial value expected");
    }
    if (!cur.at_end()) return err("trailing tokens after global");
    if (module_->find_global(name) != nullptr) {
      return err("duplicate global @" + name);
    }
    module_->add_global(name, static_cast<std::uint64_t>(cells), init);
    return Status::ok();
  }

  struct Param {
    Type type;
    std::string name;
  };
  struct Signature {
    std::string name;
    std::vector<Param> params;
    Type return_type = Type::void_type();
    bool external = false;
  };

  /// Parses "@name(type %p, ...) [-> type] [external]" from `cur`.
  Status parse_signature(Cursor& cur, Signature& sig) {
    if (!cur.consume('@')) return err("'@' expected after 'func'");
    sig.name = cur.ident();
    if (!is_identifier(sig.name)) return err("function name expected");
    if (!cur.consume('(')) return err("'(' expected");
    if (!cur.consume(')')) {
      while (true) {
        Type type;
        const std::string type_name = cur.ident();
        if (!parse_type(type_name, type)) return err("parameter type expected");
        if (!cur.consume('%')) return err("'%' expected before parameter name");
        const std::string param_name = cur.ident();
        if (!is_identifier(param_name)) return err("parameter name expected");
        sig.params.push_back({type, param_name});
        if (cur.consume(')')) break;
        if (!cur.consume(',')) return err("',' or ')' expected");
      }
    }
    if (cur.consume('-')) {
      if (!cur.consume('>')) return err("'->' expected");
      if (!parse_type(cur.ident(), sig.return_type)) {
        return err("return type expected");
      }
    }
    sig.external = cur.consume_word("external");
    return Status::ok();
  }

  /// Pass 1: pick up the module name and create all function shells so call
  /// operands can resolve forward references.
  Status prescan_functions() {
    for (line_no_ = 0; line_no_ < lines_.size(); ++line_no_) {
      Cursor name_cur(logical_line());
      if (name_cur.consume_word("module")) {
        const std::string name = name_cur.ident();
        if (!name.empty() && module_->functions().empty() &&
            module_->globals().empty()) {
          module_ = std::make_unique<Module>(name);
        }
        continue;
      }
      std::string_view line = logical_line();
      Cursor cur(line);
      if (!cur.consume_word("func")) continue;
      Signature sig;
      if (Status s = parse_signature(cur, sig); !s.is_ok()) return s;
      if (module_->find_function(sig.name) != nullptr) {
        return err("duplicate function @" + sig.name);
      }
      Function* func =
          module_->add_function(sig.name, sig.return_type, !sig.external);
      for (const Param& p : sig.params) {
        func->add_argument(p.type, p.name);
      }
    }
    return Status::ok();
  }

  Status parse_function(Cursor& cur) {
    Signature sig;
    if (Status s = parse_signature(cur, sig); !s.is_ok()) return s;

    Function* func = module_->find_function(sig.name);
    assert(func != nullptr && "prescan must have created the shell");
    values_.clear();
    pending_.clear();
    for (std::size_t i = 0; i < sig.params.size(); ++i) {
      values_[sig.params[i].name] = func->argument(i);
    }

    if (!cur.consume('{')) {
      // Declaration only (external).
      if (!cur.at_end()) return err("'{' or end of line expected");
      ++line_no_;
      return Status::ok();
    }
    if (!cur.at_end()) return err("'{' must end the line");
    ++line_no_;

    // Pre-scan for labels so branches can reference forward blocks.
    for (std::size_t probe = line_no_; probe < lines_.size(); ++probe) {
      std::string_view line = strip(probe);
      if (line == "}") break;
      if (ends_with(line, ":")) {
        const std::string label(line.substr(0, line.size() - 1));
        if (!is_identifier(label)) {
          return parse_error("line " + std::to_string(probe + 1) +
                             ": bad block label");
        }
        if (func->find_block(label) != nullptr) {
          return parse_error("line " + std::to_string(probe + 1) +
                             ": duplicate label " + label);
        }
        func->add_block(label);
      }
    }
    if (func->blocks().empty()) {
      return err("function body has no blocks");
    }

    BasicBlock* current = nullptr;
    while (line_no_ < lines_.size()) {
      std::string_view line = logical_line();
      if (line.empty()) {
        ++line_no_;
        continue;
      }
      if (line == "}") {
        ++line_no_;
        return resolve_pending(func);
      }
      if (ends_with(line, ":")) {
        current = func->find_block(
            std::string(line.substr(0, line.size() - 1)));
        ++line_no_;
        continue;
      }
      if (current == nullptr) return err("instruction before first label");
      if (Status s = parse_instruction(line, func, current); !s.is_ok()) {
        return s;
      }
      ++line_no_;
    }
    return err("'}' expected before end of input");
  }

  std::string_view strip(std::size_t index) const {
    std::string_view line = lines_[index];
    if (const std::size_t comment = line.find(';');
        comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    return trim(line);
  }

  Status parse_instruction(std::string_view text, Function* func,
                           BasicBlock* block) {
    // Split off the "!file:line" location suffix, if present.
    SourceLoc loc;
    if (const std::size_t bang = text.rfind('!');
        bang != std::string_view::npos && bang > 0 &&
        std::isspace(static_cast<unsigned char>(text[bang - 1]))) {
      const std::string_view suffix = trim(text.substr(bang + 1));
      const std::size_t colon = suffix.rfind(':');
      std::int64_t line_num = 0;
      if (colon != std::string_view::npos &&
          parse_int64(suffix.substr(colon + 1), line_num)) {
        loc.file = std::string(trim(suffix.substr(0, colon)));
        loc.line = static_cast<unsigned>(line_num);
        text = trim(text.substr(0, bang));
      }
    }

    Cursor cur(text);
    std::string result_name;
    if (cur.peek() == '%') {
      Cursor probe = cur;  // lookahead: "%name =" vs an operand-first opcode
      probe.consume('%');
      const std::string name = probe.ident();
      if (probe.consume('=')) {
        result_name = name;
        cur = probe;
      }
    }

    Opcode op;
    const std::string mnemonic = cur.ident();
    if (!parse_opcode(mnemonic, op)) {
      return err("unknown opcode '" + mnemonic + "'");
    }

    auto instr = std::make_unique<Instruction>(op, result_type(op),
                                               result_name);
    instr->set_loc(loc);
    instr->set_id(module_->next_value_id());
    Instruction* raw = instr.get();

    Status status = parse_operands(cur, func, raw);
    if (!status.is_ok()) return status;
    if (!cur.at_end()) return err("trailing tokens: '" +
                                  std::string(cur.rest()) + "'");

    block->append(std::move(instr));
    if (!raw->type().is_void() && !result_name.empty()) {
      values_[result_name] = raw;
    }
    return Status::ok();
  }

  static Type result_type(Opcode op) {
    switch (op) {
      case Opcode::kICmp:
        return Type::i1();
      case Opcode::kAlloca:
      case Opcode::kMalloc:
      case Opcode::kGep:
        return Type::ptr();
      case Opcode::kStore:
      case Opcode::kFree:
      case Opcode::kBr:
      case Opcode::kJmp:
      case Opcode::kRet:
      case Opcode::kLock:
      case Opcode::kUnlock:
      case Opcode::kThreadJoin:
      case Opcode::kHbRelease:
      case Opcode::kHbAcquire:
      case Opcode::kIoDelay:
      case Opcode::kYield:
      case Opcode::kPrint:
      case Opcode::kStrCpy:
      case Opcode::kMemCopy:
      case Opcode::kSetUid:
      case Opcode::kFileWrite:
      case Opcode::kEval:
        return Type::void_type();
      default:
        return Type::i64();
    }
  }

  /// Parses one operand reference; records forward refs for later patching.
  Status parse_operand(Cursor& cur, Instruction* instr) {
    if (cur.consume('%')) {
      const std::string name = cur.ident();
      if (!is_identifier(name)) return err("value name expected after '%'");
      auto it = values_.find(name);
      instr->add_operand(it != values_.end() ? it->second
                                             : placeholder());
      if (it == values_.end()) {
        pending_.push_back({instr, instr->operand_count() - 1, 0, name,
                            line_no_});
      }
      return Status::ok();
    }
    if (cur.consume('@')) {
      const std::string name = cur.ident();
      if (Value* v = find_global_value(name); v != nullptr) {
        instr->add_operand(v);
        return Status::ok();
      }
      return err("unknown global '@" + name + "'");
    }
    if (cur.consume_word("null")) {
      instr->add_operand(module_->null_ptr());
      return Status::ok();
    }
    std::int64_t value = 0;
    if (cur.integer(value)) {
      instr->add_operand(module_->i64(value));
      return Status::ok();
    }
    return err("operand expected");
  }

  Value* find_global_value(std::string_view name) const noexcept {
    if (GlobalVariable* g = module_->find_global(name)) return g;
    if (Function* f = module_->find_function(name)) return f;
    return nullptr;
  }

  /// Shared placeholder for unresolved refs; replaced before the function
  /// finishes parsing, so it never escapes.
  Value* placeholder() { return module_->i64(0); }

  Status parse_operands(Cursor& cur, Function* func, Instruction* instr) {
    const auto block_ref = [&](BasicBlock*& out) -> Status {
      const std::string label = cur.ident();
      BasicBlock* bb = func->find_block(label);
      if (bb == nullptr) return err("unknown label '" + label + "'");
      out = bb;
      return Status::ok();
    };

    switch (instr->opcode()) {
      case Opcode::kICmp: {
        CmpPredicate pred;
        if (!parse_predicate(cur.ident(), pred)) {
          return err("comparison predicate expected");
        }
        instr->set_predicate(pred);
        if (Status s = parse_operand(cur, instr); !s.is_ok()) return s;
        if (!cur.consume(',')) return err("',' expected");
        return parse_operand(cur, instr);
      }
      case Opcode::kAlloca: {
        std::int64_t cells = 0;
        if (!cur.integer(cells) || cells <= 0) {
          return err("alloca cell count expected");
        }
        instr->set_imm(cells);
        return Status::ok();
      }
      case Opcode::kBr: {
        if (Status s = parse_operand(cur, instr); !s.is_ok()) return s;
        if (!cur.consume(',')) return err("',' expected");
        BasicBlock* then_bb = nullptr;
        if (Status s = block_ref(then_bb); !s.is_ok()) return s;
        if (!cur.consume(',')) return err("',' expected");
        BasicBlock* else_bb = nullptr;
        if (Status s = block_ref(else_bb); !s.is_ok()) return s;
        instr->add_target(then_bb);
        instr->add_target(else_bb);
        return Status::ok();
      }
      case Opcode::kJmp: {
        BasicBlock* dest = nullptr;
        if (Status s = block_ref(dest); !s.is_ok()) return s;
        instr->add_target(dest);
        return Status::ok();
      }
      case Opcode::kPhi: {
        while (true) {
          if (!cur.consume('[')) return err("'[' expected in phi");
          // Incoming value: parse like an operand but store in phi lists.
          auto keeper = std::make_unique<Instruction>(Opcode::kPhi,
                                                      Type::i64(), "");
          if (Status s = parse_operand(cur, keeper.get()); !s.is_ok()) {
            return s;
          }
          Value* incoming = keeper->operand(0);
          const bool unresolved =
              !pending_.empty() && pending_.back().instr == keeper.get();
          std::string pending_name;
          if (unresolved) {
            pending_name = pending_.back().name;
            pending_.pop_back();
          }
          if (!cur.consume(',')) return err("',' expected in phi");
          BasicBlock* from = nullptr;
          if (Status s = block_ref(from); !s.is_ok()) return s;
          if (!cur.consume(']')) return err("']' expected in phi");
          instr->add_phi_incoming(incoming, from);
          if (unresolved) {
            pending_.push_back({instr, SIZE_MAX,
                                instr->phi_values().size() - 1, pending_name,
                                line_no_});
          }
          if (!cur.consume(',')) break;
        }
        return Status::ok();
      }
      case Opcode::kCall:
      case Opcode::kThreadCreate: {
        if (!cur.consume('@')) return err("'@' expected before callee");
        const std::string callee_name = cur.ident();
        Function* callee = module_->find_function(callee_name);
        if (callee == nullptr) {
          return err("unknown function '@" + callee_name + "'");
        }
        instr->set_callee(callee);
        if (instr->opcode() == Opcode::kCall) {
          instr->set_type(callee->return_type());
          if (!cur.consume('(')) return err("'(' expected");
          if (!cur.consume(')')) {
            while (true) {
              if (Status s = parse_operand(cur, instr); !s.is_ok()) return s;
              if (cur.consume(')')) break;
              if (!cur.consume(',')) return err("',' or ')' expected");
            }
          }
        } else {
          if (!cur.consume(',')) return err("',' expected");
          if (Status s = parse_operand(cur, instr); !s.is_ok()) return s;
        }
        return Status::ok();
      }
      case Opcode::kCallPtr: {
        if (Status s = parse_operand(cur, instr); !s.is_ok()) return s;
        if (!cur.consume('(')) return err("'(' expected");
        if (!cur.consume(')')) {
          while (true) {
            if (Status s = parse_operand(cur, instr); !s.is_ok()) return s;
            if (cur.consume(')')) break;
            if (!cur.consume(',')) return err("',' or ')' expected");
          }
        }
        return Status::ok();
      }
      case Opcode::kRet:
      case Opcode::kFork:
      case Opcode::kYield:
        if (cur.at_end()) return Status::ok();
        return parse_operand(cur, instr);
      default: {
        // Uniform comma-separated operand list.
        if (cur.at_end()) {
          return expected_operands(instr->opcode()) == 0
                     ? Status::ok()
                     : err("operands expected");
        }
        while (true) {
          if (Status s = parse_operand(cur, instr); !s.is_ok()) return s;
          if (!cur.consume(',')) break;
        }
        const std::size_t want = expected_operands(instr->opcode());
        if (want != SIZE_MAX && instr->operand_count() != want) {
          return err("wrong operand count for " +
                     std::string(opcode_name(instr->opcode())));
        }
        return Status::ok();
      }
    }
  }

  static std::size_t expected_operands(Opcode op) {
    switch (op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kUDiv:
      case Opcode::kSDiv:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kLShr:
      case Opcode::kGep:
      case Opcode::kStore:
      case Opcode::kAtomicRMWAdd:
      case Opcode::kStrCpy:
        return 2;
      case Opcode::kLoad:
      case Opcode::kFree:
      case Opcode::kMalloc:
      case Opcode::kLock:
      case Opcode::kUnlock:
      case Opcode::kThreadJoin:
      case Opcode::kHbRelease:
      case Opcode::kHbAcquire:
      case Opcode::kInput:
      case Opcode::kIoDelay:
      case Opcode::kPrint:
      case Opcode::kSetUid:
      case Opcode::kFileAccess:
      case Opcode::kFileOpen:
      case Opcode::kEval:
        return 1;
      case Opcode::kMemCopy:
      case Opcode::kFileWrite:
        return 3;
      case Opcode::kYield:
        return 0;
      default:
        return SIZE_MAX;  // variable arity
    }
  }

  Status resolve_pending(Function* func) {
    for (const PendingRef& ref : pending_) {
      auto it = values_.find(ref.name);
      if (it == values_.end()) {
        return parse_error("line " + std::to_string(ref.source_line + 1) +
                           ": undefined value '%" + ref.name + "' in @" +
                           func->name());
      }
      if (ref.operand_index == SIZE_MAX) {
        // Phi incoming value.
        ref.instr->set_phi_value(ref.phi_index, it->second);
      } else {
        ref.instr->set_operand(ref.operand_index, it->second);
      }
    }
    pending_.clear();
    return Status::ok();
  }

  std::vector<std::string> lines_;
  std::size_t line_no_ = 0;
  std::unique_ptr<Module> module_;
  std::unordered_map<std::string, Value*> values_;
  std::vector<PendingRef> pending_;
};

}  // namespace

Result<std::unique_ptr<Module>> parse_module(std::string_view text) {
  return ModuleParser(text).run();
}

}  // namespace owl::ir
