#include "ir/callgraph.hpp"

namespace owl::ir {

CallGraph::CallGraph(const Module& module) {
  for (const auto& f : module.functions()) {
    callees_.try_emplace(f.get());
    callers_.try_emplace(f.get());
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        Function* target = nullptr;
        if (instr->opcode() == Opcode::kCall ||
            instr->opcode() == Opcode::kThreadCreate) {
          target = instr->callee();
        }
        if (target == nullptr) continue;
        callees_[f.get()].insert(target);
        callers_[target].insert(f.get());
        sites_[target].push_back(instr.get());
      }
    }
  }
}

CallGraph::CallGraph(const Module& module, const IndirectCallMap& indirect)
    : CallGraph(module) {
  for (const auto& f : module.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() != Opcode::kCallPtr) continue;
        auto it = indirect.find(instr.get());
        if (it == indirect.end() || it->second.empty()) continue;
        indirect_.emplace(instr.get(), it->second);
        for (Function* target : it->second) {
          callees_[f.get()].insert(target);
          callers_[target].insert(f.get());
          sites_[target].push_back(instr.get());
          ++indirect_edge_count_;
        }
      }
    }
  }
}

const std::vector<Function*>& CallGraph::indirect_callees(
    const Instruction* site) const {
  auto it = indirect_.find(site);
  return it != indirect_.end() ? it->second : empty_functions_;
}

const std::unordered_set<Function*>& CallGraph::callees(
    const Function* f) const {
  auto it = callees_.find(f);
  return it != callees_.end() ? it->second : empty_set_;
}

const std::unordered_set<Function*>& CallGraph::callers(
    const Function* f) const {
  auto it = callers_.find(f);
  return it != callers_.end() ? it->second : empty_set_;
}

const std::vector<Instruction*>& CallGraph::call_sites(
    const Function* f) const {
  auto it = sites_.find(f);
  return it != sites_.end() ? it->second : empty_sites_;
}

std::unordered_set<Function*> CallGraph::reachable_from(
    const std::vector<Function*>& roots) const {
  std::unordered_set<Function*> seen;
  std::vector<Function*> work(roots.begin(), roots.end());
  while (!work.empty()) {
    Function* f = work.back();
    work.pop_back();
    if (!seen.insert(f).second) continue;
    for (Function* callee : callees(f)) work.push_back(callee);
  }
  return seen;
}

bool CallGraph::is_recursive(const Function* f) const {
  std::unordered_set<Function*> seen;
  std::vector<Function*> work(callees(f).begin(), callees(f).end());
  while (!work.empty()) {
    Function* g = work.back();
    work.pop_back();
    if (g == f) return true;
    if (!seen.insert(g).second) continue;
    for (Function* callee : callees(g)) work.push_back(callee);
  }
  return false;
}

}  // namespace owl::ir
