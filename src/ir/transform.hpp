// MiniIR module transforms — the rewrite layer behind automated race
// repair (DESIGN.md §13).
//
// Analyses treat a Module as immutable, so repair never patches the module
// under analysis: it clones via the deterministic print/parse round trip
// (ir/printer.hpp is the canonical form, so a cloned-then-reserialized
// module is byte-identical to the serialization of its source after one
// normalization pass) and edits the clone. Because instruction pointers do
// not survive cloning, edit sites are addressed by InstrCoord — (function
// name, block label, index in block) — which is stable across round trips.
//
// The three edits here are exactly the repair strategies' needs:
//  * add_mutex_global: a fresh one-cell global usable as a mutex;
//  * guard_range: splice `lock @m` / `unlock @m` around [first, last] of a
//    block, turning the racy accesses into one critical section;
//  * move_after: detach one instruction and re-insert it after another
//    (the relocation strategy: hoist a main-thread access past the joins).
//
// All inserted/moved instructions keep deterministic ids from the clone's
// own counter and carry no SourceLoc (the printer then omits the `!loc`
// suffix), so re-serialization is a pure function of the edit sequence.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "ir/module.hpp"

namespace owl::ir {

/// Position of an instruction that survives print/parse round trips:
/// names and block order are preserved, pointers and value ids are not.
struct InstrCoord {
  std::string function;
  std::string block;
  std::size_t index = 0;

  friend bool operator==(const InstrCoord&, const InstrCoord&) = default;
  std::string to_string() const {
    return "@" + function + "/" + block + "[" + std::to_string(index) + "]";
  }
};

/// Coordinate of `instr` inside its module; asserts on detached
/// instructions (no parent block).
InstrCoord coord_of(const Instruction& instr);

/// Instruction at `coord`, or nullptr when the function/block/index does
/// not exist in `module`.
Instruction* find_instr(const Module& module, const InstrCoord& coord);

/// Deep-copies a module through the canonical textual form. Returns
/// nullptr only if the module fails to re-parse (i.e. it was never
/// printable — not reachable for verifier-accepted modules).
std::unique_ptr<Module> clone_module(const Module& module);

/// Adds a fresh one-cell global intended as a mutex. The name is
/// `preferred` when free, else `preferred_2`, `preferred_3`, ... — chosen
/// deterministically from declaration order.
GlobalVariable* add_mutex_global(Module& module, const std::string& preferred);

/// Wraps instructions [first.index, last_index] of first's block in a
/// `lock @mutex` / `unlock @mutex` critical section. Returns false when the
/// coordinates or the mutex global do not exist, or when the range would
/// cover the block's terminator.
bool guard_range(Module& module, const InstrCoord& first,
                 std::size_t last_index, const std::string& mutex_name);

/// Detaches the instruction at `from` and re-inserts it immediately after
/// the instruction at `after` (coordinates interpreted against the module
/// *before* the edit). Returns false when either coordinate is missing or
/// `from` is a terminator.
bool move_after(Module& module, const InstrCoord& from,
                const InstrCoord& after);

}  // namespace owl::ir
