#include "ir/basic_block.hpp"

#include <cassert>

namespace owl::ir {

Instruction* BasicBlock::append(std::unique_ptr<Instruction> instr) {
  assert(instr != nullptr);
  assert(terminator() == nullptr && "appending past a terminator");
  instr->set_parent(this);
  instrs_.push_back(std::move(instr));
  return instrs_.back().get();
}

std::size_t BasicBlock::index_of(const Instruction* instr) const {
  for (std::size_t i = 0; i < instrs_.size(); ++i) {
    if (instrs_[i].get() == instr) return i;
  }
  assert(false && "instruction not in this block");
  return instrs_.size();
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  const Instruction* term = terminator();
  if (term == nullptr) return {};
  return term->targets();
}

}  // namespace owl::ir
