#include "ir/basic_block.hpp"

#include <cassert>

namespace owl::ir {

Instruction* BasicBlock::append(std::unique_ptr<Instruction> instr) {
  assert(instr != nullptr);
  assert(terminator() == nullptr && "appending past a terminator");
  instr->set_parent(this);
  instrs_.push_back(std::move(instr));
  return instrs_.back().get();
}

Instruction* BasicBlock::insert(std::size_t index,
                                std::unique_ptr<Instruction> instr) {
  assert(instr != nullptr);
  assert(index <= instrs_.size() && "insert position out of range");
  instr->set_parent(this);
  const auto it = instrs_.insert(
      instrs_.begin() + static_cast<std::ptrdiff_t>(index), std::move(instr));
  return it->get();
}

std::unique_ptr<Instruction> BasicBlock::remove(std::size_t index) {
  assert(index < instrs_.size() && "remove position out of range");
  std::unique_ptr<Instruction> out = std::move(instrs_[index]);
  instrs_.erase(instrs_.begin() + static_cast<std::ptrdiff_t>(index));
  out->set_parent(nullptr);
  return out;
}

std::size_t BasicBlock::index_of(const Instruction* instr) const {
  for (std::size_t i = 0; i < instrs_.size(); ++i) {
    if (instrs_[i].get() == instr) return i;
  }
  assert(false && "instruction not in this block");
  return instrs_.size();
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  const Instruction* term = terminator();
  if (term == nullptr) return {};
  return term->targets();
}

}  // namespace owl::ir
