// Ergonomic construction API for MiniIR, in the style of llvm::IRBuilder.
//
// The workload models (src/workloads) transcribe the paper's code listings
// with this builder; keeping call sites one-liner-per-source-line makes the
// transcriptions reviewable against the figures.
#pragma once

#include <string>

#include "ir/module.hpp"

namespace owl::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module* module) : module_(module) {}

  Module* module() const noexcept { return module_; }

  /// All subsequently created instructions append to `block`.
  void set_insert_point(BasicBlock* block) noexcept { block_ = block; }
  BasicBlock* insert_point() const noexcept { return block_; }

  /// Sets the source location stamped on subsequent instructions.
  void set_loc(std::string file, unsigned line) {
    loc_ = SourceLoc{std::move(file), line};
  }
  /// Advances only the line within the current file.
  void set_line(unsigned line) { loc_.line = line; }
  const SourceLoc& loc() const noexcept { return loc_; }

  // --- arithmetic / logic ---
  Instruction* add(Value* a, Value* b, std::string name = "");
  Instruction* sub(Value* a, Value* b, std::string name = "");
  Instruction* mul(Value* a, Value* b, std::string name = "");
  Instruction* udiv(Value* a, Value* b, std::string name = "");
  Instruction* sdiv(Value* a, Value* b, std::string name = "");
  Instruction* and_(Value* a, Value* b, std::string name = "");
  Instruction* or_(Value* a, Value* b, std::string name = "");
  Instruction* xor_(Value* a, Value* b, std::string name = "");
  Instruction* shl(Value* a, Value* b, std::string name = "");
  Instruction* lshr(Value* a, Value* b, std::string name = "");
  Instruction* icmp(CmpPredicate pred, Value* a, Value* b,
                    std::string name = "");

  // --- memory ---
  Instruction* alloca_cells(std::int64_t cells, std::string name = "");
  Instruction* malloc_cells(Value* cells, std::string name = "");
  Instruction* free_ptr(Value* ptr);
  Instruction* load(Value* ptr, std::string name = "");
  Instruction* store(Value* value, Value* ptr);
  Instruction* gep(Value* base, Value* offset, std::string name = "");

  // --- control flow ---
  Instruction* br(Value* cond, BasicBlock* then_bb, BasicBlock* else_bb);
  Instruction* jmp(BasicBlock* dest);
  Instruction* phi(Type type, std::string name = "");
  Instruction* call(Function* callee, std::vector<Value*> args,
                    std::string name = "");
  Instruction* callptr(Value* target, std::vector<Value*> args,
                       std::string name = "");
  Instruction* ret(Value* value = nullptr);

  // --- concurrency ---
  Instruction* lock(Value* mutex);
  Instruction* unlock(Value* mutex);
  Instruction* thread_create(Function* entry, Value* arg,
                             std::string name = "");
  Instruction* thread_join(Value* tid);
  Instruction* atomic_add(Value* ptr, Value* delta, std::string name = "");
  Instruction* hb_release(Value* sync_ptr);
  Instruction* hb_acquire(Value* sync_ptr);

  // --- environment ---
  Instruction* input(Value* index, std::string name = "");
  Instruction* io_delay(Value* ticks);
  Instruction* yield();
  Instruction* print(Value* value);

  // --- vulnerable-site intrinsics ---
  Instruction* strcpy_(Value* dst, Value* src);
  Instruction* memcpy_(Value* dst, Value* src, Value* len);
  Instruction* setuid_(Value* uid);
  Instruction* file_access(Value* path_id, std::string name = "");
  Instruction* file_open(Value* path_id, std::string name = "");
  Instruction* file_write(Value* fd, Value* payload, Value* len);
  Instruction* fork_(std::string name = "");
  Instruction* eval_(Value* command_id);

  // --- constants, forwarded from the module for brevity ---
  Constant* i64(std::int64_t v) { return module_->i64(v); }
  Constant* i1(bool v) { return module_->get_constant(Type::i1(), v ? 1 : 0); }
  Constant* null_ptr() { return module_->null_ptr(); }

 private:
  Instruction* emit(Opcode op, Type type, std::string name,
                    std::vector<Value*> operands);

  Module* module_;
  BasicBlock* block_ = nullptr;
  SourceLoc loc_;
};

}  // namespace owl::ir
