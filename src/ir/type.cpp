#include "ir/type.hpp"

namespace owl::ir {

std::string_view Type::name() const noexcept {
  switch (kind_) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kI1: return "i1";
    case TypeKind::kI64: return "i64";
    case TypeKind::kPtr: return "ptr";
  }
  return "?";
}

bool parse_type(std::string_view text, Type& out) noexcept {
  if (text == "void") {
    out = Type::void_type();
    return true;
  }
  if (text == "i1") {
    out = Type::i1();
    return true;
  }
  if (text == "i64") {
    out = Type::i64();
    return true;
  }
  if (text == "ptr") {
    out = Type::ptr();
    return true;
  }
  return false;
}

}  // namespace owl::ir
