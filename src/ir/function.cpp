#include "ir/function.hpp"

namespace owl::ir {

Argument* Function::add_argument(Type type, std::string name) {
  args_.push_back(std::make_unique<Argument>(
      type, std::move(name), this, static_cast<unsigned>(args_.size())));
  return args_.back().get();
}

BasicBlock* Function::add_block(std::string label) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(label), this));
  return blocks_.back().get();
}

BasicBlock* Function::find_block(std::string_view label) const noexcept {
  for (const auto& bb : blocks_) {
    if (bb->label() == label) return bb.get();
  }
  return nullptr;
}

std::size_t Function::instruction_count() const noexcept {
  std::size_t n = 0;
  for (const auto& bb : blocks_) n += bb->size();
  return n;
}

}  // namespace owl::ir
