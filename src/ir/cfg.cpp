#include "ir/cfg.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_set>

namespace owl::ir {

Cfg::Cfg(const Function& function) : function_(&function) {
  for (const auto& bb : function.blocks()) {
    auto succs = bb->successors();
    for (BasicBlock* s : succs) {
      preds_[s].push_back(bb.get());
    }
    if (const Instruction* term = bb->terminator();
        term != nullptr && term->opcode() == Opcode::kRet) {
      exits_.push_back(bb.get());
    }
    succs_[bb.get()] = std::move(succs);
    // Ensure every block has (possibly empty) entries in both maps.
    preds_.try_emplace(bb.get());
  }

  // Iterative DFS post-order from the entry, then reverse.
  std::vector<BasicBlock*> post;
  std::unordered_set<const BasicBlock*> visited;
  if (function.entry() != nullptr) {
    struct Item {
      BasicBlock* bb;
      std::size_t next_succ;
    };
    std::vector<Item> stack{{function.entry(), 0}};
    visited.insert(function.entry());
    while (!stack.empty()) {
      Item& top = stack.back();
      const auto& succs = succs_[top.bb];
      if (top.next_succ < succs.size()) {
        BasicBlock* next = succs[top.next_succ++];
        if (visited.insert(next).second) {
          stack.push_back({next, 0});
        }
      } else {
        post.push_back(top.bb);
        stack.pop_back();
      }
    }
  }
  rpo_.assign(post.rbegin(), post.rend());
  for (const auto& bb : function.blocks()) {
    reachable_[bb.get()] = visited.contains(bb.get());
    if (!visited.contains(bb.get())) {
      rpo_.push_back(bb.get());  // keep unreachable blocks addressable
    }
  }
  for (std::size_t i = 0; i < rpo_.size(); ++i) {
    rpo_index_[rpo_[i]] = i;
  }
}

const std::vector<BasicBlock*>& Cfg::successors(const BasicBlock* bb) const {
  auto it = succs_.find(bb);
  assert(it != succs_.end() && "block not in this CFG");
  return it->second;
}

const std::vector<BasicBlock*>& Cfg::predecessors(const BasicBlock* bb) const {
  auto it = preds_.find(bb);
  assert(it != preds_.end() && "block not in this CFG");
  return it->second;
}

std::size_t Cfg::rpo_index(const BasicBlock* bb) const {
  auto it = rpo_index_.find(bb);
  assert(it != rpo_index_.end() && "block not in this CFG");
  return it->second;
}

bool Cfg::is_reachable(const BasicBlock* bb) const {
  auto it = reachable_.find(bb);
  assert(it != reachable_.end() && "block not in this CFG");
  return it->second;
}

}  // namespace owl::ir
