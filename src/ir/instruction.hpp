// MiniIR instruction set.
//
// The opcode inventory covers exactly what OWL's analyses and the studied
// attacks need (DESIGN.md §2): scalar SSA computation, -O0-style memory via
// load/store/gep, structured control flow with phis, direct and indirect
// calls, pthread-like concurrency, TSan-style happens-before annotations,
// a workload input/timing environment, and intrinsics for the paper's five
// vulnerable-site classes (§3.2): memory operations, NULL (function-)pointer
// dereferences, privilege operations, file operations and process forking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.hpp"

namespace owl::ir {

class BasicBlock;
class Function;

enum class Opcode {
  // --- scalar arithmetic / logic (result: i64) ---
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  // --- comparison (result: i1) ---
  kICmp,
  // --- memory (addresses are 8-byte cells in simulated memory) ---
  kAlloca,    ///< stack cells in current frame; imm = cell count; result ptr
  kMalloc,    ///< heap allocation; operand 0 = cell count; result ptr
  kFree,      ///< release heap object; operand 0 = ptr
  kLoad,      ///< operand 0 = ptr; result = cell value
  kStore,     ///< operand 0 = value, operand 1 = ptr; no result
  kGep,       ///< operand 0 = base ptr, operand 1 = cell offset; result ptr
  // --- control flow ---
  kBr,        ///< operand 0 = i1 cond; targets: [then, else]
  kJmp,       ///< targets: [dest]
  kPhi,       ///< incoming (value, block) pairs
  kCall,      ///< direct call; callee() set; operands = actual args
  kCallPtr,   ///< indirect call through operand 0 (function id value);
              ///< remaining operands = args. Vulnerable site: NULL/garbage
              ///< function-pointer dereference (paper Fig. 2 / Fig. 6).
  kRet,       ///< operand 0 = value (optional for void functions)
  // --- concurrency ---
  kLock,          ///< operand 0 = mutex ptr; blocks until acquired
  kUnlock,        ///< operand 0 = mutex ptr
  kThreadCreate,  ///< callee() = entry; operand 0 = arg; result = tid (i64)
  kThreadJoin,    ///< operand 0 = tid
  kAtomicRMWAdd,  ///< operand 0 = ptr, operand 1 = delta; result = old value
  kHbRelease,     ///< operand 0 = sync ptr; TSan "happens-before release"
  kHbAcquire,     ///< operand 0 = sync ptr; TSan "happens-before acquire"
  // --- environment ---
  kInput,    ///< operand 0 = input index; result = workload input value
  kIoDelay,  ///< operand 0 = tick count; models disk/network latency —
             ///< this is the knob attackers tune to widen the vulnerable
             ///< window (paper §3.1 Finding III, msync IO example)
  kYield,    ///< scheduler hint; no semantics beyond a preemption point
  kPrint,    ///< operand 0 = value; debug/trace output
  // --- vulnerable-site intrinsics (§3.2's five explicit types) ---
  kStrCpy,      ///< operands: dst ptr, src ptr — unbounded copy until the
                ///< source's 0 terminator; overflow => SecurityEvent
  kMemCopy,     ///< operands: dst ptr, src ptr, len cells
  kSetUid,      ///< operand 0 = uid; uid 0 without privilege => escalation
  kFileAccess,  ///< operand 0 = path id; TOCTOU-style check
  kFileOpen,    ///< operand 0 = path id; result = fd
  kFileWrite,   ///< operand 0 = fd, operand 1 = payload ptr, operand 2 = len
  kFork,        ///< spawns a (simulated) child process; result = pid
  kEval,        ///< operand 0 = command id; shell-style evaluation
};

/// Textual mnemonic of an opcode ("add", "strcpy", ...).
std::string_view opcode_name(Opcode op) noexcept;
/// Inverse of opcode_name; returns false if `text` names no opcode.
bool parse_opcode(std::string_view text, Opcode& out) noexcept;

enum class CmpPredicate { kEq, kNe, kSLt, kSLe, kSGt, kSGe, kULt, kULe, kUGt, kUGe };

std::string_view predicate_name(CmpPredicate pred) noexcept;
bool parse_predicate(std::string_view text, CmpPredicate& out) noexcept;

/// Source position carried on every instruction so race reports and
/// vulnerability hints render like the paper's (e.g. "intercept.c:164").
struct SourceLoc {
  std::string file;  ///< empty means "unknown"
  unsigned line = 0;

  bool valid() const noexcept { return !file.empty(); }
  std::string to_string() const {
    return valid() ? file + ":" + std::to_string(line) : std::string("<?>");
  }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// One MiniIR instruction. Owned by its BasicBlock.
class Instruction final : public Value {
 public:
  Instruction(Opcode op, Type type, std::string name)
      : Value(ValueKind::kInstruction, type, std::move(name)), op_(op) {}

  Opcode opcode() const noexcept { return op_; }

  // --- operands (non-owning; owned by the Module/Function) ---
  const std::vector<Value*>& operands() const noexcept { return operands_; }
  Value* operand(std::size_t i) const {
    return operands_.at(i);
  }
  std::size_t operand_count() const noexcept { return operands_.size(); }
  void add_operand(Value* v) { operands_.push_back(v); }
  void set_operand(std::size_t i, Value* v) { operands_.at(i) = v; }

  // --- control-flow targets (kBr: [then, else]; kJmp: [dest]) ---
  const std::vector<BasicBlock*>& targets() const noexcept { return targets_; }
  void add_target(BasicBlock* bb) { targets_.push_back(bb); }

  // --- phi incoming edges, parallel vectors (value_i flows from block_i) ---
  const std::vector<Value*>& phi_values() const noexcept { return phi_values_; }
  const std::vector<BasicBlock*>& phi_blocks() const noexcept {
    return phi_blocks_;
  }
  void add_phi_incoming(Value* value, BasicBlock* block) {
    phi_values_.push_back(value);
    phi_blocks_.push_back(block);
  }
  void set_phi_value(std::size_t i, Value* value) { phi_values_.at(i) = value; }

  // --- direct-call / thread-create callee ---
  Function* callee() const noexcept { return callee_; }
  void set_callee(Function* f) noexcept { callee_ = f; }

  // --- immediates ---
  /// kAlloca: cell count; kICmp: unused (see predicate); free-form otherwise.
  std::int64_t imm() const noexcept { return imm_; }
  void set_imm(std::int64_t v) noexcept { imm_ = v; }

  CmpPredicate predicate() const noexcept { return pred_; }
  void set_predicate(CmpPredicate p) noexcept { pred_ = p; }

  // --- position & debug info ---
  BasicBlock* parent() const noexcept { return parent_; }
  void set_parent(BasicBlock* bb) noexcept { parent_ = bb; }
  /// The Function containing this instruction (via its parent block).
  Function* function() const noexcept;

  const SourceLoc& loc() const noexcept { return loc_; }
  void set_loc(SourceLoc loc) { loc_ = std::move(loc); }

  // --- classification helpers used throughout the analyses ---
  bool is_terminator() const noexcept {
    return op_ == Opcode::kBr || op_ == Opcode::kJmp || op_ == Opcode::kRet;
  }
  bool is_branch() const noexcept { return op_ == Opcode::kBr; }
  bool is_call() const noexcept {
    return op_ == Opcode::kCall || op_ == Opcode::kCallPtr;
  }
  /// Reads shared/heap/stack memory through a pointer.
  bool is_memory_read() const noexcept {
    return op_ == Opcode::kLoad || op_ == Opcode::kAtomicRMWAdd;
  }
  /// Writes memory through a pointer.
  bool is_memory_write() const noexcept {
    return op_ == Opcode::kStore || op_ == Opcode::kAtomicRMWAdd;
  }
  bool is_memory_access() const noexcept {
    return is_memory_read() || is_memory_write();
  }
  /// Instructions whose executed effect the interpreter treats atomically
  /// with respect to race detection (locks, annotations, atomics).
  bool is_synchronization() const noexcept {
    return op_ == Opcode::kLock || op_ == Opcode::kUnlock ||
           op_ == Opcode::kHbRelease || op_ == Opcode::kHbAcquire ||
           op_ == Opcode::kAtomicRMWAdd;
  }

  /// Pretty one-line rendering for reports; includes name, opcode, loc.
  std::string summary() const;

 private:
  Opcode op_;
  std::vector<Value*> operands_;
  std::vector<BasicBlock*> targets_;
  std::vector<Value*> phi_values_;
  std::vector<BasicBlock*> phi_blocks_;
  Function* callee_ = nullptr;
  std::int64_t imm_ = 0;
  CmpPredicate pred_ = CmpPredicate::kEq;
  BasicBlock* parent_ = nullptr;
  SourceLoc loc_;
};

}  // namespace owl::ir
