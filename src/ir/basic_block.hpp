// MiniIR basic blocks: straight-line instruction sequences ending in a
// terminator (br / jmp / ret), owned by a Function.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace owl::ir {

class Function;

class BasicBlock {
 public:
  BasicBlock(std::string label, Function* parent)
      : label_(std::move(label)), parent_(parent) {}

  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  const std::string& label() const noexcept { return label_; }
  Function* parent() const noexcept { return parent_; }

  /// Appends an instruction, taking ownership; returns the raw pointer for
  /// wiring operands.
  Instruction* append(std::unique_ptr<Instruction> instr);

  /// Inserts an instruction before position `index` (so `index == size()`
  /// appends), taking ownership. The transform layer (ir/transform.hpp)
  /// uses this to splice guard locks around existing accesses; callers are
  /// responsible for not inserting past the terminator.
  Instruction* insert(std::size_t index, std::unique_ptr<Instruction> instr);

  /// Detaches and returns the instruction at `index`. The instruction keeps
  /// its operands but loses its parent; the caller re-inserts or drops it.
  std::unique_ptr<Instruction> remove(std::size_t index);

  const std::vector<std::unique_ptr<Instruction>>& instructions()
      const noexcept {
    return instrs_;
  }
  bool empty() const noexcept { return instrs_.empty(); }
  std::size_t size() const noexcept { return instrs_.size(); }
  Instruction* front() const { return instrs_.front().get(); }
  Instruction* back() const { return instrs_.back().get(); }

  /// The block's terminator, or nullptr if the block is still open.
  Instruction* terminator() const noexcept {
    return (!instrs_.empty() && instrs_.back()->is_terminator())
               ? instrs_.back().get()
               : nullptr;
  }

  /// Position of `instr` within this block; asserts if absent.
  std::size_t index_of(const Instruction* instr) const;

  /// Successor blocks according to the terminator (empty for ret / open).
  std::vector<BasicBlock*> successors() const;

 private:
  std::string label_;
  Function* parent_;
  std::vector<std::unique_ptr<Instruction>> instrs_;
};

}  // namespace owl::ir
