// Textual MiniIR emission.
//
// The textual form serves the role of LLVM's .ll files: tests and examples
// author modules as text, reports quote instructions in it, and the parser
// (ir/parser.hpp) round-trips it. Grammar summary:
//
//   module  ::= "module" ident NL (global | func)*
//   global  ::= "global" "@"ident "[" int "]" ("=" int)?
//   func    ::= "func" "@"ident "(" params ")" "->" type ("external")? "{"
//                 (label ":" NL | instr NL)* "}"
//   instr   ::= ("%"ident "=")? mnemonic operands ("!"file":"line)?
//   operand ::= "%"ident | "@"ident | int | "null" | label
#pragma once

#include <string>

#include "ir/module.hpp"

namespace owl::ir {

/// Renders a whole module. Instructions without explicit names get
/// deterministic per-function temporaries (%t0, %t1, ...).
std::string print_module(const Module& module);

/// Renders one function in the same format.
std::string print_function(const Function& function);

/// Renders a single instruction (operands by name, no trailing newline).
std::string print_instruction(const Instruction& instr);

}  // namespace owl::ir
