// The value hierarchy is header-only apart from the vtable anchor below
// (keeps one vtable emission site, avoiding weak-vtable duplication).
#include "ir/value.hpp"

namespace owl::ir {}  // namespace owl::ir
