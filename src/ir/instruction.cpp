#include "ir/instruction.hpp"

#include <array>
#include <utility>

#include "ir/basic_block.hpp"
#include "ir/function.hpp"

namespace owl::ir {
namespace {

struct OpName {
  Opcode op;
  std::string_view name;
};

constexpr std::array kOpNames{
    OpName{Opcode::kAdd, "add"},
    OpName{Opcode::kSub, "sub"},
    OpName{Opcode::kMul, "mul"},
    OpName{Opcode::kUDiv, "udiv"},
    OpName{Opcode::kSDiv, "sdiv"},
    OpName{Opcode::kAnd, "and"},
    OpName{Opcode::kOr, "or"},
    OpName{Opcode::kXor, "xor"},
    OpName{Opcode::kShl, "shl"},
    OpName{Opcode::kLShr, "lshr"},
    OpName{Opcode::kICmp, "icmp"},
    OpName{Opcode::kAlloca, "alloca"},
    OpName{Opcode::kMalloc, "malloc"},
    OpName{Opcode::kFree, "free"},
    OpName{Opcode::kLoad, "load"},
    OpName{Opcode::kStore, "store"},
    OpName{Opcode::kGep, "gep"},
    OpName{Opcode::kBr, "br"},
    OpName{Opcode::kJmp, "jmp"},
    OpName{Opcode::kPhi, "phi"},
    OpName{Opcode::kCall, "call"},
    OpName{Opcode::kCallPtr, "callptr"},
    OpName{Opcode::kRet, "ret"},
    OpName{Opcode::kLock, "lock"},
    OpName{Opcode::kUnlock, "unlock"},
    OpName{Opcode::kThreadCreate, "thread_create"},
    OpName{Opcode::kThreadJoin, "thread_join"},
    OpName{Opcode::kAtomicRMWAdd, "atomic_add"},
    OpName{Opcode::kHbRelease, "hb_release"},
    OpName{Opcode::kHbAcquire, "hb_acquire"},
    OpName{Opcode::kInput, "input"},
    OpName{Opcode::kIoDelay, "io_delay"},
    OpName{Opcode::kYield, "yield"},
    OpName{Opcode::kPrint, "print"},
    OpName{Opcode::kStrCpy, "strcpy"},
    OpName{Opcode::kMemCopy, "memcpy"},
    OpName{Opcode::kSetUid, "setuid"},
    OpName{Opcode::kFileAccess, "file_access"},
    OpName{Opcode::kFileOpen, "file_open"},
    OpName{Opcode::kFileWrite, "file_write"},
    OpName{Opcode::kFork, "fork"},
    OpName{Opcode::kEval, "eval"},
};

struct PredName {
  CmpPredicate pred;
  std::string_view name;
};

constexpr std::array kPredNames{
    PredName{CmpPredicate::kEq, "eq"},   PredName{CmpPredicate::kNe, "ne"},
    PredName{CmpPredicate::kSLt, "slt"}, PredName{CmpPredicate::kSLe, "sle"},
    PredName{CmpPredicate::kSGt, "sgt"}, PredName{CmpPredicate::kSGe, "sge"},
    PredName{CmpPredicate::kULt, "ult"}, PredName{CmpPredicate::kULe, "ule"},
    PredName{CmpPredicate::kUGt, "ugt"}, PredName{CmpPredicate::kUGe, "uge"},
};

}  // namespace

std::string_view opcode_name(Opcode op) noexcept {
  for (const OpName& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "?";
}

bool parse_opcode(std::string_view text, Opcode& out) noexcept {
  for (const OpName& entry : kOpNames) {
    if (entry.name == text) {
      out = entry.op;
      return true;
    }
  }
  return false;
}

std::string_view predicate_name(CmpPredicate pred) noexcept {
  for (const PredName& entry : kPredNames) {
    if (entry.pred == pred) return entry.name;
  }
  return "?";
}

bool parse_predicate(std::string_view text, CmpPredicate& out) noexcept {
  for (const PredName& entry : kPredNames) {
    if (entry.name == text) {
      out = entry.pred;
      return true;
    }
  }
  return false;
}

Function* Instruction::function() const noexcept {
  return parent_ != nullptr ? parent_->parent() : nullptr;
}

std::string Instruction::summary() const {
  std::string out;
  if (!name().empty()) {
    out += "%";
    out += name();
    out += " = ";
  }
  out += opcode_name(op_);
  if (op_ == Opcode::kICmp) {
    out += " ";
    out += predicate_name(pred_);
  }
  const Function* f = function();
  if (f != nullptr) {
    out += " in ";
    out += f->name();
  }
  out += " (";
  out += loc_.to_string();
  out += ")";
  return out;
}

}  // namespace owl::ir
