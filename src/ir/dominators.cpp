#include "ir/dominators.hpp"

#include <cassert>
#include <functional>
#include <unordered_set>

namespace owl::ir {
namespace {

/// Generic Cooper–Harvey–Kennedy over dense node indices.
/// `order` must be a reverse post-order with the (virtual) root at index 0;
/// `preds[i]` lists predecessor indices. Returns idom indices (root's idom
/// is itself).
std::vector<std::size_t> compute_idoms(
    std::size_t node_count, const std::vector<std::vector<std::size_t>>& preds,
    const std::vector<std::size_t>& rpo_of_node) {
  constexpr std::size_t kUndef = SIZE_MAX;
  std::vector<std::size_t> idom(node_count, kUndef);
  idom[0] = 0;

  // Nodes sorted by RPO index (excluding the root).
  std::vector<std::size_t> by_rpo(node_count, kUndef);
  for (std::size_t n = 0; n < node_count; ++n) {
    if (rpo_of_node[n] != kUndef) by_rpo[rpo_of_node[n]] = n;
  }

  const auto intersect = [&](std::size_t a, std::size_t b) {
    while (a != b) {
      while (rpo_of_node[a] > rpo_of_node[b]) a = idom[a];
      while (rpo_of_node[b] > rpo_of_node[a]) b = idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < node_count; ++i) {
      const std::size_t node = by_rpo[i];
      if (node == kUndef) continue;  // unreachable
      std::size_t new_idom = kUndef;
      for (std::size_t p : preds[node]) {
        if (idom[p] == kUndef) continue;
        new_idom = (new_idom == kUndef) ? p : intersect(new_idom, p);
      }
      if (new_idom != kUndef && idom[node] != new_idom) {
        idom[node] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

}  // namespace

DominatorTree::DominatorTree(const Cfg& cfg) {
  // Dense indexing: 0 = entry, rest in RPO (reachable blocks only).
  std::vector<BasicBlock*> nodes;
  std::unordered_map<const BasicBlock*, std::size_t> index;
  for (BasicBlock* bb : cfg.reverse_post_order()) {
    if (!cfg.is_reachable(bb)) continue;
    index[bb] = nodes.size();
    nodes.push_back(bb);
  }
  if (nodes.empty()) return;

  std::vector<std::vector<std::size_t>> preds(nodes.size());
  std::vector<std::size_t> rpo_of_node(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    rpo_of_node[i] = i;  // nodes are already in RPO
    for (BasicBlock* p : cfg.predecessors(nodes[i])) {
      if (auto it = index.find(p); it != index.end()) {
        preds[i].push_back(it->second);
      }
    }
  }

  const std::vector<std::size_t> idom =
      compute_idoms(nodes.size(), preds, rpo_of_node);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (idom[i] != SIZE_MAX) idom_[nodes[i]] = nodes[idom[i]];
  }
  idom_[nodes[0]] = nullptr;
}

BasicBlock* DominatorTree::idom(const BasicBlock* bb) const {
  auto it = idom_.find(bb);
  return it != idom_.end() ? it->second : nullptr;
}

bool DominatorTree::dominates(const BasicBlock* a, const BasicBlock* b) const {
  if (!idom_.contains(a) || !idom_.contains(b)) return false;
  const BasicBlock* walk = b;
  while (walk != nullptr) {
    if (walk == a) return true;
    walk = idom(walk);
  }
  return false;
}

PostDominatorTree::PostDominatorTree(const Cfg& cfg) {
  // Reverse the CFG and hang all exits off a virtual root (index 0).
  // Blocks that cannot reach any exit (infinite loops) stay undefined and
  // conservatively post-dominate nothing.
  std::vector<BasicBlock*> nodes{nullptr};  // index 0 = virtual exit
  std::unordered_map<const BasicBlock*, std::size_t> index;

  // Post-order DFS over the reversed CFG starting at the exits, so that a
  // reverse post-order exists with the virtual root first.
  std::vector<BasicBlock*> post;
  std::unordered_set<const BasicBlock*> visited;
  std::function<void(BasicBlock*)> dfs = [&](BasicBlock* bb) {
    if (!visited.insert(bb).second) return;
    for (BasicBlock* p : cfg.predecessors(bb)) dfs(p);
    post.push_back(bb);
  };
  for (BasicBlock* exit : cfg.exit_blocks()) dfs(exit);

  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    index[*it] = nodes.size();
    nodes.push_back(*it);
  }

  std::vector<std::vector<std::size_t>> preds(nodes.size());
  std::vector<std::size_t> rpo_of_node(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) rpo_of_node[i] = i;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    BasicBlock* bb = nodes[i];
    // Predecessor in reversed graph = successor in the original graph.
    for (BasicBlock* s : cfg.successors(bb)) {
      if (auto it = index.find(s); it != index.end()) {
        preds[i].push_back(it->second);
      }
    }
    if (const Instruction* term = bb->terminator();
        term != nullptr && term->opcode() == Opcode::kRet) {
      preds[i].push_back(0);  // exits flow to the virtual root
    }
  }

  const std::vector<std::size_t> idom =
      compute_idoms(nodes.size(), preds, rpo_of_node);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    reaches_exit_[nodes[i]] = true;
    ipdom_[nodes[i]] = (idom[i] == SIZE_MAX || idom[i] == 0)
                           ? nullptr
                           : nodes[idom[i]];
  }
  for (const auto& bb : cfg.function().blocks()) {
    reaches_exit_.try_emplace(bb.get(), false);
  }
}

BasicBlock* PostDominatorTree::ipdom(const BasicBlock* bb) const {
  auto it = ipdom_.find(bb);
  return it != ipdom_.end() ? it->second : nullptr;
}

bool PostDominatorTree::post_dominates(const BasicBlock* a,
                                       const BasicBlock* b) const {
  auto a_known = reaches_exit_.find(a);
  auto b_known = reaches_exit_.find(b);
  if (a_known == reaches_exit_.end() || !a_known->second) return false;
  if (b_known == reaches_exit_.end() || !b_known->second) return false;
  const BasicBlock* walk = b;
  while (walk != nullptr) {
    if (walk == a) return true;
    walk = ipdom(walk);
  }
  return false;
}

}  // namespace owl::ir
