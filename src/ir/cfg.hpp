// Control-flow graph utilities over a single Function.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/function.hpp"

namespace owl::ir {

/// Precomputed CFG adjacency plus traversal orders. Invalidated by any
/// mutation of the function; analyses construct it fresh (functions are
/// immutable once built, per the Module ownership contract).
class Cfg {
 public:
  explicit Cfg(const Function& function);

  const Function& function() const noexcept { return *function_; }

  const std::vector<BasicBlock*>& successors(const BasicBlock* bb) const;
  const std::vector<BasicBlock*>& predecessors(const BasicBlock* bb) const;

  /// Blocks in reverse post-order from the entry (unreachable blocks last,
  /// in declaration order, so every block appears exactly once).
  const std::vector<BasicBlock*>& reverse_post_order() const noexcept {
    return rpo_;
  }

  /// Dense index of `bb` within reverse_post_order().
  std::size_t rpo_index(const BasicBlock* bb) const;

  /// Blocks ending in kRet (the CFG's exits).
  const std::vector<BasicBlock*>& exit_blocks() const noexcept {
    return exits_;
  }

  bool is_reachable(const BasicBlock* bb) const;

 private:
  const Function* function_;
  std::unordered_map<const BasicBlock*, std::vector<BasicBlock*>> succs_;
  std::unordered_map<const BasicBlock*, std::vector<BasicBlock*>> preds_;
  std::unordered_map<const BasicBlock*, std::size_t> rpo_index_;
  std::unordered_map<const BasicBlock*, bool> reachable_;
  std::vector<BasicBlock*> rpo_;
  std::vector<BasicBlock*> exits_;
};

}  // namespace owl::ir
