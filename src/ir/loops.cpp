#include "ir/loops.hpp"

#include <algorithm>

namespace owl::ir {

LoopInfo::LoopInfo(const Function& function) {
  const Cfg cfg(function);
  const DominatorTree dom(cfg);

  // A back edge latch->header exists when header dominates latch. The
  // natural loop is header plus everything that reaches the latch without
  // passing through the header.
  for (const auto& bb : function.blocks()) {
    if (!cfg.is_reachable(bb.get())) continue;
    for (BasicBlock* succ : cfg.successors(bb.get())) {
      if (!dom.dominates(succ, bb.get())) continue;
      // Merge into an existing loop with the same header if present
      // (multiple latches, e.g. `continue` statements).
      Loop* loop = nullptr;
      for (Loop& candidate : loops_) {
        if (candidate.header == succ) {
          loop = &candidate;
          break;
        }
      }
      if (loop == nullptr) {
        loops_.push_back(Loop{succ, {succ}});
        loop = &loops_.back();
      }
      // Walk predecessors from the latch until the header.
      std::vector<BasicBlock*> work{bb.get()};
      while (!work.empty()) {
        BasicBlock* cur = work.back();
        work.pop_back();
        if (!loop->blocks.insert(cur).second) continue;
        if (cur == succ) continue;
        for (BasicBlock* pred : cfg.predecessors(cur)) {
          work.push_back(pred);
        }
      }
    }
  }
}

const Loop* LoopInfo::innermost_loop(const BasicBlock* bb) const {
  const Loop* best = nullptr;
  for (const Loop& loop : loops_) {
    if (!loop.contains(bb)) continue;
    if (best == nullptr || loop.blocks.size() < best->blocks.size()) {
      best = &loop;
    }
  }
  return best;
}

bool LoopInfo::in_loop(const Instruction* instr) const {
  return instr->parent() != nullptr &&
         innermost_loop(instr->parent()) != nullptr;
}

bool LoopInfo::can_exit_loop(const Instruction* branch) const {
  if (!branch->is_branch()) return false;
  const Loop* loop = innermost_loop(branch->parent());
  if (loop == nullptr) return false;
  return std::any_of(branch->targets().begin(), branch->targets().end(),
                     [&](BasicBlock* t) { return !loop->contains(t); });
}

}  // namespace owl::ir
