// MiniIR module: the unit of analysis (one per modelled target program).
// Owns all globals, functions and the uniqued constant pool.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/value.hpp"

namespace owl::ir {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const noexcept { return name_; }

  // --- globals ---
  GlobalVariable* add_global(std::string name, std::uint64_t cell_count = 1,
                             std::int64_t initial_value = 0);
  GlobalVariable* find_global(std::string_view name) const noexcept;
  const std::vector<std::unique_ptr<GlobalVariable>>& globals()
      const noexcept {
    return globals_;
  }

  // --- functions ---
  Function* add_function(std::string name, Type return_type,
                         bool is_internal = true);
  Function* find_function(std::string_view name) const noexcept;
  const std::vector<std::unique_ptr<Function>>& functions() const noexcept {
    return functions_;
  }

  // --- uniqued constants ---
  Constant* get_constant(Type type, std::int64_t value);
  Constant* i64(std::int64_t value) { return get_constant(Type::i64(), value); }
  Constant* null_ptr() { return get_constant(Type::ptr(), 0); }

  /// Assigns a fresh value id. Ids are unique across ALL modules in the
  /// process (not just this one) so race-report keys never collide when
  /// reports from different programs are merged or compared.
  std::uint64_t next_value_id() noexcept;

  /// Total instruction count across all functions.
  std::size_t instruction_count() const noexcept;

 private:
  std::string name_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::map<std::pair<TypeKind, std::int64_t>, std::unique_ptr<Constant>>
      constants_;
};

}  // namespace owl::ir
