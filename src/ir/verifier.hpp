// Structural verification of MiniIR modules.
//
// Run after construction (builder or parser) and before interpretation or
// analysis; all downstream components assume the invariants checked here.
#pragma once

#include <vector>

#include "ir/module.hpp"
#include "support/status.hpp"

namespace owl::ir {

/// Checks the whole module:
///  - every block of every internal function ends in exactly one terminator;
///  - phis appear only at the start of a block and name real predecessors;
///  - branch conditions are boolean-ish (i1 or i64), targets in-function;
///  - call arity matches the callee's declared parameters;
///  - thread entries take at most one argument;
///  - pointer-consuming opcodes get ptr-typed operands;
///  - operands belong to the same function (or are constants/globals).
/// Returns the first violation, or OK.
Status verify_module(const Module& module);

/// All violations instead of just the first (used by tests).
std::vector<Status> verify_module_all(const Module& module);

}  // namespace owl::ir
