#include "ir/printer.hpp"

#include <cassert>
#include <unordered_map>

#include "support/strings.hpp"

namespace owl::ir {
namespace {

/// Assigns printable names: explicit names win, otherwise deterministic
/// per-function temporaries in program order.
class Namer {
 public:
  void assign(const Function& f) {
    for (const auto& arg : f.arguments()) remember(arg.get());
    for (const auto& bb : f.blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (!instr->type().is_void()) remember(instr.get());
      }
    }
  }

  std::string ref(const Value* v) const {
    assert(v != nullptr);
    switch (v->kind()) {
      case ValueKind::kConstant: {
        const auto* c = static_cast<const Constant*>(v);
        if (c->is_null_pointer()) return "null";
        return std::to_string(c->value());
      }
      case ValueKind::kGlobalVariable:
      case ValueKind::kFunction:
        return "@" + v->name();
      case ValueKind::kArgument:
      case ValueKind::kInstruction: {
        auto it = names_.find(v);
        if (it != names_.end()) return "%" + it->second;
        // Value from another function (or unnamed void): fall back to id.
        if (!v->name().empty()) return "%" + v->name();
        return "%v" + std::to_string(v->id());
      }
    }
    return "%?";
  }

 private:
  void remember(const Value* v) {
    if (!v->name().empty()) {
      names_.emplace(v, v->name());
    } else {
      names_.emplace(v, "t" + std::to_string(next_++));
    }
  }

  std::unordered_map<const Value*, std::string> names_;
  int next_ = 0;
};

std::string render_operands(const Instruction& instr, const Namer& namer) {
  std::vector<std::string> parts;
  for (const Value* op : instr.operands()) parts.push_back(namer.ref(op));
  return join(parts, ", ");
}

std::string render_instr(const Instruction& instr, const Namer& namer) {
  std::string out = "  ";
  if (!instr.type().is_void()) {
    out += namer.ref(&instr);
    out += " = ";
  }
  out += opcode_name(instr.opcode());

  switch (instr.opcode()) {
    case Opcode::kICmp:
      out += " ";
      out += predicate_name(instr.predicate());
      out += " ";
      out += render_operands(instr, namer);
      break;
    case Opcode::kAlloca:
      out += " " + std::to_string(instr.imm());
      break;
    case Opcode::kBr:
      out += " " + namer.ref(instr.operand(0));
      out += ", " + instr.targets().at(0)->label();
      out += ", " + instr.targets().at(1)->label();
      break;
    case Opcode::kJmp:
      out += " " + instr.targets().at(0)->label();
      break;
    case Opcode::kPhi: {
      std::vector<std::string> parts;
      for (std::size_t i = 0; i < instr.phi_values().size(); ++i) {
        parts.push_back("[" + namer.ref(instr.phi_values()[i]) + ", " +
                        instr.phi_blocks()[i]->label() + "]");
      }
      out += " " + join(parts, ", ");
      break;
    }
    case Opcode::kCall:
      out += " @" + instr.callee()->name() + "(" +
             render_operands(instr, namer) + ")";
      break;
    case Opcode::kCallPtr: {
      std::vector<std::string> args;
      for (std::size_t i = 1; i < instr.operand_count(); ++i) {
        args.push_back(namer.ref(instr.operand(i)));
      }
      out += " " + namer.ref(instr.operand(0)) + "(" + join(args, ", ") + ")";
      break;
    }
    case Opcode::kThreadCreate:
      out += " @" + instr.callee()->name() + ", " +
             namer.ref(instr.operand(0));
      break;
    default:
      if (instr.operand_count() > 0) {
        out += " " + render_operands(instr, namer);
      }
      break;
  }

  if (instr.loc().valid()) {
    out += "  !" + instr.loc().file + ":" + std::to_string(instr.loc().line);
  }
  return out;
}

std::string render_function(const Function& f) {
  Namer namer;
  namer.assign(f);

  std::string out = "func @" + f.name() + "(";
  std::vector<std::string> params;
  for (const auto& arg : f.arguments()) {
    params.push_back(std::string(arg->type().name()) + " " + namer.ref(arg.get()));
  }
  out += join(params, ", ");
  out += ") -> ";
  out += f.return_type().name();
  if (!f.is_internal()) out += " external";
  if (!f.has_body()) {
    out += "\n";
    return out;
  }
  out += " {\n";
  for (const auto& bb : f.blocks()) {
    out += bb->label() + ":\n";
    for (const auto& instr : bb->instructions()) {
      out += render_instr(*instr, namer);
      out += "\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace

std::string print_module(const Module& module) {
  std::string out = "module " + module.name() + "\n\n";
  for (const auto& g : module.globals()) {
    out += "global @" + g->name() + " [" + std::to_string(g->cell_count()) +
           "]";
    if (g->initial_value() != 0) {
      out += " = " + std::to_string(g->initial_value());
    }
    out += "\n";
  }
  if (!module.globals().empty()) out += "\n";
  for (const auto& f : module.functions()) {
    out += render_function(*f);
    out += "\n";
  }
  return out;
}

std::string print_function(const Function& function) {
  return render_function(function);
}

std::string print_instruction(const Instruction& instr) {
  Namer namer;
  if (const Function* f = instr.function(); f != nullptr) {
    namer.assign(*f);
  }
  std::string text = render_instr(instr, namer);
  // Strip the block indentation for standalone quoting in reports.
  return std::string(trim(text));
}

}  // namespace owl::ir
