#include "ir/module.hpp"

#include <atomic>
#include <cassert>

namespace owl::ir {

std::uint64_t Module::next_value_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

GlobalVariable* Module::add_global(std::string name, std::uint64_t cell_count,
                                   std::int64_t initial_value) {
  assert(find_global(name) == nullptr && "duplicate global name");
  assert(cell_count > 0);
  globals_.push_back(std::make_unique<GlobalVariable>(std::move(name),
                                                      cell_count,
                                                      initial_value));
  GlobalVariable* g = globals_.back().get();
  g->set_id(next_value_id());
  return g;
}

GlobalVariable* Module::find_global(std::string_view name) const noexcept {
  for (const auto& g : globals_) {
    if (g->name() == name) return g.get();
  }
  return nullptr;
}

Function* Module::add_function(std::string name, Type return_type,
                               bool is_internal) {
  assert(find_function(name) == nullptr && "duplicate function name");
  functions_.push_back(std::make_unique<Function>(std::move(name), return_type,
                                                  this, is_internal));
  Function* f = functions_.back().get();
  f->set_id(next_value_id());
  return f;
}

Function* Module::find_function(std::string_view name) const noexcept {
  for (const auto& f : functions_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

Constant* Module::get_constant(Type type, std::int64_t value) {
  const auto key = std::make_pair(type.kind(), value);
  auto it = constants_.find(key);
  if (it != constants_.end()) return it->second.get();
  auto owned = std::make_unique<Constant>(type, value);
  owned->set_id(next_value_id());
  Constant* c = owned.get();
  constants_.emplace(key, std::move(owned));
  return c;
}

std::size_t Module::instruction_count() const noexcept {
  std::size_t n = 0;
  for (const auto& f : functions_) n += f->instruction_count();
  return n;
}

}  // namespace owl::ir
