#include "ir/transform.hpp"

#include <cassert>

#include "ir/parser.hpp"
#include "ir/printer.hpp"

namespace owl::ir {

InstrCoord coord_of(const Instruction& instr) {
  const BasicBlock* block = instr.parent();
  assert(block != nullptr && "coord_of on a detached instruction");
  InstrCoord coord;
  coord.function = block->parent()->name();
  coord.block = block->label();
  coord.index = block->index_of(&instr);
  return coord;
}

Instruction* find_instr(const Module& module, const InstrCoord& coord) {
  const Function* function = module.find_function(coord.function);
  if (function == nullptr) return nullptr;
  const BasicBlock* block = function->find_block(coord.block);
  if (block == nullptr || coord.index >= block->size()) return nullptr;
  return block->instructions()[coord.index].get();
}

std::unique_ptr<Module> clone_module(const Module& module) {
  auto parsed = parse_module(print_module(module));
  if (!parsed.is_ok()) return nullptr;
  return std::move(parsed).value();
}

GlobalVariable* add_mutex_global(Module& module, const std::string& preferred) {
  std::string name = preferred;
  for (unsigned suffix = 2; module.find_global(name) != nullptr; ++suffix) {
    name = preferred + "_" + std::to_string(suffix);
  }
  return module.add_global(name, /*cell_count=*/1, /*initial_value=*/0);
}

namespace {

/// A fresh void lock/unlock on `mutex`, id'd from the module's counter and
/// without a SourceLoc (the printer then omits the `!loc` suffix).
std::unique_ptr<Instruction> make_lock_op(Module& module, Opcode op,
                                          GlobalVariable* mutex) {
  auto instr = std::make_unique<Instruction>(op, Type::void_type(), "");
  instr->add_operand(mutex);
  instr->set_id(module.next_value_id());
  return instr;
}

}  // namespace

bool guard_range(Module& module, const InstrCoord& first,
                 std::size_t last_index, const std::string& mutex_name) {
  GlobalVariable* mutex = module.find_global(mutex_name);
  if (mutex == nullptr) return false;
  Function* function = module.find_function(first.function);
  if (function == nullptr) return false;
  BasicBlock* block = function->find_block(first.block);
  if (block == nullptr) return false;
  if (first.index > last_index || last_index >= block->size()) return false;
  if (block->instructions()[last_index]->is_terminator()) return false;
  block->insert(first.index, make_lock_op(module, Opcode::kLock, mutex));
  // The lock insertion shifted everything at/after first.index by one.
  block->insert(last_index + 2, make_lock_op(module, Opcode::kUnlock, mutex));
  return true;
}

bool move_after(Module& module, const InstrCoord& from,
                const InstrCoord& after) {
  Instruction* moved = find_instr(module, from);
  Instruction* anchor = find_instr(module, after);
  if (moved == nullptr || anchor == nullptr || moved == anchor) return false;
  if (moved->is_terminator()) return false;
  BasicBlock* source = moved->parent();
  BasicBlock* dest = anchor->parent();
  std::unique_ptr<Instruction> detached = source->remove(from.index);
  std::size_t position = after.index + 1;
  if (source == dest && from.index < after.index) --position;
  dest->insert(position, std::move(detached));
  return true;
}

}  // namespace owl::ir
