// MiniIR type system.
//
// MiniIR is OWL's stand-in for LLVM bitcode (see DESIGN.md §2). The analyses
// the paper runs over bitcode — forward data/control-flow propagation,
// adhoc-sync classification, vulnerable-site matching — only distinguish
// "no value", booleans, integers and pointers, so the type lattice is kept
// to exactly those four kinds.
#pragma once

#include <string_view>

namespace owl::ir {

enum class TypeKind {
  kVoid,  ///< instruction produces no value (store, br, ret void, ...)
  kI1,    ///< boolean, result of comparisons
  kI64,   ///< 64-bit integer, the universal scalar
  kPtr,   ///< address into the simulated memory
};

/// A trivially copyable type tag. MiniIR has no aggregate types; structs are
/// modelled as byte offsets off a base pointer (like -O0 LLVM GEPs).
class Type {
 public:
  constexpr Type() noexcept : kind_(TypeKind::kVoid) {}
  constexpr explicit Type(TypeKind kind) noexcept : kind_(kind) {}

  static constexpr Type void_type() noexcept { return Type(TypeKind::kVoid); }
  static constexpr Type i1() noexcept { return Type(TypeKind::kI1); }
  static constexpr Type i64() noexcept { return Type(TypeKind::kI64); }
  static constexpr Type ptr() noexcept { return Type(TypeKind::kPtr); }

  constexpr TypeKind kind() const noexcept { return kind_; }
  constexpr bool is_void() const noexcept { return kind_ == TypeKind::kVoid; }
  constexpr bool is_i1() const noexcept { return kind_ == TypeKind::kI1; }
  constexpr bool is_i64() const noexcept { return kind_ == TypeKind::kI64; }
  constexpr bool is_ptr() const noexcept { return kind_ == TypeKind::kPtr; }
  /// Integers and booleans; anything that participates in arithmetic.
  constexpr bool is_integer() const noexcept {
    return kind_ == TypeKind::kI1 || kind_ == TypeKind::kI64;
  }

  /// Textual spelling used by the printer/parser ("void", "i1", ...).
  std::string_view name() const noexcept;

  friend constexpr bool operator==(Type a, Type b) noexcept {
    return a.kind_ == b.kind_;
  }
  friend constexpr bool operator!=(Type a, Type b) noexcept {
    return !(a == b);
  }

 private:
  TypeKind kind_;
};

/// Parses a type spelling; returns false if `text` names no type.
bool parse_type(std::string_view text, Type& out) noexcept;

}  // namespace owl::ir
