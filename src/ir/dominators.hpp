// Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative
// algorithm). Post-dominance feeds the control-dependence computation that
// Algorithm 1's "i is control dependent on cbr" test requires.
#pragma once

#include <unordered_map>

#include "ir/cfg.hpp"

namespace owl::ir {

/// Forward dominator tree rooted at the entry block. Unreachable blocks
/// have no dominator information (dominates() returns false for them).
class DominatorTree {
 public:
  explicit DominatorTree(const Cfg& cfg);

  /// Immediate dominator; nullptr for the entry and unreachable blocks.
  BasicBlock* idom(const BasicBlock* bb) const;

  /// Reflexive dominance: a block dominates itself.
  bool dominates(const BasicBlock* a, const BasicBlock* b) const;

 private:
  std::unordered_map<const BasicBlock*, BasicBlock*> idom_;
};

/// Post-dominator tree over the reversed CFG with a virtual exit that all
/// kRet blocks reach (handles multi-exit functions; infinite loops
/// post-dominate nothing, which is the conservative answer for control
/// dependence).
class PostDominatorTree {
 public:
  explicit PostDominatorTree(const Cfg& cfg);

  /// Immediate post-dominator; nullptr if the virtual exit or unknown.
  BasicBlock* ipdom(const BasicBlock* bb) const;

  /// Reflexive post-dominance.
  bool post_dominates(const BasicBlock* a, const BasicBlock* b) const;

 private:
  std::unordered_map<const BasicBlock*, BasicBlock*> ipdom_;
  std::unordered_map<const BasicBlock*, bool> reaches_exit_;
};

}  // namespace owl::ir
