// Registry of all modelled target programs (paper Tables 1–4).
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace owl::workloads {

/// Libsafe-2.0-16 — dying-flag race bypasses stack_check, strcpy overflow,
/// code injection (paper Fig. 1, §4.3).
Workload make_libsafe(const NoiseProfile& profile = {});

/// Linux kernel (SKI mode): uselib()/msync() f_op NULL-function-pointer
/// race (2.6.10, Fig. 2) plus a 2.6.29-style privilege-escalation race.
Workload make_linux(const NoiseProfile& profile = {});

/// MySQL-5.0.27 — "FLUSH PRIVILEGES" ACL-cache race, privilege escalation
/// (bug 24988, §3.1 Finding III).
Workload make_mysql_flush(const NoiseProfile& profile = {});

/// MySQL-5.1.35 — "SET PASSWORD" double free.
Workload make_mysql_setpass(const NoiseProfile& profile = {});

/// SSDB-1.9.2 — BinlogQueue shutdown use-after-free, CVE-2016-1000324
/// (paper Fig. 6; previously unknown, found by OWL).
Workload make_ssdb(const NoiseProfile& profile = {});

/// Apache-2.0.48 — buffered-log outcnt race: HTML integrity violation via
/// a one-cell fd overflow (bug 25520, Fig. 7) plus the 2.0.48 double free.
Workload make_apache_log(const NoiseProfile& profile = {});

/// Apache-2.2 — load-balancer busy-counter underflow DoS (bug 46215,
/// Fig. 8; previously unknown consequence, found by OWL).
Workload make_apache_balancer(const NoiseProfile& profile = {});

/// Chrome-6.0.472.58 — JS console.profile use-after-free.
Workload make_chrome(const NoiseProfile& profile = {});

/// Memcached — benign-race-only target (Table 3 control row).
Workload make_memcached(const NoiseProfile& profile = {});

/// Extension target (paper §8.3 future work, implemented): a check-then-act
/// banking double-spend where every access is lock-protected — invisible to
/// happens-before detection, caught by the atomicity-violation detector.
/// Not part of make_all(): the paper's tables do not include it.
Workload make_bank_atomicity(const NoiseProfile& profile = {});

/// All workloads in the paper's table order.
std::vector<Workload> make_all(const NoiseProfile& profile = {});

/// Lookup by name ("libsafe", "linux", "mysql-flush", "mysql-setpass",
/// "ssdb", "apache-log", "apache-balancer", "chrome", "memcached",
/// "bank-atomicity").
Workload make_by_name(std::string_view name, const NoiseProfile& profile = {});

}  // namespace owl::workloads
