// Linux kernel model (SKI mode) — two studied kernel attacks in one
// "kernel" module, matching Table 2's Linux row (2 attacks):
//
//  1. Linux-2.6.10 uselib()/msync() race (paper Fig. 2): msync_interval
//     checks file->f_op, performs IO, then calls file->f_op->fsync();
//     do_munmap() concurrently NULLs f_op. Attackers tune the IO timing to
//     widen the check-to-use window and trigger a NULL function-pointer
//     dereference — and from there arbitrary code execution (CVE on
//     osvdb 12791).
//  2. A Linux-2.6.29-style privilege escalation (Table 4 row "Syscall
//     parameters"): an exec-path credential check races with a ptrace-side
//     transient override; reading the override mid-window grants uid 0.
//
// Per the paper (§8.3), kernels run under SKI-mode detection (schedule
// exploration + the §6.3 watch-list policy) and WITHOUT the LLDB-based
// dynamic verifiers; OWL's static analyzer alone pinpoints the sites.
#include "workloads/registry.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

Workload make_linux(const NoiseProfile& profile) {
  Workload w;
  w.name = "linux-2.6";
  w.program = "Linux";
  w.description =
      "uselib f_op NULL-func-ptr race (2.6.10) + ptrace/exec privilege "
      "escalation (2.6.29)";
  w.vuln_type = "Null Func Ptr Deref / Privilege Escalation";
  w.subtle_inputs = "Syscall parameters";
  w.paper_loc = 2'800'000;
  w.paper_raw_reports = 24'641;

  auto module = std::make_shared<ir::Module>("linux");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  // --- fsync implementation the f_op "struct" points to ---
  ir::Function* fsync_impl = m.add_function("generic_fsync", ir::Type::i64());
  {
    b.set_insert_point(fsync_impl->add_block("entry"));
    b.set_loc("fs/buffer.c", 330);
    b.ret(b.i64(0));
  }

  ir::GlobalVariable* f_op = m.add_global(
      "f_op", 1, static_cast<std::int64_t>(fsync_impl->id()));
  ir::GlobalVariable* cred_override = m.add_global("cred_override");

  // --- msync_interval: check f_op, IO, then call through it (Fig. 2) ---
  ir::Function* msync_interval =
      m.add_function("msync_interval", ir::Type::void_type());
  {
    ir::BasicBlock* entry = msync_interval->add_block("entry");
    ir::BasicBlock* do_sync = msync_interval->add_block("do_sync");
    ir::BasicBlock* out = msync_interval->add_block("out");

    b.set_insert_point(entry);
    b.set_loc("mm/msync.c", 110);
    ir::Instruction* f1 = b.load(f_op, "f1");
    ir::Instruction* present =
        b.icmp(ir::CmpPredicate::kNe, f1, b.i64(0), "present");
    b.set_loc("mm/msync.c", 112);
    b.br(present, do_sync, out);

    b.set_insert_point(do_sync);
    b.set_loc("mm/msync.c", 113);
    ir::Instruction* window = b.input(b.i64(0), "io_window");
    b.io_delay(window);  // disk IO between the check and the use
    b.set_loc("mm/msync.c", 115);
    ir::Instruction* f2 = b.load(f_op, "f2");  // racy re-read
    b.callptr(f2, {}, "err");                  // file->f_op->fsync(...)
    b.ret();

    b.set_insert_point(out);
    b.ret();
  }

  // --- msync syscall loop (attacker-controlled repetition count) ---
  ir::Function* msync_loop = m.add_function("sys_msync", ir::Type::void_type());
  {
    ir::BasicBlock* entry = msync_loop->add_block("entry");
    ir::BasicBlock* header = msync_loop->add_block("header");
    ir::BasicBlock* body = msync_loop->add_block("body");
    ir::BasicBlock* done = msync_loop->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("mm/msync.c", 90);
    ir::Instruction* reps = b.input(b.i64(2), "reps");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("mm/msync.c", 95);
    b.call(msync_interval, {});
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  // --- do_munmap (the uselib side): NULLs f_op after its own IO ---
  ir::Function* munmap_fn = m.add_function("do_munmap", ir::Type::void_type());
  {
    b.set_insert_point(munmap_fn->add_block("entry"));
    b.set_loc("mm/mmap.c", 1825);
    ir::Instruction* delay = b.input(b.i64(1), "swap_io");
    b.io_delay(delay);  // kernel swap IO the attacker provokes
    b.set_loc("mm/mmap.c", 1830);
    b.store(b.null_ptr(), f_op);  // file->f_op = NULL;
    b.ret();
  }

  // --- commit_creds: applies the (escalated) credentials — the attack
  // site is a callee of the racy check (paper Finding II) ---
  ir::Function* commit_creds =
      m.add_function("commit_creds", ir::Type::void_type());
  {
    b.set_insert_point(commit_creds->add_block("entry"));
    b.set_loc("kernel/cred.c", 480);
    b.setuid_(b.i64(0));  // vulnerable site: unauthorized uid 0
    b.ret();
  }

  // --- 2.6.29-style privilege escalation ---
  ir::Function* check_exec =
      m.add_function("check_and_exec", ir::Type::void_type());
  {
    ir::BasicBlock* entry = check_exec->add_block("entry");
    ir::BasicBlock* elevate = check_exec->add_block("elevate");
    ir::BasicBlock* normal = check_exec->add_block("normal");

    b.set_insert_point(entry);
    b.set_loc("kernel/cred.c", 210);
    ir::Instruction* c = b.load(cred_override, "c");  // racy read
    ir::Instruction* elevated =
        b.icmp(ir::CmpPredicate::kNe, c, b.i64(0), "elev");
    b.set_loc("kernel/cred.c", 212);
    b.br(elevated, elevate, normal);

    b.set_insert_point(elevate);
    b.set_loc("kernel/cred.c", 215);
    b.call(commit_creds, {});
    b.ret();

    b.set_insert_point(normal);
    b.set_loc("kernel/cred.c", 220);
    b.file_access(b.i64(1));
    b.ret();
  }

  ir::Function* exec_loop = m.add_function("sys_execve", ir::Type::void_type());
  {
    ir::BasicBlock* entry = exec_loop->add_block("entry");
    ir::BasicBlock* header = exec_loop->add_block("header");
    ir::BasicBlock* body = exec_loop->add_block("body");
    ir::BasicBlock* done = exec_loop->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("fs/exec.c", 50);
    ir::Instruction* reps = b.input(b.i64(4), "reps");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("fs/exec.c", 55);
    b.call(check_exec, {});
    b.io_delay(b.i64(1));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  ir::Function* ptrace_fn = m.add_function("ptrace_attach", ir::Type::void_type());
  {
    b.set_insert_point(ptrace_fn->add_block("entry"));
    b.set_loc("kernel/ptrace.c", 545);
    ir::Instruction* when = b.input(b.i64(3), "when");
    b.io_delay(when);
    b.set_loc("kernel/ptrace.c", 550);
    b.store(b.i64(1), cred_override);  // transient override begins
    ir::Instruction* width = b.input(b.i64(5), "width");
    b.io_delay(width);
    b.set_loc("kernel/ptrace.c", 560);
    b.store(b.i64(0), cred_override);  // window closes
    b.ret();
  }

  // --- noise: the kernel's report volume is dominated by adhoc syncs
  // (paper: 8 annotations collapse 24,641 raw reports to 1,718) ---
  const double s = profile.scale;
  NoiseSpec noise;
  noise.tag = "kern";
  noise.adhoc_groups = s < 0.01 ? 0 : 8;  // scale 0 = noise-free kernel
  noise.adhoc_guarded = static_cast<unsigned>(std::lround(275 * s));
  noise.counters = static_cast<unsigned>(std::lround(82 * s));
  noise.safe_site_groups = static_cast<unsigned>(std::lround(3 * s));
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("init/main.c", 1);
    std::vector<ir::Instruction*> tids;
    tids.push_back(b.thread_create(msync_loop, b.i64(0), "t_msync"));
    tids.push_back(b.thread_create(munmap_fn, b.i64(0), "t_uselib"));
    tids.push_back(b.thread_create(exec_loop, b.i64(0), "t_exec"));
    tids.push_back(b.thread_create(ptrace_fn, b.i64(0), "t_ptrace"));
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(
          b.thread_create(const_cast<ir::Function*>(entry_fn), b.i64(0)));
    }
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  w.detector = core::DetectorKind::kSki;
  w.dynamic_verifiers_supported = false;  // paper §8.3: LLDB is user-space
  w.detection_schedules = 4;
  w.max_steps = 600'000;
  // inputs: [msync_io, uselib_io, msync_reps, ptrace_when, exec_reps,
  //          ptrace_width]
  // Benchmark timing: the racing stores land after the syscall loops have
  // drained, so the races are detected (no happens-before edge orders
  // them) but their consequences do not manifest.
  w.testing_inputs = {1, 9000, 3, 9500, 3, 1};
  // Exploit (Table 4 "syscall parameters"): msync IO stretched to widen the
  // check-to-use window; uselib timed into it; ptrace window widened and
  // the exec loop lengthened.
  w.exploit_inputs = {25, 10, 8, 6, 10, 20};
  w.known_attacks = 2;
  w.thread_order = {2, 1, 4, 3};

  w.attack_succeeded = [](const interp::Machine& machine) {
    return machine.has_event(interp::SecurityEventKind::kNullFuncPtrDeref) ||
           machine.has_event(interp::SecurityEventKind::kPrivilegeEscalation);
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    bool fop_site = false;
    bool setuid_site = false;
    for (const vuln::ExploitReport& exploit : result.exploits) {
      if (exploit.site == nullptr) continue;
      if (exploit.site->opcode() == ir::Opcode::kCallPtr &&
          exploit.site->loc().file == "mm/msync.c") {
        fop_site = true;
      }
      if (exploit.site->opcode() == ir::Opcode::kSetUid) {
        setuid_site = true;
      }
    }
    return fop_site && setuid_site;
  };
  w.attacks_found = [](const core::PipelineResult& result) {
    bool fop_site = false;
    bool setuid_site = false;
    for (const vuln::ExploitReport& exploit : result.exploits) {
      if (exploit.site == nullptr) continue;
      if (exploit.site->opcode() == ir::Opcode::kCallPtr &&
          exploit.site->loc().file == "mm/msync.c") {
        fop_site = true;
      }
      if (exploit.site->opcode() == ir::Opcode::kSetUid) setuid_site = true;
    }
    return static_cast<std::size_t>(fop_site) +
           static_cast<std::size_t>(setuid_site);
  };
  return w;
}

}  // namespace owl::workloads
