// Apache bug 46215 model — the previously-unknown integer-underflow DoS
// OWL found (paper Fig. 8, §8.4).
//
// Each worker's busyness counter is incremented/decremented without a lock
// (proxy_balancer.c:616-617). The check-then-decrement races: two finishers
// can both observe busy == 1, and the second decrement wraps the unsigned
// counter to 18,446,744,073,709,551,614 — permanently marking that worker
// "busiest". find_best_bybusyness then never assigns it another request
// (line 1195's candidate assignment is control-dependent on the corrupted
// comparison), starving workers and collapsing throughput: a DoS.
//
// The candidate selection is modelled as an indirect dispatch through the
// chosen worker's handler pointer, so the paper's "pointer assignment"
// site appears as a function-pointer-dereference vulnerable site.
#include "workloads/registry.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

namespace {
constexpr std::int64_t kWorkers = 4;
}

Workload make_apache_balancer(const NoiseProfile& profile) {
  Workload w;
  w.name = "apache-46215";
  w.program = "Apache";
  w.description =
      "load-balancer busy-counter underflow; worker starvation DoS";
  w.vuln_type = "Integer Underflow / DoS";
  w.subtle_inputs = "bursts of short proxied requests";
  w.paper_loc = 290'000;
  w.paper_raw_reports = 715;

  auto module = std::make_shared<ir::Module>("apache_46215");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  ir::GlobalVariable* busy = m.add_global("worker_busy", kWorkers);
  ir::GlobalVariable* served = m.add_global("worker_served", kWorkers);

  // --- per-worker request handler (dispatch target) ---
  ir::Function* handler = m.add_function("worker_handle", ir::Type::i64());
  {
    ir::Argument* idx = handler->add_argument(ir::Type::i64(), "idx");
    b.set_insert_point(handler->add_block("entry"));
    b.set_loc("proxy_worker.c", 50);
    ir::Instruction* sp = b.gep(served, idx, "sp");
    ir::Instruction* sv = b.load(sp, "sv");
    b.store(b.add(sv, b.i64(1)), sp);
    b.ret(b.i64(0));
  }

  ir::GlobalVariable* handlers = m.add_global(
      "worker_handlers", kWorkers,
      static_cast<std::int64_t>(handler->id()));

  // --- proxy_balancer_post_request (Fig. 8 lines 588-617) ---
  ir::Function* post_request =
      m.add_function("proxy_balancer_post_request", ir::Type::void_type());
  {
    ir::Argument* widx = post_request->add_argument(ir::Type::i64(), "w");
    ir::BasicBlock* entry = post_request->add_block("entry");
    ir::BasicBlock* dec = post_request->add_block("dec");
    ir::BasicBlock* out = post_request->add_block("out");

    b.set_insert_point(entry);
    b.set_loc("proxy_balancer.c", 616);
    ir::Instruction* bp = b.gep(busy, widx, "bp");
    ir::Instruction* bv = b.load(bp, "bv");  // if (worker->s->busy)
    ir::Instruction* nonzero =
        b.icmp(ir::CmpPredicate::kNe, bv, b.i64(0), "nz");
    b.br(nonzero, dec, out);

    b.set_insert_point(dec);
    b.set_loc("proxy_balancer.c", 617);
    ir::Instruction* gap = b.input(b.i64(3), "finish_io");
    b.io_delay(gap);  // the check's value goes stale during completion IO
    ir::Instruction* bv2 = b.load(bp, "bv2");
    // busy-- : load-dec-store. If the other finisher got here first, bv2 is
    // already 0 and this store wraps the unsigned counter.
    b.store(b.sub(bv2, b.i64(1)), bp);  // racy write
    b.ret();

    b.set_insert_point(out);
    b.ret();
  }

  // --- find_best_bybusyness (Fig. 8 lines 1138-1195) ---
  ir::Function* find_best = m.add_function("find_best_bybusyness",
                                           ir::Type::i64());
  {
    ir::BasicBlock* entry = find_best->add_block("entry");
    ir::BasicBlock* header = find_best->add_block("header");
    ir::BasicBlock* body = find_best->add_block("body");
    ir::BasicBlock* better = find_best->add_block("better");
    ir::BasicBlock* next = find_best->add_block("next");
    ir::BasicBlock* done = find_best->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("proxy_balancer.c", 1144);
    ir::Instruction* cand = b.alloca_cells(1, "mycandidate");
    ir::Instruction* cand_busy = b.alloca_cells(1, "cand_busy");
    b.store(b.i64(0), cand);
    b.store(b.i64(-1), cand_busy);  // "infinity" in unsigned compare
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more =
        b.icmp(ir::CmpPredicate::kSLt, i, b.i64(kWorkers), "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("proxy_balancer.c", 1192);
    ir::Instruction* bp = b.gep(busy, i, "bp");
    ir::Instruction* bv = b.load(bp, "bv");  // the corrupted read
    ir::Instruction* cb = b.load(cand_busy, "cb");
    ir::Instruction* less =
        b.icmp(ir::CmpPredicate::kULt, bv, cb, "less");  // unsigned compare
    b.set_loc("proxy_balancer.c", 1193);
    b.br(less, better, next);

    b.set_insert_point(better);
    b.set_loc("proxy_balancer.c", 1195);
    ir::Instruction* wp = b.gep(handlers, i, "worker_ptr");
    b.store(wp, cand);       // mycandidate = worker (the paper's site:
                             // a pointer assignment control-dependent on
                             // the corrupted busyness comparison)
    b.store(bv, cand_busy);
    b.jmp(next);

    b.set_insert_point(next);
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, next);

    b.set_insert_point(done);
    b.set_loc("proxy_balancer.c", 1198);
    ir::Instruction* wp2 = b.load(cand, "wp2");
    ir::Instruction* h = b.load(wp2, "h");
    // Dispatch to the chosen worker through its handler pointer.
    b.set_loc("proxy_balancer.c", 1200);
    ir::Instruction* base = b.gep(handlers, b.i64(0), "base");
    ir::Instruction* off = b.sub(wp2, base, "off");
    ir::Instruction* chosen = b.udiv(off, b.i64(8), "chosen");
    ir::Instruction* r = b.callptr(h, {chosen}, "r");
    (void)r;
    // The chosen worker is now busier.
    ir::Instruction* bp2 = b.gep(busy, chosen, "bp2");
    ir::Instruction* bv3 = b.load(bp2, "bv3");
    b.store(b.add(bv3, b.i64(1)), bp2);
    b.ret(chosen);
  }

  // --- balancer thread: a stream of proxied requests ---
  ir::Function* balancer = m.add_function("balancer_thread",
                                          ir::Type::void_type());
  {
    ir::BasicBlock* entry = balancer->add_block("entry");
    ir::BasicBlock* header = balancer->add_block("header");
    ir::BasicBlock* body = balancer->add_block("body");
    ir::BasicBlock* done = balancer->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("proxy_balancer.c", 560);
    ir::Instruction* reps = b.input(b.i64(0), "requests");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("proxy_balancer.c", 565);
    b.call(find_best, {});
    b.io_delay(b.i64(1));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  // --- finisher threads: concurrent post_request on the same worker.
  // The argument is a per-thread phase offset: the exploit staggers the two
  // finishers by half the completion-IO window so one check lands before
  // the other's store and its decrement after (the wrap ordering).
  ir::Function* finisher = m.add_function("finisher_thread",
                                          ir::Type::void_type());
  {
    ir::Argument* phase = finisher->add_argument(ir::Type::i64(), "phase");
    ir::Instruction* widx = nullptr;
    ir::BasicBlock* entry = finisher->add_block("entry");
    ir::BasicBlock* header = finisher->add_block("header");
    ir::BasicBlock* body = finisher->add_block("body");
    ir::BasicBlock* done = finisher->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("proxy_balancer.c", 580);
    b.io_delay(phase);
    widx = b.add(b.i64(0), b.i64(0), "widx");  // all finishers target worker 0
    ir::Instruction* reps = b.input(b.i64(1), "finishes");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("proxy_balancer.c", 585);
    b.call(post_request, {widx});
    ir::Instruction* gap = b.input(b.i64(2), "gap");
    b.io_delay(gap);
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  const double s = profile.scale;
  NoiseSpec noise;
  noise.tag = "ap46";
  noise.adhoc_groups = 3;
  noise.adhoc_guarded = static_cast<unsigned>(std::lround(4 * s) + 1);
  noise.publication_depth = static_cast<unsigned>(std::lround(10 * s));
  noise.counters = static_cast<unsigned>(std::lround(2 * s));
  noise.safe_site_groups = static_cast<unsigned>(std::lround(1 * s));
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("main.c", 1);
    // Worker 0 starts with one in-flight request: busy[0] = 1.
    b.store(b.i64(1), busy);
    std::vector<ir::Instruction*> tids;
    // Finisher phases: thread f1 starts input(4) ticks later. The exploit
    // sets this to half the completion-IO window; the benchmark keeps the
    // finishers far apart.
    ir::Instruction* f1_at = b.input(b.i64(4), "f1_at");
    tids.push_back(b.thread_create(finisher, b.i64(0), "f0"));
    tids.push_back(b.thread_create(finisher, f1_at, "f1"));
    tids.push_back(b.thread_create(balancer, b.i64(0), "bal"));
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(
          b.thread_create(const_cast<ir::Function*>(entry_fn), b.i64(0)));
    }
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  // inputs: [balancer_requests, finishes_per_thread, finish_gap, finish_io,
  //          finisher2_at]
  w.testing_inputs = {4, 2, 2, 1, 9000};
  // Exploit: bursts of short requests so two finishers overlap on the same
  // worker with a stretched completion window.
  w.exploit_inputs = {12, 6, 1, 10, 5};
  w.known_attacks = 1;
  w.thread_order = {1, 2, 3};
  w.max_steps = 400'000;

  w.attack_succeeded = [](const interp::Machine& machine) {
    // The DoS evidence: some busy counter wrapped below zero (i.e. to the
    // huge unsigned value the paper reports), starving that worker.
    const interp::Address base = machine.global_address("worker_busy");
    for (std::int64_t i = 0; i < kWorkers; ++i) {
      if (machine.memory().load_raw(base + static_cast<interp::Address>(i) *
                                               8) < 0) {
        return true;
      }
    }
    return false;
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    // Matching the paper's §8.4 verification of this attack: the corrupted
    // branch is real and the line-1195 candidate assignment is reachable
    // under it (the DoS itself is demonstrated by the fig8 bench).
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site != nullptr &&
          attack.exploit.site->loc().line == 1195 &&
          attack.exploit.type == vuln::SiteType::kPointerAssign &&
          attack.verification.site_reached) {
        return true;
      }
    }
    return false;
  };
  return w;
}

}  // namespace owl::workloads
