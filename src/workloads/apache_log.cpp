// Apache-2.0.48 model — two studied attacks:
//
//  1. Bug 25520 (paper Fig. 7, §8.4): ap_buffered_log_writer's outcnt index
//     races between logger threads. A stale check with a fresh index lets
//     memcpy land at &outbuf[8] — exactly where Apache keeps the request
//     log's file descriptor. A one-cell overflow replaces that fd with an
//     attacker-supplied value (the HTML file's fd), so Apache's own request
//     log is flushed INTO a user's HTML file: HTML integrity violation and
//     information leak. OWL was the first to find this consequence.
//  2. The 2.0.48 double free (Table 4, "PhP queries"): two request-cleanup
//     threads race on a shared PHP pool pointer.
#include "workloads/registry.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

namespace {
constexpr std::int64_t kLogBufCells = 8;   // LOG_BUFSIZE
constexpr std::int64_t kFdCell = 8;        // request-log fd lives here
constexpr std::int64_t kOutCntCell = 9;    // shared outcnt index
}  // namespace

Workload make_apache_log(const NoiseProfile& profile) {
  Workload w;
  w.name = "apache-2.0.48";
  w.program = "Apache";
  w.description =
      "buffered-log outcnt race: fd overflow -> HTML integrity violation; "
      "plus PHP-pool double free";
  w.vuln_type = "Double Free / HTML integrity";
  w.subtle_inputs = "PhP queries";
  w.paper_loc = 290'000;
  w.paper_raw_reports = 715;

  auto module = std::make_shared<ir::Module>("apache_2_0_48");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  // buffered_log: outbuf[0..7] | fd | outcnt — contiguous, like the struct.
  ir::GlobalVariable* logbuf = m.add_global("logbuf", 10);
  ir::GlobalVariable* php_pool = m.add_global("php_pool");
  ir::GlobalVariable* html_fd_g = m.add_global("html_fd");

  // --- ap_buffered_log_writer (Fig. 7 lines 1327-1366) ---
  ir::Function* log_writer =
      m.add_function("ap_buffered_log_writer", ir::Type::void_type());
  {
    ir::Argument* payload = log_writer->add_argument(ir::Type::ptr(), "strs");
    ir::Argument* len = log_writer->add_argument(ir::Type::i64(), "len");
    ir::BasicBlock* entry = log_writer->add_block("entry");
    ir::BasicBlock* flush = log_writer->add_block("flush");
    ir::BasicBlock* append = log_writer->add_block("append");

    b.set_insert_point(entry);
    b.set_loc("http_log.c", 1342);
    ir::Instruction* cnt_ptr = b.gep(logbuf, b.i64(kOutCntCell), "cnt_ptr");
    ir::Instruction* c1 = b.load(cnt_ptr, "c1");
    ir::Instruction* sum = b.add(c1, len, "sum");
    ir::Instruction* over =
        b.icmp(ir::CmpPredicate::kUGt, sum, b.i64(kLogBufCells), "over");
    b.br(over, flush, append);

    b.set_insert_point(flush);
    b.set_loc("http_log.c", 1343);
    ir::Instruction* fd_ptr = b.gep(logbuf, b.i64(kFdCell), "fd_ptr");
    ir::Instruction* fd = b.load(fd_ptr, "fd");
    b.file_write(fd, logbuf, b.i64(kLogBufCells));  // flush_log(buf)
    b.store(b.i64(0), cnt_ptr);
    b.jmp(append);

    b.set_insert_point(append);
    b.set_loc("http_log.c", 1357);
    ir::Instruction* fmt = b.input(b.i64(6), "format_io");
    b.io_delay(fmt);  // formatting the entry: the check-to-use window
    b.set_loc("http_log.c", 1358);
    ir::Instruction* c2 = b.load(cnt_ptr, "c2");  // the corrupted read
    ir::Instruction* s = b.gep(logbuf, c2, "s");  // s = &outbuf[outcnt]
    b.set_loc("http_log.c", 1359);
    b.memcpy_(s, payload, len);  // vulnerable site
    b.set_loc("http_log.c", 1362);
    ir::Instruction* c3 = b.add(c2, len, "c3");
    b.store(c3, cnt_ptr);  // buf->outcnt += len — the racy write
    b.ret();
  }

  // --- logger thread: repeated requests, attacker-chosen payload value ---
  ir::Function* logger = m.add_function("logger", ir::Type::void_type());
  {
    ir::Argument* id = logger->add_argument(ir::Type::i64(), "id");
    ir::BasicBlock* entry = logger->add_block("entry");
    ir::BasicBlock* header = logger->add_block("header");
    ir::BasicBlock* body = logger->add_block("body");
    ir::BasicBlock* done = logger->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("worker.c", 100);
    ir::Instruction* reps = b.input(b.i64(0), "reps");
    ir::Instruction* len = b.input(b.i64(1), "entry_len");
    ir::Instruction* mark = b.input(b.i64(5), "payload_value");
    ir::Instruction* buf = b.alloca_cells(4, "entry_buf");
    b.store(mark, buf);
    b.store(mark, b.gep(buf, b.i64(1), "b1"));
    b.store(mark, b.gep(buf, b.i64(2), "b2"));
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("worker.c", 110);
    b.call(log_writer, {buf, len});
    ir::Instruction* gap = b.add(id, b.i64(1), "gap");
    b.io_delay(gap);
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  // --- PHP request cleanup: the 2.0.48 double free ---
  ir::Function* php_cleanup = m.add_function("php_request_shutdown",
                                             ir::Type::void_type());
  {
    ir::BasicBlock* entry = php_cleanup->add_block("entry");
    ir::BasicBlock* destroy = php_cleanup->add_block("destroy");
    ir::BasicBlock* skip = php_cleanup->add_block("skip");

    b.set_insert_point(entry);
    b.set_loc("mod_php.c", 800);
    ir::Instruction* p = b.load(php_pool, "pool");  // racy read
    ir::Instruction* live =
        b.icmp(ir::CmpPredicate::kNe, p, b.i64(0), "live");
    b.br(live, destroy, skip);

    b.set_insert_point(destroy);
    b.set_loc("mod_php.c", 803);
    ir::Instruction* gap = b.input(b.i64(7), "shutdown_io");
    b.io_delay(gap);
    b.set_loc("mod_php.c", 805);
    b.free_ptr(p);  // vulnerable site: double free under the race
    b.set_loc("mod_php.c", 807);
    ir::Instruction* fresh = b.malloc_cells(b.i64(2), "fresh");
    b.store(fresh, php_pool);  // racy write
    b.ret();

    b.set_insert_point(skip);
    b.ret();
  }

  ir::Function* php_worker = m.add_function("php_worker", ir::Type::void_type());
  {
    ir::Argument* phase = php_worker->add_argument(ir::Type::i64(), "phase");
    ir::BasicBlock* entry = php_worker->add_block("entry");
    ir::BasicBlock* header = php_worker->add_block("header");
    ir::BasicBlock* body = php_worker->add_block("body");
    ir::BasicBlock* done = php_worker->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("worker.c", 200);
    b.io_delay(phase);
    ir::Instruction* reps = b.input(b.i64(8), "php_reps");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("worker.c", 210);
    b.call(php_cleanup, {});
    b.io_delay(b.i64(2));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  const double s = profile.scale;
  NoiseSpec noise;
  noise.tag = "ap20";
  noise.adhoc_groups = 4;
  noise.adhoc_guarded = static_cast<unsigned>(std::lround(4 * s) + 1);
  noise.publication_depth = static_cast<unsigned>(std::lround(12 * s));
  noise.counters = static_cast<unsigned>(std::lround(2 * s));
  noise.safe_site_groups = static_cast<unsigned>(std::lround(1 * s));
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("main.c", 1);
    // fd order is deterministic: request log first (3), user HTML file (4).
    ir::Instruction* logfd = b.file_open(b.i64(10), "logfd");
    b.store(logfd, b.gep(logbuf, b.i64(kFdCell), "fdp"));
    ir::Instruction* htmlfd = b.file_open(b.i64(20), "htmlfd");
    b.store(htmlfd, html_fd_g);
    // PHP pool starts allocated.
    ir::Instruction* pool = b.malloc_cells(b.i64(2), "pool0");
    b.store(pool, php_pool);

    std::vector<ir::Instruction*> tids;
    tids.push_back(b.thread_create(logger, b.i64(0), "l0"));
    tids.push_back(b.thread_create(logger, b.i64(1), "l1"));
    tids.push_back(b.thread_create(php_worker, b.i64(0), "p0"));
    ir::Instruction* p1_at = b.input(b.i64(9), "p1_at");
    tids.push_back(b.thread_create(php_worker, p1_at, "p1"));
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(
          b.thread_create(const_cast<ir::Function*>(entry_fn), b.i64(0)));
    }
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  // inputs: [log_reps, entry_len, -, -, -, payload_value, format_io,
  //          php_shutdown_io, php_reps, php_worker2_at]
  w.testing_inputs = {3, 2, 0, 0, 0, 7, 1, 1, 2, 9000};
  // Exploit: payload value 4 == the HTML file's fd; the formatting window
  // is stretched so a stale bounds check meets a fresh index at outcnt 8.
  w.exploit_inputs = {10, 2, 0, 0, 0, 4, 12, 14, 10, 0};
  w.known_attacks = 2;
  w.thread_order = {1, 2, 3, 4};
  w.max_steps = 400'000;

  w.attack_succeeded = [](const interp::Machine& machine) {
    // HTML integrity violation: the log flush wrote to the HTML file's fd.
    const interp::Word html_fd = machine.read_global("html_fd");
    for (const interp::FileWriteRecord& rec : machine.file_writes()) {
      if (rec.fd == html_fd && rec.instr != nullptr &&
          rec.instr->loc().line == 1343) {
        return true;
      }
    }
    return machine.has_event(interp::SecurityEventKind::kDoubleFree);
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    bool memcpy_site = false;
    bool free_site = false;
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site == nullptr) continue;
      if (attack.exploit.site->opcode() == ir::Opcode::kMemCopy &&
          attack.exploit.site->loc().line == 1359) {
        memcpy_site = true;
      }
      if (attack.exploit.site->opcode() == ir::Opcode::kFree &&
          attack.exploit.site->loc().line == 805) {
        free_site = true;
      }
    }
    return memcpy_site && free_site;
  };
  w.attacks_found = [](const core::PipelineResult& result) {
    bool memcpy_site = false;
    bool free_site = false;
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site == nullptr) continue;
      if (attack.exploit.site->opcode() == ir::Opcode::kMemCopy &&
          attack.exploit.site->loc().line == 1359) {
        memcpy_site = true;
      }
      if (attack.exploit.site->opcode() == ir::Opcode::kFree &&
          attack.exploit.site->loc().line == 805) {
        free_site = true;
      }
    }
    return static_cast<std::size_t>(memcpy_site) +
           static_cast<std::size_t>(free_site);
  };
  return w;
}

}  // namespace owl::workloads
