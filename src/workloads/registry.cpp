#include "workloads/registry.hpp"

#include <stdexcept>

namespace owl::workloads {

std::vector<Workload> make_all(const NoiseProfile& profile) {
  std::vector<Workload> all;
  all.push_back(make_apache_log(profile));
  all.push_back(make_apache_balancer(profile));
  all.push_back(make_mysql_flush(profile));
  all.push_back(make_mysql_setpass(profile));
  all.push_back(make_ssdb(profile));
  all.push_back(make_chrome(profile));
  all.push_back(make_libsafe(profile));
  all.push_back(make_linux(profile));
  all.push_back(make_memcached(profile));
  return all;
}

Workload make_by_name(std::string_view name, const NoiseProfile& profile) {
  if (name == "libsafe") return make_libsafe(profile);
  if (name == "linux") return make_linux(profile);
  if (name == "mysql-flush") return make_mysql_flush(profile);
  if (name == "mysql-setpass") return make_mysql_setpass(profile);
  if (name == "ssdb") return make_ssdb(profile);
  if (name == "apache-log") return make_apache_log(profile);
  if (name == "apache-balancer") return make_apache_balancer(profile);
  if (name == "chrome") return make_chrome(profile);
  if (name == "memcached") return make_memcached(profile);
  if (name == "bank-atomicity") return make_bank_atomicity(profile);
  throw std::invalid_argument("unknown workload: " + std::string(name));
}

}  // namespace owl::workloads
