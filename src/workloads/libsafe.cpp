// Libsafe-2.0-16 model — the paper's running example (Fig. 1, §4.3).
//
// Libsafe intercepts libc memory functions and checks for stack overflows.
// When it detects one it sets the global `dying` and kills the process
// "shortly"; until then, any thread that reads dying == 1 skips the checks
// entirely (util.c:145-146). The window between `dying = 1` and process
// death lets a concurrent attacker run a raw strcpy past the check — a
// stack overflow that Libsafe exists to prevent — and inject code.
//
// Model layout per request handler: an 8-cell stack buffer, then a one-cell
// "return slot" holding the address of the normal epilogue function. An
// overflowing strcpy reaches the return slot; the epilogue's indirect call
// then jumps wherever the attacker's payload points (our code-injection
// equivalent: the payload carries the id of @attacker_shell, which eval()s
// the attacker's command).
#include "workloads/registry.hpp"

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

Workload make_libsafe(const NoiseProfile& profile) {
  Workload w;
  w.name = "libsafe-2.0-16";
  w.program = "Libsafe";
  w.description =
      "dying-flag race bypasses stack_check; strcpy overflow + code injection";
  w.vuln_type = "Buffer Overflow";
  w.subtle_inputs = "Loops with strcpy()";
  w.paper_loc = 3'400;
  w.paper_raw_reports = 3;

  auto module = std::make_shared<ir::Module>("libsafe");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  ir::GlobalVariable* dying = m.add_global("dying");

  // --- @attacker_shell: what injected code "does" once control arrives ---
  ir::Function* shell = m.add_function("attacker_shell", ir::Type::i64());
  {
    b.set_insert_point(shell->add_block("entry"));
    b.set_loc("shellcode", 1);
    b.eval_(b.i64(1337));  // the attacker's command
    b.ret(b.i64(0));
  }

  // --- @normal_return: the legitimate epilogue target ---
  ir::Function* normal_ret = m.add_function("normal_return", ir::Type::i64());
  {
    b.set_insert_point(normal_ret->add_block("entry"));
    b.set_loc("intercept.c", 190);
    b.ret(b.i64(0));
  }

  // --- @libsafe_die: flags the process as dying (Fig. 1 line 1640) ---
  ir::Function* die = m.add_function("libsafe_die", ir::Type::void_type());
  {
    b.set_insert_point(die->add_block("entry"));
    b.set_loc("libsafe.c", 1640);
    b.store(b.i64(1), dying);
    b.ret();
  }

  // --- @stack_check(dst, src) -> 0 = proceed, 1 = blocked (util.c:117) ---
  ir::Function* check = m.add_function("stack_check", ir::Type::i64());
  {
    ir::Argument* dst = check->add_argument(ir::Type::ptr(), "dst");
    (void)dst;
    ir::Argument* src = check->add_argument(ir::Type::ptr(), "src");
    ir::BasicBlock* entry = check->add_block("entry");
    ir::BasicBlock* bypass = check->add_block("bypass");
    ir::BasicBlock* measure = check->add_block("measure");
    ir::BasicBlock* len_loop = check->add_block("len_loop");
    ir::BasicBlock* len_cont = check->add_block("len_cont");
    ir::BasicBlock* len_done = check->add_block("len_done");
    ir::BasicBlock* ok = check->add_block("ok");
    ir::BasicBlock* overflow = check->add_block("overflow");

    b.set_insert_point(entry);
    b.set_loc("util.c", 145);
    ir::Instruction* d = b.load(dying, "d");          // the racy read
    ir::Instruction* is_dying =
        b.icmp(ir::CmpPredicate::kNe, d, b.i64(0), "is_dying");
    b.br(is_dying, bypass, measure);

    b.set_insert_point(bypass);
    b.set_loc("util.c", 146);
    b.ret(b.i64(0));  // "return 0; // Bypass check."

    b.set_insert_point(measure);
    b.set_loc("util.c", 120);
    b.jmp(len_loop);

    b.set_insert_point(len_loop);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    b.set_loc("util.c", 121);
    ir::Instruction* p = b.gep(src, i, "p");
    ir::Instruction* ch = b.load(p, "ch");
    ir::Instruction* nz = b.icmp(ir::CmpPredicate::kNe, ch, b.i64(0), "nz");
    b.br(nz, len_cont, len_done);

    b.set_insert_point(len_cont);
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(len_loop);
    i->add_phi_incoming(b.i64(0), measure);
    i->add_phi_incoming(inext, len_cont);

    b.set_insert_point(len_done);
    b.set_loc("util.c", 130);
    ir::Instruction* fits = b.icmp(ir::CmpPredicate::kULt, i, b.i64(8), "fits");
    b.br(fits, ok, overflow);

    b.set_insert_point(ok);
    b.ret(b.i64(0));  // fits: proceed with the copy

    b.set_insert_point(overflow);
    b.set_loc("util.c", 135);
    b.call(die, {});
    b.ret(b.i64(1));  // blocked
  }

  // --- @libsafe_strcpy(dst, src) (intercept.c:151) ---
  ir::Function* lscpy = m.add_function("libsafe_strcpy", ir::Type::void_type());
  {
    ir::Argument* dst = lscpy->add_argument(ir::Type::ptr(), "dst");
    ir::Argument* src = lscpy->add_argument(ir::Type::ptr(), "src");
    ir::BasicBlock* entry = lscpy->add_block("entry");
    ir::BasicBlock* do_copy = lscpy->add_block("do_copy");
    ir::BasicBlock* blocked = lscpy->add_block("blocked");

    b.set_insert_point(entry);
    b.set_loc("intercept.c", 164);
    ir::Instruction* c = b.call(check, {dst, src}, "c");
    ir::Instruction* passes = b.icmp(ir::CmpPredicate::kEq, c, b.i64(0), "ok");
    b.br(passes, do_copy, blocked);

    b.set_insert_point(do_copy);
    b.set_loc("intercept.c", 165);
    b.strcpy_(dst, src);  // the vulnerable site
    b.ret();

    b.set_insert_point(blocked);
    b.set_loc("intercept.c", 170);
    b.ret();
  }

  // --- @handle_request(id): one simulated client request ---
  // Stack frame: buf[8] then ret_slot[1] (the injection target).
  ir::Function* handler = m.add_function("handle_request", ir::Type::void_type());
  {
    ir::Argument* id = handler->add_argument(ir::Type::i64(), "id");
    ir::BasicBlock* entry = handler->add_block("entry");
    ir::BasicBlock* fill_loop = handler->add_block("fill_loop");
    ir::BasicBlock* fill_body = handler->add_block("fill_body");
    ir::BasicBlock* send = handler->add_block("send");

    b.set_insert_point(entry);
    b.set_loc("server.c", 10);
    ir::Instruction* buf = b.alloca_cells(8, "buf");
    ir::Instruction* ret_slot = b.alloca_cells(1, "ret_slot");
    b.store(m.get_constant(ir::Type::i64(),
                           static_cast<std::int64_t>(normal_ret->id())),
            ret_slot);
    ir::Instruction* src = b.alloca_cells(64, "src");
    ir::Instruction* len = b.input(id, "len");
    ir::Instruction* delay = b.input(b.add(id, b.i64(2)), "delay");
    ir::Instruction* marker = b.input(b.i64(4), "marker");
    b.jmp(fill_loop);

    b.set_insert_point(fill_loop);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, len, "more");
    b.br(more, fill_body, send);

    b.set_insert_point(fill_body);
    b.set_loc("server.c", 20);
    ir::Instruction* slot = b.gep(src, i, "slot");
    b.store(marker, slot);
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(fill_loop);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, fill_body);

    b.set_insert_point(send);
    b.set_loc("server.c", 30);
    b.io_delay(delay);  // request arrival timing — the attacker's knob
    b.call(lscpy, {buf, src});
    // Epilogue: indirect jump through the (possibly overwritten) slot.
    b.set_loc("server.c", 40);
    ir::Instruction* target = b.load(ret_slot, "target");
    b.callptr(target, {}, "epi");
    b.ret();
  }

  // --- noise (Libsafe is tiny: the paper reports just 3 raw races; one
  // benign stats counter supplies the other two) ---
  NoiseSpec noise;
  noise.counters = 1;
  noise.tag = "ls_noise";
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  // --- @main ---
  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("server.c", 1);
    ir::Instruction* t0 = b.thread_create(handler, b.i64(0), "t0");
    ir::Instruction* t1 = b.thread_create(handler, b.i64(1), "t1");
    std::vector<ir::Instruction*> tids{t0, t1};
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(b.thread_create(const_cast<ir::Function*>(entry_fn),
                                     b.i64(0)));
    }
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }
  (void)profile;

  w.module = module;
  w.entry = main_fn;
  // inputs: [len_t0, len_t1, delay_t0, delay_t1, marker]
  // Testing: one boundary-length request trips the overflow detector (so
  // the dying store executes) alongside a normal request — a plausible
  // stress benchmark; no attack manifests.
  w.testing_inputs = {9, 5, 0, 2, 7};
  // Exploit (Table 4 "loops with strcpy()"): two oversized requests; the
  // first trips libsafe_die, the second is timed into the dying window and
  // carries the shell's address at payload position 9 (the return slot).
  w.exploit_inputs = {12, 12, 0, 200,
                      static_cast<interp::Word>(shell->id())};
  w.known_attacks = 1;
  w.thread_order = {1, 2};  // let the dying thread run first
  w.detection_schedules = 4;

  w.attack_succeeded = [](const interp::Machine& machine) {
    // The injected "shellcode" ran: our root-shell equivalent.
    for (const interp::EvalRecord& rec : machine.evals()) {
      if (rec.command_id == 1337) return true;
    }
    return false;
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site != nullptr &&
          attack.exploit.site->opcode() == ir::Opcode::kStrCpy &&
          attack.verification.site_reached) {
        return true;
      }
    }
    return false;
  };
  return w;
}

}  // namespace owl::workloads
