// MySQL-5.1.35 model — "SET PASSWORD" double free (Table 4).
//
// Two sessions executing SET PASSWORD race on the shared scrambled-password
// buffer: each loads the buffer pointer, frees it, and installs a fresh
// allocation. If both load the same pointer before either re-installs, the
// second free() frees already-freed memory — a classic concurrency-driven
// double free, exploitable for heap corruption.
#include "workloads/registry.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

Workload make_mysql_setpass(const NoiseProfile& profile) {
  Workload w;
  w.name = "mysql-5.1.35";
  w.program = "MySQL";
  w.description = "SET PASSWORD buffer-pointer race; double free";
  w.vuln_type = "Double Free";
  w.subtle_inputs = "SET PASSWORD";
  w.paper_loc = 1'500'000;
  w.paper_raw_reports = 1'123;

  auto module = std::make_shared<ir::Module>("mysql_5_1_35");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  ir::GlobalVariable* pass_buf = m.add_global("pass_buf");

  // --- replace_buffer(p): frees the old scramble buffer and installs a
  // fresh one. The double free happens one call below the racy read
  // (paper Finding II: bug and site in different functions, data flow
  // through the call argument) ---
  ir::Function* replace_fn =
      m.add_function("replace_buffer", ir::Type::void_type());
  {
    ir::Argument* p = replace_fn->add_argument(ir::Type::ptr(), "p");
    b.set_insert_point(replace_fn->add_block("entry"));
    b.set_loc("password.cc", 205);
    b.free_ptr(p);  // vulnerable site (memory operation)
    b.set_loc("password.cc", 208);
    ir::Instruction* fresh = b.malloc_cells(b.i64(4), "fresh");
    b.set_loc("password.cc", 210);
    b.store(fresh, pass_buf);  // racy write
    b.ret();
  }

  // --- set_password: load ptr, (parse delay), delegate replacement ---
  ir::Function* setpass = m.add_function("set_password", ir::Type::void_type());
  {
    ir::BasicBlock* entry = setpass->add_block("entry");
    ir::BasicBlock* replace = setpass->add_block("replace");
    ir::BasicBlock* skip = setpass->add_block("skip");

    b.set_insert_point(entry);
    b.set_loc("password.cc", 100);
    ir::Instruction* p = b.load(pass_buf, "p");  // racy read
    ir::Instruction* present =
        b.icmp(ir::CmpPredicate::kNe, p, b.i64(0), "present");
    b.set_loc("password.cc", 102);
    b.br(present, replace, skip);

    b.set_insert_point(replace);
    b.set_loc("password.cc", 103);
    ir::Instruction* parse = b.input(b.i64(1), "parse_io");
    b.io_delay(parse);  // scrambling the new password
    b.set_loc("password.cc", 105);
    b.call(replace_fn, {p});
    b.ret();

    b.set_insert_point(skip);
    b.ret();
  }

  // --- session thread: repeated SET PASSWORD statements ---
  ir::Function* session = m.add_function("session", ir::Type::void_type());
  {
    ir::Argument* phase = session->add_argument(ir::Type::i64(), "phase");
    ir::BasicBlock* entry = session->add_block("entry");
    ir::BasicBlock* header = session->add_block("header");
    ir::BasicBlock* body = session->add_block("body");
    ir::BasicBlock* done = session->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("sql_parse.cc", 900);
    b.io_delay(phase);
    ir::Instruction* reps = b.input(b.i64(0), "reps");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("sql_parse.cc", 910);
    b.call(setpass, {});
    b.io_delay(b.i64(2));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  const double s = profile.scale;
  NoiseSpec noise;
  noise.tag = "my51";
  noise.adhoc_groups = 3;
  noise.adhoc_guarded = static_cast<unsigned>(std::lround(5 * s) + 1);
  noise.publication_depth = static_cast<unsigned>(std::lround(15 * s));
  noise.counters = static_cast<unsigned>(std::lround(3 * s));
  noise.safe_site_groups = static_cast<unsigned>(std::lround(1 * s));
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("mysqld.cc", 1);
    // Install the initial password buffer before any session starts.
    ir::Instruction* init = b.malloc_cells(b.i64(4), "init");
    b.store(init, pass_buf);
    std::vector<ir::Instruction*> tids;
    tids.push_back(b.thread_create(session, b.i64(0), "s1"));
    ir::Instruction* s2_at = b.input(b.i64(2), "s2_at");
    tids.push_back(b.thread_create(session, s2_at, "s2"));
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(
          b.thread_create(const_cast<ir::Function*>(entry_fn), b.i64(0)));
    }
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  // inputs: [reps_per_session, parse_io, second_session_at]
  w.testing_inputs = {2, 1, 9000};
  // Exploit: repeated SET PASSWORD with a long scramble delay so both
  // sessions hold the same stale pointer.
  w.exploit_inputs = {12, 15, 0};
  w.known_attacks = 1;
  w.thread_order = {1, 2};
  w.max_steps = 400'000;

  w.attack_succeeded = [](const interp::Machine& machine) {
    return machine.has_event(interp::SecurityEventKind::kDoubleFree);
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site != nullptr &&
          attack.exploit.site->opcode() == ir::Opcode::kFree &&
          attack.exploit.site->loc().line == 205 &&
          attack.verification.site_reached) {
        return true;
      }
    }
    return false;
  };
  return w;
}

}  // namespace owl::workloads
