// SSDB-1.9.2 model — the previously-unknown use-after-free OWL found,
// confirmed as CVE-2016-1000324 (paper Fig. 6, §8.4).
//
// During shutdown, BinlogQueue's destructor frees the LevelDB handle and
// sets db = NULL (line 200). log_clean_thread_func polls thread_quit and
// db in its cleaning loop (lines 358-359); if line 359 runs before line
// 200, the loop fails to break and del_range dereferences db — a use after
// free, and line 347's db->Write is a function-pointer dereference that can
// execute from reused memory.
//
// The shutdown flag/db checks look like adhoc synchronization but guard a
// loop that does real work — which is exactly why OWL's busy-wait
// classifier must NOT prune them (Table 3: SSDB has 0 adhoc syncs).
#include "workloads/registry.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

Workload make_ssdb(const NoiseProfile& profile) {
  Workload w;
  w.name = "ssdb-1.9.2";
  w.program = "SSDB";
  w.description =
      "BinlogQueue shutdown race; use after free (CVE-2016-1000324)";
  w.vuln_type = "Use After Free";
  w.subtle_inputs = "shutdown during log compaction";
  w.paper_loc = 67'000;
  w.paper_raw_reports = 12;

  auto module = std::make_shared<ir::Module>("ssdb_1_9_2");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  // --- the LevelDB write the db "vtable" points at ---
  ir::Function* write_impl = m.add_function("leveldb_write", ir::Type::i64());
  {
    b.set_insert_point(write_impl->add_block("entry"));
    b.set_loc("leveldb.cc", 50);
    b.ret(b.i64(0));
  }

  ir::GlobalVariable* thread_quit = m.add_global("thread_quit");
  ir::GlobalVariable* db = m.add_global("db");

  // --- del_range: uses db->Write (Fig. 6 lines 341-351) ---
  ir::Function* del_range = m.add_function("del_range", ir::Type::void_type());
  {
    ir::BasicBlock* entry = del_range->add_block("entry");
    ir::BasicBlock* header = del_range->add_block("header");
    ir::BasicBlock* body = del_range->add_block("body");
    ir::BasicBlock* done = del_range->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("binlog.cpp", 341);
    ir::Instruction* reps = b.input(b.i64(1), "range");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    b.set_loc("binlog.cpp", 342);
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("binlog.cpp", 344);
    ir::Instruction* compact = b.input(b.i64(3), "compact_io");
    b.io_delay(compact);  // per-range compaction IO — widens the window
    b.set_loc("binlog.cpp", 345);
    ir::Instruction* d = b.load(db, "d");
    b.set_loc("binlog.cpp", 346);
    ir::Instruction* vt = b.load(d, "vt");  // reads freed object (UAF)
    b.set_loc("binlog.cpp", 347);
    b.callptr(vt, {}, "s");  // Status s = db->Write(...): vulnerable site
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  // --- log_clean_thread_func (Fig. 6 lines 355-380) ---
  ir::Function* log_clean =
      m.add_function("log_clean_thread_func", ir::Type::void_type());
  {
    ir::BasicBlock* entry = log_clean->add_block("entry");
    ir::BasicBlock* header = log_clean->add_block("header");
    ir::BasicBlock* check_db = log_clean->add_block("check_db");
    ir::BasicBlock* work = log_clean->add_block("work");
    ir::BasicBlock* done = log_clean->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("binlog.cpp", 356);
    ir::Instruction* cap = b.input(b.i64(2), "clean_cycles");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    b.set_loc("binlog.cpp", 358);
    ir::Instruction* q = b.load(thread_quit, "quit");
    ir::Instruction* keep =
        b.icmp(ir::CmpPredicate::kEq, q, b.i64(0), "keep");
    ir::Instruction* in_cap = b.icmp(ir::CmpPredicate::kSLt, i, cap, "incap");
    ir::Instruction* go = b.and_(keep, in_cap, "go");
    b.br(go, check_db, done);

    b.set_insert_point(check_db);
    b.set_loc("binlog.cpp", 359);
    ir::Instruction* d = b.load(db, "logs_db");  // the racy read
    ir::Instruction* gone =
        b.icmp(ir::CmpPredicate::kEq, d, b.i64(0), "gone");
    b.set_loc("binlog.cpp", 360);
    b.br(gone, done, work);  // "break" when db == NULL

    b.set_insert_point(work);
    b.set_loc("binlog.cpp", 371);
    b.call(del_range, {});  // logs->del_range(start, end)
    b.io_delay(b.i64(2));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, work);

    b.set_insert_point(done);
    b.ret();
  }

  // --- ~BinlogQueue (Fig. 6 lines 190-201) ---
  ir::Function* dtor = m.add_function("binlog_queue_dtor", ir::Type::void_type());
  {
    b.set_insert_point(dtor->add_block("entry"));
    b.set_loc("binlog.cpp", 190);
    ir::Instruction* when = b.input(b.i64(0), "shutdown_at");
    b.io_delay(when);
    b.set_loc("binlog.cpp", 198);
    ir::Instruction* old = b.load(db, "old");
    b.free_ptr(old);  // delete db
    b.set_loc("binlog.cpp", 200);
    b.store(b.null_ptr(), db);  // db = NULL — the racy write
    b.ret();
  }

  const double s = profile.scale;
  NoiseSpec noise;
  noise.tag = "ssdb";
  noise.publication_depth = static_cast<unsigned>(std::lround(5 * s));
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("ssdb.cpp", 1);
    // Bring up the database handle before any thread runs.
    ir::Instruction* handle = b.malloc_cells(b.i64(2), "handle");
    b.store(m.get_constant(ir::Type::i64(),
                           static_cast<std::int64_t>(write_impl->id())),
            handle);
    b.store(handle, db);

    std::vector<ir::Instruction*> tids;
    tids.push_back(b.thread_create(log_clean, b.i64(0), "t_clean"));
    tids.push_back(b.thread_create(dtor, b.i64(0), "t_dtor"));
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(
          b.thread_create(const_cast<ir::Function*>(entry_fn), b.i64(0)));
    }
    b.thread_join(tids[1]);           // shutdown completes...
    b.store(b.i64(1), thread_quit);   // ...then the quit flag is raised
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  // inputs: [shutdown_at, del_range_width, clean_cycles, compact_io]
  w.testing_inputs = {9000, 1, 8, 1};
  // Exploit: shut down mid-compaction with a wide, slow del_range so the
  // cleaner holds the handle across the free.
  w.exploit_inputs = {30, 6, 30, 6};
  w.known_attacks = 1;
  w.thread_order = {2, 1};  // destructor first, cleaner into the window
  w.max_steps = 400'000;

  w.attack_succeeded = [](const interp::Machine& machine) {
    return machine.has_event(interp::SecurityEventKind::kUseAfterFree) ||
           machine.has_event(interp::SecurityEventKind::kNullFuncPtrDeref);
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site != nullptr &&
          attack.exploit.site->opcode() == ir::Opcode::kCallPtr &&
          attack.exploit.site->loc().line == 347 &&
          attack.verification.site_reached) {
        return true;
      }
    }
    return false;
  };
  return w;
}

}  // namespace owl::workloads
