#include "workloads/workload.hpp"

namespace owl::workloads {

std::unique_ptr<interp::Machine> Workload::make_machine(
    const std::vector<interp::Word>& inputs) const {
  interp::MachineOptions options;
  options.inputs = inputs;
  options.max_steps = max_steps;
  options.authorized_root = authorized_root;
  auto machine = std::make_unique<interp::Machine>(*module, options);
  machine->start(entry);
  return machine;
}

race::MachineFactory Workload::factory(bool use_exploit_inputs) const {
  // Capture by value: the factory must outlive this Workload's stack frame
  // but shares the module via shared_ptr.
  const std::shared_ptr<ir::Module> mod = module;
  const std::vector<interp::Word> inputs =
      use_exploit_inputs ? exploit_inputs : testing_inputs;
  const ir::Function* entry_fn = entry;
  const std::uint64_t steps = max_steps;
  const bool root = authorized_root;
  return [mod, inputs, entry_fn, steps, root] {
    interp::MachineOptions options;
    options.inputs = inputs;
    options.max_steps = steps;
    options.authorized_root = root;
    auto machine = std::make_unique<interp::Machine>(*mod, options);
    machine->start(entry_fn);
    return machine;
  };
}

core::PipelineTarget Workload::target(std::uint64_t seed) const {
  core::PipelineTarget t;
  t.name = name;
  t.module = module.get();
  t.factory = factory(/*use_exploit_inputs=*/false);
  t.exploit_factory = factory(/*use_exploit_inputs=*/true);
  t.thread_order = thread_order;
  t.detector = detector;
  t.detection_schedules = detection_schedules;
  t.seed = seed;
  return t;
}

core::PipelineOptions Workload::pipeline_options() const {
  core::PipelineOptions options;
  if (!dynamic_verifiers_supported) {
    // The paper could not run its LLDB-based verifiers on kernels (§8.3);
    // the same applies to our SKI-mode kernel targets for fidelity.
    options.enable_race_verifier = false;
    options.enable_vuln_verifier = false;
  }
  return options;
}

}  // namespace owl::workloads
