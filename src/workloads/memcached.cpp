// Memcached model — the evaluation's benign control target (Table 3 row:
// 5,376 raw reports, 0 adhoc syncs, 5,372 eliminated by the race verifier,
// 4 remaining, no attacks). All of its report volume is one-shot slab/LRU
// initialization published through racy flags — precisely the class the
// §5.2 verifier cannot re-catch "in the racing moment" — plus a couple of
// genuinely racy (but benign) statistics counters.
#include "workloads/registry.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

Workload make_memcached(const NoiseProfile& profile) {
  Workload w;
  w.name = "memcached-1.4";
  w.program = "Memcached";
  w.description = "benign-only control target (publication + stats races)";
  w.vuln_type = "-";
  w.subtle_inputs = "-";
  w.paper_loc = 120'000;
  w.paper_raw_reports = 5'376;

  auto module = std::make_shared<ir::Module>("memcached_1_4");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  const double s = profile.scale;
  NoiseSpec noise;
  noise.tag = "mc";
  noise.publication_depth = static_cast<unsigned>(std::lround(266 * s)) + 1;
  noise.counters = static_cast<unsigned>(std::lround(2 * s));
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("memcached.c", 1);
    std::vector<ir::Instruction*> tids;
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(
          b.thread_create(const_cast<ir::Function*>(entry_fn), b.i64(0)));
    }
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  w.testing_inputs = {};
  w.exploit_inputs = {};
  w.known_attacks = 0;
  w.max_steps = 400'000;

  w.attack_succeeded = [](const interp::Machine&) { return false; };
  w.attack_detected = [](const core::PipelineResult&) { return false; };
  return w;
}

}  // namespace owl::workloads
