// Benign-race background noise.
//
// Race detectors bury vulnerable races under thousands of benign reports
// (Table 1: 28,209 reports across the study; Table 3: 94.3% pruned). Each
// noise class below is engineered to be pruned by the same pipeline stage
// that prunes its real-world counterpart:
//
//  - `adhoc_groups`   — busy-wait flag synchronizations guarding blocks of
//                       shared data: classified by §5.1, annotated, and all
//                       of their reports disappear on the re-run (the A.S.
//                       column; Linux's 24k→1.7k collapse works this way);
//  - `publication_depth` — a one-shot initialization chain publishing data
//                       through racy gate flags written in reverse order:
//                       every report except the outermost gate cannot be
//                       re-caught "in the racing moment" and is eliminated
//                       by the §5.2 race verifier (the R.V.E. column;
//                       Memcached's 5376→4 collapse works this way);
//  - `counters`       — unsynchronized statistics counters: genuine, benign,
//                       reproducible races that survive verification and
//                       populate the R. column;
//  - `safe_site_groups` — counter races whose value flows into a *bounded*
//                       memcpy: Algorithm 1 flags them (they reach a
//                       memory-operation site) but no attack is realizable;
//                       they populate OWL's residual reports in Table 2.
#pragma once

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace owl::workloads {

struct NoiseSpec {
  unsigned counters = 0;
  unsigned publication_depth = 0;
  unsigned adhoc_groups = 0;
  unsigned adhoc_guarded = 8;  ///< shared cells ordered by each adhoc sync
  unsigned safe_site_groups = 0;
  std::string tag = "noise";   ///< symbol prefix and fake source file name
};

/// Adds the noise structures to `module`; returns thread-entry functions
/// the workload's main must spawn (all take zero or one ignored argument).
std::vector<const ir::Function*> add_noise(ir::Module& module,
                                           const NoiseSpec& spec);

}  // namespace owl::workloads
