// Chrome-6.0.472.58 model — the JS console.profile() use-after-free
// (Table 4: "Js console.profile").
//
// The JS thread grabs the shared profiler object and, after a profiling
// delay, walks it and calls its collect hook. The browser's teardown path
// concurrently destroys the profiler and NULLs the pointer. A profile call
// straddling the teardown dereferences freed memory — exploitable for
// renderer code execution in the real browser.
#include "workloads/registry.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

Workload make_chrome(const NoiseProfile& profile) {
  Workload w;
  w.name = "chrome-6.0.472.58";
  w.program = "Chrome";
  w.description = "console.profile teardown race; use after free";
  w.vuln_type = "Use after free";
  w.subtle_inputs = "Js console.profile";
  w.paper_loc = 3'400'000;
  w.paper_raw_reports = 1'715;

  auto module = std::make_shared<ir::Module>("chrome_6_0");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  ir::Function* collect_impl = m.add_function("profiler_collect",
                                              ir::Type::i64());
  {
    b.set_insert_point(collect_impl->add_block("entry"));
    b.set_loc("v8/profiler.cc", 40);
    b.ret(b.i64(0));
  }

  ir::GlobalVariable* profiler = m.add_global("profiler");

  // --- collect_sample(p): dereferences the profiler object — the attack
  // site lives one call below the racy read (paper Finding II) ---
  ir::Function* collect = m.add_function("collect_sample", ir::Type::void_type());
  {
    ir::Argument* p = collect->add_argument(ir::Type::ptr(), "p");
    b.set_insert_point(collect->add_block("entry"));
    b.set_loc("v8/profiler.cc", 220);
    ir::Instruction* hook = b.load(p, "hook");  // UAF read when torn down
    b.set_loc("v8/profiler.cc", 225);
    b.callptr(hook, {}, "res");  // vulnerable site
    b.ret();
  }

  // --- console.profile(): the JS-visible entry ---
  ir::Function* js_profile = m.add_function("console_profile",
                                            ir::Type::void_type());
  {
    ir::BasicBlock* entry = js_profile->add_block("entry");
    ir::BasicBlock* use = js_profile->add_block("use");
    ir::BasicBlock* out = js_profile->add_block("out");

    b.set_insert_point(entry);
    b.set_loc("v8/profiler.cc", 210);
    ir::Instruction* p = b.load(profiler, "p");  // racy read
    ir::Instruction* live =
        b.icmp(ir::CmpPredicate::kNe, p, b.i64(0), "live");
    b.br(live, use, out);

    b.set_insert_point(use);
    b.set_loc("v8/profiler.cc", 218);
    ir::Instruction* sample = b.input(b.i64(0), "sample_ms");
    b.io_delay(sample);  // the profiling interval — attacker-chosen
    b.set_loc("v8/profiler.cc", 219);
    b.call(collect, {p});
    b.ret();

    b.set_insert_point(out);
    b.ret();
  }

  ir::Function* js_thread = m.add_function("js_thread", ir::Type::void_type());
  {
    ir::BasicBlock* entry = js_thread->add_block("entry");
    ir::BasicBlock* header = js_thread->add_block("header");
    ir::BasicBlock* body = js_thread->add_block("body");
    ir::BasicBlock* done = js_thread->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("v8/api.cc", 100);
    ir::Instruction* reps = b.input(b.i64(1), "profile_calls");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("v8/api.cc", 110);
    b.call(js_profile, {});
    b.io_delay(b.i64(1));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  // --- renderer teardown: destroys the profiler mid-profile ---
  ir::Function* teardown = m.add_function("renderer_teardown",
                                          ir::Type::void_type());
  {
    b.set_insert_point(teardown->add_block("entry"));
    b.set_loc("renderer/shutdown.cc", 300);
    ir::Instruction* when = b.input(b.i64(2), "teardown_at");
    b.io_delay(when);
    b.set_loc("renderer/shutdown.cc", 305);
    ir::Instruction* old = b.load(profiler, "old");
    b.free_ptr(old);
    b.set_loc("renderer/shutdown.cc", 307);
    b.store(b.null_ptr(), profiler);  // racy write
    b.ret();
  }

  const double s = profile.scale;
  NoiseSpec noise;
  noise.tag = "cr";
  noise.adhoc_groups = 1;
  noise.adhoc_guarded = static_cast<unsigned>(std::lround(40 * s) + 1);
  noise.publication_depth = static_cast<unsigned>(std::lround(56 * s));
  noise.counters = static_cast<unsigned>(std::lround(2 * s));
  noise.safe_site_groups = static_cast<unsigned>(std::lround(5 * s));
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("browser_main.cc", 1);
    ir::Instruction* obj = b.malloc_cells(b.i64(2), "profiler_obj");
    b.store(m.get_constant(ir::Type::i64(),
                           static_cast<std::int64_t>(collect_impl->id())),
            obj);
    b.store(obj, profiler);

    std::vector<ir::Instruction*> tids;
    tids.push_back(b.thread_create(js_thread, b.i64(0), "js"));
    tids.push_back(b.thread_create(teardown, b.i64(0), "td"));
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(
          b.thread_create(const_cast<ir::Function*>(entry_fn), b.i64(0)));
    }
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  // inputs: [sample_ms, profile_calls, teardown_at]
  w.testing_inputs = {1, 3, 9000};
  // Exploit: console.profile with a long sampling interval, page closed
  // mid-profile.
  w.exploit_inputs = {20, 6, 10};
  w.known_attacks = 1;
  w.thread_order = {2, 1};
  w.max_steps = 500'000;

  w.attack_succeeded = [](const interp::Machine& machine) {
    return machine.has_event(interp::SecurityEventKind::kUseAfterFree) ||
           machine.has_event(interp::SecurityEventKind::kNullFuncPtrDeref);
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site != nullptr &&
          attack.exploit.site->opcode() == ir::Opcode::kCallPtr &&
          attack.exploit.site->loc().line == 225 &&
          attack.verification.site_reached) {
        return true;
      }
    }
    return false;
  };
  return w;
}

}  // namespace owl::workloads
