#include "workloads/noise.hpp"

#include "ir/builder.hpp"

namespace owl::workloads {

namespace {

/// Unsynchronized statistics counters, incremented by two threads.
/// Each counter yields a (load,store) and a (store,store) report; both are
/// genuine races that re-verify, so they survive into the R. column.
const ir::Function* build_counters(ir::Module& m, const NoiseSpec& spec,
                                   unsigned& line) {
  ir::IRBuilder b(&m);
  ir::Function* f = m.add_function(spec.tag + "_counters", ir::Type::void_type());
  ir::BasicBlock* bb = f->add_block("entry");
  b.set_insert_point(bb);
  for (unsigned i = 0; i < spec.counters; ++i) {
    ir::GlobalVariable* ctr =
        m.add_global(spec.tag + "_ctr" + std::to_string(i));
    b.set_loc(spec.tag + "_noise.c", line++);
    ir::Instruction* v = b.load(ctr);
    b.set_loc(spec.tag + "_noise.c", line++);
    b.store(b.add(v, b.i64(1)), ctr);
  }
  b.ret();
  return f;
}

/// One-shot publication chain. The writer fills data slots, then opens the
/// gates in REVERSE order (gate_{L-1} ... gate_0). The reader (after an IO
/// delay so detection runs see the full descent) descends through the gates
/// in forward order. Re-verifying any inner report parks the writer before
/// gate_0 is ever written, so the reader bails out at the first gate and
/// the race cannot be caught in the racing moment — eliminated (R.V.E.).
/// Only the outermost gate_0 race re-verifies.
void build_publication(ir::Module& m, const NoiseSpec& spec, unsigned& line,
                       std::vector<const ir::Function*>& entries) {
  const unsigned depth = spec.publication_depth;
  if (depth == 0) return;

  std::vector<ir::GlobalVariable*> gates;
  std::vector<ir::GlobalVariable*> slots;
  for (unsigned i = 0; i < depth; ++i) {
    gates.push_back(m.add_global(spec.tag + "_gate" + std::to_string(i)));
    slots.push_back(m.add_global(spec.tag + "_slot" + std::to_string(i)));
  }

  ir::IRBuilder b(&m);
  {
    ir::Function* writer =
        m.add_function(spec.tag + "_pub_writer", ir::Type::void_type());
    b.set_insert_point(writer->add_block("entry"));
    for (unsigned i = 0; i < depth; ++i) {
      b.set_loc(spec.tag + "_noise.c", line++);
      b.store(b.i64(40 + i), slots[i]);
    }
    for (unsigned i = depth; i-- > 0;) {
      b.set_loc(spec.tag + "_noise.c", line++);
      b.store(b.i64(1), gates[i]);
    }
    b.ret();
    entries.push_back(writer);
  }
  {
    ir::Function* reader =
        m.add_function(spec.tag + "_pub_reader", ir::Type::void_type());
    ir::BasicBlock* bb = reader->add_block("entry");
    b.set_insert_point(bb);
    b.set_loc(spec.tag + "_noise.c", line++);
    // Sleep long enough for the writer to finish under any schedule, so
    // detection runs observe the full descent (the delay scales with the
    // chain because the writer's store count does too).
    b.io_delay(b.i64(100 + 30 * static_cast<std::int64_t>(depth)));
    ir::BasicBlock* done = reader->add_block("done");
    for (unsigned i = 0; i < depth; ++i) {
      b.set_loc(spec.tag + "_noise.c", line++);
      ir::Instruction* g = b.load(gates[i]);
      ir::Instruction* open =
          b.icmp(ir::CmpPredicate::kEq, g, b.i64(1));
      ir::BasicBlock* next =
          reader->add_block("lvl" + std::to_string(i));
      b.br(open, next, done);
      b.set_insert_point(next);
      b.set_loc(spec.tag + "_noise.c", line++);
      b.load(slots[i]);
    }
    b.jmp(done);
    b.set_insert_point(done);
    b.ret();
    entries.push_back(reader);
  }
}

/// Busy-wait adhoc synchronizations guarding blocks of shared data — the
/// SyncFinder pattern §5.1 classifies and annotates. Every report they
/// generate vanishes on the annotated re-run (the A.S. reduction).
void build_adhoc(ir::Module& m, const NoiseSpec& spec, unsigned& line,
                 std::vector<const ir::Function*>& entries) {
  if (spec.adhoc_groups == 0) return;

  std::vector<ir::GlobalVariable*> flags;
  std::vector<std::vector<ir::GlobalVariable*>> guarded(spec.adhoc_groups);
  for (unsigned g = 0; g < spec.adhoc_groups; ++g) {
    flags.push_back(m.add_global(spec.tag + "_flag" + std::to_string(g)));
    for (unsigned d = 0; d < spec.adhoc_guarded; ++d) {
      guarded[g].push_back(m.add_global(
          spec.tag + "_guard" + std::to_string(g) + "_" + std::to_string(d)));
    }
  }

  ir::IRBuilder b(&m);
  {
    // The setter initializes each guarded block, then raises its flag.
    ir::Function* setter =
        m.add_function(spec.tag + "_adhoc_setter", ir::Type::void_type());
    b.set_insert_point(setter->add_block("entry"));
    for (unsigned g = 0; g < spec.adhoc_groups; ++g) {
      for (ir::GlobalVariable* cell : guarded[g]) {
        b.set_loc(spec.tag + "_noise.c", line++);
        b.store(b.i64(7), cell);
      }
      b.set_loc(spec.tag + "_noise.c", line++);
      b.io_delay(b.i64(3));
      b.set_loc(spec.tag + "_noise.c", line++);
      b.store(b.i64(1), flags[g]);  // the "flag = true" the paper annotates
    }
    b.ret();
    entries.push_back(setter);
  }
  {
    // The waiter busy-waits on each flag, then consumes the guarded block.
    // Blocks are created up front so jumps can reference their targets.
    ir::Function* waiter =
        m.add_function(spec.tag + "_adhoc_waiter", ir::Type::void_type());
    ir::BasicBlock* entry_bb = waiter->add_block("entry");
    std::vector<ir::BasicBlock*> headers, spins, consumes;
    for (unsigned g = 0; g < spec.adhoc_groups; ++g) {
      headers.push_back(waiter->add_block("wait" + std::to_string(g)));
      spins.push_back(waiter->add_block("spin" + std::to_string(g)));
      consumes.push_back(waiter->add_block("consume" + std::to_string(g)));
    }
    ir::BasicBlock* done = waiter->add_block("done");

    b.set_insert_point(entry_bb);
    b.jmp(headers.front());
    for (unsigned g = 0; g < spec.adhoc_groups; ++g) {
      b.set_insert_point(headers[g]);
      b.set_loc(spec.tag + "_noise.c", line++);
      ir::Instruction* f = b.load(flags[g]);
      ir::Instruction* set = b.icmp(ir::CmpPredicate::kNe, f, b.i64(0));
      b.br(set, consumes[g], spins[g]);
      b.set_insert_point(spins[g]);
      b.set_loc(spec.tag + "_noise.c", line++);
      b.io_delay(b.i64(2));
      b.jmp(headers[g]);
      b.set_insert_point(consumes[g]);
      for (ir::GlobalVariable* cell : guarded[g]) {
        b.set_loc(spec.tag + "_noise.c", line++);
        b.load(cell);
      }
      b.jmp(g + 1 < spec.adhoc_groups ? headers[g + 1] : done);
    }
    b.set_insert_point(done);
    b.ret();
    entries.push_back(waiter);
  }
}

/// Benign counter races whose value flows (bounded) into a memcpy — they
/// reach a memory-operation site statically, so OWL keeps them as residual
/// vulnerability reports, but the bound keeps the attack unrealizable.
const ir::Function* build_safe_sites(ir::Module& m, const NoiseSpec& spec,
                                     unsigned& line) {
  ir::IRBuilder b(&m);
  ir::Function* f =
      m.add_function(spec.tag + "_stats", ir::Type::void_type());
  b.set_insert_point(f->add_block("entry"));
  ir::GlobalVariable* src = m.add_global(spec.tag + "_stat_src", 8, 5);
  for (unsigned i = 0; i < spec.safe_site_groups; ++i) {
    ir::GlobalVariable* stat =
        m.add_global(spec.tag + "_stat" + std::to_string(i));
    ir::GlobalVariable* buf =
        m.add_global(spec.tag + "_statbuf" + std::to_string(i), 8);
    b.set_loc(spec.tag + "_noise.c", line++);
    ir::Instruction* v = b.load(stat);
    b.set_loc(spec.tag + "_noise.c", line++);
    b.store(b.add(v, b.i64(1)), stat);
    // Bounded use of the racy value: len in [0,3], buffer holds 8.
    b.set_loc(spec.tag + "_noise.c", line++);
    ir::Instruction* len = b.and_(v, b.i64(3));
    b.set_loc(spec.tag + "_noise.c", line++);
    b.memcpy_(buf, src, len);
  }
  b.ret();
  return f;
}

}  // namespace

std::vector<const ir::Function*> add_noise(ir::Module& module,
                                           const NoiseSpec& spec) {
  std::vector<const ir::Function*> entries;
  unsigned line = 1000;

  if (spec.counters > 0) {
    const ir::Function* counters = build_counters(module, spec, line);
    entries.push_back(counters);
    entries.push_back(counters);  // two racing incrementers
  }
  build_publication(module, spec, line, entries);
  build_adhoc(module, spec, line, entries);
  if (spec.safe_site_groups > 0) {
    const ir::Function* stats = build_safe_sites(module, spec, line);
    entries.push_back(stats);
    entries.push_back(stats);
  }
  return entries;
}

}  // namespace owl::workloads
