// MySQL-5.0.27 model — bug 24988, "FLUSH PRIVILEGES" privilege escalation
// (paper §3.1 Finding III, Table 4).
//
// FLUSH PRIVILEGES clears the in-memory ACL cache and reloads it from the
// grant tables. While the cache is empty, a concurrently authenticating
// connection finds no ACL entries and falls into the permissive path —
// the paper reports corrupting another user's privilege table with only 18
// repeated "flush privileges;" executions. We model the empty-cache grant
// as an unauthorized setuid(0): the privilege-operation vulnerable site.
#include "workloads/registry.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

Workload make_mysql_flush(const NoiseProfile& profile) {
  Workload w;
  w.name = "mysql-5.0.27";
  w.program = "MySQL";
  w.description = "FLUSH PRIVILEGES ACL-cache race; privilege escalation";
  w.vuln_type = "Access Permission";
  w.subtle_inputs = "FLUSH PRIVILEGES";
  w.paper_loc = 1'500'000;
  w.paper_raw_reports = 1'123;

  auto module = std::make_shared<ir::Module>("mysql_5_0_27");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  ir::GlobalVariable* acl_loaded = m.add_global("acl_loaded", 1, 1);

  // --- acl_grant_all: the permissive path taken on an empty cache.
  // Keeping it in its own function mirrors the real code and the paper's
  // Finding II: the bug (the racy read in check_grant) and its attack site
  // live in different functions, connected by control flow.
  ir::Function* grant_fn = m.add_function("acl_grant_all", ir::Type::void_type());
  {
    b.set_insert_point(grant_fn->add_block("entry"));
    b.set_loc("sql_acl.cc", 2100);
    b.setuid_(b.i64(0));  // vulnerable site
    b.ret();
  }

  // --- check_grant: the authentication path reading the ACL cache ---
  ir::Function* check_grant = m.add_function("check_grant", ir::Type::void_type());
  {
    ir::BasicBlock* entry = check_grant->add_block("entry");
    ir::BasicBlock* grant_all = check_grant->add_block("grant_all");
    ir::BasicBlock* normal = check_grant->add_block("normal");

    b.set_insert_point(entry);
    b.set_loc("sql_acl.cc", 3300);
    ir::Instruction* a = b.load(acl_loaded, "acl");  // racy read
    ir::Instruction* empty =
        b.icmp(ir::CmpPredicate::kEq, a, b.i64(0), "empty");
    b.set_loc("sql_acl.cc", 3302);
    b.br(empty, grant_all, normal);

    b.set_insert_point(grant_all);
    // Empty cache: no entries to deny — the connection is treated as
    // privileged (the bug's consequence).
    b.set_loc("sql_acl.cc", 3310);
    b.call(grant_fn, {});
    b.ret();

    b.set_insert_point(normal);
    b.set_loc("sql_acl.cc", 3320);
    b.file_access(b.i64(2));  // ordinary grant-table lookup
    b.ret();
  }

  // --- flush handler: clear, reload (with table-scan IO between) ---
  ir::Function* flush_fn = m.add_function("acl_reload", ir::Type::void_type());
  {
    ir::BasicBlock* entry = flush_fn->add_block("entry");
    ir::BasicBlock* header = flush_fn->add_block("header");
    ir::BasicBlock* body = flush_fn->add_block("body");
    ir::BasicBlock* done = flush_fn->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("sql_acl.cc", 1190);
    ir::Instruction* reps = b.input(b.i64(0), "flush_reps");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("sql_acl.cc", 1200);
    b.store(b.i64(0), acl_loaded);  // cache cleared — the window opens
    ir::Instruction* scan = b.input(b.i64(1), "table_scan_io");
    b.io_delay(scan);               // re-reading grant tables from disk
    b.set_loc("sql_acl.cc", 1210);
    b.store(b.i64(1), acl_loaded);  // reloaded — the window closes
    b.io_delay(b.i64(2));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  // --- connection thread: repeated authenticating queries ---
  ir::Function* conn_fn = m.add_function("handle_connection", ir::Type::void_type());
  {
    ir::BasicBlock* entry = conn_fn->add_block("entry");
    ir::BasicBlock* header = conn_fn->add_block("header");
    ir::BasicBlock* body = conn_fn->add_block("body");
    ir::BasicBlock* done = conn_fn->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("sql_parse.cc", 400);
    ir::Instruction* connect_at = b.input(b.i64(3), "connect_at");
    b.io_delay(connect_at);
    ir::Instruction* reps = b.input(b.i64(2), "query_reps");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("sql_parse.cc", 410);
    b.call(check_grant, {});
    b.io_delay(b.i64(1));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  // --- noise (half of the MySQL volume; the 5.1.35 model has the rest) ---
  const double s = profile.scale;
  NoiseSpec noise;
  noise.tag = "my50";
  noise.adhoc_groups = 3;
  noise.adhoc_guarded = static_cast<unsigned>(std::lround(5 * s) + 1);
  noise.publication_depth = static_cast<unsigned>(std::lround(15 * s));
  noise.counters = static_cast<unsigned>(std::lround(3 * s));
  noise.safe_site_groups = static_cast<unsigned>(std::lround(2 * s));
  std::vector<const ir::Function*> noise_entries = add_noise(m, noise);

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("mysqld.cc", 1);
    std::vector<ir::Instruction*> tids;
    tids.push_back(b.thread_create(flush_fn, b.i64(0), "t_flush"));
    tids.push_back(b.thread_create(conn_fn, b.i64(0), "t_conn"));
    for (const ir::Function* entry_fn : noise_entries) {
      tids.push_back(
          b.thread_create(const_cast<ir::Function*>(entry_fn), b.i64(0)));
    }
    for (ir::Instruction* tid : tids) b.thread_join(tid);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  // inputs: [flush_reps, table_scan_io, query_reps, connect_at]
  w.testing_inputs = {2, 1, 3, 9000};
  // Exploit: the paper triggered this with 18 repeated "flush privileges;"
  // queries; the table-scan IO is stretched to widen the empty-cache window.
  w.exploit_inputs = {18, 12, 18, 0};
  w.known_attacks = 1;
  w.thread_order = {1, 2};  // flush first, then the authenticating query
  w.max_steps = 400'000;

  w.attack_succeeded = [](const interp::Machine& machine) {
    return machine.has_event(interp::SecurityEventKind::kPrivilegeEscalation);
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site != nullptr &&
          attack.exploit.site->opcode() == ir::Opcode::kSetUid &&
          attack.verification.site_reached) {
        return true;
      }
    }
    return false;
  };
  return w;
}

}  // namespace owl::workloads
