// Workload models — the "target programs" of the evaluation.
//
// The paper evaluates OWL on old vulnerable builds of Apache, MySQL, SSDB,
// Chrome, Libsafe and Linux. Those builds are unavailable offline, so each
// workload here is a MiniIR transcription of the studied bug (taken from
// the paper's own code listings) embedded in a realistic multithreaded
// server loop, plus benign-race/adhoc-sync background noise sized to give
// the detector report volumes the same *shape* as the paper's Table 1/3.
// See DESIGN.md §2 for the substitution argument.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "interp/machine.hpp"
#include "ir/module.hpp"

namespace owl::workloads {

/// Scales the synthetic background noise. 1.0 reproduces the paper-shaped
/// ratios at ~1/10 the absolute magnitude (documented in EXPERIMENTS.md);
/// tests use small values for speed.
struct NoiseProfile {
  double scale = 1.0;
};

struct Workload {
  // --- identity (Table 1 / Table 4 columns) ---
  std::string name;          ///< versioned, e.g. "apache-2.0.48"
  std::string program;       ///< study program name, e.g. "Apache"
  std::string description;
  std::string vuln_type;     ///< Table 4 "Vul. Type"
  std::string subtle_inputs; ///< Table 4 "Subtle Inputs"
  std::uint64_t paper_loc = 0;       ///< LoC of the real program (Table 1)
  std::uint64_t paper_raw_reports = 0;  ///< paper's R.R. for comparison

  // --- the modelled program ---
  std::shared_ptr<ir::Module> module;
  const ir::Function* entry = nullptr;  ///< spawns every simulated thread

  // --- inputs ---
  std::vector<interp::Word> testing_inputs;  ///< benchmark-style workload
  std::vector<interp::Word> exploit_inputs;  ///< crafted subtle inputs
  bool authorized_root = false;
  std::uint64_t max_steps = 400'000;

  // --- pipeline wiring ---
  core::DetectorKind detector = core::DetectorKind::kTsan;
  unsigned detection_schedules = 4;
  std::vector<interp::ThreadId> thread_order;  ///< verifier ordering hint
  /// Kernel targets run without the LLDB-based dynamic verifiers (§8.3).
  bool dynamic_verifiers_supported = true;

  // --- ground truth for the evaluation harness ---
  /// Attacks this workload models (>= 1 except memcached).
  std::size_t known_attacks = 0;
  /// Predicate over a finished machine: did the exploit succeed?
  std::function<bool(const interp::Machine&)> attack_succeeded;
  /// Predicate over a pipeline result: did OWL detect the attack(s)?
  std::function<bool(const core::PipelineResult&)> attack_detected;
  /// Fine-grained count for Table 2's "# atks found" (workloads modelling
  /// several attacks set this; otherwise attack_detected * known_attacks).
  std::function<std::size_t(const core::PipelineResult&)> attacks_found;

  /// Resolves attacks_found with the attack_detected fallback.
  std::size_t count_found(const core::PipelineResult& result) const {
    if (attacks_found) return attacks_found(result);
    return attack_detected && attack_detected(result) ? known_attacks : 0;
  }

  /// Fresh machine on the given inputs with all simulated threads spawned.
  std::unique_ptr<interp::Machine> make_machine(
      const std::vector<interp::Word>& inputs) const;

  /// Machine factory bound to testing or exploit inputs.
  race::MachineFactory factory(bool use_exploit_inputs) const;

  /// Pipeline target (detection on testing inputs, verification on exploit
  /// inputs — the "directed" part of directed detection).
  core::PipelineTarget target(std::uint64_t seed = 1) const;

  /// Pipeline options appropriate for this workload (kernel => no dynamic
  /// verifiers, matching the paper's Linux setup).
  core::PipelineOptions pipeline_options() const;
};

}  // namespace owl::workloads
