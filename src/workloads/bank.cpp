// Extension target: an atomicity-violation attack (paper §8.3's
// "integrate CTrigger-class detectors" future work, implemented).
//
// A banking service withdraws cash with a classic check-then-act bug:
// the balance is read under the lock, the authorization round-trip happens
// OUTSIDE it, and the debit re-acquires the lock but stores a value
// computed from the stale read. Every access is individually
// lock-protected, so a happens-before race detector (TSan mode) is
// completely silent — yet two concurrent withdrawals both pass the check
// and both dispense: a double-spend. The unserializable R-W-W triple on
// the balance is exactly what the atomicity detector reports, and the rest
// of the OWL pipeline (race verifier, Algorithm 1, vulnerability verifier)
// runs on it unchanged.
#include "workloads/registry.hpp"

#include "ir/builder.hpp"
#include "workloads/noise.hpp"

namespace owl::workloads {

Workload make_bank_atomicity(const NoiseProfile& profile) {
  (void)profile;  // this extension target carries no background noise
  Workload w;
  w.name = "bank-teller";
  w.program = "Bank";
  w.description =
      "check-then-act withdrawal; atomicity violation -> double dispense";
  w.vuln_type = "Atomicity Violation / Double Spend";
  w.subtle_inputs = "concurrent withdrawals during authorization";
  w.paper_loc = 0;
  w.paper_raw_reports = 0;

  auto module = std::make_shared<ir::Module>("bank_teller");
  ir::Module& m = *module;
  ir::IRBuilder b(&m);

  ir::GlobalVariable* mu = m.add_global("balance_mu");
  ir::GlobalVariable* balance = m.add_global("balance", 1, 10);

  // --- withdraw(amount): check under lock, act under a different lock ---
  ir::Function* withdraw = m.add_function("withdraw", ir::Type::void_type());
  {
    ir::Argument* amount = withdraw->add_argument(ir::Type::i64(), "amount");
    ir::BasicBlock* entry = withdraw->add_block("entry");
    ir::BasicBlock* dispense = withdraw->add_block("dispense");
    ir::BasicBlock* declined = withdraw->add_block("declined");

    b.set_insert_point(entry);
    b.set_loc("teller.c", 38);
    b.lock(mu);
    b.set_loc("teller.c", 40);
    ir::Instruction* bal = b.load(balance, "bal");  // first local access (R)
    b.unlock(mu);
    b.set_loc("teller.c", 42);
    ir::Instruction* authorize = b.input(b.i64(1), "auth_latency");
    b.io_delay(authorize);  // card-network round trip, outside the lock
    b.set_loc("teller.c", 44);
    ir::Instruction* ok =
        b.icmp(ir::CmpPredicate::kSGe, bal, amount, "ok");
    b.br(ok, dispense, declined);

    b.set_insert_point(dispense);
    b.set_loc("teller.c", 47);
    b.lock(mu);
    b.set_loc("teller.c", 48);
    // The bug: debit from the STALE balance (second local access, W).
    b.store(b.sub(bal, amount), balance);
    b.unlock(mu);
    b.set_loc("teller.c", 50);
    b.eval_(amount);  // dispense the cash — the vulnerable site
    b.ret();

    b.set_insert_point(declined);
    b.set_loc("teller.c", 53);
    b.ret();
  }

  // --- teller thread: a stream of withdrawals, phase-staggered ---
  ir::Function* teller = m.add_function("teller", ir::Type::void_type());
  {
    ir::Argument* phase = teller->add_argument(ir::Type::i64(), "phase");
    ir::BasicBlock* entry = teller->add_block("entry");
    ir::BasicBlock* header = teller->add_block("header");
    ir::BasicBlock* body = teller->add_block("body");
    ir::BasicBlock* done = teller->add_block("done");

    b.set_insert_point(entry);
    b.set_loc("teller.c", 20);
    b.io_delay(phase);
    ir::Instruction* reps = b.input(b.i64(2), "withdrawals");
    ir::Instruction* amount = b.input(b.i64(0), "amount");
    b.jmp(header);

    b.set_insert_point(header);
    ir::Instruction* i = b.phi(ir::Type::i64(), "i");
    ir::Instruction* more = b.icmp(ir::CmpPredicate::kSLt, i, reps, "more");
    b.br(more, body, done);

    b.set_insert_point(body);
    b.set_loc("teller.c", 25);
    b.call(withdraw, {amount});
    b.io_delay(b.i64(2));
    ir::Instruction* inext = b.add(i, b.i64(1), "inext");
    b.jmp(header);
    i->add_phi_incoming(b.i64(0), entry);
    i->add_phi_incoming(inext, body);

    b.set_insert_point(done);
    b.ret();
  }

  ir::Function* main_fn = m.add_function("main", ir::Type::void_type());
  {
    b.set_insert_point(main_fn->add_block("entry"));
    b.set_loc("bank.c", 1);
    ir::Instruction* t1 = b.thread_create(teller, b.i64(0), "t1");
    ir::Instruction* t2_at = b.input(b.i64(3), "t2_at");
    ir::Instruction* t2 = b.thread_create(teller, t2_at, "t2");
    b.thread_join(t1);
    b.thread_join(t2);
    b.ret();
  }

  w.module = module;
  w.entry = main_fn;
  w.detector = core::DetectorKind::kAtomicity;
  // inputs: [amount, auth_latency, withdrawals_per_teller, teller2_at]
  // Testing: concurrent small withdrawals — the unserializable triple
  // manifests (the detector needs to observe it; atomicity violations,
  // unlike happens-before races, are only visible when they interleave)
  // but the balance covers both, so no money is stolen.
  w.testing_inputs = {2, 4, 2, 0};
  // Exploit: both tellers withdraw 6 from a balance of 10 while the
  // authorization latency holds the stale read open.
  w.exploit_inputs = {6, 15, 2, 0};
  w.known_attacks = 1;
  w.thread_order = {1, 2};
  w.max_steps = 200'000;

  w.attack_succeeded = [](const interp::Machine& machine) {
    // Double spend: more cash dispensed than the opening balance allowed.
    interp::Word dispensed = 0;
    for (const interp::EvalRecord& rec : machine.evals()) {
      dispensed += rec.command_id;  // eval's operand is the amount
    }
    return dispensed > 10;
  };
  w.attack_detected = [](const core::PipelineResult& result) {
    for (const core::ConcurrencyAttack& attack : result.attacks) {
      if (attack.exploit.site != nullptr &&
          attack.exploit.site->opcode() == ir::Opcode::kEval &&
          attack.exploit.site->loc().line == 50 &&
          attack.verification.site_reached) {
        return true;
      }
    }
    return false;
  };
  return w;
}

}  // namespace owl::workloads
