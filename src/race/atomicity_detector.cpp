#include "race/atomicity_detector.hpp"

#include <algorithm>
#include <utility>

namespace owl::race {

std::string_view atomicity_pattern_name(AtomicityPattern pattern) noexcept {
  switch (pattern) {
    case AtomicityPattern::kRWR: return "read-write-read";
    case AtomicityPattern::kWWR: return "write-write-read";
    case AtomicityPattern::kWRW: return "write-read-write";
    case AtomicityPattern::kRWW: return "read-write-write";
  }
  return "?";
}

std::array<std::uint64_t, 3> AtomicityReport::key() const noexcept {
  return {first_local.instr != nullptr ? first_local.instr->id() : 0,
          remote.instr != nullptr ? remote.instr->id() : 0,
          second_local.instr != nullptr ? second_local.instr->id() : 0};
}

const AccessRecord* AtomicityReport::corrupted_read() const noexcept {
  switch (pattern) {
    case AtomicityPattern::kRWR:
    case AtomicityPattern::kRWW:
      return &first_local;  // the stale read the local thread acted on
    case AtomicityPattern::kWWR:
      return &second_local;  // the read that lost the local write
    case AtomicityPattern::kWRW:
      return &remote;  // the remote read that saw the intermediate state
  }
  return nullptr;
}

std::string AtomicityReport::to_string() const {
  std::string out = "atomicity violation (";
  out += atomicity_pattern_name(pattern);
  out += ")";
  if (!object_name.empty()) out += " on '" + object_name + "'";
  out += " (" + std::to_string(occurrences) + " occurrence(s))\n";
  out += "  local:  " + first_local.to_string() + "\n";
  out += interp::call_stack_to_string(first_local.stack);
  out += "  remote: " + remote.to_string() + "\n";
  out += interp::call_stack_to_string(remote.stack);
  out += "  local:  " + second_local.to_string() + "\n";
  out += interp::call_stack_to_string(second_local.stack);
  return out;
}

std::pair<std::uint64_t, std::uint64_t> AtomicityReport::race_key()
    const noexcept {
  // Mirrors RaceReport::key() over to_race_report()'s (first = remote,
  // second = second_local) pair.
  const std::uint64_t a = remote.instr != nullptr ? remote.instr->id() : 0;
  const std::uint64_t b =
      second_local.instr != nullptr ? second_local.instr->id() : 0;
  return {std::min(a, b), std::max(a, b)};
}

RaceReport AtomicityReport::to_race_report() const {
  RaceReport report;
  report.kind = ReportKind::kAtomicityViolation;
  report.first = remote;
  report.second = second_local;
  report.object_name = object_name;
  report.occurrences = occurrences;
  if (const AccessRecord* read = corrupted_read();
      read != nullptr && read->is_read()) {
    report.supplemental_read = *read;
  }
  report.security_hint =
      std::string("unserializable interleaving: ") +
      std::string(atomicity_pattern_name(pattern));
  return report;
}

bool AtomicityDetector::unserializable(bool l1_write, bool remote_write,
                                       bool l2_write,
                                       AtomicityPattern& out) noexcept {
  if (!l1_write && remote_write && !l2_write) {
    out = AtomicityPattern::kRWR;
    return true;
  }
  if (l1_write && remote_write && !l2_write) {
    out = AtomicityPattern::kWWR;
    return true;
  }
  if (l1_write && !remote_write && l2_write) {
    out = AtomicityPattern::kWRW;
    return true;
  }
  if (!l1_write && remote_write && l2_write) {
    out = AtomicityPattern::kRWW;
    return true;
  }
  return false;
}

void AtomicityDetector::on_access(const Access& access,
                                  const interp::Machine& machine) {
  if (access.is_atomic) return;

  AccessRecord rec;
  rec.tid = access.tid;
  rec.instr = access.instr;
  rec.addr = access.addr;
  rec.value = access.value;
  rec.is_write = access.is_write;
  if (const interp::Thread* t = machine.thread(access.tid)) {
    rec.stack = t->call_stack();
  }

  // Record this access as "remote" for every other thread with a pending
  // local access at this address.
  for (auto& [key, state] : pending_) {
    if (key.first != access.addr || key.second == access.tid) continue;
    if (state.have_local && !state.have_remote) {
      state.have_remote = true;
      state.first_remote = rec;
    }
  }

  LocalState& mine = pending_[{access.addr, access.tid}];
  if (mine.have_local && mine.have_remote) {
    AtomicityPattern pattern;
    if (unserializable(mine.local.is_write, mine.first_remote.is_write,
                       access.is_write, pattern)) {
      ++dynamic_violations_;
      AtomicityReport probe;
      probe.first_local = mine.local;
      probe.remote = mine.first_remote;
      probe.second_local = rec;
      probe.pattern = pattern;
      const auto key = probe.key();
      auto it = index_.find(key);
      if (it != index_.end()) {
        ++reports_[it->second].occurrences;
      } else {
        if (const interp::MemObject* obj =
                machine.memory().find_object(access.addr)) {
          probe.object_name = obj->name;
        }
        index_.emplace(key, reports_.size());
        reports_.push_back(std::move(probe));
      }
    }
  }

  // This access starts the next local window.
  mine.have_local = true;
  mine.local = rec;
  mine.have_remote = false;
}

void AtomicityDetector::on_sync(const Sync& sync, const interp::Machine&) {
  // Lock releases end the thread's atomic intent for the region it
  // protected: accesses in different critical sections of the same thread
  // are not expected to be atomic together ONLY if the program re-reads.
  // CTrigger-style detectors still flag check-then-act across sections, so
  // we deliberately keep pending windows across lock boundaries. Thread
  // exit does clear them.
  if (sync.kind == SyncKind::kThreadFinish) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->first.second == sync.tid) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::vector<AtomicityReport> AtomicityDetector::take_reports() {
  std::sort(reports_.begin(), reports_.end(),
            [](const AtomicityReport& a, const AtomicityReport& b) {
              return a.key() < b.key();
            });
  index_.clear();
  return std::move(reports_);
}

}  // namespace owl::race
