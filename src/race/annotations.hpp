// TSan-markup annotations.
//
// OWL's adhoc-synchronization stage (§5.1) "automatically annotates program
// source code with TSan markups and re-runs the detector". In this
// reproduction the markup is a side table: instructions listed here are
// treated by the detectors as release-stores / acquire-loads instead of
// plain accesses, exactly like C++ atomics, so the annotated busy-wait pair
// and everything it orders stop producing reports.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "ir/instruction.hpp"

namespace owl::race {

class AnnotationSet {
 public:
  /// Marks `write` as a release-store (the "dying = 1" side).
  void add_release_store(const ir::Instruction* write) {
    releases_.insert(write);
  }
  /// Marks `read` as an acquire-load (the busy-wait read side).
  void add_acquire_load(const ir::Instruction* read) {
    acquires_.insert(read);
  }

  bool is_release_store(const ir::Instruction* instr) const noexcept {
    return releases_.contains(instr);
  }
  bool is_acquire_load(const ir::Instruction* instr) const noexcept {
    return acquires_.contains(instr);
  }
  bool annotated(const ir::Instruction* instr) const noexcept {
    return is_release_store(instr) || is_acquire_load(instr);
  }

  std::size_t size() const noexcept {
    return releases_.size() + acquires_.size();
  }
  bool empty() const noexcept { return size() == 0; }

  /// Number of annotated *pairs* (paper counts adhoc syncs as pairs).
  std::size_t pair_count() const noexcept {
    return std::min(releases_.size(), acquires_.size());
  }

  void merge(const AnnotationSet& other);

 private:
  std::unordered_set<const ir::Instruction*> releases_;
  std::unordered_set<const ir::Instruction*> acquires_;
};

}  // namespace owl::race
