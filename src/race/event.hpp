// Access records — the per-event payload of a race report.
#pragma once

#include <string>

#include "interp/thread.hpp"
#include "ir/instruction.hpp"

namespace owl::race {

/// One memory access as captured by a detector: where, by whom, reading or
/// writing what. The call stack is the dynamic information OWL feeds back
/// into static analysis (paper §4.1's "combine static and dynamic effects").
struct AccessRecord {
  interp::ThreadId tid = 0;
  const ir::Instruction* instr = nullptr;
  interp::Address addr = 0;
  interp::Word value = 0;
  bool is_write = false;
  interp::CallStack stack;

  bool is_read() const noexcept { return !is_write; }

  /// "write of 1 by thread 2 at 'store 1, @dying' (libsafe.c:1640)".
  std::string to_string() const;
};

}  // namespace owl::race
