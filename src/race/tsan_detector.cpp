#include "race/tsan_detector.hpp"

#include <algorithm>
#include <cassert>

namespace owl::race {

AccessRecord TsanDetector::make_record(const Access& access,
                                       const interp::Machine& machine) const {
  AccessRecord rec;
  rec.tid = access.tid;
  rec.instr = access.instr;
  rec.addr = access.addr;
  rec.value = access.value;
  rec.is_write = access.is_write;
  if (const interp::Thread* t = machine.thread(access.tid)) {
    rec.stack = t->call_stack();
  }
  return rec;
}

void TsanDetector::on_access(const Access& access,
                             const interp::Machine& machine) {
  VectorClock& ct = clock(access.tid);
  Shadow& shadow = shadow_[access.addr];

  const bool annotated_release =
      annotations_ != nullptr && annotations_->is_release_store(access.instr);
  const bool annotated_acquire =
      annotations_ != nullptr && annotations_->is_acquire_load(access.instr);

  // Atomics and annotated accesses behave as synchronization: they carry
  // happens-before edges through the address and are never themselves racy.
  if (access.is_atomic || annotated_release || annotated_acquire) {
    VectorClock& sync = sync_clocks_[access.addr];
    if (access.is_atomic || annotated_acquire) {
      ct.join(sync);  // acquire side
    }
    const AccessRecord rec = make_record(access, machine);
    if (access.is_atomic || annotated_release) {
      // Publish the store event, then advance past it.
      if (access.is_write) {
        shadow.write = ShadowAccess{access.tid, ct.get(access.tid), rec};
        shadow.reads.clear();
      }
      sync.join(ct);  // release side
      ct.increment(access.tid);
    } else if (!access.is_write) {
      feed_watchers(rec);
    }
    return;
  }

  const AccessRecord rec = make_record(access, machine);

  if (access.is_write) {
    if (shadow.write.has_value() && shadow.write->tid != access.tid &&
        !VectorClock::epoch_leq(shadow.write->tid, shadow.write->epoch, ct)) {
      record_race(shadow.write->rec, rec, machine);
    }
    for (const ShadowAccess& read : shadow.reads) {
      if (read.tid != access.tid &&
          !VectorClock::epoch_leq(read.tid, read.epoch, ct)) {
        record_race(read.rec, rec, machine);
      }
    }
    shadow.write = ShadowAccess{access.tid, ct.get(access.tid), rec};
    shadow.reads.clear();
    // A write sanitizes the watch list for this address (§6.3).
    if (ski_watch_mode_) watched_.erase(access.addr);
  } else {
    if (shadow.write.has_value() && shadow.write->tid != access.tid &&
        !VectorClock::epoch_leq(shadow.write->tid, shadow.write->epoch, ct)) {
      record_race(shadow.write->rec, rec, machine);
    }
    // Keep at most one read epoch per thread.
    bool replaced = false;
    for (ShadowAccess& read : shadow.reads) {
      if (read.tid == access.tid) {
        read.epoch = ct.get(access.tid);
        read.rec = rec;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      shadow.reads.push_back(
          ShadowAccess{access.tid, ct.get(access.tid), rec});
    }
    feed_watchers(rec);
  }
}

void TsanDetector::record_race(const AccessRecord& prior,
                               const AccessRecord& current,
                               const interp::Machine& machine) {
  ++dynamic_races_;
  RaceReport probe;
  probe.first = prior;
  probe.second = current;
  const auto key = probe.key();

  auto it = index_.find(key);
  if (it != index_.end()) {
    ++reports_[it->second].occurrences;
    return;
  }

  probe.occurrences = 1;
  if (const interp::MemObject* obj =
          machine.memory().find_object(current.addr)) {
    probe.object_name = obj->name;
  }
  const std::size_t idx = reports_.size();
  index_.emplace(key, idx);

  // Write-write races lack a corrupted read for Algorithm 1; watch the
  // address so the first subsequent load can be attached (§6.3). SKI mode
  // watches every racy address and logs all reads until sanitized.
  const bool write_write = prior.is_write && current.is_write;
  if (write_write || ski_watch_mode_) {
    watched_[current.addr].push_back(idx);
  }
  reports_.push_back(std::move(probe));
}

void TsanDetector::feed_watchers(const AccessRecord& read) {
  auto it = watched_.find(read.addr);
  if (it == watched_.end()) return;
  for (std::size_t idx : it->second) {
    RaceReport& report = reports_[idx];
    if (!report.supplemental_read.has_value()) {
      report.supplemental_read = read;
    }
    if (ski_watch_mode_) {
      report.watched_reads.push_back(read);
    }
  }
  if (!ski_watch_mode_) {
    watched_.erase(it);  // one supplemental read is all TSan mode needs
  }
}

void TsanDetector::on_sync(const Sync& sync, const interp::Machine&) {
  VectorClock& ct = clock(sync.tid);
  switch (sync.kind) {
    case SyncKind::kLockAcquire:
      ct.join(lock_clocks_[sync.addr]);
      break;
    case SyncKind::kLockRelease:
      lock_clocks_[sync.addr] = ct;
      ct.increment(sync.tid);
      break;
    case SyncKind::kHbRelease:
      sync_clocks_[sync.addr].join(ct);
      ct.increment(sync.tid);
      break;
    case SyncKind::kHbAcquire:
      ct.join(sync_clocks_[sync.addr]);
      break;
    case SyncKind::kThreadCreate: {
      const auto child = static_cast<ThreadId>(sync.addr);
      VectorClock& cc = clock(child);
      cc.join(ct);
      cc.increment(child);
      ct.increment(sync.tid);
      break;
    }
    case SyncKind::kThreadFinish:
      finished_clocks_[sync.tid] = ct;
      break;
    case SyncKind::kThreadJoin: {
      const auto target = static_cast<ThreadId>(sync.addr);
      auto it = finished_clocks_.find(target);
      if (it != finished_clocks_.end()) ct.join(it->second);
      break;
    }
  }
}

std::vector<RaceReport> TsanDetector::take_reports() {
  std::sort(reports_.begin(), reports_.end(), report_order);
  index_.clear();
  watched_.clear();
  return std::move(reports_);
}

void merge_reports(std::vector<RaceReport>& into,
                   std::vector<RaceReport>&& from) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> index;
  for (std::size_t i = 0; i < into.size(); ++i) {
    index.emplace(into[i].key(), i);
  }
  for (RaceReport& report : from) {
    auto it = index.find(report.key());
    if (it == index.end()) {
      index.emplace(report.key(), into.size());
      into.push_back(std::move(report));
      continue;
    }
    RaceReport& existing = into[it->second];
    existing.occurrences += report.occurrences;
    if (!existing.supplemental_read.has_value()) {
      existing.supplemental_read = std::move(report.supplemental_read);
    }
    existing.watched_reads.insert(
        existing.watched_reads.end(),
        std::make_move_iterator(report.watched_reads.begin()),
        std::make_move_iterator(report.watched_reads.end()));
  }
  std::sort(into.begin(), into.end(), report_order);
}

}  // namespace owl::race
