#include "race/tsan_detector.hpp"

#include <algorithm>
#include <cassert>

#include "interp/memory.hpp"
#include "support/metrics.hpp"

namespace owl::race {

bool TsanDetector::prescreen_hit(const ir::Instruction* instr,
                                 interp::Address addr) const noexcept {
  return prescreen_.active() && addr >= interp::kNullGuard &&
         prescreen_.no_race_instr(instr);
}

void TsanDetector::on_access(const Access& access,
                             const interp::Machine& machine) {
  ++counters_.accesses;
  if (impl_ == DetectorImpl::kFast) {
    fast_on_access(access, machine);
  } else {
    ref_on_access(access, machine);
  }
}

void TsanDetector::on_sync(const Sync& sync, const interp::Machine& machine) {
  ++counters_.sync_events;
  if (impl_ == DetectorImpl::kFast) {
    fast_on_sync(sync, machine);
  } else {
    ref_on_sync(sync, machine);
  }
}

// ---------------------------------------------------------------------------
// Reference implementation — the original hash-map substrate, kept verbatim
// so the differential gate has a ground truth to compare the fast path
// against. Do not optimize this path.
// ---------------------------------------------------------------------------

AccessRecord TsanDetector::make_record(const Access& access,
                                       const interp::Machine& machine) const {
  AccessRecord rec;
  rec.tid = access.tid;
  rec.instr = access.instr;
  rec.addr = access.addr;
  rec.value = access.value;
  rec.is_write = access.is_write;
  if (const interp::Thread* t = machine.thread(access.tid)) {
    rec.stack = t->call_stack();
  }
  return rec;
}

void TsanDetector::ref_on_access(const Access& access,
                                 const interp::Machine& machine) {
  VectorClock& ct = clock(access.tid);
  Shadow& shadow = shadow_[access.addr];

  const bool annotated_release =
      annotations_ != nullptr && annotations_->is_release_store(access.instr);
  const bool annotated_acquire =
      annotations_ != nullptr && annotations_->is_acquire_load(access.instr);

  // Atomics and annotated accesses behave as synchronization: they carry
  // happens-before edges through the address and are never themselves racy.
  if (access.is_atomic || annotated_release || annotated_acquire) {
    VectorClock& sync = sync_clocks_[access.addr];
    if (access.is_atomic || annotated_acquire) {
      ct.join(sync);  // acquire side
    }
    const AccessRecord rec = make_record(access, machine);
    if (access.is_atomic || annotated_release) {
      // Publish the store event, then advance past it.
      if (access.is_write) {
        shadow.write = ShadowAccess{access.tid, ct.get(access.tid), rec};
        shadow.reads.clear();
      }
      sync.join(ct);  // release side
      ct.increment(access.tid);
    } else if (!access.is_write) {
      feed_watchers(rec);
    }
    return;
  }

  // Statically race-free plain access (analysis/prescreen): kOn skips the
  // shadow bookkeeping below entirely. Sound because pruned instructions can
  // only touch never-escaping or consistently-locked objects — disjoint
  // from any address that can race or sit on a watch list (DESIGN.md §9).
  if (prescreen_hit(access.instr, access.addr)) {
    ++counters_.prescreen_pruned;
    if (prescreen_.mode == PrescreenMode::kOn) return;
  }

  const AccessRecord rec = make_record(access, machine);
  ++counters_.clock_fallbacks;  // the reference substrate has no fast paths

  if (access.is_write) {
    if (shadow.write.has_value() && shadow.write->tid != access.tid &&
        !VectorClock::epoch_leq(shadow.write->tid, shadow.write->epoch, ct)) {
      record_race(shadow.write->rec, rec, machine);
    }
    for (const ShadowAccess& read : shadow.reads) {
      if (read.tid != access.tid &&
          !VectorClock::epoch_leq(read.tid, read.epoch, ct)) {
        record_race(read.rec, rec, machine);
      }
    }
    shadow.write = ShadowAccess{access.tid, ct.get(access.tid), rec};
    shadow.reads.clear();
    // A write sanitizes the watch list for this address (§6.3).
    if (ski_watch_mode_) watched_.erase(access.addr);
  } else {
    if (shadow.write.has_value() && shadow.write->tid != access.tid &&
        !VectorClock::epoch_leq(shadow.write->tid, shadow.write->epoch, ct)) {
      record_race(shadow.write->rec, rec, machine);
    }
    // Keep at most one read epoch per thread.
    bool replaced = false;
    for (ShadowAccess& read : shadow.reads) {
      if (read.tid == access.tid) {
        read.epoch = ct.get(access.tid);
        read.rec = rec;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      shadow.reads.push_back(
          ShadowAccess{access.tid, ct.get(access.tid), rec});
    }
    feed_watchers(rec);
  }
}

void TsanDetector::ref_on_sync(const Sync& sync, const interp::Machine&) {
  VectorClock& ct = clock(sync.tid);
  switch (sync.kind) {
    case SyncKind::kLockAcquire:
      ct.join(lock_clocks_[sync.addr]);
      break;
    case SyncKind::kLockRelease:
      lock_clocks_[sync.addr] = ct;
      ct.increment(sync.tid);
      break;
    case SyncKind::kHbRelease:
      sync_clocks_[sync.addr].join(ct);
      ct.increment(sync.tid);
      break;
    case SyncKind::kHbAcquire:
      ct.join(sync_clocks_[sync.addr]);
      break;
    case SyncKind::kThreadCreate: {
      const auto child = static_cast<ThreadId>(sync.addr);
      VectorClock& cc = clock(child);
      cc.join(ct);
      cc.increment(child);
      ct.increment(sync.tid);
      break;
    }
    case SyncKind::kThreadFinish:
      finished_clocks_[sync.tid] = ct;
      break;
    case SyncKind::kThreadJoin: {
      const auto target = static_cast<ThreadId>(sync.addr);
      auto it = finished_clocks_.find(target);
      if (it != finished_clocks_.end()) ct.join(it->second);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Fast implementation — paged shadow, epoch fast paths, dense clocks, lazy
// candidate capture. Every divergence from ref_on_access must be provably
// unobservable in the emitted reports; the comments below carry the proofs
// the differential gate then checks empirically.
// ---------------------------------------------------------------------------

VectorClock& TsanDetector::fast_clock(ThreadId tid) {
  if (tid >= fast_clocks_.size()) fast_clocks_.resize(tid + 1);
  return fast_clocks_[tid];
}

AccessRecord TsanDetector::record_from_access(
    const Access& access, const interp::Machine& machine) const {
  AccessRecord rec;
  rec.tid = access.tid;
  rec.instr = access.instr;
  rec.addr = access.addr;
  rec.value = access.value;
  rec.is_write = access.is_write;
  // The context id was stamped while the accessing frame was still at
  // access.instr, so this reproduces Thread::call_stack() exactly.
  rec.stack = machine.contexts().call_stack(access.context, access.instr);
  ++counters_.lazy_materializations;
  return rec;
}

AccessRecord TsanDetector::record_from_cell(
    const ShadowCell& cell, interp::Address addr, bool is_write,
    const interp::Machine& machine) const {
  AccessRecord rec;
  rec.tid = cell.tid;
  rec.instr = cell.instr;
  rec.addr = addr;
  rec.value = cell.value;
  rec.is_write = is_write;
  // Context ids outlive frames, so this is the stack as of the recorded
  // access — not the thread's current one.
  rec.stack = machine.contexts().call_stack(cell.ctx, cell.instr);
  ++counters_.lazy_materializations;
  return rec;
}

void TsanDetector::fast_feed_watchers(const Access& access,
                                      const interp::Machine& machine) {
  if (watched_.empty()) return;
  if (watched_.find(access.addr) == watched_.end()) return;
  feed_watchers(record_from_access(access, machine));
}

void TsanDetector::fast_on_access(const Access& access,
                                  const interp::Machine& machine) {
  const bool annotated_release =
      annotations_ != nullptr && annotations_->is_release_store(access.instr);
  const bool annotated_acquire =
      annotations_ != nullptr && annotations_->is_acquire_load(access.instr);

  if (access.is_atomic || annotated_release || annotated_acquire) {
    VectorClock& ct = fast_clock(access.tid);
    VectorClock& sync = fast_sync_clocks_[access.addr];
    if (access.is_atomic || annotated_acquire) {
      ct.join(sync);  // acquire side
    }
    if (access.is_atomic || annotated_release) {
      if (access.is_write) {
        ShadowSlot& slot = fast_shadow_.slot(access.addr);
        slot.set_write(ShadowCell{access.tid, access.context,
                                  ct.get(access.tid), access.instr,
                                  access.value});
        slot.clear_reads();
      }
      sync.join(ct);  // release side
      ct.increment(access.tid);
    } else if (!access.is_write) {
      fast_feed_watchers(access, machine);
    }
    return;
  }

  // Statically race-free plain access: prune before the shadow-slot lookup
  // so provably-local traffic never materializes shadow pages (see the
  // matching comment in ref_on_access for the soundness argument).
  if (prescreen_hit(access.instr, access.addr)) {
    ++counters_.prescreen_pruned;
    if (prescreen_.mode == PrescreenMode::kOn) return;
  }

  ShadowSlot& slot = fast_shadow_.slot(access.addr);
  VectorClock& ct = fast_clock(access.tid);
  const std::uint64_t own_epoch = ct.get(access.tid);

  if (access.is_write) {
    // Same-owner store fast path (FastTrack's "same epoch" case): the last
    // write was ours and no reads intervened, so there is nothing to order
    // against — refresh the cell and leave. Requires an idle watch list:
    // the reference path would erase this address from it.
    if (slot.has_write && slot.write.tid == access.tid && !slot.has_reads() &&
        (!ski_watch_mode_ || watched_.empty())) {
      ++counters_.epoch_write_hits;
      slot.write = ShadowCell{access.tid, access.context, own_epoch,
                              access.instr, access.value};
      return;
    }
    ++counters_.clock_fallbacks;

    std::optional<AccessRecord> current;  // materialized at most once
    if (slot.has_write && slot.write.tid != access.tid &&
        !VectorClock::epoch_leq(slot.write.tid, slot.write.epoch, ct)) {
      current = record_from_access(access, machine);
      record_race(record_from_cell(slot.write, access.addr,
                                   /*is_write=*/true, machine),
                  *current, machine);
    }
    slot.for_each_read([&](const ShadowCell& read) {
      if (read.tid != access.tid &&
          !VectorClock::epoch_leq(read.tid, read.epoch, ct)) {
        if (!current.has_value()) {
          current = record_from_access(access, machine);
        }
        record_race(record_from_cell(read, access.addr, /*is_write=*/false,
                                     machine),
                    *current, machine);
      }
    });
    slot.set_write(ShadowCell{access.tid, access.context, own_epoch,
                              access.instr, access.value});
    slot.clear_reads();
    // A write sanitizes the watch list for this address (§6.3).
    if (ski_watch_mode_) watched_.erase(access.addr);
  } else {
    // Same-reader fast path: this thread already has a read cell here that
    // was checked race-free against the current shadow write. Every write
    // clears the read set (so the write cannot have changed while the cell
    // survives) and clocks only grow, so the check cannot newly fail —
    // refresh the cell and leave. Requires an idle watch list: the
    // reference path would feed this read to watchers.
    ShadowCell* own = slot.find_read(access.tid);
    if (own != nullptr && own->no_race && watched_.empty()) {
      ++counters_.epoch_read_hits;
      *own = ShadowCell{access.tid, access.context, own_epoch, access.instr,
                        access.value, /*no_race=*/true};
      return;
    }
    ++counters_.clock_fallbacks;

    bool raced = false;
    if (slot.has_write && slot.write.tid != access.tid &&
        !VectorClock::epoch_leq(slot.write.tid, slot.write.epoch, ct)) {
      raced = true;
      record_race(record_from_cell(slot.write, access.addr,
                                   /*is_write=*/true, machine),
                  record_from_access(access, machine), machine);
    }
    // Keep at most one read epoch per thread (replace in place to preserve
    // the reference's insertion-order iteration).
    const ShadowCell cell{access.tid, access.context, own_epoch, access.instr,
                          access.value, /*no_race=*/!raced};
    if (own != nullptr) {
      *own = cell;
    } else {
      slot.add_read(cell);
    }
    fast_feed_watchers(access, machine);
  }
}

void TsanDetector::fast_on_sync(const Sync& sync, const interp::Machine&) {
  switch (sync.kind) {
    case SyncKind::kLockAcquire:
      fast_clock(sync.tid).join(fast_lock_clocks_[sync.addr]);
      break;
    case SyncKind::kLockRelease: {
      VectorClock& ct = fast_clock(sync.tid);
      fast_lock_clocks_[sync.addr] = ct;
      ct.increment(sync.tid);
      break;
    }
    case SyncKind::kHbRelease: {
      VectorClock& ct = fast_clock(sync.tid);
      fast_sync_clocks_[sync.addr].join(ct);
      ct.increment(sync.tid);
      break;
    }
    case SyncKind::kHbAcquire:
      fast_clock(sync.tid).join(fast_sync_clocks_[sync.addr]);
      break;
    case SyncKind::kThreadCreate: {
      const auto child = static_cast<ThreadId>(sync.addr);
      // Grow once up front: taking both references before any resize keeps
      // them valid (vector reallocation would invalidate the first).
      fast_clock(std::max(child, sync.tid));
      VectorClock& ct = fast_clocks_[sync.tid];
      VectorClock& cc = fast_clocks_[child];
      cc.join(ct);
      cc.increment(child);
      ct.increment(sync.tid);
      break;
    }
    case SyncKind::kThreadFinish:
      if (sync.tid >= fast_finished_.size()) {
        fast_finished_.resize(sync.tid + 1);
      }
      fast_finished_[sync.tid] = fast_clock(sync.tid);
      break;
    case SyncKind::kThreadJoin: {
      const auto target = static_cast<ThreadId>(sync.addr);
      // Slots a resize created but no finish filled hold empty clocks;
      // joining one is a no-op, matching the reference's map miss.
      if (target < fast_finished_.size()) {
        fast_clock(sync.tid).join(fast_finished_[target]);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Shared report plumbing — byte-identical currency for both implementations.
// ---------------------------------------------------------------------------

void TsanDetector::record_race(const AccessRecord& prior,
                               const AccessRecord& current,
                               const interp::Machine& machine) {
  ++dynamic_races_;
  // Audit mode runs full detection; an access the prescreen would have
  // pruned showing up in a race falsifies the static no-race verdict.
  if (prescreen_.mode == PrescreenMode::kAudit) {
    if (prescreen_hit(prior.instr, prior.addr)) {
      ++counters_.prescreen_audit_violations;
    }
    if (prescreen_hit(current.instr, current.addr)) {
      ++counters_.prescreen_audit_violations;
    }
  }
  RaceReport probe;
  probe.first = prior;
  probe.second = current;
  const auto key = probe.key();

  auto it = index_.find(key);
  if (it != index_.end()) {
    ++reports_[it->second].occurrences;
    return;
  }

  probe.occurrences = 1;
  if (const interp::MemObject* obj =
          machine.memory().find_object(current.addr)) {
    probe.object_name = obj->name;
  }
  const std::size_t idx = reports_.size();
  index_.emplace(key, idx);

  // Write-write races lack a corrupted read for Algorithm 1; watch the
  // address so the first subsequent load can be attached (§6.3). SKI mode
  // watches every racy address and logs all reads until sanitized.
  const bool write_write = prior.is_write && current.is_write;
  if (write_write || ski_watch_mode_) {
    watched_[current.addr].push_back(idx);
  }
  reports_.push_back(std::move(probe));
}

void TsanDetector::feed_watchers(const AccessRecord& read) {
  auto it = watched_.find(read.addr);
  if (it == watched_.end()) return;
  // A pruned read feeding a watched report would have been dropped in kOn
  // mode and changed the report — count that as a violation too.
  if (prescreen_.mode == PrescreenMode::kAudit &&
      prescreen_hit(read.instr, read.addr)) {
    ++counters_.prescreen_audit_violations;
  }
  for (std::size_t idx : it->second) {
    RaceReport& report = reports_[idx];
    if (!report.supplemental_read.has_value()) {
      report.supplemental_read = read;
    }
    if (ski_watch_mode_) {
      report.watched_reads.push_back(read);
    }
  }
  if (!ski_watch_mode_) {
    watched_.erase(it);  // one supplemental read is all TSan mode needs
  }
}

void TsanDetector::flush_metrics() {
  // Substrate accounting is *advisory*: deterministic for one configuration
  // but legitimately different across substrate impls and prescreen modes
  // that CI requires to be report- and snapshot-identical. Only the emitted
  // report count is a behavioral metric.
  support::MetricsRegistry& registry = support::metrics();
  registry.advisory("detector.accesses").inc(counters_.accesses);
  registry.advisory("detector.sync_events").inc(counters_.sync_events);
  registry.advisory("detector.epoch_write_hits")
      .inc(counters_.epoch_write_hits);
  registry.advisory("detector.epoch_read_hits").inc(counters_.epoch_read_hits);
  registry.advisory("detector.clock_fallbacks").inc(counters_.clock_fallbacks);
  registry.advisory("detector.lazy_materializations")
      .inc(counters_.lazy_materializations);
  registry.counter("detector.reports_emitted").inc(reports_.size());
  // Delta, not the cumulative total: a reset-and-reused detector must
  // flush the same per-schedule page counts as a fresh one.
  registry.advisory("detector.shadow_pages")
      .inc(fast_shadow_.pages_allocated() - shadow_pages_flushed_);
  shadow_pages_flushed_ = fast_shadow_.pages_allocated();
  registry.advisory("prescreen.pruned_accesses")
      .inc(counters_.prescreen_pruned);
  registry.advisory("prescreen.audit_violations")
      .inc(counters_.prescreen_audit_violations);
  counters_ = SubstrateCounters{};  // flush-once: take_reports may re-run
}

void TsanDetector::reset() {
  clocks_.clear();
  lock_clocks_.clear();
  sync_clocks_.clear();
  finished_clocks_.clear();
  shadow_.clear();
  fast_shadow_.clear();
  // Keep the dense tables at size: an empty clock is observably identical
  // to a never-touched one (fast_finished_ explicitly treats empty as
  // "never finished"), and clearing in place keeps each clock's component
  // buffer for the next schedule.
  for (VectorClock& clock : fast_clocks_) clock.clear();
  for (VectorClock& clock : fast_finished_) clock.clear();
  fast_lock_clocks_.clear();
  fast_sync_clocks_.clear();
  index_.clear();
  reports_.clear();
  watched_.clear();
  dynamic_races_ = 0;
  counters_ = SubstrateCounters{};
}

std::vector<RaceReport> TsanDetector::take_reports() {
  flush_metrics();
  // Keys are unique in reports_ (record_race deduplicates on insert), so a
  // plain sort is deterministic.
  std::sort(reports_.begin(), reports_.end(), report_order);
  index_.clear();
  watched_.clear();
  return std::move(reports_);
}

void merge_reports(std::vector<RaceReport>& into,
                   std::vector<RaceReport>&& from) {
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::size_t,
                     ReportKeyHash>
      index;
  index.reserve(into.size() + from.size());
  for (std::size_t i = 0; i < into.size(); ++i) {
    index.emplace(into[i].key(), i);
  }
  for (RaceReport& report : from) {
    auto it = index.find(report.key());
    if (it == index.end()) {
      index.emplace(report.key(), into.size());
      into.push_back(std::move(report));
      continue;
    }
    RaceReport& existing = into[it->second];
    existing.occurrences += report.occurrences;
    if (!existing.supplemental_read.has_value()) {
      existing.supplemental_read = std::move(report.supplemental_read);
    }
    existing.watched_reads.insert(
        existing.watched_reads.end(),
        std::make_move_iterator(report.watched_reads.begin()),
        std::make_move_iterator(report.watched_reads.end()));
  }
  // Keys are unique after the merge loop, so stable vs unstable sort give
  // the same order; stable_sort documents that merge order is key order.
  std::stable_sort(into.begin(), into.end(), report_order);
}

}  // namespace owl::race
