#include "race/annotations.hpp"

namespace owl::race {

void AnnotationSet::merge(const AnnotationSet& other) {
  releases_.insert(other.releases_.begin(), other.releases_.end());
  acquires_.insert(other.acquires_.begin(), other.acquires_.end());
}

}  // namespace owl::race
