#include "race/mhp.hpp"

#include <bit>
#include <memory>
#include <unordered_set>
#include <vector>

#include "ir/function.hpp"
#include "ir/instruction.hpp"
#include "ir/loops.hpp"

namespace owl::race {

namespace {

using CallEdges =
    std::unordered_map<const ir::Function*, std::vector<const ir::Function*>>;

bool runnable_body(const ir::Function* f) {
  return f != nullptr && f->is_internal() && f->has_body();
}

CallEdges build_call_edges(const ir::Module& module,
                           const ir::IndirectCallMap& resolved) {
  CallEdges edges;
  for (const auto& f : module.functions()) {
    auto& out = edges[f.get()];
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() == ir::Opcode::kCall) {
          if (runnable_body(instr->callee())) out.push_back(instr->callee());
        } else if (instr->opcode() == ir::Opcode::kCallPtr) {
          auto it = resolved.find(instr.get());
          if (it == resolved.end()) continue;
          for (const ir::Function* target : it->second) {
            if (runnable_body(target)) out.push_back(target);
          }
        }
      }
    }
  }
  return edges;
}

}  // namespace

MhpInfo::MhpInfo(const ir::Module& module,
                 const ir::IndirectCallMap& resolved) {
  const CallEdges edges = build_call_edges(module, resolved);

  // Propagate one context bit through the call graph from `entry`.
  auto flood = [&](const ir::Function* entry, std::uint64_t bit) {
    std::vector<const ir::Function*> work{entry};
    while (!work.empty()) {
      const ir::Function* f = work.back();
      work.pop_back();
      std::uint64_t& mask = context_mask_[f];
      if ((mask & bit) != 0) continue;
      mask |= bit;
      auto it = edges.find(f);
      if (it == edges.end()) continue;
      for (const ir::Function* callee : it->second) work.push_back(callee);
    }
  };

  // Spawn sites in module order; count per callee for self-parallelism.
  struct SpawnSite {
    const ir::Function* callee;
    bool in_loop;
  };
  std::vector<SpawnSite> spawns;
  std::unordered_map<const ir::Function*, std::size_t> spawn_count;
  std::unordered_set<const ir::Function*> called_or_spawned;
  for (const auto& [caller, callees] : edges) {
    (void)caller;
    for (const ir::Function* callee : callees) {
      called_or_spawned.insert(callee);
    }
  }
  for (const auto& f : module.functions()) {
    std::unique_ptr<ir::LoopInfo> loops;  // built lazily per function
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() != ir::Opcode::kThreadCreate) continue;
        const ir::Function* callee = instr->callee();
        if (!runnable_body(callee)) continue;
        if (!loops) loops = std::make_unique<ir::LoopInfo>(*f);
        spawns.push_back(SpawnSite{callee, loops->in_loop(instr.get())});
        ++spawn_count[callee];
        called_or_spawned.insert(callee);
      }
    }
  }
  spawn_sites_ = spawns.size();

  // Context 0: the initial thread, entered at some root function. Roots are
  // functions nobody calls or spawns; if the call graph is fully cyclic we
  // conservatively treat every function as a potential entry.
  bool have_root = false;
  for (const auto& f : module.functions()) {
    if (!runnable_body(f.get())) continue;
    if (called_or_spawned.count(f.get()) != 0) continue;
    flood(f.get(), 1);
    have_root = true;
  }
  if (!have_root) {
    for (const auto& f : module.functions()) {
      if (runnable_body(f.get())) flood(f.get(), 1);
    }
  }

  // One context per spawn site, saturating at bit 63.
  for (std::size_t i = 0; i < spawns.size(); ++i) {
    const unsigned bit_index = i + 1 < 64 ? static_cast<unsigned>(i + 1) : 63;
    const std::uint64_t bit = std::uint64_t{1} << bit_index;
    flood(spawns[i].callee, bit);
    if (spawns[i].in_loop || spawn_count[spawns[i].callee] > 1 ||
        (bit_index == 63 && spawns.size() > 63)) {
      self_parallel_ |= bit;
    }
  }
  context_count_ = 1 + (spawns.size() < 64 ? spawns.size() : 63);
}

std::uint64_t MhpInfo::mask_of(const ir::Function* f) const {
  auto it = context_mask_.find(f);
  return it == context_mask_.end() ? 0 : it->second;
}

bool MhpInfo::may_happen_in_parallel(const ir::Function* a,
                                     const ir::Function* b) const {
  const std::uint64_t ma = mask_of(a);
  const std::uint64_t mb = mask_of(b);
  if (ma == 0 || mb == 0) return false;
  const std::uint64_t u = ma | mb;
  if (std::popcount(u) >= 2) return true;
  // Both confined to one context: concurrent only if it can run twice.
  return (u & self_parallel_) != 0;
}

}  // namespace owl::race
