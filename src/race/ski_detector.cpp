#include "race/ski_detector.hpp"

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace owl::race {

ScheduleExplorationResult explore_schedules(const MachineFactory& factory,
                                            unsigned num_schedules,
                                            std::uint64_t base_seed,
                                            const AnnotationSet* annotations,
                                            unsigned pct_depth,
                                            DetectorImpl impl,
                                            PrescreenView prescreen) {
  ScheduleExplorationResult result;
  // One detector for the whole sweep, reset() between schedules: clock
  // components, hash-table buckets, and report storage keep their capacity
  // instead of being reallocated per schedule (bench-visible on the
  // verifier's schedule-exploration hot loop).
  SkiDetector detector(annotations, impl, prescreen);
  for (unsigned i = 0; i < num_schedules; ++i) {
    TRACE_SPAN("detect-schedule", "ski");
    support::metrics().counter("detector.schedules_explored").inc();
    if (i != 0) detector.reset();
    std::unique_ptr<interp::Machine> machine = factory();
    machine->add_observer(&detector);
    interp::PctScheduler scheduler(base_seed + i, pct_depth,
                                   /*expected_steps=*/20000);
    const interp::RunResult run = machine->run(scheduler);
    result.total_steps += run.steps;
    ++result.schedules_run;
    std::vector<RaceReport> reports = detector.take_reports();
    if (!reports.empty()) ++result.schedules_with_races;
    merge_reports(result.reports, std::move(reports));
  }
  return result;
}

}  // namespace owl::race
