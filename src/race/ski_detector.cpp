#include "race/ski_detector.hpp"

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace owl::race {

ScheduleExplorationResult explore_schedules(const MachineFactory& factory,
                                            unsigned num_schedules,
                                            std::uint64_t base_seed,
                                            const AnnotationSet* annotations,
                                            unsigned pct_depth,
                                            DetectorImpl impl,
                                            PrescreenView prescreen) {
  ScheduleExplorationResult result;
  for (unsigned i = 0; i < num_schedules; ++i) {
    TRACE_SPAN("detect-schedule", "ski");
    support::metrics().counter("detector.schedules_explored").inc();
    std::unique_ptr<interp::Machine> machine = factory();
    SkiDetector detector(annotations, impl, prescreen);
    machine->add_observer(&detector);
    interp::PctScheduler scheduler(base_seed + i, pct_depth,
                                   /*expected_steps=*/20000);
    const interp::RunResult run = machine->run(scheduler);
    result.total_steps += run.steps;
    ++result.schedules_run;
    std::vector<RaceReport> reports = detector.take_reports();
    if (!reports.empty()) ++result.schedules_with_races;
    merge_reports(result.reports, std::move(reports));
  }
  return result;
}

}  // namespace owl::race
