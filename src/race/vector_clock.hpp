// Vector clocks for happens-before race detection.
//
// The TSan substrate (DESIGN.md §2) uses full vector clocks rather than
// FastTrack epochs: simulated executions are small enough that precision is
// worth more than the constant-factor speedup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace owl::race {

using ThreadId = std::uint32_t;

class VectorClock {
 public:
  VectorClock() = default;

  /// Component for `tid` (0 if never touched).
  std::uint64_t get(ThreadId tid) const noexcept {
    return tid < clocks_.size() ? clocks_[tid] : 0;
  }

  void set(ThreadId tid, std::uint64_t value) {
    ensure(tid);
    clocks_[tid] = value;
  }

  /// Advances this thread's own component.
  void increment(ThreadId tid) {
    ensure(tid);
    ++clocks_[tid];
  }

  /// Pointwise maximum (join).
  void join(const VectorClock& other);

  /// True iff this clock happens-before-or-equals `other` (pointwise <=).
  bool leq(const VectorClock& other) const noexcept;

  /// True iff the event stamped (tid, epoch) happens-before `other`,
  /// i.e. other has seen at least `epoch` of `tid`.
  static bool epoch_leq(ThreadId tid, std::uint64_t epoch,
                        const VectorClock& other) noexcept {
    return epoch <= other.get(tid);
  }

  std::size_t size() const noexcept { return clocks_.size(); }
  bool empty() const noexcept;

  std::string to_string() const;

 private:
  void ensure(ThreadId tid) {
    if (tid >= clocks_.size()) clocks_.resize(tid + 1, 0);
  }

  std::vector<std::uint64_t> clocks_;
};

}  // namespace owl::race
