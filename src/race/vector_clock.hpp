// Vector clocks for happens-before race detection.
//
// The TSan substrate (DESIGN.md §2) uses full vector clocks rather than
// FastTrack epochs: simulated executions are small enough that precision is
// worth more than the constant-factor speedup. The fast detection substrate
// layers FastTrack-style same-epoch shortcuts *in front of* these clocks
// (tsan_detector.cpp) but always falls back to the full-vector comparison,
// so precision — and the emitted reports — are unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace owl::race {

using ThreadId = std::uint32_t;

class VectorClock {
 public:
  VectorClock() = default;

  /// Component for `tid` (0 if never touched).
  std::uint64_t get(ThreadId tid) const noexcept {
    return tid < clocks_.size() ? clocks_[tid] : 0;
  }

  void set(ThreadId tid, std::uint64_t value) {
    ensure(tid);
    clocks_[tid] = value;
  }

  /// Advances this thread's own component.
  void increment(ThreadId tid) {
    ensure(tid);
    ++clocks_[tid];
  }

  /// Pointwise maximum (join).
  void join(const VectorClock& other);

  /// True iff this clock happens-before-or-equals `other` (pointwise <=).
  bool leq(const VectorClock& other) const noexcept;

  /// True iff the event stamped (tid, epoch) happens-before `other`,
  /// i.e. other has seen at least `epoch` of `tid`.
  static bool epoch_leq(ThreadId tid, std::uint64_t epoch,
                        const VectorClock& other) noexcept {
    return epoch <= other.get(tid);
  }

  std::size_t size() const noexcept { return clocks_.size(); }
  bool empty() const noexcept;

  /// Pre-reserves capacity for `threads` components without changing the
  /// observable size (detectors that know the thread count call this once
  /// so interleaved ensure() calls never reallocate).
  void reserve(std::size_t threads) { clocks_.reserve(threads); }
  /// Back to the never-touched state, keeping the component buffer — the
  /// detector-reuse path (TsanDetector::reset) clears clocks in place so a
  /// schedule sweep stops paying one allocation per clock per schedule.
  void clear() noexcept { clocks_.clear(); }
  std::size_t capacity() const noexcept { return clocks_.capacity(); }

  std::string to_string() const;

 private:
  void ensure(ThreadId tid) {
    if (tid >= clocks_.size()) grow_to(tid + 1);
  }

  /// Grows to exactly `count` components, but reserves geometrically so
  /// interleaved ensure(t0), ensure(t1), ... over increasing tids costs
  /// O(n) amortized instead of one reallocation (and full copy) per tid.
  void grow_to(std::size_t count);

  std::vector<std::uint64_t> clocks_;
};

}  // namespace owl::race
