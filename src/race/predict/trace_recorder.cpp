#include "race/predict/trace_recorder.hpp"

#include "interp/memory.hpp"

namespace owl::race::predict {

void TraceRecorder::begin_pass(const AnnotationSet* annotations) {
  annotations_ = annotations;
  traces_.clear();
}

void TraceRecorder::begin_run() { traces_.emplace_back(); }

void TraceRecorder::on_access(const Access& access, const interp::Machine&) {
  if (traces_.empty()) return;
  TraceEvent event;
  event.kind = access.is_write ? TraceEvent::Kind::kWrite
                               : TraceEvent::Kind::kRead;
  event.sync_access =
      access.is_atomic ||
      (annotations_ != nullptr && annotations_->annotated(access.instr));
  event.tid = access.tid;
  event.addr = access.addr;
  event.value = access.value;
  event.instr = access.instr;
  event.context = access.context;
  traces_.back().events.push_back(event);
}

void TraceRecorder::on_sync(const Sync& sync, const interp::Machine&) {
  if (traces_.empty()) return;
  TraceEvent event;
  switch (sync.kind) {
    case SyncKind::kLockAcquire:
      event.kind = TraceEvent::Kind::kAcquire;
      break;
    case SyncKind::kLockRelease:
      event.kind = TraceEvent::Kind::kRelease;
      break;
    case SyncKind::kHbRelease:
      event.kind = TraceEvent::Kind::kHbRelease;
      break;
    case SyncKind::kHbAcquire:
      event.kind = TraceEvent::Kind::kHbAcquire;
      break;
    case SyncKind::kThreadCreate:
      event.kind = TraceEvent::Kind::kThreadCreate;
      break;
    case SyncKind::kThreadFinish:
      event.kind = TraceEvent::Kind::kThreadFinish;
      break;
    case SyncKind::kThreadJoin:
      event.kind = TraceEvent::Kind::kThreadJoin;
      break;
  }
  event.tid = sync.tid;
  event.addr = sync.addr;
  traces_.back().events.push_back(event);
}

void TraceRecorder::finish_run(const interp::Machine& machine) {
  if (traces_.empty()) return;
  Trace& trace = traces_.back();
  for (const TraceEvent& event : trace.events) {
    if (!event.is_access()) continue;
    const Trace::StackKey key{event.context, event.instr};
    if (!trace.stacks.contains(key)) {
      trace.stacks.emplace(
          key, machine.contexts().call_stack(event.context, event.instr));
    }
    if (!trace.object_names.contains(event.addr)) {
      const interp::MemObject* obj = machine.memory().find_object(event.addr);
      trace.object_names.emplace(event.addr,
                                 obj != nullptr ? obj->name : std::string());
    }
  }
}

}  // namespace owl::race::predict
