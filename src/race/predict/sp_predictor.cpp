#include "race/predict/sp_predictor.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>

#include "ir/module.hpp"

namespace owl::race::predict {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Loads whose value (transitively, through pure data flow) steers control
/// flow, an address, or crosses a function boundary. Only these must keep
/// their observed reads-from writer in a reordering: a diverging data-only
/// read changes values downstream but never which instructions execute.
std::unordered_set<const ir::Instruction*> steering_loads(
    const ir::Module& module) {
  std::unordered_set<const ir::Instruction*> loads;
  for (const auto& function : module.functions()) {
    std::unordered_set<const ir::Value*> marked;
    // Seed: operand positions whose value decides reachability or identity
    // of later events — branch conditions, every address computation, and
    // anything crossing a call/intrinsic boundary.
    for (const auto& block : function->blocks()) {
      for (const auto& instr : block->instructions()) {
        switch (instr->opcode()) {
          case ir::Opcode::kAdd: case ir::Opcode::kSub: case ir::Opcode::kMul:
          case ir::Opcode::kUDiv: case ir::Opcode::kSDiv:
          case ir::Opcode::kAnd: case ir::Opcode::kOr: case ir::Opcode::kXor:
          case ir::Opcode::kShl: case ir::Opcode::kLShr:
          case ir::Opcode::kICmp: case ir::Opcode::kPhi:
          case ir::Opcode::kPrint:
            break;  // pure data flow (or output-only): no seed
          case ir::Opcode::kStore:
            marked.insert(instr->operand(1));  // address, not stored value
            break;
          case ir::Opcode::kLoad:
            marked.insert(instr->operand(0));
            break;
          default:
            // Conservative: br conditions, gep bases/offsets, lock/call/
            // intrinsic operands, ret values — all steering.
            for (const ir::Value* v : instr->operands()) marked.insert(v);
            break;
        }
      }
    }
    // Propagate backward through pure data producers until stable; memory
    // reads terminate a chain (that is the load we are classifying).
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& block : function->blocks()) {
        for (const auto& instr : block->instructions()) {
          if (!marked.contains(instr.get())) continue;
          if (instr->opcode() == ir::Opcode::kLoad) continue;
          for (const ir::Value* v : instr->operands()) {
            if (marked.insert(v).second) changed = true;
          }
        }
      }
    }
    for (const auto& block : function->blocks()) {
      for (const auto& instr : block->instructions()) {
        if (instr->opcode() == ir::Opcode::kLoad &&
            marked.contains(instr.get())) {
          loads.insert(instr.get());
        }
      }
    }
  }
  return loads;
}

/// Per-trace structural index: everything the closure consults, built once
/// and shared by every pair query against that trace.
struct TraceIndex {
  const Trace* trace = nullptr;
  std::vector<std::uint32_t> local;  ///< per event: index within its thread
  std::map<interp::ThreadId, std::vector<std::size_t>> by_thread;
  std::vector<std::size_t> rf_writer;   ///< reads: last same-addr write
  std::vector<std::size_t> hb_source;   ///< acquire-side: last release-side
  std::vector<std::size_t> lock_rel;    ///< acquires: matching release
  std::map<interp::Address, std::vector<std::size_t>> lock_acquires;
  std::map<interp::ThreadId, std::size_t> creator;
  std::map<interp::ThreadId, std::size_t> finisher;
  /// Plain (non-sync) access events per static instruction id.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_instr;

  static bool release_side(const TraceEvent& e) {
    return e.kind == TraceEvent::Kind::kHbRelease ||
           (e.kind == TraceEvent::Kind::kWrite && e.sync_access);
  }
  static bool acquire_side(const TraceEvent& e) {
    return e.kind == TraceEvent::Kind::kHbAcquire ||
           (e.kind == TraceEvent::Kind::kRead && e.sync_access);
  }
};

TraceIndex build_index(const Trace& trace) {
  TraceIndex ix;
  ix.trace = &trace;
  const std::size_t n = trace.events.size();
  ix.local.resize(n, 0);
  ix.rf_writer.assign(n, kNone);
  ix.hb_source.assign(n, kNone);
  ix.lock_rel.assign(n, kNone);
  std::map<interp::Address, std::size_t> last_write;
  std::map<interp::Address, std::size_t> last_release_side;
  std::map<std::pair<interp::Address, interp::ThreadId>, std::size_t> open;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = trace.events[i];
    auto& lane = ix.by_thread[e.tid];
    ix.local[i] = static_cast<std::uint32_t>(lane.size());
    lane.push_back(i);
    switch (e.kind) {
      case TraceEvent::Kind::kRead:
        if (const auto it = last_write.find(e.addr); it != last_write.end()) {
          ix.rf_writer[i] = it->second;
        }
        if (e.sync_access) {
          if (const auto it = last_release_side.find(e.addr);
              it != last_release_side.end()) {
            ix.hb_source[i] = it->second;
          }
        } else if (e.instr != nullptr) {
          ix.by_instr[e.instr->id()].push_back(i);
        }
        break;
      case TraceEvent::Kind::kWrite:
        last_write[e.addr] = i;
        if (e.sync_access) {
          last_release_side[e.addr] = i;
        } else if (e.instr != nullptr) {
          ix.by_instr[e.instr->id()].push_back(i);
        }
        break;
      case TraceEvent::Kind::kAcquire:
        ix.lock_acquires[e.addr].push_back(i);
        open[{e.addr, e.tid}] = i;
        break;
      case TraceEvent::Kind::kRelease:
        if (const auto it = open.find({e.addr, e.tid}); it != open.end()) {
          ix.lock_rel[it->second] = i;
          open.erase(it);
        }
        break;
      case TraceEvent::Kind::kHbRelease:
        last_release_side[e.addr] = i;
        break;
      case TraceEvent::Kind::kHbAcquire:
        if (const auto it = last_release_side.find(e.addr);
            it != last_release_side.end()) {
          ix.hb_source[i] = it->second;
        }
        break;
      case TraceEvent::Kind::kThreadCreate:
        ix.creator.emplace(static_cast<interp::ThreadId>(e.addr), i);
        break;
      case TraceEvent::Kind::kThreadFinish:
        ix.finisher.emplace(e.tid, i);
        break;
      case TraceEvent::Kind::kThreadJoin:
        break;
    }
  }
  return ix;
}

/// One SP-closure query: can e1 and e2 be co-enabled by a sync-preserving
/// correct reordering of this trace?
class ClosureQuery {
 public:
  ClosureQuery(const TraceIndex& ix,
               const std::unordered_set<const ir::Instruction*>* steering,
               std::size_t e1, std::size_t e2)
      : ix_(ix), steering_(steering), e1_(e1), e2_(e2),
        t1_(ix.trace->events[e1].tid), t2_(ix.trace->events[e2].tid),
        cap1_(ix.local[e1]), cap2_(ix.local[e2]) {}

  bool feasible(std::uint64_t& iterations) {
    // The racing threads must have reached e1/e2: their po-prefixes are the
    // initial ideal, and both threads must have been started at all.
    require_creator(t1_);
    require_creator(t2_);
    if (cap1_ > 0) require(ix_.by_thread.at(t1_)[cap1_ - 1]);
    if (cap2_ > 0) require(ix_.by_thread.at(t2_)[cap2_ - 1]);
    drain();
    // Lock-order closure runs to fixpoint on top of the event worklist: a
    // round can pull a release (and its po-prefix) in, which can include
    // new acquires.
    bool changed = true;
    while (changed && !contradiction_) {
      changed = false;
      ++iterations;
      for (const auto& [addr, acquires] : ix_.lock_acquires) {
        std::size_t last_included = kNone;
        for (const std::size_t a : acquires) {
          if (!included(a)) continue;
          if (last_included != kNone) {
            const std::size_t rel = ix_.lock_rel[last_included];
            if (rel == kNone) {
              contradiction_ = true;  // held forever, yet re-acquired later
            } else if (!included(rel)) {
              require(rel);
              changed = true;
            }
          }
          last_included = a;
        }
        if (contradiction_) break;
      }
      drain();
    }
    iterations += processed_;
    if (contradiction_) return false;
    // Boundary: both threads parked at e1/e2 may not hold a common lock.
    for (const auto& [addr, acquires] : ix_.lock_acquires) {
      bool held1 = false;
      bool held2 = false;
      for (const std::size_t a : acquires) {
        const TraceEvent& acq = ix_.trace->events[a];
        if (acq.tid != t1_ && acq.tid != t2_) continue;
        if (!included(a)) continue;
        const std::size_t rel = ix_.lock_rel[a];
        const bool released = rel != kNone && included(rel);
        if (acq.tid == t1_) held1 = !released;
        if (acq.tid == t2_) held2 = !released;
      }
      if (held1 && held2) return false;
    }
    return true;
  }

 private:
  bool included(std::size_t idx) const {
    const interp::ThreadId t = ix_.trace->events[idx].tid;
    const auto it = frontier_.find(t);
    return it != frontier_.end() && ix_.local[idx] < it->second;
  }

  void require_creator(interp::ThreadId tid) {
    if (const auto it = ix_.creator.find(tid); it != ix_.creator.end()) {
      require(it->second);
    }
  }

  /// Includes `idx` and (via po) everything before it in its thread.
  void require(std::size_t idx) {
    if (contradiction_) return;
    const interp::ThreadId t = ix_.trace->events[idx].tid;
    const std::uint32_t li = ix_.local[idx];
    if ((t == t1_ && li >= cap1_) || (t == t2_ && li >= cap2_)) {
      contradiction_ = true;  // forced to run past a racing event
      return;
    }
    std::size_t& fr = frontier_[t];
    if (li < fr) return;
    if (fr == 0) require_creator(t);
    const auto& lane = ix_.by_thread.at(t);
    for (std::size_t j = fr; j <= li; ++j) worklist_.push_back(lane[j]);
    fr = li + 1;
  }

  void drain() {
    while (!worklist_.empty() && !contradiction_) {
      const std::size_t idx = worklist_.back();
      worklist_.pop_back();
      ++processed_;
      const TraceEvent& e = ix_.trace->events[idx];
      switch (e.kind) {
        case TraceEvent::Kind::kRead:
          if (TraceIndex::acquire_side(e)) {
            if (ix_.hb_source[idx] != kNone) require(ix_.hb_source[idx]);
          } else if (ix_.rf_writer[idx] != kNone &&
                     (steering_ == nullptr || e.instr == nullptr ||
                      steering_->contains(e.instr))) {
            require(ix_.rf_writer[idx]);
          }
          break;
        case TraceEvent::Kind::kHbAcquire:
          if (ix_.hb_source[idx] != kNone) require(ix_.hb_source[idx]);
          break;
        case TraceEvent::Kind::kThreadJoin: {
          const auto joined = static_cast<interp::ThreadId>(e.addr);
          if (const auto it = ix_.finisher.find(joined);
              it != ix_.finisher.end()) {
            require(it->second);
          } else {
            contradiction_ = true;  // joining a thread the trace never ended
          }
          break;
        }
        default:
          break;  // writes, acquires/releases, create/finish: no extra edge
      }
    }
  }

  const TraceIndex& ix_;
  const std::unordered_set<const ir::Instruction*>* steering_;
  std::size_t e1_, e2_;
  interp::ThreadId t1_, t2_;
  std::uint32_t cap1_, cap2_;
  std::map<interp::ThreadId, std::size_t> frontier_;
  std::vector<std::size_t> worklist_;
  std::uint64_t processed_ = 0;
  bool contradiction_ = false;
};

bool conflicting(const TraceEvent& a, const TraceEvent& b) {
  return a.tid != b.tid && a.addr == b.addr &&
         (a.kind == TraceEvent::Kind::kWrite ||
          b.kind == TraceEvent::Kind::kWrite);
}

AccessRecord make_record(const Trace& trace, const TraceEvent& event) {
  AccessRecord record;
  record.tid = event.tid;
  record.instr = event.instr;
  record.addr = event.addr;
  record.value = event.value;
  record.is_write = event.kind == TraceEvent::Kind::kWrite;
  if (const interp::CallStack* stack = trace.stack_for(event)) {
    record.stack = *stack;
  }
  return record;
}

}  // namespace

PredictOutcome SpPredictor::analyze(
    const ir::Module* module, const std::vector<Trace>& traces,
    const std::vector<RaceReport>& reduced) const {
  PredictOutcome out;
  std::unordered_set<const ir::Instruction*> steering;
  if (module != nullptr) steering = steering_loads(*module);
  const auto* steering_ptr = module != nullptr ? &steering : nullptr;

  std::vector<TraceIndex> indexes;
  indexes.reserve(traces.size());
  for (const Trace& trace : traces) indexes.push_back(build_index(trace));

  // --- verdicts for the detector's reduced reports ---
  // kInfeasible demands exhaustion: every dynamic occurrence of the key, in
  // every trace, within the enumeration cap, must close with a
  // contradiction. Atomicity reports are not races the SP theory covers;
  // they stay kUnknown and are never pruned.
  std::unordered_set<ReportKey, ReportKeyHash> reduced_keys;
  for (const RaceReport& report : reduced) {
    const ReportKey key = report.key();
    reduced_keys.insert(key);
    if (out.verdicts.contains(key)) continue;
    if (report.kind != ReportKind::kDataRace) {
      out.verdicts.emplace(key, Feasibility::kUnknown);
      continue;
    }
    bool any_feasible = false;
    bool capped = false;
    std::size_t occurrences = 0;
    for (const TraceIndex& ix : indexes) {
      if (any_feasible) break;
      const auto a_it = ix.by_instr.find(key.first);
      const auto b_it = ix.by_instr.find(key.second);
      if (a_it == ix.by_instr.end() || b_it == ix.by_instr.end()) continue;
      std::size_t checked = 0;
      for (const std::size_t a : a_it->second) {
        if (any_feasible || capped) break;
        for (const std::size_t b : b_it->second) {
          if (key.first == key.second && b <= a) continue;
          const std::size_t lo = std::min(a, b);
          const std::size_t hi = std::max(a, b);
          if (!conflicting(ix.trace->events[lo], ix.trace->events[hi])) {
            continue;
          }
          if (checked >= options_.max_pairs_per_key) {
            capped = true;
            break;
          }
          ++checked;
          ++occurrences;
          ++out.candidates;
          ClosureQuery query(ix, steering_ptr, lo, hi);
          if (query.feasible(out.closure_iterations)) {
            any_feasible = true;
            break;
          }
        }
      }
    }
    Feasibility verdict = Feasibility::kUnknown;
    if (any_feasible) {
      verdict = Feasibility::kFeasible;
    } else if (occurrences > 0 && !capped) {
      verdict = Feasibility::kInfeasible;
      ++out.infeasible_keys;
    }
    out.verdicts.emplace(key, verdict);
  }

  // --- predicted-new candidates ---
  // Nearest-conflict enumeration: each plain access pairs with the closest
  // earlier conflicting access of every other thread. Keys the detector
  // already reported are skipped (their verdicts are above), and so is any
  // address a reduced report already covers — prediction's job here is
  // surfacing *objects* the observed schedules missed entirely, not extra
  // instruction pairs on a bug the detector has in hand (those would make
  // the final report set diverge from exhaustive exploration on a
  // schedule-count technicality). A key proved feasible once is synthesized
  // from that first (deterministic) occurrence.
  std::unordered_set<interp::Address> reported_addrs;
  for (const RaceReport& report : reduced) {
    reported_addrs.insert(report.first.addr);
    reported_addrs.insert(report.second.addr);
  }
  std::unordered_map<ReportKey, std::size_t, ReportKeyHash> new_checked;
  std::unordered_set<ReportKey, ReportKeyHash> new_feasible;
  for (const TraceIndex& ix : indexes) {
    const Trace& trace = *ix.trace;
    struct LastAccess {
      std::size_t read = kNone;
      std::size_t write = kNone;
    };
    std::map<interp::Address, std::map<interp::ThreadId, LastAccess>> last;
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      const TraceEvent& e = trace.events[i];
      if (!e.is_access() || e.sync_access || e.instr == nullptr) continue;
      if (reported_addrs.contains(e.addr)) continue;
      const bool is_write = e.kind == TraceEvent::Kind::kWrite;
      auto& per_thread = last[e.addr];
      for (const auto& [tid, prior] : per_thread) {
        if (tid == e.tid) continue;
        std::vector<std::size_t> partners;
        if (prior.write != kNone) partners.push_back(prior.write);
        if (is_write && prior.read != kNone) partners.push_back(prior.read);
        for (const std::size_t p : partners) {
          const TraceEvent& pe = trace.events[p];
          const std::uint64_t ia = pe.instr->id();
          const std::uint64_t ib = e.instr->id();
          const ReportKey key{std::min(ia, ib), std::max(ia, ib)};
          if (reduced_keys.contains(key) || new_feasible.contains(key)) {
            continue;
          }
          std::size_t& checked = new_checked[key];
          if (checked >= options_.max_pairs_per_key) continue;
          ++checked;
          ++out.candidates;
          ClosureQuery query(ix, steering_ptr, p, i);
          if (!query.feasible(out.closure_iterations)) continue;
          new_feasible.insert(key);
          RaceReport report;
          report.kind = ReportKind::kDataRace;
          report.first = make_record(trace, pe);
          report.second = make_record(trace, e);
          report.predicted = true;
          if (const auto name = trace.object_names.find(e.addr);
              name != trace.object_names.end()) {
            report.object_name = name->second;
          }
          out.predicted_new.push_back(std::move(report));
        }
      }
      LastAccess& mine = per_thread[e.tid];
      if (is_write) {
        mine.write = i;
      } else {
        mine.read = i;
      }
    }
  }
  std::sort(out.predicted_new.begin(), out.predicted_new.end(), report_order);
  return out;
}

}  // namespace owl::race::predict
