// Pipeline-facing mode switch for sync-preserving race prediction
// (DESIGN.md §12). Mirrors race/prescreen_view.hpp: kOff leaves every byte
// of pipeline output untouched; kOn prunes the race verifier's candidate
// set down to predicted-feasible reports (plus replay-confirmed predicted
// races the observed schedules never exhibited); kAudit runs the normal
// exhaustive path and only *checks* the predictor's verdicts against what
// the verifier actually confirmed (advisory predict.audit_violations — a
// verified race the predictor called infeasible is a soundness violation).
#pragma once

#include <string_view>

namespace owl::race {

enum class PredictMode {
  kOff,    ///< predictor not consulted (default)
  kOn,     ///< verifier sees only predicted-feasible candidates
  kAudit,  ///< exhaustive path plus verdict cross-check (must agree)
};

inline std::string_view predict_mode_name(PredictMode mode) noexcept {
  switch (mode) {
    case PredictMode::kOff: return "off";
    case PredictMode::kOn: return "on";
    case PredictMode::kAudit: return "audit";
  }
  return "?";
}

inline bool parse_predict_mode(std::string_view text,
                               PredictMode& out) noexcept {
  if (text == "off") { out = PredictMode::kOff; return true; }
  if (text == "on") { out = PredictMode::kOn; return true; }
  if (text == "audit") { out = PredictMode::kAudit; return true; }
  return false;
}

}  // namespace owl::race
