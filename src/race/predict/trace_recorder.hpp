// Event-trace capture for the sync-preserving race predictor.
//
// The predictor (sp_predictor.hpp) reasons about *one observed execution* at
// a time: the total order of memory accesses and synchronization operations
// one scheduler run produced. This observer records exactly that, one Trace
// per detection schedule, sharing the Machine with the detector that is
// already attached — prediction costs no extra executions.
//
// Two details make the traces faithful to what the detector saw:
//  - §5.1 annotations (and atomic accesses) are sync, not data: an annotated
//    release-store / acquire-load is recorded as an access but flagged
//    `sync_access`, so the predictor treats it as a happens-before edge and
//    never as a race candidate — matching TsanDetector's report stream.
//  - Call stacks only exist while the Machine is alive (ContextTree interns
//    ids, not frames), so finish_run() materializes them — memoized per
//    (context, instr) — before the machine is torn down. The predict stage
//    itself runs long after.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/machine.hpp"
#include "race/annotations.hpp"

namespace owl::race::predict {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kRead,
    kWrite,
    kAcquire,       ///< lock acquired (addr = mutex)
    kRelease,       ///< lock released (addr = mutex)
    kHbRelease,     ///< hb_release / condvar-signal side (addr = sync var)
    kHbAcquire,     ///< hb_acquire / condvar-wait side (addr = sync var)
    kThreadCreate,  ///< addr = child thread id
    kThreadFinish,
    kThreadJoin,    ///< addr = joined thread id
  };

  Kind kind = Kind::kRead;
  /// Access carries release/acquire semantics (annotation or atomic) — a
  /// sync edge for the closure, never a candidate race endpoint.
  bool sync_access = false;
  interp::ThreadId tid = 0;
  interp::Address addr = 0;
  interp::Word value = 0;
  const ir::Instruction* instr = nullptr;  ///< accesses only
  interp::ContextId context = interp::kNoContext;

  bool is_access() const noexcept {
    return kind == Kind::kRead || kind == Kind::kWrite;
  }
};

/// One scheduler run's event stream plus the machine-lifetime facts the
/// predictor needs to synthesize RaceReports after the machine is gone.
struct Trace {
  std::vector<TraceEvent> events;
  /// Racy-object naming, as TsanDetector::record_race resolves it.
  std::unordered_map<interp::Address, std::string> object_names;
  /// Materialized stacks keyed by (context, instr) — the same pair
  /// ContextTree::call_stack consumes.
  struct StackKey {
    interp::ContextId context;
    const ir::Instruction* instr;
    bool operator==(const StackKey&) const = default;
  };
  struct StackKeyHash {
    std::size_t operator()(const StackKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.context * 0x9e3779b97f4a7c15ULL ^
                                        reinterpret_cast<std::uintptr_t>(
                                            k.instr));
    }
  };
  std::unordered_map<StackKey, interp::CallStack, StackKeyHash> stacks;

  const interp::CallStack* stack_for(const TraceEvent& event) const {
    const auto it = stacks.find(StackKey{event.context, event.instr});
    return it != stacks.end() ? &it->second : nullptr;
  }
};

class TraceRecorder final : public interp::Observer {
 public:
  /// Starts a detection pass: drops any previously recorded traces (only
  /// the final pass — the annotated re-run when there is one — feeds the
  /// predictor) and adopts that pass's annotation view. `annotations` may
  /// be null; not owned, must outlive the pass.
  void begin_pass(const AnnotationSet* annotations);

  /// Starts one scheduler run within the pass (one Trace).
  void begin_run();

  /// Materializes stacks and object names for the current run's access
  /// events. Must be called while `machine` is alive.
  void finish_run(const interp::Machine& machine);

  void on_access(const Access& access, const interp::Machine&) override;
  void on_sync(const Sync& sync, const interp::Machine&) override;

  const std::vector<Trace>& traces() const noexcept { return traces_; }
  std::vector<Trace> take_traces() { return std::move(traces_); }

 private:
  const AnnotationSet* annotations_ = nullptr;
  std::vector<Trace> traces_;
};

}  // namespace owl::race::predict
