// Sync-preserving race prediction from a single observed trace
// (Mathur/Pavlogiannis/Viswanathan, PAPERS.md; DESIGN.md §12).
//
// Given the event traces the detection schedules already produced, the
// predictor decides for each candidate race pair (e1, e2) whether some
// *sync-preserving correct reordering* of the trace co-enables both events
// — without enumerating schedules. The decision is an ideal-closure
// computation: start from the po-prefixes of e1 and e2, close under
//   - reads-from: an included *steering* read (one whose value steers
//     control flow or an address) keeps its observed writer,
//   - lock semantics: of two included acquires of the same lock, the
//     trace-earlier one's release must be included,
//   - hb edges: an included acquire-side sync op keeps its observed
//     release-side source,
//   - thread order: a thread's first event needs its creator, a join needs
//     the joined thread's finish,
// and report infeasible exactly when the closure is forced to include e1,
// e2, or anything po-after them, or both racing threads hold a common lock
// at the reordering boundary. Restricting reads-from preservation to
// steering reads errs toward kFeasible: a data-only read can diverge from
// its observed value without making e2 unreachable, and over-approximating
// feasibility only costs verifier attempts — never a wrongly pruned race.
//
// Verdicts are per report *key* (race/report.hpp): a key is kInfeasible
// only when every dynamic occurrence across every trace closed with a
// contradiction and no enumeration cap truncated the search. Pairs on
// addresses no detector report touches, whose closure succeeds, become
// predicted-new candidates — races on objects the observed schedules
// missed entirely — synthesized as RaceReports for targeted replay
// confirmation. (Extra instruction pairs on an already-reported object are
// deliberately not synthesized: they would make --predict on diverge from
// exhaustive exploration on a schedule-count technicality.)
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "race/predict/trace_recorder.hpp"
#include "race/report.hpp"

namespace owl::ir {
class Module;
}  // namespace owl::ir

namespace owl::race::predict {

enum class Feasibility {
  kFeasible,    ///< some checked occurrence admits an SP reordering
  kInfeasible,  ///< every occurrence contradicts; safe to prune
  kUnknown,     ///< no occurrence seen, or the pair cap truncated the search
};

using ReportKey = std::pair<std::uint64_t, std::uint64_t>;

struct ReportKeyHash {
  std::size_t operator()(const ReportKey& key) const noexcept {
    return std::hash<std::uint64_t>{}(key.first * 0x9e3779b97f4a7c15ULL ^
                                      key.second);
  }
};

struct PredictOutcome {
  /// Verdict for every reduced report handed to analyze().
  std::unordered_map<ReportKey, Feasibility, ReportKeyHash> verdicts;
  /// SP-feasible candidates whose key no reduced report carries, sorted by
  /// report_order; each must still be confirmed by replay before surviving.
  std::vector<RaceReport> predicted_new;
  std::uint64_t candidates = 0;          ///< dynamic pairs SP-checked
  std::uint64_t closure_iterations = 0;  ///< closure work across all checks
  std::uint64_t infeasible_keys = 0;     ///< reduced keys proved infeasible

  Feasibility verdict_for(const ReportKey& key) const {
    const auto it = verdicts.find(key);
    return it != verdicts.end() ? it->second : Feasibility::kUnknown;
  }
};

class SpPredictor {
 public:
  struct Options {
    /// SP checks per report key per trace before the verdict degrades to
    /// kUnknown (never prune what was not exhaustively checked).
    std::size_t max_pairs_per_key = 8;
  };

  SpPredictor() = default;
  explicit SpPredictor(Options options) : options_(options) {}

  /// Analyzes every trace against the reduced report set. `module` feeds
  /// the steering-read analysis; when null every read is treated as
  /// steering (strictest closure — unit-test entry point).
  PredictOutcome analyze(const ir::Module* module,
                         const std::vector<Trace>& traces,
                         const std::vector<RaceReport>& reduced) const;

 private:
  Options options_;
};

}  // namespace owl::race::predict
