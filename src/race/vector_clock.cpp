#include "race/vector_clock.hpp"

#include <algorithm>

namespace owl::race {

void VectorClock::join(const VectorClock& other) {
  if (other.clocks_.size() > clocks_.size()) {
    clocks_.resize(other.clocks_.size(), 0);
  }
  for (std::size_t i = 0; i < other.clocks_.size(); ++i) {
    clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const noexcept {
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (clocks_[i] > other.get(static_cast<ThreadId>(i))) return false;
  }
  return true;
}

bool VectorClock::empty() const noexcept {
  return std::all_of(clocks_.begin(), clocks_.end(),
                     [](std::uint64_t c) { return c == 0; });
}

std::string VectorClock::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(clocks_[i]);
  }
  out += "]";
  return out;
}

}  // namespace owl::race
