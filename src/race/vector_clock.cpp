#include "race/vector_clock.hpp"

#include <algorithm>

namespace owl::race {

void VectorClock::grow_to(std::size_t count) {
  if (count > clocks_.capacity()) {
    std::size_t cap = clocks_.capacity() < 4 ? 4 : clocks_.capacity() * 2;
    while (cap < count) cap *= 2;
    clocks_.reserve(cap);
  }
  clocks_.resize(count, 0);
}

void VectorClock::join(const VectorClock& other) {
  const std::size_t n = other.clocks_.size();
  if (n == 0) return;  // joining an untouched clock is a no-op
  if (n > clocks_.size()) grow_to(n);
  // Raw-pointer loop over the common prefix: clocks are a handful of words
  // in practice, so avoiding per-element bounds logic is the whole cost.
  std::uint64_t* dst = clocks_.data();
  const std::uint64_t* src = other.clocks_.data();
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const noexcept {
  const std::size_t common = std::min(clocks_.size(), other.clocks_.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (clocks_[i] > other.clocks_[i]) return false;
  }
  // Components past `other`'s length compare against an implicit 0.
  for (std::size_t i = common; i < clocks_.size(); ++i) {
    if (clocks_[i] > 0) return false;
  }
  return true;
}

bool VectorClock::empty() const noexcept {
  return std::all_of(clocks_.begin(), clocks_.end(),
                     [](std::uint64_t c) { return c == 0; });
}

std::string VectorClock::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(clocks_[i]);
  }
  out += "]";
  return out;
}

}  // namespace owl::race
