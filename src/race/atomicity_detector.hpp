// Atomicity-violation detection (AVIO/CTrigger-style).
//
// The paper (§8.3) points out that races are not the only concurrency bugs
// that feed attacks: "Atomicity violations can be detected by other
// detectors (e.g., CTrigger). By integrating these detectors, OWL's
// analysis and verifier components can detect more concurrency attacks."
// This is that integration: a detector for *unserializable interleavings*
// — a remote access sandwiched between two accesses of the same thread to
// the same location such that no serial order explains the outcome. The
// four unserializable patterns (AVIO):
//
//     local  remote  local      broken expectation
//      R       W       R        two reads expected to agree
//      W       W       R        read expected to see own write
//      W       R       W        intermediate state leaked
//      R       W       W        write computed from a stale read
//
// Crucially this is NOT happens-before racing: each access may be
// individually lock-protected (so TSan stays silent) while the *triple* is
// still unserializable — the classic check-then-act bug. Reports convert
// into the pipeline's RaceReport currency (the stale local read is the
// corrupted read Algorithm 1 starts from), so annotation, verification and
// vulnerability analysis run unchanged on top.
#pragma once

#include <array>
#include <map>
#include <utility>
#include <vector>

#include "interp/machine.hpp"
#include "race/report.hpp"

namespace owl::race {

enum class AtomicityPattern { kRWR, kWWR, kWRW, kRWW };

std::string_view atomicity_pattern_name(AtomicityPattern pattern) noexcept;

struct AtomicityReport {
  AccessRecord first_local;
  AccessRecord remote;
  AccessRecord second_local;
  AtomicityPattern pattern = AtomicityPattern::kRWR;
  std::string object_name;
  std::uint64_t occurrences = 1;

  /// Static dedup key over the instruction triple.
  std::array<std::uint64_t, 3> key() const noexcept;

  /// The key to_race_report().key() would produce, without materializing
  /// the full RaceReport (and copying three call stacks). The race
  /// verifier's replay loop compares candidates by this.
  std::pair<std::uint64_t, std::uint64_t> race_key() const noexcept;

  /// The local read whose value the remote write invalidated — what the
  /// vulnerability analyzer treats as the corrupted read. For the kWRW
  /// pattern (no stale local read) this is the remote read.
  const AccessRecord* corrupted_read() const noexcept;

  std::string to_string() const;

  /// Converts into the pipeline's report currency: first = remote access,
  /// second = second local access, supplemental read = corrupted read.
  RaceReport to_race_report() const;
};

class AtomicityDetector : public interp::Observer {
 public:
  AtomicityDetector() = default;

  void on_access(const Access& access,
                 const interp::Machine& machine) override;
  void on_sync(const Sync& sync, const interp::Machine& machine) override;

  std::vector<AtomicityReport> take_reports();
  const std::vector<AtomicityReport>& reports() const noexcept {
    return reports_;
  }
  std::uint64_t dynamic_violation_count() const noexcept {
    return dynamic_violations_;
  }

 private:
  struct LocalState {
    bool have_local = false;
    AccessRecord local;
    bool have_remote = false;
    AccessRecord first_remote;
  };

  static bool unserializable(bool l1_write, bool remote_write,
                             bool l2_write, AtomicityPattern& out) noexcept;

  // (addr, tid) -> pending local access + first intervening remote access.
  std::map<std::pair<interp::Address, interp::ThreadId>, LocalState>
      pending_;
  std::map<std::array<std::uint64_t, 3>, std::size_t> index_;
  std::vector<AtomicityReport> reports_;
  std::uint64_t dynamic_violations_ = 0;
};

}  // namespace owl::race
