// Paged shadow memory for the fast detection substrate (DESIGN.md §2).
//
// Replaces the reference detector's `unordered_map<Address, Shadow>` with a
// direct-mapped page table: an address indexes a 4096-slot page allocated on
// first touch, so the per-access lookup is two shifts and an array index
// instead of a hash, probe, and node chase. Addresses are byte-keyed exactly
// like the reference map — two distinct raw addresses never share a slot, so
// even corrupted unaligned pointers shadow independently and the emitted
// reports stay identical.
//
// Iteration order is explicit (direct pages ascending, then overflow pages
// ascending, slots ascending within a page) so anything that ever walks the
// shadow is deterministic by construction.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "interp/thread.hpp"
#include "race/vector_clock.hpp"

namespace owl::ir {
class Instruction;
}

namespace owl::race {

/// One prior access, compressed: no call stack, no heap. The (ctx, instr)
/// pair rebuilds the full AccessRecord lazily through
/// interp::ContextTree::call_stack when the access becomes a race candidate.
struct ShadowCell {
  ThreadId tid = 0;
  interp::ContextId ctx = interp::kNoContext;
  std::uint64_t epoch = 0;
  const ir::Instruction* instr = nullptr;
  interp::Word value = 0;
  /// Reads only: the write-check at capture time found no race. Clocks only
  /// grow and every write clears the read set, so while this cell survives,
  /// a repeat read by the same thread cannot race either — the licence for
  /// the detector's same-reader fast path.
  bool no_race = false;
};

/// Shadow state for one byte address: the last write plus the reads since.
/// The first reader lives inline (the overwhelmingly common case); extra
/// concurrent readers spill to a heap vector. Reads iterate in insertion
/// order, matching the reference implementation's vector semantics.
struct ShadowSlot {
  ShadowCell write;
  ShadowCell read0;
  std::vector<ShadowCell> more_reads;
  bool has_write = false;
  bool has_read0 = false;

  bool has_reads() const noexcept { return has_read0; }

  ShadowCell* find_read(ThreadId tid) noexcept {
    if (!has_read0) return nullptr;
    if (read0.tid == tid) return &read0;
    for (ShadowCell& read : more_reads) {
      if (read.tid == tid) return &read;
    }
    return nullptr;
  }

  void add_read(const ShadowCell& cell) {
    if (!has_read0) {
      read0 = cell;
      has_read0 = true;
    } else {
      more_reads.push_back(cell);
    }
  }

  template <typename F>
  void for_each_read(F&& f) const {
    if (!has_read0) return;
    f(read0);
    for (const ShadowCell& read : more_reads) f(read);
  }

  void set_write(const ShadowCell& cell) noexcept {
    write = cell;
    has_write = true;
  }

  void clear_reads() noexcept {
    has_read0 = false;
    more_reads.clear();  // keeps capacity for slot reuse
  }

  void reset() noexcept {
    write = ShadowCell{};
    read0 = ShadowCell{};
    more_reads.clear();
    has_write = false;
    has_read0 = false;
  }
};

class PagedShadow {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSlots = 1ull << kPageBits;  // 4096
  static constexpr std::uint64_t kSlotMask = kPageSlots - 1;
  /// Pages below this index live in a flat directory — it covers the first
  /// 256 MiB of simulated address space, far beyond what Memory's linear
  /// allocator (starting at 4096) ever hands out. Corrupted pointers can
  /// designate arbitrary 64-bit addresses; those pages spill to a sorted
  /// overflow map so one wild access cannot force a gigabyte directory.
  static constexpr std::uint64_t kDirectPages = 1ull << 16;

  /// The shadow slot for `addr`, allocating its page on first touch.
  ShadowSlot& slot(interp::Address addr) {
    const std::uint64_t page = addr >> kPageBits;
    std::unique_ptr<Page>& p =
        page < kDirectPages ? direct_slot(page) : overflow_[page];
    if (p == nullptr) {
      p = std::make_unique<Page>();
      ++pages_allocated_;
    }
    return p->slots[addr & kSlotMask];
  }

  /// Read-only lookup without allocation; nullptr if the page was never
  /// touched (callers still must check the slot's has_* flags).
  const ShadowSlot* find_slot(interp::Address addr) const noexcept {
    const std::uint64_t page = addr >> kPageBits;
    const Page* p = nullptr;
    if (page < kDirectPages) {
      if (page < direct_.size()) p = direct_[page].get();
    } else if (const auto it = overflow_.find(page); it != overflow_.end()) {
      p = it->second.get();
    }
    return p != nullptr ? &p->slots[addr & kSlotMask] : nullptr;
  }

  /// Allocated (touched) pages.
  std::size_t page_count() const noexcept {
    std::size_t count = overflow_.size();
    for (const auto& p : direct_) {
      if (p != nullptr) ++count;
    }
    return count;
  }

  /// Calls `f(addr, slot)` for every active slot (one with a write or a
  /// read) in the explicit deterministic order: direct pages ascending,
  /// then overflow pages ascending, slot index ascending within a page.
  template <typename F>
  void for_each_active_slot(F&& f) const {
    const auto visit_page = [&f](std::uint64_t page, const Page& p) {
      for (std::uint64_t i = 0; i < kPageSlots; ++i) {
        const ShadowSlot& slot = p.slots[i];
        if (slot.has_write || slot.has_read0) {
          f((page << kPageBits) | i, slot);
        }
      }
    };
    for (std::uint64_t page = 0; page < direct_.size(); ++page) {
      if (direct_[page] != nullptr) visit_page(page, *direct_[page]);
    }
    for (const auto& [page, p] : overflow_) visit_page(page, *p);
  }

  /// Cumulative first-touch page allocations over this shadow's lifetime —
  /// unlike page_count() it survives clear(), so it feeds the metrics
  /// registry (DESIGN.md §8) as a monotone counter.
  std::uint64_t pages_allocated() const noexcept { return pages_allocated_; }

  /// Drops every page (shadow returns to the never-touched state). Does not
  /// reset pages_allocated(): that counter is cumulative by design.
  void clear() noexcept {
    direct_.clear();
    overflow_.clear();
  }

 private:
  struct Page {
    std::array<ShadowSlot, kPageSlots> slots;
  };

  std::unique_ptr<Page>& direct_slot(std::uint64_t page) {
    if (page >= direct_.size()) direct_.resize(page + 1);
    return direct_[page];
  }

  std::vector<std::unique_ptr<Page>> direct_;
  std::map<std::uint64_t, std::unique_ptr<Page>> overflow_;
  std::uint64_t pages_allocated_ = 0;
};

}  // namespace owl::race
