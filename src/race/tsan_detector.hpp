// Happens-before (vector-clock) data-race detector — the TSan substrate.
//
// Subscribes to a Machine's memory and synchronization events and flags
// conflicting accesses unordered by happens-before. Reports are deduplicated
// by static instruction pair and carry both call stacks, matching the shape
// OWL consumes (§6.3):
//  - if an AnnotationSet is supplied, instructions annotated by the adhoc-
//    sync stage behave as release-stores/acquire-loads (TSan markups);
//  - for write-write races, the detector watches the address and attaches
//    the first subsequent load as the report's supplemental read — the
//    paper's modification so Algorithm 1 always has a corrupted read to
//    start from;
//  - in SKI mode (ski_detector.hpp) every subsequent read's call stack is
//    logged until a write sanitizes the address.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "interp/machine.hpp"
#include "race/annotations.hpp"
#include "race/report.hpp"
#include "race/vector_clock.hpp"

namespace owl::race {

class TsanDetector : public interp::Observer {
 public:
  /// `annotations` may be nullptr (first detection run). `ski_watch_mode`
  /// enables the §6.3 watch-list policy of logging all reads after a race.
  explicit TsanDetector(const AnnotationSet* annotations = nullptr,
                        bool ski_watch_mode = false)
      : annotations_(annotations), ski_watch_mode_(ski_watch_mode) {}

  void on_access(const Access& access,
                 const interp::Machine& machine) override;
  void on_sync(const Sync& sync, const interp::Machine& machine) override;

  /// Deduplicated reports in stable (key) order.
  std::vector<RaceReport> take_reports();
  const std::vector<RaceReport>& reports() const noexcept { return reports_; }

  /// Total dynamic race manifestations (>= reports().size()).
  std::uint64_t dynamic_race_count() const noexcept { return dynamic_races_; }

 private:
  struct ShadowAccess {
    ThreadId tid = 0;
    std::uint64_t epoch = 0;
    AccessRecord rec;
  };
  struct Shadow {
    std::optional<ShadowAccess> write;
    std::vector<ShadowAccess> reads;  ///< reads since the last write
  };

  VectorClock& clock(ThreadId tid) { return clocks_[tid]; }
  AccessRecord make_record(const Access& access,
                           const interp::Machine& machine) const;
  void record_race(const AccessRecord& prior, const AccessRecord& current,
                   const interp::Machine& machine);
  void feed_watchers(const AccessRecord& read);

  const AnnotationSet* annotations_;
  bool ski_watch_mode_;

  std::unordered_map<ThreadId, VectorClock> clocks_;
  std::unordered_map<interp::Address, VectorClock> lock_clocks_;
  std::unordered_map<interp::Address, VectorClock> sync_clocks_;
  std::unordered_map<ThreadId, VectorClock> finished_clocks_;
  std::unordered_map<interp::Address, Shadow> shadow_;

  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> index_;
  std::vector<RaceReport> reports_;
  /// Addresses whose reports still await a supplemental read / SKI logging.
  std::unordered_map<interp::Address, std::vector<std::size_t>> watched_;
  std::uint64_t dynamic_races_ = 0;
};

/// Merges `from` into `into`, collapsing identical static pairs (summing
/// occurrence counts, keeping the earliest supplemental read, concatenating
/// SKI-watched reads). Used when aggregating multi-schedule explorations.
void merge_reports(std::vector<RaceReport>& into,
                   std::vector<RaceReport>&& from);

}  // namespace owl::race
