// Happens-before (vector-clock) data-race detector — the TSan substrate.
//
// Subscribes to a Machine's memory and synchronization events and flags
// conflicting accesses unordered by happens-before. Reports are deduplicated
// by static instruction pair and carry both call stacks, matching the shape
// OWL consumes (§6.3):
//  - if an AnnotationSet is supplied, instructions annotated by the adhoc-
//    sync stage behave as release-stores/acquire-loads (TSan markups);
//  - for write-write races, the detector watches the address and attaches
//    the first subsequent load as the report's supplemental read — the
//    paper's modification so Algorithm 1 always has a corrupted read to
//    start from;
//  - in SKI mode (ski_detector.hpp) every subsequent read's call stack is
//    logged until a write sanitizes the address.
//
// Two implementations of the hot path live behind DetectorImpl:
//  - kFast (default): paged shadow memory, FastTrack-style epoch fast
//    paths, dense ThreadId-indexed clock tables, and lazy race-candidate
//    capture (call stacks rebuilt from interned context ids only when an
//    access actually races) — see DESIGN.md §2 "fast substrate";
//  - kReference: the original hash-map implementation, kept verbatim so
//    the CI differential gate can prove the fast path emits byte-identical
//    reports on every workload, seed, and jobs value.
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "interp/machine.hpp"
#include "race/annotations.hpp"
#include "race/prescreen_view.hpp"
#include "race/report.hpp"
#include "race/shadow_memory.hpp"
#include "race/vector_clock.hpp"

namespace owl::race {

/// Which detection-substrate implementation runs the hot path. Both emit
/// byte-identical reports; kReference exists for the differential gate.
enum class DetectorImpl {
  kFast,
  kReference,
};

/// Hash for the (min instruction id, max instruction id) report key — the
/// report index is a flat hash instead of an ordered map; take_reports'
/// final sort provides the stable order.
struct ReportKeyHash {
  std::size_t operator()(
      const std::pair<std::uint64_t, std::uint64_t>& key) const noexcept {
    std::uint64_t h = key.first * 0x9E3779B97F4A7C15ull;
    h ^= key.second + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

class TsanDetector : public interp::Observer {
 public:
  /// `annotations` may be nullptr (first detection run). `ski_watch_mode`
  /// enables the §6.3 watch-list policy of logging all reads after a race.
  /// `prescreen` defaults to an inert view (mode off); in kOn mode plain
  /// accesses the static prescreen proved race-free skip all shadow work.
  explicit TsanDetector(const AnnotationSet* annotations = nullptr,
                        bool ski_watch_mode = false,
                        DetectorImpl impl = DetectorImpl::kFast,
                        PrescreenView prescreen = {})
      : annotations_(annotations), ski_watch_mode_(ski_watch_mode),
        impl_(impl), prescreen_(prescreen) {
    index_.reserve(16);
    if (impl_ == DetectorImpl::kFast) {
      fast_lock_clocks_.reserve(16);
      fast_sync_clocks_.reserve(16);
    }
  }

  void on_access(const Access& access,
                 const interp::Machine& machine) override;
  void on_sync(const Sync& sync, const interp::Machine& machine) override;

  DetectorImpl impl() const noexcept { return impl_; }

  /// Returns the detector to its just-constructed observable state while
  /// keeping every buffer's capacity (clock components, hash-table buckets,
  /// report storage). explore_schedules reuses one detector across its
  /// whole sweep through this instead of constructing a fresh one per
  /// schedule — the per-schedule allocation churn (one heap vector per
  /// thread clock per schedule) was bench-visible on the verifier hot loop.
  void reset();

  /// Deduplicated reports in stable (key) order. Also flushes this run's
  /// SubstrateCounters into the global MetricsRegistry (one atomic add per
  /// counter, so the hot path itself stays metric-free).
  std::vector<RaceReport> take_reports();
  const std::vector<RaceReport>& reports() const noexcept { return reports_; }

  /// Total dynamic race manifestations (>= reports().size()).
  std::uint64_t dynamic_race_count() const noexcept { return dynamic_races_; }

  /// Per-run substrate accounting (DESIGN.md §8): plain locals bumped on
  /// the hot path, flushed to the metrics registry by take_reports(). All
  /// values are schedule-deterministic — they depend on the event stream
  /// only, never on wall clock or worker interleaving.
  struct SubstrateCounters {
    std::uint64_t accesses = 0;         ///< on_access events seen
    std::uint64_t sync_events = 0;      ///< on_sync events seen
    std::uint64_t epoch_write_hits = 0; ///< same-owner store fast path taken
    std::uint64_t epoch_read_hits = 0;  ///< no_race repeated-read fast path
    std::uint64_t clock_fallbacks = 0;  ///< full vector-clock slow paths
    std::uint64_t lazy_materializations = 0;  ///< AccessRecords rebuilt
    std::uint64_t prescreen_pruned = 0;  ///< accesses the prescreen covers
    /// Audit mode only: a pruned-eligible access participated in a race or
    /// fed a watched report — a prescreen soundness violation (must be 0).
    std::uint64_t prescreen_audit_violations = 0;
  };
  const SubstrateCounters& substrate_counters() const noexcept {
    return counters_;
  }

 private:
  struct ShadowAccess {
    ThreadId tid = 0;
    std::uint64_t epoch = 0;
    AccessRecord rec;
  };
  struct Shadow {
    std::optional<ShadowAccess> write;
    std::vector<ShadowAccess> reads;  ///< reads since the last write
  };

  // --- reference implementation (DetectorImpl::kReference) ---
  void ref_on_access(const Access& access, const interp::Machine& machine);
  void ref_on_sync(const Sync& sync, const interp::Machine& machine);
  VectorClock& clock(ThreadId tid) { return clocks_[tid]; }
  AccessRecord make_record(const Access& access,
                           const interp::Machine& machine) const;

  // --- fast implementation (DetectorImpl::kFast) ---
  void fast_on_access(const Access& access, const interp::Machine& machine);
  void fast_on_sync(const Sync& sync, const interp::Machine& machine);
  VectorClock& fast_clock(ThreadId tid);
  /// Materializes the full record for the in-flight access (lazy capture:
  /// only called once the access is a race candidate or watch-list food).
  AccessRecord record_from_access(const Access& access,
                                  const interp::Machine& machine) const;
  /// Materializes the record for a prior access from its shadow cell,
  /// rebuilding the as-of-access-time call stack from the interned context.
  AccessRecord record_from_cell(const ShadowCell& cell, interp::Address addr,
                                bool is_write,
                                const interp::Machine& machine) const;
  void fast_feed_watchers(const Access& access,
                          const interp::Machine& machine);

  // --- shared report plumbing (identical for both implementations) ---
  void record_race(const AccessRecord& prior, const AccessRecord& current,
                   const interp::Machine& machine);
  void feed_watchers(const AccessRecord& read);
  void flush_metrics();
  /// True when the prescreen covers this dynamic access: view active, the
  /// instruction is statically race-free, and the address really lies in
  /// object space (the null page is where corrupted-pointer traffic the
  /// static model cannot see lands, so it is never pruned).
  bool prescreen_hit(const ir::Instruction* instr,
                     interp::Address addr) const noexcept;

  const AnnotationSet* annotations_;
  bool ski_watch_mode_;
  DetectorImpl impl_;
  PrescreenView prescreen_;

  // Reference state: hash-map shadow and clock tables.
  std::unordered_map<ThreadId, VectorClock> clocks_;
  std::unordered_map<interp::Address, VectorClock> lock_clocks_;
  std::unordered_map<interp::Address, VectorClock> sync_clocks_;
  std::unordered_map<ThreadId, VectorClock> finished_clocks_;
  std::unordered_map<interp::Address, Shadow> shadow_;

  // Fast state: paged shadow, dense ThreadId-indexed clock tables (Machine
  // assigns tids sequentially from 0), reserved hash maps for the
  // address-keyed clocks. An empty clock in fast_finished_ means "never
  // finished" — joining an empty clock is a no-op, exactly like the
  // reference's map-miss.
  PagedShadow fast_shadow_;
  std::vector<VectorClock> fast_clocks_;
  std::vector<VectorClock> fast_finished_;
  std::unordered_map<interp::Address, VectorClock> fast_lock_clocks_;
  std::unordered_map<interp::Address, VectorClock> fast_sync_clocks_;

  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::size_t,
                     ReportKeyHash>
      index_;
  std::vector<RaceReport> reports_;
  /// Addresses whose reports still await a supplemental read / SKI logging.
  std::unordered_map<interp::Address, std::vector<std::size_t>> watched_;
  std::uint64_t dynamic_races_ = 0;
  /// Shadow pages already flushed to the metrics registry — flush_metrics
  /// records the delta so a reset-and-reused detector reports the same
  /// per-schedule page counts as a fresh one.
  std::uint64_t shadow_pages_flushed_ = 0;
  // mutable: the lazy-capture record builders are const member functions.
  mutable SubstrateCounters counters_;
};

/// Merges `from` into `into`, collapsing identical static pairs (summing
/// occurrence counts, keeping the earliest supplemental read, concatenating
/// SKI-watched reads). Used when aggregating multi-schedule explorations.
void merge_reports(std::vector<RaceReport>& into,
                   std::vector<RaceReport>&& from);

}  // namespace owl::race
