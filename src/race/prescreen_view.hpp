// Detector-side view of the static may-race prescreen (analysis/prescreen).
//
// The race layer must not depend on analysis/ (analysis depends on ir/ and
// is consumed by core/), so the pipeline hands detectors this POD view: a
// mode plus a pointer to the prescreen's no-race instruction set. kOn skips
// shadow-memory work for provably race-free accesses; kAudit does all the
// work anyway and counts accesses the prescreen *would* have pruned that
// nevertheless participated in a race (soundness violations — must be zero).
#pragma once

#include <string_view>
#include <unordered_set>

namespace owl::ir {
class Instruction;
}  // namespace owl::ir

namespace owl::race {

enum class PrescreenMode {
  kOff,    ///< prescreen not consulted (default)
  kOn,     ///< prune shadow work for no-race accesses
  kAudit,  ///< full detection plus pruned-but-raced violation counting
};

inline std::string_view prescreen_mode_name(PrescreenMode mode) noexcept {
  switch (mode) {
    case PrescreenMode::kOff: return "off";
    case PrescreenMode::kOn: return "on";
    case PrescreenMode::kAudit: return "audit";
  }
  return "?";
}

inline bool parse_prescreen_mode(std::string_view text,
                                 PrescreenMode& out) noexcept {
  if (text == "off") { out = PrescreenMode::kOff; return true; }
  if (text == "on") { out = PrescreenMode::kOn; return true; }
  if (text == "audit") { out = PrescreenMode::kAudit; return true; }
  return false;
}

/// What a detector needs from the prescreen. Default-constructed views are
/// inert (mode off, no set), so existing call sites need no changes.
struct PrescreenView {
  PrescreenMode mode = PrescreenMode::kOff;
  /// Instructions whose plain accesses are statically race-free. Owned by
  /// the pipeline's ModuleStatic; must outlive the detector. May be nullptr
  /// only when mode is kOff.
  const std::unordered_set<const ir::Instruction*>* no_race = nullptr;

  bool active() const noexcept {
    return mode != PrescreenMode::kOff && no_race != nullptr;
  }
  bool no_race_instr(const ir::Instruction* instr) const noexcept {
    return no_race->find(instr) != no_race->end();
  }
};

}  // namespace owl::race
