// SKI substrate: systematic kernel-schedule exploration (paper §3, §6.3).
//
// SKI finds kernel races by running the same workload under many controlled
// schedules. Our equivalent sweeps deterministic PCT schedules over a
// machine factory and merges the per-run reports. The per-run detector is
// the happens-before core in SKI watch-list mode: after a race, the racy
// address stays watched and the call stack of every subsequent read is
// logged until a write sanitizes the value — the §6.3 policy modification
// that gives Algorithm 1 precise corrupted-read stacks in kernel code.
#pragma once

#include <functional>
#include <memory>

#include "race/tsan_detector.hpp"

namespace owl::race {

class SkiDetector final : public TsanDetector {
 public:
  explicit SkiDetector(const AnnotationSet* annotations = nullptr,
                       DetectorImpl impl = DetectorImpl::kFast,
                       PrescreenView prescreen = {})
      : TsanDetector(annotations, /*ski_watch_mode=*/true, impl, prescreen) {}
};

/// Builds one fresh, ready-to-run machine per schedule (threads spawned,
/// inputs set). The factory owns nothing after returning.
using MachineFactory = std::function<std::unique_ptr<interp::Machine>()>;

struct ScheduleExplorationResult {
  std::vector<RaceReport> reports;   ///< merged across schedules
  std::uint64_t schedules_run = 0;
  std::uint64_t schedules_with_races = 0;
  std::uint64_t total_steps = 0;
};

/// Runs `num_schedules` PCT schedules (seeds base_seed, base_seed+1, ...)
/// and merges reports by static pair.
ScheduleExplorationResult explore_schedules(
    const MachineFactory& factory, unsigned num_schedules,
    std::uint64_t base_seed, const AnnotationSet* annotations = nullptr,
    unsigned pct_depth = 3, DetectorImpl impl = DetectorImpl::kFast,
    PrescreenView prescreen = {});

}  // namespace owl::race
