#include "race/report.hpp"

#include <algorithm>

namespace owl::race {

const AccessRecord* RaceReport::read_side() const noexcept {
  if (first.is_read()) return &first;
  if (second.is_read()) return &second;
  if (supplemental_read.has_value()) return &*supplemental_read;
  return nullptr;
}

const AccessRecord* RaceReport::write_side() const noexcept {
  if (first.is_write) return &first;
  return &second;
}

std::pair<std::uint64_t, std::uint64_t> RaceReport::key() const noexcept {
  const std::uint64_t a = first.instr != nullptr ? first.instr->id() : 0;
  const std::uint64_t b = second.instr != nullptr ? second.instr->id() : 0;
  return {std::min(a, b), std::max(a, b)};
}

std::string RaceReport::to_string() const {
  std::string out = "data race";
  if (!object_name.empty()) out += " on '" + object_name + "'";
  out += " (" + std::to_string(occurrences) + " occurrence(s))\n";
  out += "  " + first.to_string() + "\n";
  out += interp::call_stack_to_string(first.stack);
  out += "  " + second.to_string() + "\n";
  out += interp::call_stack_to_string(second.stack);
  if (supplemental_read.has_value()) {
    out += "  first subsequent read: " + supplemental_read->to_string() + "\n";
  }
  if (adhoc_sync) out += "  [classified: adhoc synchronization]\n";
  if (verified) out += "  [verified in the racing moment]\n";
  if (!security_hint.empty()) out += "  hint: " + security_hint + "\n";
  return out;
}

bool report_order(const RaceReport& a, const RaceReport& b) noexcept {
  return a.key() < b.key();
}

}  // namespace owl::race
