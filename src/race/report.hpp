// Race reports — the currency flowing through the OWL pipeline.
//
// A report is keyed by its *static* instruction pair, so repeated dynamic
// manifestations of the same race collapse into one report with a hit
// count; this matches how TSan/SKI reports are counted in the paper's
// Tables 1 and 3.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "race/event.hpp"

namespace owl::race {

/// What kind of concurrency bug a report describes. Atomicity violations
/// flow through the same pipeline but are dynamically verified by
/// reproduction (the accesses may be individually lock-protected, so they
/// can never be caught simultaneously "in the racing moment").
enum class ReportKind { kDataRace, kAtomicityViolation };

struct RaceReport {
  ReportKind kind = ReportKind::kDataRace;
  AccessRecord first;   ///< the access observed earlier
  AccessRecord second;  ///< the conflicting access

  std::string object_name;       ///< racy global/heap object, if named
  std::uint64_t occurrences = 1; ///< dynamic manifestations of this pair

  /// For write-write races the paper modified the detectors to also log
  /// "the first load instruction" reading the corrupted value (§6.3); that
  /// read is what Algorithm 1 starts from.
  std::optional<AccessRecord> supplemental_read;

  /// SKI watch-list mode (§6.3): call stacks of every read of the corrupted
  /// address until a write sanitized it.
  std::vector<AccessRecord> watched_reads;

  /// Filled in by pipeline stages.
  bool adhoc_sync = false;       ///< §5.1 classified the pair as adhoc sync
  bool predicted = false;        ///< synthesized by the §12 SP predictor —
                                 ///< dropped unless replay confirms it
  bool verified = false;         ///< §5.2 reproduced the racing moment
  std::string security_hint;     ///< §5.2 value/type/NULL-ness hints

  /// The access Algorithm 1 should start from: a racing read if one exists,
  /// else the supplemental read, else nullptr (pure write-write pair).
  const AccessRecord* read_side() const noexcept;
  /// The racing write (either side), preferring the one opposite read_side.
  const AccessRecord* write_side() const noexcept;

  /// Static dedup key: unordered pair of instruction ids.
  std::pair<std::uint64_t, std::uint64_t> key() const noexcept;

  /// Multi-line human-readable rendering with both call stacks.
  std::string to_string() const;
};

/// Canonical ordering for stable output: by key.
bool report_order(const RaceReport& a, const RaceReport& b) noexcept;

}  // namespace owl::race
