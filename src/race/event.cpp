#include "race/event.hpp"

#include "ir/printer.hpp"

namespace owl::race {

std::string AccessRecord::to_string() const {
  std::string out = is_write ? "write of " : "read of ";
  out += std::to_string(value);
  out += " by thread " + std::to_string(tid);
  if (instr != nullptr) {
    out += " at '" + ir::print_instruction(*instr) + "' (" +
           instr->loc().to_string() + ")";
  }
  return out;
}

}  // namespace owl::race
