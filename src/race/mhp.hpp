// Static may-happen-in-parallel facts — the detector's happens-before view
// exported to the compile-time side (DESIGN.md §11).
//
// The dynamic detectors order events with vector clocks over thread
// create/join and mutex/hb edges. The checker suite needs the same question
// answered *statically*: can code in function A ever run concurrently with
// code in function B? We approximate with execution contexts: one root
// context for the initial thread (functions nobody calls or spawns), plus
// one context per thread_create site covering everything reachable from its
// callee through direct calls and resolved indirect calls. Joins are
// deliberately ignored — a parent context stays live past its children — so
// the answer over-approximates concurrency, which is the safe direction for
// checkers that use MHP as a *necessary* condition for reporting.
//
// A context is self-parallel when the same entry may be spawned twice
// (several create sites naming one callee, or a create site inside a natural
// loop); only then is a function concurrent with itself.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ir/callgraph.hpp"
#include "ir/module.hpp"

namespace owl::race {

class MhpInfo {
 public:
  MhpInfo(const ir::Module& module, const ir::IndirectCallMap& resolved);

  /// True when `a` and `b` (possibly the same function) may execute in
  /// parallel on two distinct threads.
  bool may_happen_in_parallel(const ir::Function* a,
                              const ir::Function* b) const;

  /// True when the module spawns any thread at all.
  bool has_concurrency() const noexcept { return spawn_sites_ != 0; }

  /// Number of distinct execution contexts (1 root + one per create site,
  /// saturating at the 64-bit mask width).
  std::size_t context_count() const noexcept { return context_count_; }

 private:
  std::uint64_t mask_of(const ir::Function* f) const;

  std::unordered_map<const ir::Function*, std::uint64_t> context_mask_;
  std::uint64_t self_parallel_ = 0;  ///< bit i: context i may run twice
  std::size_t spawn_sites_ = 0;
  std::size_t context_count_ = 0;
};

}  // namespace owl::race
