#include "sync/annotator.hpp"

#include <set>

#include "support/log.hpp"

namespace owl::sync {

AnnotationOutcome annotate_adhoc_syncs(
    const ir::Module& module, std::vector<race::RaceReport>& reports) {
  AnnotationOutcome outcome;
  const AdhocSyncDetector detector(module);

  std::set<std::pair<const ir::Instruction*, const ir::Instruction*>> pairs;
  for (race::RaceReport& report : reports) {
    const AdhocSyncResult result = detector.classify(report);
    if (!result.is_adhoc) continue;
    report.adhoc_sync = true;
    ++outcome.adhoc_reports;
    outcome.annotations.add_release_store(result.write);
    outcome.annotations.add_acquire_load(result.read);
    if (pairs.emplace(result.write, result.read).second) {
      ++outcome.unique_adhoc_syncs;
      OWL_LOG(kInfo) << "adhoc sync annotated: write at "
                     << result.write->loc().to_string() << ", read at "
                     << result.read->loc().to_string();
    }
  }
  return outcome;
}

}  // namespace owl::sync
