// Automatic TSan-markup annotation of detected adhoc synchronizations.
//
// Pipeline step (2) of Fig. 3: classify every report, mark the adhoc ones,
// and emit the AnnotationSet that makes the detectors treat the busy-wait
// pair as release/acquire when the program is re-run.
#pragma once

#include <vector>

#include "race/annotations.hpp"
#include "race/report.hpp"
#include "sync/adhoc_detector.hpp"

namespace owl::sync {

struct AnnotationOutcome {
  race::AnnotationSet annotations;
  /// Unique static adhoc synchronizations found (the paper reports 22
  /// across its targets; our Table 3 column "A.S.").
  std::size_t unique_adhoc_syncs = 0;
  /// Reports classified adhoc (flagged in-place on the input vector too).
  std::size_t adhoc_reports = 0;
};

/// Classifies `reports` against `module`, sets RaceReport::adhoc_sync on
/// the matching ones, and returns the annotations for the re-run.
AnnotationOutcome annotate_adhoc_syncs(const ir::Module& module,
                                       std::vector<race::RaceReport>& reports);

}  // namespace owl::sync
