#include "sync/adhoc_detector.hpp"

#include <unordered_set>

namespace owl::sync {

const ir::LoopInfo& AdhocSyncDetector::loop_info(
    const ir::Function* function) const {
  auto it = loop_cache_.find(function);
  if (it == loop_cache_.end()) {
    it = loop_cache_
             .emplace(function, std::make_unique<ir::LoopInfo>(*function))
             .first;
  }
  return *it->second;
}

AdhocSyncResult AdhocSyncDetector::classify(
    const race::RaceReport& report) const {
  AdhocSyncResult result;

  const race::AccessRecord* read = report.read_side();
  const race::AccessRecord* write = report.write_side();
  if (read == nullptr || read->instr == nullptr) {
    result.reason = "no racing read in report";
    return result;
  }
  if (write == nullptr || write->instr == nullptr || !write->is_write) {
    result.reason = "no racing write in report";
    return result;
  }
  result.read = read->instr;
  result.write = write->instr;

  const ir::Function* function = read->instr->function();
  if (function == nullptr) {
    result.reason = "read not attached to a function";
    return result;
  }

  // Step 1: the read must sit in a loop.
  const ir::LoopInfo& loops = loop_info(function);
  const ir::Loop* loop = loops.innermost_loop(read->instr->parent());
  if (loop == nullptr) {
    result.reason = "racing read is not inside a loop";
    return result;
  }

  // Step 2: forward intra-procedural data/control dependence from the read.
  // Fixpoint over the loop's instructions: anything computed from a tainted
  // value is tainted.
  std::unordered_set<const ir::Value*> tainted{read->instr};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bb : function->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (tainted.contains(instr.get())) continue;
        bool hit = false;
        for (const ir::Value* op : instr->operands()) {
          if (tainted.contains(op)) {
            hit = true;
            break;
          }
        }
        if (!hit) {
          for (const ir::Value* v : instr->phi_values()) {
            if (tainted.contains(v)) {
              hit = true;
              break;
            }
          }
        }
        if (hit && tainted.insert(instr.get()).second) changed = true;
      }
    }
  }

  // Step 3: some tainted branch must be able to break out of the loop.
  const ir::Instruction* exit_branch = nullptr;
  for (const auto& bb : function->blocks()) {
    if (!loop->contains(bb.get())) continue;
    const ir::Instruction* term = bb->terminator();
    if (term == nullptr || !term->is_branch()) continue;
    if (!tainted.contains(term)) continue;
    if (loops.can_exit_loop(term)) {
      exit_branch = term;
      break;
    }
  }
  if (exit_branch == nullptr) {
    result.reason = "no flag-controlled branch exits the loop";
    return result;
  }
  result.exit_branch = exit_branch;

  // Step 3.5: the loop must actually be a *busy-wait* ("one thread is busy
  // waiting on a shared variable", §5.1): its body only polls — loads,
  // arithmetic, comparisons, yields and sleeps. A loop that performs side
  // effects (stores, calls, frees, vulnerable operations) is doing real
  // work gated by the flag, which is precisely the shape of the SSDB
  // attack (Fig. 6) and must stay in the report stream.
  for (const ir::BasicBlock* bb : loop->blocks) {
    for (const auto& instr : bb->instructions()) {
      switch (instr->opcode()) {
        case ir::Opcode::kLoad:
        case ir::Opcode::kGep:
        case ir::Opcode::kAdd:
        case ir::Opcode::kSub:
        case ir::Opcode::kMul:
        case ir::Opcode::kUDiv:
        case ir::Opcode::kSDiv:
        case ir::Opcode::kAnd:
        case ir::Opcode::kOr:
        case ir::Opcode::kXor:
        case ir::Opcode::kShl:
        case ir::Opcode::kLShr:
        case ir::Opcode::kICmp:
        case ir::Opcode::kBr:
        case ir::Opcode::kJmp:
        case ir::Opcode::kPhi:
        case ir::Opcode::kYield:
        case ir::Opcode::kIoDelay:
        case ir::Opcode::kInput:
          continue;  // pure polling
        default:
          result.reason = "loop body performs work; not a busy-wait";
          return result;
      }
    }
  }

  // Step 4: the racing write must store a constant (the "flag = 1" /
  // "ptr = NULL" idiom).
  if (write->instr->opcode() != ir::Opcode::kStore ||
      write->instr->operand_count() < 1 ||
      !write->instr->operand(0)->is_constant()) {
    result.reason = "racing write does not store a constant";
    return result;
  }

  result.is_adhoc = true;
  result.reason = "busy-wait read in loop, flag-exit branch, constant store";
  return result;
}

}  // namespace owl::sync
