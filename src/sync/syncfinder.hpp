// SyncFinder-like purely static adhoc-synchronization identification.
//
// The paper contrasts its report-guided classifier (§5.1) with SyncFinder
// [Xiong et al., OSDI'10], which "finds the matching read and write
// instruction by statically searching program code"; OWL's approach
// "leverages the actual runtime information from the race reports, so ours
// are much simpler and more precise." This module implements the static
// search so the comparison is executable (bench/ext_syncfinder):
//
//   for every loop-exit branch whose condition is (intra-procedurally)
//   computed from a load of a global, pair that load with every constant
//   store to the same global in another function.
//
// Being blind to runtime behaviour, it also matches loops that *work* while
// polling — annotating those prunes real attacks (SSDB's Fig. 6 shutdown
// loop is exactly such a false match).
#pragma once

#include <vector>

#include "ir/module.hpp"
#include "race/annotations.hpp"

namespace owl::sync {

struct SyncFinderPair {
  const ir::Instruction* write = nullptr;  ///< constant store to the flag
  const ir::Instruction* read = nullptr;   ///< in-loop load of the flag
  const ir::GlobalVariable* flag = nullptr;
};

struct SyncFinderResult {
  std::vector<SyncFinderPair> pairs;
  race::AnnotationSet annotations;
};

/// Scans the whole module statically (no reports, no runtime evidence).
SyncFinderResult syncfinder_scan(const ir::Module& module);

}  // namespace owl::sync
