// Static adhoc-synchronization detector (paper §5.1).
//
// Developers write semaphore-like busy-waits — one thread loops reading a
// shared flag until another thread stores a constant into it. TSan/SKI
// cannot see the ordering these establish and flood the report stream with
// them. Given a race report, this detector re-derives the paper's
// classification directly from the report's runtime information:
//   1. the racing *read* sits in a loop;
//   2. an intra-procedural forward data/control-dependence walk from the
//      read reaches a branch;
//   3. that branch can break out of the loop;
//   4. the racing *write* stores a constant.
// Compared to SyncFinder's whole-program search, starting from the report
// is "much simpler and more precise" — which is the point the paper makes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "ir/loops.hpp"
#include "ir/module.hpp"
#include "race/report.hpp"

namespace owl::sync {

struct AdhocSyncResult {
  bool is_adhoc = false;
  const ir::Instruction* read = nullptr;        ///< busy-wait load
  const ir::Instruction* write = nullptr;       ///< constant flag store
  const ir::Instruction* exit_branch = nullptr; ///< loop-exiting branch
  std::string reason;  ///< why the classification succeeded / failed
};

class AdhocSyncDetector {
 public:
  explicit AdhocSyncDetector(const ir::Module& module) : module_(&module) {}

  /// Classifies one race report. Pure function of the report + IR.
  AdhocSyncResult classify(const race::RaceReport& report) const;

 private:
  const ir::LoopInfo& loop_info(const ir::Function* function) const;

  const ir::Module* module_;
  mutable std::unordered_map<const ir::Function*,
                             std::unique_ptr<ir::LoopInfo>>
      loop_cache_;
};

}  // namespace owl::sync
