#include "sync/syncfinder.hpp"

#include <unordered_map>
#include <unordered_set>

#include "ir/loops.hpp"

namespace owl::sync {
namespace {

/// Globals whose loads (transitively, through registers, intra-procedure)
/// feed `value`.
void collect_source_globals(
    const ir::Value* value,
    std::unordered_set<const ir::GlobalVariable*>& out,
    std::unordered_set<const ir::Value*>& seen,
    std::vector<const ir::Instruction*>& loads) {
  if (value == nullptr || !seen.insert(value).second) return;
  const auto* instr = dynamic_cast<const ir::Instruction*>(value);
  if (instr == nullptr) return;
  if (instr->opcode() == ir::Opcode::kLoad) {
    if (const auto* global =
            dynamic_cast<const ir::GlobalVariable*>(instr->operand(0))) {
      out.insert(global);
      loads.push_back(instr);
    }
    return;
  }
  for (const ir::Value* op : instr->operands()) {
    collect_source_globals(op, out, seen, loads);
  }
  for (const ir::Value* v : instr->phi_values()) {
    collect_source_globals(v, out, seen, loads);
  }
}

}  // namespace

SyncFinderResult syncfinder_scan(const ir::Module& module) {
  SyncFinderResult result;

  // Pass 1: constant stores per global, indexed for the pairing step.
  struct ConstStore {
    const ir::Instruction* store;
    const ir::Function* function;
  };
  std::unordered_map<const ir::GlobalVariable*, std::vector<ConstStore>>
      const_stores;
  for (const auto& f : module.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() != ir::Opcode::kStore) continue;
        if (!instr->operand(0)->is_constant()) continue;
        if (const auto* global = dynamic_cast<const ir::GlobalVariable*>(
                instr->operand(1))) {
          const_stores[global].push_back({instr.get(), f.get()});
        }
      }
    }
  }

  // Pass 2: loop-exit branches fed by loads of those globals.
  for (const auto& f : module.functions()) {
    if (!f->has_body()) continue;
    const ir::LoopInfo loops(*f);
    if (loops.loops().empty()) continue;
    for (const auto& bb : f->blocks()) {
      const ir::Instruction* term = bb->terminator();
      if (term == nullptr || !term->is_branch()) continue;
      if (!loops.in_loop(term) || !loops.can_exit_loop(term)) continue;

      std::unordered_set<const ir::GlobalVariable*> flags;
      std::unordered_set<const ir::Value*> seen;
      std::vector<const ir::Instruction*> loads;
      collect_source_globals(term->operand(0), flags, seen, loads);

      for (const ir::Instruction* load : loads) {
        const auto* flag =
            dynamic_cast<const ir::GlobalVariable*>(load->operand(0));
        auto it = const_stores.find(flag);
        if (it == const_stores.end()) continue;
        for (const ConstStore& store : it->second) {
          if (store.function == f.get()) continue;  // setter must be remote
          result.pairs.push_back({store.store, load, flag});
          result.annotations.add_release_store(store.store);
          result.annotations.add_acquire_load(load);
        }
      }
    }
  }
  return result;
}

}  // namespace owl::sync
